// Demand-driven FEC during roaming — Section 3's motivating story, end to
// end: a user keeps a live audio stream while walking from her office (near
// the access point) to a conference room down the hall. Loss rises with
// distance; the loss-observer raplet sees receiver reports degrade and the
// FEC responder inserts an FEC(6,4) filter into the *running* stream; when
// she walks back, the filter is removed again.
//
// Prints a timeline of distance, measured loss, and adaptation actions.
//
// Run: ./adaptive_roaming
#include <cstdio>
#include <thread>

#include "fec/fec_group.h"
#include "filters/registry.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "proxy/proxy.h"
#include "raplets/adaptation_manager.h"
#include "raplets/fec_responder.h"
#include "raplets/loss_observer.h"
#include "raplets/receiver_report.h"
#include "util/stats.h"
#include "wireless/mobility.h"
#include "wireless/wlan.h"

using namespace rapidware;

int main() {
  filters::register_builtin_filters();

  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 42);
  const auto sender_node = net.add_node("wired-sender");
  const auto proxy_node = net.add_node("proxy");
  const auto mobile_node = net.add_node("mobile");

  wireless::WirelessLan wlan(net, proxy_node);
  wlan.add_station(mobile_node, 5.0);

  proxy::ProxyConfig config;
  config.name = "roaming-proxy";
  config.ingress_port = 4000;
  config.egress_dst = {mobile_node, 5000};
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();

  // Adaptation plumbing: observer on the proxy node + FEC responder.
  auto observer_socket = net.open(proxy_node, 7000);
  auto observer = std::make_shared<raplets::LossObserver>(observer_socket, 0.5);
  raplets::FecResponderConfig rc;
  rc.insert_threshold = 0.02;
  rc.remove_threshold = 0.004;
  rc.cooldown_us = 2'000'000;
  auto responder = std::make_shared<raplets::FecResponder>(
      core::ControlManager(proxy::network_control_transport(
          net, proxy_node, proxy.control_address())),
      std::nullopt, rc);
  raplets::AdaptationManager adaptation(observer, responder);
  adaptation.start();

  // Mobile receiver: permanent pass-through-capable decoder + reports.
  auto rx = net.open(mobile_node, 5000);
  auto report_socket = net.open(mobile_node);
  raplets::ReportSender reports("mobile", report_socket, {proxy_node, 7000},
                                50);
  fec::GroupDecoder decoder(4);
  media::ReceiverLog log;
  std::uint64_t last_ok = 0, last_miss = 0;
  reports.set_raw_loss_provider([&]() -> double {
    const auto& s = decoder.stats();
    const std::uint64_t ok = s.data_received;
    const std::uint64_t miss = s.data_recovered + s.data_lost;
    const std::uint64_t d_ok = ok - last_ok, d_miss = miss - last_miss;
    last_ok = ok;
    last_miss = miss;
    return (d_ok + d_miss) == 0 ? -1.0
                                : static_cast<double>(d_miss) /
                                      static_cast<double>(d_ok + d_miss);
  });

  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      std::vector<util::Bytes> payloads;
      if (fec::looks_like_fec_packet(d->payload)) {
        payloads = decoder.add(d->payload);
      } else {
        payloads.push_back(d->payload);
      }
      for (const auto& p : payloads) {
        const auto media = media::MediaPacket::parse(p);
        log.on_packet(media, d->deliver_at);
        reports.on_delivered(media.seq, d->deliver_at);
      }
    }
  });

  // The walk: 20 s near the AP, 30 s walking out to 36 m, 40 s dwelling,
  // 30 s walking back, 20 s near again. 20 ms audio cadence.
  const wireless::WaypointWalk walk({{util::seconds_to_micros(0), 5.0},
                                     {util::seconds_to_micros(20), 5.0},
                                     {util::seconds_to_micros(50), 36.0},
                                     {util::seconds_to_micros(90), 36.0},
                                     {util::seconds_to_micros(120), 5.0},
                                     {util::seconds_to_micros(140), 5.0}});

  std::printf("%-6s %-8s %-12s %-10s %s\n", "t(s)", "dist(m)", "link-loss",
              "fec", "chain");
  core::ControlManager viewer(proxy::network_control_transport(
      net, sender_node, proxy.control_address()));

  auto tx = net.open(sender_node);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  const int total_packets =
      static_cast<int>(util::micros_to_seconds(walk.end_time()) * 50);
  for (int i = 0; i < total_packets; ++i) {
    const util::Micros now = clock->now();
    const double distance = walk.distance_at(now);
    wlan.set_distance(mobile_node, distance);
    tx->send_to({proxy_node, 4000}, packetizer.next_packet().serialize());
    clock->advance(20'000);
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (i % 250 == 0) {  // report every 5 media seconds
      std::printf("%-6.0f %-8.1f %-12s %-10s %s\n",
                  util::micros_to_seconds(now), distance,
                  util::percent(wlan.downlink_loss(mobile_node)).c_str(),
                  responder->fec_active() ? "ACTIVE" : "off",
                  viewer.render_chain("in", "out").c_str());
    }
  }

  receiver.join();
  adaptation.stop();
  proxy.shutdown();

  std::printf("\nadaptation history:\n");
  for (const auto& action : responder->history()) {
    std::printf("  t=%5.1fs  %s (smoothed loss %s)\n",
                util::micros_to_seconds(action.at),
                action.inserted ? "FEC inserted" : "FEC removed ",
                util::percent(action.loss).c_str());
  }
  std::printf("\noverall delivery after adaptation: %s (%llu packets)\n",
              util::percent(log.delivery_rate()).c_str(),
              static_cast<unsigned long long>(log.delivered()));
  return 0;
}
