// Quickstart: the detachable-stream mechanism in five minutes.
//
// Builds a proxy chain between an in-memory packet source and sink, streams
// text packets through it, and — while the stream is running — inserts,
// reorders, and removes filters without losing a byte. This is the paper's
// core claim in executable form.
//
// Run: ./quickstart
#include <cstdio>
#include <thread>

#include "core/control.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "filters/registry.h"
#include "util/bytes.h"

using namespace rapidware;

namespace {

/// A tiny example filter: annotates each packet with the filter's label.
class LabelFilter final : public core::PacketFilter {
 public:
  explicit LabelFilter(std::string label)
      : PacketFilter("label-" + label), label_(std::move(label)) {}

  std::string describe() const override { return "label(" + label_ + ")"; }

 protected:
  void on_packet(util::Bytes packet) override {
    std::string text = util::to_string(packet);
    text += " ->" + label_;
    emit(util::to_bytes(text));
  }

 private:
  std::string label_;
};

}  // namespace

int main() {
  filters::register_builtin_filters();

  // 1. A null proxy: reader endpoint -> writer endpoint.
  auto source = std::make_shared<core::QueuePacketSource>();
  auto sink = std::make_shared<core::CollectingPacketSink>();
  auto chain = std::make_shared<core::FilterChain>(
      std::make_shared<core::PacketReaderEndpoint>("in", source),
      std::make_shared<core::PacketWriterEndpoint>("out", sink));
  chain->start();
  std::printf("started a null proxy (no filters)\n\n");

  auto push = [&](const std::string& text) {
    source->push(util::to_bytes(text));
  };
  auto show_last = [&](std::size_t upto) {
    sink->wait_for(upto);
    const auto packets = sink->packets();
    std::printf("  out: %s\n", util::to_string(packets.back()).c_str());
  };

  // 2. Traffic flows through the empty chain.
  push("packet-1");
  show_last(1);

  // 3. Hot-insert a filter; the stream keeps running.
  chain->insert(std::make_shared<LabelFilter>("A"), 0);
  std::printf("\ninserted label(A) on the live stream\n");
  push("packet-2");
  show_last(2);

  // 4. Compose: a second filter after the first, then reorder them.
  chain->insert(std::make_shared<LabelFilter>("B"), 1);
  std::printf("\ninserted label(B) after label(A)\n");
  push("packet-3");
  show_last(3);

  chain->reorder(0, 1);  // A and B swap places
  std::printf("\nreordered: label(B) now runs first\n");
  push("packet-4");
  show_last(4);

  // 5. Manage the same chain through the control protocol, as the paper's
  // ControlManager GUI would.
  auto server = std::make_shared<core::ControlServer>(chain);
  auto manager = core::ControlManager::local(server);
  std::printf("\ncontrol view: %s\n", manager.render_chain().c_str());

  // A "third-party" filter definition uploaded at run time, then used.
  manager.upload("my-stats", {"stats", {{"name", "uploaded-tap"}}});
  manager.insert({"my-stats", {}}, 2);
  std::printf("uploaded + inserted a stats tap: %s\n",
              manager.render_chain().c_str());

  // 6. Remove everything; stream still intact.
  chain->remove(2);
  chain->remove(1);
  chain->remove(0);
  std::printf("\nremoved all filters\n");
  push("packet-5");
  show_last(5);

  source->finish();
  chain->shutdown();

  std::printf("\ndelivered %zu packets, zero lost — done.\n", sink->count());
  return 0;
}
