// The paper's flagship scenario (Section 5, Figures 6 & 7): a live audio
// stream crosses a proxy that adds FEC(6,4) before the wireless hop; three
// wireless laptops receive it at different distances from the access point.
//
// Prints per-receiver raw receipt vs. FEC-reconstructed rates — the same
// quantities Figure 7 plots — then queries the proxy's own STATS verb and
// cross-checks its per-filter counters against the ground truth the sender
// and receivers observed.
//
// Run: ./audio_fec_proxy
// Set RW_STATS_LOG_MS=<ms> to also log registry snapshots periodically
// while the stream runs (obs::StatsLogSink).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "fec/fec_group.h"
#include "filters/fec_filters.h"
#include "filters/registry.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "obs/metrics.h"
#include "obs/stats_log.h"
#include "proxy/proxy.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

struct Receiver {
  std::string name;
  double distance_m;
  net::NodeId node;
  std::shared_ptr<net::SimSocket> socket;
  media::ReceiverLog raw_log{432};
  media::ReceiverLog fec_log{432};
  fec::GroupDecoder decoder{4};
  std::thread thread;
};

}  // namespace

int main() {
  filters::register_builtin_filters();

  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 2001);
  const auto sender_node = net.add_node("wired-sender");
  const auto proxy_node = net.add_node("proxy");

  // Wireless LAN: the paper's 2 Mbps WaveLAN, receivers at 10/25/32 m.
  wireless::WirelessLan wlan(net, proxy_node);
  const net::Address group = net::multicast_group(1, 5000);

  std::vector<Receiver> receivers;
  for (const auto& [name, dist] :
       {std::pair{"laptop-near", 10.0}, {"laptop-mid", 25.0},
        {"laptop-far", 32.0}}) {
    Receiver r;
    r.name = name;
    r.distance_m = dist;
    r.node = net.add_node(name);
    wlan.add_station(r.node, dist);
    r.socket = net.open(r.node, 5000);
    r.socket->join(group);
    receivers.push_back(std::move(r));
  }

  // The proxy: ingress from the wired side, multicast egress to the WLAN,
  // with an FEC(6,4) encoder in the chain (small groups minimize jitter).
  proxy::ProxyConfig config;
  config.name = "fec-audio-proxy";
  config.ingress_port = 4000;
  config.egress_dst = group;
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();
  proxy.chain().insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);

  // Optional periodic stats log, an operator's view while the stream runs.
  std::unique_ptr<obs::StatsLogSink> stats_log;
  if (const char* ms = std::getenv("RW_STATS_LOG_MS"); ms && *ms) {
    stats_log = std::make_unique<obs::StatsLogSink>(
        obs::registry(), config.name,
        std::chrono::milliseconds(std::atoi(ms)));
  }

  // Receiver loops: count raw FEC-layer arrivals and reconstructed audio.
  for (auto& r : receivers) {
    r.thread = std::thread([&r] {
      for (;;) {
        auto d = r.socket->recv(500);
        if (!d) break;
        util::Reader hr(d->payload);
        const auto header = fec::GroupHeader::decode_from(hr);
        if (!header.is_parity()) {
          // Raw receipt: a source packet arrived off the air.
          const auto body = hr.raw(hr.remaining());
          r.raw_log.on_packet(media::MediaPacket::parse(body), d->deliver_at);
        }
        for (const auto& payload : r.decoder.add(d->payload)) {
          r.fec_log.on_packet(media::MediaPacket::parse(payload),
                              d->deliver_at);
        }
      }
      for (const auto& payload : r.decoder.flush()) {
        r.fec_log.on_packet(media::MediaPacket::parse(payload), 0);
      }
    });
  }

  // The wired sender: PCM audio at the paper's rates, 20 ms packets.
  std::printf("streaming ~108 s of 8 kHz stereo 8-bit audio (5400 packets)\n");
  std::printf("proxy chain: [wired-rx] -> fec-enc(6,4) -> [wireless-mcast]\n\n");
  auto tx = net.open(sender_node);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  constexpr int kPackets = 5400;  // ~ the Figure 7 trace length
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to({proxy_node, 4000}, packetizer.next_packet().serialize());
    clock->advance(packetizer.packet_duration_us());
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  for (auto& r : receivers) r.thread.join();
  stats_log.reset();

  // Ask the RUNNING proxy what it did — the STATS verb over the control
  // protocol — and check its counters against the ground truth this process
  // observed at the sender (the integrity oracle for the proxy's ledger).
  {
    core::ControlManager manager(proxy::network_control_transport(
        net, sender_node, proxy.control_address()));
    const auto entries = manager.stats(config.name);
    auto value = [&](const std::string& name) -> std::string {
      for (const auto& [k, v] : entries) {
        if (k == name) return v;
      }
      return "<missing>";
    };
    bool all_ok = true;
    const auto expect = [&all_ok](const std::string& got, std::uint64_t want) {
      if (got == std::to_string(want)) return "ok";
      all_ok = false;
      return "MISMATCH";
    };
    const std::uint64_t wire_packets = kPackets / 4 * 6;  // FEC(6,4)
    std::printf("\nSTATS cross-check (proxy's ledger vs this process):\n");
    std::printf("  %-44s %8s  want %llu (%s)\n", "fec-audio-proxy/ingress/packets",
                value("fec-audio-proxy/ingress/packets").c_str(),
                static_cast<unsigned long long>(kPackets),
                expect(value("fec-audio-proxy/ingress/packets"), kPackets));
    std::printf("  %-44s %8s  want %llu (%s)\n",
                "fec-audio-proxy/chain/fec-encode/packets_in",
                value("fec-audio-proxy/chain/fec-encode/packets_in").c_str(),
                static_cast<unsigned long long>(kPackets),
                expect(value("fec-audio-proxy/chain/fec-encode/packets_in"),
                       kPackets));
    std::printf("  %-44s %8s  want %llu (%s)\n",
                "fec-audio-proxy/chain/fec-encode/packets_out",
                value("fec-audio-proxy/chain/fec-encode/packets_out").c_str(),
                static_cast<unsigned long long>(wire_packets),
                expect(value("fec-audio-proxy/chain/fec-encode/packets_out"),
                       wire_packets));
#if RW_OBS_ENABLED
    std::printf("  %-44s %8s  want %llu (%s)\n",
                "fec-audio-proxy/chain/fec-encode/groups_encoded",
                value("fec-audio-proxy/chain/fec-encode/groups_encoded").c_str(),
                static_cast<unsigned long long>(kPackets / 4),
                expect(value("fec-audio-proxy/chain/fec-encode/groups_encoded"),
                       kPackets / 4));
#endif
    if (!all_ok) {
      std::fprintf(stderr, "STATS cross-check failed\n");
      return 1;
    }
  }
  proxy.shutdown();

  std::printf("%-12s %9s %12s %15s %10s\n", "receiver", "dist", "%received",
              "%reconstructed", "jitter");
  for (auto& r : receivers) {
    std::printf("%-12s %7.0f m %12s %15s %7.1f ms\n", r.name.c_str(),
                r.distance_m, util::percent(r.raw_log.delivery_rate()).c_str(),
                util::percent(r.fec_log.delivery_rate()).c_str(),
                r.fec_log.smoothed_jitter_us() / 1000.0);
  }
  std::printf(
      "\n(paper, Figure 7, 25 m: 98.54%% received, 99.98%% reconstructed)\n");
  return 0;
}
