// Pavilion collaborative browsing on RAPIDware proxies (Sections 1-2,
// Figure 1): three participants co-browse a web site. The floor passes
// from alice to bob mid-session; a handheld participant receives everything
// through a proxy that joined the wired multicast on its behalf.
//
// Run: ./pavilion_browse
#include <cstdio>
#include <thread>

#include "filters/registry.h"
#include "pavilion/session.h"
#include "proxy/proxy.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;
using namespace rapidware::pavilion;

int main() {
  filters::register_builtin_filters();

  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 5);
  WebServer web;
  web.put("/logo.png", {"image/png", util::Bytes(6000, 0x89)});
  web.put("/style.css",
          {"text/css", util::to_bytes(std::string(2000, '.'))});

  const SessionGroups groups = SessionGroups::standard();

  // Wired participants.
  SessionMember alice("alice", net, net.add_node("alice"), groups, &web,
                      /*initial_leader=*/true);
  SessionMember bob("bob", net, net.add_node("bob"), groups, &web);

  // Wireless handheld behind a RAPIDware proxy: the proxy joins the data
  // group and relays over the (lossless-configured) wireless hop.
  const auto proxy_node = net.add_node("proxy");
  const auto handheld_node = net.add_node("handheld");
  wireless::WirelessLan wlan(net, proxy_node);
  wlan.add_station(handheld_node, 12.0);
  proxy::ProxyConfig pc;
  pc.name = "handheld-proxy";
  pc.ingress_port = groups.data.port;
  pc.ingress_group = groups.data;
  pc.egress_dst = {handheld_node, 4600};
  proxy::Proxy proxy(net, proxy_node, pc);
  proxy.start();
  auto handheld_feed = net.open(handheld_node, 4600);
  SessionMember carol("carol", net, handheld_node, groups, &web,
                      /*initial_leader=*/false, handheld_feed);

  alice.start();
  bob.start();
  carol.start();

  std::printf("session started; alice holds the floor\n\n");
  const std::vector<std::string> assets = {"/logo.png", "/style.css"};
  for (const auto& url : {"/welcome.html", "/agenda.html", "/results.html"}) {
    alice.navigate(url, assets);
    std::printf("alice -> %-16s", url);
    const bool bob_got = bob.wait_for_page(url);
    const bool carol_got = carol.wait_for_page(url);
    std::printf(" bob:%s carol(handheld):%s\n", bob_got ? "ok" : "MISS",
                carol_got ? "ok" : "MISS");
  }

  std::printf("\nbob requests the floor...\n");
  if (bob.floor().request_floor(alice.control_address())) {
    std::printf("floor granted; leader is now '%s' (seq %llu)\n\n",
                bob.floor().current_leader().c_str(),
                static_cast<unsigned long long>(bob.floor().leadership_seq()));
  }
  for (const auto& url : {"/discussion.html", "/actions.html"}) {
    bob.navigate(url, assets);
    std::printf("bob   -> %-16s", url);
    const bool alice_got = alice.wait_for_page(url);
    const bool carol_got = carol.wait_for_page(url);
    std::printf(" alice:%s carol(handheld):%s\n", alice_got ? "ok" : "MISS",
                carol_got ? "ok" : "MISS");
  }

  std::printf("\nreceived resources: alice=%zu bob=%zu carol=%zu\n",
              alice.resources_received(), bob.resources_received(),
              carol.resources_received());
  std::printf("carol's bytes all crossed the proxy: %llu B relayed\n",
              static_cast<unsigned long long>(carol.bytes_received()));

  alice.stop();
  bob.stop();
  carol.stop();
  proxy.shutdown();
  return 0;
}
