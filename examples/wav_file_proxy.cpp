// File-to-file proxy run in the paper's exact recording format: synthesizes
// a .WAV capture ("Windows PCM-based waveform audio file format ... 8000
// samples per second for two 8-bit/sample stereo channels", Section 5),
// streams it through the FEC proxy over the lossy WLAN, and writes what the
// mobile host heard back to a second .WAV — both raw (losses audible as
// dropped 20 ms windows) and FEC-reconstructed.
//
// Run: ./wav_file_proxy [seconds]    (default 20 s; files in CWD)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "fec/fec_group.h"
#include "filters/fec_filters.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/wav.h"
#include "proxy/proxy.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

void write_file(const std::string& path, const util::Bytes& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 20;

  // 1. "Record" the capture: synthesize and save a WAV in the paper format.
  const media::AudioFormat format = media::paper_audio_format();
  media::AudioSource source(format);
  media::WavFile capture{format, source.read_frames(
                                     static_cast<std::size_t>(seconds) *
                                     format.sample_rate)};
  write_file("capture.wav", media::wav_encode(capture));
  std::printf("wrote capture.wav (%zu bytes, %d s)\n",
              capture.pcm.size() + 44, seconds);

  // 2. Stream it through the FEC proxy to a mobile host 30 m out.
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 1);
  const auto sender_node = net.add_node("sender");
  const auto proxy_node = net.add_node("proxy");
  const auto mobile_node = net.add_node("mobile");
  wireless::WirelessLan wlan(net, proxy_node);
  wlan.add_station(mobile_node, 30.0);

  proxy::ProxyConfig config;
  config.ingress_port = 4000;
  config.egress_dst = {mobile_node, 5000};
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();
  proxy.chain().append(std::make_shared<filters::FecEncodeFilter>(6, 4));

  // The receiver reassembles two PCM tracks: raw-received only, and
  // FEC-reconstructed. Missing packets become silence (mid-scale).
  const std::size_t packet_bytes = format.bytes_per_second() / 50;  // 20 ms
  const std::size_t total_packets = capture.pcm.size() / packet_bytes;
  util::Bytes raw_pcm(capture.pcm.size(), 127);
  util::Bytes fec_pcm(capture.pcm.size(), 127);
  std::size_t raw_count = 0, fec_count = 0;

  auto rx = net.open(mobile_node, 5000);
  fec::GroupDecoder decoder(4);
  std::thread receiver([&] {
    auto place = [&](util::Bytes& track, const media::MediaPacket& p,
                     std::size_t& count) {
      const std::size_t offset = static_cast<std::size_t>(p.seq) * packet_bytes;
      if (offset + p.payload.size() <= track.size()) {
        std::copy(p.payload.begin(), p.payload.end(), track.begin() +
                  static_cast<std::ptrdiff_t>(offset));
        ++count;
      }
    };
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      util::Reader hr(d->payload);
      const auto header = fec::GroupHeader::decode_from(hr);
      if (!header.is_parity()) {
        place(raw_pcm, media::MediaPacket::parse(hr.raw(hr.remaining())),
              raw_count);
      }
      for (const auto& payload : decoder.add(d->payload)) {
        place(fec_pcm, media::MediaPacket::parse(payload), fec_count);
      }
    }
    for (const auto& payload : decoder.flush()) {
      place(fec_pcm, media::MediaPacket::parse(payload), fec_count);
    }
  });

  auto tx = net.open(sender_node);
  for (std::size_t i = 0; i < total_packets; ++i) {
    media::MediaPacket p;
    p.seq = static_cast<std::uint32_t>(i);
    p.timestamp_us = static_cast<std::int64_t>(i) * 20'000;
    p.payload.assign(
        capture.pcm.begin() + static_cast<std::ptrdiff_t>(i * packet_bytes),
        capture.pcm.begin() +
            static_cast<std::ptrdiff_t>((i + 1) * packet_bytes));
    tx->send_to({proxy_node, 4000}, p.serialize());
    clock->advance(20'000);
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  proxy.shutdown();

  // 3. Write both tracks back out as .WAV files.
  write_file("received_raw.wav",
             media::wav_encode({format, raw_pcm}));
  write_file("received_fec.wav",
             media::wav_encode({format, fec_pcm}));
  std::printf("streamed %zu packets over the 30 m wireless hop\n",
              total_packets);
  std::printf("  received_raw.wav : %s of packets (%zu dropouts)\n",
              util::percent(static_cast<double>(raw_count) / total_packets)
                  .c_str(),
              total_packets - raw_count);
  std::printf("  received_fec.wav : %s of packets (%zu dropouts)\n",
              util::percent(static_cast<double>(fec_count) / total_packets)
                  .c_str(),
              total_packets - fec_count);
  std::printf("\nFEC(6,4) turned audible dropouts into clean audio — the\n"
              "paper's 'very clear audio quality' (Section 5).\n");
  return 0;
}
