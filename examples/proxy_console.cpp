// Interactive proxy administration console — the programmatic stand-in for
// the paper's Swing ControlManager GUI (Section 4). Connects to a live
// proxy over the control protocol and lets an administrator inspect and
// reconfigure the filter chain while audio streams through it.
//
// Commands:
//   list                       show the chain
//   avail                      show insertable filter kinds
//   insert <name> <pos> [k=v]  instantiate and splice in a filter
//   remove <pos>               remove a filter (flushes its state)
//   move <from> <to>           reorder
//   set <pos> <key> <value>    retune a live filter
//   upload <alias> <base> [k=v] register a third-party filter definition
//   types                      composability type trace of the chain
//   stats                      delivery statistics at the receiver
//   pstats [prefix]            proxy-side metrics via the STATS verb
//   quit
//
// Run interactively: ./proxy_console
// Without a TTY (CI), it executes a scripted demo session instead.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "filters/registry.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "fec/fec_group.h"
#include "proxy/proxy.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

struct Deployment {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 99};
  net::NodeId sender = net.add_node("sender");
  net::NodeId proxy_node = net.add_node("proxy");
  net::NodeId mobile = net.add_node("mobile");
  wireless::WirelessLan wlan{net, proxy_node};
  std::unique_ptr<proxy::Proxy> px;

  std::shared_ptr<net::SimSocket> rx;
  media::ReceiverLog log{432};
  fec::GroupDecoder decoder{4};
  std::thread receiver;
  std::thread sender_thread;
  std::atomic<bool> stop{false};

  Deployment() {
    filters::register_builtin_filters();
    wlan.add_station(mobile, 28.0);
    proxy::ProxyConfig c;
    c.name = "console-proxy";
    c.ingress_port = 4000;
    c.egress_dst = {mobile, 5000};
    px = std::make_unique<proxy::Proxy>(net, proxy_node, c);
    px->chain().set_stream_type("media");  // enables composability checks
    px->start();

    rx = net.open(mobile, 5000);
    receiver = std::thread([this] {
      for (;;) {
        auto d = rx->recv(200);
        if (!d) {
          if (stop.load() || rx->is_closed()) break;
          continue;
        }
        try {
          std::vector<util::Bytes> payloads;
          if (fec::looks_like_fec_packet(d->payload)) {
            payloads = decoder.add(d->payload);
          } else {
            payloads.push_back(d->payload);
          }
          for (const auto& p : payloads) {
            log.on_packet(media::MediaPacket::parse(p), d->deliver_at);
          }
        } catch (const std::exception&) {
          // Chain may be mid-reconfiguration into a non-media shape
          // (encrypted without local key, etc.); count nothing.
        }
      }
    });
    sender_thread = std::thread([this] {
      auto tx = net.open(sender);
      media::AudioSource audio;
      media::AudioPacketizer packetizer(audio);
      while (!stop.load()) {
        tx->send_to({proxy_node, 4000}, packetizer.next_packet().serialize());
        clock->advance(20'000);
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    });
  }

  ~Deployment() {
    stop.store(true);
    sender_thread.join();
    rx->close();
    receiver.join();
    px->shutdown();
  }
};

core::ParamMap parse_params(std::istringstream& in) {
  core::ParamMap params;
  std::string kv;
  while (in >> kv) {
    const auto eq = kv.find('=');
    if (eq != std::string::npos) {
      params[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }
  return params;
}

bool run_command(Deployment& d, core::ControlManager& manager,
                 const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  if (!(in >> cmd)) return true;
  try {
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "list") {
      std::printf("  %s\n", manager.render_chain("wired-rx", "wireless-tx").c_str());
      const auto infos = manager.list_chain();
      for (std::size_t i = 0; i < infos.size(); ++i) {
        std::printf("  [%zu] %s", i, infos[i].description.c_str());
        for (const auto& [k, v] : infos[i].params) {
          std::printf("  %s=%s", k.c_str(), v.c_str());
        }
        std::printf("\n");
      }
    } else if (cmd == "avail") {
      for (const auto& name : manager.list_available()) {
        std::printf("  %s\n", name.c_str());
      }
    } else if (cmd == "insert") {
      std::string name;
      std::size_t pos;
      in >> name >> pos;
      manager.insert({name, parse_params(in)}, pos);
      std::printf("  inserted %s at %zu\n", name.c_str(), pos);
    } else if (cmd == "remove") {
      std::size_t pos;
      in >> pos;
      manager.remove(pos);
      std::printf("  removed filter %zu (state flushed)\n", pos);
    } else if (cmd == "move") {
      std::size_t from, to;
      in >> from >> to;
      manager.reorder(from, to);
      std::printf("  moved %zu -> %zu\n", from, to);
    } else if (cmd == "set") {
      std::size_t pos;
      std::string key, value;
      in >> pos >> key >> value;
      manager.set_param(pos, key, value);
      std::printf("  set [%zu].%s = %s\n", pos, key.c_str(), value.c_str());
    } else if (cmd == "upload") {
      std::string alias, base;
      in >> alias >> base;
      manager.upload(alias, {base, parse_params(in)});
      std::printf("  uploaded '%s'\n", alias.c_str());
    } else if (cmd == "types") {
      const auto trace = d.px->chain().type_trace();
      std::printf("  ");
      for (std::size_t i = 0; i < trace.size(); ++i) {
        std::printf("%s%s", i ? " -> " : "", trace[i].c_str());
      }
      std::printf("\n");
      if (const auto error = d.px->chain().type_error()) {
        std::printf("  TYPE ERROR: %s\n", error->c_str());
      }
    } else if (cmd == "stats") {
      std::printf("  delivered %s of %llu packets (loss model: %s at %.0f m)\n",
                  util::percent(d.log.delivery_rate()).c_str(),
                  static_cast<unsigned long long>(d.log.expected()),
                  util::percent(d.wlan.downlink_loss(d.mobile)).c_str(),
                  d.wlan.distance(d.mobile));
    } else if (cmd == "pstats") {
      // The remote side of the picture: what the PROXY says it is doing,
      // fetched over the wire with the STATS verb (docs/observability.md).
      std::string prefix = "console-proxy";
      in >> prefix;
      for (const auto& [key, value] : manager.stats(prefix)) {
        std::printf("  %s=%s\n", key.c_str(), value.c_str());
      }
    } else {
      std::printf("  unknown command '%s'\n", cmd.c_str());
    }
  } catch (const std::exception& e) {
    std::printf("  error: %s\n", e.what());
  }
  return true;
}

}  // namespace

int main() {
  Deployment d;
  core::ControlManager manager(proxy::network_control_transport(
      d.net, d.sender, d.px->control_address()));

  std::printf("RAPIDware proxy console — live audio is streaming through\n"
              "the proxy to a mobile host 28 m from the access point.\n\n");

  if (isatty(fileno(stdin))) {
    std::string line;
    for (;;) {
      std::printf("proxy> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      if (!run_command(d, manager, line)) break;
    }
    return 0;
  }

  // Scripted demo for non-interactive runs.
  const char* script[] = {
      "list",
      "avail",
      "stats",
      "insert fec-encode 0 n=6 k=4",
      "insert stats 1 name=egress-tap",
      "list",
      "types",
      "set 0 n 8",
      "list",
      "upload strong-fec fec-encode n=10 k=4",
      "remove 0",
      "insert strong-fec 0",
      "list",
      "stats",
      "pstats console-proxy/chain",
  };
  for (const char* line : script) {
    std::printf("proxy> %s\n", line);
    run_command(d, manager, line);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
  }
  std::printf("\n(demo script finished; run with a TTY for an interactive session)\n");
  return 0;
}
