// Pavilion-style collaborative browsing session (Section 2, Figure 1) on
// RAPIDware proxies: a session leader multicasts fetched web resources to
// heterogeneous participants —
//
//   * wired workstations receive the multicast directly;
//   * a wireless handheld sits behind a proxy whose chain compresses,
//     caches, and rate-limits the stream to fit a slow link.
//
// In a collaborative session the same resource crosses the proxy repeatedly
// (every leader navigation re-multicasts shared assets), so the cache pair
// collapses re-sends into tiny references. The example prints per-client
// received byte counts and the proxy's cache/compression effectiveness.
//
// Run: ./collaborative_session
#include <cstdio>
#include <thread>
#include <vector>

#include "filters/cache_filter.h"
#include "filters/compress_filter.h"
#include "filters/registry.h"
#include "proxy/proxy.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

/// Fake web resources: a few shared assets (logo, stylesheet) and unique
/// page bodies, as a browsing session would fetch.
struct Resource {
  std::string url;
  util::Bytes body;
};

std::vector<Resource> make_site(util::Rng& rng) {
  std::vector<Resource> site;
  auto make_body = [&](std::size_t size, bool compressible) {
    util::Bytes body(size);
    std::uint8_t v = 0;
    for (auto& b : body) {
      // Compressible bodies ramp slowly (HTML-ish redundancy); opaque ones
      // are random (already-compressed images).
      b = compressible ? v : static_cast<std::uint8_t>(rng.next_u64());
      if (rng.chance(0.2)) ++v;
    }
    return body;
  };
  site.push_back({"/logo.png", make_body(9000, false)});
  site.push_back({"/style.css", make_body(4000, true)});
  for (int page = 0; page < 8; ++page) {
    site.push_back({"/page" + std::to_string(page) + ".html",
                    make_body(6000 + rng.next_below(4000), true)});
  }
  return site;
}

}  // namespace

int main() {
  filters::register_builtin_filters();

  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 11);
  const auto leader_node = net.add_node("leader");
  const auto ws1_node = net.add_node("workstation-1");
  const auto ws2_node = net.add_node("workstation-2");
  const auto proxy_node = net.add_node("proxy");
  const auto handheld_node = net.add_node("handheld");

  // Wired multicast group for the session; the proxy joins on behalf of
  // the handheld and re-sends over the wireless hop.
  const net::Address session = net::multicast_group(1, 4000);
  auto ws1 = net.open(ws1_node, 4000);
  auto ws2 = net.open(ws2_node, 4000);
  ws1->join(session);
  ws2->join(session);

  wireless::WirelessLan wlan(net, proxy_node);
  wlan.add_station(handheld_node, 15.0);

  proxy::ProxyConfig config;
  config.name = "handheld-proxy";
  config.ingress_port = 4000;
  config.ingress_group = session;
  config.egress_dst = {handheld_node, 5000};
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();

  // The handheld's chain: dedupe repeats, then compress, then rate-limit
  // to an 8 KB/s budget (a slow serial-era handheld link).
  auto cache = std::make_shared<filters::CachePackFilter>();
  auto compress = std::make_shared<filters::CompressFilter>();
  proxy.chain().insert(cache, 0);
  proxy.chain().insert(compress, 1);

  // Handheld side: reverse the proxy transforms — decompress, then expand
  // cache references against a local content store.
  auto handheld_socket = net.open(handheld_node, 5000);
  std::uint64_t handheld_wire_bytes = 0;
  std::uint64_t handheld_resource_bytes = 0;
  std::uint64_t handheld_resources = 0;
  std::thread handheld([&] {
    filters::ContentStore store(4 * 1024 * 1024);
    for (;;) {
      auto d = handheld_socket->recv(500);
      if (!d) break;
      handheld_wire_bytes += d->payload.size();
      const util::Bytes packed = filters::rle_decompress(d->payload);
      util::Reader r(packed);
      const std::uint8_t mode = r.u8();
      util::Bytes body;
      if (mode == 0) {
        body = r.raw(r.remaining());
        store.put(filters::content_hash(body), body);
      } else if (const util::Bytes* cached = store.get(r.u64())) {
        body = *cached;
      }
      if (!body.empty()) {
        ++handheld_resources;
        handheld_resource_bytes += body.size();
      }
    }
  });

  // The leader browses: pages are fetched once each, but shared assets
  // (logo, stylesheet) are re-multicast with every navigation.
  util::Rng rng(3);
  const auto site = make_site(rng);
  std::uint64_t multicast_bytes = 0;
  std::uint64_t sends = 0;
  auto tx = net.open(leader_node);
  for (int nav = 0; nav < 8; ++nav) {
    const std::vector<std::size_t> fetch = {0, 1, 2 + static_cast<std::size_t>(nav)};
    for (const std::size_t idx : fetch) {
      tx->send_to(session, site[idx].body);
      multicast_bytes += site[idx].body.size();
      ++sends;
      clock->advance(250'000);  // a navigation every quarter second
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Let the pipeline drain, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  handheld.join();
  proxy.shutdown();

  // Drain the wired receivers' queues to count their deliveries.
  auto drain = [](net::SimSocket& socket) {
    std::uint64_t count = 0;
    while (socket.recv(0)) ++count;
    return count;
  };
  std::printf("leader multicast: %llu resources, %llu bytes\n",
              static_cast<unsigned long long>(sends),
              static_cast<unsigned long long>(multicast_bytes));
  std::printf("wired workstations received: %llu and %llu datagrams\n",
              static_cast<unsigned long long>(drain(*ws1)),
              static_cast<unsigned long long>(drain(*ws2)));
  std::printf("\nhandheld proxy chain: cache-pack -> compress\n");
  std::printf("  cache: %llu hits / %llu misses\n",
              static_cast<unsigned long long>(cache->hits()),
              static_cast<unsigned long long>(cache->misses()));
  std::printf("  compression ratio on cache output: %.2f\n",
              compress->ratio());
  std::printf("  handheld wire bytes: %llu (%.1f%% of the wired volume)\n",
              static_cast<unsigned long long>(handheld_wire_bytes),
              100.0 * static_cast<double>(handheld_wire_bytes) /
                  static_cast<double>(multicast_bytes));
  std::printf("  handheld resources delivered: %llu\n",
              static_cast<unsigned long long>(handheld_resources));
  return 0;
}
