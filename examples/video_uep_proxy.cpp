// Unequal error protection for video (Section 3 / ref [24]): the FEC filter
// "may be specific to video streams (e.g., placing more redundancy in I
// frames than in B frames)". A GOP-structured video stream crosses a proxy
// whose UEP FEC filter protects I frames with 2x redundancy, P frames with
// 1.5x, and B frames not at all; a uniform FEC(6,4) proxy and a no-FEC path
// run alongside for comparison.
//
// Prints per-frame-class delivery rates and bandwidth overhead for the
// three strategies — showing UEP spends parity where it matters.
//
// Run: ./video_uep_proxy
#include <cstdio>
#include <map>
#include <thread>

#include "fec/fec_group.h"
#include "filters/fec_filters.h"
#include "filters/stats_filter.h"
#include "filters/registry.h"
#include "media/media_packet.h"
#include "media/video.h"
#include "proxy/proxy.h"
#include "util/stats.h"
#include "wireless/wlan.h"

using namespace rapidware;

namespace {

const char* class_name(fec::FrameClass cls) {
  switch (cls) {
    case fec::FrameClass::kKey: return "I";
    case fec::FrameClass::kPredicted: return "P";
    case fec::FrameClass::kBidirectional: return "B";
    default: return "?";
  }
}

struct Outcome {
  std::map<fec::FrameClass, util::RateCounter> per_class;
  std::uint64_t wire_bytes = 0;
  std::uint64_t media_bytes = 0;
};

Outcome run_strategy(const char* label, std::shared_ptr<core::Filter> fec_filter) {
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 7);
  const auto sender_node = net.add_node("source");
  const auto proxy_node = net.add_node("proxy");
  const auto mobile_node = net.add_node("mobile");

  wireless::WirelessLan wlan(net, proxy_node);
  wlan.add_station(mobile_node, 33.0);  // ~4% loss

  proxy::ProxyConfig config;
  config.ingress_port = 4000;
  config.egress_dst = {mobile_node, 5000};
  proxy::Proxy proxy(net, proxy_node, config);
  proxy.start();
  if (fec_filter) proxy.chain().insert(std::move(fec_filter), 0);
  // Egress tap: counts wire traffic *sent* toward the WLAN (pre-loss), so
  // the overhead figure is a property of the strategy, not the channel.
  auto egress_tap = std::make_shared<filters::StatsFilter>("egress");
  proxy.chain().insert(egress_tap, proxy.chain().size());

  auto rx = net.open(mobile_node, 5000);
  Outcome outcome;
  std::map<std::uint32_t, fec::FrameClass> sent_classes;
  fec::GroupDecoder decoder(6);
  std::map<std::uint32_t, bool> delivered;

  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      std::vector<util::Bytes> payloads;
      if (fec::looks_like_fec_packet(d->payload)) {
        payloads = decoder.add(d->payload);
      } else {
        payloads.push_back(d->payload);
      }
      for (const auto& p : payloads) {
        delivered[media::MediaPacket::parse(p).seq] = true;
      }
    }
    for (const auto& p : decoder.flush()) {
      delivered[media::MediaPacket::parse(p).seq] = true;
    }
  });

  auto tx = net.open(sender_node);
  media::VideoStreamSource video;
  constexpr int kFrames = 2700;  // ~108 s at 25 fps
  for (int i = 0; i < kFrames; ++i) {
    const media::MediaPacket frame = video.next_frame();
    sent_classes[frame.seq] = frame.frame_class;
    const auto wire = frame.serialize();
    outcome.media_bytes += wire.size();
    tx->send_to({proxy_node, 4000}, wire);
    clock->advance(video.frame_duration_us());
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  proxy.shutdown();
  outcome.wire_bytes = egress_tap->bytes();

  for (const auto& [seq, cls] : sent_classes) {
    outcome.per_class[cls].add(delivered.count(seq) != 0);
  }
  (void)label;
  return outcome;
}

void print_outcome(const char* label, const Outcome& o) {
  const double overhead =
      static_cast<double>(o.wire_bytes) / static_cast<double>(o.media_bytes);
  std::printf("%-14s", label);
  for (const auto cls :
       {fec::FrameClass::kKey, fec::FrameClass::kPredicted,
        fec::FrameClass::kBidirectional}) {
    auto it = o.per_class.find(cls);
    std::printf("  %s:%8s", class_name(cls),
                it == o.per_class.end()
                    ? "-"
                    : util::percent(it->second.rate()).c_str());
  }
  std::printf("   overhead x%.2f\n", overhead);
}

}  // namespace

int main() {
  filters::register_builtin_filters();
  std::printf("GOP pattern IBBPBBPBB, 2700 frames, mobile at 33 m (~4%% loss)\n\n");

  const Outcome none = run_strategy("no-fec", nullptr);
  const Outcome uniform = run_strategy(
      "uniform", std::make_shared<filters::UepFecEncodeFilter>(
                     fec::UepPolicy::uniform({6, 4})));
  const Outcome uep = run_strategy(
      "uep", std::make_shared<filters::UepFecEncodeFilter>(
                 fec::UepPolicy::standard()));

  print_outcome("no FEC", none);
  print_outcome("uniform (6,4)", uniform);
  print_outcome("UEP std", uep);
  std::printf(
      "\nAt comparable overhead, UEP buys full I- and P-frame delivery (the\n"
      "frames whose loss stalls or corrupts the whole GOP) by letting the\n"
      "self-contained B frames ride unprotected.\n");
  return 0;
}
