// Reliable file distribution to a heterogeneous receiver set — the "FEC for
// reliable data delivery" companion use the paper cites [16], and a live
// demonstration of its Section 5 observation that one parity packet repairs
// independent single-packet losses at many receivers simultaneously.
//
// A ~300 KB synthetic WAV file is multicast in k=8 blocks to receivers at
// different distances (different loss rates); the sender answers aggregated
// NACKs with incremental parity. Prints per-receiver loss and the total
// repair bill, then verifies every receiver holds a byte-exact copy.
//
// Run: ./reliable_distribution
#include <cstdio>
#include <vector>

#include "media/audio.h"
#include "media/wav.h"
#include "reliable/reliable_multicast.h"
#include "util/stats.h"
#include "wireless/path_loss.h"
#include "net/loss.h"

using namespace rapidware;
using namespace rapidware::reliable;

int main() {
  // The payload: a 10 s WAV in the paper's capture format, chunked to
  // 1 KB pieces.
  media::AudioSource audio;
  const util::Bytes file = media::wav_encode(
      {media::paper_audio_format(), audio.read_frames(8000 * 10)});
  constexpr std::size_t kChunk = 1024;
  std::vector<util::Bytes> chunks;
  for (std::size_t off = 0; off < file.size(); off += kChunk) {
    chunks.emplace_back(file.begin() + static_cast<std::ptrdiff_t>(off),
                        file.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(off + kChunk, file.size())));
  }
  std::printf("distributing %zu bytes (%zu chunks) reliably to 4 receivers\n\n",
              file.size(), chunks.size());

  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 2001);
  const auto sender_node = net.add_node("server");
  const net::Address group = net::multicast_group(1, 7000);
  auto sender_socket = net.open(sender_node, 7001);

  struct Rx {
    std::string name;
    double distance;
    std::shared_ptr<net::SimSocket> socket;
    std::unique_ptr<ReliableMulticastReceiver> receiver;
  };
  const wireless::PathLossModel path = wireless::wavelan_model();
  std::vector<Rx> receivers;
  for (const auto& [name, dist] :
       {std::pair{"desk", 8.0}, {"lab", 25.0}, {"hall", 35.0},
        {"stairwell", 42.0}}) {
    Rx rx;
    rx.name = name;
    rx.distance = dist;
    const auto node = net.add_node(name);
    net::ChannelConfig config;
    config.loss = net::GilbertElliottLoss::with_average(path.loss_at(dist));
    net.set_channel(sender_node, node, std::move(config));
    rx.socket = net.open(node, 7000);
    rx.receiver = std::make_unique<ReliableMulticastReceiver>(
        rx.socket, sender_socket->local(), group, *clock);
    receivers.push_back(std::move(rx));
  }

  ReliableMulticastSender sender(sender_socket, group, 8, RepairMode::kParity);
  for (const auto& chunk : chunks) sender.send(chunk);
  sender.flush();
  const auto last_block =
      static_cast<std::uint32_t>((chunks.size() + 7) / 8 - 1);

  int rounds = 0;
  for (; rounds < 400; ++rounds) {
    bool all_done = true;
    for (auto& rx : receivers) {
      rx.receiver->poll();
      rx.receiver->tick();
      all_done &= rx.receiver->complete_through(last_block);
    }
    sender.service();
    clock->advance(100'000);
    if (all_done) break;
  }

  std::printf("%-10s %8s %12s %10s %12s\n", "receiver", "dist", "model loss",
              "NACKs", "complete");
  for (auto& rx : receivers) {
    std::printf("%-10s %6.0f m %12s %10llu %12s\n", rx.name.c_str(),
                rx.distance, util::percent(path.loss_at(rx.distance)).c_str(),
                static_cast<unsigned long long>(rx.receiver->stats().nacks_sent),
                rx.receiver->complete_through(last_block) ? "yes" : "NO");
  }
  const auto& s = sender.stats();
  std::printf("\nsender: %llu data packets, %llu parity repairs (%.1f%% "
              "overhead), %llu NACKs aggregated, %d rounds\n",
              static_cast<unsigned long long>(s.data_packets),
              static_cast<unsigned long long>(s.parity_packets),
              100.0 * static_cast<double>(s.repair_packets()) /
                  static_cast<double>(s.data_packets),
              static_cast<unsigned long long>(s.nacks_received), rounds);

  // Verify byte-exact reassembly everywhere.
  bool all_exact = true;
  for (auto& rx : receivers) {
    util::Bytes reassembled;
    for (auto& chunk : rx.receiver->take_delivered()) {
      reassembled.insert(reassembled.end(), chunk.begin(), chunk.end());
    }
    const bool exact = reassembled == file;
    all_exact &= exact;
    if (!exact) std::printf("MISMATCH at %s!\n", rx.name.c_str());
  }
  std::printf("%s\n", all_exact
                          ? "\nevery receiver reassembled a byte-exact copy."
                          : "\nERROR: corruption detected");
  return all_exact ? 0 : 1;
}
