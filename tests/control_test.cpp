// Tests for FilterSpec/FilterRegistry/FilterContainer and the control
// protocol (ControlServer + ControlManager) — the paper's upload and
// management path.
#include <gtest/gtest.h>

#include "core/control.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "core/filter_registry.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace rapidware::core {
namespace {

using util::Bytes;

/// Test filter exposing a tunable parameter.
class DelayTagFilter final : public PacketFilter {
 public:
  explicit DelayTagFilter(std::uint8_t tag)
      : PacketFilter("dtag"), tag_(tag) {}

  std::string describe() const override {
    return "dtag(" + std::to_string(tag_.load()) + ")";
  }

  ParamMap params() const override {
    return {{"tag", std::to_string(tag_.load())}};
  }

  bool set_param(const std::string& key, const std::string& value) override {
    if (key != "tag") return false;
    tag_.store(static_cast<std::uint8_t>(std::stoi(value)));
    return true;
  }

 protected:
  void on_packet(Bytes packet) override {
    packet.push_back(tag_.load());
    emit(packet);
  }

 private:
  std::atomic<std::uint8_t> tag_;
};

void populate_registry(FilterRegistry& reg) {
  reg.register_factory("dtag", [](const ParamMap& params) {
    std::uint8_t tag = 0;
    if (auto it = params.find("tag"); it != params.end()) {
      tag = static_cast<std::uint8_t>(std::stoi(it->second));
    }
    return std::make_shared<DelayTagFilter>(tag);
  });
  reg.register_factory("null", [](const ParamMap&) {
    return std::make_shared<NullFilter>();
  });
}

// ---------------------------------------------------------------------------
// FilterSpec

TEST(FilterSpec, SerializationRoundTrips) {
  FilterSpec spec{"fec-encode", {{"n", "6"}, {"k", "4"}}};
  const Bytes blob = spec.serialize();
  EXPECT_EQ(FilterSpec::deserialize(blob), spec);
}

TEST(FilterSpec, EmptyParamsRoundTrip) {
  FilterSpec spec{"null", {}};
  EXPECT_EQ(FilterSpec::deserialize(spec.serialize()), spec);
}

TEST(FilterSpec, CorruptBlobThrows) {
  EXPECT_THROW(FilterSpec::deserialize(util::to_bytes("xx")), util::SerialError);
}

// ---------------------------------------------------------------------------
// FilterRegistry

TEST(FilterRegistry, CreatesRegisteredFilter) {
  FilterRegistry reg;
  populate_registry(reg);
  EXPECT_TRUE(reg.contains("dtag"));
  auto f = reg.create({"dtag", {{"tag", "3"}}});
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->params().at("tag"), "3");
}

TEST(FilterRegistry, UnknownNameThrows) {
  FilterRegistry reg;
  populate_registry(reg);
  EXPECT_THROW(reg.create({"missing", {}}), std::out_of_range);
}

TEST(FilterRegistry, NamesListsFactoriesAndAliases) {
  FilterRegistry reg;
  populate_registry(reg);
  reg.register_alias("uploaded", {"dtag", {{"tag", "9"}}});
  const auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "dtag"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "uploaded"), names.end());
}

TEST(FilterRegistry, AliasResolvesWithDefaults) {
  FilterRegistry reg;
  populate_registry(reg);
  reg.register_alias("uploaded", {"dtag", {{"tag", "9"}}});
  auto f = reg.create({"uploaded", {}});
  EXPECT_EQ(f->params().at("tag"), "9");
}

TEST(FilterRegistry, InstantiationParamsOverrideAliasDefaults) {
  FilterRegistry reg;
  populate_registry(reg);
  reg.register_alias("uploaded", {"dtag", {{"tag", "9"}}});
  auto f = reg.create({"uploaded", {{"tag", "4"}}});
  EXPECT_EQ(f->params().at("tag"), "4");
}

TEST(FilterRegistry, AliasOfAliasResolves) {
  FilterRegistry reg;
  populate_registry(reg);
  reg.register_alias("a1", {"dtag", {{"tag", "1"}}});
  reg.register_alias("a2", {"a1", {{"tag", "2"}}});
  auto f = reg.create({"a2", {}});
  EXPECT_EQ(f->params().at("tag"), "2");
}

TEST(FilterRegistry, AliasCycleFailsCleanly) {
  FilterRegistry reg;
  populate_registry(reg);
  reg.register_alias("x", {"y", {}});
  reg.register_alias("y", {"x", {}});
  EXPECT_THROW(reg.create({"x", {}}), std::out_of_range);
}

// ---------------------------------------------------------------------------
// FilterContainer

TEST(FilterContainer, AddEnumerateTake) {
  FilterContainer container;
  container.add(std::make_shared<NullFilter>("a"));
  container.add(std::make_shared<NullFilter>("b"));
  EXPECT_EQ(container.size(), 2u);
  EXPECT_EQ(container.enumerate(), (std::vector<std::string>{"a", "b"}));

  auto f = container.take("a");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->name(), "a");
  EXPECT_EQ(container.size(), 1u);
  EXPECT_EQ(container.take("a"), nullptr);
}

TEST(FilterContainer, AddNullThrows) {
  FilterContainer container;
  EXPECT_THROW(container.add(nullptr), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Control protocol end to end

struct ControlHarness {
  std::shared_ptr<QueuePacketSource> source =
      std::make_shared<QueuePacketSource>();
  std::shared_ptr<CollectingPacketSink> sink =
      std::make_shared<CollectingPacketSink>();
  // Declared before the chain: the chain's destructor unbinds its metrics
  // into this registry, so the registry must outlive it.
  obs::Registry metrics;
  std::shared_ptr<FilterChain> chain;
  FilterRegistry registry;
  std::shared_ptr<ControlServer> server;
  std::unique_ptr<ControlManager> manager;

  ControlHarness() {
    chain = std::make_shared<FilterChain>(
        std::make_shared<PacketReaderEndpoint>("in", source),
        std::make_shared<PacketWriterEndpoint>("out", sink));
    chain->bind_metrics(metrics, "test/chain");
    chain->start();
    populate_registry(registry);
    server = std::make_shared<ControlServer>(chain, &registry, &metrics);
    manager = std::make_unique<ControlManager>(
        [this](util::ByteSpan request) { return server->handle(request); });
  }
  ~ControlHarness() {
    source->finish();
    chain->shutdown();
  }
};

TEST(ControlProtocol, ListAvailableReportsRegistry) {
  ControlHarness h;
  const auto names = h.manager->list_available();
  EXPECT_NE(std::find(names.begin(), names.end(), "dtag"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "null"), names.end());
}

TEST(ControlProtocol, InsertListRemove) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "7"}}}, 0);
  auto infos = h.manager->list_chain();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "dtag");
  EXPECT_EQ(infos[0].description, "dtag(7)");
  EXPECT_EQ(infos[0].params.at("tag"), "7");

  h.manager->remove(0);
  EXPECT_TRUE(h.manager->list_chain().empty());
}

TEST(ControlProtocol, InsertedFilterProcessesTraffic) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "5"}}}, 0);
  util::Writer w;
  w.u32(1);
  h.source->push(w.take());
  ASSERT_TRUE(h.sink->wait_for(1));
  EXPECT_EQ(h.sink->packets()[0].back(), 5);
}

TEST(ControlProtocol, SetParamReconfiguresLive) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "1"}}}, 0);
  h.manager->set_param(0, "tag", "2");
  util::Writer w;
  w.u32(0);
  h.source->push(w.take());
  ASSERT_TRUE(h.sink->wait_for(1));
  EXPECT_EQ(h.sink->packets()[0].back(), 2);
}

TEST(ControlProtocol, SetParamUnknownKeyReportsError) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "1"}}}, 0);
  EXPECT_THROW(h.manager->set_param(0, "bogus", "1"), ControlError);
}

TEST(ControlProtocol, ReorderViaManager) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "1"}}}, 0);
  h.manager->insert({"dtag", {{"tag", "2"}}}, 1);
  h.manager->reorder(0, 1);
  auto infos = h.manager->list_chain();
  EXPECT_EQ(infos[0].description, "dtag(2)");
  EXPECT_EQ(infos[1].description, "dtag(1)");
}

TEST(ControlProtocol, UploadThenInsertByAlias) {
  ControlHarness h;
  // "Third-party" filter definition uploaded at run time, then instantiated
  // by its uploaded name — the paper's dynamic-upload scenario.
  h.manager->upload("lowband-filter", {"dtag", {{"tag", "8"}}});
  const auto names = h.manager->list_available();
  EXPECT_NE(std::find(names.begin(), names.end(), "lowband-filter"),
            names.end());

  h.manager->insert({"lowband-filter", {}}, 0);
  util::Writer w;
  w.u32(0);
  h.source->push(w.take());
  ASSERT_TRUE(h.sink->wait_for(1));
  EXPECT_EQ(h.sink->packets()[0].back(), 8);
}

TEST(ControlProtocol, InsertUnknownFilterReportsError) {
  ControlHarness h;
  EXPECT_THROW(h.manager->insert({"no-such-filter", {}}, 0), ControlError);
}

TEST(ControlProtocol, RemoveOutOfRangeReportsError) {
  ControlHarness h;
  EXPECT_THROW(h.manager->remove(3), ControlError);
}

TEST(ControlProtocol, MalformedRequestReportsError) {
  ControlHarness h;
  const Bytes junk = util::to_bytes("\xff\x00garbage");
  const Bytes response = h.server->handle(junk);
  util::Reader r(response);
  EXPECT_EQ(r.u8(), 0);  // error status
}

TEST(ControlProtocol, RenderChainShowsPipeline) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "3"}}}, 0);
  EXPECT_EQ(h.manager->render_chain("wired-rx", "wireless-tx"),
            "[wired-rx] -> dtag(3) -> [wireless-tx]");
}

// ---------------------------------------------------------------------------
// STATS (protocol v2)

TEST(ControlProtocol, StatsLeadsWithProtocolVersion) {
  ControlHarness h;
  const std::string text = h.manager->stats_text();
  EXPECT_EQ(text.rfind("proto_version=" +
                           std::to_string(kControlProtocolVersion) + "\n",
                       0),
            0u)
      << text;
}

TEST(ControlProtocol, StatsRoundTripMatchesDelivery) {
  ControlHarness h;
  h.manager->insert({"dtag", {{"tag", "7"}}}, 0);
  util::Writer w;
  w.u32(1);
  for (int i = 0; i < 6; ++i) h.source->push(w.bytes());
  ASSERT_TRUE(h.sink->wait_for(6));

  const auto entries = h.manager->stats();
  auto value = [&](const std::string& name) -> std::string {
    for (const auto& [k, v] : entries) {
      if (k == name) return v;
    }
    return "<missing: " + name + ">";
  };
  // The tail endpoint's packet count must agree with the sink the test
  // observes directly — STATS is a faithful view, not a parallel ledger.
  EXPECT_EQ(value("test/chain/out/packets"),
            std::to_string(h.sink->count()));
#if RW_OBS_ENABLED
  EXPECT_EQ(value("test/chain/dtag/packets_in"), "6");
  EXPECT_EQ(value("test/chain/dtag/packets_out"), "6");
  EXPECT_EQ(value("test/chain/inserts"), "1");
#endif
}

TEST(ControlProtocol, StatsScopePrefixFilters) {
  ControlHarness h;
  h.metrics.counter("other/unrelated")->add();
  const auto all = h.manager->stats();
  const auto scoped = h.manager->stats("test/chain");
  EXPECT_LT(scoped.size(), all.size());
  for (const auto& [k, v] : scoped) {
    if (k == "proto_version") continue;  // always the first line
    EXPECT_EQ(k.rfind("test/chain", 0), 0u) << k;
  }
  // An unmatched prefix yields just the version line.
  const auto none = h.manager->stats("no/such/scope");
  ASSERT_EQ(none.size(), 1u);
  EXPECT_EQ(none[0].first, "proto_version");
}

TEST(ControlProtocol, UnknownOpReportsTypedError) {
  // The compat rule: ops outside the known range must answer with the
  // "unknown control op" error, never crash or misparse.
  ControlHarness h;
  util::Writer w;
  w.u8(0x7f);
  const Bytes response = h.server->handle(w.bytes());
  util::Reader r(response);
  EXPECT_EQ(r.u8(), 0);
  EXPECT_NE(r.str().find("unknown control op"), std::string::npos);
}

TEST(ControlProtocol, LocalFactoryHelper) {
  ControlHarness h;
  auto manager = ControlManager::local(h.server);
  EXPECT_NO_THROW(manager.list_chain());
}

}  // namespace
}  // namespace rapidware::core
