// Tests for the media substrate: packet format, audio/video sources,
// packetization, WAV round-trips, codecs, and receiver accounting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "media/audio.h"
#include "media/codecs.h"
#include "media/media_packet.h"
#include "media/playout.h"
#include "media/receiver_log.h"
#include "media/video.h"
#include "media/wav.h"

namespace rapidware::media {
namespace {

using util::Bytes;

// ---------------------------------------------------------------------------
// MediaPacket

TEST(MediaPacket, SerializationRoundTrips) {
  MediaPacket p;
  p.seq = 1234;
  p.timestamp_us = 987654321;
  p.frame_class = fec::FrameClass::kKey;
  p.payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(MediaPacket::parse(p.serialize()), p);
}

TEST(MediaPacket, EmptyPayloadAllowed) {
  MediaPacket p;
  EXPECT_EQ(MediaPacket::parse(p.serialize()), p);
}

TEST(MediaPacket, BadFrameClassThrows) {
  MediaPacket p;
  Bytes wire = p.serialize();
  wire[12] = 0x7f;  // frame class byte
  EXPECT_THROW(MediaPacket::parse(wire), util::SerialError);
}

TEST(MediaPacket, TruncatedHeaderThrows) {
  EXPECT_THROW(MediaPacket::parse(Bytes{1, 2, 3}), util::SerialError);
}

// ---------------------------------------------------------------------------
// AudioSource

TEST(AudioSource, PaperFormatRates) {
  const AudioFormat f = paper_audio_format();
  EXPECT_EQ(f.sample_rate, 8000u);
  EXPECT_EQ(f.channels, 2);
  EXPECT_EQ(f.bits_per_sample, 8);
  EXPECT_EQ(f.bytes_per_frame(), 2u);
  EXPECT_EQ(f.bytes_per_second(), 16'000u);
}

TEST(AudioSource, ProducesRequestedBytes) {
  AudioSource src;
  EXPECT_EQ(src.read_frames(160).size(), 320u);  // 20 ms stereo 8-bit
}

TEST(AudioSource, MediaTimeAdvances) {
  AudioSource src;
  src.read_frames(8000);  // one second
  EXPECT_EQ(src.media_time_us(), 1'000'000);
}

TEST(AudioSource, DeterministicForSeed) {
  AudioSource a(paper_audio_format(), 5);
  AudioSource b(paper_audio_format(), 5);
  EXPECT_EQ(a.read_frames(500), b.read_frames(500));
}

TEST(AudioSource, SignalHasAudioCharacter) {
  // Not constant, not white noise: the mean is near mid-scale and values
  // span a reasonable dynamic range.
  AudioSource src;
  const Bytes pcm = src.read_frames(8000);
  double sum = 0;
  std::uint8_t lo = 255, hi = 0;
  for (auto b : pcm) {
    sum += b;
    lo = std::min(lo, b);
    hi = std::max(hi, b);
  }
  EXPECT_NEAR(sum / static_cast<double>(pcm.size()), 127.5, 4.0);
  EXPECT_LT(lo, 70);
  EXPECT_GT(hi, 185);
}

TEST(AudioSource, SixteenBitFormat) {
  AudioFormat f;
  f.bits_per_sample = 16;
  AudioSource src(f);
  EXPECT_EQ(src.read_frames(100).size(), 400u);  // 2 ch x 2 bytes
}

TEST(AudioSource, RejectsBadFormats) {
  AudioFormat f;
  f.bits_per_sample = 12;
  EXPECT_THROW(AudioSource{f}, std::invalid_argument);
  AudioFormat g;
  g.channels = 0;
  EXPECT_THROW(AudioSource{g}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// AudioPacketizer

TEST(AudioPacketizer, PaperPacketGeometry) {
  AudioSource src;
  AudioPacketizer packetizer(src, 20);
  EXPECT_EQ(packetizer.frames_per_packet(), 160u);
  EXPECT_EQ(packetizer.payload_bytes(), 320u);
  EXPECT_EQ(packetizer.packet_duration_us(), 20'000);
}

TEST(AudioPacketizer, SequentialSeqAndTimestamps) {
  AudioSource src;
  AudioPacketizer packetizer(src, 20);
  for (std::uint32_t i = 0; i < 50; ++i) {
    const MediaPacket p = packetizer.next_packet();
    EXPECT_EQ(p.seq, i);
    EXPECT_EQ(p.timestamp_us, static_cast<std::int64_t>(i) * 20'000);
    EXPECT_EQ(p.frame_class, fec::FrameClass::kAudio);
    EXPECT_EQ(p.payload.size(), 320u);
  }
}

TEST(AudioPacketizer, TooShortPacketThrows) {
  AudioFormat f;
  f.sample_rate = 10;
  AudioSource src(f);
  EXPECT_THROW(AudioPacketizer(src, 20), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// VideoStreamSource

TEST(VideoSource, FollowsGopPattern) {
  VideoStreamSource src;
  const std::string pattern = src.format().gop_pattern;  // IBBPBBPBB
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (char kind : pattern) {
      const MediaPacket p = src.next_frame();
      const fec::FrameClass expected =
          kind == 'I' ? fec::FrameClass::kKey
          : kind == 'P' ? fec::FrameClass::kPredicted
                        : fec::FrameClass::kBidirectional;
      EXPECT_EQ(p.frame_class, expected);
    }
  }
}

TEST(VideoSource, FrameSizesOrdered) {
  VideoStreamSource src;
  double i_avg = 0, p_avg = 0, b_avg = 0;
  int i_n = 0, p_n = 0, b_n = 0;
  for (int f = 0; f < 900; ++f) {
    const MediaPacket p = src.next_frame();
    switch (p.frame_class) {
      case fec::FrameClass::kKey: i_avg += p.payload.size(); ++i_n; break;
      case fec::FrameClass::kPredicted: p_avg += p.payload.size(); ++p_n; break;
      default: b_avg += p.payload.size(); ++b_n; break;
    }
  }
  EXPECT_GT(i_avg / i_n, p_avg / p_n);
  EXPECT_GT(p_avg / p_n, b_avg / b_n);
}

TEST(VideoSource, TimestampsMatchFrameRate) {
  VideoStreamSource src;
  const MediaPacket a = src.next_frame();
  const MediaPacket b = src.next_frame();
  EXPECT_EQ(b.timestamp_us - a.timestamp_us, src.frame_duration_us());
  EXPECT_EQ(src.frame_duration_us(), 40'000);  // 25 fps
}

TEST(VideoSource, RejectsBadPatterns) {
  VideoFormat f;
  f.gop_pattern = "IXB";
  EXPECT_THROW(VideoStreamSource{f}, std::invalid_argument);
  VideoFormat g;
  g.gop_pattern = "";
  EXPECT_THROW(VideoStreamSource{g}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// WAV

TEST(Wav, RoundTripsPaperFormat) {
  AudioSource src;
  WavFile wav{paper_audio_format(), src.read_frames(800)};
  const Bytes encoded = wav_encode(wav);
  EXPECT_EQ(encoded.size(), 44u + wav.pcm.size());
  EXPECT_EQ(wav_decode(encoded), wav);
}

TEST(Wav, RoundTrips16Bit) {
  AudioFormat f;
  f.bits_per_sample = 16;
  f.channels = 1;
  f.sample_rate = 44'100;
  AudioSource src(f);
  WavFile wav{f, src.read_frames(100)};
  EXPECT_EQ(wav_decode(wav_encode(wav)), wav);
}

TEST(Wav, RejectsGarbage) {
  EXPECT_THROW(wav_decode(util::to_bytes("not a wav file at all....")),
               util::SerialError);
}

TEST(Wav, RejectsTruncatedData) {
  AudioSource src;
  WavFile wav{paper_audio_format(), src.read_frames(100)};
  Bytes encoded = wav_encode(wav);
  encoded.resize(encoded.size() - 10);
  EXPECT_THROW(wav_decode(encoded), util::SerialError);
}

// ---------------------------------------------------------------------------
// Codecs

TEST(Codecs, ToMonoAverages) {
  AudioFormat f;  // 8-bit stereo
  const Bytes stereo{100, 200, 50, 150};
  const Bytes mono = to_mono(stereo, f);
  ASSERT_EQ(mono.size(), 2u);
  EXPECT_EQ(mono[0], 150);
  EXPECT_EQ(mono[1], 100);
}

TEST(Codecs, ToMonoHalvesBandwidth) {
  AudioSource src;
  const Bytes pcm = src.read_frames(400);
  EXPECT_EQ(to_mono(pcm, src.format()).size(), pcm.size() / 2);
}

TEST(Codecs, DownsampleHalvesFrames) {
  AudioSource src;
  const Bytes pcm = src.read_frames(400);
  EXPECT_EQ(downsample_half(pcm, src.format()).size(), pcm.size() / 2);
}

TEST(Codecs, MisalignedPcmThrows) {
  AudioFormat f;  // stereo 8-bit: frame = 2 bytes
  EXPECT_THROW(to_mono(Bytes{1, 2, 3}, f), std::invalid_argument);
  EXPECT_THROW(downsample_half(Bytes{1}, f), std::invalid_argument);
}

TEST(Codecs, MulawRoundTripAccuracy) {
  // mu-law is lossy; error must stay within the segment quantization step
  // (~2% of full scale for large samples, tiny for small ones).
  for (std::int32_t s = -32'000; s <= 32'000; s += 97) {
    const auto sample = static_cast<std::int16_t>(s);
    const std::int16_t rt = mulaw_decode_sample(mulaw_encode_sample(sample));
    EXPECT_NEAR(rt, sample, std::max(16.0, std::abs(s) * 0.04)) << "s=" << s;
  }
}

TEST(Codecs, MulawCompressesTwoToOne) {
  AudioFormat f;
  f.bits_per_sample = 16;
  AudioSource src(f);
  const Bytes pcm = src.read_frames(256);
  const Bytes encoded = mulaw_encode(pcm);
  EXPECT_EQ(encoded.size(), pcm.size() / 2);
  EXPECT_EQ(mulaw_decode(encoded).size(), pcm.size());
}

TEST(Codecs, MulawOddInputThrows) {
  EXPECT_THROW(mulaw_encode(Bytes{1}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ReceiverLog

MediaPacket packet_with_seq(std::uint32_t seq) {
  MediaPacket p;
  p.seq = seq;
  p.timestamp_us = static_cast<std::int64_t>(seq) * 20'000;
  return p;
}

TEST(ReceiverLog, CountsDeliveryRate) {
  ReceiverLog log(100);
  for (std::uint32_t i = 0; i < 100; ++i) {
    if (i % 10 == 0) continue;  // drop 10%
    log.on_packet(packet_with_seq(i), i * 20'000);
  }
  EXPECT_EQ(log.delivered(), 90u);
  EXPECT_EQ(log.expected(), 100u);
  EXPECT_DOUBLE_EQ(log.delivery_rate(), 0.9);
}

TEST(ReceiverLog, DuplicatesDoNotInflate) {
  ReceiverLog log;
  log.on_packet(packet_with_seq(0), 0);
  log.on_packet(packet_with_seq(0), 10);
  EXPECT_EQ(log.delivered(), 1u);
  EXPECT_EQ(log.duplicates(), 1u);
}

TEST(ReceiverLog, TracksOutOfOrder) {
  ReceiverLog log;
  log.on_packet(packet_with_seq(3), 0);
  log.on_packet(packet_with_seq(1), 10);
  EXPECT_EQ(log.out_of_order(), 1u);
}

TEST(ReceiverLog, BinsMatchFigure7Shape) {
  ReceiverLog log(432);
  // 5 bins' worth with losses only in the middle bin.
  for (std::uint32_t i = 0; i < 432 * 5; ++i) {
    const bool middle = i >= 432 * 2 && i < 432 * 3;
    if (middle && i % 4 == 0) continue;  // 25% loss in bin 2
    log.on_packet(packet_with_seq(i), i * 20'000);
  }
  const auto bins = log.bins();
  ASSERT_EQ(bins.size(), 5u);
  EXPECT_DOUBLE_EQ(bins[0].rate, 1.0);
  EXPECT_NEAR(bins[2].rate, 0.75, 0.01);
  EXPECT_DOUBLE_EQ(bins[4].rate, 1.0);
  EXPECT_EQ(bins[1].first_seq, 432u);
}

TEST(ReceiverLog, PartialFinalBin) {
  ReceiverLog log(100);
  for (std::uint32_t i = 0; i < 150; ++i) {
    log.on_packet(packet_with_seq(i), i);
  }
  const auto bins = log.bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[1].expected, 50u);
}

TEST(ReceiverLog, JitterZeroForPerfectTiming) {
  ReceiverLog log;
  for (std::uint32_t i = 0; i < 100; ++i) {
    // Arrival spacing exactly matches media spacing.
    log.on_packet(packet_with_seq(i), 1'000'000 + i * 20'000);
  }
  EXPECT_DOUBLE_EQ(log.smoothed_jitter_us(), 0.0);
}

TEST(ReceiverLog, JitterGrowsWithVariance) {
  ReceiverLog steady, jittery;
  util::Rng rng(3);
  for (std::uint32_t i = 0; i < 500; ++i) {
    steady.on_packet(packet_with_seq(i), i * 20'000);
    jittery.on_packet(packet_with_seq(i),
                      i * 20'000 + static_cast<util::Micros>(rng.next_below(8'000)));
  }
  EXPECT_GT(jittery.smoothed_jitter_us(), steady.smoothed_jitter_us());
  EXPECT_GT(jittery.jitter_stats().mean(), 1000.0);
}

TEST(ReceiverLog, ZeroBinSizeThrows) {
  EXPECT_THROW(ReceiverLog(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PlayoutBuffer

TEST(PlayoutBuffer, RejectsBadConfig) {
  EXPECT_THROW(PlayoutBuffer(0, 100), std::invalid_argument);
  EXPECT_THROW(PlayoutBuffer(20'000, -1), std::invalid_argument);
}

TEST(PlayoutBuffer, OnTimeWhenArrivalsMatchCadence) {
  PlayoutBuffer buffer(20'000, 40'000);
  for (std::uint32_t seq = 0; seq < 100; ++seq) {
    buffer.on_available(seq, 1'000'000 + seq * 20'000);
  }
  const auto r = buffer.report(99);
  EXPECT_EQ(r.on_time, 100u);
  EXPECT_EQ(r.late, 0u);
  EXPECT_EQ(r.missing, 0u);
  EXPECT_DOUBLE_EQ(r.on_time_rate, 1.0);
  EXPECT_EQ(r.p99_extra_delay_us, 0);
}

TEST(PlayoutBuffer, JitterBeyondDelayIsLate) {
  PlayoutBuffer buffer(20'000, 30'000);
  buffer.on_available(0, 0);       // anchor: deadline(seq) = 30ms + seq*20ms
  buffer.on_available(1, 55'000);  // deadline 50 ms -> 5 ms late
  buffer.on_available(2, 69'000);  // deadline 70 ms -> on time
  const auto r = buffer.report(2);
  EXPECT_EQ(r.on_time, 2u);
  EXPECT_EQ(r.late, 1u);
  EXPECT_GE(r.p99_extra_delay_us, 5'000);
}

TEST(PlayoutBuffer, MissingPacketsCounted) {
  PlayoutBuffer buffer(20'000, 40'000);
  buffer.on_available(0, 0);
  buffer.on_available(2, 40'000);
  const auto r = buffer.report(3);
  EXPECT_EQ(r.on_time, 2u);
  EXPECT_EQ(r.missing, 2u);  // seq 1 and 3
  EXPECT_DOUBLE_EQ(r.on_time_rate, 0.5);
}

TEST(PlayoutBuffer, DuplicateKeepsEarliestAvailability) {
  PlayoutBuffer buffer(20'000, 10'000);
  buffer.on_available(0, 0);
  buffer.on_available(1, 25'000);   // on time (deadline 30 ms)
  buffer.on_available(1, 99'000);   // late duplicate must not regress it
  EXPECT_EQ(buffer.report(1).on_time, 2u);
}

TEST(PlayoutBuffer, AnchorAccountsForMidStreamJoin) {
  // First packet seen is seq 10: the anchor back-dates t0 so deadlines for
  // later packets stay on the original cadence.
  PlayoutBuffer buffer(20'000, 40'000);
  buffer.on_available(10, 1'000'000);
  EXPECT_EQ(buffer.deadline(10), 1'040'000);
  EXPECT_EQ(buffer.deadline(11), 1'060'000);
}

TEST(PlayoutBuffer, LargerDelayConvertsLateToOnTime) {
  // The defining trade-off: the same arrival pattern under a longer delay.
  const auto run = [](util::Micros delay) {
    PlayoutBuffer buffer(20'000, delay);
    util::Rng rng(4);
    for (std::uint32_t seq = 0; seq < 500; ++seq) {
      const util::Micros jitter =
          static_cast<util::Micros>(rng.next_below(60'000));
      buffer.on_available(seq, seq * 20'000 + jitter);
    }
    return buffer.report(499).on_time_rate;
  };
  EXPECT_LT(run(10'000), run(30'000));
  EXPECT_LT(run(30'000), run(70'000));
  EXPECT_GT(run(70'000), 0.99);
}

}  // namespace
}  // namespace rapidware::media
