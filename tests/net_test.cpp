// Tests for the network substrate: loss models, channel models, and the
// SimNetwork datagram fabric (unicast, multicast, blocking receive).
#include <gtest/gtest.h>

#include <thread>

#include "net/link.h"
#include "net/loss.h"
#include "net/sim_network.h"
#include "util/stats.h"

namespace rapidware::net {
namespace {

using util::Bytes;
using util::Rng;
using util::to_bytes;
using util::to_string;

// ---------------------------------------------------------------------------
// Loss models

TEST(LossModels, PerfectChannelNeverDrops) {
  PerfectChannel loss;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(loss.drop(rng));
  EXPECT_EQ(loss.average_loss(), 0.0);
}

TEST(LossModels, BernoulliMatchesRate) {
  BernoulliLoss loss(0.2);
  Rng rng(2);
  int drops = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) drops += loss.drop(rng);
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.2, 0.01);
  EXPECT_DOUBLE_EQ(loss.average_loss(), 0.2);
}

TEST(LossModels, BernoulliRejectsBadProbability) {
  EXPECT_THROW(BernoulliLoss(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliLoss(1.1), std::invalid_argument);
}

TEST(LossModels, BernoulliRetunes) {
  BernoulliLoss loss(0.0);
  loss.set_average_loss(1.0);
  Rng rng(3);
  EXPECT_TRUE(loss.drop(rng));
}

TEST(LossModels, GilbertElliottAverageMatchesTarget) {
  for (const double target : {0.01, 0.05, 0.2}) {
    auto loss = GilbertElliottLoss::with_average(target, 4.0, 0.75);
    EXPECT_NEAR(loss->average_loss(), target, 1e-9);
    Rng rng(4);
    int drops = 0;
    const int trials = 400'000;
    for (int i = 0; i < trials; ++i) drops += loss->drop(rng);
    EXPECT_NEAR(static_cast<double>(drops) / trials, target, target * 0.25)
        << "target " << target;
  }
}

TEST(LossModels, GilbertElliottProducesBursts) {
  // At equal average loss, GE must produce longer loss runs than Bernoulli.
  const double target = 0.1;
  auto ge = GilbertElliottLoss::with_average(target, 8.0, 0.9);
  BernoulliLoss bernoulli(target);
  Rng rng_a(5), rng_b(5);

  auto mean_run = [](auto& model, Rng& rng) {
    int runs = 0, losses = 0;
    bool in_run = false;
    for (int i = 0; i < 200'000; ++i) {
      const bool d = model.drop(rng);
      losses += d;
      if (d && !in_run) ++runs;
      in_run = d;
    }
    return runs == 0 ? 0.0 : static_cast<double>(losses) / runs;
  };
  const double ge_run = mean_run(*ge, rng_a);
  const double be_run = mean_run(bernoulli, rng_b);
  EXPECT_GT(ge_run, be_run * 1.5);
}

TEST(LossModels, GilbertElliottRetuneChangesRate) {
  auto loss = GilbertElliottLoss::with_average(0.01);
  loss->set_average_loss(0.3);
  EXPECT_NEAR(loss->average_loss(), 0.3, 1e-9);
}

TEST(LossModels, TraceReplaysExactly) {
  TraceLoss loss({true, false, false, true});
  Rng rng(6);
  EXPECT_TRUE(loss.drop(rng));
  EXPECT_FALSE(loss.drop(rng));
  EXPECT_FALSE(loss.drop(rng));
  EXPECT_TRUE(loss.drop(rng));
  EXPECT_TRUE(loss.drop(rng));  // loops
  EXPECT_DOUBLE_EQ(loss.average_loss(), 0.5);
}

TEST(LossModels, EmptyTraceThrows) {
  EXPECT_THROW(TraceLoss({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Channel

TEST(Channel, AppliesLatencyAndSerialization) {
  ChannelConfig config;
  config.latency_us = 1000;
  config.bandwidth_bps = 1'000'000;  // 1 Mbps -> 8 us per byte
  Channel ch(config, Rng(7));

  const auto at = ch.transit(1000, 0);  // 1000 bytes = 8000 us serialization
  ASSERT_TRUE(at.has_value());
  EXPECT_EQ(*at, 1000 + 8000);
}

TEST(Channel, QueueingDelaysBackToBackPackets) {
  ChannelConfig config;
  config.bandwidth_bps = 8'000'000;  // 1 us per byte
  Channel ch(config, Rng(8));
  const auto first = ch.transit(1000, 0);
  const auto second = ch.transit(1000, 0);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*first, 1000);
  EXPECT_EQ(*second, 2000);  // waits for the link
}

TEST(Channel, TailDropsWhenQueueDelayExceeded) {
  ChannelConfig config;
  config.bandwidth_bps = 8'000;  // 1 ms per byte: trivially saturated
  config.max_queue_delay_us = 5'000;
  Channel ch(config, Rng(9));
  int delivered = 0;
  for (int i = 0; i < 100; ++i) delivered += ch.transit(100, 0).has_value();
  EXPECT_LT(delivered, 100);
  EXPECT_GT(ch.stats().dropped_queue, 0u);
}

TEST(Channel, InfiniteBandwidthIsInstant) {
  Channel ch(ChannelConfig{}, Rng(10));
  EXPECT_EQ(*ch.transit(1'000'000, 42), 42);
}

TEST(Channel, LossCountsInStats) {
  ChannelConfig config;
  config.loss = std::make_shared<BernoulliLoss>(1.0);
  Channel ch(config, Rng(11));
  EXPECT_FALSE(ch.transit(10, 0).has_value());
  EXPECT_EQ(ch.stats().dropped_loss, 1u);
  EXPECT_EQ(ch.stats().delivered(), 0u);
}

// ---------------------------------------------------------------------------
// SimNetwork

struct NetFixture {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  SimNetwork net{clock, 42};
  NodeId a = net.add_node("a");
  NodeId b = net.add_node("b");
  NodeId c = net.add_node("c");
};

TEST(SimNetwork, UnicastDelivery) {
  NetFixture f;
  auto sa = f.net.open(f.a, 100);
  auto sb = f.net.open(f.b, 200);
  sa->send_to({f.b, 200}, to_bytes("hello"));
  const auto d = sb->recv(1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "hello");
  EXPECT_EQ(d->src, (Address{f.a, 100}));
  EXPECT_EQ(sb->packets_received(), 1u);
}

TEST(SimNetwork, UnknownDestinationIsDropped) {
  NetFixture f;
  auto sa = f.net.open(f.a);
  sa->send_to({f.b, 999}, to_bytes("void"));
  EXPECT_EQ(f.net.datagrams_routed(), 1u);  // routed but nobody bound
}

TEST(SimNetwork, RecvTimesOut) {
  NetFixture f;
  auto sb = f.net.open(f.b, 1);
  EXPECT_FALSE(sb->recv(10).has_value());
}

TEST(SimNetwork, RecvBlocksUntilArrival) {
  NetFixture f;
  auto sa = f.net.open(f.a, 1);
  auto sb = f.net.open(f.b, 2);
  // The tiny sleep makes "receiver already blocked" the common interleaving;
  // if the send wins the race anyway, recv(-1) finds the queued datagram and
  // the assertion is unchanged — no timing dependence in the verdict.
  std::thread sender([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sa->send_to({f.b, 2}, to_bytes("late"));
  });
  const auto d = sb->recv(-1);
  sender.join();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "late");
}

TEST(SimNetwork, CloseUnblocksReceiver) {
  NetFixture f;
  auto sb = f.net.open(f.b, 2);
  // Same race-tolerant shape as above: close-before-recv and
  // close-during-recv both legitimately yield nullopt.
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sb->close();
  });
  EXPECT_FALSE(sb->recv(-1).has_value());
  closer.join();
}

TEST(SimNetwork, SendOnClosedSocketThrows) {
  NetFixture f;
  auto sa = f.net.open(f.a, 1);
  sa->close();
  EXPECT_THROW(sa->send_to({f.b, 1}, to_bytes("x")), std::runtime_error);
}

TEST(SimNetwork, PortConflictThrows) {
  NetFixture f;
  auto s1 = f.net.open(f.a, 7);
  EXPECT_THROW(f.net.open(f.a, 7), std::invalid_argument);
  s1->close();
  EXPECT_NO_THROW(f.net.open(f.a, 7));  // freed after close
}

TEST(SimNetwork, EphemeralPortsAreDistinct) {
  NetFixture f;
  auto s1 = f.net.open(f.a);
  auto s2 = f.net.open(f.a);
  EXPECT_NE(s1->local().port, s2->local().port);
}

TEST(SimNetwork, UnknownNodeThrows) {
  NetFixture f;
  EXPECT_THROW(f.net.open(999), std::invalid_argument);
}

TEST(SimNetwork, MulticastReachesAllMembersExceptSender) {
  NetFixture f;
  const Address group = multicast_group(1, 500);
  auto sa = f.net.open(f.a);
  auto sb = f.net.open(f.b);
  auto sc = f.net.open(f.c);
  sa->join(group);
  sb->join(group);
  sc->join(group);

  sa->send_to(group, to_bytes("mc"));
  EXPECT_TRUE(sb->recv(1000).has_value());
  EXPECT_TRUE(sc->recv(1000).has_value());
  EXPECT_FALSE(sa->recv(10).has_value());  // no loopback
}

TEST(SimNetwork, LeaveStopsDelivery) {
  NetFixture f;
  const Address group = multicast_group(2, 500);
  auto sa = f.net.open(f.a);
  auto sb = f.net.open(f.b);
  sb->join(group);
  sb->leave(group);
  sa->send_to(group, to_bytes("gone"));
  EXPECT_FALSE(sb->recv(10).has_value());
}

TEST(SimNetwork, JoiningUnicastAddressThrows) {
  NetFixture f;
  auto sa = f.net.open(f.a);
  EXPECT_THROW(sa->join({f.b, 5}), std::invalid_argument);
}

TEST(SimNetwork, ChannelLossAppliesPerLink) {
  NetFixture f;
  ChannelConfig lossy;
  lossy.loss = std::make_shared<BernoulliLoss>(1.0);
  f.net.set_channel(f.a, f.b, std::move(lossy));

  const Address group = multicast_group(3, 500);
  auto sa = f.net.open(f.a);
  auto sb = f.net.open(f.b);
  auto sc = f.net.open(f.c);
  sb->join(group);
  sc->join(group);
  sa->send_to(group, to_bytes("selective"));
  EXPECT_FALSE(sb->recv(10).has_value());  // a->b drops everything
  EXPECT_TRUE(sc->recv(1000).has_value());  // a->c clean
}

TEST(SimNetwork, ModeledTimestampsUseChannel) {
  NetFixture f;
  ChannelConfig slow;
  slow.latency_us = 5'000;
  f.net.set_channel(f.a, f.b, std::move(slow));
  f.clock->set(1'000'000);

  auto sa = f.net.open(f.a, 1);
  auto sb = f.net.open(f.b, 2);
  sa->send_to({f.b, 2}, to_bytes("t"));
  const auto d = sb->recv(1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sent_at, 1'000'000);
  EXPECT_EQ(d->deliver_at, 1'005'000);
}

TEST(SimNetwork, ManyToOneConcurrentSendersAllDeliver) {
  NetFixture f;
  auto sink = f.net.open(f.c, 9);
  constexpr int kSenders = 8, kEach = 200;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&, s] {
      auto sock = f.net.open(s % 2 == 0 ? f.a : f.b);
      for (int i = 0; i < kEach; ++i) {
        sock->send_to({f.c, 9}, to_bytes(std::to_string(s)));
      }
    });
  }
  for (auto& t : threads) t.join();
  int got = 0;
  while (sink->recv(10).has_value()) ++got;
  EXPECT_EQ(got, kSenders * kEach);
}

TEST(AddressFormatting, RendersBothKinds) {
  EXPECT_EQ((Address{3, 80}).to_string(), "n3:80");
  EXPECT_EQ(multicast_group(7, 90).to_string(), "mc7:90");
}

// Regression: node_name() used to return a const reference into the
// internal names vector. A concurrent add_node() reallocating that vector
// left the caller reading freed memory the moment the mutex dropped. The
// accessor now returns a copy made under the lock; this hammers the old
// failure schedule (readers racing growth) — under ASan the reference
// version fails here.
TEST(SimNetwork, NodeNameIsStableUnderConcurrentAddNode) {
  SimNetwork net;
  const NodeId first = net.add_node("node-0");

  std::thread grower([&] {
    for (int i = 1; i <= 512; ++i) {
      net.add_node("node-" + std::to_string(i));
    }
  });
  for (int i = 0; i < 4'000; ++i) {
    EXPECT_EQ(net.node_name(first), "node-0");
  }
  grower.join();
  EXPECT_EQ(net.node_name(511), "node-511");
}

}  // namespace
}  // namespace rapidware::net
