// Tests for the FEC decision core (raplets::FecPolicy) and the closed-loop
// controller (raplets::AdaptiveFecController) driving a live FilterChain
// through the control path on virtual time.
//
// The controller properties the fleet simulation leans on are proved here
// at chain scale:
//   (a) loss above threshold  ⇒ FEC inserted within a bounded number of
//       virtual ticks;
//   (b) recovery              ⇒ FEC removed within a bounded number of ticks;
//   (c) no reconfiguration ever drops, duplicates, reorders, or corrupts a
//       packet (sequence-stamped oracle across live insert/retune/remove).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/control.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "filters/registry.h"
#include "obs/metrics.h"
#include "raplets/fec_controller.h"
#include "raplets/fec_policy.h"
#include "sim/virtual_clock.h"
#include "testing/sequence_stream.h"

namespace rapidware::raplets {
namespace {

constexpr util::Micros kSecond = 1'000'000;

// ---------------------------------------------------------------------------
// FecPolicy: the pure decision core

TEST(FecPolicy, RejectsBadConfig) {
  FecPolicyConfig c;
  c.remove_threshold = c.insert_threshold + 0.1;  // hysteresis inverted
  EXPECT_THROW(FecPolicy{c}, std::invalid_argument);

  c = {};
  c.alpha = 0.0;
  EXPECT_THROW(FecPolicy{c}, std::invalid_argument);
  c.alpha = 1.5;
  EXPECT_THROW(FecPolicy{c}, std::invalid_argument);

  c = {};
  c.rungs.clear();
  EXPECT_THROW(FecPolicy{c}, std::invalid_argument);

  c = {};
  c.rungs = {{0.0, 4, 4}};  // n must exceed k
  EXPECT_THROW(FecPolicy{c}, std::invalid_argument);

  c = {};
  c.rungs = {{0.0, 6, 4}, {0.05, 4, 2}, {0.04, 2, 1}};  // not ascending
  EXPECT_THROW(FecPolicy{c}, std::invalid_argument);
}

TEST(FecPolicy, FirstSamplePrimesTheEwma) {
  FecPolicyConfig c;
  c.cooldown_us = 0;
  FecPolicy policy(c);
  // Unprimed: the first sample becomes the estimate directly, so a fresh
  // policy facing a lossy link reacts on its very first update.
  const auto d = policy.update(kSecond, 0.08);
  EXPECT_EQ(d.action, FecPolicy::Action::kInsert);
  EXPECT_DOUBLE_EQ(d.smoothed, 0.08);
  EXPECT_EQ(d.n, 4u);  // 0.08 ≥ 0.05 rung
  EXPECT_EQ(d.k, 2u);
}

TEST(FecPolicy, ClimbsAndDescendsTheLadder) {
  FecPolicyConfig c;
  c.alpha = 1.0;  // no smoothing: the ladder logic in isolation
  c.cooldown_us = 0;
  FecPolicy policy(c);

  auto d = policy.update(1 * kSecond, 0.02);
  EXPECT_EQ(d.action, FecPolicy::Action::kInsert);
  EXPECT_EQ(d.n, 6u);
  EXPECT_EQ(d.k, 4u);

  d = policy.update(2 * kSecond, 0.20);  // top rung
  EXPECT_EQ(d.action, FecPolicy::Action::kRetune);
  EXPECT_EQ(d.n, 2u);
  EXPECT_EQ(d.k, 1u);

  d = policy.update(3 * kSecond, 0.06);  // back down one rung
  EXPECT_EQ(d.action, FecPolicy::Action::kRetune);
  EXPECT_EQ(d.n, 4u);
  EXPECT_EQ(d.k, 2u);

  d = policy.update(4 * kSecond, 0.06);  // steady: nothing to do
  EXPECT_EQ(d.action, FecPolicy::Action::kNone);

  d = policy.update(5 * kSecond, 0.001);  // below remove_threshold
  EXPECT_EQ(d.action, FecPolicy::Action::kRemove);
  EXPECT_FALSE(policy.active());
}

TEST(FecPolicy, HysteresisBandHoldsFec) {
  FecPolicyConfig c;
  c.alpha = 1.0;
  c.cooldown_us = 0;
  FecPolicy policy(c);
  EXPECT_EQ(policy.update(1 * kSecond, 0.02).action,
            FecPolicy::Action::kInsert);
  // In the band (remove 0.002 < loss < insert 0.01): keep FEC on — this is
  // exactly the Gilbert-Elliott lull that must not cause flapping.
  EXPECT_EQ(policy.update(2 * kSecond, 0.005).action,
            FecPolicy::Action::kNone);
  EXPECT_TRUE(policy.active());
  // And from the off state the same value must not switch FEC on.
  FecPolicy fresh(c);
  EXPECT_EQ(fresh.update(1 * kSecond, 0.005).action,
            FecPolicy::Action::kNone);
  EXPECT_FALSE(fresh.active());
}

TEST(FecPolicy, CooldownDefersActions) {
  FecPolicyConfig c;
  c.alpha = 1.0;
  c.cooldown_us = 2 * kSecond;
  FecPolicy policy(c);
  EXPECT_EQ(policy.update(1 * kSecond, 0.02).action,
            FecPolicy::Action::kInsert);
  // A retune-worthy jump inside the cooldown window is deferred...
  EXPECT_EQ(policy.update(1 * kSecond + 500'000, 0.30).action,
            FecPolicy::Action::kNone);
  // ...and executed once the window has passed (EWMA kept integrating).
  const auto d = policy.update(3 * kSecond + 1, 0.30);
  EXPECT_EQ(d.action, FecPolicy::Action::kRetune);
  EXPECT_EQ(d.n, 2u);
}

// ---------------------------------------------------------------------------
// AdaptiveFecController against a live chain

struct ChainWorld {
  std::shared_ptr<core::QueuePacketSource> source =
      std::make_shared<core::QueuePacketSource>();
  std::shared_ptr<core::CollectingPacketSink> sink =
      std::make_shared<core::CollectingPacketSink>();
  std::shared_ptr<core::FilterChain> chain;
  std::shared_ptr<core::ControlServer> server;

  ChainWorld() {
    filters::register_builtin_filters();
    chain = std::make_shared<core::FilterChain>(
        std::make_shared<core::PacketReaderEndpoint>("in", source),
        std::make_shared<core::PacketWriterEndpoint>("out", sink));
    server = std::make_shared<core::ControlServer>(chain);
    chain->start();
  }
  ~ChainWorld() { chain->shutdown(); }

  core::ControlManager manager() { return core::ControlManager::local(server); }

  std::vector<std::string> names() {
    std::vector<std::string> out;
    for (const auto& info : manager().list_chain()) out.push_back(info.name);
    return out;
  }
};

TEST(AdaptiveFecController, RejectsBadFlowsAndConfig) {
  AdaptiveFecControllerConfig bad;
  bad.interleave_rows = 2;  // depth missing
  EXPECT_THROW(AdaptiveFecController{bad}, std::invalid_argument);

  ChainWorld w;
  AdaptiveFecController ctl;
  EXPECT_THROW(ctl.add_flow({"", w.manager(), std::nullopt, [] { return 0.0; }}),
               std::invalid_argument);
  EXPECT_THROW(ctl.add_flow({"f", w.manager(), std::nullopt, nullptr}),
               std::invalid_argument);
  ctl.add_flow({"f", w.manager(), std::nullopt, [] { return 0.0; }});
  EXPECT_THROW(ctl.add_flow({"f", w.manager(), std::nullopt, [] { return 0.0; }}),
               std::invalid_argument);
  EXPECT_EQ(ctl.flows(), 1u);
  EXPECT_THROW(ctl.fec_active("ghost"), std::invalid_argument);
}

// Property (a): once the probe reports loss above the insert threshold, the
// encoder appears in the chain within a bounded number of virtual ticks —
// here two (one to move the EWMA over the threshold, one slack).
TEST(AdaptiveFecController, LossAboveThresholdInsertsWithinBoundedTicks) {
  ChainWorld w;
  double loss = 0.0;
  AdaptiveFecController ctl;
  ctl.add_flow({"egress", w.manager(), std::nullopt, [&] { return loss; }});

  sim::VirtualClock clock;
  sim::PeriodicTask ticker(clock, kSecond,
                           [&](util::Micros now) { ctl.tick(now); });

  clock.run_for(5 * kSecond);  // clean link: nothing happens
  EXPECT_FALSE(ctl.fec_active("egress"));
  EXPECT_TRUE(w.names().empty());

  loss = 0.08;  // the station walked out to ~33 m
  int ticks_to_insert = 0;
  while (!ctl.fec_active("egress") && ticks_to_insert < 10) {
    clock.run_for(kSecond);
    ++ticks_to_insert;
  }
  EXPECT_LE(ticks_to_insert, 2);
  EXPECT_EQ(w.names(), (std::vector<std::string>{"fec-encode"}));
  EXPECT_GT(ctl.smoothed_loss("egress"), 0.0);
}

// Property (b): when the probe reports recovery, the EWMA decays below the
// remove threshold and every controller-owned filter leaves the chain within
// a bounded number of ticks (EWMA half-life + cooldown, ≤ 20 s here).
TEST(AdaptiveFecController, RecoveryRemovesFecWithinBoundedTicks) {
  ChainWorld w;
  double loss = 0.08;
  AdaptiveFecController ctl;
  ctl.add_flow({"egress", w.manager(), std::nullopt, [&] { return loss; }});

  sim::VirtualClock clock;
  sim::PeriodicTask ticker(clock, kSecond,
                           [&](util::Micros now) { ctl.tick(now); });
  clock.run_for(3 * kSecond);
  ASSERT_TRUE(ctl.fec_active("egress"));

  loss = 0.0;  // back in the office
  int ticks_to_remove = 0;
  while (ctl.fec_active("egress") && ticks_to_remove < 30) {
    clock.run_for(kSecond);
    ++ticks_to_remove;
  }
  EXPECT_LE(ticks_to_remove, 20);
  EXPECT_TRUE(w.names().empty()) << "controller must remove what it inserted";
}

TEST(AdaptiveFecController, EscalationRetunesInPlace) {
  ChainWorld w;
  double loss = 0.02;
  AdaptiveFecControllerConfig config;
  config.policy.cooldown_us = 0;
  config.policy.alpha = 1.0;
  AdaptiveFecController ctl(config);
  ctl.add_flow({"egress", w.manager(), std::nullopt, [&] { return loss; }});

  ctl.tick(1 * kSecond);
  auto infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].params.at("n"), "6");
  EXPECT_EQ(infos[0].params.at("k"), "4");

  loss = 0.30;  // edge of association: full duplication
  ctl.tick(2 * kSecond);
  infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 1u) << "retune must not stack a second encoder";
  EXPECT_EQ(infos[0].params.at("n"), "2");
  EXPECT_EQ(infos[0].params.at("k"), "1");
}

TEST(AdaptiveFecController, InterleaverRidesAlongWithTheEncoder) {
  ChainWorld w;
  double loss = 0.0;
  AdaptiveFecControllerConfig config;
  config.policy.cooldown_us = 0;
  config.interleave_rows = 2;
  config.interleave_depth = 2;
  // One chain plays both roles: encoder stages in front, decoder stages
  // behind, exactly as the loopback EXPERIMENTS topology wires it.
  AdaptiveFecController ctl(config);
  ctl.add_flow({"loop", w.manager(), w.manager(), [&] { return loss; }});

  loss = 0.04;
  ctl.tick(1 * kSecond);
  EXPECT_EQ(w.names(),
            (std::vector<std::string>{"fec-encode", "interleave",
                                      "deinterleave", "fec-decode"}));

  loss = 0.0;
  for (int i = 2; i < 30 && ctl.fec_active("loop"); ++i) {
    ctl.tick(i * kSecond);
  }
  EXPECT_FALSE(ctl.fec_active("loop"));
  EXPECT_TRUE(w.names().empty());
}

// Property (c): reconfiguration never costs a byte. A sequence-stamped
// packet stream flows while the controller inserts, retunes, and removes a
// full encode/decode pair in the SAME chain (loopback topology); the ledger
// must classify every packet as pristine and in order.
TEST(AdaptiveFecController, ReconfigurationIsPacketExact) {
  const std::uint64_t seed = 0xfec0de'2025ULL;
  constexpr std::uint32_t kPackets = 900;  // 3 phases x 300
  ChainWorld w;

  double loss = 0.0;
  AdaptiveFecControllerConfig config;
  config.policy.cooldown_us = 0;
  config.policy.alpha = 1.0;
  AdaptiveFecController ctl(config);
  ctl.add_flow({"loop", w.manager(), w.manager(), [&] { return loss; }});

  sim::VirtualClock clock;
  sim::PeriodicTask ticker(clock, kSecond,
                           [&](util::Micros now) { ctl.tick(now); });

  std::uint32_t seq = 0;
  const auto push = [&](int n) {
    for (int i = 0; i < n; ++i) {
      w.source->push(testing::make_stamped_packet(seed, seq++, 120));
    }
  };

  // Mid-phase waits must tolerate a partial FEC group: the encoder holds
  // up to k-1 = 3 data packets until the group fills (next phase's
  // traffic) or the stream ends, and how many packets were already past
  // the insertion point is scheduling-dependent. The final ledger still
  // accounts for every packet exactly.
  constexpr std::size_t kHeld = 3;

  // Phase 1: bare chain, packets mid-flight while the encoder+decoder pair
  // splices in (the decoder passes unframed packets through untouched).
  push(150);
  loss = 0.04;
  clock.run_for(kSecond);  // -> insert fec(6,4)
  ASSERT_TRUE(ctl.fec_active("loop"));
  push(150);
  ASSERT_TRUE(w.sink->wait_for(300 - kHeld)) << "phase 1 stalled";

  // Phase 2: retune 6,4 -> 2,1 with traffic before and after.
  push(150);
  loss = 0.30;
  clock.run_for(kSecond);  // -> retune fec(2,1)
  push(150);
  ASSERT_TRUE(w.sink->wait_for(600 - kHeld)) << "phase 2 stalled";

  // Phase 3: recovery removes both stages under live traffic.
  push(150);
  loss = 0.0;
  for (int i = 0; i < 30 && ctl.fec_active("loop"); ++i) clock.run_for(kSecond);
  ASSERT_FALSE(ctl.fec_active("loop"));
  push(150);
  w.source->finish();
  ASSERT_TRUE(w.sink->wait_for(kPackets)) << "phase 3 stalled";

  testing::PacketLedger ledger(seed, kPackets);
  for (const auto& p : w.sink->packets()) ledger.record(p);
  EXPECT_EQ(ledger.ok(), kPackets);
  EXPECT_EQ(ledger.lost(), 0u);
  EXPECT_EQ(ledger.duplicates(), 0u);
  EXPECT_EQ(ledger.reordered(), 0u);
  EXPECT_EQ(ledger.corrupt(), 0u);
}

TEST(AdaptiveFecController, PublishesMetricsAndTrace) {
  ChainWorld w;
  double loss = 0.0;
  obs::Registry registry;
  AdaptiveFecControllerConfig config;
  config.policy.cooldown_us = 0;
  config.policy.alpha = 1.0;
  AdaptiveFecController ctl(config);
  ctl.bind_metrics(obs::Scope(registry, "fec-ctl"));
  ctl.add_flow({"egress", w.manager(), std::nullopt, [&] { return loss; }});

  loss = 0.02;
  ctl.tick(1 * kSecond);
  loss = 0.30;
  ctl.tick(2 * kSecond);
  loss = 0.0;
  ctl.tick(3 * kSecond);

  const std::string stats = obs::render(registry.snapshot());
  EXPECT_NE(stats.find("fec-ctl/inserts=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("fec-ctl/retunes=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("fec-ctl/removes=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("egress insert fec(6,4)"), std::string::npos) << stats;
}

TEST(AdaptiveFecController, DeltaLossProbeDifferentiatesCounters) {
  std::uint64_t attempted = 1'000;
  std::uint64_t dropped = 15;
  auto probe = AdaptiveFecController::delta_loss_probe(
      [&] { return attempted; }, [&] { return dropped; });
  // First call: lifetime average (the baseline).
  EXPECT_DOUBLE_EQ(probe(), 0.015);
  // Then strict deltas: 50 more attempts, 5 more drops -> 10%.
  attempted += 50;
  dropped += 5;
  EXPECT_DOUBLE_EQ(probe(), 0.1);
  // No traffic in the interval: report clean, not NaN.
  EXPECT_DOUBLE_EQ(probe(), 0.0);
}

}  // namespace
}  // namespace rapidware::raplets
