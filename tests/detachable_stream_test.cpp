// Tests for the paper's core mechanism: detachable streams.
//
// Covers the blocking pipe contract, pause/drain/reconnect semantics, hard
// and soft EOF, error paths, and — most importantly — the integrity
// property: across arbitrary pause/reconnect (splice) cycles under
// concurrent load, the byte sequence observed downstream equals the byte
// sequence written upstream.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/detachable_stream.h"
#include "util/framing.h"
#include "util/rng.h"

namespace rapidware::core {
namespace {

using util::ByteSpan;
using util::Bytes;
using util::to_bytes;
using util::to_string;

Bytes sequential_bytes(std::size_t n, std::uint8_t start = 0) {
  Bytes b(n);
  std::uint8_t v = start;
  for (auto& x : b) x = v++;
  return b;
}

// ---------------------------------------------------------------------------
// Basic pipe behaviour

TEST(DetachableStream, ConnectThenWriteThenRead) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  EXPECT_TRUE(dos.connected());
  EXPECT_TRUE(dis.connected());

  dos.write(to_bytes("hello"));
  EXPECT_EQ(dis.available(), 5u);

  Bytes out(5);
  EXPECT_EQ(dis.read_some(out), 5u);
  EXPECT_EQ(to_string(out), "hello");
}

TEST(DetachableStream, ReadBlocksUntilDataArrives) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);

  std::atomic<bool> got{false};
  std::thread reader([&] {
    Bytes out(3);
    EXPECT_EQ(dis.read_some(out), 3u);
    EXPECT_EQ(to_string(out), "abc");
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  dos.write(to_bytes("abc"));
  reader.join();
  EXPECT_TRUE(got.load());
}

TEST(DetachableStream, WriteBlocksWhenBufferFull) {
  DetachableInputStream dis(8);
  DetachableOutputStream dos;
  connect(dos, dis);

  dos.write(sequential_bytes(8));  // fills the ring
  std::atomic<bool> done{false};
  std::thread writer([&] {
    dos.write(sequential_bytes(4, 8));  // must wait for space
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());

  Bytes out(12);
  std::size_t got = 0;
  while (got < 12) got += dis.read_some(util::MutableByteSpan(out).subspan(got));
  writer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(out, sequential_bytes(12));
}

TEST(DetachableStream, LargeWriteSpansManyRingFillings) {
  DetachableInputStream dis(64);
  DetachableOutputStream dos;
  connect(dos, dis);

  const Bytes payload = sequential_bytes(10'000);
  std::thread writer([&] { dos.write(payload); });

  Bytes received;
  Bytes chunk(37);
  while (received.size() < payload.size()) {
    const std::size_t n = dis.read_some(chunk);
    ASSERT_GT(n, 0u);
    received.insert(received.end(), chunk.begin(),
                    chunk.begin() + static_cast<long>(n));
  }
  writer.join();
  EXPECT_EQ(received, payload);
}

TEST(DetachableStream, AvailableReflectsBufferedBytes) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  EXPECT_EQ(dis.available(), 0u);
  dos.write(sequential_bytes(10));
  EXPECT_EQ(dis.available(), 10u);
  Bytes out(4);
  dis.read_some(out);
  EXPECT_EQ(dis.available(), 6u);
}

TEST(DetachableStream, ByteCountersTrackTraffic) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(sequential_bytes(100));
  Bytes out(60);
  dis.read_some(out);
  EXPECT_EQ(dis.bytes_received(), 100u);
  EXPECT_EQ(dis.bytes_delivered(), 60u);
}

// ---------------------------------------------------------------------------
// Connection state errors

TEST(DetachableStream, DoubleConnectThrows) {
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);
  EXPECT_THROW(dos.reconnect(dis2), StreamError);
}

TEST(DetachableStream, ConnectToAttachedSinkThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos1, dos2;
  connect(dos1, dis);
  EXPECT_THROW(dos2.reconnect(dis), StreamError);
}

TEST(DetachableStream, PauseWithoutConnectionThrows) {
  DetachableOutputStream dos;
  EXPECT_THROW(dos.pause(), StreamError);
}

TEST(DetachableStream, DisPauseWithoutSourceThrows) {
  DetachableInputStream dis;
  EXPECT_THROW(dis.pause(), StreamError);
}

TEST(DetachableStream, PauseIsIdempotent) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.pause();
  EXPECT_NO_THROW(dos.pause());
}

TEST(DetachableStream, WriteAfterCloseThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.close();
  EXPECT_THROW(dos.write(to_bytes("x")), BrokenPipe);
}

TEST(DetachableStream, WriteToClosedReaderThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dis.close();
  EXPECT_THROW(dos.write(to_bytes("x")), BrokenPipe);
}

TEST(DetachableStream, ReconnectToClosedReaderThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  dis.close();
  EXPECT_THROW(dos.reconnect(dis), StreamError);
}

// ---------------------------------------------------------------------------
// EOF semantics

TEST(DetachableStream, CloseDeliversEofAfterDrain) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("tail"));
  dos.close();

  Bytes out(16);
  EXPECT_EQ(dis.read_some(out), 4u);  // buffered data first
  EXPECT_EQ(dis.read_some(out), 0u);  // then EOF
  EXPECT_EQ(dis.read_some(out), 0u);  // EOF is sticky
}

TEST(DetachableStream, CloseWakesBlockedReader) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  std::thread reader([&] {
    Bytes out(4);
    EXPECT_EQ(dis.read_some(out), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dos.close();
  reader.join();
}

TEST(DetachableStream, SoftEofDrainsThenSignals) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("pending"));
  dis.mark_soft_eof();

  Bytes out(16);
  EXPECT_EQ(dis.read_some(out), 7u);
  EXPECT_EQ(dis.read_some(out), 0u);
}

TEST(DetachableStream, SoftEofClearedByReconnect) {
  DetachableInputStream dis;
  DetachableOutputStream dos1, dos2;
  connect(dos1, dis);
  dos1.pause();
  dis.mark_soft_eof();
  Bytes out(4);
  EXPECT_EQ(dis.read_some(out), 0u);

  dos2.reconnect(dis);  // clears soft EOF: the filter is reusable
  dos2.write(to_bytes("more"));
  EXPECT_EQ(dis.read_some(out), 4u);
  EXPECT_EQ(to_string(out), "more");
}

// ---------------------------------------------------------------------------
// Pause / reconnect — the paper's contribution

TEST(DetachableStream, PauseDrainsBufferBeforeReturning) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(sequential_bytes(100));

  std::atomic<bool> paused{false};
  std::thread pauser([&] {
    dos.pause();
    paused = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(paused.load());  // buffer not yet drained

  Bytes out(100);
  std::size_t got = 0;
  while (got < 100) got += dis.read_some(util::MutableByteSpan(out).subspan(got));
  pauser.join();
  EXPECT_TRUE(paused.load());
  EXPECT_FALSE(dos.connected());
  EXPECT_FALSE(dis.connected());
  EXPECT_EQ(out, sequential_bytes(100));
}

TEST(DetachableStream, PauseOnEmptyBufferIsImmediate) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.pause();
  EXPECT_FALSE(dos.connected());
}

TEST(DetachableStream, DisPauseForwardsToSource) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dis.pause();  // reference call to dos.pause(), as in the paper
  EXPECT_FALSE(dos.connected());
  EXPECT_FALSE(dis.connected());
}

TEST(DetachableStream, ReaderBlockedAcrossPauseResumessAfterReconnect) {
  DetachableInputStream dis;
  DetachableOutputStream dos1, dos2;
  connect(dos1, dis);

  Bytes out(5);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    EXPECT_EQ(dis.read_some(out), 5u);  // blocks across the splice
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dos1.pause();
  EXPECT_FALSE(done.load());

  dos2.reconnect(dis);
  dos2.write(to_bytes("after"));
  reader.join();
  EXPECT_EQ(to_string(out), "after");
}

TEST(DetachableStream, WriterBlockedAcrossPauseResumesAfterReconnect) {
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);
  dos.pause();

  std::atomic<bool> delivered{false};
  std::thread writer([&] {
    dos.write(to_bytes("redirected"));  // blocks: stream is paused
    delivered = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(delivered.load());

  dos.reconnect(dis2);  // the write lands in the NEW sink
  Bytes out(10);
  std::size_t got = 0;
  while (got < 10) got += dis2.read_some(util::MutableByteSpan(out).subspan(got));
  writer.join();
  EXPECT_EQ(to_string(out), "redirected");
  EXPECT_EQ(dis1.available(), 0u);
}

TEST(DetachableStream, InFlightWriteLandsEntirelyInOneSink) {
  // A write that began before pause() must not be torn across two sinks:
  // this is what keeps framed packets intact across filter insertion.
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);

  const Bytes payload = sequential_bytes(200'000);
  std::thread writer([&] { dos.write(payload); });

  // Reader drains dis1 slowly while a pause is requested mid-write.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Bytes received;
  std::thread reader([&] {
    Bytes chunk(1024);
    while (received.size() < payload.size()) {
      const std::size_t n = dis1.read_some(chunk);
      if (n == 0) break;
      received.insert(received.end(), chunk.begin(),
                      chunk.begin() + static_cast<long>(n));
    }
  });

  dos.pause();  // returns only after the whole in-flight write drained
  writer.join();
  reader.join();
  EXPECT_EQ(received, payload);  // nothing left for dis2
  dos.reconnect(dis2);
  EXPECT_EQ(dis2.available(), 0u);
}

TEST(DetachableStream, SpliceRedirectsSubsequentTraffic) {
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);
  dos.write(to_bytes("one"));
  Bytes out(3);
  dis1.read_some(out);
  EXPECT_EQ(to_string(out), "one");

  dos.pause();
  dos.reconnect(dis2);
  dos.write(to_bytes("two"));
  dis2.read_some(out);
  EXPECT_EQ(to_string(out), "two");
  EXPECT_EQ(dis1.available(), 0u);
}

// ---------------------------------------------------------------------------
// Integrity property tests

struct SpliceParam {
  std::size_t ring_capacity;
  std::size_t total_bytes;
  int splices;
};

class SpliceIntegrityTest : public ::testing::TestWithParam<SpliceParam> {};

// One writer streams a known byte sequence through a DOS while the control
// thread repeatedly pauses it and bounces it between two DIS sinks; two
// readers concatenate what they see per-epoch. Total received must equal
// the sequence sent: nothing lost, duplicated, or reordered.
TEST_P(SpliceIntegrityTest, NoBytesLostDuplicatedOrReordered) {
  const auto param = GetParam();
  DetachableInputStream dis_a(param.ring_capacity), dis_b(param.ring_capacity);
  DetachableOutputStream dos;
  connect(dos, dis_a);

  const Bytes payload = [&] {
    Bytes b(param.total_bytes);
    util::Rng rng(1234);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
    return b;
  }();

  std::thread writer([&] {
    util::Rng rng(99);
    std::size_t sent = 0;
    while (sent < payload.size()) {
      const std::size_t n =
          std::min<std::size_t>(rng.next_below(1500) + 1, payload.size() - sent);
      dos.write(ByteSpan(payload.data() + sent, n));
      sent += n;
    }
    dos.close();
  });

  // One reader follows the stream across splices: it drains the currently
  // attached sink until the per-epoch soft EOF, then moves to the other
  // sink — exactly the hand-off a downstream filter experiences. The
  // resulting byte sequence must equal the payload.
  Bytes log;
  std::thread reader([&] {
    DetachableInputStream* current = &dis_a;
    Bytes chunk(777);
    while (log.size() < payload.size()) {
      const std::size_t n = current->read_some(chunk);
      if (n == 0) {
        current = (current == &dis_a) ? &dis_b : &dis_a;
        std::this_thread::yield();
        continue;
      }
      log.insert(log.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
    }
  });

  // Control thread: splice between sinks `splices` times. After each pause
  // the old sink is given a soft EOF so the reader knows to switch over.
  bool on_a = true;
  for (int i = 0; i < param.splices; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    try {
      dos.pause();
      (on_a ? dis_a : dis_b).mark_soft_eof();
      dos.reconnect(on_a ? dis_b : dis_a);
      on_a = !on_a;
    } catch (const StreamError&) {
      break;  // writer finished and closed the stream
    }
  }

  writer.join();
  reader.join();

  ASSERT_EQ(log.size(), payload.size());
  EXPECT_EQ(log, payload);
}

INSTANTIATE_TEST_SUITE_P(
    SpliceSweep, SpliceIntegrityTest,
    ::testing::Values(SpliceParam{64, 50'000, 20},
                      SpliceParam{256, 100'000, 50},
                      SpliceParam{4096, 500'000, 30},
                      SpliceParam{65536, 1'000'000, 10},
                      SpliceParam{17, 20'000, 40}),
    [](const auto& info) {
      return "ring" + std::to_string(info.param.ring_capacity) + "_bytes" +
             std::to_string(info.param.total_bytes) + "_splices" +
             std::to_string(info.param.splices);
    });

// Frames written through splices stay intact (the frame-boundary property).
TEST(DetachableStream, FramesSurviveSplices) {
  DetachableInputStream dis_a, dis_b;
  DetachableOutputStream dos;
  connect(dos, dis_a);

  constexpr int kFrames = 2000;
  std::thread writer([&] {
    util::Rng rng(5);
    for (int i = 0; i < kFrames; ++i) {
      Bytes payload(rng.next_below(900) + 4);
      util::Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      std::copy(w.bytes().begin(), w.bytes().end(), payload.begin());
      util::write_frame(dos, payload);
    }
    dos.close();
  });

  std::vector<std::uint32_t> ids;
  std::thread reader([&] {
    DetachableInputStream* current = &dis_a;
    while (ids.size() < static_cast<std::size_t>(kFrames)) {
      auto frame = util::read_frame(*current);
      if (!frame) {
        current = (current == &dis_a) ? &dis_b : &dis_a;
        std::this_thread::yield();
        continue;
      }
      util::Reader r(*frame);
      ids.push_back(r.u32());
    }
  });

  bool on_a = true;
  for (int i = 0; i < 30; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    try {
      dos.pause();
      (on_a ? dis_a : dis_b).mark_soft_eof();
      dos.reconnect(on_a ? dis_b : dis_a);
      on_a = !on_a;
    } catch (const StreamError&) {
      break;
    }
  }

  writer.join();
  reader.join();

  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) EXPECT_EQ(ids[i], static_cast<std::uint32_t>(i));
}

}  // namespace
}  // namespace rapidware::core
