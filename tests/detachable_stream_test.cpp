// Tests for the paper's core mechanism: detachable streams.
//
// Covers the blocking pipe contract, pause/drain/reconnect semantics, hard
// and soft EOF, error paths, and — most importantly — the integrity
// property: across arbitrary pause/reconnect (splice) cycles under
// concurrent load, the byte sequence observed downstream equals the byte
// sequence written upstream.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>

#include "core/detachable_stream.h"
#include "util/frame_reader.h"
#include "util/framing.h"
#include "util/rng.h"
#include "util/serial.h"

namespace rapidware::core {
namespace {

using util::ByteSpan;
using util::Bytes;
using util::to_bytes;
using util::to_string;

Bytes sequential_bytes(std::size_t n, std::uint8_t start = 0) {
  Bytes b(n);
  std::uint8_t v = start;
  for (auto& x : b) x = v++;
  return b;
}

// ---------------------------------------------------------------------------
// Basic pipe behaviour

TEST(DetachableStream, ConnectThenWriteThenRead) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  EXPECT_TRUE(dos.connected());
  EXPECT_TRUE(dis.connected());

  dos.write(to_bytes("hello"));
  EXPECT_EQ(dis.available(), 5u);

  Bytes out(5);
  EXPECT_EQ(dis.read_some(out), 5u);
  EXPECT_EQ(to_string(out), "hello");
}

TEST(DetachableStream, ReadBlocksUntilDataArrives) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);

  std::atomic<bool> got{false};
  std::thread reader([&] {
    Bytes out(3);
    EXPECT_EQ(dis.read_some(out), 3u);
    EXPECT_EQ(to_string(out), "abc");
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  dos.write(to_bytes("abc"));
  reader.join();
  EXPECT_TRUE(got.load());
}

TEST(DetachableStream, WriteBlocksWhenBufferFull) {
  DetachableInputStream dis(8);
  DetachableOutputStream dos;
  connect(dos, dis);

  dos.write(sequential_bytes(8));  // fills the ring
  std::atomic<bool> done{false};
  std::thread writer([&] {
    dos.write(sequential_bytes(4, 8));  // must wait for space
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());

  Bytes out(12);
  std::size_t got = 0;
  while (got < 12) got += dis.read_some(util::MutableByteSpan(out).subspan(got));
  writer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(out, sequential_bytes(12));
}

TEST(DetachableStream, LargeWriteSpansManyRingFillings) {
  DetachableInputStream dis(64);
  DetachableOutputStream dos;
  connect(dos, dis);

  const Bytes payload = sequential_bytes(10'000);
  std::thread writer([&] { dos.write(payload); });

  Bytes received;
  Bytes chunk(37);
  while (received.size() < payload.size()) {
    const std::size_t n = dis.read_some(chunk);
    ASSERT_GT(n, 0u);
    received.insert(received.end(), chunk.begin(),
                    chunk.begin() + static_cast<long>(n));
  }
  writer.join();
  EXPECT_EQ(received, payload);
}

TEST(DetachableStream, AvailableReflectsBufferedBytes) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  EXPECT_EQ(dis.available(), 0u);
  dos.write(sequential_bytes(10));
  EXPECT_EQ(dis.available(), 10u);
  Bytes out(4);
  dis.read_some(out);
  EXPECT_EQ(dis.available(), 6u);
}

TEST(DetachableStream, ByteCountersTrackTraffic) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(sequential_bytes(100));
  Bytes out(60);
  dis.read_some(out);
  EXPECT_EQ(dis.bytes_received(), 100u);
  EXPECT_EQ(dis.bytes_delivered(), 60u);
}

// ---------------------------------------------------------------------------
// Connection state errors

TEST(DetachableStream, DoubleConnectThrows) {
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);
  EXPECT_THROW(dos.reconnect(dis2), StreamError);
}

TEST(DetachableStream, ConnectToAttachedSinkThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos1, dos2;
  connect(dos1, dis);
  EXPECT_THROW(dos2.reconnect(dis), StreamError);
}

TEST(DetachableStream, PauseWithoutConnectionThrows) {
  DetachableOutputStream dos;
  EXPECT_THROW(dos.pause(), StreamError);
}

TEST(DetachableStream, DisPauseWithoutSourceThrows) {
  DetachableInputStream dis;
  EXPECT_THROW(dis.pause(), StreamError);
}

TEST(DetachableStream, PauseIsIdempotent) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.pause();
  EXPECT_NO_THROW(dos.pause());
}

TEST(DetachableStream, WriteAfterCloseThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.close();
  EXPECT_THROW(dos.write(to_bytes("x")), BrokenPipe);
}

TEST(DetachableStream, WriteToClosedReaderThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dis.close();
  EXPECT_THROW(dos.write(to_bytes("x")), BrokenPipe);
}

TEST(DetachableStream, ReconnectToClosedReaderThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  dis.close();
  EXPECT_THROW(dos.reconnect(dis), StreamError);
}

// ---------------------------------------------------------------------------
// EOF semantics

TEST(DetachableStream, CloseDeliversEofAfterDrain) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("tail"));
  dos.close();

  Bytes out(16);
  EXPECT_EQ(dis.read_some(out), 4u);  // buffered data first
  EXPECT_EQ(dis.read_some(out), 0u);  // then EOF
  EXPECT_EQ(dis.read_some(out), 0u);  // EOF is sticky
}

TEST(DetachableStream, CloseWakesBlockedReader) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  std::thread reader([&] {
    Bytes out(4);
    EXPECT_EQ(dis.read_some(out), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dos.close();
  reader.join();
}

TEST(DetachableStream, SoftEofDrainsThenSignals) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("pending"));
  dis.mark_soft_eof();

  Bytes out(16);
  EXPECT_EQ(dis.read_some(out), 7u);
  EXPECT_EQ(dis.read_some(out), 0u);
}

TEST(DetachableStream, SoftEofClearedByReconnect) {
  DetachableInputStream dis;
  DetachableOutputStream dos1, dos2;
  connect(dos1, dis);
  dos1.pause();
  dis.mark_soft_eof();
  Bytes out(4);
  EXPECT_EQ(dis.read_some(out), 0u);

  dos2.reconnect(dis);  // clears soft EOF: the filter is reusable
  dos2.write(to_bytes("more"));
  EXPECT_EQ(dis.read_some(out), 4u);
  EXPECT_EQ(to_string(out), "more");
}

// ---------------------------------------------------------------------------
// Pause / reconnect — the paper's contribution

TEST(DetachableStream, PauseDrainsBufferBeforeReturning) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(sequential_bytes(100));

  std::atomic<bool> paused{false};
  std::thread pauser([&] {
    dos.pause();
    paused = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(paused.load());  // buffer not yet drained

  Bytes out(100);
  std::size_t got = 0;
  while (got < 100) got += dis.read_some(util::MutableByteSpan(out).subspan(got));
  pauser.join();
  EXPECT_TRUE(paused.load());
  EXPECT_FALSE(dos.connected());
  EXPECT_FALSE(dis.connected());
  EXPECT_EQ(out, sequential_bytes(100));
}

TEST(DetachableStream, PauseOnEmptyBufferIsImmediate) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.pause();
  EXPECT_FALSE(dos.connected());
}

TEST(DetachableStream, DisPauseForwardsToSource) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dis.pause();  // reference call to dos.pause(), as in the paper
  EXPECT_FALSE(dos.connected());
  EXPECT_FALSE(dis.connected());
}

TEST(DetachableStream, ReaderBlockedAcrossPauseResumessAfterReconnect) {
  DetachableInputStream dis;
  DetachableOutputStream dos1, dos2;
  connect(dos1, dis);

  Bytes out(5);
  std::atomic<bool> done{false};
  std::thread reader([&] {
    EXPECT_EQ(dis.read_some(out), 5u);  // blocks across the splice
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dos1.pause();
  EXPECT_FALSE(done.load());

  dos2.reconnect(dis);
  dos2.write(to_bytes("after"));
  reader.join();
  EXPECT_EQ(to_string(out), "after");
}

TEST(DetachableStream, WriterBlockedAcrossPauseResumesAfterReconnect) {
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);
  dos.pause();

  std::atomic<bool> delivered{false};
  std::thread writer([&] {
    dos.write(to_bytes("redirected"));  // blocks: stream is paused
    delivered = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(delivered.load());

  dos.reconnect(dis2);  // the write lands in the NEW sink
  Bytes out(10);
  std::size_t got = 0;
  while (got < 10) got += dis2.read_some(util::MutableByteSpan(out).subspan(got));
  writer.join();
  EXPECT_EQ(to_string(out), "redirected");
  EXPECT_EQ(dis1.available(), 0u);
}

TEST(DetachableStream, InFlightWriteLandsEntirelyInOneSink) {
  // A write that began before pause() must not be torn across two sinks:
  // this is what keeps framed packets intact across filter insertion.
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);

  const Bytes payload = sequential_bytes(200'000);
  std::thread writer([&] { dos.write(payload); });

  // Reader drains dis1 slowly while a pause is requested mid-write.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Bytes received;
  std::thread reader([&] {
    Bytes chunk(1024);
    while (received.size() < payload.size()) {
      const std::size_t n = dis1.read_some(chunk);
      if (n == 0) break;
      received.insert(received.end(), chunk.begin(),
                      chunk.begin() + static_cast<long>(n));
    }
  });

  dos.pause();  // returns only after the whole in-flight write drained
  writer.join();
  reader.join();
  EXPECT_EQ(received, payload);  // nothing left for dis2
  dos.reconnect(dis2);
  EXPECT_EQ(dis2.available(), 0u);
}

TEST(DetachableStream, SpliceRedirectsSubsequentTraffic) {
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);
  dos.write(to_bytes("one"));
  Bytes out(3);
  dis1.read_some(out);
  EXPECT_EQ(to_string(out), "one");

  dos.pause();
  dos.reconnect(dis2);
  dos.write(to_bytes("two"));
  dis2.read_some(out);
  EXPECT_EQ(to_string(out), "two");
  EXPECT_EQ(dis1.available(), 0u);
}

// ---------------------------------------------------------------------------
// Integrity property tests

struct SpliceParam {
  std::size_t ring_capacity;
  std::size_t total_bytes;
  int splices;
};

class SpliceIntegrityTest : public ::testing::TestWithParam<SpliceParam> {};

// One writer streams a known byte sequence through a DOS while the control
// thread repeatedly pauses it and bounces it between two DIS sinks; two
// readers concatenate what they see per-epoch. Total received must equal
// the sequence sent: nothing lost, duplicated, or reordered.
TEST_P(SpliceIntegrityTest, NoBytesLostDuplicatedOrReordered) {
  const auto param = GetParam();
  DetachableInputStream dis_a(param.ring_capacity), dis_b(param.ring_capacity);
  DetachableOutputStream dos;
  connect(dos, dis_a);

  const Bytes payload = [&] {
    Bytes b(param.total_bytes);
    util::Rng rng(1234);
    for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
    return b;
  }();

  std::thread writer([&] {
    util::Rng rng(99);
    std::size_t sent = 0;
    while (sent < payload.size()) {
      const std::size_t n =
          std::min<std::size_t>(rng.next_below(1500) + 1, payload.size() - sent);
      dos.write(ByteSpan(payload.data() + sent, n));
      sent += n;
    }
    dos.close();
  });

  // One reader follows the stream across splices: it drains the currently
  // attached sink until the per-epoch soft EOF, then moves to the other
  // sink — exactly the hand-off a downstream filter experiences. The
  // resulting byte sequence must equal the payload.
  Bytes log;
  std::thread reader([&] {
    DetachableInputStream* current = &dis_a;
    Bytes chunk(777);
    while (log.size() < payload.size()) {
      const std::size_t n = current->read_some(chunk);
      if (n == 0) {
        current = (current == &dis_a) ? &dis_b : &dis_a;
        std::this_thread::yield();
        continue;
      }
      log.insert(log.end(), chunk.begin(), chunk.begin() + static_cast<long>(n));
    }
  });

  // Control thread: splice between sinks `splices` times. After each pause
  // the old sink is given a soft EOF so the reader knows to switch over.
  bool on_a = true;
  for (int i = 0; i < param.splices; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    try {
      dos.pause();
      (on_a ? dis_a : dis_b).mark_soft_eof();
      dos.reconnect(on_a ? dis_b : dis_a);
      on_a = !on_a;
    } catch (const StreamError&) {
      break;  // writer finished and closed the stream
    }
  }

  writer.join();
  reader.join();

  ASSERT_EQ(log.size(), payload.size());
  EXPECT_EQ(log, payload);
}

INSTANTIATE_TEST_SUITE_P(
    SpliceSweep, SpliceIntegrityTest,
    ::testing::Values(SpliceParam{64, 50'000, 20},
                      SpliceParam{256, 100'000, 50},
                      SpliceParam{4096, 500'000, 30},
                      SpliceParam{65536, 1'000'000, 10},
                      SpliceParam{17, 20'000, 40}),
    [](const auto& info) {
      return "ring" + std::to_string(info.param.ring_capacity) + "_bytes" +
             std::to_string(info.param.total_bytes) + "_splices" +
             std::to_string(info.param.splices);
    });

// Frames written through splices stay intact (the frame-boundary property).
TEST(DetachableStream, FramesSurviveSplices) {
  DetachableInputStream dis_a, dis_b;
  DetachableOutputStream dos;
  connect(dos, dis_a);

  constexpr int kFrames = 2000;
  std::thread writer([&] {
    util::Rng rng(5);
    for (int i = 0; i < kFrames; ++i) {
      Bytes payload(rng.next_below(900) + 4);
      util::Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      std::copy(w.bytes().begin(), w.bytes().end(), payload.begin());
      util::write_frame(dos, payload);
    }
    dos.close();
  });

  std::vector<std::uint32_t> ids;
  std::thread reader([&] {
    DetachableInputStream* current = &dis_a;
    while (ids.size() < static_cast<std::size_t>(kFrames)) {
      auto frame = util::read_frame(*current);
      if (!frame) {
        current = (current == &dis_a) ? &dis_b : &dis_a;
        std::this_thread::yield();
        continue;
      }
      util::Reader r(*frame);
      ids.push_back(r.u32());
    }
  });

  bool on_a = true;
  for (int i = 0; i < 30; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    try {
      dos.pause();
      (on_a ? dis_a : dis_b).mark_soft_eof();
      dos.reconnect(on_a ? dis_b : dis_a);
      on_a = !on_a;
    } catch (const StreamError&) {
      break;
    }
  }

  writer.join();
  reader.join();

  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) EXPECT_EQ(ids[i], static_cast<std::uint32_t>(i));
}

// Same integrity property, but read through the batched util::FrameReader:
// splices only ever land on frame boundaries (pause() drains the in-flight
// write), so a fresh FrameReader per epoch must see whole frames only.
TEST(DetachableStream, FramesSurviveSplicesBatchedReader) {
  DetachableInputStream dis_a, dis_b;
  DetachableOutputStream dos;
  connect(dos, dis_a);

  constexpr int kFrames = 2000;
  std::thread writer([&] {
    util::Rng rng(7);
    for (int i = 0; i < kFrames; ++i) {
      Bytes payload(rng.next_below(900) + 4);
      util::Writer w;
      w.u32(static_cast<std::uint32_t>(i));
      std::copy(w.bytes().begin(), w.bytes().end(), payload.begin());
      util::write_frame(dos, payload);
    }
    dos.close();
  });

  std::vector<std::uint32_t> ids;
  std::thread reader([&] {
    DetachableInputStream* current = &dis_a;
    while (ids.size() < static_cast<std::size_t>(kFrames)) {
      util::FrameReader frames(*current);
      while (ids.size() < static_cast<std::size_t>(kFrames)) {
        auto frame = frames.next();
        if (!frame) break;
        util::Reader r(*frame);
        ids.push_back(r.u32());
      }
      if (ids.size() < static_cast<std::size_t>(kFrames)) {
        current = (current == &dis_a) ? &dis_b : &dis_a;
        std::this_thread::yield();
      }
    }
  });

  bool on_a = true;
  for (int i = 0; i < 30; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    try {
      dos.pause();
      (on_a ? dis_a : dis_b).mark_soft_eof();
      dos.reconnect(on_a ? dis_b : dis_a);
      on_a = !on_a;
    } catch (const StreamError&) {
      break;
    }
  }

  writer.join();
  reader.join();

  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kFrames));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(ids[i], static_cast<std::uint32_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Torn-frame EOF regression (the read_exact ambiguity fix): a soft EOF that
// lands inside a frame must surface as a deterministic SerialError, never as
// a silent short read or a clean-looking EOF.

TEST(DetachableStream, SoftEofBetweenHeaderAndPayloadThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  // A complete 6-byte header promising 100 payload bytes — then the filter
  // is detached before any payload arrives.
  util::Writer w;
  w.u16(util::kFrameMagic);
  w.u32(100);
  dos.write(w.bytes());
  dis.mark_soft_eof();
  EXPECT_THROW(util::read_frame(dis), util::SerialError);
}

TEST(DetachableStream, SoftEofMidHeaderThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  util::Writer w;
  w.u16(util::kFrameMagic);
  w.u8(3);  // header cut short: 3 of 6 bytes
  dos.write(w.bytes());
  dis.mark_soft_eof();
  EXPECT_THROW(util::read_frame(dis), util::SerialError);
}

TEST(DetachableStream, SoftEofMidPayloadThrowsFromFrameReader) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  util::write_frame(dos, to_bytes("whole frame"));
  util::Writer w;
  w.u16(util::kFrameMagic);
  w.u32(100);
  dos.write(w.bytes());
  dos.write(to_bytes("only a fragment"));
  dis.mark_soft_eof();

  util::FrameReader frames(dis);
  auto first = frames.next();
  ASSERT_TRUE(first.has_value());  // the complete frame is still delivered
  EXPECT_EQ(to_string(*first), "whole frame");
  EXPECT_THROW(frames.next(), util::SerialError);
}

TEST(DetachableStream, CleanSoftEofAtFrameBoundaryIsNotAnError) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  util::write_frame(dos, to_bytes("whole"));
  dis.mark_soft_eof();
  auto frame = util::read_frame(dis);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(util::read_frame(dis).has_value());  // clean EOF, no throw
}

// ---------------------------------------------------------------------------
// Vectored writes

TEST(DetachableStream, WriteVecConcatenatesSegments) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  const Bytes a = to_bytes("one"), b = to_bytes("+two"), c = to_bytes("+3");
  const std::array<ByteSpan, 3> segs = {ByteSpan(a), ByteSpan(b), ByteSpan(c)};
  dos.write_vec(segs);
  EXPECT_EQ(dis.available(), 9u);
  Bytes out(9);
  EXPECT_EQ(dis.read_some(out), 9u);
  EXPECT_EQ(to_string(out), "one+two+3");
  EXPECT_EQ(dos.bytes_sent(), 9u);
}

TEST(DetachableStream, WriteVecEmptySegmentsAreNoOps) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  const Bytes a = to_bytes("data");
  const std::array<ByteSpan, 3> segs = {ByteSpan(), ByteSpan(a), ByteSpan()};
  dos.write_vec(segs);
  Bytes out(4);
  EXPECT_EQ(dis.read_some(out), 4u);
  EXPECT_EQ(to_string(out), "data");
}

TEST(DetachableStream, WriteVecLargerThanRingDelivers) {
  DetachableInputStream dis(64);  // tiny ring: the transaction must stream
  DetachableOutputStream dos;
  connect(dos, dis);
  const Bytes a = sequential_bytes(300, 0), b = sequential_bytes(300, 100);
  Bytes expect = a;
  expect.insert(expect.end(), b.begin(), b.end());

  std::thread writer([&] {
    const std::array<ByteSpan, 2> segs = {ByteSpan(a), ByteSpan(b)};
    dos.write_vec(segs);
    dos.close();
  });
  Bytes received, chunk(64);
  for (;;) {
    const std::size_t n = dis.read_some(chunk);
    if (n == 0) break;
    received.insert(received.end(), chunk.begin(),
                    chunk.begin() + static_cast<long>(n));
  }
  writer.join();
  EXPECT_EQ(received, expect);
}

TEST(DetachableStream, WriteVecLandsEntirelyInOneSink) {
  // The vectored analogue of InFlightWriteLandsEntirelyInOneSink: a pause
  // racing a multi-segment transaction must never split the segments
  // across two sinks (this is exactly what keeps a frame's header and
  // payload together when write_frame meets a splice).
  DetachableInputStream dis1, dis2;
  DetachableOutputStream dos;
  connect(dos, dis1);

  const Bytes header = sequential_bytes(50'000, 1);
  const Bytes payload = sequential_bytes(150'000, 7);
  Bytes expect = header;
  expect.insert(expect.end(), payload.begin(), payload.end());
  std::thread writer([&] {
    const std::array<ByteSpan, 2> segs = {ByteSpan(header), ByteSpan(payload)};
    dos.write_vec(segs);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Bytes received;
  std::thread reader([&] {
    Bytes chunk(1024);
    while (received.size() < expect.size()) {
      const std::size_t n = dis1.read_some(chunk);
      if (n == 0) break;
      received.insert(received.end(), chunk.begin(),
                      chunk.begin() + static_cast<long>(n));
    }
  });

  dos.pause();  // returns only after the whole transaction drained
  writer.join();
  reader.join();
  EXPECT_EQ(received, expect);  // nothing left over for dis2
  dos.reconnect(dis2);
  EXPECT_EQ(dis2.available(), 0u);
}

// ---------------------------------------------------------------------------
// Borrow reads

TEST(DetachableStream, ReadBorrowConsumesWhatVisitorTook) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("abcdef"));

  std::string seen;
  const std::size_t n =
      dis.read_borrow(0, [&](ByteSpan x, ByteSpan y) -> std::size_t {
        seen.append(reinterpret_cast<const char*>(x.data()), x.size());
        seen.append(reinterpret_cast<const char*>(y.data()), y.size());
        return 4;  // consume a prefix only
      });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(seen, "abcdef");
  EXPECT_EQ(dis.available(), 2u);  // the tail stays buffered

  Bytes out(2);
  EXPECT_EQ(dis.read_some(out), 2u);
  EXPECT_EQ(to_string(out), "ef");
}

TEST(DetachableStream, ReadBorrowHonorsMaxLimit) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(sequential_bytes(100));
  const std::size_t n =
      dis.read_borrow(16, [&](ByteSpan x, ByteSpan y) -> std::size_t {
        EXPECT_LE(x.size() + y.size(), 16u);
        return x.size() + y.size();
      });
  EXPECT_EQ(n, 16u);
  EXPECT_EQ(dis.available(), 84u);
}

TEST(DetachableStream, ReadBorrowReturnsZeroAtEof) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.close();
  bool visited = false;
  const std::size_t n = dis.read_borrow(0, [&](ByteSpan, ByteSpan) {
    visited = true;
    return std::size_t{0};
  });
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(visited);  // EOF short-circuits: visitor never runs
}

TEST(DetachableStream, ReadBorrowVisitorNoProgressThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("data"));
  EXPECT_THROW(
      dis.read_borrow(0, [](ByteSpan, ByteSpan) { return std::size_t{0}; }),
      StreamError);
  EXPECT_EQ(dis.available(), 4u);  // the buffer is untouched
}

TEST(DetachableStream, ReadBorrowOverconsumingVisitorThrows) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  dos.write(to_bytes("data"));
  EXPECT_THROW(
      dis.read_borrow(0, [](ByteSpan x, ByteSpan y) {
        return x.size() + y.size() + 1;
      }),
      StreamError);
}

// ---------------------------------------------------------------------------
// Wakeup suppression

TEST(DetachableStream, NotifiesSuppressedWhenNobodyWaits) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  // Strictly alternating single-threaded use: no thread ever parks, so
  // every data-path notify is skippable.
  Bytes out(64);
  for (int i = 0; i < 10; ++i) {
    dos.write(to_bytes("ping"));
    EXPECT_EQ(dis.read_some(out), 4u);
  }
  EXPECT_EQ(dis.wakeups(), 0u);
  EXPECT_GE(dis.wakeups_suppressed(), 20u);  // 10 writes + 10 reads
}

TEST(DetachableStream, NotifyIssuedWhenReaderIsParked) {
  DetachableInputStream dis;
  DetachableOutputStream dos;
  connect(dos, dis);
  std::thread reader([&] {
    Bytes out(16);
    EXPECT_EQ(dis.read_some(out), 5u);  // parks until the write arrives
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  dos.write(to_bytes("wake!"));
  reader.join();
  EXPECT_GE(dis.wakeups(), 1u);
}

}  // namespace
}  // namespace rapidware::core
