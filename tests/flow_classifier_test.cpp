// Tests for the per-flow classification stack: ChainSpec + the flyweight
// FilterSpecTable, FlowClassifier rule precedence, control protocol v3
// (RULE_ADD / RULE_DEL / RULE_LIST), and the proxy FlowTable — including
// live rule-swap byte-exactness under a seeded concurrent schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/control.h"
#include "core/endpoint.h"
#include "core/filter_spec.h"
#include "core/flow_classifier.h"
#include "core/worker_pool.h"
#include "filters/registry.h"
#include "proxy/flow_table.h"
#include "testing/sequence_stream.h"
#include "util/rng.h"
#include "util/serial.h"

namespace rapidware {
namespace {

using core::ChainSpec;
using core::ChainSpecRef;
using core::FilterSpecTable;
using core::FlowClassifier;
using core::FlowKey;
using core::FlowRule;
using core::LossRegime;

ChainSpec make_spec(std::string name,
                    std::vector<core::FilterSpec> stages = {}) {
  ChainSpec spec;
  spec.name = std::move(name);
  spec.stages = std::move(stages);
  return spec;
}

FlowRule make_rule(std::string name, std::uint32_t priority, ChainSpec chain) {
  FlowRule rule;
  rule.name = std::move(name);
  rule.priority = priority;
  rule.chain = std::move(chain);
  return rule;
}

// ---------------------------------------------------------------------------
// ChainSpec + FilterSpecTable

TEST(ChainSpec, SerializationRoundTrips) {
  const ChainSpec spec = make_spec(
      "fec-heavy", {{"fec-encode", {{"n", "8"}, {"k", "4"}}},
                    {"interleave", {{"rows", "4"}, {"depth", "4"}}}});
  EXPECT_EQ(ChainSpec::deserialize(spec.serialize()), spec);
  EXPECT_EQ(ChainSpec::deserialize(make_spec("passthrough").serialize()),
            make_spec("passthrough"));
}

TEST(ChainSpec, CorruptBlobThrows) {
  EXPECT_THROW(ChainSpec::deserialize(util::to_bytes("z")), util::SerialError);
}

TEST(FilterSpecTable, InternIsFlyweight) {
  FilterSpecTable table;
  // Two structurally equal specs built independently share ONE object.
  const ChainSpecRef a =
      table.intern(make_spec("light", {{"fec-encode", {{"n", "6"}}}}));
  const ChainSpecRef b =
      table.intern(make_spec("light", {{"fec-encode", {{"n", "6"}}}}));
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.hits(), 1u);
  EXPECT_EQ(table.misses(), 1u);

  // Any structural difference (name, stage order, params) is a new entry.
  const ChainSpecRef c =
      table.intern(make_spec("light", {{"fec-encode", {{"n", "8"}}}}));
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(table.size(), 2u);
}

TEST(FilterSpecTable, PurgeDropsOnlyUnreferenced) {
  FilterSpecTable table;
  ChainSpecRef held = table.intern(make_spec("held"));
  table.intern(make_spec("dropped"));  // ref discarded immediately
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.purge_unreferenced(), 1u);
  EXPECT_EQ(table.size(), 1u);
  // The held spec survives and re-interning still hits it.
  EXPECT_EQ(table.intern(make_spec("held")).get(), held.get());
}

TEST(FilterSpecTable, InstantiateChainBuildsStagesInOrder) {
  core::FilterRegistry registry;
  filters::register_builtin_filters(registry);
  const ChainSpec spec = make_spec(
      "fec-light",
      {{"fec-encode", {{"n", "6"}, {"k", "4"}}}, {"fec-decode", {}}});
  const auto filters = core::instantiate_chain(spec, registry);
  ASSERT_EQ(filters.size(), 2u);
  EXPECT_EQ(filters[0]->name(), "fec-encode");
  EXPECT_EQ(filters[1]->name(), "fec-decode");
  EXPECT_THROW(
      core::instantiate_chain(make_spec("x", {{"no-such-filter", {}}}),
                              registry),
      std::out_of_range);
}

// ---------------------------------------------------------------------------
// FlowRule matching + serialization

TEST(FlowRule, WildcardsAndRanges) {
  FlowRule rule = make_rule("r", 10, make_spec("s"));
  // All fields unset: matches everything.
  EXPECT_TRUE(rule.matches({7, "audio", LossRegime::kSevere}));

  rule.station_lo = 5;
  rule.station_hi = 9;
  rule.stream_type = "audio";
  rule.regime = LossRegime::kSevere;
  EXPECT_TRUE(rule.matches({7, "audio", LossRegime::kSevere}));
  EXPECT_FALSE(rule.matches({4, "audio", LossRegime::kSevere}));   // below lo
  EXPECT_FALSE(rule.matches({10, "audio", LossRegime::kSevere}));  // above hi
  EXPECT_FALSE(rule.matches({7, "video", LossRegime::kSevere}));
  EXPECT_FALSE(rule.matches({7, "audio", LossRegime::kClean}));
}

TEST(FlowRule, SerializationRoundTripsAllFieldCombinations) {
  FlowRule rule = make_rule("full", 7, make_spec("s", {{"null", {}}}));
  EXPECT_EQ(FlowRule::deserialize(rule.serialize()), rule);  // all wildcards
  rule.station_lo = 1;
  rule.station_hi = 99;
  rule.stream_type = "video";
  rule.regime = LossRegime::kDegraded;
  EXPECT_EQ(FlowRule::deserialize(rule.serialize()), rule);
}

TEST(FlowRule, BadRegimeOnTheWireThrows) {
  FlowRule rule = make_rule("r", 1, make_spec("s"));
  rule.regime = LossRegime::kSevere;
  util::Bytes wire = rule.serialize();
  // The regime byte is the last byte before the chain blob; corrupt it.
  const util::Bytes chain_blob = rule.chain.serialize();
  wire[wire.size() - chain_blob.size() - 4 - 1] = 9;
  EXPECT_THROW(FlowRule::deserialize(wire), util::SerialError);
}

// ---------------------------------------------------------------------------
// FlowClassifier precedence + flyweight resolution

TEST(FlowClassifier, FirstMatchByPriorityThenInsertion) {
  FilterSpecTable table;
  FlowClassifier clf(&table);
  FlowRule low = make_rule("low", 50, make_spec("low"));
  FlowRule high = make_rule("high", 10, make_spec("high"));
  FlowRule tie_a = make_rule("tie-a", 20, make_spec("tie-a"));
  FlowRule tie_b = make_rule("tie-b", 20, make_spec("tie-b"));
  clf.add_rule(low);
  clf.add_rule(tie_a);
  clf.add_rule(tie_b);
  clf.add_rule(high);

  // Everything matches every key (all wildcards): order decides.
  EXPECT_EQ(clf.resolve({})->name, "high");
  const auto rules = clf.rules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].name, "high");
  EXPECT_EQ(rules[1].name, "tie-a");  // same priority: insertion order
  EXPECT_EQ(rules[2].name, "tie-b");
  EXPECT_EQ(rules[3].name, "low");

  // Removing the winner falls through to the tie pair.
  EXPECT_TRUE(clf.remove_rule("high"));
  EXPECT_EQ(clf.resolve({})->name, "tie-a");
  EXPECT_FALSE(clf.remove_rule("high"));
}

TEST(FlowClassifier, ReplaceKeepsInsertionOrderForTies) {
  FlowClassifier clf;
  clf.add_rule(make_rule("a", 20, make_spec("a1")));
  clf.add_rule(make_rule("b", 20, make_spec("b1")));
  // Re-adding "a" with a new chain must NOT move it behind "b".
  clf.add_rule(make_rule("a", 20, make_spec("a2")));
  EXPECT_EQ(clf.resolve({})->name, "a2");
}

TEST(FlowClassifier, FallbackAndHitLedgers) {
  FilterSpecTable table;
  FlowClassifier clf(&table);
  EXPECT_EQ(clf.resolve({})->name, "passthrough");  // default fallback
  EXPECT_EQ(clf.fallback_hits(), 1u);

  FlowRule audio = make_rule("audio-only", 10, make_spec("a"));
  audio.stream_type = "audio";
  clf.add_rule(audio);
  const std::uint64_t v = clf.version();
  clf.resolve({1, "audio", LossRegime::kClean});
  clf.resolve({2, "audio", LossRegime::kClean});
  clf.resolve({3, "video", LossRegime::kClean});
  EXPECT_EQ(clf.hits("audio-only"), 2u);
  EXPECT_EQ(clf.fallback_hits(), 2u);
  EXPECT_EQ(clf.version(), v);  // resolve never bumps the table version

  clf.set_fallback(make_spec("default-compress", {{"null", {}}}));
  EXPECT_GT(clf.version(), v);
  EXPECT_EQ(clf.resolve({3, "video", LossRegime::kClean})->name,
            "default-compress");
}

TEST(FlowClassifier, TenThousandFlowsShareSixteenSpecs) {
  // The flyweight contract at the acceptance-criteria scale: 10,000 flows
  // resolved from 16 rules hold at most 16 distinct ChainSpec objects, and
  // equal resolutions are pointer-identical.
  FilterSpecTable table;
  FlowClassifier clf(&table);
  constexpr std::uint32_t kRules = 16;
  constexpr std::uint32_t kFlows = 10'000;
  for (std::uint32_t r = 0; r < kRules; ++r) {
    FlowRule rule = make_rule(
        "band-" + std::to_string(r), 10 + r,
        make_spec("chain-" + std::to_string(r),
                  {{"fec-encode", {{"n", std::to_string(4 + r)}}}}));
    // Each rule takes one 1/16th slice of the station space.
    rule.station_lo = r * (kFlows / kRules);
    rule.station_hi = (r + 1) * (kFlows / kRules) - 1;
    clf.add_rule(rule);
  }

  std::set<const ChainSpec*> distinct;
  std::vector<ChainSpecRef> held;
  held.reserve(kFlows);
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    held.push_back(clf.resolve({f, "audio", LossRegime::kClean}));
    distinct.insert(held.back().get());
  }
  EXPECT_LE(distinct.size(), kRules);
  EXPECT_LE(table.size(), kRules + 1);  // + interned fallback
  // Pointer identity: two flows in the same band share the object.
  EXPECT_EQ(held[0].get(), held[1].get());
  EXPECT_NE(held[0].get(), held[kFlows - 1].get());
}

// ---------------------------------------------------------------------------
// Control protocol v3

TEST(ControlV3, RuleRoundTripOverControlManager) {
  auto chain = std::make_shared<core::FilterChain>(
      std::make_shared<core::NullFilter>(),
      std::make_shared<core::NullFilter>());
  core::FilterRegistry registry;
  auto server = std::make_shared<core::ControlServer>(chain, &registry);

  FilterSpecTable table;
  FlowClassifier clf(&table);
  server->set_classifier(&clf);
  int hook_calls = 0;
  server->on_rules_changed([&] { ++hook_calls; });

  core::ControlManager manager = core::ControlManager::local(server);
  FlowRule rule = make_rule("lossy-audio", 20,
                            make_spec("fec-light", {{"fec-encode", {}}}));
  rule.stream_type = "audio";
  rule.regime = LossRegime::kDegraded;
  manager.rule_add(rule);
  EXPECT_EQ(hook_calls, 1);

  const auto rules = manager.rule_list();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0], rule);  // byte-exact round trip through the wire

  manager.rule_del("lossy-audio");
  EXPECT_EQ(hook_calls, 2);
  EXPECT_TRUE(manager.rule_list().empty());
  EXPECT_THROW(manager.rule_del("lossy-audio"), core::ControlError);
  EXPECT_EQ(hook_calls, 2);  // failed ops must not fire the hook
}

TEST(ControlV3, ServerWithoutClassifierDegradesCleanly) {
  auto chain = std::make_shared<core::FilterChain>(
      std::make_shared<core::NullFilter>(),
      std::make_shared<core::NullFilter>());
  core::FilterRegistry registry;
  core::ControlManager manager = core::ControlManager::local(
      std::make_shared<core::ControlServer>(chain, &registry));
  EXPECT_THROW(manager.rule_list(), core::ControlError);
  EXPECT_THROW(manager.rule_add(make_rule("r", 1, make_spec("s"))),
               core::ControlError);
}

// ---------------------------------------------------------------------------
// FlowTable

/// Registry with identity-composable chains for byte-exactness tests.
core::FilterRegistry& test_registry() {
  static core::FilterRegistry* reg = [] {
    auto* r = new core::FilterRegistry();
    filters::register_builtin_filters(*r);
    return r;
  }();
  return *reg;
}

struct FlowHarness {
  FilterSpecTable table;
  FlowClassifier clf{&table};
  std::map<std::uint32_t, std::shared_ptr<core::CollectingPacketSink>> sinks;

  /// With a pool, every flow's chain is hosted whole on its shard's worker
  /// and the per-worker idle sweep runs (docs/data_plane.md).
  proxy::FlowTable make_table(
      core::WorkerPool* pool = nullptr,
      std::uint64_t idle_timeout_ms = proxy::FlowTable::kDefaultIdleTimeoutMs) {
    return proxy::FlowTable(
        clf, test_registry(),
        [this](const FlowKey& key) {
          proxy::FlowTable::Endpoints eps;
          eps.source = std::make_shared<core::QueuePacketSource>();
          eps.head = std::make_shared<core::PacketReaderEndpoint>("rx",
                                                                  eps.source);
          eps.tail = std::make_shared<core::PacketWriterEndpoint>(
              "tx", sinks.at(key.station));
          return eps;
        },
        pool, idle_timeout_ms);
  }
};

/// Polls `pred` until true or `timeout`: the worker-hosted table is
/// asynchronous (sweeps and final drives run on the pool), so tests wait
/// on observable state.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout =
                               std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(FlowTable, AcquireInstantiatesFromResolvedSpecOnce) {
  FlowHarness h;
  h.sinks[1] = std::make_shared<core::CollectingPacketSink>();
  h.clf.add_rule(make_rule(
      "fec", 10, make_spec("fec-light", {{"fec-encode", {{"n", "6"}}},
                                         {"fec-decode", {}}})));
  proxy::FlowTable flows = h.make_table();

  const FlowKey key{1, "audio", LossRegime::kClean};
  EXPECT_EQ(flows.find(key), nullptr);
  auto chain = flows.acquire(key);
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(chain->names(),
            (std::vector<std::string>{"fec-encode", "fec-decode"}));
  EXPECT_EQ(flows.acquire(key), chain);  // idempotent
  EXPECT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows.created(), 1u);
  // The flow holds the interned spec by pointer.
  EXPECT_EQ(flows.spec_of(key).get(), h.clf.resolve(key).get());
  flows.shutdown_all();
  EXPECT_EQ(flows.size(), 0u);
}

TEST(FlowTable, PushRoutesAndExpireDrainsByteExact) {
  FlowHarness h;
  h.sinks[3] = std::make_shared<core::CollectingPacketSink>();
  h.sinks[4] = std::make_shared<core::CollectingPacketSink>();
  proxy::FlowTable flows = h.make_table();  // empty table: fallback chains

  constexpr std::uint32_t kPackets = 200;
  constexpr std::uint64_t kSeed = 0xf00d;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    flows.push({3, "audio", LossRegime::kClean},
               testing::make_stamped_packet(kSeed + 3, i, 64));
    flows.push({4, "audio", LossRegime::kClean},
               testing::make_stamped_packet(kSeed + 4, i, 64));
  }
  EXPECT_EQ(flows.size(), 2u);
  EXPECT_TRUE(flows.expire({3, "audio", LossRegime::kClean}));
  EXPECT_TRUE(flows.expire({4, "audio", LossRegime::kClean}));
  EXPECT_FALSE(flows.expire({3, "audio", LossRegime::kClean}));
  EXPECT_EQ(flows.expired(), 2u);

  for (const std::uint32_t station : {3u, 4u}) {
    testing::PacketLedger ledger(kSeed + station, kPackets);
    for (const auto& p : h.sinks[station]->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets) << "station " << station;
    EXPECT_EQ(ledger.lost(), 0u);
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.reordered(), 0u);
    EXPECT_EQ(ledger.corrupt(), 0u);
  }
}

TEST(FlowTable, ReresolveReconfiguresOnlyChangedFlows) {
  FlowHarness h;
  h.sinks[1] = std::make_shared<core::CollectingPacketSink>();
  h.sinks[2] = std::make_shared<core::CollectingPacketSink>();
  FlowRule severe = make_rule(
      "severe", 10, make_spec("fec", {{"fec-encode", {{"n", "6"}}},
                                      {"fec-decode", {}}}));
  severe.regime = LossRegime::kSevere;
  h.clf.add_rule(severe);
  proxy::FlowTable flows = h.make_table();

  const FlowKey clean{1, "audio", LossRegime::kClean};    // -> fallback
  const FlowKey lossy{2, "audio", LossRegime::kSevere};   // -> fec
  flows.acquire(clean);
  flows.acquire(lossy);

  // No table change: reresolve is a no-op (pointer-equal specs).
  EXPECT_EQ(flows.reresolve(), 0u);

  // Retune the severe rule: only the severe flow reconfigures.
  severe.chain = make_spec("fec2", {{"fec-encode", {{"n", "8"}}},
                                    {"fec-decode", {}}});
  h.clf.add_rule(severe);
  EXPECT_EQ(flows.reresolve(), 1u);
  EXPECT_EQ(flows.reconfigured(), 1u);
  EXPECT_EQ(flows.spec_of(lossy)->name, "fec2");
  EXPECT_EQ(flows.spec_of(clean)->name, "passthrough");
}

TEST(FlowTable, LiveRuleSwapIsByteExactUnderStress) {
  // The PR's core byte-exactness claim: while packets stream through four
  // flows, a control thread keeps replacing the rule table (passthrough <->
  // one-null <-> two-null chains — all end-to-end identity) and re-resolving
  // the live flows. Every packet must come out exactly once, in order,
  // unmodified. The schedule is seeded and deterministic; thread
  // interleaving is the randomness.
  FlowHarness h;
  constexpr std::uint32_t kFlows = 4;
  constexpr std::uint32_t kPackets = 1500;
  constexpr std::uint64_t kSeed = 0x5eed0123;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    h.sinks[f] = std::make_shared<core::CollectingPacketSink>();
  }
  proxy::FlowTable flows = h.make_table();

  std::atomic<bool> done{false};
  std::thread control([&] {
    util::Rng rng(kSeed);
    const std::vector<ChainSpec> variants = {
        make_spec("passthrough"),
        make_spec("one-null", {{"null", {}}}),
        make_spec("two-null", {{"null", {}}, {"null", {}}})};
    while (!done.load()) {
      FlowRule rule = make_rule(
          "shape", 10,
          variants[rng.next_below(variants.size())]);
      h.clf.add_rule(std::move(rule));   // replace in place
      flows.reresolve();                 // what the proxy hook does
      if (rng.next_below(8) == 0) {
        h.clf.remove_rule("shape");      // fall back to passthrough
        flows.reresolve();
      }
      std::this_thread::yield();
    }
  });

  for (std::uint32_t i = 0; i < kPackets; ++i) {
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      flows.push({f, "audio", LossRegime::kClean},
                 testing::make_stamped_packet(kSeed + f, i, 48));
    }
  }
  done.store(true);
  control.join();
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    ASSERT_TRUE(flows.expire({f, "audio", LossRegime::kClean}));
  }

  for (std::uint32_t f = 0; f < kFlows; ++f) {
    testing::PacketLedger ledger(kSeed + f, kPackets);
    for (const auto& p : h.sinks[f]->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets) << "flow " << f;
    EXPECT_EQ(ledger.lost(), 0u) << "flow " << f;
    EXPECT_EQ(ledger.duplicates(), 0u) << "flow " << f;
    EXPECT_EQ(ledger.reordered(), 0u) << "flow " << f;
    EXPECT_EQ(ledger.corrupt(), 0u) << "flow " << f;
  }
}

TEST(FlowTable, PoolHostedLiveRuleSwapIsByteExact) {
  // The LiveRuleSwap schedule with the table sharded over a WorkerPool:
  // every flow's chain runs as multiplexed on_ready() drives on its
  // shard's worker while the control thread swaps rules and re-resolves.
  // The in-place reconfigure protocol must hold byte-exactness under
  // event dispatch exactly as it does under thread-per-filter.
  FlowHarness h;
  constexpr std::uint32_t kFlows = 4;
  constexpr std::uint32_t kPackets = 1500;
  constexpr std::uint64_t kSeed = 0x5eed4567;
  for (std::uint32_t f = 0; f < kFlows; ++f) {
    h.sinks[f] = std::make_shared<core::CollectingPacketSink>();
  }
  core::WorkerPool pool(2);
  {
    // No idle eviction here: the control schedule owns flow lifetime.
    proxy::FlowTable flows = h.make_table(&pool, /*idle_timeout_ms=*/0);
    EXPECT_EQ(flows.pool(), &pool);

    std::atomic<bool> done{false};
    std::thread control([&] {
      util::Rng rng(kSeed);
      const std::vector<ChainSpec> variants = {
          make_spec("passthrough"),
          make_spec("one-null", {{"null", {}}}),
          make_spec("two-null", {{"null", {}}, {"null", {}}})};
      while (!done.load()) {
        FlowRule rule = make_rule(
            "shape", 10, variants[rng.next_below(variants.size())]);
        h.clf.add_rule(std::move(rule));
        flows.reresolve();
        if (rng.next_below(8) == 0) {
          h.clf.remove_rule("shape");
          flows.reresolve();
        }
        std::this_thread::yield();
      }
    });

    for (std::uint32_t i = 0; i < kPackets; ++i) {
      for (std::uint32_t f = 0; f < kFlows; ++f) {
        flows.push({f, "audio", LossRegime::kClean},
                   testing::make_stamped_packet(kSeed + f, i, 48));
      }
    }
    done.store(true);
    control.join();
    for (std::uint32_t f = 0; f < kFlows; ++f) {
      ASSERT_TRUE(flows.expire({f, "audio", LossRegime::kClean}));
    }

    for (std::uint32_t f = 0; f < kFlows; ++f) {
      testing::PacketLedger ledger(kSeed + f, kPackets);
      for (const auto& p : h.sinks[f]->packets()) ledger.record(p);
      EXPECT_EQ(ledger.ok(), kPackets) << "flow " << f;
      EXPECT_EQ(ledger.lost(), 0u) << "flow " << f;
      EXPECT_EQ(ledger.duplicates(), 0u) << "flow " << f;
      EXPECT_EQ(ledger.reordered(), 0u) << "flow " << f;
      EXPECT_EQ(ledger.corrupt(), 0u) << "flow " << f;
    }
  }
  pool.stop();
}

TEST(FlowTable, IdleFlowsAreEvictedByTheWorkerSweep) {
  // Three flows go quiet after delivering their packets: the per-worker
  // sweep must evict all of them (two quiet sweeps at timeout/2 each),
  // reap the drained chains, and count them in flows_evicted() — without
  // losing a packet that was delivered before the flows went idle.
  FlowHarness h;
  constexpr std::uint32_t kPackets = 50;
  constexpr std::uint64_t kSeed = 0xe71c7;
  for (std::uint32_t f = 0; f < 3; ++f) {
    h.sinks[f] = std::make_shared<core::CollectingPacketSink>();
  }
  core::WorkerPool pool(2);
  {
    proxy::FlowTable flows = h.make_table(&pool, /*idle_timeout_ms=*/100);
    for (std::uint32_t i = 0; i < kPackets; ++i) {
      for (std::uint32_t f = 0; f < 3; ++f) {
        flows.push({f, "audio", LossRegime::kClean},
                   testing::make_stamped_packet(kSeed + f, i, 64));
      }
    }
    for (std::uint32_t f = 0; f < 3; ++f) {
      ASSERT_TRUE(h.sinks[f]->wait_for(kPackets));
    }

    EXPECT_TRUE(eventually([&] { return flows.size() == 0; }));
    EXPECT_TRUE(eventually([&] { return flows.flows_evicted() == 3; }));
    EXPECT_EQ(flows.expired(), 0u);  // eviction is counted separately

    for (std::uint32_t f = 0; f < 3; ++f) {
      testing::PacketLedger ledger(kSeed + f, kPackets);
      for (const auto& p : h.sinks[f]->packets()) ledger.record(p);
      EXPECT_EQ(ledger.ok(), kPackets) << "flow " << f;
      EXPECT_EQ(ledger.lost(), 0u) << "flow " << f;
    }
  }
  pool.stop();
}

TEST(FlowTable, ActiveFlowsSurviveTheIdleSweep) {
  // Activity (push) must reset the idle clock: a flow that keeps receiving
  // outlives many sweep periods while its silent sibling is evicted.
  FlowHarness h;
  h.sinks[1] = std::make_shared<core::CollectingPacketSink>();
  h.sinks[2] = std::make_shared<core::CollectingPacketSink>();
  core::WorkerPool pool(1);  // one shard: both flows share the sweep timer
  {
    proxy::FlowTable flows = h.make_table(&pool, /*idle_timeout_ms=*/100);
    const FlowKey active{1, "audio", LossRegime::kClean};
    const FlowKey idle{2, "audio", LossRegime::kClean};
    flows.push(idle, testing::make_stamped_packet(0xabc, 0, 64));

    // Keep the active flow warm for ~6 sweep periods.
    std::uint32_t seq = 0;
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(600);
    while (std::chrono::steady_clock::now() < until) {
      flows.push(active, testing::make_stamped_packet(0xdef, seq++, 64));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    EXPECT_TRUE(eventually([&] { return flows.flows_evicted() >= 1; }));
    EXPECT_EQ(flows.find(idle), nullptr);
    EXPECT_NE(flows.find(active), nullptr);
    EXPECT_EQ(flows.size(), 1u);
    ASSERT_TRUE(flows.expire(active));
    EXPECT_TRUE(h.sinks[1]->wait_end());
  }
  pool.stop();
}

}  // namespace
}  // namespace rapidware
