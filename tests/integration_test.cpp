// Cross-module integration tests: full filter pipelines over the simulated
// network, paired proxies, remote reconfiguration under live traffic, and
// a Pavilion session protected by an FEC proxy over a lossy WLAN.
#include <gtest/gtest.h>

#include <thread>

#include "filters/compress_filter.h"
#include "filters/crypto_filter.h"
#include "filters/fec_filters.h"
#include "filters/transcode_filter.h"
#include "filters/registry.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "pavilion/session.h"
#include "proxy/proxy.h"
#include "util/rng.h"
#include "wireless/wlan.h"

namespace rapidware {
namespace {

using util::Bytes;

// ---------------------------------------------------------------------------
// A deep pipeline across two proxies: the sender-side proxy encrypts,
// compresses, and FEC-protects; the receiver-side proxy (on the mobile
// host) reverses every transform. Payloads must survive byte-exactly
// across a lossy wireless hop.

TEST(Integration, EncryptCompressFecAcrossTwoProxies) {
  filters::register_builtin_filters();
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 404);
  const auto sender_node = net.add_node("sender");
  const auto uplink_proxy = net.add_node("uplink-proxy");
  const auto mobile = net.add_node("mobile");

  wireless::WirelessLan wlan(net, uplink_proxy);
  wlan.add_station(mobile, 30.0);  // ~2.9% bursty loss

  // Sender-side proxy: compress -> encrypt -> fec-encode.
  proxy::ProxyConfig up;
  up.ingress_port = 4000;
  up.egress_dst = {mobile, 4500};
  proxy::Proxy tx_proxy(net, uplink_proxy, up);
  tx_proxy.start();
  const auto key = filters::derive_key("session-key");
  tx_proxy.chain().append(std::make_shared<filters::CompressFilter>());
  tx_proxy.chain().append(std::make_shared<filters::EncryptFilter>(key));
  tx_proxy.chain().append(std::make_shared<filters::FecEncodeFilter>(8, 4));

  // Mobile-side proxy (local chain): fec-decode -> decrypt -> decompress.
  proxy::ProxyConfig down;
  down.ingress_port = 4500;
  down.egress_dst = {mobile, 4600};
  down.control_port = 4998;
  proxy::Proxy rx_proxy(net, mobile, down);
  rx_proxy.start();
  rx_proxy.chain().append(std::make_shared<filters::FecDecodeFilter>(4));
  rx_proxy.chain().append(std::make_shared<filters::DecryptFilter>(key));
  rx_proxy.chain().append(std::make_shared<filters::DecompressFilter>());

  auto app = net.open(mobile, 4600);
  std::map<std::uint32_t, Bytes> delivered;
  std::thread receiver([&] {
    for (;;) {
      auto d = app->recv(500);
      if (!d) break;
      const auto media = media::MediaPacket::parse(d->payload);
      delivered[media.seq] = d->payload;
    }
  });

  auto tx = net.open(sender_node);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  constexpr int kPackets = 1200;
  std::map<std::uint32_t, Bytes> sent;
  for (int i = 0; i < kPackets; ++i) {
    const auto p = packetizer.next_packet();
    const Bytes wire = p.serialize();
    sent[p.seq] = wire;
    tx->send_to({uplink_proxy, 4000}, wire);
    clock->advance(20'000);
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  tx_proxy.shutdown();
  rx_proxy.shutdown();

  // FEC(8,4) at ~3% loss: near-total delivery, every byte exact.
  EXPECT_GT(delivered.size(), static_cast<std::size_t>(kPackets * 0.99));
  for (const auto& [seq, wire] : delivered) {
    EXPECT_EQ(wire, sent.at(seq)) << "seq " << seq;
  }
}

// ---------------------------------------------------------------------------
// Remote reconfiguration under load: an administrator reshapes the chain
// through the control protocol while packets flow; the sequence stream at
// the sink must stay gapless and duplicate-free whenever the in/out
// transforms are balanced.

TEST(Integration, RemoteReconfigurationKeepsStreamIntact) {
  filters::register_builtin_filters();
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 405);
  const auto sender_node = net.add_node("sender");
  const auto proxy_node = net.add_node("proxy");
  const auto sink_node = net.add_node("sink");

  proxy::ProxyConfig c;
  c.ingress_port = 4000;
  c.egress_dst = {sink_node, 5000};
  proxy::Proxy proxy(net, proxy_node, c);
  proxy.start();
  core::ControlManager manager(proxy::network_control_transport(
      net, sender_node, proxy.control_address()));

  auto rx = net.open(sink_node, 5000);
  fec::GroupDecoder decoder(4);
  std::vector<std::uint32_t> seqs;
  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      std::vector<Bytes> payloads;
      if (fec::looks_like_fec_packet(d->payload)) {
        payloads = decoder.add(d->payload);
      } else {
        payloads.push_back(d->payload);
      }
      for (const auto& p : payloads) {
        seqs.push_back(media::MediaPacket::parse(p).seq);
      }
    }
    for (const auto& p : decoder.flush()) {
      seqs.push_back(media::MediaPacket::parse(p).seq);
    }
  });

  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> produced{0};
  std::thread producer([&] {
    auto tx = net.open(sender_node);
    media::AudioSource audio;
    media::AudioPacketizer packetizer(audio);
    while (!stop.load()) {
      tx->send_to({proxy_node, 4000}, packetizer.next_packet().serialize());
      produced.fetch_add(1);
      clock->advance(20'000);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // A realistic admin session: taps, FEC on, retune, FEC replaced, off.
  const auto admin = [&](const char* op, auto&& fn) {
    SCOPED_TRACE(op);
    EXPECT_NO_THROW(fn());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  admin("tap", [&] { manager.insert({"stats", {}}, 0); });
  admin("fec on", [&] { manager.insert({"fec-encode", {}}, 1); });
  admin("retune", [&] { manager.set_param(1, "n", "8"); });
  admin("reorder", [&] { manager.reorder(0, 1); });  // tap after encoder
  admin("fec off", [&] { manager.remove(0); });
  admin("untap", [&] { manager.remove(0); });

  stop.store(true);
  producer.join();
  proxy.shutdown();
  receiver.join();

  ASSERT_EQ(seqs.size(), produced.load());
  for (std::uint32_t i = 0; i < seqs.size(); ++i) {
    ASSERT_EQ(seqs[i], i) << "gap or reorder at " << i;
  }
}

// ---------------------------------------------------------------------------
// Pavilion over a lossy WLAN: without FEC the handheld misses resources;
// with an FEC-protected proxy chain it gets them all. (Resources are sent
// once — no retransmission — so this isolates the FEC contribution, the
// "reliable data delivery" use of FEC the paper cites [16].)

TEST(Integration, PavilionHandheldBehindFecProxyOverLossyWlan) {
  filters::register_builtin_filters();
  for (const bool fec : {false, true}) {
    SCOPED_TRACE(fec ? "with FEC" : "without FEC");
    auto clock = std::make_shared<util::SimClock>();
    net::SimNetwork net(clock, 406);
    pavilion::WebServer web;
    const auto groups = pavilion::SessionGroups::standard();

    const auto proxy_node = net.add_node("proxy");
    const auto handheld_node = net.add_node("handheld");
    wireless::WirelessLan wlan(net, proxy_node);
    wlan.add_station(handheld_node, 40.0);  // ~11% loss: misses are likely

    proxy::ProxyConfig pc;
    pc.ingress_port = groups.data.port;
    pc.ingress_group = groups.data;
    pc.egress_dst = {handheld_node, 4600};
    proxy::Proxy proxy(net, proxy_node, pc);
    proxy.start();
    if (fec) {
      // Every resource packet becomes its own heavily protected group.
      proxy.chain().append(std::make_shared<filters::UepFecEncodeFilter>(
          fec::UepPolicy::uniform({5, 1})));
    }

    pavilion::SessionMember alice("alice", net, net.add_node("alice"), groups,
                                  &web, true);
    auto feed_socket = net.open(handheld_node, 4600);
    // With FEC, the handheld's feed passes through a local decode chain.
    std::shared_ptr<net::SimSocket> member_feed = feed_socket;
    std::unique_ptr<proxy::Proxy> decode_proxy;
    if (fec) {
      // Local decode leg on the handheld itself.
      proxy::ProxyConfig dc;
      dc.ingress_port = 4600;
      dc.egress_dst = {handheld_node, 4700};
      dc.control_port = 4997;
      feed_socket->close();  // the decode proxy owns port 4600 instead
      decode_proxy = std::make_unique<proxy::Proxy>(net, handheld_node, dc);
      decode_proxy->start();
      decode_proxy->chain().append(
          std::make_shared<filters::FecDecodeFilter>(4));
      member_feed = net.open(handheld_node, 4700);
    }
    pavilion::SessionMember dave("dave", net, handheld_node, groups, &web,
                                 false, member_feed);
    alice.start();
    dave.start();

    constexpr int kPages = 60;
    for (int i = 0; i < kPages; ++i) {
      ASSERT_TRUE(alice.navigate("/p" + std::to_string(i) + ".html"));
      clock->advance(100'000);
      if (i % 10 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    const std::size_t got = dave.resources_received();
    if (fec) {
      EXPECT_EQ(got, static_cast<std::size_t>(kPages));
    } else {
      EXPECT_LT(got, static_cast<std::size_t>(kPages));  // losses bite
    }

    alice.stop();
    dave.stop();
    if (decode_proxy) decode_proxy->shutdown();
    proxy.shutdown();
  }
}

// ---------------------------------------------------------------------------
// Device handoff (Section 2: "the application is handed off from one
// computing device to another"): mid-stream, the proxy's egress retargets
// from a laptop to a palmtop AND a transcode filter is inserted for the
// weaker device — without restarting the chain or losing a packet.

TEST(Integration, DeviceHandoffRetargetsAndTranscodes) {
  filters::register_builtin_filters();
  auto clock = std::make_shared<util::SimClock>();
  net::SimNetwork net(clock, 407);
  const auto sender_node = net.add_node("sender");
  const auto proxy_node = net.add_node("proxy");
  const auto laptop = net.add_node("laptop");
  const auto palmtop = net.add_node("palmtop");

  proxy::ProxyConfig c;
  c.ingress_port = 4000;
  c.egress_dst = {laptop, 5000};
  proxy::Proxy proxy(net, proxy_node, c);
  proxy.start();

  auto collect = [&](net::NodeId node) {
    return net.open(node, 5000);
  };
  auto laptop_rx = collect(laptop);
  auto palmtop_rx = collect(palmtop);

  std::map<std::uint32_t, std::size_t> laptop_got, palmtop_got;  // seq->bytes
  auto drain = [](net::SimSocket& socket,
                  std::map<std::uint32_t, std::size_t>& into) {
    while (auto d = socket.recv(50)) {
      const auto media = media::MediaPacket::parse(d->payload);
      into[media.seq] = media.payload.size();
    }
  };

  auto tx = net.open(sender_node);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  constexpr int kPackets = 400;
  constexpr int kHandoffAt = 200;
  for (int i = 0; i < kPackets; ++i) {
    if (i == kHandoffAt) {
      // The handoff: retarget the egress and shrink the stream for the
      // palmtop, all while packets keep flowing.
      proxy.retarget_egress({palmtop, 5000});
      proxy.chain().insert(
          std::make_shared<filters::AudioTranscodeFilter>(
              media::paper_audio_format(), filters::TranscodeMode::kMonoHalf),
          0);
      EXPECT_EQ(proxy.egress_destination(), (net::Address{palmtop, 5000}));
    }
    tx->send_to({proxy_node, 4000}, packetizer.next_packet().serialize());
    clock->advance(20'000);
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  drain(*laptop_rx, laptop_got);
  drain(*palmtop_rx, palmtop_got);
  proxy.shutdown();
  drain(*palmtop_rx, palmtop_got);  // anything flushed at shutdown

  // Every packet arrived exactly once, at exactly one device.
  EXPECT_EQ(laptop_got.size() + palmtop_got.size(),
            static_cast<std::size_t>(kPackets));
  for (const auto& [seq, bytes] : laptop_got) {
    EXPECT_LT(seq, static_cast<std::uint32_t>(kHandoffAt) + 2);
    EXPECT_EQ(bytes, 320u);  // full stereo before handoff
  }
  std::size_t transcoded = 0;
  for (const auto& [seq, bytes] : palmtop_got) {
    EXPECT_EQ(palmtop_got.count(seq), 1u);
    if (bytes == 80u) ++transcoded;  // mono+half after the filter kicked in
  }
  // Packets already past the insertion point when the filter spliced in
  // arrive untranscoded; their number is bounded by pipeline buffering,
  // which depends on scheduling. Demand a solid majority, not a fixed few.
  EXPECT_GT(transcoded, palmtop_got.size() / 2);
  EXPECT_EQ(palmtop_got.rbegin()->second, 80u);  // steady state: transcoded
}

}  // namespace
}  // namespace rapidware
