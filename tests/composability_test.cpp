// Tests for composability typing — the paper's "language support to
// characterize the composability of filters" (Conclusions): type algebra,
// per-filter declarations, chain type traces, and enforcement of
// insert/remove/reorder against a live stream.
#include <gtest/gtest.h>

#include "core/composability.h"
#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "filters/compress_filter.h"
#include "filters/crypto_filter.h"
#include "filters/fec_filters.h"
#include "filters/stats_filter.h"
#include "filters/transcode_filter.h"
#include "media/media_packet.h"

namespace rapidware::core {
namespace {

// ---------------------------------------------------------------------------
// Type algebra

TEST(TypeAlgebra, AnySatisfiesEverything) {
  EXPECT_TRUE(type_satisfies("any", "media"));
  EXPECT_TRUE(type_satisfies("any", "rle(media)"));
  EXPECT_TRUE(type_satisfies("any", "any"));
}

TEST(TypeAlgebra, UnknownTypeIsVacuouslyAccepted) {
  EXPECT_TRUE(type_satisfies("media", "any"));
  EXPECT_TRUE(type_satisfies("rle(*)", "any"));
}

TEST(TypeAlgebra, ExactMatch) {
  EXPECT_TRUE(type_satisfies("media", "media"));
  EXPECT_FALSE(type_satisfies("media", "video"));
  EXPECT_FALSE(type_satisfies("media", "rle(media)"));
}

TEST(TypeAlgebra, WrapperPattern) {
  EXPECT_TRUE(type_satisfies("rle(*)", "rle(media)"));
  EXPECT_TRUE(type_satisfies("rle(*)", "rle(fec(media))"));
  EXPECT_FALSE(type_satisfies("rle(*)", "media"));
  EXPECT_FALSE(type_satisfies("rle(*)", "rlex(media)"));
  EXPECT_FALSE(type_satisfies("rle(*)", "chacha20(rle(media))"));
}

TEST(TypeAlgebra, WrapAndUnwrap) {
  EXPECT_EQ(wrap_type("fec", "media"), "fec(media)");
  EXPECT_EQ(wrap_type("fec", "any"), "any");  // unknown stays unknown
  EXPECT_EQ(unwrap_type("fec", "fec(media)"), "media");
  EXPECT_EQ(unwrap_type("fec", "fec(rle(media))"), "rle(media)");
  EXPECT_EQ(unwrap_type("fec", "any"), "any");
  EXPECT_FALSE(unwrap_type("fec", "rle(media)").has_value());
  EXPECT_FALSE(unwrap_type("fec", "media").has_value());
}

TEST(TypeAlgebra, CheckStepMessages) {
  EXPECT_FALSE(check_step("f", "any", "whatever").has_value());
  const auto error = check_step("decompress", "rle(*)", "media");
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("decompress"), std::string::npos);
  EXPECT_NE(error->find("rle(*)"), std::string::npos);
  EXPECT_NE(error->find("media"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Filter declarations

TEST(FilterTypes, TransformsComposeCorrectly) {
  filters::FecEncodeFilter fec_enc(6, 4);
  filters::FecDecodeFilter fec_dec;
  filters::CompressFilter comp;
  filters::DecompressFilter decomp;
  filters::EncryptFilter enc(filters::derive_key("k"));
  filters::DecryptFilter dec(filters::derive_key("k"));

  std::string t = "media";
  t = comp.output_type(t);
  EXPECT_EQ(t, "rle(media)");
  t = enc.output_type(t);
  EXPECT_EQ(t, "chacha20(rle(media))");
  t = fec_enc.output_type(t);
  EXPECT_EQ(t, "fec(chacha20(rle(media)))");
  t = fec_dec.output_type(t);
  t = dec.output_type(t);
  t = decomp.output_type(t);
  EXPECT_EQ(t, "media");
}

TEST(FilterTypes, DefaultsAreTypeNeutral) {
  filters::StatsFilter tap;
  EXPECT_EQ(tap.input_requirement(), "any");
  EXPECT_EQ(tap.output_type("fec(media)"), "fec(media)");
}

TEST(FilterTypes, TranscodeRequiresMedia) {
  filters::AudioTranscodeFilter transcode(media::paper_audio_format());
  EXPECT_EQ(transcode.input_requirement(), "media");
}

// ---------------------------------------------------------------------------
// Chain-level typing and enforcement

struct Harness {
  std::shared_ptr<QueuePacketSource> source =
      std::make_shared<QueuePacketSource>();
  std::shared_ptr<CollectingPacketSink> sink =
      std::make_shared<CollectingPacketSink>();
  std::shared_ptr<FilterChain> chain;

  Harness() {
    chain = std::make_shared<FilterChain>(
        std::make_shared<PacketReaderEndpoint>("in", source),
        std::make_shared<PacketWriterEndpoint>("out", sink));
    chain->set_stream_type("media");
    chain->set_type_enforcement(true);
    chain->start();
  }
  ~Harness() {
    source->finish();
    chain->shutdown();
  }
};

TEST(ChainTyping, TraceFollowsTransforms) {
  Harness h;
  h.chain->append(std::make_shared<filters::CompressFilter>());
  h.chain->append(std::make_shared<filters::FecEncodeFilter>(6, 4));
  EXPECT_EQ(h.chain->type_trace(),
            (std::vector<std::string>{"media", "rle(media)",
                                      "fec(rle(media))"}));
  EXPECT_FALSE(h.chain->type_error().has_value());
}

TEST(ChainTyping, RejectsDecompressorWithoutCompressor) {
  Harness h;
  EXPECT_THROW(h.chain->append(std::make_shared<filters::DecompressFilter>()),
               StreamError);
  EXPECT_EQ(h.chain->size(), 0u);  // stream untouched
}

TEST(ChainTyping, RejectsMisorderedPair) {
  Harness h;
  // decrypt before encrypt: the decryptor would see plain media.
  h.chain->append(
      std::make_shared<filters::EncryptFilter>(filters::derive_key("k")));
  EXPECT_THROW(
      h.chain->insert(
          std::make_shared<filters::DecryptFilter>(filters::derive_key("k")),
          0),
      StreamError);
  // In the right place it is accepted.
  EXPECT_NO_THROW(h.chain->insert(
      std::make_shared<filters::DecryptFilter>(filters::derive_key("k")), 1));
}

TEST(ChainTyping, RejectsRemovalDownstreamDependsOn) {
  Harness h;
  h.chain->append(std::make_shared<filters::CompressFilter>());
  h.chain->append(std::make_shared<filters::DecompressFilter>());
  // Removing the compressor would hand raw media to the decompressor.
  EXPECT_THROW(h.chain->remove(0), StreamError);
  // Removing the pair back-to-front is fine.
  EXPECT_NO_THROW(h.chain->remove(1));
  EXPECT_NO_THROW(h.chain->remove(0));
}

TEST(ChainTyping, RejectsBadReorderAllowsGoodOne) {
  Harness h;
  h.chain->append(std::make_shared<filters::CompressFilter>());
  h.chain->append(std::make_shared<filters::StatsFilter>("tap"));
  h.chain->append(std::make_shared<filters::DecompressFilter>());
  // Swapping decompress before compress must fail...
  EXPECT_THROW(h.chain->reorder(2, 0), StreamError);
  EXPECT_EQ(h.chain->size(), 3u);
  EXPECT_FALSE(h.chain->type_error().has_value());
  // ...but moving the type-neutral tap anywhere is fine.
  EXPECT_NO_THROW(h.chain->reorder(1, 0));
  EXPECT_EQ(h.chain->names(),
            (std::vector<std::string>{"tap", "compress", "decompress"}));
}

TEST(ChainTyping, FecDecoderPassThroughTyping) {
  // A permanently installed decoder is type-neutral on raw media and
  // stripping on FEC streams — both configurations type-check.
  Harness h;
  h.chain->append(std::make_shared<filters::FecDecodeFilter>());
  EXPECT_EQ(h.chain->type_trace().back(), "media");
  h.chain->insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);
  EXPECT_EQ(h.chain->type_trace().back(), "media");
}

TEST(ChainTyping, EnforcementOffByDefault) {
  auto source = std::make_shared<QueuePacketSource>();
  auto sink = std::make_shared<CollectingPacketSink>();
  FilterChain chain(std::make_shared<PacketReaderEndpoint>("in", source),
                    std::make_shared<PacketWriterEndpoint>("out", sink));
  chain.set_stream_type("media");
  chain.start();
  // Without enforcement the (unsound) insert goes through; type_error
  // reports it for diagnostics.
  EXPECT_NO_THROW(chain.append(std::make_shared<filters::DecompressFilter>()));
  EXPECT_TRUE(chain.type_error().has_value());
  source->finish();
  chain.shutdown();
}

TEST(ChainTyping, UnknownIngressTypeDisablesChecks) {
  auto source = std::make_shared<QueuePacketSource>();
  auto sink = std::make_shared<CollectingPacketSink>();
  FilterChain chain(std::make_shared<PacketReaderEndpoint>("in", source),
                    std::make_shared<PacketWriterEndpoint>("out", sink));
  chain.set_type_enforcement(true);  // but stream type stays "any"
  chain.start();
  EXPECT_NO_THROW(chain.append(std::make_shared<filters::DecompressFilter>()));
  source->finish();
  chain.shutdown();
}

TEST(ChainTyping, TypeCheckedChainStillMovesData) {
  Harness h;
  h.chain->append(std::make_shared<filters::CompressFilter>());
  h.chain->append(
      std::make_shared<filters::EncryptFilter>(filters::derive_key("s")));
  h.chain->append(
      std::make_shared<filters::DecryptFilter>(filters::derive_key("s")));
  h.chain->append(std::make_shared<filters::DecompressFilter>());

  media::MediaPacket p;
  p.seq = 1;
  p.payload = util::Bytes(100, 0x3c);
  h.source->push(p.serialize());
  ASSERT_TRUE(h.sink->wait_for(1));
  EXPECT_EQ(h.sink->packets()[0], p.serialize());
}

}  // namespace
}  // namespace rapidware::core
