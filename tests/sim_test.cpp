// Tests for the discrete-event simulation core (sim::VirtualClock,
// sim::PeriodicTask) and the station-fleet simulation (sim::FleetSim).
//
// The load-bearing property is determinism: same seed, same config ⇒
// byte-identical event ordering and STATS snapshot, every run, on every
// machine. SimDeterminism.PinnedSeedStatsHash pins that contract to a
// constant; it is registered twice in ctest (sim_determinism_a/_b) so a
// nondeterministic regression shows up as two processes disagreeing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/fleet.h"
#include "sim/virtual_clock.h"
#include "util/clock.h"

namespace rapidware {
namespace {

using sim::FleetConfig;
using sim::FleetSim;
using sim::PeriodicTask;
using sim::VirtualClock;

// ---------------------------------------------------------------------------
// VirtualClock

TEST(VirtualClock, StartsAtZeroAndAdvancesOnlyWhenRun) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.pending(), 0u);
  EXPECT_EQ(clock.run_until(1'000'000), 0u);
  EXPECT_EQ(clock.now(), 1'000'000);
}

TEST(VirtualClock, RunsEventsInTimeOrder) {
  VirtualClock clock;
  std::vector<int> order;
  clock.schedule_at(300, [&] { order.push_back(3); });
  clock.schedule_at(100, [&] { order.push_back(1); });
  clock.schedule_at(200, [&] { order.push_back(2); });
  EXPECT_EQ(clock.run_until(250), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(clock.now(), 250);
  EXPECT_EQ(clock.run_until(300), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(VirtualClock, EqualTimesRunInScheduleOrder) {
  // The (time, seq) tie-break: simultaneous events fire in the order they
  // were scheduled, which is what makes multi-station ticks reproducible.
  VirtualClock clock;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    clock.schedule_at(500, [&order, i] { order.push_back(i); });
  }
  clock.run_until(500);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(VirtualClock, CallbackSeesEventTimeNotTarget) {
  VirtualClock clock;
  util::Micros seen = -1;
  clock.schedule_at(250, [&] {
    seen = clock.now();  // now() is the event's time mid-callback
  });
  clock.run_until(1'000);
  EXPECT_EQ(seen, 250);
  EXPECT_EQ(clock.now(), 1'000);
}

TEST(VirtualClock, SchedulingFromInsideACallbackRunsSameSweep) {
  VirtualClock clock;
  std::vector<util::Micros> fired;
  clock.schedule_at(100, [&] {
    fired.push_back(clock.now());
    clock.schedule_after(50, [&] { fired.push_back(clock.now()); });
  });
  EXPECT_EQ(clock.run_until(200), 2u);
  EXPECT_EQ(fired, (std::vector<util::Micros>{100, 150}));
}

TEST(VirtualClock, PastScheduleClampsToNow) {
  VirtualClock clock;
  clock.run_until(1'000);
  util::Micros seen = -1;
  clock.schedule_at(10, [&] { seen = clock.now(); });
  EXPECT_EQ(clock.next_event_at(), 1'000);
  clock.run_until(1'000);
  EXPECT_EQ(seen, 1'000);
}

TEST(VirtualClock, CancelPreventsDelivery) {
  VirtualClock clock;
  int fired = 0;
  const auto id = clock.schedule_at(100, [&] { ++fired; });
  EXPECT_TRUE(clock.cancel(id));
  EXPECT_FALSE(clock.cancel(id));  // already gone
  clock.run_until(1'000);
  EXPECT_EQ(fired, 0);
}

TEST(VirtualClock, StepRunsExactlyOneEvent) {
  VirtualClock clock;
  int fired = 0;
  clock.schedule_at(10, [&] { ++fired; });
  clock.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(clock.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now(), 10);
  EXPECT_TRUE(clock.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(clock.step());  // queue empty
}

TEST(VirtualClock, CrossThreadSchedulingIsSafe) {
  // Producers on other threads may schedule while the driving thread runs
  // the queue; every scheduled event must fire exactly once.
  VirtualClock clock;
  std::atomic<int> fired{0};
  constexpr int kPerThread = 200;
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&clock, &fired, t] {
      for (int i = 0; i < kPerThread; ++i) {
        clock.schedule_at(t * 1'000 + i, [&fired] { ++fired; });
      }
    });
  }
  for (auto& p : producers) p.join();
  clock.run_until(10'000);
  EXPECT_EQ(fired.load(), 4 * kPerThread);
  EXPECT_EQ(clock.pending(), 0u);
}

TEST(PeriodicTask, FiresOnItsCadence) {
  VirtualClock clock;
  std::vector<util::Micros> fired;
  PeriodicTask task(clock, 1'000,
                    [&](util::Micros at) { fired.push_back(at); });
  clock.run_until(3'500);
  EXPECT_EQ(fired, (std::vector<util::Micros>{1'000, 2'000, 3'000}));
}

TEST(PeriodicTask, StopFromInsideCallbackAndFromOutside) {
  VirtualClock clock;
  int fired = 0;
  PeriodicTask task(clock, 100, [&](util::Micros) {
    if (++fired == 3) task.stop();
  });
  clock.run_until(10'000);
  EXPECT_EQ(fired, 3);

  int fired2 = 0;
  {
    PeriodicTask t2(clock, 100, [&](util::Micros) { ++fired2; });
    clock.run_for(250);
  }  // destructor stops it
  clock.run_for(1'000);
  EXPECT_EQ(fired2, 2);
}

// ---------------------------------------------------------------------------
// FleetSim (small scale; the 10k-station sweep lives in bench_sim_scale and
// the CI sim-determinism job)

FleetConfig small_config() {
  FleetConfig c;
  c.stations = 50;
  c.seed = 0x5eedf1eeULL;
  c.packet_rate_hz = 50;
  c.mobile_fraction = 0.5;
  c.stagger_s = 60;
  return c;
}

TEST(FleetSim, RunsAndDeliversTraffic) {
  VirtualClock clock;
  FleetSim fleet(clock, small_config());
  fleet.run_for(util::seconds_to_micros(60));
  EXPECT_EQ(fleet.ticks(), 60u);  // one control tick per virtual second
  EXPECT_GT(fleet.data_sent(), 0u);
  EXPECT_GT(fleet.data_delivered(), 0u);
  EXPECT_LE(fleet.data_delivered(), fleet.data_sent());
  EXPECT_GT(fleet.received_rate(), 0.9);
}

TEST(FleetSim, SameSeedSameStatsTwice) {
  const auto run = [] {
    VirtualClock clock;
    FleetSim fleet(clock, small_config());
    fleet.run_for(util::seconds_to_micros(120));
    return fleet.stats_text();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b) << "same seed must reproduce the STATS snapshot exactly";
  EXPECT_NE(a.find("fleet/summary/data_sent="), std::string::npos);
}

TEST(FleetSim, DifferentSeedsDiverge) {
  const auto run = [](std::uint64_t seed) {
    VirtualClock clock;
    FleetConfig c = small_config();
    c.seed = seed;
    FleetSim fleet(clock, c);
    fleet.run_for(util::seconds_to_micros(60));
    return fleet.stats_text();
  };
  EXPECT_NE(run(1), run(2));
}

TEST(FleetSim, ControllerLiftsRecoveryOnLossyStations) {
  // The paper's Figure-7 shape at test scale: push every station out to a
  // lossy distance and compare delivered fractions with the controller off
  // vs on. Off rides the raw channel; on must recover nearly everything.
  struct Outcome {
    std::uint64_t inserts;
    std::size_t active;
    std::size_t stations;
    double received;
    double overhead;
  };
  const auto run = [](bool controller) {
    VirtualClock clock;
    FleetConfig c;
    c.stations = 40;
    c.seed = 0xf19a7eULL;
    c.base_distance_m = 25;  // the paper's point: ~1.46% raw loss, bursty
    c.controller_enabled = controller;
    FleetSim fleet(clock, c);
    fleet.run_for(util::seconds_to_micros(300));
    return Outcome{fleet.inserts(), fleet.active_fec_stations(),
                   fleet.config().stations, fleet.received_rate(),
                   fleet.fec_overhead()};
  };
  const auto off = run(false);
  const auto on = run(true);
  EXPECT_EQ(off.inserts, 0u);
  EXPECT_GT(on.inserts, 0u);
  EXPECT_EQ(on.active, on.stations);
  // The paper's Figure-7 numbers: ~98.5% uncontrolled, ≥99.9% adaptive.
  EXPECT_LT(off.received, 0.99);
  EXPECT_GT(off.received, 0.97);
  EXPECT_GT(on.received, 0.999);
  EXPECT_GT(on.overhead, 1.0);
}

TEST(FleetSim, ControllerRemovesFecWhenChannelRecovers) {
  // Mobile stations walk near (clean) and far (lossy); over full cycles the
  // controller must both insert and remove FEC as each station's channel
  // swings, leaving a mixed fleet mid-cycle.
  VirtualClock clock;
  FleetConfig c;
  c.stations = 20;
  c.seed = 0x0ddba11ULL;
  c.mobile_fraction = 1.0;
  c.near_m = 5;
  c.far_m = 34;
  c.dwell_s = 60;
  c.walk_s = 20;
  c.stagger_s = 120;
  FleetSim fleet(clock, c);
  fleet.run_for(util::seconds_to_micros(600));
  EXPECT_GT(fleet.inserts(), 0u);
  EXPECT_GT(fleet.removes(), 0u);
  EXPECT_LT(fleet.active_fec_stations(), fleet.config().stations);
}

TEST(FleetSim, SnapshotAccountingIsConsistentMidGroup) {
  // Stopping at an instant that is mid-FEC-group for most stations must
  // still satisfy delivered ≤ sent and match the per-station sums.
  VirtualClock clock;
  FleetConfig c = small_config();
  c.stations = 10;
  FleetSim fleet(clock, c);
  fleet.run_for(util::seconds_to_micros(7) + 137);  // deliberately ragged
  const auto snap = fleet.stats_snapshot();
  std::uint64_t sent = 0, delivered = 0;
  for (const auto& e : snap) {
    if (e.name.find("/data_sent") != std::string::npos &&
        e.name.find("station") != std::string::npos) {
      sent += static_cast<std::uint64_t>(std::stoull(e.value));
    }
    if (e.name.find("/data_delivered") != std::string::npos &&
        e.name.find("station") != std::string::npos) {
      delivered += static_cast<std::uint64_t>(std::stoull(e.value));
    }
  }
  EXPECT_EQ(sent, fleet.data_sent());
  EXPECT_EQ(delivered, fleet.data_delivered());
  EXPECT_LE(delivered, sent);
}

// ---------------------------------------------------------------------------
// Flow classification (config.classify_flows)

TEST(FleetSim, ClassifiesStationsAcrossThreeRegimes) {
  // Mobile stations cycle 5 m <-> 45 m: ~0.1% loss at the near dwell
  // (clean), a walk through the 2-15% band (degraded), ~22% at the far
  // dwell (severe). Staggered departures keep the fleet spread across all
  // three regimes, which is what per-flow chain selection exists for.
  VirtualClock clock;
  FleetConfig c;
  c.stations = 60;
  c.seed = 0x0c1a55ULL;
  c.mobile_fraction = 0.5;
  c.far_m = 45.0;
  c.dwell_s = 20;
  c.walk_s = 20;
  c.stagger_s = 40;
  c.classify_flows = true;
  FleetSim fleet(clock, c);

  std::size_t clean = 0, degraded = 0, severe = 0;
  for (int chunk = 0; chunk < 24; ++chunk) {  // 120 virtual seconds
    fleet.run_for(util::seconds_to_micros(5));
    clean = std::max(clean,
                     fleet.stations_in_regime(core::LossRegime::kClean));
    degraded = std::max(
        degraded, fleet.stations_in_regime(core::LossRegime::kDegraded));
    severe = std::max(severe,
                      fleet.stations_in_regime(core::LossRegime::kSevere));
  }
  EXPECT_GT(clean, 0u);
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(severe, 0u);
  // Every station classified at least once; regime changes re-key flows.
  EXPECT_GE(fleet.reclassifications(), c.stations);

  // Flyweight at fleet scale: 60 flows, at most 3 rule specs (the default
  // table covers every regime, so the fallback is never resolved).
  std::set<const core::ChainSpec*> specs;
  for (std::size_t i = 0; i < c.stations; ++i) {
    ASSERT_NE(fleet.station_spec(i), nullptr) << "station " << i;
    specs.insert(fleet.station_spec(i).get());
  }
  EXPECT_LE(specs.size(), 3u);

  // Classifier stats are present and the snapshot stays name-sorted (the
  // pre-sorted-emission contract the new entries must not break).
  const auto snapshot = fleet.stats_snapshot();
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
  const std::string text = fleet.stats_text();
  EXPECT_NE(text.find("fleet/classifier/specs="), std::string::npos);
  EXPECT_NE(text.find("fleet/classifier/rule/severe-fec/hits="),
            std::string::npos);
  // Per-station regime lines exist (which regime each station occupies at
  // the final instant is walk-phase dependent; coverage of all three is
  // asserted over time above).
  EXPECT_NE(text.find("/regime="), std::string::npos);
}

TEST(FleetSim, DefaultConfigEmitsNoClassifierEntries) {
  // The opt-out half of the contract: a default-config fleet renders
  // byte-identically to a pre-classifier fleet, which is what keeps the
  // pinned determinism hash below valid.
  VirtualClock clock;
  FleetSim fleet(clock, small_config());
  fleet.run_for(util::seconds_to_micros(10));
  const std::string text = fleet.stats_text();
  EXPECT_EQ(text.find("classifier"), std::string::npos);
  EXPECT_EQ(text.find("regime"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Pinned determinism contract

// FNV-1a, the repo-wide convention for pinning byte streams in tests.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(SimDeterminism, PinnedSeedStatsHash) {
  // Two in-process runs must agree with each other AND with the pinned
  // constant. If an intentional simulation change shifts the hash, re-pin:
  //   ./build/tests/sim_test --gtest_filter=SimDeterminism.*
  // prints the new value below; update kPinned with it. An UNINTENTIONAL
  // shift means the simulation is no longer a pure function of its seed —
  // that is the bug this test exists to catch.
  const auto run = [] {
    VirtualClock clock;
    FleetConfig c;
    c.stations = 200;
    c.seed = 0x00c0ffeeULL;
    c.mobile_fraction = 0.25;
    c.stagger_s = 300;
    FleetSim fleet(clock, c);
    fleet.run_for(util::seconds_to_micros(180));
    return fleet.stats_text();
  };
  const std::string a = run();
  const std::string b = run();
  ASSERT_EQ(a, b) << "two same-seed runs diverged in one process";

  constexpr std::uint64_t kPinned = 0x3e3cef292306b476ULL;
  EXPECT_EQ(fnv1a(a), kPinned)
      << "stats hash moved: 0x" << std::hex << fnv1a(a)
      << " — if the simulation changed intentionally, re-pin kPinned; "
         "otherwise determinism broke";
}

TEST(SimDeterminism, PinnedSeedClassifierStatsHash) {
  // Same contract with flow classification ON: regime derivation, rule
  // resolution, and the classifier stats entries must all be pure functions
  // of the seed (the classifier runs unbound, so resolve() never touches a
  // wall clock). Re-pin exactly as above if the change is intentional.
  const auto run = [] {
    VirtualClock clock;
    FleetConfig c;
    c.stations = 200;
    c.seed = 0x00c0ffeeULL;
    c.mobile_fraction = 0.25;
    c.far_m = 45.0;
    c.stagger_s = 300;
    c.classify_flows = true;
    FleetSim fleet(clock, c);
    fleet.run_for(util::seconds_to_micros(180));
    return fleet.stats_text();
  };
  const std::string a = run();
  const std::string b = run();
  ASSERT_EQ(a, b) << "two same-seed classifier runs diverged in one process";

  constexpr std::uint64_t kPinned = 0x4df038e3f4c68e09ULL;
  EXPECT_EQ(fnv1a(a), kPinned)
      << "classifier stats hash moved: 0x" << std::hex << fnv1a(a)
      << " — if the simulation changed intentionally, re-pin kPinned; "
         "otherwise determinism broke";
}

}  // namespace
}  // namespace rapidware
