// Event-driven data plane: core::EventLoop / core::WorkerPool mechanics,
// and the byte-exactness contract for chains hosted on workers instead of
// thread-per-filter (docs/data_plane.md, "Worker model").
//
// The hosted-chain tests all assert the same invariant the stress harness
// asserts for thread mode: no packet is lost, duplicated, reordered, or
// corrupted — under multiplexed on_ready() dispatch, under backpressure
// parking, across live insert/remove reconfiguration, and through both the
// async (begin_shutdown/finished) and draining shutdown paths.
#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/endpoint.h"
#include "core/event_loop.h"
#include "core/filter.h"
#include "core/filter_chain.h"
#include "core/worker_pool.h"
#include "obs/metrics.h"
#include "testing/sequence_stream.h"
#include "util/bytes.h"

namespace rapidware {
namespace {

using namespace std::chrono_literals;

/// Polls `pred` until true or `timeout`; returns the final verdict. The
/// hosted data plane is asynchronous by design, so tests wait on observable
/// state instead of sleeping fixed amounts.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Forwards every packet unchanged; the minimal event-capable PacketFilter.
class PassThroughPacketFilter final : public core::PacketFilter {
 public:
  using PacketFilter::PacketFilter;

 protected:
  void on_packet(util::Bytes packet) override { emit(std::move(packet)); }
};

// ---------------------------------------------------------------------------
// EventLoop basics

TEST(EventLoop, RunsPostedTasksInOrderAndSyncBarriers) {
  core::EventLoop loop;
  std::thread runner([&] { loop.run(); });

  std::vector<int> order;  // loop-thread-only; read after sync()
  for (int i = 0; i < 16; ++i) {
    loop.post([&order, &loop, i] {
      EXPECT_TRUE(loop.on_loop_thread());
      order.push_back(i);
    });
  }
  loop.sync();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
  EXPECT_GE(loop.tasks_run(), 16u);
  EXPECT_FALSE(loop.on_loop_thread());

  loop.stop();
  runner.join();
}

TEST(EventLoop, StopDrainsQueueBeforeReturning) {
  core::EventLoop loop;
  std::atomic<int> ran{0};
  // Post before the loop even starts, and again after stop(): run() must
  // execute all of them — stop means "return once drained", not "discard".
  for (int i = 0; i < 8; ++i) loop.post([&] { ran.fetch_add(1); });
  loop.stop();
  for (int i = 0; i < 8; ++i) loop.post([&] { ran.fetch_add(1); });
  std::thread runner([&] { loop.run(); });
  runner.join();
  EXPECT_EQ(ran.load(), 16);
}

TEST(EventLoop, WakeMakesCrossThreadTimerVisibleToAParkedLoop) {
  core::EventLoop loop;
  std::thread runner([&] { loop.run(); });
  // Let the loop park with an empty horizon first.
  loop.sync();

  std::atomic<bool> fired{false};
  // The loop's clock is slaved to wall time; a parked loop's wait is
  // bounded by the horizon it read BEFORE this schedule, so without the
  // wake() the timer would sit invisible until some unrelated post.
  loop.clock().schedule_after(5'000 /* 5 ms virtual */,
                              [&] { fired.store(true); });
  loop.wake();
  EXPECT_TRUE(eventually([&] { return fired.load(); }));

  loop.stop();
  runner.join();
}

// ---------------------------------------------------------------------------
// WorkerPool basics

TEST(WorkerPool, LeastLoadedPlacementAndIdempotentStop) {
  core::WorkerPool pool(2);
  ASSERT_EQ(pool.size(), 2u);

  // Pin worker 0 busy: a task that blocks until released, plus queued
  // backlog behind it, drives its load gauge well above worker 1's.
  std::atomic<bool> release{false};
  pool.worker(0).post([&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 8; ++i) pool.worker(0).post([] {});
  ASSERT_TRUE(eventually([&] { return pool.worker(0).queue_depth() >= 1; }));

  // Placement must route around the loaded worker.
  EXPECT_EQ(&pool.next(), &pool.worker(1));
  EXPECT_EQ(pool.try_next(), &pool.worker(1));

  release.store(true, std::memory_order_release);
  std::atomic<int> ran{0};
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool.worker(i).post([&] { ran.fetch_add(1); });
  }
  for (std::size_t i = 0; i < pool.size(); ++i) pool.worker(i).sync();
  EXPECT_EQ(ran.load(), 2);

  pool.stop();
  pool.stop();  // idempotent
}

TEST(WorkerPool, RegressionPlacementAfterStopIsRejectedNotRacy) {
  // Regression: next() used to fetch_add a shared round-robin cursor and
  // hand out a loop reference even after stop(), so a caller could post to
  // a dead worker. Post-stop placement must now fail loudly (next) or
  // observably (try_next) instead of dangling.
  core::WorkerPool pool(2);
  EXPECT_NE(pool.try_next(), nullptr);
  pool.stop();
  EXPECT_EQ(pool.try_next(), nullptr);
  EXPECT_THROW(pool.next(), std::logic_error);
}

TEST(WorkerPool, SizeZeroPicksAtLeastOneWorker) {
  core::WorkerPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  pool.stop();
}

// ---------------------------------------------------------------------------
// Hosted chains: byte-exactness under multiplexed dispatch

struct HostedChain {
  std::shared_ptr<core::QueuePacketSource> source =
      std::make_shared<core::QueuePacketSource>();
  std::shared_ptr<core::CollectingPacketSink> sink =
      std::make_shared<core::CollectingPacketSink>();
  std::shared_ptr<core::PacketReaderEndpoint> head;
  std::shared_ptr<core::PacketWriterEndpoint> tail;
  std::unique_ptr<core::FilterChain> chain;

  explicit HostedChain(core::EventLoop& loop) {
    head = std::make_shared<core::PacketReaderEndpoint>("rx", source);
    tail = std::make_shared<core::PacketWriterEndpoint>("tx", sink);
    chain = std::make_unique<core::FilterChain>(head, tail);
    chain->host_on(loop);
    chain->start();
  }
};

TEST(HostedChain, FullyEventChainDeliversByteExact) {
  constexpr std::uint32_t kPackets = 2000;
  constexpr std::uint64_t kSeed = 0x9e37be11ULL;
  core::WorkerPool pool(2);
  {
    obs::Registry metrics;
    HostedChain h(pool.next());
    h.chain->bind_metrics(metrics, "test/hosted");
    h.chain->insert(std::make_shared<PassThroughPacketFilter>("pass"), 0);

    // Every member is event-capable: the whole chain runs as on_ready()
    // drives with zero dedicated threads.
    EXPECT_TRUE(h.head->event_hosted());
    EXPECT_TRUE(h.tail->event_hosted());
    EXPECT_TRUE(h.chain->at(0)->event_hosted());

    for (std::uint32_t i = 0; i < kPackets; ++i) {
      h.source->push(testing::make_stamped_packet(kSeed, i, 256));
    }
    h.source->finish();
    ASSERT_TRUE(h.sink->wait_for(kPackets));

    testing::PacketLedger ledger(kSeed, kPackets);
    for (const auto& p : h.sink->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets);
    EXPECT_EQ(ledger.lost(), 0u);
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.reordered(), 0u);
    EXPECT_EQ(ledger.corrupt(), 0u);

    h.chain->drain_shutdown();
  }
  pool.stop();
}

TEST(HostedChain, BackpressureParkingPreservesOrder) {
  // Tiny rings between the stages force the reader and the pass-through
  // stages into the park-on-full / resume-on-writable path constantly; the
  // ledger proves parking never drops or reorders a frame. The queue is
  // pre-loaded before start so the first drive already faces a full ring.
  constexpr std::uint32_t kPackets = 5000;
  constexpr std::uint64_t kSeed = 0xba0cfeedULL;
  core::WorkerPool pool(1);
  {
    HostedChain h(pool.worker(0));
    h.chain->insert(
        std::make_shared<PassThroughPacketFilter>("narrow0", 256), 0);
    h.chain->insert(
        std::make_shared<PassThroughPacketFilter>("narrow1", 256), 1);

    for (std::uint32_t i = 0; i < kPackets; ++i) {
      h.source->push(testing::make_stamped_packet(kSeed, i, 64));
    }
    h.source->finish();
    ASSERT_TRUE(h.sink->wait_for(kPackets, /*timeout_ms=*/30'000));

    testing::PacketLedger ledger(kSeed, kPackets);
    for (const auto& p : h.sink->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets);
    EXPECT_EQ(ledger.lost(), 0u);
    EXPECT_EQ(ledger.reordered(), 0u);

    h.chain->drain_shutdown();
  }
  pool.stop();
}

TEST(HostedChain, LiveInsertRemoveIsByteExact) {
  // The chain-reconfiguration protocol (pause / flush / splice) against a
  // pool-hosted chain: control ops run from this thread while packets flow
  // through the worker.
  constexpr std::uint32_t kPackets = 4000;
  constexpr std::uint64_t kSeed = 0x5eedc0deULL;
  core::WorkerPool pool(2);
  {
    HostedChain h(pool.next());

    std::thread producer([&] {
      for (std::uint32_t i = 0; i < kPackets; ++i) {
        h.source->push(testing::make_stamped_packet(kSeed, i, 200));
        if (i % 257 == 0) std::this_thread::yield();
      }
      h.source->finish();
    });

    for (int round = 0; round < 24; ++round) {
      h.chain->insert(std::make_shared<PassThroughPacketFilter>(
                          "p" + std::to_string(round)),
                      h.chain->size() == 0 ? 0 : round % h.chain->size());
      if (h.chain->size() > 2) h.chain->remove(0);
      std::this_thread::yield();
    }

    producer.join();
    ASSERT_TRUE(h.sink->wait_for(kPackets, /*timeout_ms=*/30'000));

    testing::PacketLedger ledger(kSeed, kPackets);
    for (const auto& p : h.sink->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets);
    EXPECT_EQ(ledger.lost(), 0u);
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.reordered(), 0u);
    EXPECT_EQ(ledger.corrupt(), 0u);

    h.chain->drain_shutdown();
  }
  pool.stop();
}

/// Wraps a ByteSource but hides its pollable() capability: the classic
/// blocking stream (a socket wrapper without readiness callbacks, say),
/// which forces the start_on() shim path now that SequenceGenerator itself
/// is pollable.
class BlockingOnlyByteSource final : public util::ByteSource {
 public:
  explicit BlockingOnlyByteSource(std::shared_ptr<util::ByteSource> inner)
      : inner_(std::move(inner)) {}
  std::size_t read_some(util::MutableByteSpan out) override {
    return inner_->read_some(out);
  }

 private:
  std::shared_ptr<util::ByteSource> inner_;
};

/// The sink-side twin: write()-only, pollable() stays false.
class BlockingOnlyByteSink final : public util::ByteSink {
 public:
  explicit BlockingOnlyByteSink(std::shared_ptr<util::ByteSink> inner)
      : inner_(std::move(inner)) {}
  void write(util::ByteSpan in) override { inner_->write(in); }
  void flush() override { inner_->flush(); }

 private:
  std::shared_ptr<util::ByteSink> inner_;
};

TEST(HostedChain, BlockingShimHostsEventIncapableEndpointsOnThreads) {
  // Mixed mode: byte endpoints over blocking-only streams are not
  // event-capable, so start_on() falls back to the thread-per-filter shim
  // for them, while the NullFilter in the middle runs event-hosted on the
  // worker. The sequence oracle proves the two dispatch styles interoperate
  // byte-exactly on one chain.
  constexpr std::uint64_t kSeed = 0x0ddba11ULL;
  constexpr std::uint64_t kBytes = 256 * 1024;
  core::WorkerPool pool(1);
  {
    auto generator = std::make_shared<testing::SequenceGenerator>(kSeed, kBytes);
    auto checker = std::make_shared<testing::SequenceChecker>(kSeed);
    auto head = std::make_shared<core::ByteReaderEndpoint>(
        "head", std::make_shared<BlockingOnlyByteSource>(generator),
        /*chunk=*/512,
        /*capacity=*/2048);
    auto tail = std::make_shared<core::ByteWriterEndpoint>(
        "tail", std::make_shared<BlockingOnlyByteSink>(checker), 2048);
    core::FilterChain chain(head, tail);
    chain.host_on(pool.worker(0));
    chain.start();
    chain.insert(std::make_shared<core::NullFilter>("mid"), 0);

    EXPECT_FALSE(head->event_hosted());  // shimmed: blocking run() thread
    EXPECT_FALSE(tail->event_hosted());
    EXPECT_TRUE(chain.at(0)->event_hosted());

    chain.drain_shutdown();
    EXPECT_TRUE(checker->clean()) << checker->report();
    EXPECT_EQ(checker->received(), kBytes);
  }
  pool.stop();
}

TEST(HostedChain, AsyncBeginShutdownReachesFinishedWithoutBlocking) {
  // The eviction path: begin_shutdown() never waits, finished() flips once
  // every member's final drive has run on the worker — the protocol the
  // FlowTable idle sweep relies on to tear chains down from the worker
  // itself without blocking it.
  constexpr std::uint32_t kPackets = 500;
  constexpr std::uint64_t kSeed = 0xf10a7ULL;
  core::WorkerPool pool(1);
  {
    HostedChain h(pool.worker(0));
    h.chain->insert(std::make_shared<PassThroughPacketFilter>("pass"), 0);

    for (std::uint32_t i = 0; i < kPackets; ++i) {
      h.source->push(testing::make_stamped_packet(kSeed, i, 128));
    }
    h.source->finish();
    ASSERT_TRUE(h.sink->wait_for(kPackets));

    h.chain->begin_shutdown();
    EXPECT_TRUE(eventually([&] { return h.chain->finished(); }));
    EXPECT_FALSE(h.head->running());
    EXPECT_FALSE(h.tail->running());
    EXPECT_EQ(h.sink->count(), kPackets);  // nothing lost by the async path
  }
  pool.stop();
}

TEST(HostedChain, RegressionDestroyImmediatelyAfterBeginShutdown) {
  // Regression: destroying a chain right after begin_shutdown() — without
  // polling finished() — must join the still-retiring final drives before
  // any member's streams are freed. (The many-chains bench tears down
  // exactly this way and used to segfault intermittently: the destructor's
  // shutdown() saw shut_down_ already set, skipped the joins, and an
  // upstream drive wrote into a freed ring.)
  constexpr std::uint64_t kSeed = 0x5eedf00dULL;
  core::WorkerPool pool(2);
  for (int round = 0; round < 50; ++round) {
    HostedChain h(pool.next());
    h.chain->insert(std::make_shared<PassThroughPacketFilter>("pass"), 0);
    for (std::uint32_t i = 0; i < 64; ++i) {
      h.source->push(testing::make_stamped_packet(kSeed, i, 128));
    }
    h.source->finish();
    ASSERT_TRUE(h.sink->wait_for(64));
    // No finished() poll: the EOF drives are still retiring when the
    // destructor runs.
    h.chain->begin_shutdown();
    h.chain.reset();
    EXPECT_EQ(h.sink->count(), 64u);  // the joined teardown lost nothing
  }
  pool.stop();
}

TEST(HostedChain, RegressionWorkerShutdownMidReconfigure) {
  // Regression: shutting a hosted chain down while a control thread is
  // mid-reconfigure must not wedge either side — the control op either
  // completes or observes "chain shut down", and the pool stops cleanly
  // afterwards. (An early worker-model draft deadlocked here: the splice
  // drain waited on a filter whose final drive the shutdown had already
  // retired.)
  constexpr std::uint32_t kPackets = 3000;
  constexpr std::uint64_t kSeed = 0xdeadd00dULL;
  core::WorkerPool pool(1);
  {
    HostedChain h(pool.worker(0));

    std::thread producer([&] {
      for (std::uint32_t i = 0; i < kPackets; ++i) {
        h.source->push(testing::make_stamped_packet(kSeed, i, 96));
      }
      h.source->finish();
    });

    std::atomic<bool> control_done{false};
    std::thread control([&] {
      try {
        for (int i = 0; i < 10'000; ++i) {
          h.chain->insert(
              std::make_shared<PassThroughPacketFilter>("c" + std::to_string(i)),
              0);
          h.chain->remove(0);
        }
      } catch (const std::exception&) {
        // begin_shutdown() won the race; StreamError is the expected exit.
      }
      control_done.store(true, std::memory_order_release);
    });

    ASSERT_TRUE(h.sink->wait_for(1, /*timeout_ms=*/10'000));
    h.chain->begin_shutdown();
    ASSERT_TRUE(eventually([&] {
      return control_done.load(std::memory_order_acquire);
    }, 30s));
    control.join();
    producer.join();
    EXPECT_TRUE(eventually([&] { return h.chain->finished(); }, 30s));
  }
  pool.stop();
}

}  // namespace
}  // namespace rapidware
