// Tests for the FEC suite: GF(2^8) field axioms, matrix algebra,
// Reed-Solomon any-k-of-n recovery (property-tested across the (n, k)
// design space), XOR parity baseline, group encoder/decoder state machines,
// interleaving, and UEP policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "fec/fec_group.h"
#include "fec/gf256.h"
#include "fec/gf256_kernels.h"
#include "fec/interleaver.h"
#include "fec/matrix.h"
#include "fec/rs_code.h"
#include "fec/uep.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace rapidware::fec {
namespace {

using util::Bytes;
using util::Rng;

Bytes random_payload(Rng& rng, std::size_t len) {
  Bytes b(len);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

// ---------------------------------------------------------------------------
// GF(2^8)

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(gf::add(7, 7), 0);  // every element is its own inverse
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::mul(x, 1), x);
    EXPECT_EQ(gf::mul(1, x), x);
    EXPECT_EQ(gf::mul(x, 0), 0);
    EXPECT_EQ(gf::mul(0, x), 0);
  }
}

TEST(Gf256, MultiplicationCommutes) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(gf::mul(a, b), gf::mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(gf::mul(gf::mul(a, b), c), gf::mul(a, gf::mul(b, c)));
  }
}

TEST(Gf256, MultiplicationDistributesOverAddition) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    const auto b = static_cast<std::uint8_t>(rng.next_u64());
    const auto c = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(gf::mul(a, gf::add(b, c)),
              gf::add(gf::mul(a, b), gf::mul(a, c)));
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf::mul(x, gf::inverse(x)), 1) << "element " << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_u64());
    auto b = static_cast<std::uint8_t>(rng.next_u64());
    if (b == 0) b = 1;
    EXPECT_EQ(gf::div(gf::mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int a = 1; a < 256; a += 17) {
    std::uint8_t acc = 1;
    for (unsigned p = 0; p < 10; ++p) {
      EXPECT_EQ(gf::pow(static_cast<std::uint8_t>(a), p), acc);
      acc = gf::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, PowZeroBase) {
  EXPECT_EQ(gf::pow(0, 0), 1);  // convention: x^0 == 1
  EXPECT_EQ(gf::pow(0, 5), 0);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group for 0x11d: the powers of 2 must
  // cycle through all 255 nonzero elements.
  std::vector<bool> seen(256, false);
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "cycle shorter than 255 at " << i;
    seen[x] = true;
    x = gf::mul(x, 2);
  }
  EXPECT_EQ(x, 1);
}

TEST(Gf256, MulAddMatchesScalarLoop) {
  Rng rng(5);
  const Bytes src = random_payload(rng, 333);
  for (const std::uint8_t c : {0, 1, 2, 37, 255}) {
    Bytes dst = random_payload(rng, src.size());
    Bytes expected = dst;
    for (std::size_t i = 0; i < src.size(); ++i) {
      expected[i] = gf::add(expected[i], gf::mul(c, src[i]));
    }
    gf::mul_add(dst, src, c);
    EXPECT_EQ(dst, expected) << "c=" << int(c);
  }
}

TEST(Gf256, MulAssignMatchesScalarLoop) {
  Rng rng(6);
  const Bytes src = random_payload(rng, 257);
  for (const std::uint8_t c : {0, 1, 3, 128, 254}) {
    Bytes dst(src.size(), 0xAA);
    gf::mul_assign(dst, src, c);
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(dst[i], gf::mul(c, src[i]));
    }
  }
}

// ---------------------------------------------------------------------------
// GF(2^8) kernel layer (gf256_kernels.h)

TEST(GfKernels, BackendNamesRoundTrip) {
  for (const auto b :
       {gf::Backend::kReference, gf::Backend::kPortable64,
        gf::Backend::kSsse3, gf::Backend::kAvx2, gf::Backend::kNeon}) {
    EXPECT_EQ(gf::parse_backend(gf::to_string(b)), b);
  }
  EXPECT_EQ(gf::parse_backend("no-such-backend"), std::nullopt);
  EXPECT_EQ(gf::parse_backend(""), std::nullopt);
}

TEST(GfKernels, PortableBackendsAlwaysSupported) {
  const auto supported = gf::supported_backends();
  EXPECT_NE(std::find(supported.begin(), supported.end(),
                      gf::Backend::kReference),
            supported.end());
  EXPECT_NE(std::find(supported.begin(), supported.end(),
                      gf::Backend::kPortable64),
            supported.end());
  for (const auto b : supported) {
    ASSERT_NE(gf::kernels_for(b), nullptr) << gf::to_string(b);
    EXPECT_EQ(gf::kernels_for(b)->backend, b);
  }
}

// The tentpole contract: every compiled-in backend is byte-identical to the
// scalar reference across ALL 256 coefficients, every length 0..64, and
// several misaligned span offsets (SIMD kernels use unaligned loads; the
// offsets walk the buffers off 16/32-byte boundaries). Lengths up to 64
// exercise the 32-byte AVX2 main loop, the 16-byte SSE/NEON loop, the
// 8-byte SWAR loop, and every tail size.
TEST(GfKernels, AllBackendsMatchReferenceExhaustively) {
  const gf::Kernels& ref = *gf::kernels_for(gf::Backend::kReference);
  constexpr std::size_t kMaxLen = 64;
  constexpr std::size_t kOffsets[] = {0, 1, 3, 13};
  constexpr std::size_t kSlack = 16;

  Rng rng(99);
  const Bytes src_buf = [&] {
    Bytes b = random_payload(rng, kMaxLen + kSlack);
    b[0] = 0;   // make sure zero bytes are covered
    b[17] = 0;
    return b;
  }();
  const Bytes dst_buf = random_payload(rng, kMaxLen + kSlack);

  for (const auto backend : gf::supported_backends()) {
    if (backend == gf::Backend::kReference) continue;
    const gf::Kernels& k = *gf::kernels_for(backend);
    SCOPED_TRACE(k.name);
    for (int c = 0; c < 256; ++c) {
      for (std::size_t len = 0; len <= kMaxLen; ++len) {
        for (const std::size_t off : kOffsets) {
          const util::ByteSpan src{src_buf.data() + off, len};

          Bytes expect(dst_buf.begin(), dst_buf.end());
          Bytes got = expect;
          ref.mul_add({expect.data() + off, len}, src,
                      static_cast<std::uint8_t>(c));
          k.mul_add({got.data() + off, len}, src,
                    static_cast<std::uint8_t>(c));
          ASSERT_EQ(got, expect) << "mul_add c=" << c << " len=" << len
                                 << " off=" << off;

          ref.mul_assign({expect.data() + off, len}, src,
                         static_cast<std::uint8_t>(c));
          k.mul_assign({got.data() + off, len}, src,
                       static_cast<std::uint8_t>(c));
          ASSERT_EQ(got, expect) << "mul_assign c=" << c << " len=" << len
                                 << " off=" << off;
        }
      }
    }
    // xor_add has no coefficient dimension; sweep lengths and offsets.
    for (std::size_t len = 0; len <= kMaxLen; ++len) {
      for (const std::size_t off : kOffsets) {
        Bytes expect(dst_buf.begin(), dst_buf.end());
        Bytes got = expect;
        const util::ByteSpan src{src_buf.data() + off, len};
        ref.xor_add({expect.data() + off, len}, src);
        k.xor_add({got.data() + off, len}, src);
        ASSERT_EQ(got, expect) << "xor_add len=" << len << " off=" << off;
      }
    }
  }
}

// Larger spans: the exhaustive sweep stops at 64 bytes, so cross-check
// wire-MTU and multi-KiB sizes (plus a prime length) on random data.
TEST(GfKernels, AllBackendsMatchReferenceOnLargeSpans) {
  const gf::Kernels& ref = *gf::kernels_for(gf::Backend::kReference);
  Rng rng(100);
  for (const std::size_t len : {333u, 1500u, 4099u}) {
    const Bytes src = random_payload(rng, len);
    const Bytes dst = random_payload(rng, len);
    for (const auto backend : gf::supported_backends()) {
      if (backend == gf::Backend::kReference) continue;
      const gf::Kernels& k = *gf::kernels_for(backend);
      for (const std::uint8_t c : {0, 1, 2, 0x1d, 0x80, 255}) {
        Bytes expect = dst;
        Bytes got = dst;
        ref.mul_add(expect, src, c);
        k.mul_add(got, src, c);
        ASSERT_EQ(got, expect)
            << k.name << " mul_add c=" << int(c) << " len=" << len;
      }
    }
  }
}

TEST(GfKernels, SetActiveBackendForcesSelection) {
  const gf::Backend original = gf::active_kernels().backend;
  Rng rng(101);
  const Bytes src = random_payload(rng, 777);
  for (const auto b : gf::supported_backends()) {
    ASSERT_TRUE(gf::set_active_backend(b)) << gf::to_string(b);
    EXPECT_EQ(gf::active_kernels().backend, b);
    // The public API must now route through this backend and still agree
    // with the reference scalar.
    Bytes got = random_payload(rng, src.size());
    Bytes expect = got;
    gf::mul_add(got, src, 0x53);
    gf::kernels_for(gf::Backend::kReference)->mul_add(expect, src, 0x53);
    EXPECT_EQ(got, expect) << gf::to_string(b);
  }
  EXPECT_TRUE(gf::set_active_backend(original));
}

TEST(GfKernels, UnsupportedBackendIsRejected) {
#if !defined(__aarch64__)
  const gf::Backend original = gf::active_kernels().backend;
  EXPECT_EQ(gf::kernels_for(gf::Backend::kNeon), nullptr);
  EXPECT_FALSE(gf::set_active_backend(gf::Backend::kNeon));
  EXPECT_EQ(gf::active_kernels().backend, original);  // selection unchanged
#else
  GTEST_SKIP() << "NEON is baseline on AArch64";
#endif
}

TEST(GfKernels, SelectedBackendPublishedAsObsGauge) {
  gf::active_kernels();  // force one-time init (registers the gauge)
  const auto snapshot = obs::registry().snapshot("fec/gf256");
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "fec/gf256/backend");
  EXPECT_EQ(snapshot[0].value,
            std::to_string(static_cast<int>(gf::active_kernels().backend)));
}

// Pinned-seed encode/decode round-trip through the ACTIVE backend — what
// the forced-backend ctest registrations (fec_backend_<name>, environment
// RW_GF_BACKEND=<name>) execute so CI exercises every backend it can run.
TEST(GfKernelsForced, PinnedSeedRoundTripUnderActiveBackend) {
  if (const char* env = std::getenv("RW_GF_BACKEND")) {
    const auto requested = gf::parse_backend(env);
    if (!requested.has_value()) {
      GTEST_SKIP() << "unknown RW_GF_BACKEND=" << env
                   << " (dispatcher auto-selects; nothing to pin)";
    }
    if (gf::kernels_for(*requested) == nullptr) {
      GTEST_SKIP() << "backend " << env << " not runnable on this host";
    }
    // Dispatch honored the env var end to end.
    ASSERT_EQ(gf::active_kernels().backend, *requested);
  }

  ReedSolomonCode code(12, 8);
  Rng rng(20260806);  // pinned: failures reproduce bit-for-bit
  std::vector<Bytes> source;
  for (int i = 0; i < 8; ++i) source.push_back(random_payload(rng, 1024));

  // Parity via the active backend must equal parity computed with the
  // reference backend (not just round-trip, which could mask a backend
  // that is self-consistently wrong).
  const auto parity = code.encode(source);
  const gf::Backend active = gf::active_kernels().backend;
  ASSERT_TRUE(gf::set_active_backend(gf::Backend::kReference));
  const auto parity_ref = code.encode(source);
  ASSERT_TRUE(gf::set_active_backend(active));
  ASSERT_EQ(parity, parity_ref);

  // Drop 4 symbols (the parity budget) and recover.
  std::vector<std::optional<Bytes>> received(12);
  for (int i = 4; i < 8; ++i) received[i] = source[i];
  for (std::size_t p = 0; p < parity.size(); ++p) received[8 + p] = parity[p];
  const auto decoded = code.decode(received);
  ASSERT_EQ(decoded.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(decoded[i], source[i]) << i;
}

// ---------------------------------------------------------------------------
// Matrix

TEST(GfMatrix, IdentityMultiplication) {
  const Matrix id = Matrix::identity(5);
  Matrix m(5, 5);
  Rng rng(7);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      m.at(i, j) = static_cast<std::uint8_t>(rng.next_u64());
    }
  }
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);
}

TEST(GfMatrix, InverseTimesSelfIsIdentity) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.next_below(8);
    Matrix m(n, n);
    // Random matrices over GF(2^8) are invertible with high probability;
    // retry when singular.
    for (;;) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          m.at(i, j) = static_cast<std::uint8_t>(rng.next_u64());
        }
      }
      try {
        const Matrix inv = m.inverted();
        EXPECT_EQ(m.multiply(inv), Matrix::identity(n));
        EXPECT_EQ(inv.multiply(m), Matrix::identity(n));
        break;
      } catch (const SingularMatrix&) {
      }
    }
  }
}

TEST(GfMatrix, SingularMatrixThrows) {
  Matrix m(2, 2);  // all zeros
  EXPECT_THROW(m.inverted(), SingularMatrix);
}

TEST(GfMatrix, DuplicateRowsAreSingular) {
  Matrix m(2, 2);
  m.at(0, 0) = 3;
  m.at(0, 1) = 7;
  m.at(1, 0) = 3;
  m.at(1, 1) = 7;
  EXPECT_THROW(m.inverted(), SingularMatrix);
}

TEST(GfMatrix, VandermondeAnyKRowsInvertible) {
  const std::size_t n = 12, k = 5;
  const Matrix v = Matrix::vandermonde(n, k);
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> rows(n);
    std::iota(rows.begin(), rows.end(), 0u);
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(k);
    EXPECT_NO_THROW(v.select_rows(rows).inverted());
  }
}

TEST(GfMatrix, SelectRowsOutOfRangeThrows) {
  const Matrix v = Matrix::vandermonde(4, 2);
  EXPECT_THROW(v.select_rows({0, 9}), std::out_of_range);
}

TEST(GfMatrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Reed-Solomon: construction

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomonCode(4, 0), CodingError);
  EXPECT_THROW(ReedSolomonCode(4, 5), CodingError);
  EXPECT_THROW(ReedSolomonCode(256, 4), CodingError);
  EXPECT_NO_THROW(ReedSolomonCode(255, 255));
}

TEST(ReedSolomon, EmptySymbolVectorThrowsInsteadOfUb) {
  // Regression: checked_symbol_length used to dereference .front() on an
  // empty vector — UB. The contract is now a CodingError.
  EXPECT_THROW(detail::checked_symbol_length({}), CodingError);
  EXPECT_EQ(detail::checked_symbol_length({Bytes(7, 0)}), 7u);
}

TEST(ReedSolomon, RvalueDecodeMovesAllDataFastPath) {
  ReedSolomonCode code(6, 4);
  Rng rng(30);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 64));

  std::vector<std::optional<Bytes>> received(6);
  for (int i = 0; i < 4; ++i) received[i] = source[i];
  const std::uint8_t* payload_before = received[0]->data();

  const auto decoded = code.decode(std::move(received));
  ASSERT_EQ(decoded.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(decoded[i], source[i]);
  // The fast path must have MOVED the buffer, not copied it.
  EXPECT_EQ(decoded[0].data(), payload_before);
}

TEST(ReedSolomon, RvalueDecodeRecoveryPathStillWorks) {
  ReedSolomonCode code(6, 4);
  Rng rng(31);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 64));
  const auto parity = code.encode(source);

  std::vector<std::optional<Bytes>> received(6);
  received[0] = source[0];
  received[2] = source[2];
  received[4] = parity[0];
  received[5] = parity[1];
  EXPECT_EQ(code.decode(std::move(received)), source);
}

TEST(XorParity, MismatchedReceivedLengthsThrow) {
  XorParityCode code(3);
  Rng rng(32);
  std::vector<Bytes> source;
  for (int i = 0; i < 3; ++i) source.push_back(random_payload(rng, 20));
  const Bytes parity = code.encode(source);

  std::vector<std::optional<Bytes>> received(4);
  received[0] = source[0];
  received[1] = source[1];
  received[1]->resize(5);  // corrupt: shorter than the group's length
  received[3] = parity;
  EXPECT_THROW(code.decode(received), CodingError);
}

TEST(ReedSolomon, EncodeRejectsWrongSymbolCount) {
  ReedSolomonCode code(6, 4);
  std::vector<Bytes> three(3, Bytes(8, 0));
  EXPECT_THROW(code.encode(three), CodingError);
}

TEST(ReedSolomon, EncodeRejectsMismatchedLengths) {
  ReedSolomonCode code(6, 4);
  std::vector<Bytes> source(4, Bytes(8, 0));
  source[2].resize(9);
  EXPECT_THROW(code.encode(source), CodingError);
}

TEST(ReedSolomon, DecodeRejectsTooFewSymbols) {
  ReedSolomonCode code(6, 4);
  std::vector<std::optional<Bytes>> received(6);
  received[0] = Bytes(8, 1);
  received[5] = Bytes(8, 2);
  EXPECT_THROW(code.decode(received), CodingError);
}

TEST(ReedSolomon, OverheadFactor) {
  EXPECT_DOUBLE_EQ(ReedSolomonCode(6, 4).overhead(), 1.5);
  EXPECT_DOUBLE_EQ(ReedSolomonCode(4, 4).overhead(), 1.0);
}

// Property: for every (n, k) in a sweep, any k received symbols reconstruct
// the source exactly — the defining contract of a block erasure code [20].
struct RsParam {
  std::size_t n, k;
};

class RsRecoveryTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(RsRecoveryTest, AnyKOfNRecoversSource) {
  const auto [n, k] = GetParam();
  ReedSolomonCode code(n, k);
  Rng rng(n * 1000 + k);

  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t len = 1 + rng.next_below(300);
    std::vector<Bytes> source;
    for (std::size_t i = 0; i < k; ++i) source.push_back(random_payload(rng, len));
    const std::vector<Bytes> parity = code.encode(source);
    ASSERT_EQ(parity.size(), n - k);

    // Random erasure pattern keeping exactly k survivors.
    std::vector<std::size_t> positions(n);
    std::iota(positions.begin(), positions.end(), 0u);
    std::shuffle(positions.begin(), positions.end(), rng);

    std::vector<std::optional<Bytes>> received(n);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t pos = positions[i];
      received[pos] = pos < k ? source[pos] : parity[pos - k];
    }

    const std::vector<Bytes> decoded = code.decode(received);
    ASSERT_EQ(decoded.size(), k);
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(decoded[i], source[i]) << "symbol " << i << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    CodeSweep, RsRecoveryTest,
    ::testing::Values(RsParam{6, 4}, RsParam{4, 2}, RsParam{5, 4},
                      RsParam{8, 4}, RsParam{10, 8}, RsParam{12, 8},
                      RsParam{16, 12}, RsParam{24, 16}, RsParam{32, 16},
                      RsParam{1, 1}, RsParam{2, 1}, RsParam{255, 223},
                      RsParam{48, 32}, RsParam{7, 7}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(ReedSolomon, EncodeOneMatchesBatchEncode) {
  ReedSolomonCode code(10, 4);
  Rng rng(77);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 64));
  const auto parity = code.encode(source);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(code.encode_one(source, i), source[i]);  // systematic prefix
  }
  for (std::size_t p = 0; p < parity.size(); ++p) {
    EXPECT_EQ(code.encode_one(source, 4 + p), parity[p]) << "parity " << p;
  }
}

TEST(ReedSolomon, EncodeOneValidatesArguments) {
  ReedSolomonCode code(6, 4);
  std::vector<Bytes> source(4, Bytes(8, 0));
  EXPECT_THROW(code.encode_one(source, 6), CodingError);
  std::vector<Bytes> three(3, Bytes(8, 0));
  EXPECT_THROW(code.encode_one(three, 0), CodingError);
}

TEST(ReedSolomon, GeneratorRowsIndependentOfN) {
  // The incremental-repair property: a symbol for position p is identical
  // whether produced under (n1, k) or (n2, k), so receivers may decode
  // with a code sized to the highest index they saw.
  ReedSolomonCode small(8, 4), large(32, 4);
  Rng rng(78);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 32));
  for (std::size_t pos = 0; pos < 8; ++pos) {
    EXPECT_EQ(small.encode_one(source, pos), large.encode_one(source, pos))
        << "position " << pos;
  }
}

TEST(ReedSolomon, SystematicPrefixIsUntouched) {
  ReedSolomonCode code(6, 4);
  Rng rng(10);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 64));
  // Receiving all data symbols decodes without touching parity.
  std::vector<std::optional<Bytes>> received(6);
  for (int i = 0; i < 4; ++i) received[i] = source[i];
  EXPECT_EQ(code.decode(received), source);
}

TEST(ReedSolomon, CorruptedExtraSymbolDoesNotAffectFirstK) {
  // decode() uses the first k received positions; verify the selection
  // logic by dropping data symbols one at a time with all parity present.
  ReedSolomonCode code(8, 4);
  Rng rng(11);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 32));
  const auto parity = code.encode(source);

  for (int drop = 0; drop < 4; ++drop) {
    std::vector<std::optional<Bytes>> received(8);
    for (int i = 0; i < 4; ++i) {
      if (i != drop) received[i] = source[i];
    }
    for (int p = 0; p < 4; ++p) received[4 + p] = parity[p];
    EXPECT_EQ(code.decode(received), source);
  }
}

// ---------------------------------------------------------------------------
// XOR parity baseline

TEST(XorParity, RecoversSingleLoss) {
  XorParityCode code(4);
  Rng rng(12);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 50));
  const Bytes parity = code.encode(source);

  for (int drop = 0; drop < 4; ++drop) {
    std::vector<std::optional<Bytes>> received(5);
    for (int i = 0; i < 4; ++i) {
      if (i != drop) received[i] = source[i];
    }
    received[4] = parity;
    EXPECT_EQ(code.decode(received), source);
  }
}

TEST(XorParity, DoubleLossIsUnrecoverable) {
  XorParityCode code(4);
  Rng rng(13);
  std::vector<Bytes> source;
  for (int i = 0; i < 4; ++i) source.push_back(random_payload(rng, 50));
  const Bytes parity = code.encode(source);

  std::vector<std::optional<Bytes>> received(5);
  received[0] = source[0];
  received[1] = source[1];
  received[4] = parity;
  const auto decoded = code.decode(received);
  EXPECT_EQ(decoded[0], source[0]);
  EXPECT_EQ(decoded[1], source[1]);
  EXPECT_TRUE(decoded[2].empty());
  EXPECT_TRUE(decoded[3].empty());
}

TEST(XorParity, NoLossPassesThrough) {
  XorParityCode code(3);
  Rng rng(14);
  std::vector<Bytes> source;
  for (int i = 0; i < 3; ++i) source.push_back(random_payload(rng, 10));
  std::vector<std::optional<Bytes>> received(4);
  for (int i = 0; i < 3; ++i) received[i] = source[i];
  EXPECT_EQ(code.decode(received), source);  // parity loss is irrelevant
}

// ---------------------------------------------------------------------------
// Symbol framing

TEST(SymbolFraming, RoundTrip) {
  Rng rng(15);
  const Bytes payload = random_payload(rng, 123);
  const Bytes symbol = make_symbol(payload, 200);
  EXPECT_EQ(symbol.size(), 200u);
  EXPECT_EQ(parse_symbol(symbol), payload);
}

TEST(SymbolFraming, EmptyPayload) {
  const Bytes symbol = make_symbol({}, 2);
  EXPECT_EQ(parse_symbol(symbol), Bytes{});
}

TEST(SymbolFraming, OversizedPayloadThrows) {
  EXPECT_THROW(make_symbol(Bytes(10), 11), CodingError);
}

TEST(SymbolFraming, CorruptLengthThrows) {
  Bytes symbol{0xff, 0xff, 1, 2, 3};
  EXPECT_THROW(parse_symbol(symbol), CodingError);
}

// ---------------------------------------------------------------------------
// Group encoder / decoder

TEST(GroupCoding, HeaderRoundTrip) {
  util::Writer w;
  GroupHeader{123456, 3, 4, 6, 162}.encode_to(w);
  EXPECT_EQ(w.bytes().size(), GroupHeader::kWireSize);
  util::Reader r(w.bytes());
  const GroupHeader h = GroupHeader::decode_from(r);
  EXPECT_EQ(h.group_id, 123456u);
  EXPECT_EQ(h.index, 3);
  EXPECT_EQ(h.k, 4);
  EXPECT_EQ(h.n, 6);
  EXPECT_EQ(h.symbol_len, 162);
  EXPECT_FALSE(h.is_parity());
}

TEST(GroupCoding, InvalidHeaderThrows) {
  util::Writer w;
  w.u16(kFecMagic);
  w.u32(1);
  w.u8(6);  // index >= n
  w.u8(4);
  w.u8(6);
  w.u16(10);
  util::Reader r(w.bytes());
  EXPECT_THROW(GroupHeader::decode_from(r), CodingError);
}

TEST(GroupCoding, EncoderEmitsNothingUntilGroupFills) {
  GroupEncoder enc(6, 4);
  Rng rng(16);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(enc.add(random_payload(rng, 100)).empty());
  }
  const auto wire = enc.add(random_payload(rng, 100));
  EXPECT_EQ(wire.size(), 6u);
  EXPECT_EQ(enc.groups_emitted(), 1u);
}

TEST(GroupCoding, LosslessPathDeliversPayloadsInOrder) {
  GroupEncoder enc(6, 4);
  GroupDecoder dec;
  Rng rng(17);

  std::vector<Bytes> sent;
  std::vector<Bytes> delivered;
  for (int i = 0; i < 40; ++i) {
    const Bytes payload = random_payload(rng, 50 + rng.next_below(100));
    sent.push_back(payload);
    for (const auto& wire : enc.add(payload)) {
      for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
    }
  }
  for (const auto& wire : enc.flush()) {
    for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
  }
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));

  EXPECT_EQ(delivered, sent);
  EXPECT_EQ(dec.stats().data_recovered, 0u);
  EXPECT_EQ(dec.stats().data_lost, 0u);
}

TEST(GroupCoding, RecoversUpToParityLossesPerGroup) {
  GroupEncoder enc(6, 4);
  GroupDecoder dec;
  Rng rng(18);

  std::vector<Bytes> sent;
  std::vector<Bytes> delivered;
  int drop_phase = 0;
  for (int i = 0; i < 40; ++i) {
    const Bytes payload = random_payload(rng, 80);
    sent.push_back(payload);
    for (const auto& wire : enc.add(payload)) {
      // Drop 2 packets of every group (positions rotate per group).
      util::Reader hr(wire);
      const std::size_t idx = GroupHeader::decode_from(hr).index;
      if (idx == static_cast<std::size_t>(drop_phase % 5) ||
          idx == static_cast<std::size_t>((drop_phase % 5) + 1)) {
        continue;
      }
      for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
    }
    if (i % 4 == 3) ++drop_phase;
  }
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));

  EXPECT_EQ(delivered, sent);  // 2 losses per (6,4) group: fully recovered
  EXPECT_GT(dec.stats().data_recovered, 0u);
  EXPECT_EQ(dec.stats().data_lost, 0u);
}

TEST(GroupCoding, BeyondParityLossesDeliversSurvivors) {
  GroupEncoder enc(6, 4);
  GroupDecoder dec(/*window=*/0);
  Rng rng(19);

  std::vector<Bytes> sent;
  std::vector<Bytes> delivered;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 4; ++i) {
      const Bytes payload = random_payload(rng, 60);
      sent.push_back(payload);
      for (const auto& wire : enc.add(payload)) {
        util::Reader hr(wire);
        const std::uint8_t idx = GroupHeader::decode_from(hr).index;
        if (g == 1 && idx < 3) continue;  // drop 3 of 6 in group 1
        for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
      }
    }
  }
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));

  // Group 1 lost data packets 0..2 (parity can't cover 3 losses); data
  // packet 3 must still arrive, in order.
  ASSERT_EQ(delivered.size(), sent.size() - 3);
  EXPECT_EQ(delivered[4], sent[7]);  // group 1's surviving packet
  EXPECT_EQ(dec.stats().data_lost, 3u);
  EXPECT_EQ(dec.stats().groups_incomplete, 1u);
}

TEST(GroupCoding, FlushEncodesShortGroupWithParity) {
  GroupEncoder enc(6, 4);
  Rng rng(20);
  enc.add(random_payload(rng, 30));
  enc.add(random_payload(rng, 30));
  const auto wire = enc.flush();
  // Short group: m=2 data + 2 parity = (4, 2) code.
  ASSERT_EQ(wire.size(), 4u);
  util::Reader r(wire[0]);
  const GroupHeader h = GroupHeader::decode_from(r);
  EXPECT_EQ(h.k, 2);
  EXPECT_EQ(h.n, 4);
}

TEST(GroupCoding, ShortGroupSurvivesLosses) {
  GroupEncoder enc(6, 4);
  GroupDecoder dec;
  Rng rng(21);
  const Bytes p0 = random_payload(rng, 44);
  const Bytes p1 = random_payload(rng, 55);
  enc.add(p0);
  enc.add(p1);
  std::vector<Bytes> delivered;
  const auto wire = enc.flush();
  // Drop both original data packets; parity alone must rebuild them.
  for (const auto& w : wire) {
    util::Reader r(w);
    if (!GroupHeader::decode_from(r).is_parity()) continue;
    for (auto& out : dec.add(w)) delivered.push_back(std::move(out));
  }
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], p0);
  EXPECT_EQ(delivered[1], p1);
}

TEST(GroupCoding, DuplicatesAreCountedAndIgnored) {
  GroupEncoder enc(3, 2);
  GroupDecoder dec;
  Rng rng(22);
  enc.add(random_payload(rng, 10));
  const auto wire = enc.add(random_payload(rng, 10));
  dec.add(wire[0]);
  dec.add(wire[0]);
  EXPECT_EQ(dec.stats().duplicates, 1u);
}

TEST(GroupCoding, StalePacketsAreDropped) {
  GroupEncoder enc(3, 2);
  GroupDecoder dec(/*window=*/0);
  Rng rng(23);
  std::vector<std::vector<Bytes>> groups;
  for (int g = 0; g < 3; ++g) {
    enc.add(random_payload(rng, 10));
    groups.push_back(enc.add(random_payload(rng, 10)));
  }
  dec.add(groups[0][0]);
  dec.add(groups[2][0]);  // group 0 expires (window 0)
  dec.add(groups[2][1]);
  dec.add(groups[0][1]);  // late packet for a released group
  EXPECT_EQ(dec.stats().stale, 1u);
}

TEST(GroupCoding, FreshEncoderAfterShortSequenceResyncs) {
  // A short-lived encoder leaves the release cursor well inside the
  // restart threshold. Its replacement restarts at group 0 — the decoder
  // must recognize the (group 0, symbol 0) splice signature instead of
  // dropping the whole successor head as stale.
  GroupDecoder dec;
  Rng rng(25);
  std::vector<Bytes> delivered;
  for (int round = 0; round < 3; ++round) {
    GroupEncoder enc(3, 2);  // fresh encoder: ids restart at 0
    for (int g = 0; g < 2; ++g) {
      enc.add(random_payload(rng, 10));
      for (const auto& w : enc.add(random_payload(rng, 10))) {
        for (auto& out : dec.add(w)) delivered.push_back(std::move(out));
      }
    }
  }
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));
  EXPECT_EQ(delivered.size(), 12u);  // 3 rounds x 2 groups x k=2 data
  // One unneeded parity per group arrives after its group released (in-order
  // lossless delivery): counted late, but no DATA was dropped as stale.
  EXPECT_EQ(dec.stats().stale, 6u);
  EXPECT_EQ(dec.stats().restarts, 2u);
  EXPECT_EQ(dec.stats().data_lost, 0u);
  EXPECT_EQ(dec.stats().data_received, 12u);
}

TEST(GroupCoding, CompleteGroupWaitsForOlderIncompleteGroup) {
  GroupEncoder enc(3, 2);
  GroupDecoder dec(/*window=*/4);
  Rng rng(24);
  std::vector<std::vector<Bytes>> groups;
  for (int g = 0; g < 2; ++g) {
    enc.add(random_payload(rng, 10));
    groups.push_back(enc.add(random_payload(rng, 10)));
  }
  // Deliver group 1 fully; group 0 only partially (1 of 2 needed symbols).
  EXPECT_TRUE(dec.add(groups[1][0]).empty());
  EXPECT_TRUE(dec.add(groups[1][1]).empty());  // complete but held: order!
  EXPECT_TRUE(dec.add(groups[0][0]).empty());
  // Completing group 0 releases both groups in order.
  const auto out = dec.add(groups[0][2]);  // parity completes group 0
  EXPECT_EQ(out.size(), 4u);
}

TEST(GroupCoding, InconsistentGroupParametersThrow) {
  GroupEncoder enc64(6, 4), enc32(3, 2);
  GroupDecoder dec;
  Rng rng(25);
  for (int i = 0; i < 3; ++i) enc64.add(random_payload(rng, 10));
  const auto wire_a = enc64.add(random_payload(rng, 10));
  enc32.add(random_payload(rng, 10));
  const auto wire_b = enc32.add(random_payload(rng, 10));  // same group id 0
  dec.add(wire_a[0]);
  EXPECT_THROW(dec.add(wire_b[0]), CodingError);
}

TEST(GroupCoding, EmptyFlushIsEmpty) {
  GroupEncoder enc(6, 4);
  GroupDecoder dec;
  EXPECT_TRUE(enc.flush().empty());
  EXPECT_TRUE(dec.flush().empty());
}

TEST(GroupCoding, VariableLengthPayloadsRoundTrip) {
  GroupEncoder enc(6, 4);
  GroupDecoder dec;
  Rng rng(26);
  std::vector<Bytes> sent, delivered;
  for (int i = 0; i < 20; ++i) {
    const Bytes payload = random_payload(rng, rng.next_below(400));
    sent.push_back(payload);
    for (const auto& wire : enc.add(payload)) {
      // Drop every packet with index 1 — forces per-group recovery of a
      // variable-length payload.
      util::Reader hr(wire);
      if (GroupHeader::decode_from(hr).index == 1) continue;
      for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
    }
  }
  for (const auto& wire : enc.flush()) {
    for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
  }
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));
  EXPECT_EQ(delivered, sent);
}

// Property sweep: random loss at rate p, (n,k) from the design space; the
// decoder must deliver >= the no-FEC rate and never corrupt payloads.
struct GroupSweepParam {
  std::size_t n, k;
  double loss;
};

class GroupSweepTest : public ::testing::TestWithParam<GroupSweepParam> {};

TEST_P(GroupSweepTest, DeliveredPayloadsAreExactAndOrdered) {
  const auto param = GetParam();
  GroupEncoder enc(param.n, param.k);
  GroupDecoder dec;
  Rng rng(static_cast<std::uint64_t>(param.n * 100 + param.k * 10) +
          static_cast<std::uint64_t>(param.loss * 1000));

  std::vector<Bytes> sent, delivered;
  std::size_t raw_through = 0;  // data packets the channel delivered
  auto deliver = [&](const Bytes& wire) {
    if (rng.chance(param.loss)) return;
    util::Reader r(wire);
    if (!GroupHeader::decode_from(r).is_parity()) ++raw_through;
    for (auto& out : dec.add(wire)) delivered.push_back(std::move(out));
  };
  for (int i = 0; i < 400; ++i) {
    Bytes payload = random_payload(rng, 120);
    util::Writer w;
    w.u32(static_cast<std::uint32_t>(i));
    w.raw(payload);
    payload = w.take();
    sent.push_back(payload);
    for (const auto& wire : enc.add(payload)) deliver(wire);
  }
  for (const auto& wire : enc.flush()) deliver(wire);
  for (auto& out : dec.flush()) delivered.push_back(std::move(out));

  // Every delivered payload is byte-exact and sequence numbers strictly
  // increase (order, no duplicates).
  std::int64_t last = -1;
  for (const auto& p : delivered) {
    util::Reader r(p);
    const std::uint32_t seq = r.u32();
    EXPECT_GT(static_cast<std::int64_t>(seq), last);
    last = seq;
    EXPECT_EQ(p, sent[seq]);
  }
  // FEC must never lose a packet the channel delivered raw.
  EXPECT_GE(delivered.size(), raw_through);
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, GroupSweepTest,
    ::testing::Values(GroupSweepParam{6, 4, 0.0}, GroupSweepParam{6, 4, 0.05},
                      GroupSweepParam{6, 4, 0.2}, GroupSweepParam{6, 4, 0.5},
                      GroupSweepParam{8, 4, 0.3}, GroupSweepParam{5, 4, 0.1},
                      GroupSweepParam{12, 8, 0.15},
                      GroupSweepParam{4, 4, 0.1}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

// ---------------------------------------------------------------------------
// Interleaver

TEST(Interleaver, RoundTripFullBlocks) {
  BlockInterleaver il(3, 4);
  BlockDeinterleaver dl(3, 4);
  std::vector<Bytes> sent, received;
  for (int i = 0; i < 24; ++i) {
    Bytes p{static_cast<std::uint8_t>(i)};
    sent.push_back(p);
    for (auto& out : il.add(p)) {
      for (auto& o : dl.add(out)) received.push_back(std::move(o));
    }
  }
  EXPECT_EQ(received, sent);
}

TEST(Interleaver, RoundTripWithPartialFinalBlock) {
  BlockInterleaver il(4, 4);
  BlockDeinterleaver dl(4, 4);
  std::vector<Bytes> sent, received;
  for (int i = 0; i < 21; ++i) {  // 16 + partial 5
    Bytes p{static_cast<std::uint8_t>(i)};
    sent.push_back(p);
    for (auto& out : il.add(p)) {
      for (auto& o : dl.add(out)) received.push_back(std::move(o));
    }
  }
  for (auto& out : il.flush()) {
    for (auto& o : dl.add(out)) received.push_back(std::move(o));
  }
  for (auto& o : dl.flush()) received.push_back(std::move(o));
  EXPECT_EQ(received, sent);
}

TEST(Interleaver, SpreadsBursts) {
  // A burst of `rows` consecutive transmitted packets must touch `rows`
  // DIFFERENT original rows (i.e. different FEC groups).
  const std::size_t rows = 4, depth = 4;
  BlockInterleaver il(rows, depth);
  std::vector<Bytes> wire;
  for (int i = 0; i < 16; ++i) {
    for (auto& out : il.add(Bytes{static_cast<std::uint8_t>(i)})) {
      wire.push_back(std::move(out));
    }
  }
  ASSERT_EQ(wire.size(), 16u);
  // Packets 0..3 on the wire come from original rows 0,1,2,3 (column 0).
  for (std::size_t b = 0; b < rows; ++b) {
    EXPECT_EQ(wire[b][0] / depth, b);  // original row index
  }
}

TEST(Interleaver, ZeroDimensionsThrow) {
  EXPECT_THROW(BlockInterleaver(0, 4), std::invalid_argument);
  EXPECT_THROW(BlockDeinterleaver(4, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// UEP policy

TEST(UepPolicy, StandardGradesProtection) {
  const UepPolicy p = UepPolicy::standard();
  EXPECT_GT(p.lookup(FrameClass::kKey).overhead(),
            p.lookup(FrameClass::kPredicted).overhead());
  EXPECT_GT(p.lookup(FrameClass::kPredicted).overhead(),
            p.lookup(FrameClass::kBidirectional).overhead());
  EXPECT_DOUBLE_EQ(p.lookup(FrameClass::kBidirectional).overhead(), 1.0);
}

TEST(UepPolicy, UniformIsFlat) {
  const UepPolicy p = UepPolicy::uniform({6, 4});
  EXPECT_EQ(p.lookup(FrameClass::kKey), (CodeParams{6, 4}));
  EXPECT_EQ(p.lookup(FrameClass::kBidirectional), (CodeParams{6, 4}));
}

TEST(UepPolicy, UnknownClassFallsBackToOther) {
  UepPolicy p;
  p.set(FrameClass::kOther, {6, 4});
  EXPECT_EQ(p.lookup(FrameClass::kKey), (CodeParams{6, 4}));
}

TEST(UepPolicy, EmptyPolicyThrows) {
  UepPolicy p;
  EXPECT_THROW(p.lookup(FrameClass::kKey), std::out_of_range);
}

TEST(UepPolicy, InvalidParamsThrow) {
  UepPolicy p;
  EXPECT_THROW(p.set(FrameClass::kKey, {4, 5}), std::invalid_argument);
  EXPECT_THROW(p.set(FrameClass::kKey, {4, 0}), std::invalid_argument);
}

TEST(UepPolicy, ExpectedOverheadWeighting) {
  const UepPolicy p = UepPolicy::standard();
  // All key frames -> 2.0; all B frames -> 1.0.
  EXPECT_DOUBLE_EQ(p.expected_overhead({{FrameClass::kKey, 1.0}}), 2.0);
  EXPECT_DOUBLE_EQ(p.expected_overhead({{FrameClass::kBidirectional, 1.0}}),
                   1.0);
  const double mixed = p.expected_overhead(
      {{FrameClass::kKey, 0.5}, {FrameClass::kBidirectional, 0.5}});
  EXPECT_DOUBLE_EQ(mixed, 1.5);
}

}  // namespace
}  // namespace rapidware::fec
