// Fault-injection & concurrency stress for the detachable-stream layer.
//
// The paper's invariant under test: pause / disconnect / reconnect /
// restart on a LIVE stream never loses, duplicates, or reorders a byte.
// Every test here is seeded and deterministic: the schedule (control ops +
// fault decisions) derives from the seed, and a failure always prints the
// seed so the schedule replays exactly. Scale the sweep with
// RW_STRESS_SCHEDULES (default 500); run under -DRW_SANITIZE=thread and
// -DRW_SANITIZE=address to turn every schedule into a race/UB check.
//
// Pacing is virtual-time by default: drawn delays advance the injectors'
// SimClocks and yield, so the full 500-schedule sweep finishes in seconds.
// The Rng draws are identical in both modes, so pinned seeds replay the
// same schedules. WallClockSmokeSubset re-enables real sleeps on a small
// subset so sanitizer runs still see genuine preemption windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "core/worker_pool.h"
#include "net/link.h"
#include "testing/fault_injector.h"
#include "testing/sequence_stream.h"
#include "testing/stress.h"
#include "util/buffer_pool.h"
#include "util/frame_reader.h"
#include "util/framing.h"
#include "util/rng.h"

namespace rapidware {
namespace {

using testing::FaultInjector;
using testing::FaultPlan;
using testing::SequenceChecker;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

// The one seed every sweep in this file derives from. Override with
// RW_STRESS_SEED to replay a CI failure locally.
std::uint64_t base_seed() {
  const char* v = std::getenv("RW_STRESS_SEED");
  if (v == nullptr || *v == '\0') return 0x5eedfeedULL;
  return std::strtoull(v, nullptr, 0);
}

// ---------------------------------------------------------------------------
// The oracle itself must catch every anomaly class, or the sweeps below
// prove nothing.

TEST(SequenceOracle, CatchesLossDuplicationReorderAndCorruption) {
  const std::uint64_t seed = 0x0de11e7ULL;
  util::Bytes wire(256);
  testing::fill_pattern(seed, 0, wire);

  {  // pristine
    SequenceChecker c(seed);
    c.write(wire);
    EXPECT_TRUE(c.clean());
    EXPECT_EQ(c.received(), wire.size());
  }
  {  // one byte lost: everything after shifts
    SequenceChecker c(seed);
    util::Bytes cut(wire);
    cut.erase(cut.begin() + 100);
    c.write(cut);
    ASSERT_FALSE(c.clean());
    EXPECT_EQ(c.divergence()->offset, 100u);
  }
  {  // one byte duplicated
    SequenceChecker c(seed);
    util::Bytes dup(wire);
    dup.insert(dup.begin() + 100, dup[100]);
    c.write(dup);
    EXPECT_FALSE(c.clean());
  }
  {  // two chunks swapped (reordering)
    SequenceChecker c(seed);
    util::Bytes swapped(wire);
    std::swap_ranges(swapped.begin() + 32, swapped.begin() + 64,
                     swapped.begin() + 64);
    c.write(swapped);
    ASSERT_FALSE(c.clean());
    EXPECT_EQ(c.divergence()->offset, 32u);
  }
  {  // single bit flip (corruption)
    SequenceChecker c(seed);
    util::Bytes flip(wire);
    flip[200] ^= 0x20;
    c.write(flip);
    ASSERT_FALSE(c.clean());
    EXPECT_EQ(c.divergence()->offset, 200u);
  }
}

// ---------------------------------------------------------------------------
// Bare pipe: writer + reader + control threads on one DIS/DOS pair.

TEST(PipeStress, PauseReconnectCyclesLoseNothing) {
  const int schedules = std::max(1, env_int("RW_STRESS_SCHEDULES", 500) / 10);
  testing::PipeStressOptions opts;
  opts.total_bytes = 48 * 1024;
  opts.pause_cycles = 24;
  util::Rng seeds(base_seed() ^ 0x9199e5ULL);
  int pauses = 0;
  for (int i = 0; i < schedules; ++i) {
    const std::uint64_t seed = seeds.next_u64();
    SCOPED_TRACE(::testing::Message()
                 << "replay with pipe schedule seed 0x" << std::hex << seed);
    // Vary the ring so both tiny (constant blocking) and roomy pipes run.
    opts.ring_capacity = std::size_t{128} << (i % 4);
    const auto res = testing::run_pipe_schedule(seed, opts);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.bytes_delivered, opts.total_bytes);
    pauses += res.pauses_executed;
  }
  // The control thread must actually have raced pause() against live I/O.
  EXPECT_GT(pauses, schedules);
}

// ---------------------------------------------------------------------------
// Full chain: randomized insert/remove/reorder/pause schedules.

TEST(ChainStress, RandomizedScheduleSweepIsByteExact) {
  testing::StressOptions opts;
  opts.seed = base_seed();
  opts.schedules = env_int("RW_STRESS_SCHEDULES", 500);
  testing::StressDriver driver(opts);
  const auto summary = driver.run_all();
  EXPECT_EQ(summary.failures, 0) << summary.describe();
  EXPECT_EQ(summary.schedules_run, opts.schedules);
  // The sweep must be genuinely hostile, not a no-op pass.
  EXPECT_GT(summary.control_ops, 0u);
  EXPECT_GT(summary.faults_fired, 0u);
  EXPECT_EQ(summary.bytes_total,
            std::uint64_t(opts.schedules) * opts.bytes_per_schedule);
}

TEST(ChainStress, SchedulesAreDeterministicPerSeed) {
  testing::StressDriver driver({});
  util::Rng seeds(base_seed() ^ 0xd7ULL);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t seed = seeds.next_u64();
    SCOPED_TRACE(::testing::Message()
                 << "replay with chain schedule seed 0x" << std::hex << seed);
    const auto a = driver.run_schedule(seed);
    const auto b = driver.run_schedule(seed);
    // Thread interleaving varies run to run; the schedule (op sequence) and
    // the verdict may not.
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
    EXPECT_EQ(a.ok, b.ok);
    ASSERT_TRUE(a.ok) << a.describe();
  }
}

// Schedules that exposed real core bugs during bring-up stay pinned forever.
// 1) close-while-blocked: DOS::close() failed to wake an in-flight write
//    blocked on a full ring (missed wakeup in detachable_stream.cpp).
// 2) dead-tail wedge: a filter thread that died on an exception left its
//    input ring full forever, deadlocking every upstream stage and the
//    chain's own teardown (fixed in Filter::thread_main).
// The direct regression tests for both live below; this sweep re-runs the
// chain schedules that first tripped over them.
TEST(ChainStress, RegressionSchedules) {
  const std::uint64_t pinned[] = {
      0x7aa96a482cbd41bfULL,  // insert@0 + splice while the head ring is full
      0x2f1d9f4bb6f0a3e1ULL,  // remove of a mid-flush filter after reorder
      0x00000000000001a7ULL,  // low-entropy seed: back-to-back splices
  };
  testing::StressDriver driver({});
  for (const std::uint64_t seed : pinned) {
    SCOPED_TRACE(::testing::Message()
                 << "replay with chain schedule seed 0x" << std::hex << seed);
    const auto res = driver.run_schedule(seed);
    EXPECT_TRUE(res.ok) << res.describe();
  }
}

// The same randomized schedules with every chain pinned to a worker
// (StressOptions.pool): insert / remove / reorder / pause+reconnect run
// against the multiplexed scheduler, with event-capable pass-through
// filters multiplexed as on_ready() drives and the byte endpoints carried
// by the blocking shim — the mixed-dispatch mode a migrating proxy runs
// in. A fifth of the thread-mode sweep: each schedule covers the same op
// space, the sweep exists to vary interleavings.
TEST(ChainStress, PoolHostedSchedulesAreByteExact) {
  core::WorkerPool pool(2);
  testing::StressOptions opts;
  opts.seed = base_seed() ^ 0x9001ULL;
  opts.schedules = std::max(1, env_int("RW_STRESS_SCHEDULES", 500) / 5);
  opts.pool = &pool;
  testing::StressDriver driver(opts);
  const auto summary = driver.run_all();
  EXPECT_EQ(summary.failures, 0) << summary.describe();
  EXPECT_EQ(summary.schedules_run, opts.schedules);
  EXPECT_GT(summary.control_ops, 0u);
  EXPECT_EQ(summary.bytes_total,
            std::uint64_t(opts.schedules) * opts.bytes_per_schedule);
  pool.stop();
}

// The pinned thread-mode regression schedules replayed on pool-hosted
// chains: the dispatch mode must not change any schedule's verdict.
TEST(ChainStress, PoolHostedRegressionSchedules) {
  const std::uint64_t pinned[] = {
      0x7aa96a482cbd41bfULL,
      0x2f1d9f4bb6f0a3e1ULL,
      0x00000000000001a7ULL,
  };
  core::WorkerPool pool(2);
  testing::StressOptions opts;
  opts.pool = &pool;
  testing::StressDriver driver(opts);
  for (const std::uint64_t seed : pinned) {
    SCOPED_TRACE(::testing::Message()
                 << "replay with chain schedule seed 0x" << std::hex << seed);
    const auto res = driver.run_schedule(seed);
    EXPECT_TRUE(res.ok) << res.describe();
  }
  pool.stop();
}

// Wall-clock smoke subset: a handful of schedules with real sleeps (both
// control-op pacing and injector delays), preserving the genuine
// lose-the-CPU preemption windows the virtual-time sweep trades away.
// Under TSan/ASan this is the subset that stresses timing-dependent
// interleavings; keep it small — wall sleeps dominate its runtime.
TEST(ChainStress, WallClockSmokeSubset) {
  testing::StressOptions opts;
  opts.seed = base_seed() ^ 0x3a11ULL;
  opts.schedules = std::max(1, env_int("RW_STRESS_SCHEDULES", 500) / 25);
  opts.wall_pacing = true;
  opts.faults.wall_delays = true;
  testing::StressDriver driver(opts);
  const auto summary = driver.run_all();
  EXPECT_EQ(summary.failures, 0) << summary.describe();
  EXPECT_EQ(summary.schedules_run, opts.schedules);
  EXPECT_EQ(summary.bytes_total,
            std::uint64_t(opts.schedules) * opts.bytes_per_schedule);
}

// ---------------------------------------------------------------------------
// Fault termination: injected failures must end cleanly — a dead stage may
// truncate the stream (delivered bytes stay a byte-exact prefix) but must
// never corrupt it, hang the chain, or leak threads.

TEST(ChainStress, InjectedSinkFailuresTerminateCleanly) {
  util::Rng seeds(base_seed() ^ 0xfa11ULL);
  const int schedules = std::max(1, env_int("RW_STRESS_SCHEDULES", 500) / 25);
  for (int i = 0; i < schedules; ++i) {
    const std::uint64_t seed = seeds.next_u64();
    SCOPED_TRACE(::testing::Message()
                 << "replay with fault schedule seed 0x" << std::hex << seed);

    auto faults = std::make_shared<FaultInjector>(seed, FaultPlan{
        .short_read_p = 0.5,
        .fragment_write_p = 0.5,
        .delay_p = 0.2,
        .throw_p = 0.02,  // armed: sink/source may throw mid-transfer
    });
    auto generator =
        std::make_shared<testing::SequenceGenerator>(seed, 32 * 1024);
    auto source = std::make_shared<testing::FaultyByteSource>(generator, faults);
    auto checker = std::make_shared<SequenceChecker>(seed);
    auto sink = std::make_shared<testing::FaultyByteSink>(checker, faults);

    auto head =
        std::make_shared<core::ByteReaderEndpoint>("head", source, 512, 1024);
    auto tail = std::make_shared<core::ByteWriterEndpoint>("tail", sink, 1024);
    core::FilterChain chain(head, tail);
    chain.start();

    // Let it run (and quite possibly die) while we splice a filter in/out.
    try {
      chain.insert(std::make_shared<core::NullFilter>("nf"), 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      chain.remove(0);
    } catch (const core::StreamError&) {
      // A dead stage can legitimately make a control op fail; that must be
      // a typed error, not a hang or a crash.
    }
    chain.shutdown();  // must always complete

    EXPECT_TRUE(checker->clean()) << checker->report();
    EXPECT_LE(checker->received(), generator->total());
  }
}

// Pinned regression: DOS::close() while a write is blocked on a full ring
// (no reader draining). Before the fix the writer slept forever; now it
// must wake and throw BrokenPipe.
TEST(PipeStress, RegressionCloseWakesBlockedWriter) {
  auto dis = std::make_shared<core::DetachableInputStream>(64);
  auto dos = std::make_shared<core::DetachableOutputStream>();
  dos->connect(*dis);

  std::promise<bool> threw;
  auto threw_future = threw.get_future();
  std::thread writer([dis, dos, &threw] {
    util::Bytes big(4096, 0xaa);
    try {
      dos->write(big);  // blocks at 64 bytes: nobody reads
      threw.set_value(false);
    } catch (const core::BrokenPipe&) {
      threw.set_value(true);
    }
  });

  // Wait until the writer is actually wedged mid-write.
  while (dis->available() < 64) std::this_thread::yield();
  dos->close();

  ASSERT_EQ(threw_future.wait_for(std::chrono::seconds(10)),
            std::future_status::ready)
      << "close() failed to wake the blocked writer";
  EXPECT_TRUE(threw_future.get());
  writer.join();

  // The prefix that landed before close() is still readable, then EOF.
  util::Bytes buf(128);
  EXPECT_EQ(dis->read_some(buf), 64u);
  EXPECT_EQ(dis->read_some(buf), 0u);
}

// Pinned regression: a tail whose thread died must release backpressure so
// upstream stages (and chain teardown) do not wedge against its full ring.
TEST(ChainStress, RegressionDeadTailReleasesBackpressure) {
  struct ThrowingSink final : util::ByteSink {
    void write(util::ByteSpan) override {
      throw core::StreamError("sink died");
    }
  };
  auto generator =
      std::make_shared<testing::SequenceGenerator>(0x7e57ULL, 1 << 20);
  auto head = std::make_shared<core::ByteReaderEndpoint>("head", generator,
                                                         4096, 2048);
  auto tail = std::make_shared<core::ByteWriterEndpoint>(
      "tail", std::make_shared<ThrowingSink>(), 2048);
  core::FilterChain chain(head, tail);
  chain.start();

  // The tail dies on its first chunk; the head (1 MiB to push through a
  // 2 KiB ring) must observe BrokenPipe instead of blocking forever.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (head->running() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(head->running())
      << "dead tail wedged the head endpoint (backpressure never released)";
  chain.shutdown();  // must complete promptly
}

// ---------------------------------------------------------------------------
// Batched data plane under faults: util::FrameReader pulling through a
// fault-injecting transport (short reads land mid-header and mid-payload,
// so the stash/resume path runs constantly), recycling every payload buffer
// through a util::BufferPool.

/// In-memory frame store: write_frame() fills it, then it serves as the
/// ByteSource a FaultyByteSource wraps.
class MemoryFrameStore final : public util::ByteSource, public util::ByteSink {
 public:
  void write(util::ByteSpan in) override {
    data_.insert(data_.end(), in.begin(), in.end());
  }
  std::size_t read_some(util::MutableByteSpan out) override {
    const std::size_t n = std::min(out.size(), data_.size() - pos_);
    std::copy_n(data_.begin() + static_cast<long>(pos_), n, out.begin());
    pos_ += n;
    return n;
  }

 private:
  util::Bytes data_;
  std::size_t pos_ = 0;
};

TEST(PipeStress, FrameReaderAndPoolSurviveFaultyTransport) {
  // Three pinned schedules (kept forever) plus a seed-derived sweep.
  std::vector<std::uint64_t> seeds = {
      0xf7a3e5d1c9b80642ULL,  // short read splits a header at byte 5
      0x00000000000000fdULL,  // low-entropy: long runs of 1-byte reads
      0x5ca1ab1e0ddba11ULL,   // alternating tiny/huge truncations
  };
  util::Rng sweep(base_seed() ^ 0xf4a3eULL);
  const int extra = std::max(1, env_int("RW_STRESS_SCHEDULES", 500) / 50);
  for (int i = 0; i < extra; ++i) seeds.push_back(sweep.next_u64());

  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message()
                 << "replay with framed schedule seed 0x" << std::hex << seed);
    util::Rng rng(seed);
    auto store = std::make_shared<MemoryFrameStore>();
    std::vector<util::Bytes> expect;
    const int frames = 150 + static_cast<int>(rng.next_below(100));
    for (int i = 0; i < frames; ++i) {
      util::Bytes payload(rng.next_below(700));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.next_below(256));
      }
      util::write_frame(*store, payload);
      expect.push_back(std::move(payload));
    }

    auto faults = std::make_shared<FaultInjector>(seed, FaultPlan{
        .short_read_p = 0.8,
        .delay_p = 0.0,  // single-threaded: delays only slow the sweep
    });
    testing::FaultyByteSource src(store, faults);
    util::BufferPool pool;
    util::FrameReader reader(src, pool);
    for (int i = 0; i < frames; ++i) {
      auto frame = reader.next();
      ASSERT_TRUE(frame.has_value()) << "frame " << i << " missing";
      ASSERT_EQ(*frame, expect[static_cast<std::size_t>(i)])
          << "frame " << i << " corrupted";
      pool.release(std::move(*frame));  // recycle, as the data plane does
    }
    EXPECT_FALSE(reader.next().has_value());  // clean EOF after the last
    EXPECT_EQ(reader.frames(), static_cast<std::uint64_t>(frames));

    // The schedule must have been hostile, and the pool actually used:
    // every payload acquire beyond the first few is a recycled buffer.
    EXPECT_GT(faults->short_reads(), 0u);
    const auto stats = pool.stats();
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<std::uint64_t>(frames));
    EXPECT_GT(stats.hits, stats.misses);
  }
}

// Armed throws: a transport that dies mid-stream must surface as a typed
// error from FrameReader::next() — never a hang, a truncated-but-clean EOF
// with a partial frame buffered, or a corrupted frame — and the pool must
// stay usable afterwards (no buffer is lost to the unwound stack).
TEST(PipeStress, FrameReaderPropagatesInjectedTransportErrors) {
  util::Rng sweep(base_seed() ^ 0x7404ULL);
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t seed = sweep.next_u64();
    SCOPED_TRACE(::testing::Message()
                 << "replay with throwing schedule seed 0x" << std::hex
                 << seed);
    util::Rng rng(seed);
    auto store = std::make_shared<MemoryFrameStore>();
    std::vector<util::Bytes> expect;
    constexpr int kFrames = 120;
    for (int f = 0; f < kFrames; ++f) {
      util::Bytes payload(rng.next_below(500));
      for (auto& b : payload) {
        b = static_cast<std::uint8_t>(rng.next_below(256));
      }
      util::write_frame(*store, payload);
      expect.push_back(std::move(payload));
    }

    auto faults = std::make_shared<FaultInjector>(seed, FaultPlan{
        .short_read_p = 0.5,
        .delay_p = 0.0,
        .throw_p = 0.1,  // armed: the transport may die at any read
    });
    testing::FaultyByteSource src(store, faults);
    util::BufferPool pool;
    util::FrameReader reader(src, pool);

    std::size_t got = 0;
    bool threw = false;
    try {
      for (;;) {
        auto frame = reader.next();
        if (!frame) break;
        ASSERT_LT(got, expect.size());
        ASSERT_EQ(*frame, expect[got]) << "frame " << got << " corrupted";
        ++got;
        pool.release(std::move(*frame));
      }
    } catch (const core::StreamError&) {
      threw = true;
    }
    // The delivered prefix is byte-exact (asserted above); the outcome
    // matches what the injector actually did.
    EXPECT_EQ(threw, faults->throws() > 0);
    if (!threw) EXPECT_EQ(got, expect.size());

    // The pool survived the unwind: acquire/release still round-trip.
    util::Bytes b = pool.acquire(256);
    pool.release(std::move(b));
    EXPECT_GT(pool.stats().recycled, 0u);
  }
}

// ---------------------------------------------------------------------------
// Link-level faults: the datagram path may lose and reorder (that is what
// FEC/ARQ exist for), and the packet oracle must classify exactly what the
// injected faults did.

TEST(LinkStress, InjectedLossAndReorderAreDetectedByTheLedger) {
  const std::uint64_t seed = base_seed() ^ 0x11ULL;
  auto faults = std::make_shared<FaultInjector>(seed, FaultPlan{
      .link_drop_p = 0.05,
      .link_outage_p = 0.01,
      .link_outage_packets = 6,
  });
  auto loss = std::make_shared<testing::LinkFaults>(
      std::make_shared<net::PerfectChannel>(), faults);

  net::ChannelConfig config;
  config.loss = loss;
  config.latency_us = 2'000;
  config.jitter_us = 5'000;  // far beyond the send gap: guarantees reorder
  net::Channel channel(config, util::Rng(seed ^ 0x1eafULL));

  const std::uint32_t kPackets = 600;
  std::vector<std::pair<util::Micros, std::uint32_t>> arrivals;
  util::Micros now = 0;
  for (std::uint32_t seq = 0; seq < kPackets; ++seq) {
    now += 500;  // 0.5 ms send gap
    if (const auto at = channel.transit(64, now)) {
      arrivals.emplace_back(*at, seq);
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  testing::PacketLedger ledger(seed, kPackets);
  for (const auto& [at, seq] : arrivals) {
    ledger.record(testing::make_stamped_packet(seed, seq, 64));
  }

  EXPECT_GT(faults->link_drops(), 0u);
  EXPECT_EQ(ledger.lost(), faults->link_drops());
  EXPECT_GT(ledger.reordered(), 0u);
  EXPECT_EQ(ledger.duplicates(), 0u);
  EXPECT_EQ(ledger.corrupt(), 0u);
  EXPECT_EQ(ledger.ok() + ledger.lost(), kPackets);
}

}  // namespace
}  // namespace rapidware
