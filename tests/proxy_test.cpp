// Tests for the proxy assembly: socket endpoints, the data path through a
// networked proxy, remote control (ControlManager over datagrams), and the
// end-to-end FEC path over a lossy simulated WLAN.
#include <gtest/gtest.h>

#include <thread>

#include "filters/fec_filters.h"
#include "filters/registry.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "obs/metrics.h"
#include "proxy/proxy.h"
#include "proxy/socket_endpoints.h"
#include "util/rng.h"
#include "wireless/wlan.h"

namespace rapidware::proxy {
namespace {

using util::Bytes;
using util::to_bytes;
using util::to_string;

struct World {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 99};
  net::NodeId sender = net.add_node("sender");
  net::NodeId proxy_node = net.add_node("proxy");
  net::NodeId mobile = net.add_node("mobile");

  ProxyConfig config() {
    ProxyConfig c;
    c.ingress_port = 4000;
    c.egress_dst = {mobile, 5000};
    c.control_port = 4999;
    return c;
  }
};

TEST(SocketEndpointsTest, SourceDeliversAndInterrupts) {
  World w;
  auto in = w.net.open(w.proxy_node, 4000);
  auto out = w.net.open(w.sender);
  SocketPacketSource source(in);
  out->send_to({w.proxy_node, 4000}, to_bytes("datagram"));
  auto packet = source.next_packet();
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(to_string(*packet), "datagram");

  std::thread interrupter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    source.interrupt();
  });
  EXPECT_FALSE(source.next_packet().has_value());
  interrupter.join();
}

TEST(SocketEndpointsTest, SourceStopsWhenSocketClosedElsewhere) {
  World w;
  auto in = w.net.open(w.proxy_node, 4000);
  SocketPacketSource source(in);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    in->close();
  });
  EXPECT_FALSE(source.next_packet().has_value());
  closer.join();
}

TEST(SocketEndpointsTest, SinkSendsToDestination) {
  World w;
  auto out = w.net.open(w.proxy_node);
  auto rx = w.net.open(w.mobile, 5000);
  SocketPacketSink sink(out, {w.mobile, 5000});
  sink.deliver(to_bytes("payload"));
  auto d = rx->recv(1000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "payload");
}

TEST(Proxy, NullProxyForwards) {
  World w;
  Proxy proxy(w.net, w.proxy_node, w.config());
  proxy.start();

  auto tx = w.net.open(w.sender);
  auto rx = w.net.open(w.mobile, 5000);
  for (int i = 0; i < 20; ++i) {
    tx->send_to({w.proxy_node, 4000}, to_bytes("p" + std::to_string(i)));
  }
  for (int i = 0; i < 20; ++i) {
    auto d = rx->recv(2000);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(to_string(d->payload), "p" + std::to_string(i));
  }
  proxy.shutdown();
}

TEST(Proxy, StartTwiceThrows) {
  World w;
  Proxy proxy(w.net, w.proxy_node, w.config());
  proxy.start();
  EXPECT_THROW(proxy.start(), std::runtime_error);
  proxy.shutdown();
}

TEST(Proxy, MulticastIngress) {
  World w;
  auto config = w.config();
  const net::Address group = net::multicast_group(1, 4000);
  config.ingress_group = group;
  Proxy proxy(w.net, w.proxy_node, config);
  proxy.start();

  auto tx = w.net.open(w.sender);
  auto rx = w.net.open(w.mobile, 5000);
  tx->send_to(group, to_bytes("via-group"));
  auto d = rx->recv(2000);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(to_string(d->payload), "via-group");
  proxy.shutdown();
}

TEST(Proxy, RemoteControlInsertAndList) {
  filters::register_builtin_filters();
  World w;
  Proxy proxy(w.net, w.proxy_node, w.config());
  proxy.start();

  core::ControlManager manager(
      network_control_transport(w.net, w.sender, proxy.control_address()));
  EXPECT_TRUE(manager.list_chain().empty());
  manager.insert({"stats", {{"name", "tap"}}}, 0);
  manager.insert({"fec-encode", {{"n", "6"}, {"k", "4"}}}, 1);
  const auto infos = manager.list_chain();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].name, "tap");
  EXPECT_EQ(infos[1].description, "fec-enc(6,4)");

  manager.remove(0);
  EXPECT_EQ(manager.list_chain().size(), 1u);
  proxy.shutdown();
}

TEST(Proxy, RemoteStatsReportsTrafficAndFilters) {
  filters::register_builtin_filters();
  World w;
  auto config = w.config();
  config.name = "stats-proxy";
  Proxy proxy(w.net, w.proxy_node, config);
  proxy.start();

  core::ControlManager manager(
      network_control_transport(w.net, w.sender, proxy.control_address()));
  manager.insert({"fec-encode", {{"n", "6"}, {"k", "4"}}}, 0);

  auto tx = w.net.open(w.sender);
  auto rx = w.net.open(w.mobile, 5000);
  constexpr int kPackets = 8;
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to({w.proxy_node, 4000}, Bytes(320, static_cast<std::uint8_t>(i)));
  }
  // FEC(6,4) emits parity after each group of 4; 8 data -> 12 wire packets.
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(rx->recv(2000).has_value());

  const auto entries = manager.stats("stats-proxy");
  auto value = [&](const std::string& name) -> std::string {
    for (const auto& [k, v] : entries) {
      if (k == name) return v;
    }
    return "<missing: " + name + ">";
  };
  // Socket-level truth, matching what the test's own sockets saw.
  EXPECT_EQ(value("stats-proxy/ingress/packets"), std::to_string(kPackets));
  EXPECT_EQ(value("stats-proxy/egress/packets"), "12");
#if RW_OBS_ENABLED
  EXPECT_EQ(value("stats-proxy/chain/fec-encode/packets_in"),
            std::to_string(kPackets));
  EXPECT_EQ(value("stats-proxy/chain/fec-encode/packets_out"), "12");
  EXPECT_EQ(value("stats-proxy/chain/fec-encode/groups_encoded"), "2");
  // The STATS requests themselves are control traffic (insert + this one).
  EXPECT_NE(value("stats-proxy/control/requests"), "0");
#endif
  proxy.shutdown();

  // shutdown() withdraws every published metric: a later STATS against a
  // fresh proxy must not see stale "stats-proxy" entries.
  EXPECT_TRUE(obs::registry().snapshot("stats-proxy").empty());
}

TEST(Proxy, RemoteControlErrorsPropagate) {
  filters::register_builtin_filters();
  World w;
  Proxy proxy(w.net, w.proxy_node, w.config());
  proxy.start();
  core::ControlManager manager(
      network_control_transport(w.net, w.sender, proxy.control_address()));
  EXPECT_THROW(manager.insert({"no-such", {}}, 0), core::ControlError);
  EXPECT_THROW(manager.remove(9), core::ControlError);
  proxy.shutdown();
}

TEST(Proxy, ControlTimeoutWhenProxyDown) {
  World w;
  core::ControlManager manager(network_control_transport(
      w.net, w.sender, {w.proxy_node, 4999}, /*timeout_ms=*/50));
  EXPECT_THROW(manager.list_chain(), core::ControlError);
}

TEST(Proxy, UploadedFilterUsableRemotely) {
  World w;
  core::FilterRegistry registry;
  filters::register_builtin_filters(registry);
  Proxy proxy(w.net, w.proxy_node, w.config(), &registry);
  proxy.start();
  core::ControlManager manager(
      network_control_transport(w.net, w.sender, proxy.control_address()));

  // Upload a "third-party" low-bandwidth filter definition, then insert it.
  manager.upload("lowband", {"fec-encode", {{"n", "5"}, {"k", "4"}}});
  manager.insert({"lowband", {}}, 0);
  EXPECT_EQ(manager.list_chain()[0].description, "fec-enc(5,4)");
  proxy.shutdown();
}

// ---------------------------------------------------------------------------
// End to end: audio through an FEC proxy over a lossy WLAN

struct E2eParam {
  double distance_m;
  bool fec;
  double fec_min_rate;  // lower bound on post-FEC delivery
};

class ProxyWlanE2e : public ::testing::TestWithParam<E2eParam> {};

TEST_P(ProxyWlanE2e, DeliveryMatchesModelAndFecRecovers) {
  const auto param = GetParam();
  World w;
  wireless::WirelessLan wlan(w.net, w.proxy_node);
  wlan.add_station(w.mobile, param.distance_m);

  Proxy proxy(w.net, w.proxy_node, w.config());
  proxy.start();
  if (param.fec) {
    proxy.chain().insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);
  }

  // The mobile host runs its own receive chain with a permanent decoder.
  auto rx = w.net.open(w.mobile, 5000);
  media::ReceiverLog log(432);
  fec::GroupDecoder decoder(4);

  auto tx = w.net.open(w.sender);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  constexpr int kPackets = 3000;

  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      if (fec::looks_like_fec_packet(d->payload)) {
        for (const auto& payload : decoder.add(d->payload)) {
          log.on_packet(media::MediaPacket::parse(payload), d->deliver_at);
        }
      } else {
        log.on_packet(media::MediaPacket::parse(d->payload), d->deliver_at);
      }
    }
    for (const auto& payload : decoder.flush()) {
      log.on_packet(media::MediaPacket::parse(payload), 0);
    }
  });

  for (int i = 0; i < kPackets; ++i) {
    tx->send_to({w.proxy_node, 4000}, packetizer.next_packet().serialize());
    w.clock->advance(20'000);  // 20 ms media cadence (virtual)
    // Pace the producer so the proxy pipeline (real threads) keeps up with
    // the virtual clock and the modeled AP queue reflects steady state.
    if (i % 50 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  proxy.shutdown();

  const double modeled_loss = wlan.downlink_loss(w.mobile);
  const double rate = log.delivery_rate();
  if (!param.fec) {
    // Raw delivery tracks 1 - loss within statistical noise.
    EXPECT_NEAR(rate, 1.0 - modeled_loss, 0.02);
  } else {
    EXPECT_GT(rate, param.fec_min_rate);
    EXPECT_GT(rate, 1.0 - modeled_loss);  // strictly better than raw
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistanceSweep, ProxyWlanE2e,
    ::testing::Values(E2eParam{25.0, false, 0}, E2eParam{25.0, true, 0.995},
                      E2eParam{35.0, false, 0}, E2eParam{35.0, true, 0.97}),
    [](const auto& info) {
      return std::string("d") +
             std::to_string(static_cast<int>(info.param.distance_m)) +
             (info.param.fec ? "_fec" : "_raw");
    });

}  // namespace
}  // namespace rapidware::proxy
