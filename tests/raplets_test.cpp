// Tests for the adaptation layer: receiver reports, the loss observer, the
// demand-driven FEC responder, and the full closed loop — a mobile user
// walks away from the access point, loss rises, the responder inserts FEC
// into the running proxy, and delivery recovers (the paper's Section 3
// scenario).
#include <gtest/gtest.h>

#include <thread>

#include "fec/fec_group.h"
#include "filters/registry.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/receiver_log.h"
#include "proxy/proxy.h"
#include "raplets/adaptation_manager.h"
#include "raplets/fec_responder.h"
#include "raplets/loss_observer.h"
#include "raplets/receiver_report.h"
#include "wireless/mobility.h"
#include "wireless/wlan.h"

namespace rapidware::raplets {
namespace {

using util::Bytes;

// ---------------------------------------------------------------------------
// ReceiverReport

TEST(ReceiverReportTest, SerializationRoundTrips) {
  ReceiverReport r{"mobile-1", 970, 1000, 0.03, 123456};
  EXPECT_EQ(ReceiverReport::parse(r.serialize()), r);
}

TEST(ReceiverReportTest, RejectsOutOfRangeLoss) {
  ReceiverReport r{"x", 1, 1, 2.0, 0};
  EXPECT_THROW(ReceiverReport::parse(r.serialize()), util::SerialError);
}

struct ReportWorld {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 5};
  net::NodeId receiver_node = net.add_node("receiver");
  net::NodeId observer_node = net.add_node("observer");
  std::shared_ptr<net::SimSocket> observer_socket =
      net.open(observer_node, 7000);
  std::shared_ptr<net::SimSocket> receiver_socket = net.open(receiver_node);
};

TEST(ReportSenderTest, EmitsReportPerWindow) {
  ReportWorld w;
  ReportSender sender("mobile", w.receiver_socket, {w.observer_node, 7000},
                      /*interval_packets=*/10);
  // Deliver seq 0..9 minus seq 4 => one report with 10% window loss.
  for (std::uint32_t seq = 0; seq < 10; ++seq) {
    if (seq == 4) continue;
    sender.on_delivered(seq, 1000);
  }
  EXPECT_EQ(sender.reports_sent(), 1u);
  auto d = w.observer_socket->recv(1000);
  ASSERT_TRUE(d.has_value());
  const auto report = ReceiverReport::parse(d->payload);
  EXPECT_EQ(report.receiver, "mobile");
  EXPECT_NEAR(report.window_loss, 0.1, 1e-9);
  EXPECT_EQ(report.expected, 10u);
}

TEST(ReportSenderTest, LossLengthensNothing) {
  // Windows are sequence-based: heavy loss still produces reports.
  ReportWorld w;
  ReportSender sender("mobile", w.receiver_socket, {w.observer_node, 7000}, 10);
  for (std::uint32_t seq = 0; seq < 100; seq += 5) {  // 80% loss
    sender.on_delivered(seq, 0);
  }
  EXPECT_GE(sender.reports_sent(), 8u);
}

TEST(ReportSenderTest, ZeroIntervalThrows) {
  ReportWorld w;
  EXPECT_THROW(
      ReportSender("m", w.receiver_socket, {w.observer_node, 7000}, 0),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LossObserver

TEST(LossObserverTest, SmoothsAndEmitsEvents) {
  ReportWorld w;
  auto observer = std::make_shared<LossObserver>(w.observer_socket, 0.5);
  std::mutex mu;
  std::vector<Event> events;
  observer->set_sink([&](const Event& e) {
    std::lock_guard lk(mu);
    events.push_back(e);
  });
  observer->start();

  auto send_report = [&](double loss) {
    ReceiverReport r{"mobile", 0, 0, loss, 0};
    w.receiver_socket->send_to({w.observer_node, 7000}, r.serialize());
  };
  send_report(0.2);
  send_report(0.0);

  // Wait for both reports to be absorbed.
  for (int i = 0; i < 100 && observer->reports_seen() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  observer->stop();

  ASSERT_EQ(observer->reports_seen(), 2u);
  EXPECT_DOUBLE_EQ(observer->loss_for("mobile"), 0.1);  // 0.2 then halved
  std::lock_guard lk(mu);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "loss-rate");
  EXPECT_DOUBLE_EQ(events[0].value, 0.2);  // first sample unsmoothed
  EXPECT_DOUBLE_EQ(events[1].value, 0.1);
}

TEST(LossObserverTest, WorstLossAcrossReceivers) {
  ReportWorld w;
  auto observer = std::make_shared<LossObserver>(w.observer_socket);
  observer->start();
  ReceiverReport a{"near", 0, 0, 0.01, 0};
  ReceiverReport b{"far", 0, 0, 0.2, 0};
  w.receiver_socket->send_to({w.observer_node, 7000}, a.serialize());
  w.receiver_socket->send_to({w.observer_node, 7000}, b.serialize());
  for (int i = 0; i < 100 && observer->reports_seen() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  observer->stop();
  EXPECT_DOUBLE_EQ(observer->worst_loss(), 0.2);
  EXPECT_DOUBLE_EQ(observer->loss_for("unknown"), 0.0);
}

TEST(LossObserverTest, MalformedReportsIgnored) {
  ReportWorld w;
  auto observer = std::make_shared<LossObserver>(w.observer_socket);
  observer->start();
  w.receiver_socket->send_to({w.observer_node, 7000}, util::to_bytes("junk"));
  ReceiverReport ok{"m", 0, 0, 0.1, 0};
  w.receiver_socket->send_to({w.observer_node, 7000}, ok.serialize());
  for (int i = 0; i < 100 && observer->reports_seen() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  observer->stop();
  EXPECT_EQ(observer->reports_seen(), 1u);
}

TEST(LossObserverTest, BadAlphaThrows) {
  ReportWorld w;
  EXPECT_THROW(LossObserver(w.observer_socket, 0.0), std::invalid_argument);
  EXPECT_THROW(LossObserver(w.observer_socket, 1.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FecResponder against a live proxy

struct ResponderWorld {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 17};
  net::NodeId sender = net.add_node("sender");
  net::NodeId proxy_node = net.add_node("proxy");
  net::NodeId mobile = net.add_node("mobile");
  std::unique_ptr<proxy::Proxy> px;

  ResponderWorld() {
    filters::register_builtin_filters();
    proxy::ProxyConfig c;
    c.ingress_port = 4000;
    c.egress_dst = {mobile, 5000};
    c.control_port = 4999;
    px = std::make_unique<proxy::Proxy>(net, proxy_node, c);
    px->start();
  }
  ~ResponderWorld() { px->shutdown(); }

  core::ControlManager manager() {
    return core::ControlManager(proxy::network_control_transport(
        net, sender, px->control_address()));
  }
};

Event loss_event(double value, util::Micros at) {
  return Event{"loss-rate", "mobile", value, at};
}

TEST(FecResponderTest, InsertsAboveThresholdRemovesBelow) {
  ResponderWorld w;
  FecResponderConfig config;
  config.insert_threshold = 0.02;
  config.remove_threshold = 0.005;
  config.cooldown_us = 0;
  FecResponder responder(w.manager(), std::nullopt, config);

  responder.on_event(loss_event(0.01, 1000));  // below: nothing
  EXPECT_FALSE(responder.fec_active());
  EXPECT_TRUE(w.manager().list_chain().empty());

  responder.on_event(loss_event(0.05, 2000));  // above: insert
  EXPECT_TRUE(responder.fec_active());
  auto infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "fec-encode");

  responder.on_event(loss_event(0.01, 3000));  // hysteresis band: keep
  EXPECT_TRUE(responder.fec_active());

  responder.on_event(loss_event(0.001, 4000));  // below remove: remove
  EXPECT_FALSE(responder.fec_active());
  EXPECT_TRUE(w.manager().list_chain().empty());

  const auto history = responder.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_TRUE(history[0].inserted);
  EXPECT_FALSE(history[1].inserted);
}

TEST(FecResponderTest, CooldownPreventsFlapping) {
  ResponderWorld w;
  FecResponderConfig config;
  config.insert_threshold = 0.02;
  config.remove_threshold = 0.01;
  config.cooldown_us = 1'000'000;
  FecResponder responder(w.manager(), std::nullopt, config);

  responder.on_event(loss_event(0.05, 1'000'000));
  EXPECT_TRUE(responder.fec_active());
  responder.on_event(loss_event(0.0, 1'500'000));  // within cooldown
  EXPECT_TRUE(responder.fec_active());
  responder.on_event(loss_event(0.0, 2'100'000));  // cooldown passed
  EXPECT_FALSE(responder.fec_active());
}

TEST(FecResponderTest, ManagesDecoderSideToo) {
  ResponderWorld w;
  // Second "receiver-side" proxy on the mobile node.
  proxy::ProxyConfig rc;
  rc.ingress_port = 5000;
  rc.egress_dst = {w.mobile, 5001};
  rc.control_port = 5999;
  proxy::Proxy receiver_proxy(w.net, w.mobile, rc);
  receiver_proxy.start();

  FecResponderConfig config;
  config.cooldown_us = 0;
  FecResponder responder(
      w.manager(),
      core::ControlManager(proxy::network_control_transport(
          w.net, w.sender, receiver_proxy.control_address())),
      config);

  responder.on_event(loss_event(0.08, 1000));
  EXPECT_TRUE(responder.fec_active());
  core::ControlManager rx_manager(proxy::network_control_transport(
      w.net, w.sender, receiver_proxy.control_address()));
  ASSERT_EQ(rx_manager.list_chain().size(), 1u);
  EXPECT_EQ(rx_manager.list_chain()[0].name, "fec-decode");

  responder.on_event(loss_event(0.0, 2000));
  EXPECT_TRUE(rx_manager.list_chain().empty());
  receiver_proxy.shutdown();
}

TEST(FecResponderTest, IgnoresUnrelatedEvents) {
  ResponderWorld w;
  FecResponderConfig config;
  config.cooldown_us = 0;
  FecResponder responder(w.manager(), std::nullopt, config);
  responder.on_event({"battery-low", "mobile", 0.99, 1000});
  EXPECT_FALSE(responder.fec_active());
}

TEST(FecResponderTest, BadThresholdsThrow) {
  ResponderWorld w;
  FecResponderConfig config;
  config.insert_threshold = 0.01;
  config.remove_threshold = 0.05;  // inverted
  EXPECT_THROW(FecResponder(w.manager(), std::nullopt, config),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Closed loop: walk away from the AP, observer + responder react, delivery
// recovers. This is the paper's roaming scenario end to end.

TEST(ClosedLoop, DemandDrivenFecReactsToRoaming) {
  ResponderWorld w;
  wireless::WirelessLan wlan(w.net, w.proxy_node);
  wlan.add_station(w.mobile, 5.0);

  // Observer service on the proxy node.
  auto observer_socket = w.net.open(w.proxy_node, 7000);
  auto observer = std::make_shared<LossObserver>(observer_socket, 0.6);
  FecResponderConfig config;
  config.insert_threshold = 0.02;
  config.remove_threshold = 0.002;
  config.cooldown_us = 0;
  auto responder =
      std::make_shared<FecResponder>(w.manager(), std::nullopt, config);
  AdaptationManager adaptation(observer, responder);
  adaptation.start();

  // Mobile receiver: permanent pass-through decoder + report sender.
  auto rx = w.net.open(w.mobile, 5000);
  auto report_socket = w.net.open(w.mobile);
  ReportSender reports("mobile", report_socket, {w.proxy_node, 7000}, 25);
  fec::GroupDecoder decoder(4);
  media::ReceiverLog log;
  // Raw link loss from FEC-layer deltas; unknown (-1) while FEC is off, in
  // which case the observer falls back to post-delivery window loss.
  std::uint64_t last_ok = 0, last_miss = 0;
  reports.set_raw_loss_provider([&]() -> double {
    const auto& s = decoder.stats();
    const std::uint64_t ok = s.data_received;
    const std::uint64_t miss = s.data_recovered + s.data_lost;
    const std::uint64_t d_ok = ok - last_ok, d_miss = miss - last_miss;
    last_ok = ok;
    last_miss = miss;
    const std::uint64_t total = d_ok + d_miss;
    return total == 0 ? -1.0
                      : static_cast<double>(d_miss) / static_cast<double>(total);
  });
  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      std::vector<Bytes> payloads;
      if (fec::looks_like_fec_packet(d->payload)) {
        payloads = decoder.add(d->payload);
      } else {
        payloads.push_back(d->payload);
      }
      for (const auto& p : payloads) {
        const auto media = media::MediaPacket::parse(p);
        log.on_packet(media, d->deliver_at);
        reports.on_delivered(media.seq, d->deliver_at);
      }
    }
  });

  // Drive the walk: near (clean) -> far (lossy).
  auto tx = w.net.open(w.sender);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  constexpr int kPackets = 4000;
  for (int i = 0; i < kPackets; ++i) {
    if (i == 1000) wlan.set_distance(w.mobile, 38.0);  // step outdoors
    tx->send_to({w.proxy_node, 4000}, packetizer.next_packet().serialize());
    w.clock->advance(20'000);
    if (i % 200 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  adaptation.stop();

  // The responder must have switched FEC on after the loss rose.
  const auto history = responder->history();
  ASSERT_GE(history.size(), 1u);
  EXPECT_TRUE(history[0].inserted);
  EXPECT_TRUE(responder->fec_active());
  // With FEC active for most of the lossy phase, overall delivery beats the
  // raw far-distance rate by a clear margin.
  const double far_loss = wlan.downlink_loss(w.mobile);
  EXPECT_GT(log.delivery_rate(), 1.0 - far_loss);
}

}  // namespace
}  // namespace rapidware::raplets
