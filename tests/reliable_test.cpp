// Tests for reliable multicast with FEC-assisted repair: NACK wire format,
// lossless fast path, ARQ and parity repair under loss, multi-receiver
// independent losses (the paper's "single parity packet corrects
// independent single-packet losses among different receivers"), and
// ordering guarantees.
#include <gtest/gtest.h>

#include "net/loss.h"
#include "reliable/reliable_multicast.h"
#include "util/rng.h"

namespace rapidware::reliable {
namespace {

using util::Bytes;

Bytes payload_for(int i) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(i));
  for (int j = 0; j < 40; ++j) w.u8(static_cast<std::uint8_t>(i + j));
  return w.take();
}

struct World {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 314};
  net::NodeId sender_node = net.add_node("sender");
  net::Address group = net::multicast_group(9, 6000);
  std::shared_ptr<net::SimSocket> sender_socket = net.open(sender_node, 6001);

  struct Rx {
    net::NodeId node;
    std::shared_ptr<net::SimSocket> socket;
    std::unique_ptr<ReliableMulticastReceiver> receiver;
  };

  Rx make_receiver(const std::string& name) {
    Rx rx;
    rx.node = net.add_node(name);
    rx.socket = net.open(rx.node, 6000);
    rx.receiver = std::make_unique<ReliableMulticastReceiver>(
        rx.socket, sender_socket->local(), group, *clock);
    return rx;
  }

  void set_loss(net::NodeId to, double p) {
    net::ChannelConfig config;
    config.loss = std::make_shared<net::BernoulliLoss>(p);
    net.set_channel(sender_node, to, std::move(config));
  }

  /// Runs the NACK/repair loop until the receivers complete or the round
  /// budget runs out.
  void converge(ReliableMulticastSender& sender, std::vector<Rx*> receivers,
                std::uint32_t last_block, int max_rounds = 50) {
    for (int round = 0; round < max_rounds; ++round) {
      bool all_done = true;
      for (auto* rx : receivers) {
        rx->receiver->poll();
        rx->receiver->tick();
        all_done &= rx->receiver->complete_through(last_block);
      }
      sender.service();
      clock->advance(100'000);
      if (all_done) return;
    }
  }
};

TEST(NackWire, SerializationRoundTrips) {
  Nack nack{7, 3, {0, 2, 5}};
  EXPECT_EQ(Nack::parse(nack.serialize()), nack);
}

TEST(NackWire, TruncatedThrows) {
  Nack nack{7, 3, {0, 2, 5}};
  Bytes wire = nack.serialize();
  wire.resize(wire.size() - 2);
  EXPECT_THROW(Nack::parse(wire), util::SerialError);
}

TEST(ReliableSender, RejectsBadParameters) {
  World w;
  EXPECT_THROW(
      ReliableMulticastSender(w.sender_socket, w.group, 0, RepairMode::kArq),
      fec::CodingError);
  EXPECT_THROW(ReliableMulticastSender(w.sender_socket, w.group, 200,
                                       RepairMode::kArq, 60),
               fec::CodingError);
}

TEST(Reliable, LosslessDeliveryInOrder) {
  World w;
  auto rx = w.make_receiver("rx");
  ReliableMulticastSender sender(w.sender_socket, w.group, 8,
                                 RepairMode::kParity);
  std::vector<Bytes> sent;
  for (int i = 0; i < 50; ++i) {
    sent.push_back(payload_for(i));
    sender.send(sent.back());
  }
  sender.flush();  // short final block
  w.converge(sender, {&rx}, 6);

  EXPECT_EQ(rx.receiver->take_delivered(), sent);
  EXPECT_EQ(sender.stats().repair_packets(), 0u);
  EXPECT_EQ(rx.receiver->stats().nacks_sent, 0u);
}

class RepairModeTest : public ::testing::TestWithParam<RepairMode> {};

TEST_P(RepairModeTest, RecoversUnderHeavyLoss) {
  World w;
  auto rx = w.make_receiver("rx");
  w.set_loss(rx.node, 0.3);
  ReliableMulticastSender sender(w.sender_socket, w.group, 8, GetParam());

  std::vector<Bytes> sent;
  constexpr int kPayloads = 160;  // 20 blocks
  for (int i = 0; i < kPayloads; ++i) {
    sent.push_back(payload_for(i));
    sender.send(sent.back());
  }
  w.converge(sender, {&rx}, 19, 200);

  ASSERT_TRUE(rx.receiver->complete_through(19));
  EXPECT_EQ(rx.receiver->take_delivered(), sent);
  EXPECT_GT(sender.stats().repair_packets(), 0u);
  EXPECT_GT(rx.receiver->stats().nacks_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Modes, RepairModeTest,
                         ::testing::Values(RepairMode::kArq,
                                           RepairMode::kParity),
                         [](const auto& info) {
                           return info.param == RepairMode::kArq ? "arq"
                                                                 : "parity";
                         });

TEST(Reliable, ParityRepairsIndependentLossesWithSharedPackets) {
  // The Section 5 multicast claim, as a controlled experiment: N receivers
  // each lose a DIFFERENT single data packet of one block. ARQ must send
  // one retransmission per receiver; parity mode serves all of them with a
  // single round of (here: one) parity packets.
  for (const RepairMode mode : {RepairMode::kArq, RepairMode::kParity}) {
    World w;
    constexpr int kReceivers = 6;
    std::vector<World::Rx> receivers;
    for (int i = 0; i < kReceivers; ++i) {
      receivers.push_back(w.make_receiver("rx" + std::to_string(i)));
      // Receiver i drops exactly the i-th packet of the 8-packet block.
      std::vector<bool> trace(8, false);
      trace[static_cast<std::size_t>(i)] = true;
      net::ChannelConfig config;
      config.loss = std::make_shared<net::TraceLoss>(trace);
      w.net.set_channel(w.sender_node, receivers.back().node,
                        std::move(config));
    }

    ReliableMulticastSender sender(w.sender_socket, w.group, 8, mode);
    std::vector<Bytes> sent;
    for (int i = 0; i < 8; ++i) {
      sent.push_back(payload_for(i));
      sender.send(sent.back());
    }
    // After the block: disable loss so repairs get through cleanly.
    for (auto& rx : receivers) {
      net::ChannelConfig clean;
      w.net.set_channel(w.sender_node, rx.node, std::move(clean));
    }
    std::vector<World::Rx*> ptrs;
    for (auto& rx : receivers) ptrs.push_back(&rx);
    w.converge(sender, ptrs, 0);

    for (auto& rx : receivers) {
      ASSERT_TRUE(rx.receiver->complete_through(0));
      EXPECT_EQ(rx.receiver->take_delivered(), sent);
    }
    if (mode == RepairMode::kArq) {
      // One distinct retransmission per receiver.
      EXPECT_EQ(sender.stats().retransmissions,
                static_cast<std::uint64_t>(kReceivers));
    } else {
      // Parity repair with aggregation: the six aggregated NACKs (each
      // needing one symbol) collapse into a single parity packet — the
      // paper's multicast FEC advantage, verbatim.
      EXPECT_LE(sender.stats().parity_packets, 2u);
      EXPECT_GE(sender.stats().parity_packets, 1u);
    }
  }
}

TEST(Reliable, DeliveryOrderAcrossRepairedGaps) {
  // Block 0 loses packets and completes only after repair; block 1 arrives
  // clean meanwhile. Delivery must still be 0 before 1.
  World w;
  auto rx = w.make_receiver("rx");
  std::vector<bool> trace(16, false);
  trace[2] = trace[3] = true;  // lose two packets of block 0
  net::ChannelConfig config;
  config.loss = std::make_shared<net::TraceLoss>(trace);
  w.net.set_channel(w.sender_node, rx.node, std::move(config));

  ReliableMulticastSender sender(w.sender_socket, w.group, 8,
                                 RepairMode::kParity);
  std::vector<Bytes> sent;
  for (int i = 0; i < 16; ++i) {
    sent.push_back(payload_for(i));
    sender.send(sent.back());
  }
  w.converge(sender, {&rx}, 1);

  EXPECT_EQ(rx.receiver->take_delivered(), sent);
  EXPECT_GE(rx.receiver->stats().recovered_via_parity, 1u);
}

TEST(Reliable, NackForUnknownBlockIsIgnored) {
  World w;
  auto rx_socket = w.net.open(w.net.add_node("stranger"));
  ReliableMulticastSender sender(w.sender_socket, w.group, 4,
                                 RepairMode::kArq);
  rx_socket->send_to(w.sender_socket->local(), Nack{999, 0, {0}}.serialize());
  rx_socket->send_to(w.sender_socket->local(), util::to_bytes("junk"));
  EXPECT_NO_THROW(sender.service());
  EXPECT_EQ(sender.stats().retransmissions, 0u);
  EXPECT_EQ(sender.stats().nacks_received, 1u);  // junk didn't parse
}

TEST(Reliable, ShortFinalBlockRepairable) {
  World w;
  auto rx = w.make_receiver("rx");
  std::vector<bool> trace(3, false);
  trace[1] = true;  // lose the middle packet of a 3-payload short block
  net::ChannelConfig config;
  config.loss = std::make_shared<net::TraceLoss>(trace);
  w.net.set_channel(w.sender_node, rx.node, std::move(config));

  ReliableMulticastSender sender(w.sender_socket, w.group, 8,
                                 RepairMode::kParity);
  std::vector<Bytes> sent;
  for (int i = 0; i < 3; ++i) {
    sent.push_back(payload_for(i));
    sender.send(sent.back());
  }
  sender.flush();
  w.converge(sender, {&rx}, 0);
  EXPECT_EQ(rx.receiver->take_delivered(), sent);
}

}  // namespace
}  // namespace rapidware::reliable
