// Dedicated coverage for core/endpoint.{h,cpp}: the bridge filters between
// detachable streams and the outside world. Exercises the EOF, partial-
// write, and close-while-blocked paths that the integration tests only hit
// incidentally.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "testing/fault_injector.h"
#include "testing/sequence_stream.h"
#include "util/bytes.h"

namespace rapidware {
namespace {

using core::ByteReaderEndpoint;
using core::ByteWriterEndpoint;
using core::CollectingPacketSink;
using core::FilterChain;
using core::PacketReaderEndpoint;
using core::PacketWriterEndpoint;
using core::QueuePacketSource;

/// ByteSink that records every write call (size sequence + content).
struct RecordingSink final : util::ByteSink {
  void write(util::ByteSpan in) override {
    data.insert(data.end(), in.begin(), in.end());
    write_sizes.push_back(in.size());
  }
  void flush() override { ++flushes; }

  util::Bytes data;
  std::vector<std::size_t> write_sizes;
  int flushes = 0;
};

/// ByteSink whose first write blocks until released; models a slow or
/// stuck downstream consumer.
class GatedSink final : public util::ByteSink {
 public:
  void write(util::ByteSpan in) override {
    std::unique_lock lk(mu_);
    ++writes_started_;
    started_cv_.notify_all();
    gate_cv_.wait(lk, [&] { return open_; });
    data_.insert(data_.end(), in.begin(), in.end());
  }

  void open() {
    std::lock_guard lk(mu_);
    open_ = true;
    gate_cv_.notify_all();
  }

  bool wait_first_write(std::int64_t timeout_ms) {
    std::unique_lock lk(mu_);
    return started_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                                [&] { return writes_started_ > 0; });
  }

  util::Bytes data() const {
    std::lock_guard lk(mu_);
    return data_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable gate_cv_;
  std::condition_variable started_cv_;
  bool open_ = false;
  int writes_started_ = 0;
  util::Bytes data_;
};

// ---------------------------------------------------------------------------
// EOF paths

TEST(Endpoint, ByteEndpointsCarryAFiniteStreamToEOF) {
  const std::uint64_t seed = 0xe0fULL;
  auto generator = std::make_shared<testing::SequenceGenerator>(seed, 10'000);
  auto checker = std::make_shared<testing::SequenceChecker>(seed);
  FilterChain chain(
      std::make_shared<ByteReaderEndpoint>("in", generator, 256, 1024),
      std::make_shared<ByteWriterEndpoint>("out", checker, 1024));
  chain.start();
  chain.drain_shutdown();

  EXPECT_EQ(generator->produced(), 10'000u);
  EXPECT_EQ(checker->received(), 10'000u);
  EXPECT_TRUE(checker->clean()) << checker->report();
}

TEST(Endpoint, EmptySourceReportsImmediateEOF) {
  auto generator = std::make_shared<testing::SequenceGenerator>(1, 0);
  auto sink = std::make_shared<RecordingSink>();
  FilterChain chain(std::make_shared<ByteReaderEndpoint>("in", generator),
                    std::make_shared<ByteWriterEndpoint>("out", sink));
  chain.start();
  chain.drain_shutdown();
  EXPECT_TRUE(sink->data.empty());
  EXPECT_EQ(sink->flushes, 1);  // EOF still flushes the sink exactly once
}

TEST(Endpoint, PacketEndpointsDeliverEverythingThenSignalEnd) {
  auto source = std::make_shared<QueuePacketSource>();
  auto sink = std::make_shared<CollectingPacketSink>();
  auto reader = std::make_shared<PacketReaderEndpoint>("in", source);
  auto writer = std::make_shared<PacketWriterEndpoint>("out", sink);
  FilterChain chain(reader, writer);
  chain.start();

  std::vector<util::Bytes> sent;
  for (std::uint32_t i = 0; i < 50; ++i) {
    sent.push_back(testing::make_stamped_packet(7, i, 32 + i));
    source->push(sent.back());
  }
  source->finish();
  ASSERT_TRUE(sink->wait_for(50));
  // end-of-stream reaches the sink once the chain closes the stream (the
  // reader endpoint exiting does not itself close its DOS).
  chain.shutdown();
  EXPECT_TRUE(sink->ended());
  EXPECT_EQ(sink->packets(), sent);
  EXPECT_EQ(reader->packets_read(), 50u);
  EXPECT_EQ(writer->packets_written(), 50u);
}

TEST(Endpoint, InterruptStopsAPacketReaderBlockedOnItsSource) {
  auto source = std::make_shared<QueuePacketSource>();
  auto sink = std::make_shared<CollectingPacketSink>();
  FilterChain chain(std::make_shared<PacketReaderEndpoint>("in", source),
                    std::make_shared<PacketWriterEndpoint>("out", sink));
  chain.start();
  // Nothing was ever pushed: the reader is blocked inside next_packet().
  // shutdown() interrupts it and must complete rather than hang.
  chain.shutdown();
  EXPECT_TRUE(sink->ended());
  EXPECT_EQ(sink->count(), 0u);
}

// ---------------------------------------------------------------------------
// Partial writes

TEST(Endpoint, FragmentedWritesReassembleByteExact) {
  // A fault injector fragments every sink write into random smaller calls;
  // the delivered byte sequence must be unchanged.
  const std::uint64_t seed = 0xf4a9ULL;
  auto inner = std::make_shared<RecordingSink>();
  auto faults = std::make_shared<testing::FaultInjector>(
      seed, testing::FaultPlan{.fragment_write_p = 1.0});
  auto sink = std::make_shared<testing::FaultyByteSink>(inner, faults);
  auto generator = std::make_shared<testing::SequenceGenerator>(seed, 8'192);
  FilterChain chain(
      std::make_shared<ByteReaderEndpoint>("in", generator, 512, 1024),
      std::make_shared<ByteWriterEndpoint>("out", sink, 1024));
  chain.start();
  chain.drain_shutdown();

  ASSERT_EQ(inner->data.size(), 8'192u);
  EXPECT_GT(inner->write_sizes.size(), 16u);  // fragmentation really happened
  testing::SequenceChecker verify(seed);
  verify.write(inner->data);
  EXPECT_TRUE(verify.clean()) << verify.report();
}

TEST(Endpoint, ShortReadsFromTheSourceNeverChangeTheStream) {
  const std::uint64_t seed = 0x5047ULL;
  auto generator = std::make_shared<testing::SequenceGenerator>(seed, 8'192);
  auto faults = std::make_shared<testing::FaultInjector>(
      seed, testing::FaultPlan{.short_read_p = 1.0});
  auto source = std::make_shared<testing::FaultyByteSource>(generator, faults);
  auto checker = std::make_shared<testing::SequenceChecker>(seed);
  FilterChain chain(std::make_shared<ByteReaderEndpoint>("in", source, 512),
                    std::make_shared<ByteWriterEndpoint>("out", checker));
  chain.start();
  chain.drain_shutdown();

  EXPECT_GT(faults->short_reads(), 0u);
  EXPECT_EQ(checker->received(), 8'192u);
  EXPECT_TRUE(checker->clean()) << checker->report();
}

// ---------------------------------------------------------------------------
// Close-while-blocked paths

TEST(Endpoint, CloseWhileWriterBlockedOnAStuckSinkUnblocksIt) {
  // The writer endpoint's sink is stuck; its ring fills; the upstream
  // writer blocks mid-write. Closing the upstream DOS must wake that
  // writer with BrokenPipe, and opening the sink must let the endpoint
  // drain the buffered prefix and exit on EOF.
  auto sink = std::make_shared<GatedSink>();
  auto endpoint = std::make_shared<ByteWriterEndpoint>("out", sink, 64);
  core::DetachableOutputStream dos;
  dos.connect(endpoint->dis());
  endpoint->start();

  std::atomic<bool> threw{false};
  std::thread writer([&] {
    util::Bytes big(64 * 1024);
    testing::fill_pattern(3, 0, big);
    try {
      dos.write(big);
    } catch (const core::BrokenPipe&) {
      threw.store(true);
    }
  });

  ASSERT_TRUE(sink->wait_first_write(10'000));  // endpoint wedged in sink
  // Give the ring time to fill so the writer is genuinely blocked.
  while (endpoint->dis().available() < 64) std::this_thread::yield();
  dos.close();
  writer.join();
  EXPECT_TRUE(threw.load());

  sink->open();      // unstick the sink
  endpoint->join();  // endpoint drains the prefix, sees EOF, exits

  // Whatever was delivered is a byte-exact prefix of what was written.
  const util::Bytes got = sink->data();
  testing::SequenceChecker verify(3);
  verify.write(got);
  EXPECT_TRUE(verify.clean()) << verify.report();
  EXPECT_FALSE(endpoint->running());
}

TEST(Endpoint, ClosingTheInputOfAWriterEndpointEndsItsLoop) {
  auto sink = std::make_shared<RecordingSink>();
  auto endpoint = std::make_shared<ByteWriterEndpoint>("out", sink);
  core::DetachableOutputStream dos;
  dos.connect(endpoint->dis());
  endpoint->start();
  // The endpoint is blocked in read_some on an empty ring. Abandoning the
  // reader side ends the loop (read_some returns 0).
  endpoint->dis().close();
  endpoint->join();
  EXPECT_FALSE(endpoint->running());
  EXPECT_EQ(sink->flushes, 1);
}

}  // namespace
}  // namespace rapidware
