// Parser robustness: every wire format in the system is fed random bytes,
// truncations of valid messages, and single-byte corruptions. The required
// behaviour is uniform — parse successfully or throw a typed exception;
// never crash, hang, or exhibit UB (run under sanitizers to enforce the
// latter). Proxies parse data that crossed a radio: this is not optional.
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>

#include "core/control.h"
#include "core/filter_chain.h"
#include "core/filter_registry.h"
#include "fec/fec_group.h"
#include "media/media_packet.h"
#include "media/wav.h"
#include "pavilion/leadership.h"
#include "pavilion/web.h"
#include "raplets/receiver_report.h"
#include "reliable/reliable_multicast.h"
#include "util/framing.h"
#include "util/rng.h"
#include "util/serial.h"

namespace rapidware {
namespace {

using util::Bytes;

/// Seed for randomized fuzz tests: fixed by default, overridable with
/// RW_FUZZ_SEED to replay a failure. Pair with log_seed() so any failing
/// run prints the exact seed to reproduce it.
std::uint64_t fuzz_seed(std::uint64_t fallback) {
  const char* v = std::getenv("RW_FUZZ_SEED");
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 0);
}

#define RW_LOG_SEED(seed)                                             \
  SCOPED_TRACE(::testing::Message()                                   \
               << "reproduce with RW_FUZZ_SEED=0x" << std::hex << (seed))

/// A named parser entry point: consumes bytes, may throw std::exception.
struct Parser {
  const char* name;
  std::function<void(util::ByteSpan)> parse;
};

const std::vector<Parser>& parsers() {
  static const std::vector<Parser> kParsers = {
      {"GroupHeader",
       [](util::ByteSpan in) {
         util::Reader r(in);
         fec::GroupHeader::decode_from(r);
       }},
      {"parse_symbol", [](util::ByteSpan in) { fec::parse_symbol(in); }},
      {"MediaPacket", [](util::ByteSpan in) { media::MediaPacket::parse(in); }},
      {"wav_decode", [](util::ByteSpan in) { media::wav_decode(in); }},
      {"FilterSpec",
       [](util::ByteSpan in) { core::FilterSpec::deserialize(in); }},
      {"FloorMessage",
       [](util::ByteSpan in) { pavilion::FloorMessage::parse(in); }},
      {"ResourcePacket",
       [](util::ByteSpan in) { pavilion::ResourcePacket::parse(in); }},
      {"ReceiverReport",
       [](util::ByteSpan in) { raplets::ReceiverReport::parse(in); }},
      {"Nack", [](util::ByteSpan in) { reliable::Nack::parse(in); }},
  };
  return kParsers;
}

/// Valid specimens for truncation/corruption fuzzing.
std::vector<std::pair<const char*, Bytes>> specimens() {
  std::vector<std::pair<const char*, Bytes>> out;
  {
    util::Writer w;
    fec::GroupHeader{42, 2, 4, 6, 322}.encode_to(w);
    w.raw(Bytes(322, 0xab));
    out.emplace_back("GroupHeader", w.take());
  }
  {
    media::MediaPacket p;
    p.seq = 7;
    p.timestamp_us = 140'000;
    p.payload = Bytes(64, 0x11);
    out.emplace_back("MediaPacket", p.serialize());
  }
  {
    media::AudioSource src;
    out.emplace_back("wav",
                     media::wav_encode({media::paper_audio_format(),
                                        src.read_frames(64)}));
  }
  out.emplace_back("FilterSpec",
                   core::FilterSpec{"fec-encode", {{"n", "6"}}}.serialize());
  out.emplace_back(
      "FloorMessage",
      pavilion::FloorMessage{pavilion::FloorMsg::kGrant, "alice", {1, 2}, 3}
          .serialize());
  out.emplace_back("ResourcePacket",
                   pavilion::ResourcePacket{"/a.html", "text/html",
                                            Bytes(128, 'x')}
                       .serialize());
  out.emplace_back("ReceiverReport",
                   raplets::ReceiverReport{"rx", 10, 12, 0.1, 99, 0.2}
                       .serialize());
  out.emplace_back("Nack", reliable::Nack{3, 2, {1, 5}}.serialize());
  return out;
}

TEST(Fuzz, RandomBytesNeverCrashAnyParser) {
  const std::uint64_t seed = fuzz_seed(0xf22);
  RW_LOG_SEED(seed);
  util::Rng rng(seed);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    for (const auto& parser : parsers()) {
      try {
        parser.parse(junk);
      } catch (const std::exception&) {
        // Typed failure is the contract.
      }
    }
  }
}

TEST(Fuzz, TruncationsOfValidMessagesNeverCrash) {
  for (const auto& [name, wire] : specimens()) {
    SCOPED_TRACE(name);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const util::ByteSpan cut(wire.data(), len);
      for (const auto& parser : parsers()) {
        try {
          parser.parse(cut);
        } catch (const std::exception&) {
        }
      }
    }
  }
}

TEST(Fuzz, SingleByteCorruptionsNeverCrash) {
  const std::uint64_t seed = fuzz_seed(0xc0de);
  RW_LOG_SEED(seed);
  util::Rng rng(seed);
  for (const auto& [name, wire] : specimens()) {
    SCOPED_TRACE(name);
    for (int trial = 0; trial < 200; ++trial) {
      Bytes mutated = wire;
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
      for (const auto& parser : parsers()) {
        try {
          parser.parse(mutated);
        } catch (const std::exception&) {
        }
      }
    }
  }
}

TEST(Fuzz, GroupDecoderSurvivesHostileStreams) {
  // Random bytes, corrupted FEC packets, and valid packets interleaved;
  // the decoder may throw per packet but must stay consistent.
  const std::uint64_t seed = fuzz_seed(0xdec0de);
  RW_LOG_SEED(seed);
  util::Rng rng(seed);
  fec::GroupEncoder encoder(6, 4);
  fec::GroupDecoder decoder(4);
  std::size_t delivered = 0;
  // Modest iteration count: corrupted headers can declare large (n, k)
  // pairs whose generator-matrix construction is O(k^3) — correct but slow.
  for (int i = 0; i < 500; ++i) {
    const auto kind = rng.next_below(3);
    if (kind == 0) {
      Bytes junk(rng.next_below(64));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
      try {
        decoder.add(junk);
      } catch (const std::exception&) {
      }
    } else {
      Bytes payload(rng.next_below(100) + 1);
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      for (auto& wire : encoder.add(payload)) {
        if (kind == 2 && !wire.empty()) {
          wire[rng.next_below(wire.size())] ^= 0x40;
        }
        try {
          delivered += decoder.add(wire).size();
        } catch (const std::exception&) {
        }
      }
    }
  }
  // The stream was mostly valid: a healthy fraction must have decoded.
  EXPECT_GT(delivered, 100u);
}

// Exhaustive single-bit corruption: for EVERY byte offset and EVERY bit,
// flip it and re-parse. Random corruption (above) samples this space;
// headers are small enough to cover it completely.

TEST(Fuzz, SerialRoundTripSurvivesEveryPossibleBitFlip) {
  // A Writer blob exercising every field type util::serial offers.
  util::Writer w;
  w.u8(0x7f);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.blob(Bytes(13, 0x5a));
  w.str("composable proxy filters");
  const Bytes wire = w.take();

  const auto read_all = [](util::ByteSpan in) {
    util::Reader r(in);
    (void)r.u8();
    (void)r.u16();
    (void)r.u32();
    (void)r.u64();
    (void)r.i64();
    (void)r.f64();
    (void)r.blob();
    (void)r.str();
    if (!r.done()) throw util::SerialError("trailing bytes");
  };
  read_all(wire);  // the pristine wire must parse

  for (std::size_t offset = 0; offset < wire.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE(::testing::Message() << "offset " << offset << " bit " << bit);
      Bytes mutated = wire;
      mutated[offset] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        read_all(mutated);  // may yield different values
      } catch (const std::exception&) {
        // Typed failure is the contract; crash/UB/hang is the bug.
      }
    }
  }
}

TEST(Fuzz, NackHeaderSurvivesEveryPossibleBitFlipAndStaysRoundTrippable) {
  const reliable::Nack original{0x01020304, 9, {0, 3, 7, 200}};
  const Bytes wire = original.serialize();
  ASSERT_EQ(reliable::Nack::parse(wire), original);

  for (std::size_t offset = 0; offset < wire.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE(::testing::Message() << "offset " << offset << " bit " << bit);
      Bytes mutated = wire;
      mutated[offset] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const reliable::Nack decoded = reliable::Nack::parse(mutated);
        // Whatever parsed must survive its own round trip: serialize and
        // re-parse to the identical value (no lossy/ambiguous decodings).
        EXPECT_EQ(reliable::Nack::parse(decoded.serialize()), decoded);
      } catch (const std::exception&) {
      }
    }
  }
}

TEST(Fuzz, GroupHeaderSurvivesEveryPossibleBitFlipAndStaysRoundTrippable) {
  util::Writer w;
  fec::GroupHeader{42, 2, 4, 6, 64}.encode_to(w);
  const Bytes wire = w.take();

  for (std::size_t offset = 0; offset < wire.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      SCOPED_TRACE(::testing::Message() << "offset " << offset << " bit " << bit);
      Bytes mutated = wire;
      mutated[offset] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        util::Reader r(mutated);
        const auto decoded = fec::GroupHeader::decode_from(r);
        util::Writer back;
        decoded.encode_to(back);
        util::Reader again(back.bytes());
        (void)fec::GroupHeader::decode_from(again);
      } catch (const std::exception&) {
      }
    }
  }
}

TEST(Fuzz, ControlServerSurvivesHostileRequests) {
  auto source = std::make_shared<core::NullFilter>("head");
  auto sink = std::make_shared<core::NullFilter>("tail");
  auto chain = std::make_shared<core::FilterChain>(source, sink);
  core::FilterRegistry registry;
  core::ControlServer server(chain, &registry);

  util::Rng rng(0x5e4e4);
  for (int trial = 0; trial < 3000; ++trial) {
    Bytes junk(rng.next_below(120));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes response = server.handle(junk);  // must never throw
    ASSERT_FALSE(response.empty());
  }
}

}  // namespace
}  // namespace rapidware
