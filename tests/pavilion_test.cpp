// Tests for the Pavilion substrate: leadership/floor control, the simulated
// web, resource packets, and collaborative browsing sessions — including a
// session whose wireless member is fed through a RAPIDware proxy.
#include <gtest/gtest.h>

#include <thread>

#include "filters/cache_filter.h"
#include "pavilion/leadership.h"
#include "pavilion/session.h"
#include "pavilion/web.h"
#include "proxy/proxy.h"
#include "util/serial.h"

namespace rapidware::pavilion {
namespace {

using util::Bytes;
using util::to_bytes;

// ---------------------------------------------------------------------------
// FloorMessage

TEST(FloorMessage, SerializationRoundTrips) {
  FloorMessage m{FloorMsg::kGrant, "alice", {3, 99}, 42};
  EXPECT_EQ(FloorMessage::parse(m.serialize()), m);
}

TEST(FloorMessage, RejectsUnknownType) {
  FloorMessage m{FloorMsg::kRequest, "x", {}, 0};
  Bytes wire = m.serialize();
  wire[0] = 9;
  EXPECT_THROW(FloorMessage::parse(wire), util::SerialError);
}

// ---------------------------------------------------------------------------
// FloorControl

struct FloorWorld {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 31};
  net::Address announce = net::multicast_group(50, 4100);

  struct Member {
    net::NodeId node;
    std::shared_ptr<net::SimSocket> socket;
    std::unique_ptr<FloorControl> floor;
  };

  Member make(const std::string& name, bool leader) {
    Member m;
    m.node = net.add_node(name);
    m.socket = net.open(m.node);
    m.floor = std::make_unique<FloorControl>(name, m.socket, announce, leader);
    m.floor->start();
    return m;
  }
};

TEST(FloorControl, InitialLeaderHoldsFloor) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  auto bob = w.make("bob", false);
  EXPECT_TRUE(alice.floor->is_leader());
  EXPECT_FALSE(bob.floor->is_leader());
  EXPECT_EQ(alice.floor->current_leader(), "alice");
  alice.floor->stop();
  bob.floor->stop();
}

TEST(FloorControl, RequestGrantTransfersFloor) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  auto bob = w.make("bob", false);
  auto carol = w.make("carol", false);

  ASSERT_TRUE(bob.floor->request_floor(alice.socket->local()));
  EXPECT_TRUE(bob.floor->is_leader());
  EXPECT_FALSE(alice.floor->is_leader());

  // Everyone learns the new leader via the multicast announcement; the
  // observers' service threads converge independently.
  for (int i = 0; i < 200 && (carol.floor->current_leader() != "bob" ||
                              alice.floor->current_leader() != "bob");
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(carol.floor->current_leader(), "bob");
  EXPECT_EQ(alice.floor->current_leader(), "bob");
  EXPECT_GT(bob.floor->leadership_seq(), 0u);

  alice.floor->stop();
  bob.floor->stop();
  carol.floor->stop();
}

TEST(FloorControl, RequestToNonLeaderTimesOut) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  auto bob = w.make("bob", false);
  auto carol = w.make("carol", false);
  EXPECT_FALSE(carol.floor->request_floor(bob.socket->local(), 100));
  EXPECT_FALSE(carol.floor->is_leader());
  alice.floor->stop();
  bob.floor->stop();
  carol.floor->stop();
}

TEST(FloorControl, RequestWhileAlreadyLeaderSucceedsImmediately) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  EXPECT_TRUE(alice.floor->request_floor(alice.socket->local(), 100));
  alice.floor->stop();
}

TEST(FloorControl, GrantPolicyCanRefuse) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  auto bob = w.make("bob", false);
  alice.floor->set_grant_policy([](const std::string&) { return false; });
  EXPECT_FALSE(bob.floor->request_floor(alice.socket->local(), 150));
  EXPECT_TRUE(alice.floor->is_leader());
  alice.floor->stop();
  bob.floor->stop();
}

TEST(FloorControl, LeadershipChainAcrossThreeMembers) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  auto bob = w.make("bob", false);
  auto carol = w.make("carol", false);

  ASSERT_TRUE(bob.floor->request_floor(alice.socket->local()));
  ASSERT_TRUE(carol.floor->request_floor(bob.socket->local()));
  EXPECT_TRUE(carol.floor->is_leader());
  EXPECT_FALSE(bob.floor->is_leader());
  // Sequence numbers strictly increase across hand-offs.
  EXPECT_GT(carol.floor->leadership_seq(), 1u);

  alice.floor->stop();
  bob.floor->stop();
  carol.floor->stop();
}

TEST(FloorControl, ChangeCallbackFires) {
  FloorWorld w;
  auto alice = w.make("alice", true);
  auto bob = w.make("bob", false);
  std::atomic<bool> saw_bob{false};
  alice.floor->set_on_leader_change([&](const std::string& who) {
    if (who == "bob") saw_bob = true;
  });
  ASSERT_TRUE(bob.floor->request_floor(alice.socket->local()));
  for (int i = 0; i < 100 && !saw_bob.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_bob.load());
  alice.floor->stop();
  bob.floor->stop();
}

// ---------------------------------------------------------------------------
// WebServer

TEST(Web, PutGetRoundTrips) {
  WebServer web;
  web.put("/logo.png", {"image/png", Bytes(100, 0x89)});
  const auto r = web.get("/logo.png");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->content_type, "image/png");
  EXPECT_EQ(r->body.size(), 100u);
}

TEST(Web, UnknownNonHtmlIs404) {
  WebServer web;
  EXPECT_FALSE(web.get("/missing.png").has_value());
}

TEST(Web, SynthesizesStableHtmlPages) {
  WebServer web;
  const auto a = web.get("/any/page.html");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->content_type, "text/html");
  EXPECT_GT(a->body.size(), 200u);
  EXPECT_EQ(web.get("/any/page.html"), a);  // repeat fetch identical
  EXPECT_EQ(web.requests(), 2u);
}

TEST(ResourcePacketTest, SerializationRoundTrips) {
  ResourcePacket p{"/x.html", "text/html", to_bytes("<html/>")};
  EXPECT_EQ(ResourcePacket::parse(p.serialize()), p);
}

// ---------------------------------------------------------------------------
// Collaborative session

struct SessionWorld {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 61};
  SessionGroups groups = SessionGroups::standard();
  WebServer web;
};

TEST(Session, LeaderNavigationReachesAllMembers) {
  SessionWorld w;
  SessionMember alice("alice", w.net, w.net.add_node("alice"), w.groups,
                      &w.web, true);
  SessionMember bob("bob", w.net, w.net.add_node("bob"), w.groups, &w.web);
  SessionMember carol("carol", w.net, w.net.add_node("carol"), w.groups,
                      &w.web);
  alice.start();
  bob.start();
  carol.start();

  ASSERT_TRUE(alice.navigate("/home.html"));
  EXPECT_TRUE(bob.wait_for_page("/home.html"));
  EXPECT_TRUE(carol.wait_for_page("/home.html"));
  EXPECT_EQ(bob.page("/home.html"), w.web.get("/home.html"));
  EXPECT_EQ(bob.urls_seen(), std::vector<std::string>{"/home.html"});
  // The leader records its own navigation too.
  EXPECT_TRUE(alice.page("/home.html").has_value());

  alice.stop();
  bob.stop();
  carol.stop();
}

TEST(Session, NonLeaderCannotNavigate) {
  SessionWorld w;
  SessionMember alice("alice", w.net, w.net.add_node("alice"), w.groups,
                      &w.web, true);
  SessionMember bob("bob", w.net, w.net.add_node("bob"), w.groups, &w.web);
  alice.start();
  bob.start();
  EXPECT_FALSE(bob.navigate("/home.html"));
  alice.stop();
  bob.stop();
}

TEST(Session, MissingResourceFails) {
  SessionWorld w;
  SessionMember alice("alice", w.net, w.net.add_node("alice"), w.groups,
                      &w.web, true);
  alice.start();
  EXPECT_FALSE(alice.navigate("/missing.png"));
  alice.stop();
}

TEST(Session, AssetsTravelWithThePage) {
  SessionWorld w;
  w.web.put("/style.css", {"text/css", Bytes(500, 'c')});
  SessionMember alice("alice", w.net, w.net.add_node("alice"), w.groups,
                      &w.web, true);
  SessionMember bob("bob", w.net, w.net.add_node("bob"), w.groups, &w.web);
  alice.start();
  bob.start();
  ASSERT_TRUE(alice.navigate("/home.html", {"/style.css"}));
  EXPECT_TRUE(bob.wait_for_page("/style.css"));
  alice.stop();
  bob.stop();
}

TEST(Session, FloorHandoffChangesWhoCanNavigate) {
  SessionWorld w;
  SessionMember alice("alice", w.net, w.net.add_node("alice"), w.groups,
                      &w.web, true);
  SessionMember bob("bob", w.net, w.net.add_node("bob"), w.groups, &w.web);
  alice.start();
  bob.start();

  ASSERT_TRUE(bob.floor().request_floor(alice.control_address()));
  EXPECT_TRUE(bob.navigate("/bobs-page.html"));
  EXPECT_FALSE(alice.navigate("/alices-page.html"));
  EXPECT_TRUE(alice.wait_for_page("/bobs-page.html"));

  alice.stop();
  bob.stop();
}

TEST(Session, ProxyFedWirelessMemberReceivesContents) {
  // The handheld cannot join the wired data group; a RAPIDware proxy joins
  // on its behalf and relays over the wireless hop (Figure 2's shape), with
  // a cache-expand present to match a cache-pack on the proxy.
  SessionWorld w;
  const auto proxy_node = w.net.add_node("proxy");
  const auto handheld_node = w.net.add_node("handheld");

  proxy::ProxyConfig pc;
  pc.ingress_port = w.groups.data.port;
  pc.ingress_group = w.groups.data;
  pc.egress_dst = {handheld_node, 4600};
  proxy::Proxy proxy(w.net, proxy_node, pc);
  proxy.start();

  SessionMember alice("alice", w.net, w.net.add_node("alice"), w.groups,
                      &w.web, true);
  auto handheld_feed = w.net.open(handheld_node, 4600);
  // A proxy-fed member does not join the wired data group at all — every
  // session byte it sees travelled through the proxy.
  SessionMember dave("dave", w.net, handheld_node, w.groups, &w.web,
                     /*initial_leader=*/false, handheld_feed);
  alice.start();
  dave.start();

  ASSERT_TRUE(alice.navigate("/shared.html"));
  EXPECT_TRUE(dave.wait_for_page("/shared.html"));
  EXPECT_EQ(dave.page("/shared.html"), w.web.get("/shared.html"));

  alice.stop();
  dave.stop();
  proxy.shutdown();
}

}  // namespace
}  // namespace rapidware::pavilion
