// Tests for the obs metrics library (src/obs/): metric semantics, registry
// naming/lifetime, the FilterChain binding, and — the part that matters
// under -DRW_SANITIZE=thread — concurrent snapshot readers racing live
// chain reconfiguration schedules via the StressDriver.
//
// Value assertions are gated on RW_OBS_ENABLED so the suite still passes
// (and still exercises registry naming and lifetime) in a -DRW_OBS=OFF
// build, where every mutator is a no-op.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "obs/metrics.h"
#include "obs/stats_log.h"
#include "testing/stress.h"
#include "util/rng.h"

namespace rapidware {
namespace {

std::string find_value(const obs::Snapshot& snap, const std::string& name) {
  for (const auto& e : snap) {
    if (e.name == name) return e.value;
  }
  return "<missing: " + name + ">";
}

bool has_entry(const obs::Snapshot& snap, const std::string& name) {
  for (const auto& e : snap) {
    if (e.name == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Metric semantics

TEST(ObsMetrics, CounterAccumulates) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
#if RW_OBS_ENABLED
  EXPECT_EQ(c.value(), 42u);
#else
  EXPECT_EQ(c.value(), 0u);  // compiled out: mutators are no-ops
#endif
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  obs::Gauge g;
  g.set(10);
  g.add(-3);
#if RW_OBS_ENABLED
  EXPECT_EQ(g.value(), 7);
#endif
}

TEST(ObsMetrics, HistogramBucketsAndPercentiles) {
  obs::Histogram h({10.0, 100.0, 1000.0});
  for (int i = 0; i < 90; ++i) h.observe(5.0);
  for (int i = 0; i < 9; ++i) h.observe(50.0);
  h.observe(5000.0);  // lands in the +inf bucket
#if RW_OBS_ENABLED
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 90 * 5.0 + 9 * 50.0 + 5000.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(95), 100.0);
  // The +inf bucket reports the last finite bound.
  EXPECT_DOUBLE_EQ(h.percentile(99.9), 1000.0);
#endif

  obs::Snapshot snap;
  h.collect("lat", snap);
  EXPECT_TRUE(has_entry(snap, "lat.count"));
  EXPECT_TRUE(has_entry(snap, "lat.sum"));
  EXPECT_TRUE(has_entry(snap, "lat.p50"));
  EXPECT_TRUE(has_entry(snap, "lat.p99"));
  EXPECT_TRUE(has_entry(snap, "lat.le.10"));
  EXPECT_TRUE(has_entry(snap, "lat.le.1000"));
#if RW_OBS_ENABLED
  EXPECT_EQ(find_value(snap, "lat.count"), "100");
  EXPECT_EQ(find_value(snap, "lat.le.10"), "90");    // cumulative
  EXPECT_EQ(find_value(snap, "lat.le.100"), "99");
  EXPECT_EQ(find_value(snap, "lat.le.1000"), "99");
#endif
}

TEST(ObsMetrics, HistogramRejectsBadBounds) {
  EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(ObsMetrics, TraceRingBoundedAndOrdered) {
  obs::TraceRing ring(3);
  for (int i = 0; i < 5; ++i) ring.record("ev" + std::to_string(i));
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);  // capacity bound
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(events[0].text, "ev2");  // oldest retained
  EXPECT_EQ(events[2].text, "ev4");
  EXPECT_LT(events[0].seq, events[2].seq);  // seqs never reused

  obs::Snapshot snap;
  ring.collect("events", snap);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "events." + std::to_string(events[0].seq));
  EXPECT_NE(snap[0].value.find("ev2"), std::string::npos);
}

TEST(ObsMetrics, FormatValueIntegralVsFractional) {
  EXPECT_EQ(obs::format_value(42.0), "42");
  EXPECT_EQ(obs::format_value(-3.0), "-3");
  EXPECT_EQ(obs::format_value(0.5), "0.5");
}

// ---------------------------------------------------------------------------
// Registry naming, lifetime, rendering

TEST(ObsRegistry, GetOrCreateReusesSameNameAndType) {
  obs::Registry reg;
  auto a = reg.counter("x/hits");
  a->add(5);
  auto b = reg.counter("x/hits");
  EXPECT_EQ(a.get(), b.get());  // re-binding resumes the same counter
  // Same name, different type: last writer wins.
  auto g = reg.gauge("x/hits");
  EXPECT_NE(static_cast<void*>(g.get()), static_cast<void*>(a.get()));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsRegistry, SnapshotFiltersByPrefix) {
  obs::Registry reg;
  reg.counter("p1/chain/inserts");
  reg.counter("p1/retargets");
  reg.counter("p2/retargets");

  EXPECT_EQ(reg.snapshot().size(), 3u);
  EXPECT_EQ(reg.snapshot("p1").size(), 2u);
  EXPECT_EQ(reg.snapshot("p1/chain").size(), 1u);
  // Exact-name match counts too; prefix match is per path segment, so "p"
  // matches nothing.
  EXPECT_EQ(reg.snapshot("p1/retargets").size(), 1u);
  EXPECT_EQ(reg.snapshot("p").size(), 0u);

  // Sorted by name.
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap[0].name, "p1/chain/inserts");
  EXPECT_EQ(snap[2].name, "p2/retargets");
}

TEST(ObsRegistry, DropRemovesSubtree) {
  obs::Registry reg;
  reg.counter("p1/a");
  reg.counter("p1/b/c");
  reg.counter("p2/a");
  reg.drop("p1");
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(has_entry(reg.snapshot(), "p2/a"));
}

TEST(ObsRegistry, AttachSharesExternallyOwnedMetric) {
  obs::Registry reg;
  auto owned = std::make_shared<obs::Counter>();
  owned->add(7);
  reg.attach("fec/groups_encoded", owned);
#if RW_OBS_ENABLED
  EXPECT_EQ(find_value(reg.snapshot(), "fec/groups_encoded"), "7");
#else
  EXPECT_TRUE(has_entry(reg.snapshot(), "fec/groups_encoded"));
#endif
}

TEST(ObsRegistry, CallbackGaugeReadsLiveValue) {
  obs::Registry reg;
  std::atomic<int> live{3};
  reg.callback("depth", [&live] { return static_cast<double>(live.load()); });
  EXPECT_EQ(find_value(reg.snapshot(), "depth"), "3");
  live = 9;
  EXPECT_EQ(find_value(reg.snapshot(), "depth"), "9");
}

TEST(ObsRegistry, ScopeBuildsSlashPaths) {
  obs::Registry reg;
  obs::Scope scope(reg, "proxy/chain");
  EXPECT_EQ(scope.full("inserts"), "proxy/chain/inserts");
  scope.child("fec-encode").counter("packets_in");
  EXPECT_TRUE(has_entry(reg.snapshot(), "proxy/chain/fec-encode/packets_in"));
  scope.drop();
  EXPECT_EQ(reg.size(), 0u);
}

TEST(ObsRegistry, RenderEmitsKeyValueLines) {
  obs::Registry reg;
  reg.counter("a")->add(1);
  reg.gauge("b")->set(2);
  const std::string text = obs::render(reg.snapshot());
#if RW_OBS_ENABLED
  EXPECT_EQ(text, "a=1\nb=2\n");
#else
  EXPECT_EQ(text, "a=0\nb=0\n");
#endif
}

// ---------------------------------------------------------------------------
// Chain binding: bind_metrics() publishes, reconfig maintains, unbind drops.

struct BoundChain {
  std::shared_ptr<core::QueuePacketSource> source =
      std::make_shared<core::QueuePacketSource>();
  std::shared_ptr<core::CollectingPacketSink> sink =
      std::make_shared<core::CollectingPacketSink>();
  obs::Registry reg;
  std::shared_ptr<core::FilterChain> chain;

  BoundChain() {
    chain = std::make_shared<core::FilterChain>(
        std::make_shared<core::PacketReaderEndpoint>("in", source),
        std::make_shared<core::PacketWriterEndpoint>("out", sink));
    chain->bind_metrics(reg, "p/chain");
    chain->start();
  }
  ~BoundChain() {
    source->finish();
    chain->shutdown();
  }
};

TEST(ObsChain, BindPublishesEndpointAndChainMetrics) {
  BoundChain b;
  const auto snap = b.reg.snapshot("p/chain");
  EXPECT_TRUE(has_entry(snap, "p/chain/filters"));
  EXPECT_TRUE(has_entry(snap, "p/chain/inserts"));
  EXPECT_TRUE(has_entry(snap, "p/chain/in/packets"));
  EXPECT_TRUE(has_entry(snap, "p/chain/out/packets"));
  EXPECT_EQ(find_value(snap, "p/chain/filters"), "0");
}

TEST(ObsChain, InsertRemoveMaintainPerFilterScopes) {
  BoundChain b;
  b.chain->insert(std::make_shared<core::NullFilter>("nf"), 0);
  // Duplicate leaf names get #2 suffixes instead of colliding.
  b.chain->insert(std::make_shared<core::NullFilter>("nf"), 1);

  auto snap = b.reg.snapshot("p/chain");
  EXPECT_TRUE(has_entry(snap, "p/chain/nf/bytes_in"));
  EXPECT_TRUE(has_entry(snap, "p/chain/nf#2/bytes_in"));
#if RW_OBS_ENABLED
  EXPECT_EQ(find_value(snap, "p/chain/filters"), "2");
  EXPECT_EQ(find_value(snap, "p/chain/inserts"), "2");
#endif

  b.chain->remove(1);
  snap = b.reg.snapshot("p/chain");
#if RW_OBS_ENABLED
  EXPECT_EQ(find_value(snap, "p/chain/filters"), "1");
#endif
  EXPECT_TRUE(has_entry(snap, "p/chain/nf/bytes_in"));
  EXPECT_FALSE(has_entry(snap, "p/chain/nf#2/bytes_in"));
#if RW_OBS_ENABLED
  EXPECT_EQ(find_value(snap, "p/chain/removes"), "1");
#endif
}

TEST(ObsChain, TrafficShowsUpInFilterCounters) {
  BoundChain b;
  b.chain->insert(std::make_shared<core::NullFilter>("nf"), 0);
  util::Bytes packet(64, 0x5a);
  for (int i = 0; i < 10; ++i) b.source->push(packet);
  ASSERT_TRUE(b.sink->wait_for(10));

  const auto snap = b.reg.snapshot("p/chain");
  EXPECT_EQ(find_value(snap, "p/chain/out/packets"), "10");
#if RW_OBS_ENABLED
  // A pass-through byte filter: at least the framed payload in, and
  // byte-in == byte-out.
  const std::string in = find_value(snap, "p/chain/nf/bytes_in");
  EXPECT_EQ(in, find_value(snap, "p/chain/nf/bytes_out"));
  EXPECT_GE(std::stoull(in), 10u * 64u);
#endif
}

TEST(ObsChain, EventsTraceRecordsReconfiguration) {
  BoundChain b;
  b.chain->insert(std::make_shared<core::NullFilter>("nf"), 0);
  b.chain->remove(0);
  const std::string text = obs::render(b.reg.snapshot("p/chain/events"));
  EXPECT_NE(text.find("start"), std::string::npos);
  EXPECT_NE(text.find("insert nf @0"), std::string::npos);
  EXPECT_NE(text.find("remove nf @0"), std::string::npos);
}

TEST(ObsChain, LiveSpliceLatencyIsObserved) {
  BoundChain b;
  b.chain->insert(std::make_shared<core::NullFilter>("nf"), 0);
#if RW_OBS_ENABLED
  // Splices on a started chain are timed into the reconfig histogram.
  EXPECT_EQ(find_value(b.reg.snapshot("p/chain/reconfig_us"),
                       "p/chain/reconfig_us.count"),
            "1");
#endif
}

TEST(ObsChain, UnbindDropsEverything) {
  BoundChain b;
  b.chain->insert(std::make_shared<core::NullFilter>("nf"), 0);
  b.chain->unbind_metrics();
  EXPECT_EQ(b.reg.size(), 0u);
  // Rebinding republishes the current membership.
  b.chain->bind_metrics(b.reg, "p2/chain");
  EXPECT_TRUE(has_entry(b.reg.snapshot(), "p2/chain/nf/bytes_in"));
}

// ---------------------------------------------------------------------------
// Stats-log sink

TEST(ObsStatsLog, PeriodicallyEmitsAndFlushesOnStop) {
  obs::Registry reg;
  reg.counter("tick")->add(3);
  std::mutex mu;
  std::vector<std::string> emitted;
  {
    obs::StatsLogSink sink(reg, "", std::chrono::milliseconds(5),
                           [&](const std::string& text) {
                             std::lock_guard lk(mu);
                             emitted.push_back(text);
                           });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }  // dtor stops and emits one final snapshot
  std::lock_guard lk(mu);
  ASSERT_FALSE(emitted.empty());
#if RW_OBS_ENABLED
  EXPECT_NE(emitted.back().find("tick=3"), std::string::npos);
#endif
}

// Regression: stop() used to fast-path on `stopped_`, which was only set
// *after* join() — so two concurrent stop() callers could both reach
// thread_.join() on the same std::thread (undefined behaviour; a crash
// under libstdc++'s debug assertions). Now exactly one caller joins and the
// rest block until the logging thread is gone. Run under TSan in CI.
TEST(ObsStatsLog, ConcurrentStopJoinsExactlyOnce) {
  for (int round = 0; round < 20; ++round) {
    obs::Registry reg;
    std::atomic<int> emits{0};
    obs::StatsLogSink sink(reg, "", std::chrono::milliseconds(1),
                           [&](const std::string&) {
                             emits.fetch_add(1, std::memory_order_relaxed);
                           });
    std::vector<std::thread> stoppers;
    stoppers.reserve(4);
    for (int i = 0; i < 4; ++i) {
      stoppers.emplace_back([&] { sink.stop(); });
    }
    for (auto& t : stoppers) t.join();
    // Every stop() returned only after the thread exited, and the final
    // snapshot was emitted exactly once.
    EXPECT_GE(emits.load(), 1);
  }
}

// ---------------------------------------------------------------------------
// Concurrency: the registry's documented contract is writers never block
// and snapshot readers are safe against concurrent create/drop. Run under
// -DRW_SANITIZE=thread these are the suite's race detectors.

TEST(ObsConcurrency, SnapshotRacesCreateMutateDrop) {
  obs::Registry reg;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    auto c = reg.counter("w/hits");
    while (!stop.load(std::memory_order_acquire)) c->add();
  });
  std::thread churner([&] {
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      obs::Scope scope(reg, "churn/" + std::to_string(i % 7));
      scope.counter("c")->add();
      scope.gauge("g")->set(i);
      scope.histogram("h", {1.0, 10.0})->observe(i % 20);
      scope.drop();
      ++i;
    }
  });
  std::thread reader([&] {
    std::size_t entries = 0;
    while (!stop.load(std::memory_order_acquire)) {
      entries += reg.snapshot().size();
      entries += reg.snapshot("churn").size();
    }
    EXPECT_GT(entries, 0u);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_release);
  writer.join();
  churner.join();
  reader.join();

  EXPECT_TRUE(has_entry(reg.snapshot(), "w/hits"));
}

TEST(ObsConcurrency, DropIsALifetimeBarrierForCallbacks) {
  // A callback reading an object through a raw pointer must be safe to
  // retire via drop(): once drop() returns, no snapshot can still be
  // running the callback. Destroying the target right after drop() is the
  // exact pattern FilterChain/Proxy teardown relies on.
  obs::Registry reg;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)reg.snapshot();
    }
  });
  for (int round = 0; round < 200; ++round) {
    auto target = std::make_unique<std::atomic<int>>(round);
    auto* raw = target.get();
    reg.callback("victim", [raw] { return static_cast<double>(raw->load()); });
    std::this_thread::yield();
    reg.drop("victim");
    target.reset();  // must be safe: no collector can still hold `raw`
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

// The integration stressor: seeded reconfiguration schedules (insert /
// remove / reorder / splice / set_param under fault injection) run with the
// chain bound to a shared registry while reader threads snapshot it
// continuously. TSan turns any unlocked path in the chain<->registry
// binding into a failure; the byte-exactness oracle still applies.
TEST(ObsConcurrency, StressScheduleSweepUnderSnapshotReaders) {
  obs::Registry reg;
  testing::StressOptions opts;
  opts.schedules = 40;
  opts.metrics = &reg;
  opts.metrics_scope = "stress/chain";
  testing::StressDriver driver(opts);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> snapshots{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = reg.snapshot("stress");
        (void)obs::render(snap);
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto summary = driver.run_all();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(summary.failures, 0) << summary.describe();
  EXPECT_EQ(summary.schedules_run, opts.schedules);
  EXPECT_GT(snapshots.load(), 0u);
  // Every schedule's chain unbinds (drops its whole scope) as it tears
  // down, so nothing — in particular no per-filter callback over a dead
  // filter — may survive the sweep.
  for (const auto& e : reg.snapshot("stress")) {
    ADD_FAILURE() << "leaked metric after chain teardown: " << e.name;
  }
}

}  // namespace
}  // namespace rapidware
