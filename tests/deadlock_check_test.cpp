// Tests for the runtime deadlock-freedom checker (src/util/deadlock.h),
// compiled only under -DRW_DEADLOCK_CHECK=ON (tests/CMakeLists.txt gates the
// target on the option).
//
// The death tests each build a small intentional violation — an ABBA cycle,
// a rank inversion, a same-rank pair, a reentrant acquire — and assert the
// process aborts with BOTH conflicting acquisition sites in the message,
// because an abort that names only one side sends the reader grepping. The
// stress test then proves the checker is safe and cheap in the steady
// state: concurrent threads hammering a ranked nest stay TSan-clean (the
// global graph mutex is only taken on first sight of an edge), and a
// chain-shaped workload with the checker enabled stays within 10% of the
// same workload with it disabled via the set_enabled() gate.
#include <gtest/gtest-death-test.h>
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <algorithm>
#include <limits>
#include <thread>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"

#if !defined(RW_DEADLOCK_CHECK) || !RW_DEADLOCK_CHECK
#error "deadlock_check_test requires -DRW_DEADLOCK_CHECK=ON"
#endif

#include "util/deadlock.h"

namespace rapidware {
namespace {

// Death tests fork the whole program fresh (threadsafe style, set in main
// below), so each child starts with an empty acquisition graph and the
// violations below cannot contaminate one another or the parent.

TEST(DeadlockCheckDeathTest, AbbaCycleAbortsWithBothSites) {
  // Unranked locks: only the order graph can catch these, which is the
  // point — rank discipline must not be a prerequisite for cycle detection.
  EXPECT_DEATH(([] {
        rw::Mutex a{"test/abba_a", rw::lockrank::kUnranked};
        rw::Mutex b{"test/abba_b", rw::lockrank::kUnranked};
        {
          rw::MutexLock la(a);
          rw::MutexLock lb(b);  // records test/abba_a -> test/abba_b
        }
        {
          rw::MutexLock lb(b);
          rw::MutexLock la(a);  // closes the cycle: aborts here
        }
      }()),
      "LOCK ORDER CYCLE.*test/abba_b.*test/abba_a");
}

TEST(DeadlockCheckDeathTest, RankInversionAbortsWithBothSites) {
  EXPECT_DEATH(([] {
        rw::Mutex low{"test/inv_low", 100};
        rw::Mutex high{"test/inv_high", 200};
        rw::MutexLock lh(high);
        rw::MutexLock ll(low);  // rank 100 while holding 200: aborts
      }()),
      "RANK INVERSION.*test/inv_low.*test/inv_high");
}

TEST(DeadlockCheckDeathTest, SameRankPairAborts) {
  // Two locks sharing a rank have no defined order between them; acquiring
  // one under the other is flagged as a tie rather than silently allowed.
  EXPECT_DEATH(([] {
        rw::Mutex first{"test/tie_first", 300};
        rw::Mutex second{"test/tie_second", 300};
        rw::MutexLock lf(first);
        rw::MutexLock ls(second);
      }()),
      "RANK TIE.*test/tie_second.*test/tie_first");
}

TEST(DeadlockCheckDeathTest, ReentrantAcquireAborts) {
  EXPECT_DEATH(([] {
        rw::Mutex mu{"test/reentrant", rw::lockrank::kUnranked};
        rw::MutexLock outer(mu);
        mu.lock();  // same thread, same mutex: guaranteed deadlock
      }()),
      "REENTRANT ACQUIRE.*test/reentrant");
}

// ---------------------------------------------------------------------------
// Non-fatal behaviour: bookkeeping, recorded edges, try_lock exemption.

TEST(DeadlockCheck, HeldCountTracksScopes) {
  rw::Mutex a{"test/held_a", 100};
  rw::Mutex b{"test/held_b", 200};
  EXPECT_EQ(rw::deadlock::held_count(), 0u);
  {
    rw::MutexLock la(a);
    EXPECT_EQ(rw::deadlock::held_count(), 1u);
    {
      rw::MutexLock lb(b);
      EXPECT_EQ(rw::deadlock::held_count(), 2u);
    }
    EXPECT_EQ(rw::deadlock::held_count(), 1u);
  }
  EXPECT_EQ(rw::deadlock::held_count(), 0u);
}

TEST(DeadlockCheck, EdgesSnapshotRecordsOrderWithSites) {
  rw::deadlock::reset_for_test();
  rw::Mutex outer{"test/edge_outer", 100};
  rw::Mutex inner{"test/edge_inner", 200};
  {
    rw::MutexLock lo(outer);
    rw::MutexLock li(inner);
  }
  bool found = false;
  for (const auto& e : rw::deadlock::edges_snapshot()) {
    if (e.from == "test/edge_outer" && e.to == "test/edge_inner") {
      found = true;
      EXPECT_NE(e.from_site.find("deadlock_check_test"), std::string::npos);
      EXPECT_NE(e.to_site.find("deadlock_check_test"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DeadlockCheck, TryLockIsExemptFromOrdering) {
  // try_lock cannot block, so acquiring "against" the rank order via
  // try_lock must not abort — but the lock still lands on the held stack.
  rw::Mutex low{"test/try_low", 100};
  rw::Mutex high{"test/try_high", 200};
  rw::MutexLock lh(high);
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(rw::deadlock::held_count(), 2u);
  low.unlock();
  EXPECT_EQ(rw::deadlock::held_count(), 1u);
}

TEST(DeadlockCheck, CondVarWaitReleasesAndReacquires) {
  // The CV wait drops the mutex from the held stack while sleeping, so a
  // notifier thread can acquire the same mutex without tripping any check,
  // and the reacquire lands back via the check-free post_acquire path.
  rw::Mutex mu{"test/cv_mu", 100};
  rw::CondVar cv;
  bool ready = false;  // guarded by mu (attribute syntax is members-only)
  std::thread notifier([&] {
    rw::MutexLock lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    rw::MutexLock lk(mu);
    cv.wait(mu, [&] {
      mu.assert_held();
      return ready;
    });
    EXPECT_EQ(rw::deadlock::held_count(), 1u);
  }
  notifier.join();
  EXPECT_EQ(rw::deadlock::held_count(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrency: the checker itself must not introduce races or serialize the
// data plane. Run under -DRW_SANITIZE=thread this is the TSan proof; in any
// build it exercises the first-sight graph path against the thread-local
// edge-cache fast path from many threads at once.

TEST(DeadlockCheck, ConcurrentNestedAcquisitionIsCleanAndParallel) {
  rw::Mutex table{"test/stress_table", 100};
  rw::Mutex chain{"test/stress_chain", 200};
  rw::Mutex pool{"test/stress_pool", 300};
  std::vector<std::uint64_t> sums(4, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t local = 0;
      for (int i = 0; i < 20'000; ++i) {
        rw::MutexLock lt(table);
        rw::MutexLock lc(chain);
        rw::MutexLock lp(pool);
        local += static_cast<std::uint64_t>(i);
      }
      sums[static_cast<std::size_t>(t)] = local;
      EXPECT_EQ(rw::deadlock::held_count(), 0u);
    });
  }
  for (auto& th : threads) th.join();
  for (const auto s : sums) EXPECT_EQ(s, 199'990'000u);
}

// ---------------------------------------------------------------------------
// Overhead: a chain-shaped workload (three ranked acquisitions per packet,
// plus per-packet byte work the way a real filter touches its payload) with
// the checker ENABLED must stay within 10% of the identical workload with
// the checker gated off via set_enabled(). Interleaved best-of-N trials so
// a scheduler hiccup in one trial cannot fail the comparison.

std::uint64_t run_chain_workload(rw::Mutex& ingress, rw::Mutex& filter,
                                 rw::Mutex& egress,
                                 std::vector<std::uint8_t>& payload,
                                 int packets) {
  std::uint64_t checksum = 0;
  for (int i = 0; i < packets; ++i) {
    rw::MutexLock li(ingress);
    rw::MutexLock lf(filter);
    for (auto& b : payload) b = static_cast<std::uint8_t>(b + 1);
    rw::MutexLock le(egress);
    for (const auto b : payload) checksum += b;
  }
  return checksum;
}

TEST(DeadlockCheck, CheckerOverheadWithinTenPercent) {
  rw::Mutex ingress{"test/bench_ingress", 100};
  rw::Mutex filter{"test/bench_filter", 200};
  rw::Mutex egress{"test/bench_egress", 300};
  // A media-sized payload (one MTU-spanning frame): per-packet byte work is
  // what real filters do between acquisitions, and the 10% bound is about
  // chain throughput, not raw lock/unlock latency.
  std::vector<std::uint8_t> payload(4096, 1);
  constexpr int kPackets = 5'000;
  constexpr int kTrials = 5;
  using clock = std::chrono::steady_clock;

  // Warm both paths once: first-sight edges go through the global graph
  // mutex; the measured trials should see only the thread-local cache.
  run_chain_workload(ingress, filter, egress, payload, 100);
  rw::deadlock::set_enabled(false);
  run_chain_workload(ingress, filter, egress, payload, 100);
  rw::deadlock::set_enabled(true);

  std::uint64_t sink = 0;
  auto timed_ns = [&](bool checker_on) {
    rw::deadlock::set_enabled(checker_on);
    const auto t0 = clock::now();
    sink += run_chain_workload(ingress, filter, egress, payload, kPackets);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                t0)
        .count();
  };

  // Interleave off/on trials and compare the best of each, so a scheduler
  // hiccup or frequency shift lands on both sides, not just one.
  std::int64_t off_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t on_ns = std::numeric_limits<std::int64_t>::max();
  for (int trial = 0; trial < kTrials; ++trial) {
    off_ns = std::min(off_ns, timed_ns(false));
    on_ns = std::min(on_ns, timed_ns(true));
  }
  rw::deadlock::set_enabled(true);
  ASSERT_NE(sink, 0u);  // keep the workload observable

  RecordProperty("checker_off_ns", std::to_string(off_ns));
  RecordProperty("checker_on_ns", std::to_string(on_ns));
  EXPECT_LE(static_cast<double>(on_ns), static_cast<double>(off_ns) * 1.10)
      << "checker-on " << on_ns << "ns vs checker-off " << off_ns << "ns";
}

}  // namespace
}  // namespace rapidware

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Fork-and-rerun death tests: the child re-executes from main with a
  // fresh acquisition graph, so intentional violations cannot leak state.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  return RUN_ALL_TESTS();
}
