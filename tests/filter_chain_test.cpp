// Tests for Filter, endpoints, and FilterChain: lifecycle, hot insertion /
// removal / reordering on a running stream, flush-on-detach, and the
// end-to-end integrity property under randomized chain mutations.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/control.h"
#include "core/endpoint.h"
#include "core/filter.h"
#include "core/filter_chain.h"
#include "core/filter_registry.h"
#include "util/buffer_pool.h"
#include "util/rng.h"
#include "util/serial.h"

namespace rapidware::core {
namespace {

using util::Bytes;
using util::to_bytes;
using util::to_string;

/// Packet filter that appends a tag byte to every packet, so tests can
/// verify which filters a packet traversed and in which order.
class TagFilter final : public PacketFilter {
 public:
  explicit TagFilter(std::uint8_t tag)
      : PacketFilter("tag-" + std::to_string(tag)), tag_(tag) {}

 protected:
  void on_packet(Bytes packet) override {
    packet.push_back(tag_);
    emit(packet);
  }

 private:
  std::uint8_t tag_;
};

/// Packet filter that buffers packets into groups of `k` and emits them only
/// when the group fills (or on flush) — the FEC encoder's buffering shape.
class GroupingFilter final : public PacketFilter {
 public:
  explicit GroupingFilter(std::size_t k) : PacketFilter("group"), k_(k) {}

 protected:
  void on_packet(Bytes packet) override {
    held_.push_back(std::move(packet));
    if (held_.size() == k_) emit_held();
  }

  void on_flush() override { emit_held(); }

 private:
  void emit_held() {
    for (auto& p : held_) emit(p);
    held_.clear();
  }

  std::size_t k_;
  std::vector<Bytes> held_;
};

/// Byte filter that uppercases ASCII.
class UppercaseFilter final : public ByteFilter {
 public:
  UppercaseFilter() : ByteFilter("upper") {}

 protected:
  Bytes process(Bytes in) override {
    for (auto& b : in) {
      if (b >= 'a' && b <= 'z') b = static_cast<std::uint8_t>(b - 'a' + 'A');
    }
    return in;
  }
};

Bytes numbered_packet(std::uint32_t n, std::size_t extra = 0) {
  util::Writer w;
  w.u32(n);
  for (std::size_t i = 0; i < extra; ++i) w.u8(static_cast<std::uint8_t>(i));
  return w.take();
}

std::uint32_t packet_number(const Bytes& packet) {
  util::Reader r(packet);
  return r.u32();
}

struct Harness {
  std::shared_ptr<QueuePacketSource> source =
      std::make_shared<QueuePacketSource>();
  std::shared_ptr<CollectingPacketSink> sink =
      std::make_shared<CollectingPacketSink>();
  std::shared_ptr<FilterChain> chain;

  Harness() {
    chain = std::make_shared<FilterChain>(
        std::make_shared<PacketReaderEndpoint>("in", source),
        std::make_shared<PacketWriterEndpoint>("out", sink));
  }
};

// ---------------------------------------------------------------------------
// Null proxy

TEST(FilterChain, NullProxyForwardsPackets) {
  Harness h;
  h.chain->start();
  for (std::uint32_t i = 0; i < 100; ++i) h.source->push(numbered_packet(i));
  ASSERT_TRUE(h.sink->wait_for(100));
  h.source->finish();
  h.chain->shutdown();

  const auto packets = h.sink->packets();
  ASSERT_EQ(packets.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(packet_number(packets[i]), i);
}

TEST(FilterChain, StartTwiceThrows) {
  Harness h;
  h.chain->start();
  EXPECT_THROW(h.chain->start(), StreamError);
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, ShutdownIsIdempotent) {
  Harness h;
  h.chain->start();
  h.source->finish();
  h.chain->shutdown();
  EXPECT_NO_THROW(h.chain->shutdown());
}

TEST(FilterChain, ShutdownDeliversEverythingInFlight) {
  Harness h;
  h.chain->start();
  for (std::uint32_t i = 0; i < 500; ++i) h.source->push(numbered_packet(i, 100));
  h.source->finish();
  h.chain->shutdown();
  EXPECT_EQ(h.sink->count(), 500u);
  EXPECT_TRUE(h.sink->ended());
}

// ---------------------------------------------------------------------------
// Hot insertion

TEST(FilterChain, InsertOnIdleChain) {
  Harness h;
  h.chain->start();
  h.chain->insert(std::make_shared<TagFilter>(7), 0);
  EXPECT_EQ(h.chain->size(), 1u);
  EXPECT_EQ(h.chain->names(), std::vector<std::string>{"tag-7"});

  h.source->push(numbered_packet(1));
  ASSERT_TRUE(h.sink->wait_for(1));
  const auto packets = h.sink->packets();
  EXPECT_EQ(packets[0].back(), 7);
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, InsertMidStreamLosesNothing) {
  Harness h;
  h.chain->start();
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    std::uint32_t n = 0;
    while (!stop.load()) h.source->push(numbered_packet(n++));
    h.source->finish();
  });

  // Insert while traffic is flowing.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  h.chain->insert(std::make_shared<TagFilter>(1), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop = true;
  producer.join();
  h.chain->shutdown();

  // Every packet arrives exactly once, in order; later ones carry the tag.
  const auto packets = h.sink->packets();
  ASSERT_GT(packets.size(), 0u);
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(packet_number(packets[i]), i);
  }
  EXPECT_EQ(packets.back().size(), 5u);  // u32 + tag byte
}

TEST(FilterChain, InsertionPositionsComposeInOrder) {
  Harness h;
  h.chain->start();
  h.chain->insert(std::make_shared<TagFilter>(2), 0);
  h.chain->insert(std::make_shared<TagFilter>(1), 0);   // before tag-2
  h.chain->insert(std::make_shared<TagFilter>(3), 2);   // after tag-2
  EXPECT_EQ(h.chain->names(),
            (std::vector<std::string>{"tag-1", "tag-2", "tag-3"}));

  h.source->push(numbered_packet(0));
  ASSERT_TRUE(h.sink->wait_for(1));
  const auto p = h.sink->packets()[0];
  ASSERT_EQ(p.size(), 7u);
  EXPECT_EQ(p[4], 1);  // traversal order tag-1, tag-2, tag-3
  EXPECT_EQ(p[5], 2);
  EXPECT_EQ(p[6], 3);
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, InsertOutOfRangeThrows) {
  Harness h;
  h.chain->start();
  EXPECT_THROW(h.chain->insert(std::make_shared<TagFilter>(1), 1),
               std::out_of_range);
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, PreStartConfigurationWiresAtStart) {
  // Filters inserted before start() are wired when the chain starts —
  // the composite/pipeline construction path.
  Harness h;
  h.chain->insert(std::make_shared<TagFilter>(1), 0);
  h.chain->insert(std::make_shared<TagFilter>(2), 1);
  auto removed = h.chain->remove(1);  // pre-start removal is bookkeeping
  EXPECT_EQ(removed->name(), "tag-2");
  EXPECT_EQ(h.chain->size(), 1u);

  h.chain->start();
  h.source->push(numbered_packet(0));
  ASSERT_TRUE(h.sink->wait_for(1));
  const auto p = h.sink->packets()[0];
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p[4], 1);  // traversed tag-1
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, InsertNullThrows) {
  Harness h;
  h.chain->start();
  EXPECT_THROW(h.chain->insert(nullptr, 0), std::invalid_argument);
  h.source->finish();
  h.chain->shutdown();
}

// ---------------------------------------------------------------------------
// Hot removal

TEST(FilterChain, RemoveRestoresPassThrough) {
  Harness h;
  h.chain->start();
  h.chain->insert(std::make_shared<TagFilter>(9), 0);
  h.source->push(numbered_packet(0));
  ASSERT_TRUE(h.sink->wait_for(1));

  auto removed = h.chain->remove(0);
  EXPECT_EQ(removed->name(), "tag-9");
  EXPECT_EQ(h.chain->size(), 0u);
  EXPECT_FALSE(removed->running());

  h.source->push(numbered_packet(1));
  ASSERT_TRUE(h.sink->wait_for(2));
  EXPECT_EQ(h.sink->packets()[1].size(), 4u);  // no tag anymore
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, RemoveFlushesBufferedState) {
  Harness h;
  h.chain->start();
  h.chain->insert(std::make_shared<GroupingFilter>(4), 0);

  // Push 2 packets: the grouping filter holds them (group not full).
  h.source->push(numbered_packet(0));
  h.source->push(numbered_packet(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(h.sink->count(), 0u);

  // Removal must flush the partial group downstream, not discard it.
  h.chain->remove(0);
  ASSERT_TRUE(h.sink->wait_for(2));
  EXPECT_EQ(packet_number(h.sink->packets()[0]), 0u);
  EXPECT_EQ(packet_number(h.sink->packets()[1]), 1u);
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, RemovedFilterCanBeReinserted) {
  Harness h;
  h.chain->start();
  h.chain->insert(std::make_shared<TagFilter>(5), 0);
  auto f = h.chain->remove(0);
  h.chain->insert(f, 0);  // restartable after soft EOF

  h.source->push(numbered_packet(0));
  ASSERT_TRUE(h.sink->wait_for(1));
  EXPECT_EQ(h.sink->packets()[0].back(), 5);
  h.source->finish();
  h.chain->shutdown();
}

TEST(FilterChain, RemoveOutOfRangeThrows) {
  Harness h;
  h.chain->start();
  EXPECT_THROW(h.chain->remove(0), std::out_of_range);
  h.source->finish();
  h.chain->shutdown();
}

// ---------------------------------------------------------------------------
// Reorder

TEST(FilterChain, ReorderSwapsTraversalOrder) {
  Harness h;
  h.chain->start();
  h.chain->insert(std::make_shared<TagFilter>(1), 0);
  h.chain->insert(std::make_shared<TagFilter>(2), 1);

  h.chain->reorder(0, 1);
  EXPECT_EQ(h.chain->names(), (std::vector<std::string>{"tag-2", "tag-1"}));

  h.source->push(numbered_packet(0));
  ASSERT_TRUE(h.sink->wait_for(1));
  const auto p = h.sink->packets()[0];
  EXPECT_EQ(p[4], 2);
  EXPECT_EQ(p[5], 1);
  h.source->finish();
  h.chain->shutdown();
}

// ---------------------------------------------------------------------------
// Byte filters in chains

TEST(FilterChain, ByteFilterTransformsStream) {
  // Byte-oriented chain: string source -> uppercase -> collecting sink.
  // The source is gated: it yields no bytes until released, so the filter
  // is guaranteed to be spliced in before any data flows (otherwise the
  // endpoint threads could race the whole string past the insertion point).
  class StringSource final : public util::ByteSource {
   public:
    explicit StringSource(std::string s) : data_(to_bytes(s)) {}
    std::size_t read_some(util::MutableByteSpan out) override {
      released_.wait(false);
      const std::size_t n = std::min(out.size(), data_.size() - pos_);
      std::copy_n(data_.begin() + static_cast<long>(pos_), n, out.begin());
      pos_ += n;
      return n;
    }
    void release() {
      released_.store(true);
      released_.notify_all();
    }
    Bytes data_;
    std::size_t pos_ = 0;
    std::atomic<bool> released_{false};
  };
  class StringSink final : public util::ByteSink {
   public:
    void write(util::ByteSpan in) override {
      std::lock_guard lk(mu_);
      data_.insert(data_.end(), in.begin(), in.end());
    }
    std::mutex mu_;
    Bytes data_;
  };

  auto source = std::make_shared<StringSource>("hello rapidware");
  auto sink = std::make_shared<StringSink>();
  FilterChain chain(std::make_shared<ByteReaderEndpoint>("in", source),
                    std::make_shared<ByteWriterEndpoint>("out", sink));
  chain.start();
  chain.insert(std::make_shared<UppercaseFilter>(), 0);
  source->release();
  chain.shutdown();
  std::lock_guard lk(sink->mu_);
  EXPECT_EQ(to_string(sink->data_), "HELLO RAPIDWARE");
}

// ---------------------------------------------------------------------------
// Filter parameters

TEST(Filter, SetParamDefaultRejects) {
  NullFilter f;
  EXPECT_FALSE(f.set_param("anything", "1"));
  EXPECT_TRUE(f.params().empty());
}

TEST(Filter, StartTwiceThrows) {
  Harness h;
  h.chain->start();
  auto f = std::make_shared<TagFilter>(1);
  h.chain->insert(f, 0);
  EXPECT_THROW(f->start(), StreamError);
  h.source->finish();
  h.chain->shutdown();
}

// ---------------------------------------------------------------------------
// Property: randomized chain mutations never lose or reorder packets

struct ChurnParam {
  int mutations;
  std::uint64_t seed;
};

class ChainChurnTest : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(ChainChurnTest, RandomInsertRemoveReorderPreservesStream) {
  const auto param = GetParam();
  Harness h;
  h.chain->start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint32_t> produced{0};
  std::thread producer([&] {
    std::uint32_t n = 0;
    while (!stop.load()) {
      h.source->push(numbered_packet(n++));
      produced.store(n);
      if (n % 64 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    h.source->finish();
  });

  util::Rng rng(param.seed);
  std::uint8_t next_tag = 1;
  for (int i = 0; i < param.mutations; ++i) {
    std::this_thread::sleep_for(std::chrono::microseconds(rng.next_below(800)));
    const std::size_t size = h.chain->size();
    const auto action = rng.next_below(3);
    if (action == 0 || size == 0) {
      if (size < 6) {
        h.chain->insert(std::make_shared<TagFilter>(next_tag++),
                        rng.next_below(size + 1));
      }
    } else if (action == 1) {
      h.chain->remove(rng.next_below(size));
    } else if (size >= 2) {
      h.chain->reorder(rng.next_below(size), rng.next_below(size));
    }
  }

  stop = true;
  producer.join();
  h.chain->shutdown();

  const auto packets = h.sink->packets();
  ASSERT_EQ(packets.size(), produced.load());
  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    ASSERT_EQ(packet_number(packets[i]), i) << "at packet " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(ChurnSweep, ChainChurnTest,
                         ::testing::Values(ChurnParam{20, 1}, ChurnParam{40, 2},
                                           ChurnParam{60, 3}, ChurnParam{80, 4}),
                         [](const auto& info) {
                           return "mutations" + std::to_string(info.param.mutations) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// ---------------------------------------------------------------------------
// Atomic snapshots (regression: stats paths reading chain state lock-by-lock)

// list() must be one atomic snapshot. The old introspection path called
// size() then at(i) — two separate lock acquisitions — so a remove() landing
// between them threw out_of_range for a request that was valid when it
// started. Hammer snapshots against concurrent insert/remove and require
// every one to be internally consistent and exception-free.
TEST(FilterChain, ListSnapshotSurvivesConcurrentMutation) {
  Harness h;
  for (int i = 0; i < 4; ++i) {
    h.chain->insert(std::make_shared<TagFilter>(static_cast<std::uint8_t>(i)),
                    h.chain->size());
  }

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    util::Rng rng(7);
    while (!stop.load(std::memory_order_acquire)) {
      // Keep the size oscillating across the readers' snapshot points.
      h.chain->remove(rng.next_below(h.chain->size()));
      h.chain->insert(std::make_shared<TagFilter>(9), 0);
    }
  });

  auto manager = ControlManager::local(std::make_shared<ControlServer>(
      h.chain, &global_registry(), &obs::registry()));
  for (int i = 0; i < 2'000; ++i) {
    // Chain-level snapshot: iterating it must never hit a stale index.
    const auto filters = h.chain->list();
    for (const auto& f : filters) EXPECT_FALSE(f->name().empty());
    // Control-protocol path (the one that used size() + at(i)).
    const auto infos = manager.list_chain();
    for (const auto& info : infos) EXPECT_FALSE(info.name.empty());
  }

  stop.store(true, std::memory_order_release);
  mutator.join();
}

// ---------------------------------------------------------------------------
// Zero-allocation steady state (the pool hit-rate test buffer_pool.h
// promises): once the chain's recycle pool is warm — the hosting worker's
// arena under event dispatch, the process-wide pool otherwise — a
// pass-through packet hop serves every per-packet buffer from the free
// list; the allocator is out of the loop. Measured at the pool: the miss
// counter must not move during the steady-state window.

class PassThroughPacketFilter final : public PacketFilter {
 public:
  PassThroughPacketFilter() : PacketFilter("pass") {}

 protected:
  void on_packet(Bytes packet) override { emit(std::move(packet)); }
};

TEST(FilterChain, SteadyStatePassThroughHitsPoolEveryTime) {
  Harness h;
  h.chain->insert(std::make_shared<PassThroughPacketFilter>(), 0);
  h.chain->insert(std::make_shared<PassThroughPacketFilter>(), 1);
  h.chain->start();

  const Bytes packet(512, 0x5c);
  // Paced batches: steady state means a bounded number of packets in
  // flight (a flood can outrun the pool's per-bucket retention cap and
  // spill to the allocator by design — that is load shedding, not a leak).
  constexpr std::size_t kBatch = 32, kWarmupBatches = 8, kSteadyBatches = 60;
  std::size_t sent = 0;
  const auto pump = [&](std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      for (std::size_t i = 0; i < kBatch; ++i) h.source->push(packet);
      sent += kBatch;
      ASSERT_TRUE(h.sink->wait_for(sent));
    }
  };
  pump(kWarmupBatches);  // populate the pool's 512-byte class

  // Measure the pool the chain actually recycles through: the hosting
  // worker's arena under RW_DISPATCH=event, the process pool otherwise.
  util::BufferPool& pool = h.chain->recycle_pool();
  const auto warm = pool.stats();
  pump(kSteadyBatches);
  const auto done = pool.stats();
  constexpr std::size_t kSteady = kBatch * kSteadyBatches;

  // Every steady-state acquire (FrameReader in both endpoints and both
  // pass-through hops) was served from the free list.
  EXPECT_EQ(done.misses, warm.misses);
  // And the hop count is real: >= 3 acquires per packet actually happened
  // (reader-endpoint frames come from the source, so they release only).
  EXPECT_GE(done.hits - warm.hits, kSteady * 3);

  h.source->finish();
  h.chain->shutdown();
}

}  // namespace
}  // namespace rapidware::core
