// Tests for the bandwidth-adaptation raplets: ThroughputObserver and
// TranscodeResponder, plus the combined loop reshaping a live audio stream
// to fit a constrained handheld link.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "filters/registry.h"
#include "filters/stats_filter.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "proxy/proxy.h"
#include "raplets/adaptation_manager.h"
#include "raplets/throughput_observer.h"
#include "raplets/handoff.h"
#include "raplets/transcode_responder.h"

namespace rapidware::raplets {
namespace {

// ---------------------------------------------------------------------------
// ThroughputObserver

TEST(ThroughputObserver, RejectsBadArguments) {
  EXPECT_THROW(ThroughputObserver("x", nullptr), std::invalid_argument);
  EXPECT_THROW(ThroughputObserver("x", [] { return std::uint64_t{0}; }, 0),
               std::invalid_argument);
}

TEST(ThroughputObserver, DifferentiatesCounter) {
  // Deterministic: no polling thread, no wall sleeps. The test owns the
  // clock and the cadence via poll_once(), so every computed rate is exact
  // arithmetic instead of a scheduling-jitter ballpark.
  util::SimClock clock;
  std::uint64_t bytes = 0;
  ThroughputObserver observer(
      "tap", [&] { return bytes; }, 20, &clock, /*alpha=*/1.0);
  std::vector<Event> events;
  observer.set_sink([&](const Event& e) { events.push_back(e); });

  // Feed exactly 1 MB/s: 20'000 bytes per 20 ms virtual interval.
  for (int i = 0; i < 8; ++i) {
    bytes += 20'000;
    clock.advance(20'000);
    observer.poll_once();
  }
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].type, "throughput-bps");
  EXPECT_EQ(events[0].source, "tap");
  for (const auto& e : events) EXPECT_DOUBLE_EQ(e.value, 1'000'000.0);
  EXPECT_DOUBLE_EQ(observer.last_bps(), 1'000'000.0);

  // Polling while virtual time stands still is a no-op, not a div-by-zero.
  observer.poll_once();
  EXPECT_EQ(events.size(), 8u);
}

TEST(ThroughputObserver, SmoothsRateStepsWithEwma) {
  util::SimClock clock;
  std::uint64_t bytes = 0;
  ThroughputObserver observer(
      "tap", [&] { return bytes; }, 20, &clock, /*alpha=*/0.5);

  bytes += 20'000;  // 1 MB/s primes the EWMA directly
  clock.advance(20'000);
  observer.poll_once();
  EXPECT_DOUBLE_EQ(observer.last_bps(), 1'000'000.0);

  bytes += 60'000;  // step to 3 MB/s: EWMA moves halfway, not all the way
  clock.advance(20'000);
  observer.poll_once();
  EXPECT_DOUBLE_EQ(observer.last_bps(), 2'000'000.0);

  clock.advance(20'000);  // idle interval: decays halfway toward zero
  observer.poll_once();
  EXPECT_DOUBLE_EQ(observer.last_bps(), 1'000'000.0);
}

// ---------------------------------------------------------------------------
// TranscodeResponder

struct ResponderWorld {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 23};
  net::NodeId client = net.add_node("client");
  net::NodeId proxy_node = net.add_node("proxy");
  net::NodeId mobile = net.add_node("mobile");
  std::unique_ptr<proxy::Proxy> px;

  ResponderWorld() {
    filters::register_builtin_filters();
    proxy::ProxyConfig c;
    c.ingress_port = 4000;
    c.egress_dst = {mobile, 5000};
    c.control_port = 4999;
    px = std::make_unique<proxy::Proxy>(net, proxy_node, c);
    px->start();
  }
  ~ResponderWorld() { px->shutdown(); }

  core::ControlManager manager() {
    return core::ControlManager(proxy::network_control_transport(
        net, client, px->control_address()));
  }
};

Event demand(double bps, util::Micros at) {
  return Event{"throughput-bps", "tap", bps, at};
}

TEST(TranscodeResponder, ConfigValidation) {
  ResponderWorld w;
  TranscodeResponderConfig bad;
  bad.link_budget_bps = 0;
  EXPECT_THROW(TranscodeResponder(w.manager(), bad), std::invalid_argument);
  TranscodeResponderConfig bad2;
  bad2.hysteresis = 1.5;
  EXPECT_THROW(TranscodeResponder(w.manager(), bad2), std::invalid_argument);
}

TEST(TranscodeResponder, EscalatesThroughLadder) {
  ResponderWorld w;
  TranscodeResponderConfig config;
  config.link_budget_bps = 8'000;
  config.cooldown_us = 0;
  TranscodeResponder responder(w.manager(), config);

  // 16 kB/s demand over an 8 kB/s budget -> mono (2x).
  responder.on_event(demand(16'000, 1000));
  EXPECT_EQ(responder.current_reduction(), 2);
  auto infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].description, "transcode(mono)");

  // 32 kB/s -> needs 4x: the existing filter is retuned, not duplicated.
  responder.on_event(demand(32'000, 2000));
  EXPECT_EQ(responder.current_reduction(), 4);
  infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].description, "transcode(mono+half)");
}

TEST(TranscodeResponder, DeEscalatesWithHysteresis) {
  ResponderWorld w;
  TranscodeResponderConfig config;
  config.link_budget_bps = 8'000;
  config.hysteresis = 0.85;
  config.cooldown_us = 0;
  TranscodeResponder responder(w.manager(), config);

  responder.on_event(demand(30'000, 1000));
  EXPECT_EQ(responder.current_reduction(), 4);

  // Demand drops to just within budget at 2x — but not within the
  // hysteresis margin (15600/2 = 7800 > 8000*0.85 = 6800): stay at 4x.
  responder.on_event(demand(15'600, 2000));
  EXPECT_EQ(responder.current_reduction(), 4);

  // Well within margin: de-escalate to 2x, then off.
  responder.on_event(demand(13'000, 3000));
  EXPECT_EQ(responder.current_reduction(), 2);
  responder.on_event(demand(6'000, 4000));
  EXPECT_EQ(responder.current_reduction(), 1);
  EXPECT_TRUE(w.manager().list_chain().empty());
}

TEST(TranscodeResponder, CooldownLimitsChanges) {
  ResponderWorld w;
  TranscodeResponderConfig config;
  config.link_budget_bps = 8'000;
  config.cooldown_us = 1'000'000;
  TranscodeResponder responder(w.manager(), config);

  responder.on_event(demand(16'000, 1'000'000));
  EXPECT_EQ(responder.current_reduction(), 2);
  responder.on_event(demand(64'000, 1'200'000));  // within cooldown
  EXPECT_EQ(responder.current_reduction(), 2);
  responder.on_event(demand(64'000, 2'100'000));
  EXPECT_EQ(responder.current_reduction(), 4);
  EXPECT_EQ(responder.history().size(), 2u);
}

TEST(TranscodeResponder, IgnoresOtherEvents) {
  ResponderWorld w;
  TranscodeResponderConfig config;
  config.cooldown_us = 0;
  TranscodeResponder responder(w.manager(), config);
  responder.on_event(Event{"loss-rate", "x", 0.5, 1000});
  EXPECT_EQ(responder.current_reduction(), 1);
}

// ---------------------------------------------------------------------------
// Full loop: live stream reshaped to fit the link budget

TEST(BandwidthLoop, StreamIsReshapedToFitBudget) {
  ResponderWorld w;
  // Ingress tap feeds the observer; the paper's 16 kB/s stereo stream must
  // fit an 8.5 kB/s link -> mono is the right steady state.
  auto tap = std::make_shared<filters::StatsFilter>("ingress-tap");
  w.px->chain().insert(tap, 0);

  TranscodeResponderConfig config;
  config.link_budget_bps = 8'500;
  config.cooldown_us = 0;
  config.position = 1;  // after the tap
  auto responder =
      std::make_shared<TranscodeResponder>(w.manager(), config);
  auto observer = std::make_shared<ThroughputObserver>(
      "ingress-tap", [tap] { return tap->bytes(); }, 20, w.clock.get());
  AdaptationManager adaptation(observer, responder);
  adaptation.start();

  auto rx = w.net.open(w.mobile, 5000);
  std::atomic<std::uint64_t> out_bytes{0};
  std::atomic<std::uint64_t> out_packets{0};
  std::thread receiver([&] {
    for (;;) {
      auto d = rx->recv(500);
      if (!d) break;
      out_bytes.fetch_add(d->payload.size());
      out_packets.fetch_add(1);
    }
  });

  auto tx = w.net.open(w.client);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  constexpr int kPackets = 1500;  // 30 media seconds
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to({w.proxy_node, 4000}, packetizer.next_packet().serialize());
    w.clock->advance(20'000);
    if (i % 25 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  receiver.join();
  adaptation.stop();

  // The responder engaged transcoding. The exact steady state depends on
  // measurement noise: 2x (mono) fits the budget at ~98% utilization, so a
  // noisy sample can legitimately push the controller to 4x and hysteresis
  // keeps it there. What must hold: adaptation happened and stuck.
  EXPECT_GE(responder->current_reduction(), 2);
  ASSERT_FALSE(responder->history().empty());
  EXPECT_GE(responder->history().back().reduction, 2);
  // All packets still flow; total bytes shrank materially.
  EXPECT_EQ(out_packets.load(), static_cast<std::uint64_t>(kPackets));
  EXPECT_LT(out_bytes.load(), static_cast<std::uint64_t>(kPackets) * 333);
}

// ---------------------------------------------------------------------------
// HandoffCoordinator

TEST(Handoff, UnknownDeviceThrows) {
  ResponderWorld w;
  HandoffCoordinator coordinator(*w.px, w.manager());
  EXPECT_THROW(coordinator.handoff_to("ghost", 16'000), std::out_of_range);
}

TEST(Handoff, ReshapesChainPerDeviceProfile) {
  ResponderWorld w;
  HandoffCoordinator coordinator(*w.px, w.manager());
  const auto laptop = w.net.add_node("laptop");
  const auto palmtop = w.net.add_node("palmtop");
  coordinator.register_device(
      {"laptop", {laptop, 5000}, /*budget*/ 1e6, /*fec*/ false});
  coordinator.register_device(
      {"palmtop", {palmtop, 5000}, /*budget*/ 5'000, /*fec*/ true, 6, 4});

  // To the laptop: plenty of budget, clean link -> bare chain.
  coordinator.handoff_to("laptop", 16'000);
  EXPECT_EQ(coordinator.active_device(), "laptop");
  EXPECT_TRUE(w.manager().list_chain().empty());
  EXPECT_EQ(w.px->egress_destination(), (net::Address{laptop, 5000}));

  // To the palmtop: 16 kB/s into a 5 kB/s budget -> mono+half, plus FEC.
  coordinator.handoff_to("palmtop", 16'000);
  const auto infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].description, "transcode(mono+half)");
  EXPECT_EQ(infos[1].name, "fec-encode");
  EXPECT_EQ(w.px->egress_destination(), (net::Address{palmtop, 5000}));

  // Back to the laptop: transcode and FEC come out again.
  coordinator.handoff_to("laptop", 16'000);
  EXPECT_TRUE(w.manager().list_chain().empty());
  ASSERT_EQ(coordinator.history().size(), 3u);
  EXPECT_EQ(coordinator.history()[1].reduction, 4);
  EXPECT_TRUE(coordinator.history()[1].fec);
}

TEST(Handoff, RetunesExistingTranscoderInsteadOfStacking) {
  ResponderWorld w;
  HandoffCoordinator coordinator(*w.px, w.manager());
  const auto a = w.net.add_node("tablet");
  const auto b = w.net.add_node("watch");
  coordinator.register_device({"tablet", {a, 5000}, 9'000, false});
  coordinator.register_device({"watch", {b, 5000}, 4'500, false});

  coordinator.handoff_to("tablet", 16'000);  // 16k/2=8k <= 9k -> mono
  coordinator.handoff_to("watch", 16'000);   // needs mono+half
  const auto infos = w.manager().list_chain();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].description, "transcode(mono+half)");
}

TEST(Handoff, StreamKeepsFlowingAcrossHandoffs) {
  ResponderWorld w;
  HandoffCoordinator coordinator(*w.px, w.manager());
  const auto laptop = w.net.add_node("laptop2");
  coordinator.register_device({"mobile", {w.mobile, 5000}, 1e6, false});
  coordinator.register_device({"laptop", {laptop, 5000}, 1e6, false});
  coordinator.handoff_to("mobile", 16'000);

  auto rx_mobile = w.net.open(w.mobile, 5000);
  auto rx_laptop = w.net.open(laptop, 5000);
  auto tx = w.net.open(w.client);
  media::AudioSource audio;
  media::AudioPacketizer packetizer(audio);
  for (int i = 0; i < 100; ++i) {
    if (i == 50) coordinator.handoff_to("laptop", 16'000);
    tx->send_to({w.proxy_node, 4000}, packetizer.next_packet().serialize());
    w.clock->advance(20'000);
    if (i % 20 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Predicate wait, not a fixed sleep: drain both receivers until all 100
  // packets surfaced or a generous deadline passes (then the assert names
  // the shortfall).
  std::size_t mobile_count = 0, laptop_count = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (mobile_count + laptop_count < 100 &&
         std::chrono::steady_clock::now() < deadline) {
    while (rx_mobile->recv(0)) ++mobile_count;
    while (rx_laptop->recv(0)) ++laptop_count;
    if (mobile_count + laptop_count < 100) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(mobile_count + laptop_count, 100u);
  EXPECT_GT(mobile_count, 30u);
  EXPECT_GT(laptop_count, 30u);
}

}  // namespace
}  // namespace rapidware::raplets
