// Unit tests for src/util: buffers, RNG, stats, serialization, framing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <thread>

#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/frame_reader.h"
#include "util/framing.h"
#include "util/io.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/stats.h"

namespace rapidware::util {
namespace {

// ---------------------------------------------------------------------------
// ByteRing

TEST(ByteRing, StartsEmpty) {
  ByteRing ring(16);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 16u);
  EXPECT_EQ(ring.free_space(), 16u);
}

TEST(ByteRing, WriteThenReadRoundTrips) {
  ByteRing ring(16);
  const Bytes in = to_bytes("hello");
  EXPECT_EQ(ring.write(in), 5u);
  EXPECT_EQ(ring.size(), 5u);
  Bytes out(5);
  EXPECT_EQ(ring.read(out), 5u);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(ring.empty());
}

TEST(ByteRing, WriteIsBoundedByFreeSpace) {
  ByteRing ring(4);
  const Bytes in = to_bytes("abcdef");
  EXPECT_EQ(ring.write(in), 4u);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.write(in), 0u);
}

TEST(ByteRing, WrapAroundPreservesOrder) {
  ByteRing ring(8);
  Bytes tmp(5);
  ASSERT_EQ(ring.write(to_bytes("abcde")), 5u);
  ASSERT_EQ(ring.read(tmp), 5u);  // head now at 5
  ASSERT_EQ(ring.write(to_bytes("123456")), 6u);  // wraps
  Bytes out(6);
  ASSERT_EQ(ring.read(out), 6u);
  EXPECT_EQ(to_string(out), "123456");
}

TEST(ByteRing, PeekDoesNotConsume) {
  ByteRing ring(8);
  ring.write(to_bytes("xyz"));
  Bytes peeked(3);
  EXPECT_EQ(ring.peek(peeked), 3u);
  EXPECT_EQ(ring.size(), 3u);
  Bytes read(3);
  EXPECT_EQ(ring.read(read), 3u);
  EXPECT_EQ(read, peeked);
}

TEST(ByteRing, PartialReadReturnsAvailable) {
  ByteRing ring(8);
  ring.write(to_bytes("ab"));
  Bytes out(5);
  EXPECT_EQ(ring.read(out), 2u);
}

TEST(ByteRing, ClearEmptiesBuffer) {
  ByteRing ring(8);
  ring.write(to_bytes("abcd"));
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.write(to_bytes("12345678")), 8u);
}

TEST(ByteRing, ManyWrapCyclesKeepFifoOrder) {
  ByteRing ring(7);  // odd capacity stresses wrap arithmetic
  Rng rng(42);
  Bytes sent, received;
  std::uint8_t next = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    Bytes chunk(rng.next_below(5) + 1);
    for (auto& b : chunk) b = next++;
    const std::size_t w = ring.write(chunk);
    sent.insert(sent.end(), chunk.begin(), chunk.begin() + static_cast<long>(w));
    // Resume the sequence from the first unsent byte (if any were refused).
    next = w < chunk.size() ? chunk[w]
                            : static_cast<std::uint8_t>(chunk.back() + 1);
    Bytes out(rng.next_below(5) + 1);
    const std::size_t r = ring.read(out);
    received.insert(received.end(), out.begin(),
                    out.begin() + static_cast<long>(r));
  }
  Bytes rest(ring.size());
  ring.read(rest);
  received.insert(received.end(), rest.begin(), rest.end());
  EXPECT_EQ(sent, received);
}

TEST(BytesHelpers, HexEncoding) {
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0x00, 0x0f}), "dead000f");
  EXPECT_EQ(to_hex(Bytes{}), "");
}

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) seen[rng.next_below(10)]++;
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(7);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.next_exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(10);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

// ---------------------------------------------------------------------------
// Stats

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(11);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_gaussian();
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_LT(h.percentile(10), h.percentile(50));
  EXPECT_LT(h.percentile(50), h.percentile(99));
  EXPECT_NEAR(h.percentile(50), 50.0, 2.0);
}

TEST(RateCounter, ComputesRate) {
  RateCounter c;
  EXPECT_EQ(c.rate(), 0.0);
  for (int i = 0; i < 98; ++i) c.add(true);
  for (int i = 0; i < 2; ++i) c.add(false);
  EXPECT_DOUBLE_EQ(c.rate(), 0.98);
  EXPECT_EQ(c.total(), 100u);
}

TEST(WindowedRate, SlidesOverWindow) {
  WindowedRate w(4);
  EXPECT_EQ(w.rate(), 1.0);  // vacuous
  w.add(false);
  w.add(false);
  w.add(false);
  w.add(false);
  EXPECT_EQ(w.rate(), 0.0);
  w.add(true);
  w.add(true);
  w.add(true);
  w.add(true);
  EXPECT_EQ(w.rate(), 1.0);  // old samples fell out
  EXPECT_TRUE(w.full());
}

TEST(PercentFormat, Renders) {
  EXPECT_EQ(percent(0.9854), "98.54%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

// ---------------------------------------------------------------------------
// Clocks

TEST(Clocks, SimClockAdvancesManually) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(1500);
  EXPECT_EQ(clock.now(), 1500);
  clock.set(42);
  EXPECT_EQ(clock.now(), 42);
}

TEST(Clocks, WallClockIsMonotonic) {
  WallClock clock;
  const Micros a = clock.now();
  const Micros b = clock.now();
  EXPECT_GE(b, a);
}

TEST(Clocks, SecondsConversionRoundTrips) {
  EXPECT_EQ(seconds_to_micros(1.5), 1'500'000);
  EXPECT_EQ(seconds_to_micros(0.0), 0);
  EXPECT_DOUBLE_EQ(micros_to_seconds(250'000), 0.25);
  EXPECT_DOUBLE_EQ(micros_to_seconds(seconds_to_micros(12.75)), 12.75);
}

// ---------------------------------------------------------------------------
// Logging

TEST(Logging, LevelGatingWorks) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(saved);
}

TEST(Logging, EmissionDoesNotCrash) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  RW_DEBUG("test") << "value=" << 42;
  RW_INFO("test") << "info line";
  set_log_level(saved);
}

// ---------------------------------------------------------------------------
// Serialization

TEST(Serial, RoundTripsScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serial, RoundTripsBlobsAndStrings) {
  Writer w;
  w.blob(to_bytes("payload"));
  w.str("a string");
  w.str("");
  Reader r(w.bytes());
  EXPECT_EQ(to_string(r.blob()), "payload");
  EXPECT_EQ(r.str(), "a string");
  EXPECT_EQ(r.str(), "");
}

TEST(Serial, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Reader r(w.bytes());
  r.u16();
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(Serial, OversizedBlobLengthThrows) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes, provides none
  Reader r(w.bytes());
  EXPECT_THROW(r.blob(), SerialError);
}

TEST(Serial, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

// ---------------------------------------------------------------------------
// Framing

/// ByteSource/ByteSink over an in-memory vector, for framing tests.
class MemoryStream final : public ByteSource, public ByteSink {
 public:
  void write(ByteSpan in) override {
    data_.insert(data_.end(), in.begin(), in.end());
  }
  std::size_t read_some(MutableByteSpan out) override {
    const std::size_t n = std::min(out.size(), data_.size() - pos_);
    std::copy_n(data_.begin() + static_cast<long>(pos_), n, out.begin());
    pos_ += n;
    return n;
  }
  Bytes data_;
  std::size_t pos_ = 0;
};

TEST(Framing, RoundTripsSingleFrame) {
  MemoryStream s;
  write_frame(s, to_bytes("hello frame"));
  auto frame = read_frame(s);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(to_string(*frame), "hello frame");
  EXPECT_FALSE(read_frame(s).has_value());  // clean EOF
}

TEST(Framing, RoundTripsManyFramesInOrder) {
  MemoryStream s;
  for (int i = 0; i < 100; ++i) write_frame(s, to_bytes("frame " + std::to_string(i)));
  for (int i = 0; i < 100; ++i) {
    auto frame = read_frame(s);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(to_string(*frame), "frame " + std::to_string(i));
  }
  EXPECT_FALSE(read_frame(s).has_value());
}

TEST(Framing, EmptyPayloadAllowed) {
  MemoryStream s;
  write_frame(s, {});
  auto frame = read_frame(s);
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
}

TEST(Framing, BadMagicThrows) {
  MemoryStream s;
  s.write(to_bytes("garbage data here"));
  EXPECT_THROW(read_frame(s), SerialError);
}

TEST(Framing, TruncatedHeaderThrows) {
  MemoryStream s;
  Writer w;
  w.u16(kFrameMagic);
  w.u8(1);  // header cut short
  s.write(w.bytes());
  EXPECT_THROW(read_frame(s), SerialError);
}

TEST(Framing, TruncatedPayloadThrows) {
  MemoryStream s;
  Writer w;
  w.u16(kFrameMagic);
  w.u32(100);
  w.str("short");  // far fewer than 100 bytes
  s.write(w.bytes());
  EXPECT_THROW(read_frame(s), SerialError);
}

TEST(Framing, OversizedFrameRejected) {
  MemoryStream s;
  Writer w;
  w.u16(kFrameMagic);
  w.u32(kMaxFrameSize + 1);
  s.write(w.bytes());
  EXPECT_THROW(read_frame(s), SerialError);
}

TEST(ReadExact, StopsAtEof) {
  MemoryStream s;
  s.write(to_bytes("abc"));
  Bytes out(10);
  EXPECT_EQ(s.read_exact(out), 3u);
}

// ---------------------------------------------------------------------------
// ByteSource::read_full — the EOF-disambiguated variant

TEST(ReadFull, FillsCompletely) {
  MemoryStream s;
  s.write(to_bytes("abcdef"));
  Bytes out(6);
  EXPECT_TRUE(s.read_full(out, "test"));
  EXPECT_EQ(to_string(out), "abcdef");
}

TEST(ReadFull, CleanEofReturnsFalse) {
  MemoryStream s;  // never written: EOF before the first byte
  Bytes out(4);
  EXPECT_FALSE(s.read_full(out, "test"));
}

TEST(ReadFull, TornReadThrows) {
  MemoryStream s;
  s.write(to_bytes("ab"));  // stream dies after 2 of 4 requested bytes
  Bytes out(4);
  EXPECT_THROW(s.read_full(out, "test"), SerialError);
}

TEST(ReadFull, ZeroLengthAlwaysSucceeds) {
  MemoryStream s;
  Bytes out;
  EXPECT_TRUE(s.read_full(out, "test"));
}

// ---------------------------------------------------------------------------
// ByteRing segment APIs: vectored write + borrow spans

namespace {

/// Drives head_ to `offset` so subsequent writes straddle the wrap point.
void spin_ring_to(ByteRing& ring, std::size_t offset) {
  Bytes junk(offset, 0xee);
  ASSERT_EQ(ring.write(ByteSpan(junk)), offset);
  Bytes sink(offset);
  ASSERT_EQ(ring.read(sink), offset);
  ASSERT_TRUE(ring.empty());
}

Bytes drain_via_spans(ByteRing& ring) {
  const auto spans = ring.read_spans();
  Bytes out;
  out.insert(out.end(), spans[0].begin(), spans[0].end());
  out.insert(out.end(), spans[1].begin(), spans[1].end());
  ring.consume(out.size());
  return out;
}

}  // namespace

TEST(ByteRingSegments, VectoredWriteRoundTrips) {
  ByteRing ring(32);
  const Bytes a = to_bytes("head"), b = to_bytes("er+payload");
  const std::array<ByteSpan, 2> segs = {ByteSpan(a), ByteSpan(b)};
  EXPECT_EQ(ring.write(std::span<const ByteSpan>(segs)), 14u);
  EXPECT_EQ(to_string(drain_via_spans(ring)), "header+payload");
}

TEST(ByteRingSegments, VectoredWriteStraddlesWrapPoint) {
  ByteRing ring(16);
  spin_ring_to(ring, 12);  // 4 bytes of tail room before the wrap
  const Bytes a = to_bytes("abcdef"), b = to_bytes("ghij");
  const std::array<ByteSpan, 2> segs = {ByteSpan(a), ByteSpan(b)};
  EXPECT_EQ(ring.write(std::span<const ByteSpan>(segs)), 10u);
  // Content wraps: read_spans must expose exactly two non-empty pieces
  // whose concatenation is the segment concatenation.
  const auto spans = ring.read_spans();
  EXPECT_EQ(spans[0].size(), 4u);
  EXPECT_EQ(spans[1].size(), 6u);
  EXPECT_EQ(to_string(drain_via_spans(ring)), "abcdefghij");
  EXPECT_TRUE(ring.empty());
}

TEST(ByteRingSegments, SingleSegmentItselfStraddlesWrap) {
  ByteRing ring(8);
  spin_ring_to(ring, 6);
  const Bytes a = to_bytes("wrap!");
  const std::array<ByteSpan, 1> segs = {ByteSpan(a)};
  EXPECT_EQ(ring.write(std::span<const ByteSpan>(segs)), 5u);
  EXPECT_EQ(to_string(drain_via_spans(ring)), "wrap!");
}

TEST(ByteRingSegments, VectoredWriteStopsWhenFull) {
  ByteRing ring(8);
  const Bytes a = to_bytes("abcde"), b = to_bytes("fghij");
  const std::array<ByteSpan, 2> segs = {ByteSpan(a), ByteSpan(b)};
  // 10 bytes offered, 8 fit: the cut lands mid-second-segment.
  EXPECT_EQ(ring.write(std::span<const ByteSpan>(segs)), 8u);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(to_string(drain_via_spans(ring)), "abcdefgh");
}

TEST(ByteRingSegments, EmptySegmentsAreNoOps) {
  ByteRing ring(8);
  const Bytes a = to_bytes("xy");
  const std::array<ByteSpan, 3> segs = {ByteSpan(), ByteSpan(a), ByteSpan()};
  EXPECT_EQ(ring.write(std::span<const ByteSpan>(segs)), 2u);
  EXPECT_EQ(to_string(drain_via_spans(ring)), "xy");
}

TEST(ByteRingSegments, ReadSpansOfEmptyRingAreEmpty) {
  ByteRing ring(8);
  const auto spans = ring.read_spans();
  EXPECT_TRUE(spans[0].empty());
  EXPECT_TRUE(spans[1].empty());
}

TEST(ByteRingSegments, PartialConsumeAdvancesSpans) {
  ByteRing ring(8);
  ASSERT_EQ(ring.write(ByteSpan(to_bytes("abcdef"))), 6u);
  ring.consume(2);
  EXPECT_EQ(to_string(drain_via_spans(ring)), "cdef");
}

TEST(ByteRingSegments, ManyWrapCyclesViaSegmentApis) {
  ByteRing ring(7);  // odd capacity stresses wrap arithmetic
  Bytes expect, got;
  std::uint8_t next = 0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    Bytes a(2), b(3);
    for (auto& v : a) v = next++;
    for (auto& v : b) v = next++;
    expect.insert(expect.end(), a.begin(), a.end());
    expect.insert(expect.end(), b.begin(), b.end());
    const std::array<ByteSpan, 2> segs = {ByteSpan(a), ByteSpan(b)};
    ASSERT_EQ(ring.write(std::span<const ByteSpan>(segs)), 5u);
    const Bytes piece = drain_via_spans(ring);
    got.insert(got.end(), piece.begin(), piece.end());
  }
  EXPECT_EQ(got, expect);
}

// ---------------------------------------------------------------------------
// FrameReader — batched frame decoding

TEST(FrameReader, RoundTripsManyFramesInOrder) {
  MemoryStream s;
  for (int i = 0; i < 100; ++i) {
    write_frame(s, to_bytes("frame " + std::to_string(i)));
  }
  FrameReader fr(s);
  for (int i = 0; i < 100; ++i) {
    auto frame = fr.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(to_string(*frame), "frame " + std::to_string(i));
  }
  EXPECT_FALSE(fr.next().has_value());  // clean EOF
  EXPECT_FALSE(fr.next().has_value());  // EOF is sticky
  EXPECT_EQ(fr.frames(), 100u);
}

TEST(FrameReader, BatchesManyFramesPerRefill) {
  MemoryStream s;
  for (int i = 0; i < 64; ++i) write_frame(s, Bytes(10, 0x42));
  FrameReader fr(s);
  while (fr.next()) {
  }
  // 64 x 16-byte frames fit in far fewer refills than frames: the whole
  // point of the batched reader (one lock trip decodes many frames).
  EXPECT_EQ(fr.frames(), 64u);
  EXPECT_LT(fr.refills(), 16u);
}

TEST(FrameReader, EmptyPayloadAllowed) {
  MemoryStream s;
  write_frame(s, {});
  FrameReader fr(s);
  auto frame = fr.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
  EXPECT_FALSE(fr.next().has_value());
}

TEST(FrameReader, BadMagicThrows) {
  MemoryStream s;
  s.write(to_bytes("garbage data here"));
  FrameReader fr(s);
  EXPECT_THROW(fr.next(), SerialError);
}

TEST(FrameReader, TornHeaderThrows) {
  MemoryStream s;
  Writer w;
  w.u16(kFrameMagic);
  w.u8(1);  // header cut short at EOF
  s.write(w.bytes());
  FrameReader fr(s);
  EXPECT_THROW(fr.next(), SerialError);
}

TEST(FrameReader, TornPayloadThrows) {
  MemoryStream s;
  write_frame(s, to_bytes("complete"));
  Writer w;
  w.u16(kFrameMagic);
  w.u32(100);
  w.str("short");  // far fewer than 100 bytes, then EOF
  s.write(w.bytes());
  FrameReader fr(s);
  auto frame = fr.next();
  ASSERT_TRUE(frame.has_value());  // the complete frame still arrives
  EXPECT_EQ(to_string(*frame), "complete");
  EXPECT_THROW(fr.next(), SerialError);
}

TEST(FrameReader, OversizedFrameRejected) {
  MemoryStream s;
  Writer w;
  w.u16(kFrameMagic);
  w.u32(kMaxFrameSize + 1);
  s.write(w.bytes());
  FrameReader fr(s);
  EXPECT_THROW(fr.next(), SerialError);
}

TEST(FrameReader, InteroperatesWithLegacyReadFrame) {
  MemoryStream s;
  write_frame(s, to_bytes("one"));
  write_frame(s, to_bytes("two"));
  // Legacy read_frame consumes exactly one frame; FrameReader picks up the
  // rest of the stream afterwards.
  auto first = read_frame(s);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(to_string(*first), "one");
  FrameReader fr(s);
  auto second = fr.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(to_string(*second), "two");
  EXPECT_FALSE(fr.next().has_value());
}

// ---------------------------------------------------------------------------
// BufferPool

TEST(BufferPool, MissThenHit) {
  BufferPool pool;
  Bytes b = pool.acquire(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(pool.stats().misses, 1u);
  pool.release(std::move(b));
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.free_buffers(), 1u);
  Bytes c = pool.acquire(90);  // same 128-byte class: served from the pool
  EXPECT_EQ(c.size(), 90u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(BufferPool, ReleasedCapacityServesItsWholeClass) {
  BufferPool pool;
  Bytes b = pool.acquire(4096);
  pool.release(std::move(b));
  // Anything in (2048, 4096] maps to the same acquire bucket.
  Bytes c = pool.acquire(2049);
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.release(std::move(c));
  // 2048 itself belongs to the smaller class; its bucket is empty.
  Bytes d = pool.acquire(2048);
  EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(BufferPool, OversizedBuffersAreDropped) {
  BufferPool pool(BufferPool::Config{.max_buffers_per_bucket = 4,
                                     .max_capacity = 1024});
  Bytes big = pool.acquire(2048);  // beyond max_capacity: never pooled
  pool.release(std::move(big));
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(BufferPool, FullBucketDropsExcess) {
  BufferPool pool(BufferPool::Config{.max_buffers_per_bucket = 1,
                                     .max_capacity = 1024});
  pool.release(Bytes(256));
  pool.release(Bytes(256));  // bucket already holds its one buffer
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_EQ(pool.stats().dropped, 1u);
  EXPECT_EQ(pool.free_buffers(), 1u);
}

TEST(BufferPool, TinyBuffersAreNotPooled) {
  BufferPool pool;
  pool.release(Bytes(8));  // below the smallest size class
  EXPECT_EQ(pool.free_buffers(), 0u);
}

TEST(BufferPool, HitRateTracksSteadyState) {
  BufferPool pool;
  EXPECT_EQ(pool.hit_rate(), 0.0);
  for (int i = 0; i < 10; ++i) {
    Bytes b = pool.acquire(512);  // first acquire misses, the rest hit
    pool.release(std::move(b));
  }
  EXPECT_EQ(pool.stats().hits, 9u);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_NEAR(pool.hit_rate(), 0.9, 1e-9);
}

TEST(BufferPool, AcquireZeroIsValid) {
  BufferPool pool;
  Bytes b = pool.acquire(0);
  EXPECT_TRUE(b.empty());
}

// ---------------------------------------------------------------------------
// Per-worker arenas (parented pools, local() routing, rebalance)

TEST(BufferPool, LocalResolvesInstalledArenaPerThread) {
  BufferPool arena;
  EXPECT_EQ(&BufferPool::local(), &default_pool());
  std::thread t([&] {
    BufferPool* prev = BufferPool::install_local(&arena);
    EXPECT_EQ(prev, nullptr);
    EXPECT_EQ(&BufferPool::local(), &arena);
    BufferPool::install_local(prev);
    EXPECT_EQ(&BufferPool::local(), &default_pool());
  });
  t.join();
  // The installation was thread-local: this thread never saw the arena.
  EXPECT_EQ(&BufferPool::local(), &default_pool());
}

TEST(BufferPool, ParentedArenaRefillsFromParentInOneBatch) {
  BufferPool parent;
  BufferPool child(BufferPool::Config{}, &parent);
  for (int i = 0; i < 4; ++i) parent.release(Bytes(512));
  ASSERT_EQ(parent.free_buffers(), 4u);

  // Child bucket dry: one batch refill migrates the parent's whole stash
  // (it was smaller than the batch), serves the acquire as a hit, and
  // banks the rest locally.
  Bytes b = child.acquire(512);
  EXPECT_EQ(child.stats().hits, 1u);
  EXPECT_EQ(child.stats().misses, 0u);
  EXPECT_EQ(child.stats().rebalanced, 1u);
  EXPECT_EQ(parent.free_buffers(), 0u);
  EXPECT_EQ(child.free_buffers(), 3u);
  child.release(std::move(b));

  // Steady state after the refill: pure local hits, zero parent-lock
  // acquisitions — the shared-nothing property the scaling bench gates on.
  const std::uint64_t parent_locks = parent.lock_acquires();
  for (int i = 0; i < 100; ++i) {
    Bytes c = child.acquire(512);
    child.release(std::move(c));
  }
  EXPECT_EQ(parent.lock_acquires(), parent_locks);
  EXPECT_EQ(child.stats().hits, 101u);
}

TEST(BufferPool, ParentedArenaDonatesOverflowInsteadOfDropping) {
  BufferPool parent;
  BufferPool child(BufferPool::Config{.max_buffers_per_bucket = 2,
                                      .max_capacity = 1024},
                   &parent);
  child.release(Bytes(256));
  child.release(Bytes(256));
  ASSERT_EQ(child.free_buffers(), 2u);

  // Third release overflows the local bucket: the batch (stash + victim)
  // is donated to the parent, not dropped — capacity released on one
  // worker stays available to the others.
  child.release(Bytes(256));
  EXPECT_EQ(child.stats().dropped, 0u);
  EXPECT_EQ(child.stats().rebalanced, 1u);
  EXPECT_EQ(child.stats().recycled, 3u);
  EXPECT_EQ(parent.free_buffers() + child.free_buffers(), 3u);
  EXPECT_GE(parent.free_buffers(), 1u);
}

TEST(BufferPool, CrossThreadFreeIsCounted) {
  BufferPool pool;
  // Claim ownership from a worker thread, then free from this (foreign)
  // thread: the release still lands, but the boundary crossing is counted.
  std::thread t([&] { BufferPool::install_local(&pool); });
  t.join();
  pool.release(Bytes(256));
  EXPECT_EQ(pool.stats().cross_free, 1u);
  EXPECT_EQ(pool.stats().recycled, 1u);

  // Same-thread frees through the owner are not cross-frees.
  std::thread owner([&] {
    BufferPool::install_local(&pool);
    pool.release(Bytes(256));
    BufferPool::install_local(nullptr);
  });
  owner.join();
  EXPECT_EQ(pool.stats().cross_free, 1u);
}

}  // namespace
}  // namespace rapidware::util
