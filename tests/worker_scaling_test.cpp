// Shared-nothing worker scaling (docs/data_plane.md, "Worker model"):
//
//  - a fully event-hosted audio chain (source → fec → interleave →
//    transcode → sink) runs with ZERO shim threads — every member is
//    event-capable, so hosting adds no threads beyond the pool's own;
//  - byte endpoints event-host over pollable streams byte-exactly;
//  - the steady-state data path takes no global-pool lock: every
//    acquire/release resolves to the worker's arena (the lock_acquires()
//    instrumentation on util::default_pool() proves it);
//  - the PacketLedger stays exact across live fec(n,k) insert / retune /
//    remove while the chain is pool-hosted;
//  - a pinned-seed randomized schedule of reconfigurations and payload
//    sizes on the per-worker pool path loses nothing.
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/endpoint.h"
#include "core/event_loop.h"
#include "core/filter.h"
#include "core/filter_chain.h"
#include "core/worker_pool.h"
#include "filters/fec_filters.h"
#include "filters/interleave_filter.h"
#include "filters/transcode_filter.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "testing/sequence_stream.h"
#include "util/buffer_pool.h"
#include "util/rng.h"

namespace rapidware {
namespace {

using namespace std::chrono_literals;

/// Polls `pred` until true or `timeout`; returns the final verdict.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5s) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Live thread count of this process (/proc/self/status), or -1 if the
/// platform doesn't expose it — callers skip the check then.
int thread_count() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::stoi(line.substr(sizeof("Threads:") - 1));
    }
  }
  return -1;
}

/// Forwards every packet unchanged; the minimal event-capable PacketFilter.
class PassThroughPacketFilter final : public core::PacketFilter {
 public:
  using PacketFilter::PacketFilter;

 protected:
  void on_packet(util::Bytes packet) override { emit(std::move(packet)); }
};

struct HostedChain {
  std::shared_ptr<core::QueuePacketSource> source =
      std::make_shared<core::QueuePacketSource>();
  std::shared_ptr<core::CollectingPacketSink> sink =
      std::make_shared<core::CollectingPacketSink>();
  std::shared_ptr<core::PacketReaderEndpoint> head;
  std::shared_ptr<core::PacketWriterEndpoint> tail;
  std::unique_ptr<core::FilterChain> chain;

  explicit HostedChain(core::EventLoop& loop) {
    head = std::make_shared<core::PacketReaderEndpoint>("rx", source);
    tail = std::make_shared<core::PacketWriterEndpoint>("tx", sink);
    chain = std::make_unique<core::FilterChain>(head, tail);
    chain->host_on(loop);
    chain->start();
  }
};

// ---------------------------------------------------------------------------
// Zero shim threads: the fully event-hosted audio chain

TEST(WorkerScaling, FullyEventHostedAudioChainRunsWithZeroShimThreads) {
  constexpr std::uint32_t kPackets = 96;
  core::WorkerPool pool(2);
  const int base_threads = thread_count();
  {
    HostedChain h(pool.next());
    h.chain->insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);
    h.chain->insert(std::make_shared<filters::InterleaveFilter>(3, 5), 1);
    h.chain->insert(std::make_shared<filters::DeinterleaveFilter>(3, 5), 2);
    h.chain->insert(std::make_shared<filters::FecDecodeFilter>(), 3);
    h.chain->insert(std::make_shared<filters::AudioTranscodeFilter>(
                        media::paper_audio_format(), filters::TranscodeMode::kMono),
                    4);

    // Every member — endpoints, FEC codec pair, interleaver pair, and the
    // transcoder — runs as on_ready() drives on the worker.
    EXPECT_TRUE(h.head->event_hosted());
    EXPECT_TRUE(h.tail->event_hosted());
    for (std::size_t i = 0; i < h.chain->size(); ++i) {
      EXPECT_TRUE(h.chain->at(i)->event_hosted())
          << "filter " << i << " fell back to the thread shim";
    }
    // The hosted chain added no threads: the pool's workers carry it all.
    if (base_threads > 0) {
      EXPECT_EQ(thread_count(), base_threads);
    }

    media::AudioSource src;
    media::AudioPacketizer packetizer(src);
    std::vector<std::size_t> sent_payload_sizes;
    std::vector<std::uint32_t> sent_seqs;
    for (std::uint32_t i = 0; i < kPackets; ++i) {
      const media::MediaPacket p = packetizer.next_packet();
      sent_payload_sizes.push_back(p.payload.size());
      sent_seqs.push_back(p.seq);
      h.source->push(p.serialize());
    }
    h.source->finish();
    // Most of the stream arrives mid-flight (the interleaver and the FEC
    // group assembly each hold a bounded tail until the drain flushes it);
    // wait for steady-state flow before sampling the thread count.
    ASSERT_TRUE(h.sink->wait_for(kPackets / 2, /*timeout_ms=*/30'000));
    if (base_threads > 0) {
      EXPECT_EQ(thread_count(), base_threads);
    }
    h.chain->drain_shutdown();

    // The stream survived the codec sandwich in order, and the transcoder
    // did its job: stereo payloads came out mono (half the bytes).
    const auto& out = h.sink->packets();
    ASSERT_EQ(out.size(), kPackets);
    for (std::uint32_t i = 0; i < kPackets; ++i) {
      const media::MediaPacket p = media::MediaPacket::parse(out[i]);
      EXPECT_EQ(p.seq, sent_seqs[i]);
      EXPECT_EQ(p.payload.size(), sent_payload_sizes[i] / 2);
    }
  }
  pool.stop();
}

// ---------------------------------------------------------------------------
// Byte endpoints event-host over pollable streams

TEST(WorkerScaling, ByteEndpointsEventHostOverPollableStreams) {
  constexpr std::uint64_t kSeed = 0x0ddf00dULL;
  constexpr std::uint64_t kBytes = 1 << 20;
  core::WorkerPool pool(1);
  const int base_threads = thread_count();
  {
    auto generator =
        std::make_shared<testing::SequenceGenerator>(kSeed, kBytes);
    auto checker = std::make_shared<testing::SequenceChecker>(kSeed);
    auto head = std::make_shared<core::ByteReaderEndpoint>(
        "head", generator, /*chunk=*/512, /*capacity=*/2048);
    auto tail =
        std::make_shared<core::ByteWriterEndpoint>("tail", checker, 2048);
    core::FilterChain chain(head, tail);
    chain.host_on(pool.worker(0));
    chain.start();
    chain.insert(std::make_shared<core::NullFilter>("mid"), 0);

    // A pollable source/sink pair lets the byte endpoints event-host: no
    // blocking shim threads anywhere in the chain.
    EXPECT_TRUE(head->event_hosted());
    EXPECT_TRUE(tail->event_hosted());
    EXPECT_TRUE(chain.at(0)->event_hosted());
    if (base_threads > 0) {
      EXPECT_EQ(thread_count(), base_threads);
    }

    ASSERT_TRUE(eventually([&] { return checker->received() == kBytes; },
                           30'000ms));
    chain.drain_shutdown();
    EXPECT_TRUE(checker->clean()) << checker->report();
    EXPECT_EQ(checker->received(), kBytes);
  }
  pool.stop();
}

// ---------------------------------------------------------------------------
// Shared-nothing proof: steady state never touches the global pool

TEST(WorkerScaling, SteadyStateTakesZeroGlobalPoolLocks) {
  constexpr std::uint64_t kSeed = 0x10c41055ULL;  // "lockloss"
  constexpr std::uint64_t kBytes = 4 << 20;
  core::WorkerPool pool(1);
  {
    auto generator =
        std::make_shared<testing::SequenceGenerator>(kSeed, kBytes);
    auto checker = std::make_shared<testing::SequenceChecker>(kSeed);
    auto head = std::make_shared<core::ByteReaderEndpoint>(
        "head", generator, /*chunk=*/1024, /*capacity=*/4096);
    auto tail =
        std::make_shared<core::ByteWriterEndpoint>("tail", checker, 4096);
    core::FilterChain chain(head, tail);
    chain.host_on(pool.worker(0));
    chain.start();
    chain.insert(std::make_shared<core::NullFilter>("mid"), 0);

    // Warm-up: the worker arena takes its initial batch refills from the
    // parent while the first quarter of the stream flows.
    ASSERT_TRUE(eventually([&] { return checker->received() >= kBytes / 4; },
                           30'000ms));
    const std::uint64_t global_locks_before =
        util::default_pool().lock_acquires();

    // Steady state: the remaining three quarters must complete with ZERO
    // acquisitions of the global pool's mutex — every buffer cycles
    // through the worker's own arena.
    ASSERT_TRUE(eventually([&] { return checker->received() == kBytes; },
                           30'000ms));
    const std::uint64_t global_locks_after =
        util::default_pool().lock_acquires();
    EXPECT_EQ(global_locks_after, global_locks_before)
        << "steady-state data path touched the global pool "
        << (global_locks_after - global_locks_before) << " times";

    chain.drain_shutdown();
    EXPECT_TRUE(checker->clean()) << checker->report();
  }
  pool.stop();
}

// ---------------------------------------------------------------------------
// Live fec(n,k) insert / retune / remove on the worker arena

TEST(WorkerScaling, LedgerExactAcrossLiveFecRetuneWhilePoolHosted) {
  constexpr std::uint32_t kPackets = 5000;
  constexpr std::uint64_t kSeed = 0xfec7e55ULL;
  core::WorkerPool pool(2);
  {
    HostedChain h(pool.next());
    // Decoder sits permanently; the encoder comes, retunes, and goes.
    h.chain->insert(std::make_shared<filters::FecDecodeFilter>(), 0);

    std::thread producer([&] {
      for (std::uint32_t i = 0; i < kPackets; ++i) {
        h.source->push(testing::make_stamped_packet(kSeed, i, 200));
        if (i % 193 == 0) std::this_thread::yield();
      }
      h.source->finish();
    });

    // Control schedule: insert fec(6,4), retune to (8,6) then (4,2) live
    // (applied at group boundaries), then remove — eight full cycles while
    // packets stream through the worker.
    for (int round = 0; round < 8; ++round) {
      h.chain->insert(std::make_shared<filters::FecEncodeFilter>(6, 4), 0);
      EXPECT_TRUE(h.chain->set_param(0, "n", "8"));
      EXPECT_TRUE(h.chain->set_param(0, "k", "6"));
      std::this_thread::yield();
      // Shrinking keeps k <= n at every step: k first, then n.
      EXPECT_TRUE(h.chain->set_param(0, "k", "2"));
      EXPECT_TRUE(h.chain->set_param(0, "n", "4"));
      std::this_thread::yield();
      h.chain->remove(0);  // flushes any partial group as a short group
    }

    producer.join();
    ASSERT_TRUE(h.sink->wait_for(kPackets, /*timeout_ms=*/30'000));

    testing::PacketLedger ledger(kSeed, kPackets);
    for (const auto& p : h.sink->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets);
    EXPECT_EQ(ledger.lost(), 0u);
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.reordered(), 0u);
    EXPECT_EQ(ledger.corrupt(), 0u);

    h.chain->drain_shutdown();
  }
  pool.stop();
}

// ---------------------------------------------------------------------------
// Pinned-seed stress schedule on the per-worker pool path

TEST(WorkerScaling, PinnedSeedStressScheduleOnWorkerArena) {
  // A deterministic (seed-pinned) schedule interleaving packet production
  // with randomized control ops and payload sizes. Reproducible: any
  // failure replays from the seed alone.
  constexpr std::uint32_t kPackets = 4000;
  constexpr std::uint64_t kSeed = 0x5ca1ab1eULL;
  core::WorkerPool pool(2);
  core::EventLoop& host = pool.next();
  {
    HostedChain h(host);

    util::Rng rng(kSeed);
    std::uint32_t produced = 0;
    while (produced < kPackets) {
      // Burst of 1..64 packets with payloads spanning the pool's size
      // classes (8..1500 bytes, u32 stamp + pattern).
      const std::uint32_t burst =
          1 + static_cast<std::uint32_t>(rng.next_u64() % 64);
      for (std::uint32_t i = 0; i < burst && produced < kPackets; ++i) {
        const std::size_t size = 8 + rng.next_u64() % 1493;
        h.source->push(testing::make_stamped_packet(kSeed, produced++, size));
      }
      // Random control op against the live chain.
      switch (rng.next_u64() % 4) {
        case 0:
          h.chain->insert(std::make_shared<PassThroughPacketFilter>(
                              "s" + std::to_string(produced)),
                          h.chain->size() == 0
                              ? 0
                              : rng.next_u64() % (h.chain->size() + 1));
          break;
        case 1:
          if (h.chain->size() > 0) h.chain->remove(rng.next_u64() % h.chain->size());
          break;
        case 2:
          if (h.chain->size() > 1) {
            h.chain->reorder(rng.next_u64() % h.chain->size(),
                             rng.next_u64() % h.chain->size());
          }
          break;
        default:
          std::this_thread::yield();
          break;
      }
    }
    h.source->finish();
    ASSERT_TRUE(h.sink->wait_for(kPackets, /*timeout_ms=*/60'000));

    testing::PacketLedger ledger(kSeed, kPackets);
    for (const auto& p : h.sink->packets()) ledger.record(p);
    EXPECT_EQ(ledger.ok(), kPackets);
    EXPECT_EQ(ledger.lost(), 0u);
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.reordered(), 0u);
    EXPECT_EQ(ledger.corrupt(), 0u);

    // The schedule ran on the worker's arena: its pool did real work.
    EXPECT_GT(host.pool().stats().hits + host.pool().stats().misses, 0u);

    h.chain->drain_shutdown();
  }
  pool.stop();
}

}  // namespace
}  // namespace rapidware
