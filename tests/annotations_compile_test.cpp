// Negative-compile probe for the thread-safety gate (docs/static_analysis.md).
//
// This file accesses an RW_GUARDED_BY field without holding its mutex. Under
// Clang with -DRW_THREAD_SAFETY=ON (-Werror=thread-safety) it MUST fail to
// compile; ctest registers the build of this target with WILL_FAIL, so the
// suite goes red if the gate ever silently stops rejecting bad code — e.g.
// if the annotation macros get stubbed out on Clang or the warning flags are
// dropped. On GCC (annotations compile away) the target is not registered.
//
// Keep exactly one violation per guarded pattern here: the test asserts the
// gate fires, not how many diagnostics it emits.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  // VIOLATION: reads counter_ without mu_ — thread-safety analysis must
  // reject this function.
  int unlocked_read() const { return counter_; }

 private:
  mutable rw::Mutex mu_;
  int counter_ RW_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.unlocked_read();
}
