// Tests for the concrete filter library: FEC encode/decode filters (in and
// out of chains), UEP, transcoding, compression, encryption, throttling,
// stats taps, interleaving filters, caching, and the filter registry.
#include <gtest/gtest.h>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "filters/cache_filter.h"
#include "filters/compress_filter.h"
#include "filters/crypto_filter.h"
#include "filters/fec_filters.h"
#include "filters/interleave_filter.h"
#include "filters/registry.h"
#include "filters/stats_filter.h"
#include "filters/throttle_filter.h"
#include "filters/transcode_filter.h"
#include "media/audio.h"
#include "media/media_packet.h"
#include "media/video.h"
#include "util/rng.h"

namespace rapidware::filters {
namespace {

using util::Bytes;

/// Chain harness with queue source and collecting sink.
struct Harness {
  std::shared_ptr<core::QueuePacketSource> source =
      std::make_shared<core::QueuePacketSource>();
  std::shared_ptr<core::CollectingPacketSink> sink =
      std::make_shared<core::CollectingPacketSink>();
  std::shared_ptr<core::FilterChain> chain;

  Harness() {
    chain = std::make_shared<core::FilterChain>(
        std::make_shared<core::PacketReaderEndpoint>("in", source),
        std::make_shared<core::PacketWriterEndpoint>("out", sink));
    chain->start();
  }
  ~Harness() {
    source->finish();
    chain->shutdown();
  }
  void run_to_completion() {
    source->finish();
    chain->shutdown();
  }
};

std::vector<Bytes> media_payloads(int count, std::size_t size = 120) {
  util::Rng rng(42);
  std::vector<Bytes> out;
  for (int i = 0; i < count; ++i) {
    media::MediaPacket p;
    p.seq = static_cast<std::uint32_t>(i);
    p.timestamp_us = i * 20'000;
    p.payload.resize(size);
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    out.push_back(p.serialize());
  }
  return out;
}

// ---------------------------------------------------------------------------
// FEC filters

TEST(FecFilters, EncodeExpandsByNOverK) {
  Harness h;
  h.chain->insert(std::make_shared<FecEncodeFilter>(6, 4), 0);
  for (auto& p : media_payloads(40)) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->count(), 60u);  // 40 data + 20 parity
}

TEST(FecFilters, EncodeDecodeRoundTripLossless) {
  Harness h;
  h.chain->insert(std::make_shared<FecEncodeFilter>(6, 4), 0);
  h.chain->insert(std::make_shared<FecDecodeFilter>(), 1);
  const auto sent = media_payloads(43);  // deliberately not a multiple of 4
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(FecFilters, DecoderPassesThroughRawPackets) {
  Harness h;
  h.chain->insert(std::make_shared<FecDecodeFilter>(), 0);
  const auto sent = media_payloads(10);
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(FecFilters, MidStreamEncoderInsertionKeepsDecodableStream) {
  // Decoder runs permanently; encoder is inserted mid-stream (demand-driven
  // FEC). All packets must come out exactly once, in order.
  Harness h;
  h.chain->insert(std::make_shared<FecDecodeFilter>(), 0);
  const auto sent = media_payloads(60);
  for (int i = 0; i < 30; ++i) h.source->push(sent[static_cast<std::size_t>(i)]);
  ASSERT_TRUE(h.sink->wait_for(30));
  h.chain->insert(std::make_shared<FecEncodeFilter>(6, 4), 0);
  for (int i = 30; i < 60; ++i) h.source->push(sent[static_cast<std::size_t>(i)]);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(FecFilters, EncoderRemovalFlushesPartialGroup) {
  Harness h;
  auto enc = std::make_shared<FecEncodeFilter>(6, 4);
  h.chain->insert(enc, 0);
  h.chain->insert(std::make_shared<FecDecodeFilter>(), 1);
  const auto sent = media_payloads(6);  // 4 full group + 2 held
  for (auto& p : sent) h.source->push(p);
  ASSERT_TRUE(h.sink->wait_for(4));
  h.chain->remove(0);  // must flush the 2 held packets as a short group
  ASSERT_TRUE(h.sink->wait_for(6));
  EXPECT_EQ(h.sink->packets(), sent);
  h.run_to_completion();
}

TEST(FecFilters, ParamChangeAppliesAtGroupBoundary) {
  Harness h;
  auto enc = std::make_shared<FecEncodeFilter>(6, 4);
  h.chain->insert(enc, 0);
  EXPECT_TRUE(enc->set_param("n", "8"));
  EXPECT_TRUE(enc->set_param("k", "2"));
  const auto sent = media_payloads(2);
  for (auto& p : sent) h.source->push(p);
  // (8-ish, 2): one group of 2 data + 6 parity.
  ASSERT_TRUE(h.sink->wait_for(8));
  h.run_to_completion();
  EXPECT_EQ(h.sink->count(), 8u);
}

TEST(FecFilters, ParamValidation) {
  FecEncodeFilter enc(6, 4);
  EXPECT_FALSE(enc.set_param("n", "0"));
  EXPECT_FALSE(enc.set_param("n", "3"));   // below k
  EXPECT_FALSE(enc.set_param("k", "7"));   // above n
  EXPECT_FALSE(enc.set_param("k", "abc"));
  EXPECT_FALSE(enc.set_param("other", "1"));
  EXPECT_TRUE(enc.set_param("k", "2"));
  EXPECT_EQ(enc.params().at("k"), "2");
  EXPECT_EQ(enc.describe(), "fec-enc(6,2)");
}

TEST(FecFilters, DecodeStatsExposed) {
  Harness h;
  auto dec = std::make_shared<FecDecodeFilter>();
  h.chain->insert(std::make_shared<FecEncodeFilter>(4, 2), 0);
  h.chain->insert(dec, 1);
  for (auto& p : media_payloads(10)) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(dec->params().at("data_received"), "10");
  EXPECT_EQ(dec->stats().data_lost, 0u);
}

// ---------------------------------------------------------------------------
// UEP

TEST(UepFilter, ProtectsKeyFramesMore) {
  Harness h;
  auto uep = std::make_shared<UepFecEncodeFilter>();
  h.chain->insert(uep, 0);

  media::MediaPacket key;
  key.frame_class = fec::FrameClass::kKey;
  key.payload = Bytes(100, 1);
  media::MediaPacket b_frame;
  b_frame.seq = 1;
  b_frame.frame_class = fec::FrameClass::kBidirectional;
  b_frame.payload = Bytes(100, 2);

  h.source->push(key.serialize());
  h.source->push(b_frame.serialize());
  h.run_to_completion();
  // Standard policy flushed as short groups: the key frame carries its
  // class's 4 parity packets, the B frame none.
  EXPECT_EQ(h.sink->count(), 1u + 4u + 1u);
  EXPECT_EQ(uep->parity_packets_emitted(), 4u);
}

TEST(UepFilter, OverheadMatchesPolicyRates) {
  // Full groups: 4 I frames -> (8,4) = 8 packets; 4 B frames -> (4,4) = 4.
  Harness h;
  auto uep = std::make_shared<UepFecEncodeFilter>();
  h.chain->insert(uep, 0);
  for (int i = 0; i < 4; ++i) {
    media::MediaPacket p;
    p.seq = static_cast<std::uint32_t>(i);
    p.frame_class = fec::FrameClass::kKey;
    p.payload = Bytes(50, 1);
    h.source->push(p.serialize());
  }
  for (int i = 0; i < 4; ++i) {
    media::MediaPacket p;
    p.seq = static_cast<std::uint32_t>(4 + i);
    p.frame_class = fec::FrameClass::kBidirectional;
    p.payload = Bytes(50, 2);
    h.source->push(p.serialize());
  }
  h.run_to_completion();
  EXPECT_EQ(h.sink->count(), 8u + 4u);  // 2x for I, 1x for B
  EXPECT_EQ(uep->parity_packets_emitted(), 4u);
}

TEST(UepFilter, StreamDecodableByStandardDecoder) {
  Harness h;
  h.chain->insert(std::make_shared<UepFecEncodeFilter>(), 0);
  h.chain->insert(std::make_shared<FecDecodeFilter>(), 1);

  media::VideoStreamSource video;
  std::vector<Bytes> sent;
  for (int i = 0; i < 27; ++i) sent.push_back(video.next_frame().serialize());
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  // Classes are grouped separately, so delivery order may interleave;
  // every frame must arrive exactly once (compare seq-sorted).
  auto by_seq = [](const Bytes& a, const Bytes& b) {
    return media::MediaPacket::parse(a).seq < media::MediaPacket::parse(b).seq;
  };
  auto got = h.sink->packets();
  std::sort(got.begin(), got.end(), by_seq);
  EXPECT_EQ(got, sent);
}

// ---------------------------------------------------------------------------
// Transcode

TEST(TranscodeFilter, MonoHalvesStereoPayload) {
  Harness h;
  h.chain->insert(std::make_shared<AudioTranscodeFilter>(
                      media::paper_audio_format(), TranscodeMode::kMono),
                  0);
  media::AudioSource src;
  media::AudioPacketizer packetizer(src);
  const media::MediaPacket p = packetizer.next_packet();
  h.source->push(p.serialize());
  ASSERT_TRUE(h.sink->wait_for(1));
  const auto out = media::MediaPacket::parse(h.sink->packets()[0]);
  EXPECT_EQ(out.payload.size(), p.payload.size() / 2);
  EXPECT_EQ(out.seq, p.seq);  // header preserved
  h.run_to_completion();
}

TEST(TranscodeFilter, MonoHalfQuartersPayload) {
  Harness h;
  auto f = std::make_shared<AudioTranscodeFilter>(media::paper_audio_format(),
                                                  TranscodeMode::kMonoHalf);
  h.chain->insert(f, 0);
  EXPECT_DOUBLE_EQ(f->reduction_factor(), 4.0);
  media::AudioSource src;
  media::AudioPacketizer packetizer(src);
  h.source->push(packetizer.next_packet().serialize());
  ASSERT_TRUE(h.sink->wait_for(1));
  EXPECT_EQ(media::MediaPacket::parse(h.sink->packets()[0]).payload.size(),
            80u);
  h.run_to_completion();
}

TEST(TranscodeFilter, ModeSwitchAtRuntime) {
  AudioTranscodeFilter f(media::paper_audio_format());
  EXPECT_TRUE(f.set_param("mode", "half"));
  EXPECT_EQ(f.describe(), "transcode(half-rate)");
  EXPECT_FALSE(f.set_param("mode", "nonsense"));
  EXPECT_FALSE(f.set_param("rate", "4000"));
}

// ---------------------------------------------------------------------------
// Compression

TEST(Compression, RoundTripsArbitraryData) {
  util::Rng rng(1);
  for (const std::size_t len : {0u, 1u, 2u, 100u, 4096u}) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(rle_decompress(rle_compress(data)), data) << "len " << len;
  }
}

TEST(Compression, CompressesRuns) {
  const Bytes runs(1000, 7);
  const Bytes compressed = rle_compress(runs);
  EXPECT_LT(compressed.size(), 50u);
  EXPECT_EQ(rle_decompress(compressed), runs);
}

TEST(Compression, CompressesSmoothAudio) {
  // A slow ramp has tiny deltas -> long runs after delta precoding.
  Bytes ramp(1000);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<std::uint8_t>(i / 8);
  }
  EXPECT_LT(rle_compress(ramp).size(), ramp.size() / 2);
}

TEST(Compression, NeverExpandsBeyondOneByte) {
  util::Rng rng(2);
  Bytes noise(777);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u64());
  EXPECT_LE(rle_compress(noise).size(), noise.size() + 1);
}

TEST(Compression, RejectsCorruptInput) {
  EXPECT_THROW(rle_decompress({}), std::invalid_argument);
  EXPECT_THROW(rle_decompress(Bytes{9, 1, 2}), std::invalid_argument);
  EXPECT_THROW(rle_decompress(Bytes{1, 0, 5}), std::invalid_argument);  // run 0
}

TEST(Compression, FilterPairRoundTripsInChain) {
  Harness h;
  auto comp = std::make_shared<CompressFilter>();
  h.chain->insert(comp, 0);
  h.chain->insert(std::make_shared<DecompressFilter>(), 1);
  media::AudioSource src;
  media::AudioPacketizer packetizer(src);
  std::vector<Bytes> sent;
  // 1.6 s of audio: includes the source's speech pauses, which compress.
  for (int i = 0; i < 80; ++i) sent.push_back(packetizer.next_packet().serialize());
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
  EXPECT_LT(comp->ratio(), 1.0);
}

// ---------------------------------------------------------------------------
// Encryption

TEST(Crypto, ChaChaKnownAnswerRfc8439) {
  // RFC 8439 section 2.4.2 test vector.
  ChaChaKey key;
  for (std::size_t i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0};
  std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  Bytes data(plaintext.begin(), plaintext.end());
  chacha20_xor(key, nonce, 1, data);
  EXPECT_EQ(util::to_hex(util::ByteSpan(data.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(Crypto, EncryptDecryptRoundTripsInChain) {
  Harness h;
  const ChaChaKey key = derive_key("test-passphrase");
  h.chain->insert(std::make_shared<EncryptFilter>(key), 0);
  h.chain->insert(std::make_shared<DecryptFilter>(key), 1);
  const auto sent = media_payloads(30);
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(Crypto, CiphertextDiffersFromPlaintextAndVaries) {
  Harness h;
  h.chain->insert(std::make_shared<EncryptFilter>(derive_key("k")), 0);
  const Bytes plain(64, 0xAA);
  h.source->push(plain);
  h.source->push(plain);
  h.run_to_completion();
  const auto out = h.sink->packets();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(Bytes(out[0].begin() + 8, out[0].end()), plain);
  // Same plaintext, different packet index -> different ciphertext.
  EXPECT_NE(out[0], out[1]);
}

TEST(Crypto, WrongKeyProducesGarbage) {
  const ChaChaKey k1 = derive_key("right");
  const ChaChaKey k2 = derive_key("wrong");
  EXPECT_NE(k1, k2);
  Bytes data = util::to_bytes("some secret payload");
  const Bytes original = data;
  ChaChaNonce nonce{};
  chacha20_xor(k1, nonce, 0, data);
  chacha20_xor(k2, nonce, 0, data);
  EXPECT_NE(data, original);
}

// ---------------------------------------------------------------------------
// Throttle

TEST(Throttle, LimitsThroughput) {
  Harness h;
  // 50 KB/s with a tiny bucket; 20 packets x 1000 B = 20 KB -> >= ~0.3 s.
  h.chain->insert(std::make_shared<ThrottleFilter>(50'000.0, 1000.0), 0);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) h.source->push(Bytes(1000, 1));
  h.run_to_completion();
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(h.sink->count(), 20u);
  EXPECT_GT(elapsed, 0.3);
}

TEST(Throttle, RejectsNonPositiveRate) {
  EXPECT_THROW(ThrottleFilter(0.0), std::invalid_argument);
  EXPECT_THROW(ThrottleFilter(-5.0), std::invalid_argument);
}

TEST(Throttle, RateParamUpdates) {
  ThrottleFilter f(1000.0);
  EXPECT_TRUE(f.set_param("bytes_per_sec", "2000"));
  EXPECT_FALSE(f.set_param("bytes_per_sec", "-1"));
  EXPECT_FALSE(f.set_param("bytes_per_sec", "zzz"));
  EXPECT_EQ(f.describe(), "throttle(2000B/s)");
}

// ---------------------------------------------------------------------------
// Stats

TEST(Stats, CountsTraffic) {
  Harness h;
  auto tap = std::make_shared<StatsFilter>("tap");
  h.chain->insert(tap, 0);
  for (int i = 0; i < 10; ++i) h.source->push(Bytes(100, 1));
  h.run_to_completion();
  EXPECT_EQ(tap->packets(), 10u);
  EXPECT_EQ(tap->bytes(), 1000u);
  EXPECT_EQ(h.sink->count(), 10u);  // pass-through
}

// ---------------------------------------------------------------------------
// Interleave filters

TEST(InterleaveFilters, PairRestoresOrderInChain) {
  Harness h;
  h.chain->insert(std::make_shared<InterleaveFilter>(3, 5), 0);
  h.chain->insert(std::make_shared<DeinterleaveFilter>(3, 5), 1);
  const auto sent = media_payloads(31);  // two full blocks + partial
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
}

// ---------------------------------------------------------------------------
// Cache

TEST(ContentStoreTest, LruEvicts) {
  ContentStore store(250);
  store.put(1, Bytes(100, 1));
  store.put(2, Bytes(100, 2));
  store.put(3, Bytes(100, 3));  // evicts hash 1
  EXPECT_EQ(store.get(1), nullptr);
  EXPECT_NE(store.get(2), nullptr);
  EXPECT_NE(store.get(3), nullptr);
  EXPECT_LE(store.size_bytes(), 250u);
}

TEST(ContentStoreTest, GetRefreshesRecency) {
  ContentStore store(250);
  store.put(1, Bytes(100, 1));
  store.put(2, Bytes(100, 2));
  store.get(1);                 // 1 is now most recent
  store.put(3, Bytes(100, 3));  // evicts 2, not 1
  EXPECT_NE(store.get(1), nullptr);
  EXPECT_EQ(store.get(2), nullptr);
}

TEST(ContentStoreTest, OversizedBodyNotStored) {
  ContentStore store(50);
  store.put(1, Bytes(100, 1));
  EXPECT_EQ(store.get(1), nullptr);
  EXPECT_EQ(store.size_bytes(), 0u);
}

TEST(CacheFilters, RepeatedContentShrinksAndRoundTrips) {
  Harness h;
  auto pack = std::make_shared<CachePackFilter>();
  h.chain->insert(pack, 0);
  h.chain->insert(std::make_shared<CacheExpandFilter>(), 1);

  const Bytes resource(5000, 0x5a);  // "the same URL body", fetched 5 times
  std::vector<Bytes> sent(5, resource);
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
  EXPECT_EQ(pack->hits(), 4u);
  EXPECT_EQ(pack->misses(), 1u);
}

TEST(CacheFilters, DistinctContentPassesThrough) {
  Harness h;
  auto pack = std::make_shared<CachePackFilter>();
  h.chain->insert(pack, 0);
  h.chain->insert(std::make_shared<CacheExpandFilter>(), 1);
  const auto sent = media_payloads(10);
  for (auto& p : sent) h.source->push(p);
  h.run_to_completion();
  EXPECT_EQ(h.sink->packets(), sent);
  EXPECT_EQ(pack->hits(), 0u);
}

// ---------------------------------------------------------------------------
// Registry

TEST(BuiltinRegistry, AllNamesConstruct) {
  core::FilterRegistry registry;
  register_builtin_filters(registry);
  for (const auto& name : registry.names()) {
    auto filter = registry.create({name, {}});
    ASSERT_NE(filter, nullptr) << name;
  }
}

TEST(BuiltinRegistry, ParamsArePassedThrough) {
  core::FilterRegistry registry;
  register_builtin_filters(registry);
  auto fec = registry.create({"fec-encode", {{"n", "8"}, {"k", "2"}}});
  EXPECT_EQ(fec->params().at("n"), "8");
  EXPECT_EQ(fec->params().at("k"), "2");
  auto throttle = registry.create({"throttle", {{"bytes_per_sec", "1234"}}});
  EXPECT_EQ(throttle->describe(), "throttle(1234B/s)");
}

TEST(BuiltinRegistry, GlobalRegistrationIdempotent) {
  register_builtin_filters();
  register_builtin_filters();
  EXPECT_TRUE(core::global_registry().contains("fec-encode"));
}

}  // namespace
}  // namespace rapidware::filters
