// Tests for the wireless LAN simulator: path-loss calibration, per-station
// channels, mobility-driven retuning, and the mobility trace itself.
#include <gtest/gtest.h>

#include "net/sim_network.h"
#include "util/rng.h"
#include "wireless/mobility.h"
#include "wireless/path_loss.h"
#include "wireless/wlan.h"

namespace rapidware::wireless {
namespace {

using util::to_bytes;

// ---------------------------------------------------------------------------
// Path loss

TEST(PathLoss, CalibratedToPaperAt25m) {
  // The paper measured 98.54% raw receipt at 25 m => ~1.46% loss.
  const PathLossModel model = wavelan_model();
  EXPECT_NEAR(model.loss_at(25.0), 0.0146, 0.002);
}

TEST(PathLoss, MonotonicallyIncreasesWithDistance) {
  const PathLossModel model = wavelan_model();
  double prev = 0.0;
  for (double d = 0.0; d <= 60.0; d += 1.0) {
    const double p = model.loss_at(d);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(PathLoss, DramaticChangeOverSeveralMeters) {
  // Section 3: "packet loss rate can change dramatically over a distance of
  // several meters". From 30 m to 40 m loss must grow by several-fold.
  const PathLossModel model = wavelan_model();
  EXPECT_GT(model.loss_at(40.0) / model.loss_at(30.0), 3.0);
}

TEST(PathLoss, RespectsFloorAndCap) {
  const PathLossModel model = wavelan_model();
  EXPECT_DOUBLE_EQ(model.loss_at(0.0), model.p0);  // p0 already above floor
  EXPECT_DOUBLE_EQ(model.loss_at(1000.0), model.cap);
  PathLossModel high_floor = model;
  high_floor.floor = 0.01;
  EXPECT_DOUBLE_EQ(high_floor.loss_at(0.0), 0.01);
}

TEST(PathLoss, DistanceForInvertsLossAt) {
  const PathLossModel model = wavelan_model();
  for (double d : {10.0, 20.0, 25.0, 35.0}) {
    EXPECT_NEAR(model.distance_for(model.loss_at(d)), d, 0.01);
  }
}

// ---------------------------------------------------------------------------
// WirelessLan

struct WlanFixture {
  std::shared_ptr<util::SimClock> clock = std::make_shared<util::SimClock>();
  net::SimNetwork net{clock, 7};
  net::NodeId ap = net.add_node("ap");
  net::NodeId mobile = net.add_node("mobile");
  WirelessLan wlan{net, ap};
};

TEST(WirelessLan, StationLossTracksDistance) {
  WlanFixture f;
  f.wlan.add_station(f.mobile, 25.0);
  EXPECT_NEAR(f.wlan.downlink_loss(f.mobile), 0.0146, 0.002);
  EXPECT_DOUBLE_EQ(f.wlan.distance(f.mobile), 25.0);
}

TEST(WirelessLan, DuplicateStationThrows) {
  WlanFixture f;
  f.wlan.add_station(f.mobile, 10.0);
  EXPECT_THROW(f.wlan.add_station(f.mobile, 10.0), std::invalid_argument);
}

TEST(WirelessLan, UnknownStationQueriesThrow) {
  WlanFixture f;
  EXPECT_THROW(f.wlan.distance(f.mobile), std::invalid_argument);
  EXPECT_THROW(f.wlan.set_distance(f.mobile, 5.0), std::invalid_argument);
  EXPECT_THROW(f.wlan.downlink_stats(f.mobile), std::invalid_argument);
}

TEST(WirelessLan, DownlinkDropsMatchModeledLoss) {
  WlanFixture f;
  f.wlan.add_station(f.mobile, 35.0);  // ~5.7% loss
  auto ap_sock = f.net.open(f.ap);
  auto mob_sock = f.net.open(f.mobile, 99);

  const int kPackets = 40'000;
  for (int i = 0; i < kPackets; ++i) {
    ap_sock->send_to({f.mobile, 99}, to_bytes("pkt"));
  }
  const auto stats = f.wlan.downlink_stats(f.mobile);
  EXPECT_EQ(stats.attempted, static_cast<std::uint64_t>(kPackets));
  const double observed =
      static_cast<double>(stats.dropped_loss) / stats.attempted;
  EXPECT_NEAR(observed, f.wlan.downlink_loss(f.mobile), 0.02);
  // Queue drops are possible at 2 Mbps, but loss should dominate here.
  (void)mob_sock;
}

TEST(WirelessLan, MobilityRetunesLossLive) {
  WlanFixture f;
  f.wlan.add_station(f.mobile, 5.0);
  auto ap_sock = f.net.open(f.ap);
  auto mob_sock = f.net.open(f.mobile, 99);

  auto measure = [&](int packets) {
    const auto before = f.wlan.downlink_stats(f.mobile);
    for (int i = 0; i < packets; ++i) {
      ap_sock->send_to({f.mobile, 99}, to_bytes("x"));
    }
    const auto after = f.wlan.downlink_stats(f.mobile);
    return static_cast<double>(after.dropped_loss - before.dropped_loss) /
           static_cast<double>(after.attempted - before.attempted);
  };

  const double near_loss = measure(30'000);
  f.wlan.set_distance(f.mobile, 40.0);
  const double far_loss = measure(30'000);
  EXPECT_LT(near_loss, 0.01);
  EXPECT_GT(far_loss, 0.05);
  (void)mob_sock;
}

TEST(WirelessLan, UplinkIsCleanerThanDownlink) {
  WlanFixture f;
  f.wlan.add_station(f.mobile, 30.0);
  auto* down = f.net.channel(f.ap, f.mobile);
  auto* up = f.net.channel(f.mobile, f.ap);
  ASSERT_NE(down, nullptr);
  ASSERT_NE(up, nullptr);
  EXPECT_LT(up->average_loss(), down->average_loss());
}

TEST(WirelessLan, SharedMediumHasFiniteBandwidth) {
  WlanFixture f;
  f.wlan.add_station(f.mobile, 5.0);
  auto* down = f.net.channel(f.ap, f.mobile);
  ASSERT_NE(down, nullptr);
  // 2 Mbps: a 250-byte packet serializes in 1 ms.
  const auto t = down->transit(250, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_GE(*t, 1000);
}

// ---------------------------------------------------------------------------
// Mobility

TEST(WaypointWalk, InterpolatesLinearly) {
  WaypointWalk walk({{0, 0.0}, {1'000'000, 10.0}});
  EXPECT_DOUBLE_EQ(walk.distance_at(0), 0.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(500'000), 5.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(1'000'000), 10.0);
}

TEST(WaypointWalk, ClampsOutsideRange) {
  WaypointWalk walk({{1'000, 3.0}, {2'000, 7.0}});
  EXPECT_DOUBLE_EQ(walk.distance_at(0), 3.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(10'000), 7.0);
}

TEST(WaypointWalk, RejectsEmptyAndUnordered) {
  EXPECT_THROW(WaypointWalk({}), std::invalid_argument);
  EXPECT_THROW(WaypointWalk({{100, 1.0}, {50, 2.0}}), std::invalid_argument);
}

TEST(WaypointWalk, OfficeToConferenceShape) {
  const auto walk = WaypointWalk::office_to_conference(5.0, 35.0, 5.0, 20.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(0), 5.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(util::seconds_to_micros(5.0)), 5.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(util::seconds_to_micros(15.0)), 20.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(util::seconds_to_micros(30.0)), 35.0);
}

TEST(WaypointWalk, ZeroDurationSegment) {
  // Two waypoints at the same instant: the earlier value holds up to and
  // including that instant; the later one takes over just after.
  WaypointWalk walk({{100, 1.0}, {100, 9.0}});
  EXPECT_DOUBLE_EQ(walk.distance_at(100), 1.0);
  EXPECT_DOUBLE_EQ(walk.distance_at(101), 9.0);
}

}  // namespace
}  // namespace rapidware::wireless
