// Tests for PipelineFilter: composite transforms inserted/removed as one
// unit, flush-on-detach through the nested chain, composability typing of
// composites, and registry/upload instantiation.
#include <gtest/gtest.h>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "filters/compress_filter.h"
#include "filters/crypto_filter.h"
#include "filters/fec_filters.h"
#include "filters/pipeline_filter.h"
#include "filters/registry.h"
#include "media/media_packet.h"
#include "util/rng.h"

namespace rapidware::filters {
namespace {

using util::Bytes;

struct Harness {
  std::shared_ptr<core::QueuePacketSource> source =
      std::make_shared<core::QueuePacketSource>();
  std::shared_ptr<core::CollectingPacketSink> sink =
      std::make_shared<core::CollectingPacketSink>();
  std::shared_ptr<core::FilterChain> chain;

  Harness() {
    chain = std::make_shared<core::FilterChain>(
        std::make_shared<core::PacketReaderEndpoint>("in", source),
        std::make_shared<core::PacketWriterEndpoint>("out", sink));
    chain->start();
  }
  ~Harness() {
    source->finish();
    chain->shutdown();
  }
};

std::vector<Bytes> payloads(int count) {
  util::Rng rng(5);
  std::vector<Bytes> out;
  for (int i = 0; i < count; ++i) {
    media::MediaPacket p;
    p.seq = static_cast<std::uint32_t>(i);
    p.payload.resize(80);
    for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    out.push_back(p.serialize());
  }
  return out;
}

std::shared_ptr<PipelineFilter> secure_pipe() {
  const auto key = derive_key("pipe");
  std::vector<std::shared_ptr<core::Filter>> children;
  children.push_back(std::make_shared<CompressFilter>());
  children.push_back(std::make_shared<EncryptFilter>(key));
  return std::make_shared<PipelineFilter>("secure", std::move(children));
}

std::shared_ptr<PipelineFilter> unsecure_pipe() {
  const auto key = derive_key("pipe");
  std::vector<std::shared_ptr<core::Filter>> children;
  children.push_back(std::make_shared<DecryptFilter>(key));
  children.push_back(std::make_shared<DecompressFilter>());
  return std::make_shared<PipelineFilter>("unsecure", std::move(children));
}

TEST(PipelineFilter, RejectsNullAndRunningChildren) {
  EXPECT_THROW(PipelineFilter("x", {nullptr}), std::invalid_argument);
}

TEST(PipelineFilter, CompositePairRoundTripsInChain) {
  Harness h;
  h.chain->append(secure_pipe());
  h.chain->append(unsecure_pipe());
  const auto sent = payloads(40);
  for (auto& p : sent) h.source->push(p);
  h.source->finish();
  h.chain->shutdown();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(PipelineFilter, HotInsertAndRemoveAsOneUnit) {
  Harness h;
  const auto sent = payloads(30);
  for (int i = 0; i < 10; ++i) h.source->push(sent[static_cast<std::size_t>(i)]);
  ASSERT_TRUE(h.sink->wait_for(10));

  // Insert the matched pair mid-stream...
  h.chain->insert(secure_pipe(), 0);
  h.chain->insert(unsecure_pipe(), 1);
  for (int i = 10; i < 20; ++i) h.source->push(sent[static_cast<std::size_t>(i)]);
  ASSERT_TRUE(h.sink->wait_for(20));

  // ...and remove both again; the stream must stay byte-exact throughout.
  h.chain->remove(1);
  h.chain->remove(0);
  for (int i = 20; i < 30; ++i) h.source->push(sent[static_cast<std::size_t>(i)]);
  h.source->finish();
  h.chain->shutdown();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(PipelineFilter, FlushOnDetachDrainsBufferedChildState) {
  // A pipeline containing an FEC encoder holds a partial group; removal
  // must flush it through the nested chain (short group) and out.
  Harness h;
  std::vector<std::shared_ptr<core::Filter>> children;
  children.push_back(std::make_shared<FecEncodeFilter>(6, 4));
  h.chain->append(
      std::make_shared<PipelineFilter>("fec-pipe", std::move(children)));
  h.chain->append(std::make_shared<FecDecodeFilter>());

  const auto sent = payloads(2);  // half a group: held inside the pipeline
  for (auto& p : sent) h.source->push(p);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(h.sink->count(), 0u);

  h.chain->remove(0);  // composite detach must flush the partial group
  ASSERT_TRUE(h.sink->wait_for(2));
  EXPECT_EQ(h.sink->packets(), sent);
  h.source->finish();
  h.chain->shutdown();
}

TEST(PipelineFilter, RemovedCompositeIsReusable) {
  Harness h;
  auto pipe = secure_pipe();
  h.chain->append(pipe);
  auto removed = h.chain->remove(0);
  EXPECT_EQ(removed.get(), pipe.get());
  // Re-insert alongside its inverse; traffic round-trips.
  h.chain->append(removed);
  h.chain->append(unsecure_pipe());
  const auto sent = payloads(5);
  for (auto& p : sent) h.source->push(p);
  h.source->finish();
  h.chain->shutdown();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(PipelineFilter, DescribeShowsChildren) {
  auto pipe = secure_pipe();
  EXPECT_EQ(pipe->describe(), "secure[compress(1.00) -> encrypt(chacha20)]");
  EXPECT_EQ(pipe->child_count(), 2u);
}

TEST(PipelineFilter, TypesFoldAcrossChildren) {
  auto pipe = secure_pipe();
  EXPECT_EQ(pipe->input_requirement(), "any");  // compress accepts anything
  EXPECT_EQ(pipe->output_type("media"), "chacha20(rle(media))");
  auto inverse = unsecure_pipe();
  EXPECT_EQ(inverse->input_requirement(), "chacha20(*)");
  EXPECT_EQ(inverse->output_type("chacha20(rle(media))"), "media");
}

TEST(PipelineFilter, EmptyPipelineIsTransparent) {
  Harness h;
  h.chain->append(std::make_shared<PipelineFilter>(
      "empty", std::vector<std::shared_ptr<core::Filter>>{}));
  const auto sent = payloads(8);
  for (auto& p : sent) h.source->push(p);
  h.source->finish();
  h.chain->shutdown();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(PipelineRegistry, InstantiatesFromSpec) {
  core::FilterRegistry registry;
  register_builtin_filters(registry);
  auto filter = registry.create(
      {"pipeline", {{"of", "compress,encrypt"}, {"name", "sec"}}});
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->output_type("media"), "chacha20(rle(media))");
}

TEST(PipelineRegistry, UploadedCompositeUsableInChain) {
  core::FilterRegistry registry;
  register_builtin_filters(registry);
  // The paper's "uploaded third-party filter" as a composite definition.
  registry.register_alias("lowband-secure",
                          {"pipeline", {{"of", "compress,encrypt"}}});
  registry.register_alias("lowband-undo",
                          {"pipeline", {{"of", "decrypt,decompress"}}});

  Harness h;
  h.chain->append(registry.create({"lowband-secure", {}}));
  h.chain->append(registry.create({"lowband-undo", {}}));
  const auto sent = payloads(12);
  for (auto& p : sent) h.source->push(p);
  h.source->finish();
  h.chain->shutdown();
  EXPECT_EQ(h.sink->packets(), sent);
}

TEST(PipelineRegistry, UnknownChildThrows) {
  core::FilterRegistry registry;
  register_builtin_filters(registry);
  EXPECT_THROW(registry.create({"pipeline", {{"of", "no-such-filter"}}}),
               std::out_of_range);
}

}  // namespace
}  // namespace rapidware::filters
