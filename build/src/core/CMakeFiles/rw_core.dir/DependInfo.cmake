
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/composability.cpp" "src/core/CMakeFiles/rw_core.dir/composability.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/composability.cpp.o.d"
  "/root/repo/src/core/control.cpp" "src/core/CMakeFiles/rw_core.dir/control.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/control.cpp.o.d"
  "/root/repo/src/core/detachable_stream.cpp" "src/core/CMakeFiles/rw_core.dir/detachable_stream.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/detachable_stream.cpp.o.d"
  "/root/repo/src/core/endpoint.cpp" "src/core/CMakeFiles/rw_core.dir/endpoint.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/endpoint.cpp.o.d"
  "/root/repo/src/core/filter.cpp" "src/core/CMakeFiles/rw_core.dir/filter.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/filter.cpp.o.d"
  "/root/repo/src/core/filter_chain.cpp" "src/core/CMakeFiles/rw_core.dir/filter_chain.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/filter_chain.cpp.o.d"
  "/root/repo/src/core/filter_registry.cpp" "src/core/CMakeFiles/rw_core.dir/filter_registry.cpp.o" "gcc" "src/core/CMakeFiles/rw_core.dir/filter_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
