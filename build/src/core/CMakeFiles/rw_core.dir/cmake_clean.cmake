file(REMOVE_RECURSE
  "CMakeFiles/rw_core.dir/composability.cpp.o"
  "CMakeFiles/rw_core.dir/composability.cpp.o.d"
  "CMakeFiles/rw_core.dir/control.cpp.o"
  "CMakeFiles/rw_core.dir/control.cpp.o.d"
  "CMakeFiles/rw_core.dir/detachable_stream.cpp.o"
  "CMakeFiles/rw_core.dir/detachable_stream.cpp.o.d"
  "CMakeFiles/rw_core.dir/endpoint.cpp.o"
  "CMakeFiles/rw_core.dir/endpoint.cpp.o.d"
  "CMakeFiles/rw_core.dir/filter.cpp.o"
  "CMakeFiles/rw_core.dir/filter.cpp.o.d"
  "CMakeFiles/rw_core.dir/filter_chain.cpp.o"
  "CMakeFiles/rw_core.dir/filter_chain.cpp.o.d"
  "CMakeFiles/rw_core.dir/filter_registry.cpp.o"
  "CMakeFiles/rw_core.dir/filter_registry.cpp.o.d"
  "librw_core.a"
  "librw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
