# Empty dependencies file for rw_core.
# This may be replaced when dependencies are built.
