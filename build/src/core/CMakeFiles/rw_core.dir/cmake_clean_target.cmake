file(REMOVE_RECURSE
  "librw_core.a"
)
