
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pavilion/leadership.cpp" "src/pavilion/CMakeFiles/rw_pavilion.dir/leadership.cpp.o" "gcc" "src/pavilion/CMakeFiles/rw_pavilion.dir/leadership.cpp.o.d"
  "/root/repo/src/pavilion/session.cpp" "src/pavilion/CMakeFiles/rw_pavilion.dir/session.cpp.o" "gcc" "src/pavilion/CMakeFiles/rw_pavilion.dir/session.cpp.o.d"
  "/root/repo/src/pavilion/web.cpp" "src/pavilion/CMakeFiles/rw_pavilion.dir/web.cpp.o" "gcc" "src/pavilion/CMakeFiles/rw_pavilion.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/rw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
