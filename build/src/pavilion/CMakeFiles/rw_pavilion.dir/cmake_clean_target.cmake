file(REMOVE_RECURSE
  "librw_pavilion.a"
)
