file(REMOVE_RECURSE
  "CMakeFiles/rw_pavilion.dir/leadership.cpp.o"
  "CMakeFiles/rw_pavilion.dir/leadership.cpp.o.d"
  "CMakeFiles/rw_pavilion.dir/session.cpp.o"
  "CMakeFiles/rw_pavilion.dir/session.cpp.o.d"
  "CMakeFiles/rw_pavilion.dir/web.cpp.o"
  "CMakeFiles/rw_pavilion.dir/web.cpp.o.d"
  "librw_pavilion.a"
  "librw_pavilion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_pavilion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
