# Empty compiler generated dependencies file for rw_pavilion.
# This may be replaced when dependencies are built.
