
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/audio.cpp" "src/media/CMakeFiles/rw_media.dir/audio.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/audio.cpp.o.d"
  "/root/repo/src/media/codecs.cpp" "src/media/CMakeFiles/rw_media.dir/codecs.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/codecs.cpp.o.d"
  "/root/repo/src/media/media_packet.cpp" "src/media/CMakeFiles/rw_media.dir/media_packet.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/media_packet.cpp.o.d"
  "/root/repo/src/media/playout.cpp" "src/media/CMakeFiles/rw_media.dir/playout.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/playout.cpp.o.d"
  "/root/repo/src/media/receiver_log.cpp" "src/media/CMakeFiles/rw_media.dir/receiver_log.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/receiver_log.cpp.o.d"
  "/root/repo/src/media/video.cpp" "src/media/CMakeFiles/rw_media.dir/video.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/video.cpp.o.d"
  "/root/repo/src/media/wav.cpp" "src/media/CMakeFiles/rw_media.dir/wav.cpp.o" "gcc" "src/media/CMakeFiles/rw_media.dir/wav.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/rw_fec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
