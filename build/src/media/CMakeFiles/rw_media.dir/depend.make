# Empty dependencies file for rw_media.
# This may be replaced when dependencies are built.
