file(REMOVE_RECURSE
  "librw_media.a"
)
