file(REMOVE_RECURSE
  "CMakeFiles/rw_media.dir/audio.cpp.o"
  "CMakeFiles/rw_media.dir/audio.cpp.o.d"
  "CMakeFiles/rw_media.dir/codecs.cpp.o"
  "CMakeFiles/rw_media.dir/codecs.cpp.o.d"
  "CMakeFiles/rw_media.dir/media_packet.cpp.o"
  "CMakeFiles/rw_media.dir/media_packet.cpp.o.d"
  "CMakeFiles/rw_media.dir/playout.cpp.o"
  "CMakeFiles/rw_media.dir/playout.cpp.o.d"
  "CMakeFiles/rw_media.dir/receiver_log.cpp.o"
  "CMakeFiles/rw_media.dir/receiver_log.cpp.o.d"
  "CMakeFiles/rw_media.dir/video.cpp.o"
  "CMakeFiles/rw_media.dir/video.cpp.o.d"
  "CMakeFiles/rw_media.dir/wav.cpp.o"
  "CMakeFiles/rw_media.dir/wav.cpp.o.d"
  "librw_media.a"
  "librw_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
