# Empty compiler generated dependencies file for rw_wireless.
# This may be replaced when dependencies are built.
