file(REMOVE_RECURSE
  "CMakeFiles/rw_wireless.dir/mobility.cpp.o"
  "CMakeFiles/rw_wireless.dir/mobility.cpp.o.d"
  "CMakeFiles/rw_wireless.dir/path_loss.cpp.o"
  "CMakeFiles/rw_wireless.dir/path_loss.cpp.o.d"
  "CMakeFiles/rw_wireless.dir/wlan.cpp.o"
  "CMakeFiles/rw_wireless.dir/wlan.cpp.o.d"
  "librw_wireless.a"
  "librw_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
