file(REMOVE_RECURSE
  "librw_wireless.a"
)
