file(REMOVE_RECURSE
  "CMakeFiles/rw_proxy.dir/proxy.cpp.o"
  "CMakeFiles/rw_proxy.dir/proxy.cpp.o.d"
  "CMakeFiles/rw_proxy.dir/socket_endpoints.cpp.o"
  "CMakeFiles/rw_proxy.dir/socket_endpoints.cpp.o.d"
  "librw_proxy.a"
  "librw_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
