# Empty dependencies file for rw_proxy.
# This may be replaced when dependencies are built.
