file(REMOVE_RECURSE
  "librw_proxy.a"
)
