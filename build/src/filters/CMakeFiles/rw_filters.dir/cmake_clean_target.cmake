file(REMOVE_RECURSE
  "librw_filters.a"
)
