# Empty compiler generated dependencies file for rw_filters.
# This may be replaced when dependencies are built.
