file(REMOVE_RECURSE
  "CMakeFiles/rw_filters.dir/cache_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/cache_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/compress_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/compress_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/crypto_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/crypto_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/fec_filters.cpp.o"
  "CMakeFiles/rw_filters.dir/fec_filters.cpp.o.d"
  "CMakeFiles/rw_filters.dir/interleave_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/interleave_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/pipeline_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/pipeline_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/registry.cpp.o"
  "CMakeFiles/rw_filters.dir/registry.cpp.o.d"
  "CMakeFiles/rw_filters.dir/stats_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/stats_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/throttle_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/throttle_filter.cpp.o.d"
  "CMakeFiles/rw_filters.dir/transcode_filter.cpp.o"
  "CMakeFiles/rw_filters.dir/transcode_filter.cpp.o.d"
  "librw_filters.a"
  "librw_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
