
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filters/cache_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/cache_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/cache_filter.cpp.o.d"
  "/root/repo/src/filters/compress_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/compress_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/compress_filter.cpp.o.d"
  "/root/repo/src/filters/crypto_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/crypto_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/crypto_filter.cpp.o.d"
  "/root/repo/src/filters/fec_filters.cpp" "src/filters/CMakeFiles/rw_filters.dir/fec_filters.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/fec_filters.cpp.o.d"
  "/root/repo/src/filters/interleave_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/interleave_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/interleave_filter.cpp.o.d"
  "/root/repo/src/filters/pipeline_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/pipeline_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/pipeline_filter.cpp.o.d"
  "/root/repo/src/filters/registry.cpp" "src/filters/CMakeFiles/rw_filters.dir/registry.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/registry.cpp.o.d"
  "/root/repo/src/filters/stats_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/stats_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/stats_filter.cpp.o.d"
  "/root/repo/src/filters/throttle_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/throttle_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/throttle_filter.cpp.o.d"
  "/root/repo/src/filters/transcode_filter.cpp" "src/filters/CMakeFiles/rw_filters.dir/transcode_filter.cpp.o" "gcc" "src/filters/CMakeFiles/rw_filters.dir/transcode_filter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/rw_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/rw_media.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
