file(REMOVE_RECURSE
  "CMakeFiles/rw_util.dir/bytes.cpp.o"
  "CMakeFiles/rw_util.dir/bytes.cpp.o.d"
  "CMakeFiles/rw_util.dir/framing.cpp.o"
  "CMakeFiles/rw_util.dir/framing.cpp.o.d"
  "CMakeFiles/rw_util.dir/io.cpp.o"
  "CMakeFiles/rw_util.dir/io.cpp.o.d"
  "CMakeFiles/rw_util.dir/logging.cpp.o"
  "CMakeFiles/rw_util.dir/logging.cpp.o.d"
  "CMakeFiles/rw_util.dir/rng.cpp.o"
  "CMakeFiles/rw_util.dir/rng.cpp.o.d"
  "CMakeFiles/rw_util.dir/serial.cpp.o"
  "CMakeFiles/rw_util.dir/serial.cpp.o.d"
  "CMakeFiles/rw_util.dir/stats.cpp.o"
  "CMakeFiles/rw_util.dir/stats.cpp.o.d"
  "librw_util.a"
  "librw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
