file(REMOVE_RECURSE
  "librw_util.a"
)
