# Empty dependencies file for rw_util.
# This may be replaced when dependencies are built.
