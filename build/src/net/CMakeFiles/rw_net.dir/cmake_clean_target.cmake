file(REMOVE_RECURSE
  "librw_net.a"
)
