# Empty dependencies file for rw_net.
# This may be replaced when dependencies are built.
