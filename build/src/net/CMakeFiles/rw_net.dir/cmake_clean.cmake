file(REMOVE_RECURSE
  "CMakeFiles/rw_net.dir/link.cpp.o"
  "CMakeFiles/rw_net.dir/link.cpp.o.d"
  "CMakeFiles/rw_net.dir/loss.cpp.o"
  "CMakeFiles/rw_net.dir/loss.cpp.o.d"
  "CMakeFiles/rw_net.dir/sim_network.cpp.o"
  "CMakeFiles/rw_net.dir/sim_network.cpp.o.d"
  "librw_net.a"
  "librw_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
