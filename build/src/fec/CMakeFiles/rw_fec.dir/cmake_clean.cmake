file(REMOVE_RECURSE
  "CMakeFiles/rw_fec.dir/fec_group.cpp.o"
  "CMakeFiles/rw_fec.dir/fec_group.cpp.o.d"
  "CMakeFiles/rw_fec.dir/gf256.cpp.o"
  "CMakeFiles/rw_fec.dir/gf256.cpp.o.d"
  "CMakeFiles/rw_fec.dir/interleaver.cpp.o"
  "CMakeFiles/rw_fec.dir/interleaver.cpp.o.d"
  "CMakeFiles/rw_fec.dir/matrix.cpp.o"
  "CMakeFiles/rw_fec.dir/matrix.cpp.o.d"
  "CMakeFiles/rw_fec.dir/rs_code.cpp.o"
  "CMakeFiles/rw_fec.dir/rs_code.cpp.o.d"
  "CMakeFiles/rw_fec.dir/uep.cpp.o"
  "CMakeFiles/rw_fec.dir/uep.cpp.o.d"
  "librw_fec.a"
  "librw_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
