
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/fec_group.cpp" "src/fec/CMakeFiles/rw_fec.dir/fec_group.cpp.o" "gcc" "src/fec/CMakeFiles/rw_fec.dir/fec_group.cpp.o.d"
  "/root/repo/src/fec/gf256.cpp" "src/fec/CMakeFiles/rw_fec.dir/gf256.cpp.o" "gcc" "src/fec/CMakeFiles/rw_fec.dir/gf256.cpp.o.d"
  "/root/repo/src/fec/interleaver.cpp" "src/fec/CMakeFiles/rw_fec.dir/interleaver.cpp.o" "gcc" "src/fec/CMakeFiles/rw_fec.dir/interleaver.cpp.o.d"
  "/root/repo/src/fec/matrix.cpp" "src/fec/CMakeFiles/rw_fec.dir/matrix.cpp.o" "gcc" "src/fec/CMakeFiles/rw_fec.dir/matrix.cpp.o.d"
  "/root/repo/src/fec/rs_code.cpp" "src/fec/CMakeFiles/rw_fec.dir/rs_code.cpp.o" "gcc" "src/fec/CMakeFiles/rw_fec.dir/rs_code.cpp.o.d"
  "/root/repo/src/fec/uep.cpp" "src/fec/CMakeFiles/rw_fec.dir/uep.cpp.o" "gcc" "src/fec/CMakeFiles/rw_fec.dir/uep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
