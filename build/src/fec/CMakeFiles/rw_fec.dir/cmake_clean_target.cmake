file(REMOVE_RECURSE
  "librw_fec.a"
)
