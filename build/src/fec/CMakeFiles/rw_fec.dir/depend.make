# Empty dependencies file for rw_fec.
# This may be replaced when dependencies are built.
