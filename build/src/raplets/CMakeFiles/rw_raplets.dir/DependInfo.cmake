
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raplets/adaptation_manager.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/adaptation_manager.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/adaptation_manager.cpp.o.d"
  "/root/repo/src/raplets/fec_responder.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/fec_responder.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/fec_responder.cpp.o.d"
  "/root/repo/src/raplets/handoff.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/handoff.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/handoff.cpp.o.d"
  "/root/repo/src/raplets/loss_observer.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/loss_observer.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/loss_observer.cpp.o.d"
  "/root/repo/src/raplets/receiver_report.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/receiver_report.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/receiver_report.cpp.o.d"
  "/root/repo/src/raplets/throughput_observer.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/throughput_observer.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/throughput_observer.cpp.o.d"
  "/root/repo/src/raplets/transcode_responder.cpp" "src/raplets/CMakeFiles/rw_raplets.dir/transcode_responder.cpp.o" "gcc" "src/raplets/CMakeFiles/rw_raplets.dir/transcode_responder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rw_net.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/rw_media.dir/DependInfo.cmake"
  "/root/repo/build/src/filters/CMakeFiles/rw_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/rw_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/rw_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
