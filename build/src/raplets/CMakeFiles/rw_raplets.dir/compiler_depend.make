# Empty compiler generated dependencies file for rw_raplets.
# This may be replaced when dependencies are built.
