file(REMOVE_RECURSE
  "CMakeFiles/rw_raplets.dir/adaptation_manager.cpp.o"
  "CMakeFiles/rw_raplets.dir/adaptation_manager.cpp.o.d"
  "CMakeFiles/rw_raplets.dir/fec_responder.cpp.o"
  "CMakeFiles/rw_raplets.dir/fec_responder.cpp.o.d"
  "CMakeFiles/rw_raplets.dir/handoff.cpp.o"
  "CMakeFiles/rw_raplets.dir/handoff.cpp.o.d"
  "CMakeFiles/rw_raplets.dir/loss_observer.cpp.o"
  "CMakeFiles/rw_raplets.dir/loss_observer.cpp.o.d"
  "CMakeFiles/rw_raplets.dir/receiver_report.cpp.o"
  "CMakeFiles/rw_raplets.dir/receiver_report.cpp.o.d"
  "CMakeFiles/rw_raplets.dir/throughput_observer.cpp.o"
  "CMakeFiles/rw_raplets.dir/throughput_observer.cpp.o.d"
  "CMakeFiles/rw_raplets.dir/transcode_responder.cpp.o"
  "CMakeFiles/rw_raplets.dir/transcode_responder.cpp.o.d"
  "librw_raplets.a"
  "librw_raplets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_raplets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
