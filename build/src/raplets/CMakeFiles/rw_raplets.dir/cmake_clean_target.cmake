file(REMOVE_RECURSE
  "librw_raplets.a"
)
