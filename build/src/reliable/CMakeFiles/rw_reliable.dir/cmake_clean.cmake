file(REMOVE_RECURSE
  "CMakeFiles/rw_reliable.dir/reliable_multicast.cpp.o"
  "CMakeFiles/rw_reliable.dir/reliable_multicast.cpp.o.d"
  "librw_reliable.a"
  "librw_reliable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
