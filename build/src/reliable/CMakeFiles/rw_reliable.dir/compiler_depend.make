# Empty compiler generated dependencies file for rw_reliable.
# This may be replaced when dependencies are built.
