file(REMOVE_RECURSE
  "librw_reliable.a"
)
