# Empty compiler generated dependencies file for detachable_stream_test.
# This may be replaced when dependencies are built.
