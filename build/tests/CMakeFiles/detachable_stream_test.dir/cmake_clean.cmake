file(REMOVE_RECURSE
  "CMakeFiles/detachable_stream_test.dir/detachable_stream_test.cpp.o"
  "CMakeFiles/detachable_stream_test.dir/detachable_stream_test.cpp.o.d"
  "detachable_stream_test"
  "detachable_stream_test.pdb"
  "detachable_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detachable_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
