file(REMOVE_RECURSE
  "CMakeFiles/raplets_test.dir/raplets_test.cpp.o"
  "CMakeFiles/raplets_test.dir/raplets_test.cpp.o.d"
  "raplets_test"
  "raplets_test.pdb"
  "raplets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raplets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
