# Empty dependencies file for raplets_test.
# This may be replaced when dependencies are built.
