file(REMOVE_RECURSE
  "CMakeFiles/composability_test.dir/composability_test.cpp.o"
  "CMakeFiles/composability_test.dir/composability_test.cpp.o.d"
  "composability_test"
  "composability_test.pdb"
  "composability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
