# Empty compiler generated dependencies file for composability_test.
# This may be replaced when dependencies are built.
