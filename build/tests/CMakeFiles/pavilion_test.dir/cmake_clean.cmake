file(REMOVE_RECURSE
  "CMakeFiles/pavilion_test.dir/pavilion_test.cpp.o"
  "CMakeFiles/pavilion_test.dir/pavilion_test.cpp.o.d"
  "pavilion_test"
  "pavilion_test.pdb"
  "pavilion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pavilion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
