# Empty dependencies file for pavilion_test.
# This may be replaced when dependencies are built.
