file(REMOVE_RECURSE
  "CMakeFiles/filter_chain_test.dir/filter_chain_test.cpp.o"
  "CMakeFiles/filter_chain_test.dir/filter_chain_test.cpp.o.d"
  "filter_chain_test"
  "filter_chain_test.pdb"
  "filter_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
