# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/detachable_stream_test[1]_include.cmake")
include("/root/repo/build/tests/filter_chain_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/fec_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/wireless_test[1]_include.cmake")
include("/root/repo/build/tests/media_test[1]_include.cmake")
include("/root/repo/build/tests/filters_test[1]_include.cmake")
include("/root/repo/build/tests/proxy_test[1]_include.cmake")
include("/root/repo/build/tests/raplets_test[1]_include.cmake")
include("/root/repo/build/tests/pavilion_test[1]_include.cmake")
include("/root/repo/build/tests/adaptation_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/reliable_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/composability_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
