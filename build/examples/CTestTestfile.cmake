# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pavilion_browse "/root/repo/build/examples/pavilion_browse")
set_tests_properties(example_pavilion_browse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reliable_distribution "/root/repo/build/examples/reliable_distribution")
set_tests_properties(example_reliable_distribution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
