# Empty dependencies file for audio_fec_proxy.
# This may be replaced when dependencies are built.
