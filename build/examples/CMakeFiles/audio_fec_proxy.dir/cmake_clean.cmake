file(REMOVE_RECURSE
  "CMakeFiles/audio_fec_proxy.dir/audio_fec_proxy.cpp.o"
  "CMakeFiles/audio_fec_proxy.dir/audio_fec_proxy.cpp.o.d"
  "audio_fec_proxy"
  "audio_fec_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audio_fec_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
