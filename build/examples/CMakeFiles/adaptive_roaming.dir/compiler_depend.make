# Empty compiler generated dependencies file for adaptive_roaming.
# This may be replaced when dependencies are built.
