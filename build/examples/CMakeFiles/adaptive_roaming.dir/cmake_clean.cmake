file(REMOVE_RECURSE
  "CMakeFiles/adaptive_roaming.dir/adaptive_roaming.cpp.o"
  "CMakeFiles/adaptive_roaming.dir/adaptive_roaming.cpp.o.d"
  "adaptive_roaming"
  "adaptive_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
