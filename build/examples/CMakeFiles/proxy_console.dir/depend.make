# Empty dependencies file for proxy_console.
# This may be replaced when dependencies are built.
