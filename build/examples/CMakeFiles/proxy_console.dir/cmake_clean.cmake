file(REMOVE_RECURSE
  "CMakeFiles/proxy_console.dir/proxy_console.cpp.o"
  "CMakeFiles/proxy_console.dir/proxy_console.cpp.o.d"
  "proxy_console"
  "proxy_console.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proxy_console.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
