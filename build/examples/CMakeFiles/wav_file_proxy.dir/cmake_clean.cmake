file(REMOVE_RECURSE
  "CMakeFiles/wav_file_proxy.dir/wav_file_proxy.cpp.o"
  "CMakeFiles/wav_file_proxy.dir/wav_file_proxy.cpp.o.d"
  "wav_file_proxy"
  "wav_file_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wav_file_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
