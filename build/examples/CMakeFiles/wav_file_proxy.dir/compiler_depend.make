# Empty compiler generated dependencies file for wav_file_proxy.
# This may be replaced when dependencies are built.
