file(REMOVE_RECURSE
  "CMakeFiles/reliable_distribution.dir/reliable_distribution.cpp.o"
  "CMakeFiles/reliable_distribution.dir/reliable_distribution.cpp.o.d"
  "reliable_distribution"
  "reliable_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
