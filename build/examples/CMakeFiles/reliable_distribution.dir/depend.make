# Empty dependencies file for reliable_distribution.
# This may be replaced when dependencies are built.
