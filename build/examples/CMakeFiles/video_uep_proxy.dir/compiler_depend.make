# Empty compiler generated dependencies file for video_uep_proxy.
# This may be replaced when dependencies are built.
