file(REMOVE_RECURSE
  "CMakeFiles/video_uep_proxy.dir/video_uep_proxy.cpp.o"
  "CMakeFiles/video_uep_proxy.dir/video_uep_proxy.cpp.o.d"
  "video_uep_proxy"
  "video_uep_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_uep_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
