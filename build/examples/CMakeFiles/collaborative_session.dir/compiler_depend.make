# Empty compiler generated dependencies file for collaborative_session.
# This may be replaced when dependencies are built.
