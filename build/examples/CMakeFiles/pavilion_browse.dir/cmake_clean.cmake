file(REMOVE_RECURSE
  "CMakeFiles/pavilion_browse.dir/pavilion_browse.cpp.o"
  "CMakeFiles/pavilion_browse.dir/pavilion_browse.cpp.o.d"
  "pavilion_browse"
  "pavilion_browse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pavilion_browse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
