# Empty dependencies file for pavilion_browse.
# This may be replaced when dependencies are built.
