# Empty dependencies file for bench_adaptive_fec.
# This may be replaced when dependencies are built.
