file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_fec.dir/bench_adaptive_fec.cpp.o"
  "CMakeFiles/bench_adaptive_fec.dir/bench_adaptive_fec.cpp.o.d"
  "bench_adaptive_fec"
  "bench_adaptive_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
