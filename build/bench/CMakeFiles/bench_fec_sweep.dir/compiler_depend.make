# Empty compiler generated dependencies file for bench_fec_sweep.
# This may be replaced when dependencies are built.
