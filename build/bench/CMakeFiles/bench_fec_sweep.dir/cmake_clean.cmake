file(REMOVE_RECURSE
  "CMakeFiles/bench_fec_sweep.dir/bench_fec_sweep.cpp.o"
  "CMakeFiles/bench_fec_sweep.dir/bench_fec_sweep.cpp.o.d"
  "bench_fec_sweep"
  "bench_fec_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fec_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
