# Empty dependencies file for bench_rs_codec.
# This may be replaced when dependencies are built.
