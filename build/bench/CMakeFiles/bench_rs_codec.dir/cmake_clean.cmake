file(REMOVE_RECURSE
  "CMakeFiles/bench_rs_codec.dir/bench_rs_codec.cpp.o"
  "CMakeFiles/bench_rs_codec.dir/bench_rs_codec.cpp.o.d"
  "bench_rs_codec"
  "bench_rs_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rs_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
