file(REMOVE_RECURSE
  "CMakeFiles/bench_insertion_latency.dir/bench_insertion_latency.cpp.o"
  "CMakeFiles/bench_insertion_latency.dir/bench_insertion_latency.cpp.o.d"
  "bench_insertion_latency"
  "bench_insertion_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insertion_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
