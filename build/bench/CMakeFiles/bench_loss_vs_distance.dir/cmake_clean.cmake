file(REMOVE_RECURSE
  "CMakeFiles/bench_loss_vs_distance.dir/bench_loss_vs_distance.cpp.o"
  "CMakeFiles/bench_loss_vs_distance.dir/bench_loss_vs_distance.cpp.o.d"
  "bench_loss_vs_distance"
  "bench_loss_vs_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loss_vs_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
