# Empty compiler generated dependencies file for bench_loss_vs_distance.
# This may be replaced when dependencies are built.
