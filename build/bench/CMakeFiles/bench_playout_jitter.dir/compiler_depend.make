# Empty compiler generated dependencies file for bench_playout_jitter.
# This may be replaced when dependencies are built.
