file(REMOVE_RECURSE
  "CMakeFiles/bench_playout_jitter.dir/bench_playout_jitter.cpp.o"
  "CMakeFiles/bench_playout_jitter.dir/bench_playout_jitter.cpp.o.d"
  "bench_playout_jitter"
  "bench_playout_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_playout_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
