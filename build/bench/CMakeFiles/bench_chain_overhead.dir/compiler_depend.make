# Empty compiler generated dependencies file for bench_chain_overhead.
# This may be replaced when dependencies are built.
