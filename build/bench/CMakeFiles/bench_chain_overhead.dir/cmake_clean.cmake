file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_overhead.dir/bench_chain_overhead.cpp.o"
  "CMakeFiles/bench_chain_overhead.dir/bench_chain_overhead.cpp.o.d"
  "bench_chain_overhead"
  "bench_chain_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
