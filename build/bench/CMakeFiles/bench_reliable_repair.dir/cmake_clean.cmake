file(REMOVE_RECURSE
  "CMakeFiles/bench_reliable_repair.dir/bench_reliable_repair.cpp.o"
  "CMakeFiles/bench_reliable_repair.dir/bench_reliable_repair.cpp.o.d"
  "bench_reliable_repair"
  "bench_reliable_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliable_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
