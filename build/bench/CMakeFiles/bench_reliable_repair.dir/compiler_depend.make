# Empty compiler generated dependencies file for bench_reliable_repair.
# This may be replaced when dependencies are built.
