// Deterministic fault injection for the stream, filter, and link layers.
//
// The paper's central guarantee — a DIS/DOS pair can be paused,
// disconnected, reconnected, and restarted on a live stream without losing,
// duplicating, or reordering a byte — only means something if it holds on
// hostile schedules: short reads, fragmented writes, threads descheduled at
// the worst moment, peers that throw mid-transfer, and links that drop or
// reorder packets. FaultInjector is the single seeded policy object that
// decides when each of those faults fires; the wrapper classes below apply
// it to the abstract I/O interfaces (util::ByteSource / util::ByteSink) and
// to the channel layer (net::LossModel), so any component written against
// those interfaces can be stressed without modification.
//
// Everything is driven by util::Rng from one seed: a failing schedule is
// replayed exactly by re-running with the same seed. Wall-clock sleeps are
// bounded and tiny (they exist to perturb thread interleavings, not to
// model time); virtual time uses util::SimClock as elsewhere in the repo.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "net/loss.h"
#include "util/clock.h"
#include "util/io.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace rapidware::testing {

/// Tunable fault probabilities, all in [0, 1]. The defaults describe a
/// "mean but survivable" environment: plenty of short I/O and scheduling
/// noise, no thrown errors (those are opt-in because they legitimately
/// truncate a stream).
struct FaultPlan {
  /// P(a read is truncated to a random shorter length).
  double short_read_p = 0.5;
  /// P(a write is fragmented into multiple smaller writes).
  double fragment_write_p = 0.5;
  /// P(a yield/sleep is inserted before an I/O call or control op), to
  /// perturb the thread schedule ("delayed wakeup").
  double delay_p = 0.25;
  /// Upper bound for an injected sleep, in microseconds. Most delays are
  /// plain yields; sleeps model a thread that loses the CPU for a while.
  std::int64_t max_delay_us = 200;
  /// When true, a drawn sleep really blocks the thread (wall clock) — the
  /// TSan smoke subset's mode, where genuine preemption windows matter.
  /// Default: virtual — the drawn duration advances the injector's
  /// SimClock and the thread just yields. Either way the Rng draw sequence
  /// is identical, so a pinned schedule seed replays the same fault
  /// decisions in both modes; only wall time differs.
  bool wall_delays = false;
  /// P(an I/O call throws core::StreamError / core::BrokenPipe instead of
  /// completing). Off by default: a throwing source/sink truncates the
  /// stream by contract, so loss-free assertions must not arm this.
  double throw_p = 0.0;
  /// P(LinkFaults forces a packet drop) on top of the wrapped model.
  double link_drop_p = 0.0;
  /// P(LinkFaults starts a link-down window) per packet, and its length.
  double link_outage_p = 0.0;
  int link_outage_packets = 8;
};

/// Seeded fault policy shared by any number of wrappers. Thread-safe: each
/// decision takes one mutex-protected draw from the Rng, which also
/// serializes decisions into one reproducible order per seed. Counters
/// record what actually fired so tests can assert the schedule was hostile.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed, FaultPlan plan = {});

  const FaultPlan& plan() const noexcept { return plan_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// One Bernoulli draw with probability p.
  bool roll(double p);

  /// Uniform value in [1, n] (n >= 1); used to pick truncation lengths and
  /// fragment sizes.
  std::size_t cut(std::size_t n);

  /// Maybe yield or sleep (plan.delay_p / plan.max_delay_us).
  void maybe_delay();

  /// Advances the injector's virtual clock (and lets tests observe it).
  util::SimClock& sim_clock() noexcept { return sim_clock_; }

  // Fired-fault counters.
  std::uint64_t short_reads() const noexcept { return short_reads_.load(); }
  std::uint64_t fragmented_writes() const noexcept {
    return fragmented_writes_.load();
  }
  std::uint64_t delays() const noexcept { return delays_.load(); }
  std::uint64_t throws() const noexcept { return throws_.load(); }
  std::uint64_t link_drops() const noexcept { return link_drops_.load(); }

 private:
  friend class FaultyByteSource;
  friend class FaultyByteSink;
  friend class LinkFaults;

  rw::Mutex mu_{"testing/fault_injector", rw::lockrank::kFaultInjector};
  util::Rng rng_ RW_GUARDED_BY(mu_);
  const FaultPlan plan_;
  const std::uint64_t seed_;
  util::SimClock sim_clock_;  // rw-lint: allow(RW003) internally atomic

  std::atomic<std::uint64_t> short_reads_{0};
  std::atomic<std::uint64_t> fragmented_writes_{0};
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> throws_{0};
  std::atomic<std::uint64_t> link_drops_{0};
};

/// Wraps a ByteSource: truncates reads, injects delays, and (if armed)
/// throws core::StreamError. EOF (0) from the inner source always passes
/// through untouched, so wrapping never changes stream length by itself.
class FaultyByteSource final : public util::ByteSource {
 public:
  FaultyByteSource(std::shared_ptr<util::ByteSource> inner,
                   std::shared_ptr<FaultInjector> faults);

  std::size_t read_some(util::MutableByteSpan out) override;

 private:
  std::shared_ptr<util::ByteSource> inner_;
  std::shared_ptr<FaultInjector> faults_;
};

/// Wraps a ByteSink: fragments writes into several smaller calls with
/// scheduling noise between them, and (if armed) throws core::BrokenPipe.
/// Fragmentation preserves content and order exactly.
class FaultyByteSink final : public util::ByteSink {
 public:
  FaultyByteSink(std::shared_ptr<util::ByteSink> inner,
                 std::shared_ptr<FaultInjector> faults);

  void write(util::ByteSpan in) override;
  void flush() override;

 private:
  std::shared_ptr<util::ByteSink> inner_;
  std::shared_ptr<FaultInjector> faults_;
};

/// Wraps a net::LossModel for use in a net::ChannelConfig: adds forced
/// drops and link-down windows (every packet in the window is lost) on top
/// of whatever the wrapped model decides. Mid-transfer link loss for
/// SimNetwork-based tests; reordering comes from the channel's own jitter.
class LinkFaults final : public net::LossModel {
 public:
  LinkFaults(std::shared_ptr<net::LossModel> inner,
             std::shared_ptr<FaultInjector> faults);

  bool drop(util::Rng& rng) override;
  double average_loss() const override;
  void set_average_loss(double p) override;

  /// Manually opens/closes a link-down window (handoff simulation).
  void set_down(bool down);

 private:
  const std::shared_ptr<net::LossModel> inner_;
  const std::shared_ptr<FaultInjector> faults_;
  rw::Mutex mu_{"testing/link_faults", rw::lockrank::kLinkFaults};
  bool down_ RW_GUARDED_BY(mu_) = false;
  int outage_left_ RW_GUARDED_BY(mu_) = 0;
};

}  // namespace rapidware::testing
