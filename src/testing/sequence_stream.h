// Sequence-stamped payloads: the oracle that turns "no byte was lost,
// duplicated, or reordered" into a mechanical check.
//
// The byte at absolute stream offset p has the deterministic value
// pattern_byte(seed, p) (a SplitMix64 keystream). Because every position
// has a distinct expected value, ANY loss, duplication, reordering, or
// corruption shifts or perturbs the stream and is caught at the first
// divergent offset — the checker doesn't need to understand framing or
// filters, only offsets. A generator produces the stream at one end, a
// checker consumes it at the other; equality of (bytes delivered, bytes
// expected) plus a clean checker proves end-to-end integrity.
//
// For packet (datagram) paths, where loss is legitimate, StampedPacket /
// PacketLedger do the per-packet equivalent: each packet carries its
// sequence number and a payload derived from it, and the ledger classifies
// what arrived as ok / duplicate / reordered / corrupt.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>

#include "util/bytes.h"
#include "util/io.h"

namespace rapidware::testing {

/// Expected value of the byte at offset `p` in the stream keyed by `seed`.
std::uint8_t pattern_byte(std::uint64_t seed, std::uint64_t p) noexcept;

/// Fills `out` with pattern bytes for offsets [start, start + out.size()).
void fill_pattern(std::uint64_t seed, std::uint64_t start,
                  util::MutableByteSpan out) noexcept;

/// Finite ByteSource producing exactly `total` pattern bytes, then EOF.
/// Single-reader, as the ByteSource contract requires.
class SequenceGenerator final : public util::ByteSource {
 public:
  SequenceGenerator(std::uint64_t seed, std::uint64_t total);

  std::size_t read_some(util::MutableByteSpan out) override;

  /// Pollable with no watcher: a computed source always makes progress
  /// (bytes until total_, then EOF), so a poll can never would-block —
  /// which is what lets an event-hosted ByteReaderEndpoint run over it
  /// with zero shim threads.
  bool pollable() const noexcept override { return true; }
  std::size_t poll_read_borrow(std::size_t max, util::SpanVisitor visit,
                               bool* end) override;

  std::uint64_t produced() const noexcept { return next_; }
  std::uint64_t total() const noexcept { return total_; }

 private:
  const std::uint64_t seed_;
  const std::uint64_t total_;
  std::uint64_t next_ = 0;
};

/// ByteSink verifying that byte i of the concatenated input equals
/// pattern_byte(seed, i). Records the first divergence and keeps counting
/// bytes afterwards, so a failure report shows both where the stream broke
/// and how much arrived. Thread-safe (writes are serialized by a mutex in
/// the caller's stream anyway, but reports may be read concurrently).
class SequenceChecker final : public util::ByteSink {
 public:
  explicit SequenceChecker(std::uint64_t seed);

  void write(util::ByteSpan in) override;

  /// Pollable with no watcher: the checker consumes any amount
  /// immediately, so a try_write never comes up short.
  bool pollable() const noexcept override { return true; }
  std::size_t try_write_some(util::ByteSpan in) override;
  bool try_write_vec(std::span<const util::ByteSpan> segments) override;

  struct Divergence {
    std::uint64_t offset;
    std::uint8_t expected;
    std::uint8_t actual;
  };

  std::uint64_t received() const noexcept { return received_; }
  bool clean() const noexcept { return !divergence_.has_value(); }
  std::optional<Divergence> divergence() const noexcept { return divergence_; }

  /// "" when the stream is a clean prefix of the expected sequence;
  /// otherwise a one-line diagnosis.
  std::string report() const;

 private:
  const std::uint64_t seed_;
  std::uint64_t received_ = 0;
  std::optional<Divergence> divergence_;
};

/// Builds a datagram payload: u32 sequence number + pattern bytes keyed by
/// (seed, seq). `size` must be >= 4.
util::Bytes make_stamped_packet(std::uint64_t seed, std::uint32_t seq,
                                std::size_t size);

/// Classifies stamped packets on arrival. Not thread-safe; feed it from
/// one collector thread.
class PacketLedger {
 public:
  PacketLedger(std::uint64_t seed, std::uint32_t expected_count);

  void record(util::ByteSpan packet);

  std::uint32_t ok() const noexcept { return ok_; }
  std::uint32_t duplicates() const noexcept { return duplicates_; }
  std::uint32_t reordered() const noexcept { return reordered_; }
  std::uint32_t corrupt() const noexcept { return corrupt_; }
  std::uint32_t lost() const noexcept;

 private:
  const std::uint64_t seed_;
  const std::uint32_t expected_;
  std::set<std::uint32_t> seen_;
  std::uint32_t highest_ = 0;
  bool any_ = false;
  std::uint32_t ok_ = 0;
  std::uint32_t duplicates_ = 0;
  std::uint32_t reordered_ = 0;
  std::uint32_t corrupt_ = 0;
};

}  // namespace rapidware::testing
