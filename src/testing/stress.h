// Schedule-randomizing stress driver for the detachable-stream layer.
//
// Two drivers, both seeded and reproducible:
//
//  * run_pipe_schedule() — one bare DIS/DOS pair with dedicated writer and
//    reader threads while the calling (control) thread runs pause() /
//    reconnect() cycles against the live pipe. This hammers the paper's
//    Section 4 protocol at the smallest scale.
//
//  * StressDriver — a full FilterChain between a sequence-stamped source
//    and checker, with fault-injecting wrappers on both ends and
//    small-buffer pass-through filters in between. While data flows, the
//    control thread executes a random schedule of insert / remove /
//    reorder / pause+reconnect / set_param operations, then the chain is
//    drained and the checker proves the delivered stream is byte-exact.
//
// Determinism: the control schedule and every injector's decision stream
// derive from the schedule seed alone, so a failing seed replays the same
// schedule (thread interleaving still varies — that is the point — but the
// operations, fault decisions, and verdict oracle are fixed). Failures
// report the schedule seed and the executed operation list.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "testing/fault_injector.h"

namespace rapidware::obs {
class Registry;
}

namespace rapidware::core {
class WorkerPool;
}

namespace rapidware::testing {

// ---------------------------------------------------------------------------
// Bare-pipe stress

struct PipeStressOptions {
  std::uint64_t total_bytes = 64 * 1024;
  std::size_t ring_capacity = 512;  // small ring: constant backpressure
  int pause_cycles = 16;            // pause()+reconnect() rounds to attempt
  FaultPlan faults;                 // delay knobs apply to all three threads
};

struct PipeStressResult {
  std::uint64_t seed = 0;
  std::uint64_t bytes_delivered = 0;
  int pauses_executed = 0;
  bool ok = false;
  std::string error;
};

/// Runs one bare-pipe schedule on the calling thread (spawns the writer and
/// reader internally). Never intentionally loses a byte: ok means the
/// checker saw exactly total_bytes, all matching the pattern.
PipeStressResult run_pipe_schedule(std::uint64_t seed,
                                   const PipeStressOptions& opts = {});

// ---------------------------------------------------------------------------
// Chain stress

struct StressOptions {
  std::uint64_t seed = 0x5eedfeedULL;
  int schedules = 500;
  /// Control operations attempted per schedule.
  int ops_per_schedule = 10;
  std::uint64_t bytes_per_schedule = 8 * 1024;
  /// Ring capacity of the pass-through filters and both endpoints; small so
  /// every pipe in the chain exercises its blocking paths.
  std::size_t ring_capacity = 768;
  std::size_t max_filters = 4;
  FaultPlan faults;
  /// Wall-clock pacing between control ops. Default off: the pacing draw
  /// still happens (so the op schedule derived from a seed is identical in
  /// both modes — pinned regression seeds stay valid), but the drawn gap
  /// advances a virtual clock and yields instead of sleeping. The full
  /// 500-schedule sweep then completes in seconds; the TSan smoke subset
  /// turns this (and faults.wall_delays) back on for real preemption.
  bool wall_pacing = false;
  /// Abort the process (dumping the schedule seed) if a schedule makes no
  /// progress for this long — a deadlock is otherwise an opaque CI timeout.
  std::int64_t stall_timeout_ms = 120'000;
  /// When non-null, every schedule binds its chain into this registry under
  /// metrics_scope (the chain unbinds as it tears down), so tests can race
  /// Registry::snapshot() readers against live insert/remove/reorder
  /// schedules — the metrics layer's own concurrency stress.
  obs::Registry* metrics = nullptr;
  std::string metrics_scope = "stress/chain";
  /// When non-null, every schedule's chain is hosted on the pool (one
  /// worker per chain, round-robin): event-capable members run as
  /// multiplexed on_ready() drives, endpoints keep their threads via the
  /// blocking shim, and the whole randomized control schedule (insert /
  /// remove / reorder / pause+reconnect) runs against pool-hosted chains —
  /// the multiplexed scheduler's byte-exactness stress.
  core::WorkerPool* pool = nullptr;
};

struct ScheduleResult {
  std::uint64_t schedule_seed = 0;
  std::vector<std::string> ops;  // executed control ops, in order
  std::uint64_t bytes_delivered = 0;
  std::uint64_t faults_fired = 0;  // injector events that actually happened
  bool ok = false;
  std::string error;

  std::string describe() const;
};

struct StressSummary {
  int schedules_run = 0;
  int failures = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t control_ops = 0;
  std::uint64_t faults_fired = 0;
  std::vector<ScheduleResult> failed;  // capped at 8 entries

  std::string describe() const;
};

class StressDriver {
 public:
  explicit StressDriver(StressOptions opts);

  /// Runs one schedule; fully self-contained, reusable across calls.
  ScheduleResult run_schedule(std::uint64_t schedule_seed);

  /// Runs opts.schedules schedules with seeds derived from opts.seed, under
  /// a stall watchdog.
  StressSummary run_all();

  const StressOptions& options() const noexcept { return opts_; }

 private:
  StressOptions opts_;
};

}  // namespace rapidware::testing
