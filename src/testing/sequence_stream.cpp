#include "testing/sequence_stream.h"

#include <algorithm>
#include <sstream>

#include "util/serial.h"

namespace rapidware::testing {

namespace {

// SplitMix64 — the same finalizer Rng uses for seeding; one call per
// 8-byte block keeps pattern generation cheap.
std::uint64_t splitmix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint8_t pattern_byte(std::uint64_t seed, std::uint64_t p) noexcept {
  const std::uint64_t block = splitmix(seed ^ (p >> 3));
  return static_cast<std::uint8_t>(block >> (8 * (p & 7)));
}

void fill_pattern(std::uint64_t seed, std::uint64_t start,
                  util::MutableByteSpan out) noexcept {
  std::uint64_t p = start;
  std::size_t i = 0;
  while (i < out.size()) {
    const std::uint64_t block = splitmix(seed ^ (p >> 3));
    for (unsigned b = static_cast<unsigned>(p & 7); b < 8 && i < out.size();
         ++b, ++i, ++p) {
      out[i] = static_cast<std::uint8_t>(block >> (8 * b));
    }
  }
}

// ---------------------------------------------------------------------------
// SequenceGenerator

SequenceGenerator::SequenceGenerator(std::uint64_t seed, std::uint64_t total)
    : seed_(seed), total_(total) {}

std::size_t SequenceGenerator::read_some(util::MutableByteSpan out) {
  if (next_ >= total_ || out.empty()) return 0;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(out.size(), total_ - next_));
  fill_pattern(seed_, next_, out.first(n));
  next_ += n;
  return n;
}

std::size_t SequenceGenerator::poll_read_borrow(std::size_t max,
                                                util::SpanVisitor visit,
                                                bool* end) {
  if (next_ >= total_) {
    *end = true;
    return 0;
  }
  *end = false;
  std::uint8_t tmp[4096];
  std::size_t want = sizeof tmp;
  if (max != 0 && max < want) want = max;
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(want, total_ - next_));
  fill_pattern(seed_, next_, util::MutableByteSpan(tmp, n));
  const std::size_t consumed = visit(util::ByteSpan(tmp, n), util::ByteSpan());
  // Only the consumed prefix leaves the stream: the pattern is recomputed
  // from the offset, so partial consumption needs no retained tail.
  next_ += consumed;
  return consumed;
}

// ---------------------------------------------------------------------------
// SequenceChecker

SequenceChecker::SequenceChecker(std::uint64_t seed) : seed_(seed) {}

void SequenceChecker::write(util::ByteSpan in) {
  for (const std::uint8_t actual : in) {
    if (!divergence_) {
      const std::uint8_t expected = pattern_byte(seed_, received_);
      if (actual != expected) {
        divergence_ = Divergence{received_, expected, actual};
      }
    }
    ++received_;
  }
}

std::size_t SequenceChecker::try_write_some(util::ByteSpan in) {
  write(in);  // verification is immediate; nothing ever refuses bytes
  return in.size();
}

bool SequenceChecker::try_write_vec(std::span<const util::ByteSpan> segments) {
  for (const util::ByteSpan seg : segments) write(seg);
  return true;
}

std::string SequenceChecker::report() const {
  if (clean()) return "";
  std::ostringstream os;
  os << "stream diverged at offset " << divergence_->offset << ": expected 0x"
     << std::hex << int(divergence_->expected) << ", got 0x"
     << int(divergence_->actual) << std::dec << " (" << received_
     << " bytes received)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Stamped packets

util::Bytes make_stamped_packet(std::uint64_t seed, std::uint32_t seq,
                                std::size_t size) {
  util::Writer w(size);
  w.u32(seq);
  util::Bytes body(size > 4 ? size - 4 : 0);
  fill_pattern(seed ^ seq, 0, body);
  w.raw(body);
  return w.take();
}

PacketLedger::PacketLedger(std::uint64_t seed, std::uint32_t expected_count)
    : seed_(seed), expected_(expected_count) {}

void PacketLedger::record(util::ByteSpan packet) {
  std::uint32_t seq = 0;
  try {
    util::Reader r(packet);
    seq = r.u32();
    const util::Bytes body = r.raw(r.remaining());
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (body[i] != pattern_byte(seed_ ^ seq, i)) {
        ++corrupt_;
        return;
      }
    }
  } catch (const util::SerialError&) {
    ++corrupt_;
    return;
  }
  if (!seen_.insert(seq).second) {
    ++duplicates_;
    return;
  }
  if (any_ && seq < highest_) ++reordered_;
  highest_ = std::max(highest_, seq);
  any_ = true;
  ++ok_;
}

std::uint32_t PacketLedger::lost() const noexcept {
  return expected_ - static_cast<std::uint32_t>(seen_.size());
}

}  // namespace rapidware::testing
