#include "testing/stress.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "core/worker_pool.h"
#include "testing/sequence_stream.h"
#include "util/rng.h"

namespace rapidware::testing {

namespace {

/// Pass-through filter with a small, configurable input ring and injected
/// scheduling noise in its processing loop.
class StressFilter final : public core::ByteFilter {
 public:
  StressFilter(std::string name, std::size_t capacity,
               std::shared_ptr<FaultInjector> faults)
      : ByteFilter(std::move(name), capacity), faults_(std::move(faults)) {}

 protected:
  util::Bytes process(util::Bytes in) override {
    faults_->maybe_delay();
    return in;
  }

 private:
  std::shared_ptr<FaultInjector> faults_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Bare-pipe stress

PipeStressResult run_pipe_schedule(std::uint64_t seed,
                                   const PipeStressOptions& opts) {
  PipeStressResult res;
  res.seed = seed;

  core::DetachableInputStream dis(opts.ring_capacity);
  core::DetachableOutputStream dos;
  dos.connect(dis);

  auto writer_faults = std::make_shared<FaultInjector>(seed ^ 0x17ULL, opts.faults);
  auto reader_faults = std::make_shared<FaultInjector>(seed ^ 0x2eULL, opts.faults);
  auto control_faults = std::make_shared<FaultInjector>(seed ^ 0x3cULL, opts.faults);

  std::atomic<bool> writer_done{false};
  std::string writer_error;
  std::string reader_error;
  SequenceChecker checker(seed);

  std::thread writer([&] {
    try {
      util::Rng rng(seed ^ 0xabcdULL);
      util::Bytes chunk(1024);
      std::uint64_t sent = 0;
      while (sent < opts.total_bytes) {
        const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
            rng.next_below(chunk.size()) + 1, opts.total_bytes - sent));
        fill_pattern(seed, sent, util::MutableByteSpan(chunk.data(), n));
        writer_faults->maybe_delay();
        dos.write(util::ByteSpan(chunk.data(), n));
        sent += n;
      }
    } catch (const std::exception& e) {
      writer_error = e.what();
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::thread reader([&] {
    try {
      util::Rng rng(seed ^ 0xd15cULL);
      util::Bytes buf(1024);
      for (;;) {
        const std::size_t want = static_cast<std::size_t>(
            rng.next_below(buf.size()) + 1);
        reader_faults->maybe_delay();
        const std::size_t n =
            dis.read_some(util::MutableByteSpan(buf.data(), want));
        if (n == 0) break;
        checker.write(util::ByteSpan(buf.data(), n));
      }
    } catch (const std::exception& e) {
      reader_error = e.what();
    }
  });

  // Control thread: pause/reconnect the live pipe while data flows.
  for (int i = 0; i < opts.pause_cycles; ++i) {
    if (writer_done.load(std::memory_order_acquire)) break;
    control_faults->maybe_delay();
    dos.pause();
    ++res.pauses_executed;
    control_faults->maybe_delay();
    dos.reconnect(dis);
  }

  writer.join();
  dos.close();  // hard EOF: reader drains, then exits
  reader.join();

  res.bytes_delivered = checker.received();
  if (!writer_error.empty()) {
    res.error = "writer: " + writer_error;
  } else if (!reader_error.empty()) {
    res.error = "reader: " + reader_error;
  } else if (!checker.clean()) {
    res.error = checker.report();
  } else if (checker.received() != opts.total_bytes) {
    std::ostringstream os;
    os << "byte count mismatch: sent " << opts.total_bytes << ", delivered "
       << checker.received();
    res.error = os.str();
  }
  res.ok = res.error.empty();
  return res;
}

// ---------------------------------------------------------------------------
// Chain stress

std::string ScheduleResult::describe() const {
  std::ostringstream os;
  os << "schedule seed=0x" << std::hex << schedule_seed << std::dec << " [";
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i) os << ", ";
    os << ops[i];
  }
  os << "] bytes=" << bytes_delivered;
  if (!ok) os << " FAILED: " << error;
  return os.str();
}

std::string StressSummary::describe() const {
  std::ostringstream os;
  os << schedules_run << " schedules, " << control_ops << " control ops, "
     << bytes_total << " bytes, " << faults_fired << " faults fired, "
     << failures << " failures";
  for (const auto& f : failed) os << "\n  " << f.describe();
  return os.str();
}

StressDriver::StressDriver(StressOptions opts) : opts_(opts) {}

ScheduleResult StressDriver::run_schedule(std::uint64_t schedule_seed) {
  ScheduleResult res;
  res.schedule_seed = schedule_seed;

  util::Rng ctl(schedule_seed);
  std::vector<std::shared_ptr<FaultInjector>> injectors;
  auto make_injector = [&](std::uint64_t salt) {
    injectors.push_back(
        std::make_shared<FaultInjector>(schedule_seed ^ salt, opts_.faults));
    return injectors.back();
  };

  auto generator = std::make_shared<SequenceGenerator>(schedule_seed,
                                                       opts_.bytes_per_schedule);
  auto source = std::make_shared<FaultyByteSource>(generator,
                                                   make_injector(0xa11ceULL));
  auto checker = std::make_shared<SequenceChecker>(schedule_seed);
  auto sink =
      std::make_shared<FaultyByteSink>(checker, make_injector(0xb0bULL));

  auto head = std::make_shared<core::ByteReaderEndpoint>(
      "head", source, /*chunk=*/512, opts_.ring_capacity);
  auto tail = std::make_shared<core::ByteWriterEndpoint>("tail", sink,
                                                         opts_.ring_capacity);
  core::FilterChain chain(head, tail);
  if (opts_.metrics != nullptr) {
    chain.bind_metrics(*opts_.metrics, opts_.metrics_scope);
  }
  if (opts_.pool != nullptr) chain.host_on(opts_.pool->next());
  chain.start();

  auto control_faults = make_injector(0xc0deULL);
  std::vector<std::shared_ptr<core::Filter>> pool;  // idle, reusable filters
  int created = 0;

  auto record = [&](std::string op) { res.ops.push_back(std::move(op)); };

  try {
    for (int op = 0; op < opts_.ops_per_schedule; ++op) {
      control_faults->maybe_delay();
      // Pacing gap between ops. The draw happens in both modes so the op
      // schedule is a pure function of the seed; virtual mode banks the
      // gap on the injector's SimClock and yields instead of sleeping.
      const std::int64_t pace_us = ctl.next_range(0, 200);
      if (opts_.wall_pacing) {
        std::this_thread::sleep_for(std::chrono::microseconds(pace_us));
      } else {
        control_faults->sim_clock().advance(pace_us);
        std::this_thread::yield();
      }
      const std::size_t size = chain.size();
      switch (ctl.next_below(5)) {
        case 0: {  // insert (reusing an idle filter when one exists)
          if (size >= opts_.max_filters) {
            record("skip-insert");
            break;
          }
          std::shared_ptr<core::Filter> f;
          if (!pool.empty()) {
            f = pool.back();
            pool.pop_back();
          } else {
            const std::size_t cap = std::size_t{256}
                                    << ctl.next_below(3);  // 256/512/1024
            f = std::make_shared<StressFilter>(
                "sf" + std::to_string(created),
                cap, make_injector(0xf117e4ULL + std::uint64_t(created)));
            ++created;
          }
          const std::size_t pos = ctl.next_below(size + 1);
          chain.insert(f, pos);
          record("insert@" + std::to_string(pos));
          break;
        }
        case 1: {  // remove
          if (size == 0) {
            record("skip-remove");
            break;
          }
          const std::size_t pos = ctl.next_below(size);
          pool.push_back(chain.remove(pos));
          record("remove@" + std::to_string(pos));
          break;
        }
        case 2: {  // reorder
          if (size < 2) {
            record("skip-reorder");
            break;
          }
          const std::size_t from = ctl.next_below(size);
          const std::size_t to = ctl.next_below(size);
          chain.reorder(from, to);
          record("reorder " + std::to_string(from) + "->" + std::to_string(to));
          break;
        }
        case 3: {  // pause + reconnect the head splice, content untouched
          chain.head().dos().pause();
          control_faults->maybe_delay();
          auto& first =
              chain.size() > 0 ? chain.at(0)->dis() : chain.tail().dis();
          chain.head().dos().reconnect(first);
          record("splice");
          break;
        }
        default: {  // set_param (StressFilter ignores it; exercises the path)
          if (size == 0) {
            record("skip-param");
            break;
          }
          const std::size_t pos = ctl.next_below(size);
          chain.set_param(pos, "noise", "1");
          record("param@" + std::to_string(pos));
          break;
        }
      }
    }
    chain.drain_shutdown();
  } catch (const std::exception& e) {
    res.error = std::string("control: ") + e.what();
    res.ok = false;
    res.bytes_delivered = checker->received();
    return res;
  }

  res.bytes_delivered = checker->received();
  for (const auto& inj : injectors) {
    res.faults_fired += inj->short_reads() + inj->fragmented_writes() +
                        inj->delays() + inj->throws() + inj->link_drops();
  }
  if (!checker->clean()) {
    res.error = checker->report();
  } else if (checker->received() != opts_.bytes_per_schedule) {
    std::ostringstream os;
    os << "byte count mismatch: sent " << opts_.bytes_per_schedule
       << ", delivered " << checker->received();
    res.error = os.str();
  }
  res.ok = res.error.empty();
  return res;
}

StressSummary StressDriver::run_all() {
  StressSummary summary;
  std::atomic<std::uint64_t> heartbeat{0};
  std::atomic<std::uint64_t> current_seed{0};
  std::atomic<bool> done{false};

  // A wedged schedule would otherwise surface as an opaque CI timeout; the
  // watchdog names the seed so the deadlock can be replayed locally.
  std::thread watchdog([&] {
    using clock = std::chrono::steady_clock;
    std::uint64_t last = heartbeat.load();
    auto last_change = clock::now();
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const std::uint64_t beat = heartbeat.load(std::memory_order_acquire);
      if (beat != last) {
        last = beat;
        last_change = clock::now();
        continue;
      }
      const auto stalled = std::chrono::duration_cast<std::chrono::milliseconds>(
                               clock::now() - last_change)
                               .count();
      if (stalled > opts_.stall_timeout_ms) {
        std::fprintf(stderr,
                     "STRESS STALL: schedule seed=0x%llx made no progress for "
                     "%lld ms; aborting so the deadlock is visible\n",
                     static_cast<unsigned long long>(current_seed.load()),
                     static_cast<long long>(stalled));
        std::fflush(stderr);
        std::abort();
      }
    }
  });

  util::Rng seeds(opts_.seed);
  for (int i = 0; i < opts_.schedules; ++i) {
    const std::uint64_t s = seeds.next_u64();
    current_seed.store(s, std::memory_order_release);
    heartbeat.fetch_add(1, std::memory_order_acq_rel);
    ScheduleResult r = run_schedule(s);
    ++summary.schedules_run;
    summary.bytes_total += r.bytes_delivered;
    summary.control_ops += r.ops.size();
    summary.faults_fired += r.faults_fired;
    if (!r.ok) {
      ++summary.failures;
      if (summary.failed.size() < 8) summary.failed.push_back(std::move(r));
    }
  }
  done.store(true, std::memory_order_release);
  watchdog.join();
  return summary;
}

}  // namespace rapidware::testing
