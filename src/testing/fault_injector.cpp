#include "testing/fault_injector.h"

#include <chrono>
#include <thread>

#include "core/detachable_stream.h"

namespace rapidware::testing {

FaultInjector::FaultInjector(std::uint64_t seed, FaultPlan plan)
    : rng_(seed), plan_(plan), seed_(seed) {}

bool FaultInjector::roll(double p) {
  if (p <= 0.0) return false;
  rw::MutexLock lk(mu_);
  return rng_.chance(p);
}

std::size_t FaultInjector::cut(std::size_t n) {
  if (n <= 1) return n;
  rw::MutexLock lk(mu_);
  return static_cast<std::size_t>(rng_.next_below(n)) + 1;
}

void FaultInjector::maybe_delay() {
  if (!roll(plan_.delay_p)) return;
  delays_.fetch_add(1, std::memory_order_relaxed);
  std::int64_t sleep_us = 0;
  {
    rw::MutexLock lk(mu_);
    // Mostly yields; occasionally a real (bounded) sleep so a thread loses
    // the CPU long enough for its peers to race ahead.
    if (plan_.max_delay_us > 0 && rng_.chance(0.25)) {
      sleep_us = rng_.next_range(1, plan_.max_delay_us);
    }
  }
  if (sleep_us > 0) {
    sim_clock_.advance(sleep_us);
    if (plan_.wall_delays) {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    } else {
      std::this_thread::yield();
    }
  } else {
    std::this_thread::yield();
  }
}

// ---------------------------------------------------------------------------
// FaultyByteSource

FaultyByteSource::FaultyByteSource(std::shared_ptr<util::ByteSource> inner,
                                   std::shared_ptr<FaultInjector> faults)
    : inner_(std::move(inner)), faults_(std::move(faults)) {}

std::size_t FaultyByteSource::read_some(util::MutableByteSpan out) {
  faults_->maybe_delay();
  if (faults_->roll(faults_->plan().throw_p)) {
    faults_->throws_.fetch_add(1, std::memory_order_relaxed);
    throw core::StreamError("FaultyByteSource: injected read failure");
  }
  util::MutableByteSpan window = out;
  if (!out.empty() && faults_->roll(faults_->plan().short_read_p)) {
    faults_->short_reads_.fetch_add(1, std::memory_order_relaxed);
    window = out.first(faults_->cut(out.size()));
  }
  return inner_->read_some(window);
}

// ---------------------------------------------------------------------------
// FaultyByteSink

FaultyByteSink::FaultyByteSink(std::shared_ptr<util::ByteSink> inner,
                               std::shared_ptr<FaultInjector> faults)
    : inner_(std::move(inner)), faults_(std::move(faults)) {}

void FaultyByteSink::write(util::ByteSpan in) {
  faults_->maybe_delay();
  if (faults_->roll(faults_->plan().throw_p)) {
    faults_->throws_.fetch_add(1, std::memory_order_relaxed);
    throw core::BrokenPipe("FaultyByteSink: injected write failure");
  }
  if (in.size() > 1 && faults_->roll(faults_->plan().fragment_write_p)) {
    faults_->fragmented_writes_.fetch_add(1, std::memory_order_relaxed);
    while (!in.empty()) {
      const std::size_t n = faults_->cut(in.size());
      inner_->write(in.first(n));
      in = in.subspan(n);
      if (!in.empty()) faults_->maybe_delay();
    }
    return;
  }
  inner_->write(in);
}

void FaultyByteSink::flush() {
  faults_->maybe_delay();
  inner_->flush();
}

// ---------------------------------------------------------------------------
// LinkFaults

LinkFaults::LinkFaults(std::shared_ptr<net::LossModel> inner,
                       std::shared_ptr<FaultInjector> faults)
    : inner_(std::move(inner)), faults_(std::move(faults)) {}

bool LinkFaults::drop(util::Rng& rng) {
  {
    rw::MutexLock lk(mu_);
    if (outage_left_ > 0) {
      --outage_left_;
      faults_->link_drops_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if (down_) {
      faults_->link_drops_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  if (faults_->roll(faults_->plan().link_outage_p)) {
    rw::MutexLock lk(mu_);
    outage_left_ = faults_->plan().link_outage_packets;
  }
  if (faults_->roll(faults_->plan().link_drop_p)) {
    faults_->link_drops_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return inner_->drop(rng);
}

double LinkFaults::average_loss() const { return inner_->average_loss(); }

void LinkFaults::set_average_loss(double p) { inner_->set_average_loss(p); }

void LinkFaults::set_down(bool down) {
  rw::MutexLock lk(mu_);
  down_ = down;
}

}  // namespace rapidware::testing
