// Statistics helpers used by the evaluation harness: running moments,
// histograms, windowed rates, and percentage formatting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace rapidware::util {

/// Welford running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // population variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Supports percentile queries over recorded samples.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  std::size_t total() const noexcept { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_low(std::size_t i) const noexcept;

  /// Approximate percentile (0..100) from bin midpoints.
  double percentile(double p) const noexcept;

  /// Renders a compact ASCII summary for bench output.
  std::string summary() const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Ratio counter for hit/delivery rates: add successes/failures, read a rate.
class RateCounter {
 public:
  void add(bool success) noexcept { (success ? hits_ : misses_)++; }
  void add_hits(std::uint64_t n) noexcept { hits_ += n; }
  void add_misses(std::uint64_t n) noexcept { misses_ += n; }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t total() const noexcept { return hits_ + misses_; }
  double rate() const noexcept {
    const std::uint64_t t = total();
    return t ? static_cast<double>(hits_) / static_cast<double>(t) : 0.0;
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Sliding-window success rate over the last `window` observations. This is
/// what the loss observer raplet uses to decide when to insert FEC.
class WindowedRate {
 public:
  explicit WindowedRate(std::size_t window) : window_(window) {}

  void add(bool success);
  std::size_t size() const noexcept { return samples_.size(); }
  bool full() const noexcept { return samples_.size() == window_; }
  double rate() const noexcept;

 private:
  std::size_t window_;
  std::deque<bool> samples_;
  std::size_t successes_ = 0;
};

/// Formats 0.9854 as "98.54%".
std::string percent(double fraction, int decimals = 2);

}  // namespace rapidware::util
