// Portable Clang Thread Safety Analysis annotations.
//
// The repo's core correctness property is lock discipline: safe mutation of
// a *running* pipeline (pause/drain/reconnect, live insert/remove/reorder)
// depends on every shared field being touched only under its mutex. These
// macros turn that protocol into compile-time contracts: a Clang build with
// -DRW_THREAD_SAFETY=ON (-Wthread-safety -Werror=thread-safety) rejects any
// guarded-field access outside its lock. On GCC and other compilers every
// macro expands to nothing, so annotations cost nothing off-Clang.
//
// Conventions (docs/static_analysis.md):
//   * Shared state uses rw::Mutex / rw::CondVar / rw::MutexLock
//     (src/util/mutex.h), never raw std::mutex — tools/rw_lint.py enforces
//     this outside a shrinking legacy allowlist.
//   * Every field a mutex protects carries RW_GUARDED_BY(mu_).
//   * Private helpers that expect the lock held are named *_locked() and
//     carry RW_REQUIRES(mu_).
//   * Condition-variable predicate lambdas open with mu.assert_held():
//     Clang analyzes a lambda body as a separate function that cannot see
//     the caller's lock set, and the assertion reinstates it.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define RW_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RW_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define RW_CAPABILITY(x) RW_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor (rw::MutexLock).
#define RW_SCOPED_CAPABILITY RW_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// The field is protected by the given mutex.
#define RW_GUARDED_BY(x) RW_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The data *pointed to* by the field is protected by the given mutex.
#define RW_PT_GUARDED_BY(x) RW_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Documented lock-acquisition order (checked under -Wthread-safety-beta).
#define RW_ACQUIRED_BEFORE(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define RW_ACQUIRED_AFTER(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function must be called with the given capabilities held.
#define RW_REQUIRES(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define RW_REQUIRES_SHARED(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the given capabilities.
#define RW_ACQUIRE(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define RW_ACQUIRE_SHARED(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define RW_RELEASE(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define RW_RELEASE_SHARED(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define RW_TRY_ACQUIRE(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called with the given capabilities held
/// (deadlock guard for helpers that take the lock themselves).
#define RW_EXCLUDES(...) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Analysis-only assertion that the capability is held here.
#define RW_ASSERT_CAPABILITY(x) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the given capability.
#define RW_RETURN_CAPABILITY(x) \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables analysis for one function. Requires a written
/// justification next to every use (tools/rw_lint.py flags bare uses).
#define RW_NO_THREAD_SAFETY_ANALYSIS \
  RW_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
