#include "util/buffer_pool.h"

#include <utility>

namespace rapidware::util {

namespace {

// floor(log2(v)) for v >= 1.
std::size_t floor_log2(std::size_t v) noexcept {
  std::size_t b = 0;
  while (v >>= 1) ++b;
  return b;
}

}  // namespace

BufferPool::BufferPool() : BufferPool(Config()) {}

BufferPool::BufferPool(Config config)
    : config_(config),
      bucket_count_(floor_log2(config.max_capacity < kMinCapacity
                                   ? kMinCapacity
                                   : config.max_capacity) -
                    floor_log2(kMinCapacity) + 1) {
  rw::MutexLock lock(mu_);
  free_.resize(bucket_count_);
  // Pre-size each free list so release() (noexcept) never grows a vector.
  for (auto& bucket : free_) bucket.reserve(config_.max_buffers_per_bucket);
}

std::size_t BufferPool::bucket_for_acquire(std::size_t size) noexcept {
  // Smallest class >= size: ceil-log2, floored at the minimum class.
  std::size_t b = floor_log2(size < kMinCapacity ? kMinCapacity : size);
  if ((std::size_t{1} << b) < size) ++b;
  return b - floor_log2(kMinCapacity);
}

std::size_t BufferPool::bucket_for_release(std::size_t capacity) noexcept {
  // Largest class <= capacity, so the bucket invariant (every stored buffer
  // has capacity >= its class size) holds even for odd-sized capacities.
  return floor_log2(capacity) - floor_log2(kMinCapacity);
}

Bytes BufferPool::acquire(std::size_t size) {
  if (size <= config_.max_capacity) {
    const std::size_t b = bucket_for_acquire(size);
    rw::MutexLock lock(mu_);
    if (b < free_.size() && !free_[b].empty()) {
      Bytes out = std::move(free_[b].back());
      free_[b].pop_back();
      hits_.fetch_add(1, std::memory_order_relaxed);
      out.resize(size);  // capacity >= class size >= size: no reallocation
      return out;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Bytes out;
  if (size <= config_.max_capacity) {
    // Round the fresh allocation up to its class size so the buffer is
    // reusable for the whole class once released.
    out.reserve(std::size_t{1}
                << (bucket_for_acquire(size) + floor_log2(kMinCapacity)));
  }
  out.resize(size);
  return out;
}

void BufferPool::release(Bytes&& b) noexcept {
  Bytes victim = std::move(b);
  const std::size_t cap = victim.capacity();
  if (cap < kMinCapacity || cap > config_.max_capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;  // victim's destructor frees it
  }
  const std::size_t bucket = bucket_for_release(cap);
  {
    rw::MutexLock lock(mu_);
    if (bucket < free_.size() &&
        free_[bucket].size() < config_.max_buffers_per_bucket) {
      victim.clear();
      free_[bucket].push_back(std::move(victim));
      recycled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BufferPool::free_buffers() const {
  rw::MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& bucket : free_) n += bucket.size();
  return n;
}

BufferPool& default_pool() {
  static BufferPool* pool = new BufferPool();  // leaked: see header
  return *pool;
}

}  // namespace rapidware::util
