#include "util/buffer_pool.h"

#include <utility>

namespace rapidware::util {

namespace {

// floor(log2(v)) for v >= 1.
std::size_t floor_log2(std::size_t v) noexcept {
  std::size_t b = 0;
  while (v >>= 1) ++b;
  return b;
}

// The calling thread's installed arena; null means "use default_pool()".
// A plain thread_local pointer: install/clear happen only on the owning
// thread (EventLoop::run's prologue/epilogue), reads are same-thread.
thread_local BufferPool* tls_pool = nullptr;

}  // namespace

BufferPool::BufferPool() : BufferPool(Config()) {}

BufferPool::BufferPool(Config config) : BufferPool(config, nullptr) {}

BufferPool::BufferPool(Config config, BufferPool* parent)
    : config_(config),
      bucket_count_(floor_log2(config.max_capacity < kMinCapacity
                                   ? kMinCapacity
                                   : config.max_capacity) -
                    floor_log2(kMinCapacity) + 1),
      parent_(parent),
      mu_(parent != nullptr ? local_mu_ : global_mu_) {
  rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
  free_.resize(bucket_count_);
  // Pre-size each free list so release() (noexcept) never grows a vector.
  for (auto& bucket : free_) bucket.reserve(config_.max_buffers_per_bucket);
}

std::size_t BufferPool::bucket_for_acquire(std::size_t size) noexcept {
  // Smallest class >= size: ceil-log2, floored at the minimum class.
  std::size_t b = floor_log2(size < kMinCapacity ? kMinCapacity : size);
  if ((std::size_t{1} << b) < size) ++b;
  return b - floor_log2(kMinCapacity);
}

std::size_t BufferPool::bucket_for_release(std::size_t capacity) noexcept {
  // Largest class <= capacity, so the bucket invariant (every stored buffer
  // has capacity >= its class size) holds even for odd-sized capacities.
  return floor_log2(capacity) - floor_log2(kMinCapacity);
}

Bytes BufferPool::acquire(std::size_t size) {
  if (size <= config_.max_capacity) {
    const std::size_t b = bucket_for_acquire(size);
    {
      lock_acquires_.fetch_add(1, std::memory_order_relaxed);
      rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
      if (b < free_.size() && !free_[b].empty()) {
        Bytes out = std::move(free_[b].back());
        free_[b].pop_back();
        hits_.fetch_add(1, std::memory_order_relaxed);
        out.resize(size);  // capacity >= class size >= size: no realloc
        return out;
      }
    }
    if (parent_ != nullptr) {
      // Bucket dry: refill a batch from the parent so the next
      // kRebalanceBatch-1 acquires of this class stay worker-local.
      Bytes batch[kRebalanceBatch];
      std::size_t n = parent_->take_batch(b, kRebalanceBatch, batch);
      if (n > 0) {
        rebalanced_.fetch_add(1, std::memory_order_relaxed);
        Bytes out = std::move(batch[--n]);
        if (n > 0) put_batch(b, batch, n);
        hits_.fetch_add(1, std::memory_order_relaxed);
        out.resize(size);
        return out;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  Bytes out;
  if (size <= config_.max_capacity) {
    // Round the fresh allocation up to its class size so the buffer is
    // reusable for the whole class once released.
    out.reserve(std::size_t{1}
                << (bucket_for_acquire(size) + floor_log2(kMinCapacity)));
  }
  out.resize(size);
  return out;
}

void BufferPool::release(Bytes&& b) noexcept {
  Bytes victim = std::move(b);
  const std::size_t cap = victim.capacity();
  if (cap < kMinCapacity || cap > config_.max_capacity) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;  // victim's destructor frees it
  }
  const auto owner = owner_.load(std::memory_order_relaxed);
  if (owner != std::thread::id{} && owner != std::this_thread::get_id()) {
    // A buffer crossing a worker boundary lands in the releasing thread's
    // pool by the local() contract; a free arriving here from a foreign
    // thread is the exception worth counting.
    cross_free_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t bucket = bucket_for_release(cap);
  {
    lock_acquires_.fetch_add(1, std::memory_order_relaxed);
    rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
    if (bucket < free_.size() &&
        free_[bucket].size() < config_.max_buffers_per_bucket) {
      victim.clear();
      free_[bucket].push_back(std::move(victim));
      recycled_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (parent_ != nullptr && bucket < bucket_count_) {
    // Bucket full: donate a batch (plus the victim) back to the parent so
    // capacity released on this worker is not stranded here while another
    // worker's bucket runs dry.
    Bytes batch[kRebalanceBatch];
    std::size_t n = 0;
    {
      lock_acquires_.fetch_add(1, std::memory_order_relaxed);
      rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
      auto& fb = free_[bucket];
      while (n + 1 < kRebalanceBatch && !fb.empty()) {
        batch[n++] = std::move(fb.back());
        fb.pop_back();
      }
    }
    victim.clear();
    batch[n++] = std::move(victim);
    parent_->put_batch(bucket, batch, n);
    rebalanced_.fetch_add(1, std::memory_order_relaxed);
    recycled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t BufferPool::take_batch(std::size_t bucket, std::size_t max,
                                   Bytes* out) {
  lock_acquires_.fetch_add(1, std::memory_order_relaxed);
  rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
  if (bucket >= free_.size()) return 0;
  auto& fb = free_[bucket];
  std::size_t n = 0;
  while (n < max && !fb.empty()) {
    out[n++] = std::move(fb.back());
    fb.pop_back();
  }
  return n;
}

void BufferPool::put_batch(std::size_t bucket, Bytes* in,
                           std::size_t n) noexcept {
  lock_acquires_.fetch_add(1, std::memory_order_relaxed);
  rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
  if (bucket >= free_.size()) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
    return;
  }
  auto& fb = free_[bucket];
  for (std::size_t i = 0; i < n; ++i) {
    if (fb.size() < config_.max_buffers_per_bucket) {
      fb.push_back(std::move(in[i]));
      recycled_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t BufferPool::free_buffers() const {
  lock_acquires_.fetch_add(1, std::memory_order_relaxed);
  rw::MutexLock lock(mu_);  // lock-graph: holds(util/buffer_pool)
  std::size_t n = 0;
  for (const auto& bucket : free_) n += bucket.size();
  return n;
}

BufferPool& BufferPool::local() noexcept {
  return tls_pool != nullptr ? *tls_pool : default_pool();
}

BufferPool* BufferPool::install_local(BufferPool* pool) noexcept {
  BufferPool* prev = tls_pool;
  tls_pool = pool;
  if (pool != nullptr) {
    pool->owner_.store(std::this_thread::get_id(),
                       std::memory_order_relaxed);
  }
  return prev;
}

BufferPool& default_pool() {
  static BufferPool* pool = new BufferPool();  // leaked: see header
  return *pool;
}

}  // namespace rapidware::util
