// Clock abstraction: simulated components take a Clock& so that tests and
// benchmarks can run on virtual time while live examples use the wall clock.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rapidware::util {

/// Monotonic time in microseconds since an arbitrary epoch.
using Micros = std::int64_t;

constexpr Micros kMicrosPerSecond = 1'000'000;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros now() const = 0;
};

/// Real time, monotonic.
class WallClock final : public Clock {
 public:
  Micros now() const override {
    const auto t = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(t).count();
  }
};

/// Manually advanced virtual clock; thread-safe.
class SimClock final : public Clock {
 public:
  Micros now() const override { return t_.load(std::memory_order_acquire); }
  void advance(Micros dt) { t_.fetch_add(dt, std::memory_order_acq_rel); }
  void set(Micros t) { t_.store(t, std::memory_order_release); }

 private:
  std::atomic<Micros> t_{0};
};

/// Converts seconds (double) to Micros, rounding to nearest.
constexpr Micros seconds_to_micros(double s) {
  return static_cast<Micros>(s * 1e6 + (s >= 0 ? 0.5 : -0.5));
}

constexpr double micros_to_seconds(Micros us) {
  return static_cast<double>(us) / 1e6;
}

}  // namespace rapidware::util
