// Annotated synchronization primitives: thin wrappers over std::mutex and
// std::condition_variable that carry Clang Thread Safety Analysis capability
// attributes (src/util/thread_annotations.h).
//
// Why wrap: the standard types carry no annotations, so the analyzer cannot
// connect a std::lock_guard to the fields it protects. rw::Mutex is a
// CAPABILITY, rw::MutexLock is a SCOPED_CAPABILITY, and rw::CondVar only
// offers predicate waits — which both prevents the classic naked-wait
// missed-wakeup bug and gives the analysis a single REQUIRES(mu) choke
// point. A Clang build with -DRW_THREAD_SAFETY=ON then proves, at compile
// time, that every RW_GUARDED_BY field is only touched under its lock.
//
// Deadlock freedom is the runtime side of the same contract: built with
// -DRW_DEADLOCK_CHECK=ON (debug/CI only), every mutex carries a name and a
// rank from src/util/lock_rank.h, and each acquisition runs through the
// checker in src/util/deadlock.h — a reentrant acquire, a rank inversion,
// or an acquisition-order cycle aborts immediately with both conflicting
// sites printed. When the option is off (the default, and all release
// builds) the hooks compile away entirely: lock/unlock forward straight to
// std::mutex, the name/rank constructor stores nothing, and CondVar adopts
// the caller's held lock for the duration of the wait. Overhead is zero.
#pragma once

#include <chrono>
#include <condition_variable>  // rw-lint: allow(RW001) the wrapper itself
#include <mutex>               // rw-lint: allow(RW001) the wrapper itself

#include "util/deadlock.h"
#include "util/thread_annotations.h"

#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK
#include <source_location>
#define RW_DEADLOCK_SITE_PARAM \
  , const std::source_location& site = std::source_location::current()
#else
#define RW_DEADLOCK_SITE_PARAM
#endif

namespace rw {

class CondVar;

/// An annotated mutual-exclusion capability. Prefer rw::MutexLock over
/// manual lock()/unlock() pairs; the manual methods exist for the rare
/// split-scope protocol and are annotated so misuse still fails the build.
///
/// Long-lived mutexes in src/ are constructed with a name and a rank from
/// src/util/lock_rank.h ("subsystem/lock", lockrank::kSubsystem); the
/// default constructor makes an unnamed, unranked lock (tests, scratch).
class RW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK
  Mutex(const char* name, int rank) : name_(name), rank_(rank) {}

  void lock(const std::source_location& site =
                std::source_location::current()) RW_ACQUIRE() {
    deadlock::pre_lock(this, name_, rank_, site);
    mu_.lock();
  }
  void unlock() RW_RELEASE() {
    deadlock::post_unlock(this);
    mu_.unlock();
  }
  bool try_lock(const std::source_location& site =
                    std::source_location::current()) RW_TRY_ACQUIRE(true) {
    // A try_lock cannot block, so it is exempt from the ordering checks;
    // it still lands on the held stack for reentrancy detection.
    if (!mu_.try_lock()) return false;
    deadlock::post_acquire(this, name_, rank_, site);
    return true;
  }
#else
  /// Name + rank are deadlock-checker inputs; without the checker they
  /// compile to nothing (no members, no stores).
  Mutex(const char*, int) {}

  void lock() RW_ACQUIRE() { mu_.lock(); }
  void unlock() RW_RELEASE() { mu_.unlock(); }
  bool try_lock() RW_TRY_ACQUIRE(true) { return mu_.try_lock(); }
#endif

  /// Analysis-only assertion that the calling context holds this mutex; a
  /// runtime no-op (std::mutex cannot verify ownership). Used at the top of
  /// condition-variable predicate lambdas, which Clang analyzes as separate
  /// functions that cannot see the caller's lock set.
  void assert_held() const RW_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // rw-lint: allow(RW001) the wrapper itself
#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK
  const char* name_ = nullptr;
  int rank_ = -1;  // lockrank::kUnranked
#endif
};

/// RAII lock over rw::Mutex (the std::lock_guard replacement).
class RW_SCOPED_CAPABILITY MutexLock {
 public:
#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK
  explicit MutexLock(Mutex& mu,
                     const std::source_location& site =
                         std::source_location::current()) RW_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
  }
#else
  explicit MutexLock(Mutex& mu) RW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
#endif
  ~MutexLock() RW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to rw::Mutex. Only predicate waits: a naked
/// wait() invites lost wakeups and defeats the analyzer, so it is not
/// offered (tools/rw_lint.py also rejects single-argument .wait( calls).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until pred() returns true. The caller must hold `mu`; the wait
  /// releases it while sleeping and reacquires it before returning (and
  /// before each pred() evaluation). Start the predicate with
  /// mu.assert_held() so the analysis knows the lock is held inside it.
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred RW_DEADLOCK_SITE_PARAM) RW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK
    // The wait releases mu while sleeping; mirror that on the held stack
    // (the reacquire repeats an already-validated ordering, so it lands
    // back via the check-free post_acquire path).
    deadlock::post_unlock(&mu);
    cv_.wait(lk, std::move(pred));
    deadlock::post_acquire(&mu, mu.name_, mu.rank_, site);
#else
    cv_.wait(lk, std::move(pred));
#endif
    lk.release();  // ownership returns to the caller's scoped lock
  }

  /// Timed predicate wait; returns pred()'s value at wake-up (false on
  /// timeout with the predicate still unsatisfied).
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred RW_DEADLOCK_SITE_PARAM) RW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK
    deadlock::post_unlock(&mu);
    const bool satisfied = cv_.wait_for(lk, timeout, std::move(pred));
    deadlock::post_acquire(&mu, mu.name_, mu.rank_, site);
#else
    const bool satisfied = cv_.wait_for(lk, timeout, std::move(pred));
#endif
    lk.release();
    return satisfied;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // rw-lint: allow(RW001) the wrapper itself
};

}  // namespace rw
