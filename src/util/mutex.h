// Annotated synchronization primitives: thin wrappers over std::mutex and
// std::condition_variable that carry Clang Thread Safety Analysis capability
// attributes (src/util/thread_annotations.h).
//
// Why wrap: the standard types carry no annotations, so the analyzer cannot
// connect a std::lock_guard to the fields it protects. rw::Mutex is a
// CAPABILITY, rw::MutexLock is a SCOPED_CAPABILITY, and rw::CondVar only
// offers predicate waits — which both prevents the classic naked-wait
// missed-wakeup bug and gives the analysis a single REQUIRES(mu) choke
// point. A Clang build with -DRW_THREAD_SAFETY=ON then proves, at compile
// time, that every RW_GUARDED_BY field is only touched under its lock.
//
// The wrappers add no state and no behavior: lock/unlock forward straight
// to std::mutex, and CondVar adopts the caller's held lock for the duration
// of the wait. Overhead is zero on every compiler.
#pragma once

#include <chrono>
#include <condition_variable>  // rw-lint: allow(RW001) the wrapper itself
#include <mutex>               // rw-lint: allow(RW001) the wrapper itself

#include "util/thread_annotations.h"

namespace rw {

class CondVar;

/// An annotated mutual-exclusion capability. Prefer rw::MutexLock over
/// manual lock()/unlock() pairs; the manual methods exist for the rare
/// split-scope protocol and are annotated so misuse still fails the build.
class RW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RW_ACQUIRE() { mu_.lock(); }
  void unlock() RW_RELEASE() { mu_.unlock(); }
  bool try_lock() RW_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Analysis-only assertion that the calling context holds this mutex; a
  /// runtime no-op (std::mutex cannot verify ownership). Used at the top of
  /// condition-variable predicate lambdas, which Clang analyzes as separate
  /// functions that cannot see the caller's lock set.
  void assert_held() const RW_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;  // rw-lint: allow(RW001) the wrapper itself
};

/// RAII lock over rw::Mutex (the std::lock_guard replacement).
class RW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RW_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to rw::Mutex. Only predicate waits: a naked
/// wait() invites lost wakeups and defeats the analyzer, so it is not
/// offered (tools/rw_lint.py also rejects single-argument .wait( calls).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until pred() returns true. The caller must hold `mu`; the wait
  /// releases it while sleeping and reacquires it before returning (and
  /// before each pred() evaluation). Start the predicate with
  /// mu.assert_held() so the analysis knows the lock is held inside it.
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) RW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();  // ownership returns to the caller's scoped lock
  }

  /// Timed predicate wait; returns pred()'s value at wake-up (false on
  /// timeout with the predicate still unsatisfied).
  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) RW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(lk, timeout, std::move(pred));
    lk.release();
    return satisfied;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // rw-lint: allow(RW001) the wrapper itself
};

}  // namespace rw
