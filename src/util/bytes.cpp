#include "util/bytes.h"

#include <algorithm>
#include <cstring>

namespace rapidware::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

std::string to_hex(ByteSpan b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xf]);
  }
  return out;
}

ByteRing::ByteRing(std::size_t capacity) : buf_(capacity) {}

std::size_t ByteRing::write(ByteSpan in) {
  const std::size_t n = std::min(in.size(), free_space());
  if (n == 0) return 0;  // empty span may carry data() == nullptr (UB in memcpy)
  const std::size_t tail = (head_ + size_) % buf_.size();
  const std::size_t first = std::min(n, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, in.data(), first);
  if (n > first) std::memcpy(buf_.data(), in.data() + first, n - first);
  size_ += n;
  return n;
}

std::size_t ByteRing::write(std::span<const ByteSpan> segments) {
  std::size_t total = 0;
  for (const ByteSpan seg : segments) {
    const std::size_t n = write(seg);
    total += n;
    if (n < seg.size()) break;  // ring full mid-segment
  }
  return total;
}

std::size_t ByteRing::read(MutableByteSpan out) {
  const std::size_t n = peek(out);
  head_ = (head_ + n) % buf_.size();
  size_ -= n;
  return n;
}

std::size_t ByteRing::peek(MutableByteSpan out) const {
  const std::size_t n = std::min(out.size(), size_);
  const std::size_t first = std::min(n, buf_.size() - head_);
  std::memcpy(out.data(), buf_.data() + head_, first);
  if (n > first) std::memcpy(out.data() + first, buf_.data(), n - first);
  return n;
}

std::array<ByteSpan, 2> ByteRing::read_spans() const noexcept {
  const std::size_t first = std::min(size_, buf_.size() - head_);
  return {ByteSpan(buf_.data() + head_, first),
          ByteSpan(buf_.data(), size_ - first)};
}

void ByteRing::consume(std::size_t n) noexcept {
  head_ = (head_ + n) % buf_.size();
  size_ -= n;
}

void ByteRing::clear() noexcept {
  head_ = 0;
  size_ = 0;
}

}  // namespace rapidware::util
