// The global lock-acquisition order, as data.
//
// Every named rw::Mutex in src/ is constructed with a rank from this table.
// The rule enforced by the runtime checker (-DRW_DEADLOCK_CHECK=ON,
// src/util/deadlock.h) is strict monotonicity: a thread may only acquire a
// lock whose rank is GREATER than every ranked lock it already holds.
// Equal rank while one is held is an error too — that is how a reentrant
// acquire of the same mutex (guaranteed deadlock on std::mutex) and an
// unordered pair of same-subsystem locks are both caught.
//
// Ranks ascend from the adaptation plane (outermost: raplets hold their
// state lock across whole control-protocol round trips) down through flow
// management, the chain, the streams, observability, the network, virtual
// time, and finally the leaf utilities that any layer may call. Gaps are
// deliberate: new locks slot in without renumbering.
//
// The same table is parsed by tools/lock_graph.py, which cross-checks the
// statically-derived acquisition DAG (tools/lock_order.json) against these
// declared ranks — so an edit here that contradicts real nesting fails CI
// before it can deadlock anything. The rationale for each band lives in
// docs/static_analysis.md ("The lock-rank table").
#pragma once

namespace rw::lockrank {

/// Locks outside the ranked order (tests, examples, scratch tooling).
/// They still participate in reentrancy and cycle detection, but no
/// rank-monotonicity check applies to them.
inline constexpr int kUnranked = -1;

// --- Adaptation plane (outermost) ------------------------------------------
inline constexpr int kRapletObserver = 100;   // LossObserver, ThroughputObserver
inline constexpr int kRapletResponder = 110;  // FecResponder, TranscodeResponder, HandoffCoordinator
inline constexpr int kFecController = 120;    // AdaptiveFecController
inline constexpr int kPavilionSession = 130;  // SessionMember
inline constexpr int kPavilionFloor = 140;    // FloorControl
inline constexpr int kPavilionWeb = 150;      // WebServer

// --- Flow-management plane --------------------------------------------------
inline constexpr int kFlowTable = 200;       // proxy::FlowTable (meta: metric handles)
inline constexpr int kFlowShard = 205;       // proxy::FlowTable per-worker shard
inline constexpr int kFlowClassifier = 210;  // core::FlowClassifier
inline constexpr int kSpecTable = 220;       // core::FilterSpecTable
inline constexpr int kFilterRegistry = 230;  // core::FilterRegistry
inline constexpr int kReconfigBin = 240;     // core::ReconfigBin

// --- Chain + data plane ------------------------------------------------------
// The observability registry sits INSIDE this band: FilterChain::bind_metrics
// creates metrics (registry lock) under the chain lock, while a registry
// snapshot renders metrics (TraceRing lock) and runs gauge callbacks that
// take stream/wlan/pool locks — so chain < registry < trace < streams.
inline constexpr int kFilterChain = 300;     // core::FilterChain
inline constexpr int kObsRegistry = 320;     // obs::Registry
inline constexpr int kObsTrace = 340;        // obs::TraceRing
inline constexpr int kPacketQueue = 350;     // core::PacketQueueSource
inline constexpr int kPacketCollector = 360; // core::CollectingPacketSink
inline constexpr int kStreamOutput = 400;    // DetachableOutputStream::mu_
inline constexpr int kStreamInput = 410;     // detail::InputState::mu (always after its writer)
// Event-driven dispatch sits BELOW the streams: readiness callbacks fire
// under a stream lock and post to the owning worker, so both event locks
// must be acquirable while kStreamOutput/kStreamInput are held. The filter
// event-core lock (join/finish handshake) is also taken under kFilterChain
// during splices, hence > 410 would be wrong for it — it nests only under
// the chain lock and never under a stream lock, but keeping it between the
// streams and the loop keeps the band readable.
inline constexpr int kFilterEvent = 430;     // core::detail::FilterEventCore
inline constexpr int kEventLoop = 450;       // core::EventLoop task queue

// --- Observability sinks -----------------------------------------------------
inline constexpr int kStatsLog = 500;  // obs::StatsLogSink (snapshots outside mu_)

// --- Egress + network --------------------------------------------------------
inline constexpr int kSocketSink = 590;  // proxy::SocketPacketSink (holds mu_ across send)
inline constexpr int kWlan = 600;        // wireless::WirelessLan
inline constexpr int kSimNetwork = 610;  // net::SimNetwork (routes under its lock)
inline constexpr int kSocket = 620;      // net::SimSocket receive queue
inline constexpr int kLink = 630;        // net::SharedLink
inline constexpr int kLinkFaults = 640;  // testing::LinkFaults (wraps a LossModel)
inline constexpr int kLossModel = 650;   // net loss models (never nested with each other)
inline constexpr int kFaultInjector = 660;  // testing::FaultInjector RNG (leaf; called under link/loss locks)

// --- Virtual time ------------------------------------------------------------
inline constexpr int kPeriodicTask = 700;  // sim::PeriodicTask (schedules under its lock)
inline constexpr int kSimClock = 710;      // sim::VirtualClock event queue

// --- Leaf utilities (any layer may call into these) --------------------------
inline constexpr int kBufferPoolLocal = 790;  // worker-local BufferPool arena (nests under the global pool for batch rebalance)
inline constexpr int kBufferPool = 800;       // util::BufferPool (process-wide parent)
inline constexpr int kLogging = 900;     // util logging emit lock

}  // namespace rw::lockrank
