#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rapidware::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_), m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)]++;
  total_++;
}

double Histogram::bin_low(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(total_)));
  std::size_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return bin_low(i) + width / 2.0;
  }
  return hi_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%zu p50=%.3f p90=%.3f p99=%.3f", total_,
                percentile(50), percentile(90), percentile(99));
  return buf;
}

void WindowedRate::add(bool success) {
  samples_.push_back(success);
  if (success) ++successes_;
  if (samples_.size() > window_) {
    if (samples_.front()) --successes_;
    samples_.pop_front();
  }
}

double WindowedRate::rate() const noexcept {
  return samples_.empty()
             ? 1.0
             : static_cast<double>(successes_) /
                   static_cast<double>(samples_.size());
}

std::string percent(double fraction, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace rapidware::util
