#include "util/serial.h"

#include <bit>
#include <cstring>

namespace rapidware::util {

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
  u64(std::bit_cast<std::uint64_t>(v));
}

void Writer::blob(ByteSpan b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw SerialError("serial: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return in_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(in_[pos_]) |
                    static_cast<std::uint16_t>(in_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

double Reader::f64() {
  return std::bit_cast<double>(u64());
}

Bytes Reader::blob() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
  pos_ += n;
  return s;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes b(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
          in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace rapidware::util
