// Byte-buffer utilities shared by the stream, network, and codec layers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rapidware::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

/// Converts a string to a byte vector (no terminator).
Bytes to_bytes(std::string_view s);

/// Converts bytes back to a std::string.
std::string to_string(ByteSpan b);

/// Hex-encodes bytes, e.g. {0xde, 0xad} -> "dead". For logs and tests.
std::string to_hex(ByteSpan b);

/// Bounded single-producer/single-consumer style ring buffer of bytes.
///
/// This is a plain data structure: it performs no locking. The detachable
/// stream layer wraps it with a mutex and condition variables. Capacity is
/// fixed at construction.
class ByteRing {
 public:
  explicit ByteRing(std::size_t capacity);

  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t free_space() const noexcept { return buf_.size() - size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return size_ == buf_.size(); }

  /// Appends up to `in.size()` bytes; returns how many were written.
  std::size_t write(ByteSpan in);

  /// Segment-aware write: appends the segments back to back, as if they had
  /// been concatenated, stopping when the ring fills. Returns the total
  /// number of bytes written (a segment boundary is never visible in the
  /// ring — the cut, if any, lands wherever the ring ran out of space).
  std::size_t write(std::span<const ByteSpan> segments);

  /// Removes up to `out.size()` bytes into `out`; returns how many were read.
  std::size_t read(MutableByteSpan out);

  /// Copies up to `out.size()` bytes without consuming them.
  std::size_t peek(MutableByteSpan out) const;

  /// Borrow API: the buffered bytes as (up to) two contiguous spans — the
  /// second is non-empty only when the content wraps past the end of the
  /// backing array. The spans alias the ring's storage and are invalidated
  /// by any mutating call; pair with consume().
  std::array<ByteSpan, 2> read_spans() const noexcept;

  /// Discards the first `n` buffered bytes (n <= size()). With read_spans()
  /// this is the zero-copy read path: inspect the spans, then consume what
  /// was actually used.
  void consume(std::size_t n) noexcept;

  /// Discards all contents.
  void clear() noexcept;

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;  // next read position
  std::size_t size_ = 0;  // bytes currently stored
};

}  // namespace rapidware::util
