// Deterministic random number generation.
//
// All stochastic behaviour in the simulator (channel loss, audio noise,
// workload generation) draws from explicitly seeded Rng instances so that
// every test and benchmark run is reproducible.
#pragma once

#include <cstdint>
#include <limits>

namespace rapidware::util {

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality. Seeded via
/// SplitMix64 so that any 64-bit seed (including 0) yields a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform u32.
  std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return next_double() < p; }

  /// Gaussian sample (Box-Muller) with the given mean and stddev.
  double next_gaussian(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Exponentially distributed sample with the given mean (> 0).
  double next_exponential(double mean) noexcept;

  /// Derives an independent child generator; useful for giving each
  /// simulated station its own stream while keeping one top-level seed.
  Rng split() noexcept { return Rng(next_u64()); }

  // UniformRandomBitGenerator interface so Rng works with <algorithm>.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next_u64(); }

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace rapidware::util
