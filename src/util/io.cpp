#include "util/io.h"

#include <stdexcept>

#include "util/serial.h"

namespace rapidware::util {

std::size_t ByteSource::read_borrow(std::size_t max, SpanVisitor visit) {
  // Base-class adaptation: read into a stack buffer and offer it as one
  // span. There is nowhere to retain a tail, so the visitor is called until
  // everything read has been consumed (SpanVisitor contracts require
  // forward progress; FrameReader always consumes all in one call).
  std::uint8_t tmp[4096];
  std::size_t want = sizeof tmp;
  if (max != 0 && max < want) want = max;
  const std::size_t n = read_some(MutableByteSpan(tmp, want));
  if (n == 0) return 0;
  std::size_t done = 0;
  while (done < n) {
    const std::size_t c = visit(ByteSpan(tmp + done, n - done), ByteSpan());
    if (c == 0) {
      throw SerialError(
          "read_borrow: visitor made no progress over a non-retaining "
          "source");
    }
    done += c;
  }
  return done;
}

std::size_t ByteSource::read_exact(MutableByteSpan out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const std::size_t n = read_some(out.subspan(got));
    if (n == 0) break;  // end of stream
    got += n;
  }
  return got;
}

bool ByteSource::read_full(MutableByteSpan out, const char* what) {
  const std::size_t got = read_exact(out);
  if (got == out.size()) return true;
  if (got == 0) return false;  // clean EOF before the first byte
  throw SerialError(std::string(what) +
                    ": stream ended mid-read (torn read, " +
                    std::to_string(got) + " of " +
                    std::to_string(out.size()) + " bytes)");
}

std::size_t ByteSource::poll_read_borrow(std::size_t max, SpanVisitor visit,
                                         bool* end) {
  (void)max;
  (void)visit;
  (void)end;
  throw std::logic_error("poll_read_borrow: source is not pollable");
}

void ByteSink::write_vec(std::span<const ByteSpan> segments) {
  if (segments.size() == 1) {
    write(segments[0]);
    return;
  }
  // Preserve the single-call atomicity contract for sinks that do not
  // override: assemble once, hand over in one write().
  std::size_t total = 0;
  for (const ByteSpan seg : segments) total += seg.size();
  Bytes assembled;
  assembled.reserve(total);
  for (const ByteSpan seg : segments) {
    assembled.insert(assembled.end(), seg.begin(), seg.end());
  }
  write(assembled);
}

bool ByteSink::try_write_vec(std::span<const ByteSpan> segments) {
  (void)segments;
  throw std::logic_error("try_write_vec: sink is not pollable");
}

std::size_t ByteSink::try_write_some(ByteSpan in) {
  (void)in;
  throw std::logic_error("try_write_some: sink is not pollable");
}

}  // namespace rapidware::util
