#include "util/io.h"

namespace rapidware::util {

std::size_t ByteSource::read_exact(MutableByteSpan out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const std::size_t n = read_some(out.subspan(got));
    if (n == 0) break;  // end of stream
    got += n;
  }
  return got;
}

}  // namespace rapidware::util
