// Minimal binary serialization: little-endian fixed-width writer/reader with
// range checking. Used for packet headers, FEC group headers, and the proxy
// control protocol (the stand-in for Java object serialization).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace rapidware::util {

/// Thrown when a reader runs past the end of its input or a decoded value
/// is structurally invalid.
class SerialError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { out_.reserve(reserve); }

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// Length-prefixed (u32) byte blob.
  void blob(ByteSpan b);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix.
  void raw(ByteSpan b) { out_.insert(out_.end(), b.begin(), b.end()); }

  const Bytes& bytes() const noexcept { return out_; }
  Bytes take() noexcept { return std::move(out_); }

 private:
  Bytes out_;
};

class Reader {
 public:
  explicit Reader(ByteSpan in) : in_(in) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  Bytes blob();
  std::string str();
  /// Consumes exactly n raw bytes.
  Bytes raw(std::size_t n);

  std::size_t remaining() const noexcept { return in_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  void need(std::size_t n) const;
  ByteSpan in_;
  std::size_t pos_ = 0;
};

}  // namespace rapidware::util
