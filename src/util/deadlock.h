// Runtime deadlock-freedom checker behind -DRW_DEADLOCK_CHECK=ON.
//
// rw::Mutex calls these hooks around every acquisition (src/util/mutex.h).
// The checker keeps, per thread, the stack of held locks and, globally, the
// acquisition-order graph over lock *names* (one node per named mutex
// class, not per instance). Three violations abort the process immediately,
// printing both conflicting acquisition sites:
//
//   * reentrant acquire — the calling thread already holds this mutex
//     (guaranteed deadlock on std::mutex);
//   * rank inversion — acquiring a lock whose declared rank
//     (src/util/lock_rank.h) is not strictly greater than every ranked
//     lock already held;
//   * order cycle — the new held-pair edge A→B closes a cycle in the
//     global acquisition graph (an ABBA deadlock waiting for the right
//     schedule), even between unranked locks.
//
// Aborting at the first inconsistent acquisition — rather than waiting for
// the losing schedule — is the point: one CI run with the checker on
// proves every exercised path deadlock-free.
//
// Cost model: the held stack is thread-local (no synchronization); the
// global graph mutex is only taken the first time a thread sees a given
// edge (a thread-local cache short-circuits repeats), so the steady-state
// data plane pays a few branches and a thread-local push/pop per lock.
// When RW_DEADLOCK_CHECK is off this header has no content and rw::Mutex
// compiles to the bare std::mutex wrapper — zero overhead, verified by the
// bench-smoke CI step that greps the release binary for checker symbols.
#pragma once

#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK

#include <cstddef>
#include <source_location>
#include <string>
#include <vector>

namespace rw::deadlock {

/// Called immediately BEFORE blocking on `mu`. Runs the reentrancy, rank,
/// and cycle checks (aborting on violation), records the acquisition edge,
/// and pushes the lock onto the calling thread's held stack. `name` may be
/// nullptr (unnamed test lock: reentrancy/cycle tracking only) and `rank`
/// may be lockrank::kUnranked.
void pre_lock(const void* mu, const char* name, int rank,
              const std::source_location& site);

/// Called after a successful try_lock, and after a condition-variable wait
/// reacquires its mutex: pushes without ordering checks (a try_lock cannot
/// block, and a CV reacquire repeats an ordering already validated).
void post_acquire(const void* mu, const char* name, int rank,
                  const std::source_location& site);

/// Called as the lock is released: pops the thread's held-stack entry.
void post_unlock(const void* mu);

/// Runtime gate, default on when compiled in. Toggling is only meaningful
/// while the calling threads hold no rw locks (the held stack is not
/// maintained while disabled); intended for the overhead test that
/// measures checker-on vs checker-off in one binary.
void set_enabled(bool on);
bool enabled();

/// One recorded acquisition-order edge ("outer -> inner"), with the first
/// observed site of each side. Test hook.
struct EdgeInfo {
  std::string from;
  std::string to;
  std::string from_site;  // file:line that acquired `from`
  std::string to_site;    // file:line that acquired `to` while holding it
};
std::vector<EdgeInfo> edges_snapshot();

/// Drops the recorded graph and per-thread edge caches so death tests can
/// build conflicting histories without cross-test interference. Only safe
/// while no rw locks are held anywhere.
void reset_for_test();

/// Number of locks the calling thread currently holds (test hook).
std::size_t held_count();

}  // namespace rw::deadlock

#endif  // RW_DEADLOCK_CHECK
