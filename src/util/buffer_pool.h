// Capacity-bucketed free list of Bytes buffers — the data plane's
// allocation recycler.
//
// Every packet crossing a filter hop used to cost at least one fresh heap
// allocation (`read_frame` building its payload vector). The pool turns
// that into a pop from a per-size-class free list: acquire(n) returns a
// buffer of size n whose capacity came from an earlier release(), and
// release() files a spent buffer back under its capacity class. Steady
// state, a pass-through packet hop allocates nothing (asserted by the
// pool hit-rate test in tests/filter_chain_test.cpp).
//
// Size classes are powers of two from kMinCapacity up to max_capacity;
// a buffer in bucket b always has capacity >= 2^b, so acquire can hand out
// any buffer filed in ceil_log2(n)'s bucket without reallocating. Buffers
// larger than max_capacity, and buckets already holding
// max_buffers_per_bucket entries, are dropped to the allocator — the pool
// bounds its own footprint.
//
// Per-worker arenas: the process-wide default_pool() serializes every
// worker on one mutex, which is the scaling wall at high worker counts.
// A worker-local pool (constructed with a parent) is installed as the
// thread's arena via install_local(); BufferPool::local() resolves to it
// on that thread and to default_pool() everywhere else, so call sites
// that acquire and release through local() take only the worker's own
// uncontended lock on the steady-state path — zero acquisitions of the
// global pool's mutex (proven by the lock_acquires() counter in
// bench_worker_scaling). Capacity is not stranded per worker: a bucket
// overflow donates a batch back to the parent and a bucket miss refills a
// batch from it (both counted in Stats::rebalanced), so dense deployments
// share capacity at batch granularity instead of per buffer.
//
// Thread-safe: one leaf mutex around the free lists (never held while
// calling out — a batch transfer extracts under the child lock, drops it,
// then files under the parent lock, so the two pool locks never nest),
// hit/miss counters are relaxed atomics readable without the lock — obs
// callback gauges read them live (docs/observability.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>  // rw-lint: allow(RW001) std::thread::id only, no threads
#include <vector>

#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::util {

class BufferPool {
 public:
  struct Config {
    /// Free buffers retained per size class; excess releases are dropped
    /// (or donated to the parent for worker-local pools). Sized so a full
    /// default-capacity stream ring (64 KiB) of smallest-class frames can
    /// be in flight and still land back in the pool without drops (a
    /// FrameReader refill can acquire that many buffers in one burst
    /// before downstream releases any).
    std::size_t max_buffers_per_bucket = 128;
    /// Buffers with larger capacity are never pooled (2^20 = 1 MiB).
    std::size_t max_capacity = std::size_t{1} << 20;
  };

  /// Counter snapshot; all values are monotonic.
  struct Stats {
    std::uint64_t hits = 0;      // acquire served from the free list
    std::uint64_t misses = 0;    // acquire fell through to the allocator
    std::uint64_t recycled = 0;  // release filed the buffer for reuse
    std::uint64_t dropped = 0;   // release discarded (bucket full/too big)
    std::uint64_t cross_free = 0;   // release from a non-owner thread
    std::uint64_t rebalanced = 0;   // batch transfers with the parent
  };

  BufferPool();  // default Config (delegating; GCC can't default-arg here)
  explicit BufferPool(Config config);

  /// Worker-local arena: bucket overflow/underflow rebalances against
  /// `parent` in batches. The arena's mutex is the distinct
  /// "util/buffer_pool_local" lock — batch transfers never hold both the
  /// child and the parent lock (extract, drop, transfer), so the two
  /// never nest at runtime.
  BufferPool(Config config, BufferPool* parent);

  /// Returns a buffer resized to `size` (contents unspecified), reusing
  /// pooled capacity when a matching class has a free buffer.
  Bytes acquire(std::size_t size);

  /// Recycles `b`'s capacity; `b` is left empty either way.
  void release(Bytes&& b) noexcept;

  /// The calling thread's arena: the installed worker-local pool on a
  /// worker thread (core::EventLoop::run installs its own around the
  /// loop), default_pool() everywhere else. Data-plane call sites resolve
  /// this per acquire/release — never cache across threads — so frees are
  /// routed to the *releasing* thread's pool.
  static BufferPool& local() noexcept;

  /// Installs `pool` as the calling thread's arena (nullptr to clear) and
  /// returns the previous installation so callers can restore it. Records
  /// the calling thread as `pool`'s owner for cross-free accounting.
  static BufferPool* install_local(BufferPool* pool) noexcept;

  Stats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            recycled_.load(std::memory_order_relaxed),
            dropped_.load(std::memory_order_relaxed),
            cross_free_.load(std::memory_order_relaxed),
            rebalanced_.load(std::memory_order_relaxed)};
  }

  /// Fraction of acquires served from the free list (0 when none yet).
  double hit_rate() const noexcept {
    const Stats s = stats();
    const std::uint64_t total = s.hits + s.misses;
    return total == 0 ? 0.0 : static_cast<double>(s.hits) /
                                  static_cast<double>(total);
  }

  /// Times this pool's mutex has been acquired, ever. The shared-nothing
  /// proof reads this on default_pool() around a steady-state window and
  /// asserts the delta is zero (bench_worker_scaling, event_loop_test).
  std::uint64_t lock_acquires() const noexcept {
    return lock_acquires_.load(std::memory_order_relaxed);
  }

  /// Free buffers currently held (all buckets; takes the lock).
  std::size_t free_buffers() const;

 private:
  static constexpr std::size_t kMinCapacity = 64;  // smallest size class
  /// Buffers moved per parent rebalance. Batch granularity is what keeps
  /// rebalancing off the steady-state path: one parent-lock acquisition
  /// amortizes over kRebalanceBatch buffers.
  static constexpr std::size_t kRebalanceBatch = 32;

  /// Smallest bucket index whose class capacity (2^(index + log2(kMin)))
  /// is >= size — where acquire(size) looks.
  static std::size_t bucket_for_acquire(std::size_t size) noexcept;

  /// Largest bucket index whose class capacity is <= capacity — where a
  /// released buffer of that capacity is filed.
  static std::size_t bucket_for_release(std::size_t capacity) noexcept;

  /// Moves up to `max` buffers out of `bucket` into `out`; returns the
  /// count. Takes the lock once for the whole batch.
  std::size_t take_batch(std::size_t bucket, std::size_t max, Bytes* out);

  /// Files `n` buffers from `in` under `bucket`, dropping any overflow.
  /// Takes the lock once for the whole batch.
  void put_batch(std::size_t bucket, Bytes* in, std::size_t n) noexcept;

  const Config config_;
  const std::size_t bucket_count_;
  BufferPool* const parent_ = nullptr;
  // Exactly one of these is ever locked per instance: mu_ binds to
  // global_mu_ for the process-wide pool and to local_mu_ for worker
  // arenas. Two named declarations (instead of one runtime-named mutex)
  // keep the static lock-graph extractor (tools/lock_graph.py) seeing
  // both names and both ranks.
  mutable rw::Mutex global_mu_{"util/buffer_pool", rw::lockrank::kBufferPool};
  // clang-format off: one line so the per-line extractor sees the decl
  mutable rw::Mutex local_mu_{"util/buffer_pool_local", rw::lockrank::kBufferPoolLocal};
  // clang-format on
  rw::Mutex& mu_;
  std::vector<std::vector<Bytes>> free_ RW_GUARDED_BY(mu_);

  std::atomic<std::thread::id> owner_{};  // set by install_local
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> cross_free_{0};
  std::atomic<std::uint64_t> rebalanced_{0};
  mutable std::atomic<std::uint64_t> lock_acquires_{0};
};

/// The process-wide pool the data plane recycles through when no
/// worker-local arena is installed, and the rebalance parent of every
/// worker-local arena. Never destroyed (leaked intentionally, like
/// obs::registry()) so release() from late-exiting filter threads is
/// always safe.
BufferPool& default_pool();

}  // namespace rapidware::util
