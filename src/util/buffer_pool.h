// Capacity-bucketed free list of Bytes buffers — the data plane's
// allocation recycler.
//
// Every packet crossing a filter hop used to cost at least one fresh heap
// allocation (`read_frame` building its payload vector). The pool turns
// that into a pop from a per-size-class free list: acquire(n) returns a
// buffer of size n whose capacity came from an earlier release(), and
// release() files a spent buffer back under its capacity class. Steady
// state, a pass-through packet hop allocates nothing (asserted by the
// pool hit-rate test in tests/filter_chain_test.cpp).
//
// Size classes are powers of two from kMinCapacity up to max_capacity;
// a buffer in bucket b always has capacity >= 2^b, so acquire can hand out
// any buffer filed in ceil_log2(n)'s bucket without reallocating. Buffers
// larger than max_capacity, and buckets already holding
// max_buffers_per_bucket entries, are dropped to the allocator — the pool
// bounds its own footprint.
//
// Thread-safe: one leaf mutex around the free lists (never held while
// calling out), hit/miss counters are relaxed atomics readable without the
// lock — obs callback gauges read them live (docs/observability.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::util {

class BufferPool {
 public:
  struct Config {
    /// Free buffers retained per size class; excess releases are dropped.
    /// Sized so a full default-capacity stream ring (64 KiB) of
    /// smallest-class frames can be in flight and still land back in the
    /// pool without drops (a FrameReader refill can acquire that many
    /// buffers in one burst before downstream releases any).
    std::size_t max_buffers_per_bucket = 128;
    /// Buffers with larger capacity are never pooled (2^20 = 1 MiB).
    std::size_t max_capacity = std::size_t{1} << 20;
  };

  /// Counter snapshot; all values are monotonic.
  struct Stats {
    std::uint64_t hits = 0;      // acquire served from the free list
    std::uint64_t misses = 0;    // acquire fell through to the allocator
    std::uint64_t recycled = 0;  // release filed the buffer for reuse
    std::uint64_t dropped = 0;   // release discarded (bucket full/too big)
  };

  BufferPool();  // default Config (delegating; GCC can't default-arg here)
  explicit BufferPool(Config config);

  /// Returns a buffer resized to `size` (contents unspecified), reusing
  /// pooled capacity when a matching class has a free buffer.
  Bytes acquire(std::size_t size);

  /// Recycles `b`'s capacity; `b` is left empty either way.
  void release(Bytes&& b) noexcept;

  Stats stats() const noexcept {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed),
            recycled_.load(std::memory_order_relaxed),
            dropped_.load(std::memory_order_relaxed)};
  }

  /// Fraction of acquires served from the free list (0 when none yet).
  double hit_rate() const noexcept {
    const Stats s = stats();
    const std::uint64_t total = s.hits + s.misses;
    return total == 0 ? 0.0 : static_cast<double>(s.hits) /
                                  static_cast<double>(total);
  }

  /// Free buffers currently held (all buckets; takes the lock).
  std::size_t free_buffers() const;

 private:
  static constexpr std::size_t kMinCapacity = 64;  // smallest size class

  /// Smallest bucket index whose class capacity (2^(index + log2(kMin)))
  /// is >= size — where acquire(size) looks.
  static std::size_t bucket_for_acquire(std::size_t size) noexcept;

  /// Largest bucket index whose class capacity is <= capacity — where a
  /// released buffer of that capacity is filed.
  static std::size_t bucket_for_release(std::size_t capacity) noexcept;

  const Config config_;
  const std::size_t bucket_count_;
  mutable rw::Mutex mu_{"util/buffer_pool", rw::lockrank::kBufferPool};
  std::vector<std::vector<Bytes>> free_ RW_GUARDED_BY(mu_);

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> recycled_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide pool the data plane (PacketFilter, FrameReader, FEC
/// group assembly) recycles through. Never destroyed (leaked intentionally,
/// like obs::registry()) so release() from late-exiting filter threads is
/// always safe.
BufferPool& default_pool();

}  // namespace rapidware::util
