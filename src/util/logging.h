// Tiny leveled logger. Thread-safe (one global mutex around emission);
// disabled levels cost one atomic load.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <string_view>

namespace rapidware::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line: "[LEVEL component] message". Not for hot paths.
void log_message(LogLevel level, std::string_view component,
                 std::string_view message);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { log_message(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace rapidware::util

#define RW_LOG(level, component)                                      \
  if (!::rapidware::util::log_enabled(level)) {                      \
  } else                                                              \
    ::rapidware::util::detail::LogLine(level, component)

#define RW_DEBUG(component) RW_LOG(::rapidware::util::LogLevel::kDebug, component)
#define RW_INFO(component) RW_LOG(::rapidware::util::LogLevel::kInfo, component)
#define RW_WARN(component) RW_LOG(::rapidware::util::LogLevel::kWarn, component)
#define RW_ERROR(component) RW_LOG(::rapidware::util::LogLevel::kError, component)
