#include "util/frame_reader.h"

#include <cstring>
#include <utility>

#include "util/framing.h"
#include "util/serial.h"

namespace rapidware::util {

namespace {

/// Forward-only reader over up to three discontiguous pieces (the carried
/// stash plus the ring's two borrow spans). Copies are the only way out —
/// which is fine: header bytes go to a 6-byte stack buffer and payload
/// bytes go straight to their final pooled buffer, so each byte is copied
/// exactly once.
class Cursor {
 public:
  Cursor(ByteSpan s0, ByteSpan s1, ByteSpan s2) : pieces_{s0, s1, s2} {
    remaining_ = s0.size() + s1.size() + s2.size();
  }

  std::size_t remaining() const noexcept { return remaining_; }

  /// Copies out.size() bytes (caller guarantees remaining() is enough).
  void read(MutableByteSpan out) noexcept {
    std::size_t done = 0;
    while (done < out.size()) {
      const ByteSpan piece = pieces_[index_].subspan(offset_);
      const std::size_t n = std::min(out.size() - done, piece.size());
      if (n == 0) {
        ++index_;
        offset_ = 0;
        continue;
      }
      std::memcpy(out.data() + done, piece.data(), n);
      done += n;
      offset_ += n;
    }
    remaining_ -= out.size();
  }

 private:
  ByteSpan pieces_[3];
  std::size_t index_ = 0;
  std::size_t offset_ = 0;
  std::size_t remaining_ = 0;
};

}  // namespace

FrameReader::FrameReader(ByteSource& source)
    : source_(source), pool_(nullptr) {}

FrameReader::FrameReader(ByteSource& source, BufferPool& pool)
    : source_(source), pool_(&pool) {}

void FrameReader::ingest(ByteSpan a, ByteSpan b) {
  Cursor cur(stash_, a, b);
  Bytes tail;  // built before stash_ is overwritten (cur aliases stash_)
  while (true) {
    if (cur.remaining() < kFrameHeaderSize) break;  // tail is < one header
    std::uint8_t header[kFrameHeaderSize];
    cur.read(header);
    Reader r(header);
    if (r.u16() != kFrameMagic) throw SerialError("framing: bad magic");
    const std::uint32_t len = r.u32();
    if (len > kMaxFrameSize) throw SerialError("framing: oversized frame");
    if (cur.remaining() < len) {
      // Incomplete payload: carry header + everything buffered so far.
      tail.reserve(kFrameHeaderSize + cur.remaining());
      tail.insert(tail.end(), header, header + kFrameHeaderSize);
      const std::size_t n = cur.remaining();
      tail.resize(kFrameHeaderSize + n);
      cur.read(MutableByteSpan(tail.data() + kFrameHeaderSize, n));
      stash_ = std::move(tail);
      return;
    }
    Bytes payload = arena().acquire(len);
    cur.read(payload);
    ready_.push_back(std::move(payload));
    ++frames_;
  }
  // Sub-header tail (possibly empty).
  const std::size_t n = cur.remaining();
  tail.resize(n);
  if (n != 0) cur.read(MutableByteSpan(tail.data(), n));
  stash_ = std::move(tail);
}

std::optional<Bytes> FrameReader::take_ready() {
  Bytes out = std::move(ready_[ready_pos_++]);
  if (ready_pos_ == ready_.size()) {
    ready_.clear();
    ready_pos_ = 0;
  }
  return out;
}

void FrameReader::throw_torn() const {
  throw SerialError("framing: stream ended mid-frame (torn frame, " +
                    std::to_string(stash_.size()) + " byte tail)");
}

std::optional<Bytes> FrameReader::next() {
  while (true) {
    if (ready_pos_ < ready_.size()) return take_ready();
    if (eof_) {
      if (!stash_.empty()) throw_torn();
      return std::nullopt;
    }
    ++refills_;
    const std::size_t n =
        source_.read_borrow(0, [this](ByteSpan a, ByteSpan b) -> std::size_t {
          ingest(a, b);
          return a.size() + b.size();  // everything parsed or stashed
        });
    if (n == 0) eof_ = true;
  }
}

std::optional<Bytes> FrameReader::poll(bool* end) {
  *end = false;
  while (true) {
    if (ready_pos_ < ready_.size()) return take_ready();
    if (eof_) {
      if (!stash_.empty()) throw_torn();
      *end = true;
      return std::nullopt;
    }
    bool src_end = false;
    const std::size_t n = source_.poll_read_borrow(
        0,
        [this](ByteSpan a, ByteSpan b) -> std::size_t {
          ingest(a, b);
          return a.size() + b.size();
        },
        &src_end);
    if (n == 0) {
      if (!src_end) return std::nullopt;  // would-block: watcher armed
      eof_ = true;
      continue;
    }
    ++refills_;
  }
}

}  // namespace rapidware::util
