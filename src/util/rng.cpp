#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace rapidware::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method keeps the result unbiased.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(width));
}

double Rng::next_gaussian(double mean, double stddev) noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::next_exponential(double mean) noexcept {
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

}  // namespace rapidware::util
