#include "util/deadlock.h"

#if defined(RW_DEADLOCK_CHECK) && RW_DEADLOCK_CHECK

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>  // rw-lint: allow(RW001) the checker cannot use the wrapper it instruments
#include <set>
#include <unordered_set>
#include <vector>

#include "util/lock_rank.h"

namespace rw::deadlock {
namespace {

struct Held {
  const void* mu;
  const char* name;  // nullptr = unnamed
  int rank;
  const char* file;
  unsigned line;
};

struct Edge {
  std::string from_site;
  std::string to_site;
};

// The global acquisition graph, keyed by lock name. Guarded by its own
// plain std::mutex: the checker is below every rw::Mutex by construction
// (it never calls back into one), so it cannot participate in the cycles
// it hunts.
struct Graph {
  std::mutex mu;  // rw-lint: allow(RW001) the checker cannot use the wrapper it instruments
  std::map<std::pair<std::string, std::string>, Edge> edges;
  std::map<std::string, std::set<std::string>> adjacent;
  // Bumped by reset_for_test() so per-thread caches notice staleness.
  std::atomic<std::uint64_t> generation{0};
};

Graph& graph() {
  static Graph* g = new Graph;  // leaked: outlives late-exiting threads
  return *g;
}

std::atomic<bool> g_enabled{true};

thread_local std::vector<Held> t_held;
thread_local std::unordered_set<std::uint64_t> t_seen_edges;
thread_local std::uint64_t t_generation = 0;

std::uint64_t edge_hash(const char* from, const char* to) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over both names
  for (const char* p = from; *p; ++p) h = (h ^ std::uint64_t(*p)) * 1099511628211ull;
  h = (h ^ std::uint64_t('\x1f')) * 1099511628211ull;
  for (const char* p = to; *p; ++p) h = (h ^ std::uint64_t(*p)) * 1099511628211ull;
  return h;
}

std::string site_str(const char* file, unsigned line) {
  return std::string(file) + ":" + std::to_string(line);
}

void print_held_stack() {
  std::fprintf(stderr, "  held stack (outermost first):\n");
  for (const Held& h : t_held) {
    std::fprintf(stderr, "    \"%s\" (rank %d) acquired at %s:%u\n",
                 h.name ? h.name : "<unnamed>", h.rank, h.file, h.line);
  }
}

[[noreturn]] void die() {
  std::fprintf(stderr,
               "rw::deadlock: aborting; see src/util/lock_rank.h and "
               "docs/static_analysis.md for the declared order\n");
  std::fflush(stderr);
  std::abort();
}

/// Finds a path to -> ... -> from in the graph (the existing ordering the
/// new edge from -> to would contradict). Returns the node sequence, empty
/// if none. Caller holds graph().mu.
std::vector<std::string> find_path(const Graph& g, const std::string& start,
                                   const std::string& goal) {
  std::map<std::string, std::string> parent;
  std::vector<std::string> frontier{start};
  parent[start] = start;
  while (!frontier.empty()) {
    std::string node = frontier.back();
    frontier.pop_back();
    if (node == goal) {
      std::vector<std::string> path{goal};
      while (path.back() != start) path.push_back(parent[path.back()]);
      std::reverse(path.begin(), path.end());
      return path;
    }
    auto it = g.adjacent.find(node);
    if (it == g.adjacent.end()) continue;
    for (const std::string& next : it->second) {
      if (parent.emplace(next, node).second) frontier.push_back(next);
    }
  }
  return {};
}

void record_edge(const Held& outer, const char* name,
                 const std::source_location& site) {
  const std::uint64_t key = edge_hash(outer.name, name);
  Graph& g = graph();
  const std::uint64_t gen = g.generation.load(std::memory_order_acquire);
  if (t_generation != gen) {
    t_seen_edges.clear();
    t_generation = gen;
  }
  if (t_seen_edges.contains(key)) return;  // steady state: no global lock

  std::lock_guard<std::mutex> lk(g.mu);  // rw-lint: allow(RW001) checker internals
  const std::pair<std::string, std::string> edge_key(outer.name, name);
  if (!g.edges.contains(edge_key)) {
    // Would from -> to close a cycle? Look for an existing to ~> from path.
    const std::vector<std::string> path = find_path(g, name, outer.name);
    if (!path.empty()) {
      std::fprintf(stderr,
                   "rw::deadlock: LOCK ORDER CYCLE (ABBA)\n"
                   "  new edge: \"%s\" -> \"%s\"\n"
                   "    \"%s\" held since %s:%u\n"
                   "    \"%s\" being acquired at %s:%u\n"
                   "  conflicts with the established order:\n",
                   outer.name, name, outer.name, outer.file, outer.line, name,
                   site.file_name(), site.line());
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const Edge& e = g.edges.at({path[i], path[i + 1]});
        std::fprintf(stderr,
                     "    \"%s\" (acquired at %s) -> \"%s\" (acquired at %s)\n",
                     path[i].c_str(), e.from_site.c_str(), path[i + 1].c_str(),
                     e.to_site.c_str());
      }
      print_held_stack();
      die();
    }
    g.edges.emplace(edge_key,
                    Edge{site_str(outer.file, outer.line),
                         site_str(site.file_name(), site.line())});
    g.adjacent[outer.name].insert(name);
  }
  t_seen_edges.insert(key);
}

}  // namespace

void pre_lock(const void* mu, const char* name, int rank,
              const std::source_location& site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;

  const Held* worst = nullptr;  // highest-ranked lock already held
  for (const Held& h : t_held) {
    if (h.mu == mu) {
      std::fprintf(stderr,
                   "rw::deadlock: REENTRANT ACQUIRE (self-deadlock)\n"
                   "  \"%s\" (rank %d)\n"
                   "    first acquired at %s:%u\n"
                   "    acquired again at %s:%u\n",
                   name ? name : "<unnamed>", rank, h.file, h.line,
                   site.file_name(), site.line());
      print_held_stack();
      die();
    }
    if (h.rank != lockrank::kUnranked && (!worst || h.rank > worst->rank)) {
      worst = &h;
    }
  }

  if (rank != lockrank::kUnranked && worst && worst->rank >= rank) {
    std::fprintf(stderr,
                 "rw::deadlock: RANK %s\n"
                 "  acquiring \"%s\" (rank %d) at %s:%u\n"
                 "  while holding \"%s\" (rank %d) acquired at %s:%u\n",
                 worst->rank == rank ? "TIE (unordered same-rank pair)"
                                     : "INVERSION",
                 name ? name : "<unnamed>", rank, site.file_name(),
                 site.line(), worst->name ? worst->name : "<unnamed>",
                 worst->rank, worst->file, worst->line);
    print_held_stack();
    die();
  }

  // Acquisition-order edge from the innermost *named* held lock. Direct
  // edges are enough: transitivity is recovered by the cycle search.
  if (name) {
    for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
      if (it->name) {
        record_edge(*it, name, site);
        break;
      }
    }
  }

  t_held.push_back(Held{mu, name, rank, site.file_name(), site.line()});
}

void post_acquire(const void* mu, const char* name, int rank,
                  const std::source_location& site) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  t_held.push_back(Held{mu, name, rank, site.file_name(), site.line()});
}

void post_unlock(const void* mu) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  // Split-scope protocols may release out of LIFO order: search from the top.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  // Not found: the lock was acquired while the checker was disabled. Fine.
}

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::vector<EdgeInfo> edges_snapshot() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);  // rw-lint: allow(RW001) checker internals
  std::vector<EdgeInfo> out;
  out.reserve(g.edges.size());
  for (const auto& [key, edge] : g.edges) {
    out.push_back(EdgeInfo{key.first, key.second, edge.from_site, edge.to_site});
  }
  return out;
}

void reset_for_test() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lk(g.mu);  // rw-lint: allow(RW001) checker internals
  g.edges.clear();
  g.adjacent.clear();
  g.generation.fetch_add(1, std::memory_order_acq_rel);
  t_seen_edges.clear();
  t_held.clear();
}

std::size_t held_count() { return t_held.size(); }

}  // namespace rw::deadlock

#endif  // RW_DEADLOCK_CHECK
