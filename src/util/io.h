// Abstract byte-stream interfaces. The detachable stream classes in
// src/core implement these; framing and filters are written against them so
// they are testable without threads.
#pragma once

#include <cstddef>

#include "util/bytes.h"

namespace rapidware::util {

/// Blocking byte producer.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Blocks until at least one byte is available or the stream ends.
  /// Returns the number of bytes placed in `out`; 0 means end-of-stream.
  virtual std::size_t read_some(MutableByteSpan out) = 0;

  /// Reads exactly `out.size()` bytes unless EOF intervenes; returns the
  /// number read (== out.size() normally, < on EOF).
  std::size_t read_exact(MutableByteSpan out);
};

/// Blocking byte consumer.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Blocks until all of `in` is accepted.
  virtual void write(ByteSpan in) = 0;

  /// Pushes any buffered bytes toward the consumer. Default: no-op.
  virtual void flush() {}
};

}  // namespace rapidware::util
