// Abstract byte-stream interfaces. The detachable stream classes in
// src/core implement these; framing and filters are written against them so
// they are testable without threads.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "util/bytes.h"

namespace rapidware::util {

/// Non-owning callable reference used by the zero-copy read path: invoked
/// with (up to) two contiguous spans of buffered data, returns how many of
/// the offered bytes it consumed. Never allocates (unlike std::function),
/// so passing a capturing lambda on the data path is free.
class SpanVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<F>, SpanVisitor>>>
  SpanVisitor(F&& f)  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, ByteSpan a, ByteSpan b) -> std::size_t {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(a, b);
        }) {}

  std::size_t operator()(ByteSpan a, ByteSpan b) const {
    return call_(obj_, a, b);
  }

 private:
  void* obj_;
  std::size_t (*call_)(void*, ByteSpan, ByteSpan);
};

/// Readiness callback a pollable ByteSource/ByteSink arms when a poll
/// comes up empty: the next transition (data arrives, space frees, EOF)
/// fires on_io_ready() exactly once — the one-shot arm-under-the-lock
/// protocol detachable streams use for parked threads, exposed here so
/// event-hosted byte endpoints can watch ANY pollable source or sink.
/// Fired from the thread that caused the transition, possibly under the
/// stream's lock: implementations must only post (never block, never
/// re-enter the stream).
class ReadyWatcher {
 public:
  virtual ~ReadyWatcher() = default;
  virtual void on_io_ready() = 0;
};

/// Blocking byte producer.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// True when poll_read_borrow() is implemented — the source can be
  /// consumed without a blocking thread. Pairs with set_ready_watcher().
  virtual bool pollable() const noexcept { return false; }

  /// Registers (nullptr clears) the watcher an empty-and-open
  /// poll_read_borrow() arms. Call before the first poll and clear only
  /// when no poll can be in flight. Default: no-op, for sources that are
  /// pollable but never block (a computed or memory-backed source whose
  /// polls always make progress has nothing to watch).
  virtual void set_ready_watcher(ReadyWatcher* watcher) { (void)watcher; }

  /// Blocks until at least one byte is available or the stream ends.
  /// Returns the number of bytes placed in `out`; 0 means end-of-stream.
  virtual std::size_t read_some(MutableByteSpan out) = 0;

  /// Zero-copy batched read: blocks like read_some(), then invokes `visit`
  /// once with the available bytes as up to two contiguous spans (at most
  /// `max` bytes total; 0 means "no limit"). The visitor returns how many
  /// bytes it consumed; only those are removed from the stream when the
  /// source can retain a tail (ring-backed sources — DetachableInputStream
  /// overrides this). The base-class adaptation over read_some() cannot
  /// retain bytes, so portable visitors must consume everything offered.
  /// Returns the bytes consumed; 0 means end-of-stream. If `visit` throws,
  /// ring-backed sources leave their buffer untouched.
  virtual std::size_t read_borrow(std::size_t max, SpanVisitor visit);

  /// Reads exactly `out.size()` bytes unless EOF intervenes; returns the
  /// number read (== out.size() normally, < on EOF). Callers that must
  /// distinguish a clean EOF from a torn read should use read_full().
  std::size_t read_exact(MutableByteSpan out);

  /// Like read_exact, but the EOF cases are distinguishable: returns true
  /// when `out` was filled completely, false on a clean end-of-stream
  /// before the first byte, and throws SerialError("<what>: ...") when the
  /// stream ends after at least one byte landed (a torn read — e.g. a
  /// detach EOF raised between a frame's header and its payload).
  bool read_full(MutableByteSpan out, const char* what);

  /// Non-blocking read_borrow for event-driven consumers. Offers whatever
  /// is immediately available exactly like read_borrow(); when nothing is
  /// buffered it returns 0 without blocking and sets `*end` to whether the
  /// stream has ended. A pollable source arms its registered readiness
  /// watcher on the empty-and-open case so the consumer is re-driven when
  /// data (or EOF) arrives. Sources that cannot poll keep the throwing
  /// default — only the detachable streams implement this today.
  virtual std::size_t poll_read_borrow(std::size_t max, SpanVisitor visit,
                                       bool* end);
};

/// Blocking byte consumer.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// True when the try_write_* calls are implemented — the sink can be
  /// fed without a blocking thread. Pairs with set_ready_watcher().
  virtual bool pollable() const noexcept { return false; }

  /// Registers (nullptr clears) the watcher a refused/short try_write
  /// arms. Same contract as ByteSource::set_ready_watcher.
  virtual void set_ready_watcher(ReadyWatcher* watcher) { (void)watcher; }

  /// Blocks until all of `in` is accepted.
  virtual void write(ByteSpan in) = 0;

  /// Vectored write: accepts every segment, back to back, with the same
  /// atomicity as a single write() call — the concatenation is never
  /// interleaved with another writer's data and never torn across a
  /// reconnect. The default assembles one temporary buffer and calls
  /// write(); DetachableOutputStream overrides it with a true single-
  /// transaction implementation (one lock acquisition, no assembly copy).
  virtual void write_vec(std::span<const ByteSpan> segments);

  /// Pushes any buffered bytes toward the consumer. Default: no-op.
  virtual void flush() {}

  /// Non-blocking all-or-nothing vectored write for event-driven producers:
  /// either every segment lands back to back (one transaction, same
  /// atomicity as write_vec) and the call returns true, or nothing is
  /// accepted and the call returns false after arming the sink's registered
  /// writable watcher. Sinks that cannot poll keep the throwing default.
  virtual bool try_write_vec(std::span<const ByteSpan> segments);

  /// Non-blocking partial write: accepts as much of `in` as fits right now
  /// and returns the count (0 when nothing fits). A short write arms the
  /// writable watcher. Byte streams may legally split a chunk across a
  /// reconnect this way; framed data must use try_write_vec instead.
  virtual std::size_t try_write_some(ByteSpan in);
};

}  // namespace rapidware::util
