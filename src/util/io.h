// Abstract byte-stream interfaces. The detachable stream classes in
// src/core implement these; framing and filters are written against them so
// they are testable without threads.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "util/bytes.h"

namespace rapidware::util {

/// Non-owning callable reference used by the zero-copy read path: invoked
/// with (up to) two contiguous spans of buffered data, returns how many of
/// the offered bytes it consumed. Never allocates (unlike std::function),
/// so passing a capturing lambda on the data path is free.
class SpanVisitor {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<F>, SpanVisitor>>>
  SpanVisitor(F&& f)  // NOLINT: implicit by design, mirrors function_ref
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, ByteSpan a, ByteSpan b) -> std::size_t {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(a, b);
        }) {}

  std::size_t operator()(ByteSpan a, ByteSpan b) const {
    return call_(obj_, a, b);
  }

 private:
  void* obj_;
  std::size_t (*call_)(void*, ByteSpan, ByteSpan);
};

/// Blocking byte producer.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Blocks until at least one byte is available or the stream ends.
  /// Returns the number of bytes placed in `out`; 0 means end-of-stream.
  virtual std::size_t read_some(MutableByteSpan out) = 0;

  /// Zero-copy batched read: blocks like read_some(), then invokes `visit`
  /// once with the available bytes as up to two contiguous spans (at most
  /// `max` bytes total; 0 means "no limit"). The visitor returns how many
  /// bytes it consumed; only those are removed from the stream when the
  /// source can retain a tail (ring-backed sources — DetachableInputStream
  /// overrides this). The base-class adaptation over read_some() cannot
  /// retain bytes, so portable visitors must consume everything offered.
  /// Returns the bytes consumed; 0 means end-of-stream. If `visit` throws,
  /// ring-backed sources leave their buffer untouched.
  virtual std::size_t read_borrow(std::size_t max, SpanVisitor visit);

  /// Reads exactly `out.size()` bytes unless EOF intervenes; returns the
  /// number read (== out.size() normally, < on EOF). Callers that must
  /// distinguish a clean EOF from a torn read should use read_full().
  std::size_t read_exact(MutableByteSpan out);

  /// Like read_exact, but the EOF cases are distinguishable: returns true
  /// when `out` was filled completely, false on a clean end-of-stream
  /// before the first byte, and throws SerialError("<what>: ...") when the
  /// stream ends after at least one byte landed (a torn read — e.g. a
  /// detach EOF raised between a frame's header and its payload).
  bool read_full(MutableByteSpan out, const char* what);
};

/// Blocking byte consumer.
class ByteSink {
 public:
  virtual ~ByteSink() = default;

  /// Blocks until all of `in` is accepted.
  virtual void write(ByteSpan in) = 0;

  /// Vectored write: accepts every segment, back to back, with the same
  /// atomicity as a single write() call — the concatenation is never
  /// interleaved with another writer's data and never torn across a
  /// reconnect. The default assembles one temporary buffer and calls
  /// write(); DetachableOutputStream overrides it with a true single-
  /// transaction implementation (one lock acquisition, no assembly copy).
  virtual void write_vec(std::span<const ByteSpan> segments);

  /// Pushes any buffered bytes toward the consumer. Default: no-op.
  virtual void flush() {}
};

}  // namespace rapidware::util
