#include "util/framing.h"

namespace rapidware::util {

void write_frame(ByteSink& sink, ByteSpan payload) {
  Writer w(payload.size() + 6);
  w.u16(kFrameMagic);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.raw(payload);
  sink.write(w.bytes());
}

std::optional<Bytes> read_frame(ByteSource& source) {
  std::uint8_t header[6];
  const std::size_t got = source.read_exact(header);
  if (got == 0) return std::nullopt;  // clean EOF between frames
  if (got < sizeof(header)) throw SerialError("framing: truncated header");

  Reader r(header);
  if (r.u16() != kFrameMagic) throw SerialError("framing: bad magic");
  const std::uint32_t len = r.u32();
  if (len > kMaxFrameSize) throw SerialError("framing: oversized frame");

  Bytes payload(len);
  if (source.read_exact(payload) < len) {
    throw SerialError("framing: truncated payload");
  }
  return payload;
}

}  // namespace rapidware::util
