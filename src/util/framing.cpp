#include "util/framing.h"

#include <array>

namespace rapidware::util {

namespace {

void fill_header(std::uint8_t (&header)[kFrameHeaderSize], ByteSpan payload) {
  header[0] = static_cast<std::uint8_t>(kFrameMagic & 0xff);
  header[1] = static_cast<std::uint8_t>(kFrameMagic >> 8);
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[2] = static_cast<std::uint8_t>(len & 0xff);
  header[3] = static_cast<std::uint8_t>((len >> 8) & 0xff);
  header[4] = static_cast<std::uint8_t>((len >> 16) & 0xff);
  header[5] = static_cast<std::uint8_t>((len >> 24) & 0xff);
}

}  // namespace

void write_frame(ByteSink& sink, ByteSpan payload) {
  std::uint8_t header[kFrameHeaderSize];
  fill_header(header, payload);
  const std::array<ByteSpan, 2> segments = {ByteSpan(header), payload};
  sink.write_vec(segments);
}

bool try_write_frame(ByteSink& sink, ByteSpan payload) {
  std::uint8_t header[kFrameHeaderSize];
  fill_header(header, payload);
  const std::array<ByteSpan, 2> segments = {ByteSpan(header), payload};
  return sink.try_write_vec(segments);
}

std::optional<Bytes> read_frame(ByteSource& source) {
  std::uint8_t header[kFrameHeaderSize];
  if (!source.read_full(header, "framing: header")) {
    return std::nullopt;  // clean EOF between frames
  }

  Reader r(header);
  if (r.u16() != kFrameMagic) throw SerialError("framing: bad magic");
  const std::uint32_t len = r.u32();
  if (len > kMaxFrameSize) throw SerialError("framing: oversized frame");

  Bytes payload(len);
  if (len != 0 && !source.read_full(payload, "framing: payload")) {
    // EOF with zero payload bytes after a complete header is still a torn
    // frame — the header promised `len` more bytes.
    throw SerialError("framing: stream ended between header and payload");
  }
  return payload;
}

}  // namespace rapidware::util
