// Length-prefixed message framing over byte streams.
//
// Detachable streams carry raw bytes (like their Java counterparts); packet
// oriented filters — FEC above all — need message boundaries so that filters
// can be inserted "at a frame boundary in the stream" (paper, Section 3).
// A frame is: magic (u16) | length (u32) | payload bytes.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/io.h"
#include "util/serial.h"

namespace rapidware::util {

/// Magic marker at the start of every frame; catches desynchronization bugs
/// (reading mid-frame after an incorrect splice) immediately.
inline constexpr std::uint16_t kFrameMagic = 0x5257;  // "RW"

/// Frames larger than this are rejected as corrupt.
inline constexpr std::uint32_t kMaxFrameSize = 16 * 1024 * 1024;

/// Bytes of header preceding every payload: magic (u16) + length (u32).
inline constexpr std::size_t kFrameHeaderSize = 6;

/// Writes one framed message as a single vectored write (header and payload
/// as two segments — no assembly copy), with write_vec's atomicity: a frame
/// is never interleaved even if multiple writers share a sink.
void write_frame(ByteSink& sink, ByteSpan payload);

/// Non-blocking variant for event-driven producers: the frame lands whole
/// (header + payload in one try_write_vec transaction) or not at all. A
/// false return means the sink had no room or was mid-splice; the sink's
/// writable watcher is armed, so retry from the readiness callback. Frames
/// larger than the sink's buffer capacity are a StreamError from the sink —
/// an all-or-nothing write can never succeed for them.
bool try_write_frame(ByteSink& sink, ByteSpan payload);

/// Reads one framed message. Returns nullopt on clean end-of-stream before
/// the first header byte. Throws SerialError on a torn/corrupt frame.
///
/// Compatibility wrapper: each call pays a blocking read for the header and
/// another for the payload. Loops that decode many frames should hold a
/// util::FrameReader instead, which batches frame parsing per lock
/// acquisition and recycles payload buffers through the BufferPool.
std::optional<Bytes> read_frame(ByteSource& source);

}  // namespace rapidware::util
