// Length-prefixed message framing over byte streams.
//
// Detachable streams carry raw bytes (like their Java counterparts); packet
// oriented filters — FEC above all — need message boundaries so that filters
// can be inserted "at a frame boundary in the stream" (paper, Section 3).
// A frame is: magic (u16) | length (u32) | payload bytes.
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.h"
#include "util/io.h"
#include "util/serial.h"

namespace rapidware::util {

/// Magic marker at the start of every frame; catches desynchronization bugs
/// (reading mid-frame after an incorrect splice) immediately.
inline constexpr std::uint16_t kFrameMagic = 0x5257;  // "RW"

/// Frames larger than this are rejected as corrupt.
inline constexpr std::uint32_t kMaxFrameSize = 16 * 1024 * 1024;

/// Writes one framed message to the sink (single write call, so a frame is
/// never interleaved even if multiple writers share a sink).
void write_frame(ByteSink& sink, ByteSpan payload);

/// Reads one framed message. Returns nullopt on clean end-of-stream before
/// the first header byte. Throws SerialError on a torn/corrupt frame.
std::optional<Bytes> read_frame(ByteSource& source);

}  // namespace rapidware::util
