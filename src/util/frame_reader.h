// Batched frame decoder over a ByteSource.
//
// `read_frame` costs two blocking reads (header, then payload) per frame —
// on a detachable stream that is two lock acquisitions and up to two
// condition-variable sleeps per packet. FrameReader instead drains whatever
// the source has buffered in ONE read_borrow() call, parses every complete
// frame in that batch directly out of the stream's ring spans (payload is
// memcpy'd exactly once, into a pooled buffer), and hands the frames out of
// its ready queue on subsequent next() calls without touching the stream.
// Under load, a chain hop pays ~1/k of a lock acquisition per frame, where
// k is however many frames the writer batched ahead.
//
// Not thread-safe: a FrameReader belongs to the stream's single reader
// thread (the same one-reader contract the stream itself has).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/buffer_pool.h"
#include "util/bytes.h"
#include "util/io.h"

namespace rapidware::util {

class FrameReader {
 public:
  /// Frames' payload buffers are acquired from the CALLING thread's
  /// arena, resolved per refill via BufferPool::local() — a FrameReader
  /// constructed on a control thread but drained on a worker thread
  /// (PacketFilter::event_start builds one, on_ready drives it) acquires
  /// from the worker's pool, not the control thread's. Callers that move
  /// frames along (PacketFilter::emit(Bytes&&)) keep the capacity cycling.
  explicit FrameReader(ByteSource& source);

  /// Pins every acquire to `pool` regardless of thread (tests, and
  /// thread-dispatch paths that want the process pool explicitly).
  FrameReader(ByteSource& source, BufferPool& pool);

  /// Returns the next frame payload, blocking if the source has nothing
  /// buffered. nullopt means clean end-of-stream at a frame boundary.
  /// Throws SerialError on bad magic, oversized length, or a stream that
  /// ends mid-frame (torn frame).
  std::optional<Bytes> next();

  /// Non-blocking next() for event-driven consumers over a pollable source:
  /// nullopt with *end == false means would-block (the source armed its
  /// readiness watcher — re-drive from the callback); nullopt with
  /// *end == true is clean end-of-stream. Torn-frame and corruption errors
  /// throw exactly like next().
  std::optional<Bytes> poll(bool* end);

  /// Frames decoded so far.
  std::uint64_t frames() const noexcept { return frames_; }

  /// Blocking refills issued so far: frames()/refills() is the measured
  /// batching factor (1.0 = no better than read_frame; higher = fewer lock
  /// acquisitions per frame).
  std::uint64_t refills() const noexcept { return refills_; }

 private:
  /// Parses every complete frame in stash_ + a + b; the incomplete tail (if
  /// any) becomes the new stash_. Consumes all offered bytes.
  void ingest(ByteSpan a, ByteSpan b);

  std::optional<Bytes> take_ready();
  [[noreturn]] void throw_torn() const;

  /// The thread-appropriate arena for this refill (pinned pool, or the
  /// calling thread's BufferPool::local()).
  BufferPool& arena() const noexcept {
    return pool_ != nullptr ? *pool_ : BufferPool::local();
  }

  ByteSource& source_;
  BufferPool* const pool_;  // nullptr = dynamic (thread-local) resolution
  Bytes stash_;  // partial frame carried across refills (header-first bytes)
  std::vector<Bytes> ready_;  // decoded frames, FIFO via ready_pos_
  std::size_t ready_pos_ = 0;
  bool eof_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t refills_ = 0;
};

}  // namespace rapidware::util
