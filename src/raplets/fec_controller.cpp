#include "raplets/fec_controller.h"

#include <sstream>
#include <stdexcept>

#include "util/logging.h"

namespace rapidware::raplets {

namespace {

std::optional<std::size_t> find_filter(core::ControlManager& manager,
                                       const std::string& name) {
  const auto infos = manager.list_chain();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].name == name) return i;
  }
  return std::nullopt;
}

void remove_if_present(core::ControlManager& manager, const std::string& name) {
  if (const auto pos = find_filter(manager, name)) manager.remove(*pos);
}

}  // namespace

AdaptiveFecController::AdaptiveFecController(AdaptiveFecControllerConfig config)
    : config_(std::move(config)) {
  // Surface bad policy config at construction, not at the first tick.
  FecPolicy probe(config_.policy);
  (void)probe;
  if ((config_.interleave_rows == 0) != (config_.interleave_depth == 0)) {
    throw std::invalid_argument(
        "AdaptiveFecController: interleave rows and depth must be set "
        "together");
  }
}

void AdaptiveFecController::add_flow(FlowConfig flow) {
  if (flow.name.empty()) {
    throw std::invalid_argument("AdaptiveFecController: empty flow name");
  }
  if (!flow.probe) {
    throw std::invalid_argument("AdaptiveFecController: null loss probe");
  }
  rw::MutexLock lk(mu_);
  if (find_locked(flow.name) != nullptr) {
    throw std::invalid_argument("AdaptiveFecController: duplicate flow " +
                                flow.name);
  }
  flows_.push_back(std::make_unique<Flow>(std::move(flow), config_.policy));
}

bool AdaptiveFecController::remove_flow(const std::string& name) {
  rw::MutexLock lk(mu_);
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if ((*it)->cfg.name == name) {
      flows_.erase(it);
      if (active_gauge_) {
        std::int64_t active = 0;
        for (const auto& f : flows_) {
          if (f->policy.active()) ++active;
        }
        active_gauge_->set(active);
      }
      return true;
    }
  }
  return false;
}

std::size_t AdaptiveFecController::tick(util::Micros now) {
  rw::MutexLock lk(mu_);
  std::size_t changed = 0;
  std::int64_t active = 0;
  for (auto& flow : flows_) {
    const double sample = flow->cfg.probe();
    const FecPolicy::Decision d = flow->policy.update(now, sample);
    if (d.action != FecPolicy::Action::kNone) {
      if (apply_locked(*flow, d, now)) ++changed;
    }
    if (flow->policy.active()) ++active;
  }
  if (active_gauge_) active_gauge_->set(active);
  return changed;
}

bool AdaptiveFecController::apply_locked(Flow& flow,
                                         const FecPolicy::Decision& d,
                                         util::Micros now) {
  const bool interleave =
      config_.interleave_rows > 0 && config_.interleave_depth > 0;
  const core::ParamMap il_params = {
      {"rows", std::to_string(config_.interleave_rows)},
      {"depth", std::to_string(config_.interleave_depth)}};
  std::ostringstream what;
  try {
    switch (d.action) {
      case FecPolicy::Action::kInsert:
        what << flow.cfg.name << " insert fec(" << d.n << "," << d.k << ")";
        // Decoder side first: every FEC-framed packet that reaches the
        // receiver must find a decoder already in place.
        if (flow.cfg.decoder_control) {
          flow.cfg.decoder_control->insert({"fec-decode", {}},
                                           config_.decoder_pos);
          if (interleave) {
            flow.cfg.decoder_control->insert({"deinterleave", il_params},
                                             config_.decoder_pos);
          }
        }
        flow.cfg.control.insert({"fec-encode",
                                 {{"n", std::to_string(d.n)},
                                  {"k", std::to_string(d.k)}}},
                                config_.encoder_pos);
        if (interleave) {
          flow.cfg.control.insert({"interleave", il_params},
                                  config_.encoder_pos + 1);
        }
        if (inserts_) inserts_->add();
        break;
      case FecPolicy::Action::kRetune: {
        what << flow.cfg.name << " retune fec(" << d.n << "," << d.k << ")";
        const auto infos = flow.cfg.control.list_chain();
        std::size_t pos = infos.size();
        for (std::size_t i = 0; i < infos.size(); ++i) {
          if (infos[i].name == "fec-encode") pos = i;
        }
        if (pos == infos.size()) {
          throw core::ControlError("fec-encode not in chain");
        }
        // The encoder enforces n >= k on every individual set_param, so the
        // update order depends on direction: shrinking the group must lower
        // k first, growing it must raise n first.
        const auto n_it = infos[pos].params.find("n");
        const std::size_t cur_n =
            n_it == infos[pos].params.end() ? 0 : std::stoul(n_it->second);
        if (d.n < cur_n) {
          flow.cfg.control.set_param(pos, "k", std::to_string(d.k));
          flow.cfg.control.set_param(pos, "n", std::to_string(d.n));
        } else {
          flow.cfg.control.set_param(pos, "n", std::to_string(d.n));
          flow.cfg.control.set_param(pos, "k", std::to_string(d.k));
        }
        if (retunes_) retunes_->add();
        break;
      }
      case FecPolicy::Action::kRemove:
        what << flow.cfg.name << " remove fec";
        // Encoder first, so no new FEC frames enter the pipe; the decoder
        // drains in pass-through mode before removal.
        remove_if_present(flow.cfg.control, "interleave");
        remove_if_present(flow.cfg.control, "fec-encode");
        if (flow.cfg.decoder_control) {
          remove_if_present(*flow.cfg.decoder_control, "fec-decode");
          remove_if_present(*flow.cfg.decoder_control, "deinterleave");
        }
        if (removes_) removes_->add();
        break;
      case FecPolicy::Action::kNone:
        return false;
    }
  } catch (const std::exception& e) {
    if (failures_) failures_->add();
    trace_locked(now, what.str() + " FAILED: " + e.what());
    RW_WARN("fec-controller") << what.str() << " failed: " << e.what();
    return false;
  }
  what << " loss=" << d.smoothed;
  trace_locked(now, what.str());
  return true;
}

bool AdaptiveFecController::fec_active(const std::string& flow) const {
  rw::MutexLock lk(mu_);
  const Flow* f = find_locked(flow);
  if (f == nullptr) {
    throw std::invalid_argument("AdaptiveFecController: unknown flow " + flow);
  }
  return f->policy.active();
}

double AdaptiveFecController::smoothed_loss(const std::string& flow) const {
  rw::MutexLock lk(mu_);
  const Flow* f = find_locked(flow);
  if (f == nullptr) {
    throw std::invalid_argument("AdaptiveFecController: unknown flow " + flow);
  }
  return f->policy.smoothed();
}

std::size_t AdaptiveFecController::flows() const {
  rw::MutexLock lk(mu_);
  return flows_.size();
}

core::LossRegime AdaptiveFecController::regime(const std::string& flow) const {
  rw::MutexLock lk(mu_);
  const Flow* f = find_locked(flow);
  if (f == nullptr) {
    throw std::invalid_argument("AdaptiveFecController: unknown flow " + flow);
  }
  return core::regime_for_loss(f->policy.smoothed(),
                               config_.policy.insert_threshold);
}

void AdaptiveFecController::bind_metrics(obs::Scope scope) {
  rw::MutexLock lk(mu_);
  inserts_ = scope.counter("inserts");
  retunes_ = scope.counter("retunes");
  removes_ = scope.counter("removes");
  failures_ = scope.counter("failures");
  active_gauge_ = scope.gauge("active_flows");
  trace_ = scope.trace("actions", 64);
}

AdaptiveFecController::Flow* AdaptiveFecController::find_locked(
    const std::string& name) {
  for (auto& f : flows_) {
    if (f->cfg.name == name) return f.get();
  }
  return nullptr;
}

const AdaptiveFecController::Flow* AdaptiveFecController::find_locked(
    const std::string& name) const {
  for (const auto& f : flows_) {
    if (f->cfg.name == name) return f.get();
  }
  return nullptr;
}

void AdaptiveFecController::trace_locked(util::Micros now,
                                         const std::string& text) {
  if (trace_) trace_->record_at(now, text);
}

AdaptiveFecController::LossProbe AdaptiveFecController::delta_loss_probe(
    std::function<std::uint64_t()> attempted,
    std::function<std::uint64_t()> dropped) {
  if (!attempted || !dropped) {
    throw std::invalid_argument("delta_loss_probe: null counter");
  }
  // One probe belongs to one flow; tick() serializes calls, so plain
  // mutable lambda state suffices.
  return [attempted = std::move(attempted), dropped = std::move(dropped),
          last_a = std::uint64_t{0}, last_d = std::uint64_t{0},
          primed = false]() mutable {
    const std::uint64_t a = attempted();
    const std::uint64_t d = dropped();
    const std::uint64_t da = a - last_a;
    const std::uint64_t dd = d - last_d;
    last_a = a;
    last_d = d;
    if (!primed) {
      primed = true;
      // First call establishes the baseline; report the lifetime average.
      return a == 0 ? 0.0 : static_cast<double>(d) / static_cast<double>(a);
    }
    if (da == 0) return 0.0;
    return static_cast<double>(dd) / static_cast<double>(da);
  };
}

}  // namespace rapidware::raplets
