#include "raplets/fec_responder.h"

#include "util/logging.h"

namespace rapidware::raplets {

FecResponder::FecResponder(core::ControlManager encoder_side,
                           std::optional<core::ControlManager> decoder_side,
                           FecResponderConfig config)
    : encoder_side_(std::move(encoder_side)),
      decoder_side_(std::move(decoder_side)),
      config_(config) {
  if (config_.remove_threshold > config_.insert_threshold) {
    throw std::invalid_argument(
        "FecResponder: remove threshold must not exceed insert threshold");
  }
}

void FecResponder::on_event(const Event& event) {
  if (event.type != "loss-rate") return;
  rw::MutexLock lk(mu_);
  if (ever_changed_ && event.at - last_change_ < config_.cooldown_us) return;
  if (!active_ && event.value >= config_.insert_threshold) {
    activate(event);
  } else if (active_ && event.value <= config_.remove_threshold) {
    deactivate(event);
  }
}

void FecResponder::activate(const Event& event) {
  try {
    // Decoder first: every FEC-framed packet must find a decoder downstream.
    if (decoder_side_) {
      decoder_side_->insert({"fec-decode", {}}, config_.decoder_pos);
    }
    encoder_side_.insert({"fec-encode",
                          {{"n", std::to_string(config_.n)},
                           {"k", std::to_string(config_.k)}}},
                         config_.encoder_pos);
  } catch (const std::exception& e) {
    RW_WARN("fec-responder") << "activate failed: " << e.what();
    return;
  }
  active_ = true;
  ever_changed_ = true;
  last_change_ = event.at;
  history_.push_back({event.at, true, event.value});
  RW_INFO("fec-responder") << "inserted FEC(" << config_.n << ","
                           << config_.k << ") at loss " << event.value;
}

void FecResponder::deactivate(const Event& event) {
  try {
    // Encoder first, so no new FEC frames enter the pipe; the decoder (if
    // we manage one) drains in pass-through mode before removal.
    if (const auto pos = find_filter(encoder_side_, "fec-encode")) {
      encoder_side_.remove(*pos);
    }
    if (decoder_side_) {
      if (const auto pos = find_filter(*decoder_side_, "fec-decode")) {
        decoder_side_->remove(*pos);
      }
    }
  } catch (const std::exception& e) {
    RW_WARN("fec-responder") << "deactivate failed: " << e.what();
    return;
  }
  active_ = false;
  ever_changed_ = true;
  last_change_ = event.at;
  history_.push_back({event.at, false, event.value});
  RW_INFO("fec-responder") << "removed FEC at loss " << event.value;
}

std::optional<std::size_t> FecResponder::find_filter(
    core::ControlManager& manager, const std::string& name) {
  const auto infos = manager.list_chain();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].name == name) return i;
  }
  return std::nullopt;
}

bool FecResponder::fec_active() const {
  rw::MutexLock lk(mu_);
  return active_;
}

std::vector<FecResponder::Action> FecResponder::history() const {
  rw::MutexLock lk(mu_);
  return history_;
}

}  // namespace rapidware::raplets
