// Raplets — RAPIDware's adaptive components (Section 2, Figure 2).
//
// Observers monitor system state (here: receiver loss reports) and fire
// events; responders react by reconfiguring middleware — instantiating or
// removing filters through proxy control channels. The separation keeps
// adaptive logic out of the core data path, the project's key principle.
#pragma once

#include <functional>
#include <string>

#include "util/clock.h"

namespace rapidware::raplets {

/// An observation worth reacting to.
struct Event {
  std::string type;      // e.g. "loss-rate"
  std::string source;    // receiver / link identifier
  double value = 0.0;    // e.g. loss fraction
  util::Micros at = 0;
};

/// Responders consume events. Implementations must be thread-safe: events
/// may arrive from an observer's service thread.
class Responder {
 public:
  virtual ~Responder() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Observers produce events into a callback (usually a Responder).
class Observer {
 public:
  virtual ~Observer() = default;

  using EventSink = std::function<void(const Event&)>;
  virtual void set_sink(EventSink sink) = 0;

  /// Begins/ends monitoring (threads, sockets).
  virtual void start() = 0;
  virtual void stop() = 0;
};

}  // namespace rapidware::raplets
