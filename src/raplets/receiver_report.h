// Receiver feedback: mobile hosts periodically report their delivery rate
// to the proxy's loss observer (the monitoring input of Figure 2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "media/receiver_log.h"
#include "net/sim_network.h"
#include "util/bytes.h"

namespace rapidware::raplets {

struct ReceiverReport {
  std::string receiver;       // who is reporting
  std::uint64_t delivered = 0;
  std::uint64_t expected = 0;
  double window_loss = 0.0;   // post-recovery loss over the report window
  std::int64_t at_us = 0;
  /// Raw *link* loss over the window, measured before FEC recovery (the
  /// "% received" of Figure 7). Negative when unknown — e.g. no FEC layer
  /// is present to observe raw arrivals — in which case observers fall
  /// back to window_loss. Keying adaptation on raw loss is what prevents
  /// the insert/remove flap: once FEC masks the losses, window_loss goes
  /// to zero even though the link is still bad.
  double raw_loss = -1.0;

  util::Bytes serialize() const;
  static ReceiverReport parse(util::ByteSpan wire);

  bool operator==(const ReceiverReport&) const = default;
};

/// Receiver-side helper: tracks deliveries between reports and sends a
/// ReceiverReport datagram every `interval_packets` packets.
class ReportSender {
 public:
  ReportSender(std::string receiver_name,
               std::shared_ptr<net::SimSocket> socket, net::Address observer,
               std::size_t interval_packets = 50);

  /// Supplies raw link-loss measurements (fraction in [0,1], or negative
  /// for unknown), sampled when each report is emitted. Typically a lambda
  /// over fec::DecoderStats deltas.
  using RawLossProvider = std::function<double()>;
  void set_raw_loss_provider(RawLossProvider provider) {
    raw_loss_provider_ = std::move(provider);
  }

  /// Notes one delivered packet (seq for gap detection) and sends a report
  /// when the interval elapses.
  void on_delivered(std::uint32_t seq, util::Micros now);

  std::uint64_t reports_sent() const noexcept { return reports_; }

 private:
  std::string name_;
  std::shared_ptr<net::SimSocket> socket_;
  net::Address observer_;
  std::size_t interval_;

  bool has_last_ = false;
  std::uint32_t highest_seq_ = 0;
  std::uint64_t window_delivered_ = 0;
  std::uint32_t window_start_seq_ = 0;
  std::uint64_t total_delivered_ = 0;
  std::uint64_t reports_ = 0;
  RawLossProvider raw_loss_provider_;
};

}  // namespace rapidware::raplets
