#include "raplets/handoff.h"

#include "util/logging.h"

namespace rapidware::raplets {

HandoffCoordinator::HandoffCoordinator(proxy::Proxy& proxy,
                                       core::ControlManager manager)
    : proxy_(proxy), manager_(std::move(manager)) {}

void HandoffCoordinator::register_device(DeviceProfile profile) {
  rw::MutexLock lk(mu_);
  devices_[profile.name] = std::move(profile);
}

int HandoffCoordinator::reduction_for(double stream_bps, double budget_bps) {
  for (const int reduction : {1, 2, 4}) {
    if (stream_bps / reduction <= budget_bps) return reduction;
  }
  return 4;
}

std::optional<std::size_t> HandoffCoordinator::find_filter(
    const std::string& name) {
  const auto infos = manager_.list_chain();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].name == name) return i;
  }
  return std::nullopt;
}

void HandoffCoordinator::handoff_to(const std::string& device,
                                    double stream_bps) {
  rw::MutexLock lk(mu_);
  const DeviceProfile& profile = devices_.at(device);

  // 1. Reshape the chain FIRST, so the new device never sees packets in a
  // format it cannot afford. Transcode: insert, retune, or remove.
  const int reduction = reduction_for(stream_bps, profile.link_budget_bps);
  const std::string mode = reduction == 4 ? "mono+half" : "mono";
  if (const auto pos = find_filter("audio-transcode")) {
    if (reduction == 1) {
      manager_.remove(*pos);
    } else {
      manager_.set_param(*pos, "mode", mode);
    }
  } else if (reduction > 1) {
    manager_.insert({"audio-transcode", {{"mode", mode}}}, 0);
  }

  // FEC sits AFTER the transcoder (protect the bytes actually sent).
  const auto fec_pos = find_filter("fec-encode");
  if (profile.wants_fec && !fec_pos) {
    manager_.insert({"fec-encode",
                     {{"n", std::to_string(profile.fec_n)},
                      {"k", std::to_string(profile.fec_k)}}},
                    manager_.list_chain().size());
  } else if (!profile.wants_fec && fec_pos) {
    manager_.remove(*fec_pos);
  }

  // 2. Retarget the egress: the next packet out goes to the new device.
  proxy_.retarget_egress(profile.delivery);
  active_ = device;
  history_.push_back({device, reduction, profile.wants_fec});
  RW_INFO("handoff") << "stream handed to '" << device << "' (x" << reduction
                     << (profile.wants_fec ? ", fec)" : ")");
}

std::string HandoffCoordinator::active_device() const {
  rw::MutexLock lk(mu_);
  return active_;
}

std::vector<HandoffCoordinator::Event> HandoffCoordinator::history() const {
  rw::MutexLock lk(mu_);
  return history_;
}

}  // namespace rapidware::raplets
