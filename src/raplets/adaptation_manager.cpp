#include "raplets/adaptation_manager.h"

#include <stdexcept>

namespace rapidware::raplets {

AdaptationManager::AdaptationManager(std::shared_ptr<Observer> observer,
                                     std::shared_ptr<Responder> responder)
    : observer_(std::move(observer)), responder_(std::move(responder)) {
  if (!observer_ || !responder_) {
    throw std::invalid_argument("AdaptationManager: null observer/responder");
  }
  observer_->set_sink(
      [responder = responder_](const Event& e) { responder->on_event(e); });
}

AdaptationManager::~AdaptationManager() { stop(); }

void AdaptationManager::start() {
  if (running_) return;
  running_ = true;
  observer_->start();
}

void AdaptationManager::stop() {
  if (!running_) return;
  running_ = false;
  observer_->stop();
}

}  // namespace rapidware::raplets
