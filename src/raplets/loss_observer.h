// Loss observer raplet: a service thread that receives ReceiverReports on
// a datagram socket, smooths per-receiver loss, and emits "loss-rate"
// events toward its responder.
#pragma once

#include <map>
#include <thread>

#include "raplets/raplet.h"
#include "raplets/receiver_report.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::raplets {

class LossObserver final : public Observer {
 public:
  /// `socket` must be bound where receivers send their reports. `alpha` is
  /// the exponential smoothing weight of new samples.
  explicit LossObserver(std::shared_ptr<net::SimSocket> socket,
                        double alpha = 0.4);
  ~LossObserver() override;

  void set_sink(EventSink sink) override;
  void start() override;
  void stop() override;

  /// Smoothed loss for one receiver (0 if unheard from).
  double loss_for(const std::string& receiver) const;

  /// Highest smoothed loss across receivers — what a multicast FEC
  /// responder keys on (one parity stream must cover the worst receiver).
  double worst_loss() const;

  std::uint64_t reports_seen() const;

 private:
  void service_loop();

  const std::shared_ptr<net::SimSocket> socket_;
  const double alpha_;

  mutable rw::Mutex mu_{"raplets/loss_observer", rw::lockrank::kRapletObserver};
  EventSink sink_ RW_GUARDED_BY(mu_);
  std::map<std::string, double> smoothed_ RW_GUARDED_BY(mu_);
  std::uint64_t reports_ RW_GUARDED_BY(mu_) = 0;
  // Moves out under mu_ in stop() so racing stops join exactly once.
  std::thread thread_ RW_GUARDED_BY(mu_);
  bool running_ RW_GUARDED_BY(mu_) = false;
};

}  // namespace rapidware::raplets
