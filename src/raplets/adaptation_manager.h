// AdaptationManager: owns an observer/responder pair and their wiring —
// the minimal RAPIDware control loop of Figure 2 for one adaptation
// concern. Keeping the wiring in one object makes tear-down ordering
// (stop observer before destroying the responder) automatic.
#pragma once

#include <memory>

#include "raplets/raplet.h"

namespace rapidware::raplets {

class AdaptationManager {
 public:
  AdaptationManager(std::shared_ptr<Observer> observer,
                    std::shared_ptr<Responder> responder);
  ~AdaptationManager();

  AdaptationManager(const AdaptationManager&) = delete;
  AdaptationManager& operator=(const AdaptationManager&) = delete;

  void start();
  void stop();

  Observer& observer() { return *observer_; }
  Responder& responder() { return *responder_; }

 private:
  std::shared_ptr<Observer> observer_;
  std::shared_ptr<Responder> responder_;
  bool running_ = false;
};

}  // namespace rapidware::raplets
