#include "raplets/throughput_observer.h"

#include <chrono>
#include <stdexcept>

namespace rapidware::raplets {

ThroughputObserver::ThroughputObserver(std::string source, ByteCounter counter,
                                       int interval_ms, util::Clock* clock,
                                       double alpha)
    : source_(std::move(source)),
      counter_(std::move(counter)),
      interval_ms_(interval_ms),
      clock_(clock != nullptr ? clock : &wall_),
      alpha_(alpha) {
  if (!counter_) {
    throw std::invalid_argument("ThroughputObserver: null counter");
  }
  if (interval_ms_ <= 0) {
    throw std::invalid_argument("ThroughputObserver: interval must be > 0");
  }
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument("ThroughputObserver: alpha in (0, 1]");
  }
  rw::MutexLock lk(mu_);
  last_bytes_ = counter_();
  last_at_ = clock_->now();
}

ThroughputObserver::~ThroughputObserver() { stop(); }

void ThroughputObserver::set_sink(EventSink sink) {
  rw::MutexLock lk(mu_);
  sink_ = std::move(sink);
}

void ThroughputObserver::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { poll_loop(); });
}

void ThroughputObserver::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

void ThroughputObserver::poll_once() {
  const std::uint64_t bytes = counter_();
  const util::Micros now = clock_->now();
  double bps = 0.0;
  EventSink sink;
  {
    rw::MutexLock lk(mu_);
    if (now <= last_at_) return;  // virtual clock not advanced
    const double sample = static_cast<double>(bytes - last_bytes_) * 1e6 /
                          static_cast<double>(now - last_at_);
    last_bytes_ = bytes;
    last_at_ = now;
    smoothed_ = primed_ ? alpha_ * sample + (1.0 - alpha_) * smoothed_
                        : sample;
    primed_ = true;
    bps = smoothed_;
    sink = sink_;
  }
  last_bps_.store(bps);
  if (sink) sink(Event{"throughput-bps", source_, bps, now});
}

void ThroughputObserver::poll_loop() {
  while (running_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
    poll_once();
  }
}

}  // namespace rapidware::raplets
