#include "raplets/throughput_observer.h"

#include <stdexcept>

namespace rapidware::raplets {

ThroughputObserver::ThroughputObserver(std::string source, ByteCounter counter,
                                       int interval_ms, util::Clock* clock,
                                       double alpha)
    : source_(std::move(source)),
      counter_(std::move(counter)),
      interval_ms_(interval_ms),
      clock_(clock != nullptr ? clock : &wall_),
      alpha_(alpha) {
  if (!counter_) {
    throw std::invalid_argument("ThroughputObserver: null counter");
  }
  if (interval_ms_ <= 0) {
    throw std::invalid_argument("ThroughputObserver: interval must be > 0");
  }
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument("ThroughputObserver: alpha in (0, 1]");
  }
}

ThroughputObserver::~ThroughputObserver() { stop(); }

void ThroughputObserver::set_sink(EventSink sink) {
  std::lock_guard lk(mu_);
  sink_ = std::move(sink);
}

void ThroughputObserver::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { poll_loop(); });
}

void ThroughputObserver::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

void ThroughputObserver::poll_loop() {
  std::uint64_t last_bytes = counter_();
  util::Micros last_at = clock_->now();
  bool primed = false;
  double smoothed = 0.0;
  while (running_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
    const std::uint64_t bytes = counter_();
    const util::Micros now = clock_->now();
    if (now <= last_at) continue;  // virtual clock not advanced
    const double sample = static_cast<double>(bytes - last_bytes) * 1e6 /
                          static_cast<double>(now - last_at);
    last_bytes = bytes;
    last_at = now;
    smoothed = primed ? alpha_ * sample + (1.0 - alpha_) * smoothed : sample;
    primed = true;
    const double bps = smoothed;
    last_bps_.store(bps);

    EventSink sink;
    {
      std::lock_guard lk(mu_);
      sink = sink_;
    }
    if (sink) sink(Event{"throughput-bps", source_, bps, now});
  }
}

}  // namespace rapidware::raplets
