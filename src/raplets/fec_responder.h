// FEC responder raplet: demand-driven forward error correction.
//
// Reacts to "loss-rate" events by inserting an FEC encoder into the
// sender-side proxy (and a decoder into the receiver-side chain) when loss
// crosses a threshold, and removing them again when the link recovers —
// exactly the scenario of Section 3: "When losses rise above a given level,
// the RAPIDware system should insert an FEC filter into the video stream"
// without disturbing the connection. Hysteresis plus a cooldown keeps the
// responder from flapping on bursty channels.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/control.h"
#include "raplets/raplet.h"
#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::raplets {

struct FecResponderConfig {
  double insert_threshold = 0.01;   // smoothed loss to switch FEC on
  double remove_threshold = 0.002;  // smoothed loss to switch FEC off
  std::size_t n = 6;                // the paper's FEC(6,4)
  std::size_t k = 4;
  util::Micros cooldown_us = 2'000'000;  // min gap between reconfigurations
  std::size_t encoder_pos = 0;      // chain position for the encoder
  std::size_t decoder_pos = 0;      // chain position for the decoder
};

class FecResponder final : public Responder {
 public:
  /// `encoder_side` manages the proxy before the lossy hop. The optional
  /// `decoder_side` manages the receiver-side chain; without it the
  /// receiver is assumed to keep a permanent pass-through-capable decoder.
  FecResponder(core::ControlManager encoder_side,
               std::optional<core::ControlManager> decoder_side,
               FecResponderConfig config = {});

  void on_event(const Event& event) override;

  bool fec_active() const;

  struct Action {
    util::Micros at;
    bool inserted;  // true = FEC switched on, false = switched off
    double loss;    // smoothed loss that triggered the change
  };
  std::vector<Action> history() const;

 private:
  void activate(const Event& event) RW_REQUIRES(mu_);
  void deactivate(const Event& event) RW_REQUIRES(mu_);
  /// Position of the named filter in a chain listing, or nullopt.
  static std::optional<std::size_t> find_filter(
      core::ControlManager& manager, const std::string& name);

  core::ControlManager encoder_side_ RW_GUARDED_BY(mu_);
  std::optional<core::ControlManager> decoder_side_ RW_GUARDED_BY(mu_);
  const FecResponderConfig config_;

  mutable rw::Mutex mu_{"raplets/fec_responder", rw::lockrank::kRapletResponder};
  bool active_ RW_GUARDED_BY(mu_) = false;
  bool ever_changed_ RW_GUARDED_BY(mu_) = false;
  util::Micros last_change_ RW_GUARDED_BY(mu_) = 0;
  std::vector<Action> history_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::raplets
