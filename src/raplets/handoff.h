// Device handoff coordination — the paper's third adaptation trigger:
// "changes in capabilities as the application is handed off from one
// computing device to another" (Section 3).
//
// A handoff atomically (from the stream's point of view: between packets)
// retargets the proxy's egress to the new device and reshapes the chain to
// the device's profile: transcoding depth chosen from the stream rate vs.
// the device's link budget, and FEC inserted or removed per the device's
// wishes. The stream never stops; the old device simply stops receiving
// after the last pre-handoff packet.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/control.h"
#include "proxy/proxy.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::raplets {

struct DeviceProfile {
  std::string name;
  net::Address delivery;        // where this device listens
  double link_budget_bps = 1e9; // sustainable bytes/second
  bool wants_fec = false;       // lossy last hop: protect the stream
  std::size_t fec_n = 6;
  std::size_t fec_k = 4;
};

class HandoffCoordinator {
 public:
  /// `manager` must control `proxy`'s chain (they may use different
  /// transports; the proxy reference is needed for egress retargeting,
  /// which is not a chain operation).
  HandoffCoordinator(proxy::Proxy& proxy, core::ControlManager manager);

  void register_device(DeviceProfile profile);

  /// Moves the stream to `device`. `stream_bps` is the media rate used to
  /// pick the transcoding depth (e.g. 16000 for the paper's audio format).
  /// Throws std::out_of_range for unknown devices.
  void handoff_to(const std::string& device, double stream_bps);

  std::string active_device() const;

  struct Event {
    std::string device;
    int reduction;  // transcode factor applied (1 = none)
    bool fec;
  };
  std::vector<Event> history() const;

 private:
  /// Desired transcode factor for a budget (1, 2, or 4).
  static int reduction_for(double stream_bps, double budget_bps);
  std::optional<std::size_t> find_filter(const std::string& name) RW_REQUIRES(mu_);

  proxy::Proxy& proxy_;
  core::ControlManager manager_ RW_GUARDED_BY(mu_);

  mutable rw::Mutex mu_{"raplets/handoff", rw::lockrank::kRapletResponder};
  std::map<std::string, DeviceProfile> devices_ RW_GUARDED_BY(mu_);
  std::string active_ RW_GUARDED_BY(mu_);
  std::vector<Event> history_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::raplets
