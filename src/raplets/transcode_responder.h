// Transcode responder raplet: matches a stream to a constrained client.
//
// Consumes "throughput-bps" events (stream demand) and escalates through a
// transcoding ladder until the stream fits the client's link budget:
//
//     off  ->  mono (2x smaller)  ->  mono+half (4x smaller)
//
// and de-escalates with hysteresis when demand drops. This is the paper's
// "transcode the stream to a lower bandwidth format" proxy duty, run by a
// responder instead of a human — the heterogeneity counterpart to the FEC
// responder's loss adaptation.
#pragma once

#include <optional>
#include <vector>

#include "core/control.h"
#include "raplets/raplet.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::raplets {

struct TranscodeResponderConfig {
  /// The client's sustainable link budget in bytes/second.
  double link_budget_bps = 8'000;
  /// Keep this fraction of budget as headroom before de-escalating.
  double hysteresis = 0.85;
  util::Micros cooldown_us = 1'000'000;
  std::size_t position = 0;  // chain slot for the transcode filter
  /// Input audio format parameters passed to the filter.
  std::string rate = "8000";
  std::string channels = "2";
  std::string bits = "8";
};

class TranscodeResponder final : public Responder {
 public:
  TranscodeResponder(core::ControlManager manager,
                     TranscodeResponderConfig config = {});

  void on_event(const Event& event) override;

  /// Current reduction factor: 1 (off), 2 (mono), or 4 (mono+half).
  int current_reduction() const;

  struct Action {
    util::Micros at;
    int reduction;  // new reduction factor
    double demand_bps;
  };
  std::vector<Action> history() const;

 private:
  /// Smallest ladder step whose reduced rate fits the budget.
  int desired_reduction(double demand_bps) const;
  void apply(int reduction, const Event& event) RW_REQUIRES(mu_);
  std::optional<std::size_t> find_filter() RW_REQUIRES(mu_);

  core::ControlManager manager_ RW_GUARDED_BY(mu_);
  const TranscodeResponderConfig config_;

  mutable rw::Mutex mu_{"raplets/transcode_responder", rw::lockrank::kRapletResponder};
  int reduction_ RW_GUARDED_BY(mu_) = 1;
  bool ever_changed_ RW_GUARDED_BY(mu_) = false;
  util::Micros last_change_ RW_GUARDED_BY(mu_) = 0;
  std::vector<Action> history_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::raplets
