#include "raplets/transcode_responder.h"

#include "util/logging.h"

namespace rapidware::raplets {

TranscodeResponder::TranscodeResponder(core::ControlManager manager,
                                       TranscodeResponderConfig config)
    : manager_(std::move(manager)), config_(config) {
  if (config_.link_budget_bps <= 0) {
    throw std::invalid_argument("TranscodeResponder: budget must be > 0");
  }
  if (config_.hysteresis <= 0 || config_.hysteresis > 1.0) {
    throw std::invalid_argument("TranscodeResponder: hysteresis in (0, 1]");
  }
}

int TranscodeResponder::desired_reduction(double demand_bps) const {
  for (const int reduction : {1, 2, 4}) {
    if (demand_bps / reduction <= config_.link_budget_bps) return reduction;
  }
  return 4;  // deepest available step
}

void TranscodeResponder::on_event(const Event& event) {
  if (event.type != "throughput-bps") return;
  rw::MutexLock lk(mu_);
  if (ever_changed_ && event.at - last_change_ < config_.cooldown_us) return;

  const int desired = desired_reduction(event.value);
  if (desired > reduction_) {
    apply(desired, event);  // escalate promptly: the link is overrun
  } else if (desired < reduction_) {
    // De-escalate only with headroom: the shallower step must still fit
    // within the hysteresis fraction of the budget.
    if (event.value / desired <=
        config_.link_budget_bps * config_.hysteresis) {
      apply(desired, event);
    }
  }
}

void TranscodeResponder::apply(int reduction, const Event& event) {
  try {
    const auto pos = find_filter();
    if (reduction == 1) {
      if (pos) manager_.remove(*pos);
    } else {
      const std::string mode = reduction == 2 ? "mono" : "mono+half";
      if (pos) {
        manager_.set_param(*pos, "mode", mode);
      } else {
        manager_.insert({"audio-transcode",
                         {{"mode", mode},
                          {"rate", config_.rate},
                          {"channels", config_.channels},
                          {"bits", config_.bits}}},
                        config_.position);
      }
    }
  } catch (const std::exception& e) {
    RW_WARN("transcode-responder") << "reconfiguration failed: " << e.what();
    return;
  }
  reduction_ = reduction;
  ever_changed_ = true;
  last_change_ = event.at;
  history_.push_back({event.at, reduction, event.value});
  RW_INFO("transcode-responder")
      << "reduction x" << reduction << " at demand " << event.value << " B/s";
}

std::optional<std::size_t> TranscodeResponder::find_filter() {
  const auto infos = manager_.list_chain();
  for (std::size_t i = 0; i < infos.size(); ++i) {
    if (infos[i].name == "audio-transcode") return i;
  }
  return std::nullopt;
}

int TranscodeResponder::current_reduction() const {
  rw::MutexLock lk(mu_);
  return reduction_;
}

std::vector<TranscodeResponder::Action> TranscodeResponder::history() const {
  rw::MutexLock lk(mu_);
  return history_;
}

}  // namespace rapidware::raplets
