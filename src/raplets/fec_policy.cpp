#include "raplets/fec_policy.h"

#include <stdexcept>

namespace rapidware::raplets {

FecPolicy::FecPolicy(FecPolicyConfig config) : config_(std::move(config)) {
  if (config_.remove_threshold > config_.insert_threshold) {
    throw std::invalid_argument(
        "FecPolicy: remove threshold must not exceed insert threshold");
  }
  if (config_.alpha <= 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("FecPolicy: alpha must be in (0, 1]");
  }
  if (config_.rungs.empty()) {
    throw std::invalid_argument("FecPolicy: at least one rung required");
  }
  for (std::size_t i = 0; i < config_.rungs.size(); ++i) {
    const FecRung& r = config_.rungs[i];
    if (r.k == 0 || r.n <= r.k) {
      throw std::invalid_argument("FecPolicy: rungs need n > k >= 1");
    }
    if (i > 0 && r.min_loss <= config_.rungs[i - 1].min_loss) {
      throw std::invalid_argument(
          "FecPolicy: rungs must ascend strictly by min_loss");
    }
  }
}

const FecRung& FecPolicy::rung_for(double loss) const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < config_.rungs.size(); ++i) {
    if (loss >= config_.rungs[i].min_loss) best = i;
  }
  return config_.rungs[best];
}

FecPolicy::Decision FecPolicy::update(util::Micros now, double loss_sample) {
  if (loss_sample < 0.0) loss_sample = 0.0;
  if (loss_sample > 1.0) loss_sample = 1.0;
  smoothed_ = primed_
                  ? config_.alpha * loss_sample +
                        (1.0 - config_.alpha) * smoothed_
                  : loss_sample;
  primed_ = true;

  Decision d;
  d.smoothed = smoothed_;
  if (ever_acted_ && now - last_action_ < config_.cooldown_us) return d;

  if (!active_) {
    if (smoothed_ >= config_.insert_threshold) {
      const FecRung& r = rung_for(smoothed_);
      active_ = true;
      n_ = r.n;
      k_ = r.k;
      ever_acted_ = true;
      last_action_ = now;
      d.action = Action::kInsert;
      d.n = n_;
      d.k = k_;
    }
    return d;
  }

  if (smoothed_ <= config_.remove_threshold) {
    active_ = false;
    n_ = 0;
    k_ = 0;
    ever_acted_ = true;
    last_action_ = now;
    d.action = Action::kRemove;
    return d;
  }

  const FecRung& r = rung_for(smoothed_);
  if (r.n != n_ || r.k != k_) {
    n_ = r.n;
    k_ = r.k;
    ever_acted_ = true;
    last_action_ = now;
    d.action = Action::kRetune;
    d.n = n_;
    d.k = k_;
  }
  return d;
}

}  // namespace rapidware::raplets
