// FEC decision core: the pure state machine behind closed-loop FEC.
//
// Extracted so that the live-chain controller (fec_controller.h) and the
// 10,000-station fleet simulation (src/sim/fleet.h) run the *same* logic:
// what the scale sweep proves about hysteresis, cooldown, and the (n,k)
// ladder is exactly what the real reconfiguration path executes.
//
// The policy consumes raw per-interval loss samples, smooths them with an
// EWMA, and emits at most one action per update:
//   * loss rises to insert_threshold      -> Insert(n,k) from the ladder
//   * smoothed loss crosses a ladder rung -> Retune(n,k)
//   * loss falls to remove_threshold      -> Remove
// Hysteresis (insert > remove) plus a cooldown between actions keeps the
// controller from flapping on Gilbert-Elliott bursts — the same protections
// FecResponder uses, now with an explicit strength ladder on top.
//
// Not thread-safe by design: one policy instance belongs to one control
// loop (the controller serializes calls under its own lock; the fleet sim
// is single-threaded per station). Determinism matters more than locking
// here — update() is a pure function of (state, now, sample).
#pragma once

#include <cstddef>
#include <vector>

#include "util/clock.h"

namespace rapidware::raplets {

/// One strength step: use FEC(n,k) once smoothed loss reaches min_loss.
struct FecRung {
  double min_loss = 0.0;
  std::size_t n = 6;
  std::size_t k = 4;
};

struct FecPolicyConfig {
  double insert_threshold = 0.01;   // smoothed loss to switch FEC on
  double remove_threshold = 0.002;  // smoothed loss to switch FEC off
  double alpha = 0.3;               // EWMA weight on the newest sample
  util::Micros cooldown_us = 2'000'000;  // min gap between actions
  /// Strength ladder, ascending by min_loss; the first rung's min_loss is
  /// ignored (insert_threshold governs when FEC turns on at all). Defaults
  /// follow the paper: FEC(6,4) at the onset, stronger codes as the station
  /// walks out of range.
  std::vector<FecRung> rungs = {
      {0.00, 6, 4},   // 50% overhead, recovers 2 losses per group
      {0.05, 4, 2},   // 100% overhead
      {0.15, 2, 1},   // full duplication for the edge of association
  };
};

class FecPolicy {
 public:
  enum class Action { kNone, kInsert, kRetune, kRemove };

  struct Decision {
    Action action = Action::kNone;
    std::size_t n = 0;      // target code for kInsert / kRetune
    std::size_t k = 0;
    double smoothed = 0.0;  // the loss estimate that drove the decision
  };

  explicit FecPolicy(FecPolicyConfig config = {});

  /// Feeds one loss sample (fraction of packets lost over the last control
  /// interval, in [0,1]) and returns the action to take. The caller is
  /// expected to actuate it; the policy assumes success.
  Decision update(util::Micros now, double loss_sample);

  bool active() const noexcept { return active_; }
  double smoothed() const noexcept { return smoothed_; }
  std::size_t n() const noexcept { return n_; }
  std::size_t k() const noexcept { return k_; }
  const FecPolicyConfig& config() const noexcept { return config_; }

 private:
  const FecRung& rung_for(double loss) const;

  FecPolicyConfig config_;
  double smoothed_ = 0.0;
  bool primed_ = false;
  bool active_ = false;
  bool ever_acted_ = false;
  util::Micros last_action_ = 0;
  std::size_t n_ = 0;
  std::size_t k_ = 0;
};

}  // namespace rapidware::raplets
