#include "raplets/loss_observer.h"

#include <algorithm>

#include "util/logging.h"

namespace rapidware::raplets {

LossObserver::LossObserver(std::shared_ptr<net::SimSocket> socket,
                           double alpha)
    : socket_(std::move(socket)), alpha_(alpha) {
  if (alpha_ <= 0.0 || alpha_ > 1.0) {
    throw std::invalid_argument("LossObserver: alpha in (0, 1]");
  }
}

LossObserver::~LossObserver() { stop(); }

void LossObserver::set_sink(EventSink sink) {
  rw::MutexLock lk(mu_);
  sink_ = std::move(sink);
}

void LossObserver::start() {
  rw::MutexLock lk(mu_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { service_loop(); });
}

void LossObserver::stop() {
  std::thread reaper;
  {
    rw::MutexLock lk(mu_);
    if (!running_) return;
    running_ = false;
    reaper = std::move(thread_);
  }
  socket_->close();
  if (reaper.joinable()) reaper.join();
}

double LossObserver::loss_for(const std::string& receiver) const {
  rw::MutexLock lk(mu_);
  auto it = smoothed_.find(receiver);
  return it == smoothed_.end() ? 0.0 : it->second;
}

double LossObserver::worst_loss() const {
  rw::MutexLock lk(mu_);
  double worst = 0.0;
  for (const auto& [_, loss] : smoothed_) worst = std::max(worst, loss);
  return worst;
}

std::uint64_t LossObserver::reports_seen() const {
  rw::MutexLock lk(mu_);
  return reports_;
}

void LossObserver::service_loop() {
  for (;;) {
    auto datagram = socket_->recv(-1);
    if (!datagram) break;  // closed
    ReceiverReport report;
    try {
      report = ReceiverReport::parse(datagram->payload);
    } catch (const std::exception& e) {
      RW_WARN("loss-observer") << "bad report: " << e.what();
      continue;
    }

    Event event;
    EventSink sink;
    {
      rw::MutexLock lk(mu_);
      ++reports_;
      // Prefer the raw link-loss measurement when the receiver supplies
      // one; post-recovery loss hides the very condition FEC should react
      // to (see ReceiverReport::raw_loss).
      const double sample =
          report.raw_loss >= 0.0 ? report.raw_loss : report.window_loss;
      auto [it, created] = smoothed_.try_emplace(report.receiver, 0.0);
      it->second =
          created ? sample : alpha_ * sample + (1.0 - alpha_) * it->second;
      event = Event{"loss-rate", report.receiver, it->second,
                    datagram->deliver_at};
      sink = sink_;
    }
    if (sink) sink(event);
  }
}

}  // namespace rapidware::raplets
