// Closed-loop adaptive FEC controller: the polling counterpart of the
// event-driven FecResponder, built for virtual-time operation.
//
// Where FecResponder reacts to pushed "loss-rate" events, this controller
// *polls*: each registered flow pairs a ControlManager (the reconfiguration
// path into a live proxy chain) with a loss probe (typically a delta over
// per-station obs:: STATS — attempted vs dropped counters). tick(now) polls
// every flow once, feeds the sample through the flow's FecPolicy, and
// actuates the resulting decision: insert fec-encode (+ optional
// interleaver, + optional fec-decode on a receiver-side chain), retune n/k
// in place via set_param, or remove everything when the link recovers.
//
// The controller has no thread or clock of its own — whoever owns the
// cadence calls tick(). On virtual time that is one sim::PeriodicTask per
// controller: `PeriodicTask(clock, period, [&](auto now){ ctl.tick(now); })`
// (raplets must not depend on src/sim, so the glue lives with the caller);
// on wall time a plain polling thread works the same way.
//
// Actuation failures (a concurrent operator removed the chain, transport
// died) are counted and traced, never thrown: the control loop must keep
// servicing its other flows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/control.h"
#include "core/flow_classifier.h"
#include "obs/metrics.h"
#include "raplets/fec_policy.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::raplets {

struct AdaptiveFecControllerConfig {
  FecPolicyConfig policy;
  std::size_t encoder_pos = 0;  // chain position for fec-encode
  std::size_t decoder_pos = 0;  // chain position for fec-decode
  /// Interleaver inserted right after the encoder when depth > 0, spreading
  /// each FEC group's packets across `depth` groups to break loss bursts.
  std::size_t interleave_rows = 0;
  std::size_t interleave_depth = 0;
};

class AdaptiveFecController {
 public:
  /// Returns the fraction of packets lost since the previous call, in
  /// [0, 1]. Called once per tick, always from inside tick().
  using LossProbe = std::function<double()>;

  struct FlowConfig {
    std::string name;
    core::ControlManager control;  // encoder-side chain
    std::optional<core::ControlManager> decoder_control;  // receiver side
    LossProbe probe;
  };

  explicit AdaptiveFecController(AdaptiveFecControllerConfig config = {});

  void add_flow(FlowConfig flow);

  /// Forgets the named flow — the expiry half of the per-flow lifecycle
  /// (pair with FlowTable::expire when the flow's chain is torn down). The
  /// chain itself is NOT touched: teardown belongs to whoever owns it.
  /// False if the flow is unknown.
  bool remove_flow(const std::string& name);

  /// Polls every flow once at virtual (or wall) time `now`; applies policy
  /// decisions through the control path. Returns the number of successful
  /// reconfigurations this tick.
  std::size_t tick(util::Micros now);

  bool fec_active(const std::string& flow) const;
  double smoothed_loss(const std::string& flow) const;
  std::size_t flows() const;

  /// The flow's current loss regime — smoothed loss run through
  /// core::regime_for_loss with the policy's insert_threshold as the
  /// "degraded" onset (severe keeps its 15% default), so the regime flips
  /// exactly when this controller would act. This is the bridge from the
  /// controller's channel estimate to a classifier FlowKey: callers build
  /// {station, stream_type, regime(flow)} and let the rule table pick the
  /// chain (docs/flow_classification.md).
  core::LossRegime regime(const std::string& flow) const;

  /// Publishes controller metrics (inserts/retunes/removes/failures
  /// counters, active-flows gauge, action trace ring) under `scope`.
  void bind_metrics(obs::Scope scope);

  /// Builds a LossProbe differentiating two monotonic counters (attempted,
  /// dropped) — the natural probe over wireless::WirelessLan::bind_metrics
  /// or ChannelStats-backed STATS.
  static LossProbe delta_loss_probe(std::function<std::uint64_t()> attempted,
                                    std::function<std::uint64_t()> dropped);

 private:
  struct Flow {
    FlowConfig cfg;
    FecPolicy policy;
    Flow(FlowConfig c, const FecPolicyConfig& p)
        : cfg(std::move(c)), policy(p) {}
  };

  bool apply_locked(Flow& flow, const FecPolicy::Decision& d, util::Micros now)
      RW_REQUIRES(mu_);
  Flow* find_locked(const std::string& name) RW_REQUIRES(mu_);
  const Flow* find_locked(const std::string& name) const RW_REQUIRES(mu_);
  void trace_locked(util::Micros now, const std::string& text)
      RW_REQUIRES(mu_);

  const AdaptiveFecControllerConfig config_;

  mutable rw::Mutex mu_{"raplets/fec_controller", rw::lockrank::kFecController};
  std::vector<std::unique_ptr<Flow>> flows_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> inserts_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> retunes_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> removes_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> failures_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Gauge> active_gauge_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::TraceRing> trace_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::raplets
