// Throughput observer raplet: samples a byte counter (typically a
// StatsFilter tap at a proxy's ingress) on a fixed interval and emits
// "throughput-bps" events — the demand side of the bandwidth-adaptation
// loop (the paper's "disparities among collaborating devices").
//
// Two driving modes share one sampling path:
//   * start() spawns the classic wall-interval polling thread;
//   * poll_once() takes a single sample immediately, for callers that own
//     the cadence — a virtual-time control loop, or a deterministic test
//     that advances a SimClock and polls explicitly (no thread, no sleeps,
//     no flakiness).
// Rates are always computed from the injected Clock, so virtual-time
// callers get exact arithmetic, not scheduling noise.
#pragma once

#include <atomic>
#include <functional>
#include <thread>

#include "raplets/raplet.h"
#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::raplets {

class ThroughputObserver final : public Observer {
 public:
  using ByteCounter = std::function<std::uint64_t()>;

  /// `counter` returns a monotonically increasing byte total; the observer
  /// differentiates it per sample, smooths the rate with an EWMA (`alpha`
  /// weight on the new sample, damping scheduling burstiness), and emits
  /// the smoothed value. `source` labels events. The baseline (counter
  /// value, clock reading) is taken here, at construction.
  ThroughputObserver(std::string source, ByteCounter counter,
                     int interval_ms = 100, util::Clock* clock = nullptr,
                     double alpha = 0.4);
  ~ThroughputObserver() override;

  void set_sink(EventSink sink) override;
  void start() override;
  void stop() override;

  /// Takes one sample at clock->now(): differentiates the counter since the
  /// previous sample, updates the EWMA, and emits one event. A no-op when
  /// the clock has not advanced (virtual time standing still). Thread-safe;
  /// the polling thread uses this same path.
  void poll_once();

  double last_bps() const { return last_bps_.load(); }

 private:
  void poll_loop();

  const std::string source_;
  const ByteCounter counter_;
  const int interval_ms_;
  util::Clock* const clock_;
  const double alpha_;
  util::WallClock wall_;  // rw-lint: allow(RW003) stateless

  mutable rw::Mutex mu_{"raplets/throughput_observer", rw::lockrank::kRapletObserver};
  EventSink sink_ RW_GUARDED_BY(mu_);
  std::uint64_t last_bytes_ RW_GUARDED_BY(mu_) = 0;
  util::Micros last_at_ RW_GUARDED_BY(mu_) = 0;
  double smoothed_ RW_GUARDED_BY(mu_) = 0.0;
  bool primed_ RW_GUARDED_BY(mu_) = false;
  std::atomic<double> last_bps_{0.0};
  std::atomic<bool> running_{false};
  std::thread thread_;  // rw-lint: allow(RW003) start/stop-only, serialized by caller
};

}  // namespace rapidware::raplets
