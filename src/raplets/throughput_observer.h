// Throughput observer raplet: samples a byte counter (typically a
// StatsFilter tap at a proxy's ingress) on a fixed interval and emits
// "throughput-bps" events — the demand side of the bandwidth-adaptation
// loop (the paper's "disparities among collaborating devices").
#pragma once

#include <atomic>
#include <functional>
#include <thread>

#include "raplets/raplet.h"
#include "util/clock.h"

namespace rapidware::raplets {

class ThroughputObserver final : public Observer {
 public:
  using ByteCounter = std::function<std::uint64_t()>;

  /// `counter` returns a monotonically increasing byte total; the observer
  /// differentiates it every `interval_ms` of real time, smooths the rate
  /// with an EWMA (`alpha` weight on the new sample, damping scheduling
  /// burstiness), and emits the smoothed value. `source` labels events.
  ThroughputObserver(std::string source, ByteCounter counter,
                     int interval_ms = 100, util::Clock* clock = nullptr,
                     double alpha = 0.4);
  ~ThroughputObserver() override;

  void set_sink(EventSink sink) override;
  void start() override;
  void stop() override;

  double last_bps() const { return last_bps_.load(); }

 private:
  void poll_loop();

  std::string source_;
  ByteCounter counter_;
  int interval_ms_;
  util::Clock* clock_;
  double alpha_;
  util::WallClock wall_;

  std::mutex mu_;
  EventSink sink_;
  std::atomic<double> last_bps_{0.0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace rapidware::raplets
