#include "raplets/receiver_report.h"

#include "util/serial.h"

namespace rapidware::raplets {

util::Bytes ReceiverReport::serialize() const {
  util::Writer w;
  w.str(receiver);
  w.u64(delivered);
  w.u64(expected);
  w.f64(window_loss);
  w.i64(at_us);
  w.f64(raw_loss);
  return w.take();
}

ReceiverReport ReceiverReport::parse(util::ByteSpan wire) {
  util::Reader r(wire);
  ReceiverReport report;
  report.receiver = r.str();
  report.delivered = r.u64();
  report.expected = r.u64();
  report.window_loss = r.f64();
  report.at_us = r.i64();
  report.raw_loss = r.f64();
  if (report.window_loss < 0.0 || report.window_loss > 1.0 ||
      report.raw_loss > 1.0) {
    throw util::SerialError("ReceiverReport: loss out of range");
  }
  return report;
}

ReportSender::ReportSender(std::string receiver_name,
                           std::shared_ptr<net::SimSocket> socket,
                           net::Address observer,
                           std::size_t interval_packets)
    : name_(std::move(receiver_name)),
      socket_(std::move(socket)),
      observer_(observer),
      interval_(interval_packets) {
  if (interval_ == 0) {
    throw std::invalid_argument("ReportSender: interval must be positive");
  }
}

void ReportSender::on_delivered(std::uint32_t seq, util::Micros now) {
  if (!has_last_) {
    has_last_ = true;
    window_start_seq_ = seq;
    highest_seq_ = seq;
  }
  if (seq > highest_seq_) highest_seq_ = seq;
  ++window_delivered_;
  ++total_delivered_;

  // A window covers `interval_` consecutive sequence numbers, so losses
  // lengthen neither the window nor the reporting period.
  const std::uint64_t window_span = highest_seq_ - window_start_seq_ + 1;
  if (window_span < interval_) return;

  ReceiverReport report;
  report.receiver = name_;
  report.delivered = total_delivered_;
  report.expected = highest_seq_ + 1;
  report.window_loss =
      1.0 - static_cast<double>(window_delivered_) /
                static_cast<double>(window_span);
  if (report.window_loss < 0.0) report.window_loss = 0.0;
  report.at_us = now;
  if (raw_loss_provider_) {
    const double raw = raw_loss_provider_();
    report.raw_loss = raw > 1.0 ? 1.0 : raw;
  }
  socket_->send_to(observer_, report.serialize());
  ++reports_;

  window_start_seq_ = highest_seq_ + 1;
  window_delivered_ = 0;
}

}  // namespace rapidware::raplets
