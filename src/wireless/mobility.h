// Mobility traces: distance-from-AP as a function of time.
//
// The paper's motivating scenario (Section 3): a user keeps a live stream
// while walking from her office near the access point to a conference room
// down the hall — loss rises with distance and the middleware must adapt.
#pragma once

#include <stdexcept>
#include <vector>

#include "util/clock.h"

namespace rapidware::wireless {

/// Piecewise-linear distance trace through (time, distance) waypoints.
class WaypointWalk {
 public:
  struct Waypoint {
    util::Micros at;
    double distance_m;
  };

  /// Waypoints must be time-ordered and non-empty. Before the first
  /// waypoint the first distance holds; after the last, the last holds.
  explicit WaypointWalk(std::vector<Waypoint> waypoints);

  double distance_at(util::Micros t) const;

  util::Micros start_time() const { return waypoints_.front().at; }
  util::Micros end_time() const { return waypoints_.back().at; }

  /// The office -> conference-room walk used across the evaluation: dwell
  /// near the AP, walk out to `far_m` over `walk_s` seconds, dwell there.
  static WaypointWalk office_to_conference(double near_m = 5.0,
                                           double far_m = 35.0,
                                           double dwell_s = 5.0,
                                           double walk_s = 20.0);

 private:
  std::vector<Waypoint> waypoints_;
};

}  // namespace rapidware::wireless
