#include "wireless/path_loss.h"

#include <algorithm>
#include <cmath>

namespace rapidware::wireless {

double PathLossModel::loss_at(double distance_m) const {
  const double d = std::max(0.0, distance_m);
  return std::clamp(p0 * std::exp(d / tau_m), floor, cap);
}

double PathLossModel::distance_for(double loss) const {
  loss = std::clamp(loss, floor, cap);
  return tau_m * std::log(loss / p0);
}

PathLossModel wavelan_model() { return {}; }

}  // namespace rapidware::wireless
