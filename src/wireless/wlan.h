// Wireless LAN simulator: an access point plus mobile stations at given
// distances, reproducing the paper's testbed (Figure 3) — a 2 Mbps WaveLAN
// where per-station loss follows distance and arrives in bursts.
//
// For every station the WLAN installs a Gilbert-Elliott channel on the
// AP -> station downlink (and a cleaner one on the uplink), with the
// average loss given by the path-loss model. Moving a station re-tunes its
// channels in place, so loss characteristics change *while traffic flows*,
// which is exactly the condition the RAPIDware observers react to.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/sim_network.h"
#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "wireless/path_loss.h"

namespace rapidware::wireless {

struct WlanConfig {
  std::int64_t bandwidth_bps = 2'000'000;  // the paper's 2 Mbps WaveLAN
  std::int64_t base_latency_us = 2'000;    // one-hop wireless latency
  std::int64_t jitter_us = 3'000;
  // Gilbert-Elliott burst shape. Calibrated jointly with the path-loss
  // model against Figure 7: with these values FEC(6,4) at 25 m
  // reconstructs 99.99% of packets (paper: 99.98%) from a 98.5% raw
  // receipt rate. Moderate distances show short, mild bursts; raise these
  // to stress burst-sensitivity (see the interleaving ablation bench).
  double mean_burst_len = 1.2;   // bad-state dwell (packets)
  double loss_in_bad = 0.5;      // drop probability inside a burst
  double uplink_loss_factor = 0.5;  // uplink is cleaner (AP has better rx)
  // AP transmit buffer expressed as maximum queueing delay. Generous by
  // default: the harness's producer threads are bursty relative to the
  // virtual clock, and a small buffer would turn scheduling noise into
  // artificial tail drops.
  std::int64_t max_queue_delay_us = 2'000'000;
  PathLossModel path_loss = wavelan_model();
};

class WirelessLan {
 public:
  /// `access_point` must already exist in `net`.
  WirelessLan(net::SimNetwork& net, net::NodeId access_point,
              WlanConfig config = {});

  /// Registers a station at `distance_m` from the AP and installs its
  /// channels. Throws if already added.
  void add_station(net::NodeId station, double distance_m);

  /// Moves a station; loss on its channels is re-tuned immediately.
  void set_distance(net::NodeId station, double distance_m);

  double distance(net::NodeId station) const;

  /// Model-predicted downlink loss probability for a station.
  double downlink_loss(net::NodeId station) const;

  /// Delivery statistics of the AP -> station channel.
  net::ChannelStats downlink_stats(net::NodeId station);

  net::NodeId access_point() const noexcept { return ap_; }
  const WlanConfig& config() const noexcept { return config_; }

  /// Publishes per-station wireless metrics under "<prefix>/<station>/..."
  /// (distance_m, model_loss, delivered, dropped_loss = injected loss,
  /// dropped_queue = buffer/outage drops) plus a "<prefix>/events" trace
  /// ring of add_station/set_distance moves. Stations added while bound are
  /// attached automatically; unbind_metrics (or destruction) drops it all.
  void bind_metrics(obs::Registry& reg, const std::string& prefix);

  /// Drops everything bind_metrics registered (idempotent).
  void unbind_metrics();

  ~WirelessLan();

 private:
  void attach_station(net::NodeId station, const obs::Scope& scope);

  net::SimNetwork& net_;
  const net::NodeId ap_;
  const WlanConfig config_;  // read-only after construction: lock-free reads

  mutable rw::Mutex mu_{"wireless/wlan", rw::lockrank::kWlan};
  std::map<net::NodeId, double> distance_m_ RW_GUARDED_BY(mu_);
  std::optional<obs::Scope> scope_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::TraceRing> m_events_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::wireless
