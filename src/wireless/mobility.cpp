#include "wireless/mobility.h"

namespace rapidware::wireless {

WaypointWalk::WaypointWalk(std::vector<Waypoint> waypoints)
    : waypoints_(std::move(waypoints)) {
  if (waypoints_.empty()) {
    throw std::invalid_argument("WaypointWalk: need at least one waypoint");
  }
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    if (waypoints_[i].at < waypoints_[i - 1].at) {
      throw std::invalid_argument("WaypointWalk: waypoints not time-ordered");
    }
  }
}

double WaypointWalk::distance_at(util::Micros t) const {
  if (t <= waypoints_.front().at) return waypoints_.front().distance_m;
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const auto& a = waypoints_[i - 1];
    const auto& b = waypoints_[i];
    if (t <= b.at) {
      if (b.at == a.at) return b.distance_m;
      const double f = static_cast<double>(t - a.at) /
                       static_cast<double>(b.at - a.at);
      return a.distance_m + f * (b.distance_m - a.distance_m);
    }
  }
  return waypoints_.back().distance_m;
}

WaypointWalk WaypointWalk::office_to_conference(double near_m, double far_m,
                                                double dwell_s, double walk_s) {
  using util::seconds_to_micros;
  return WaypointWalk({
      {0, near_m},
      {seconds_to_micros(dwell_s), near_m},
      {seconds_to_micros(dwell_s + walk_s), far_m},
      {seconds_to_micros(dwell_s + walk_s + dwell_s), far_m},
  });
}

}  // namespace rapidware::wireless
