// Distance -> packet-error-rate model for the simulated 2 Mbps WaveLAN.
//
// The paper's testbed measured ~98.54 % raw receipt at 25 m from the access
// point and reports that "packet loss rate can change dramatically over a
// distance of several meters" [16]. We model the packet loss probability as
// an exponential in distance, calibrated to hit the paper's 25 m point and
// to grow steeply beyond ~30 m:
//
//     p(d) = clamp(p0 * exp(d / tau), floor, cap)
//
// with p0 = 5e-4, tau = 7.4 m  =>  p(25 m) ~= 1.47 % (paper: 1.46 %),
// p(5) ~= 0.1 %, p(30) ~= 2.9 %, p(35) ~= 5.7 %, p(40) ~= 11 %.
#pragma once

namespace rapidware::wireless {

struct PathLossModel {
  double p0 = 5e-4;      // loss probability extrapolated to distance 0
  double tau_m = 7.4;    // e-folding distance in meters
  double floor = 1e-4;   // indoor links are never perfectly clean
  double cap = 0.95;     // association breaks before 100% loss

  /// Packet loss probability at `distance_m` meters from the access point.
  double loss_at(double distance_m) const;

  /// Inverse: the distance at which the model predicts loss probability p.
  double distance_for(double loss) const;
};

/// The calibrated default used throughout the evaluation.
PathLossModel wavelan_model();

}  // namespace rapidware::wireless
