#include "wireless/wlan.h"

#include <stdexcept>

namespace rapidware::wireless {

WirelessLan::WirelessLan(net::SimNetwork& net, net::NodeId access_point,
                         WlanConfig config)
    : net_(net), ap_(access_point), config_(config) {}

void WirelessLan::add_station(net::NodeId station, double distance_m) {
  {
    std::lock_guard lk(mu_);
    if (!distance_m_.try_emplace(station, distance_m).second) {
      throw std::invalid_argument("WirelessLan::add_station: already added");
    }
  }
  const double loss = config_.path_loss.loss_at(distance_m);

  net::ChannelConfig down;
  down.loss = net::GilbertElliottLoss::with_average(loss, config_.mean_burst_len,
                                                    config_.loss_in_bad);
  down.latency_us = config_.base_latency_us;
  down.jitter_us = config_.jitter_us;
  down.bandwidth_bps = config_.bandwidth_bps;
  down.max_queue_delay_us = config_.max_queue_delay_us;
  net_.set_channel(ap_, station, std::move(down));

  net::ChannelConfig up;
  up.loss = net::GilbertElliottLoss::with_average(
      loss * config_.uplink_loss_factor, config_.mean_burst_len,
      config_.loss_in_bad);
  up.latency_us = config_.base_latency_us;
  up.jitter_us = config_.jitter_us;
  up.bandwidth_bps = config_.bandwidth_bps;
  up.max_queue_delay_us = config_.max_queue_delay_us;
  net_.set_channel(station, ap_, std::move(up));
}

void WirelessLan::set_distance(net::NodeId station, double distance_m) {
  {
    std::lock_guard lk(mu_);
    auto it = distance_m_.find(station);
    if (it == distance_m_.end()) {
      throw std::invalid_argument("WirelessLan::set_distance: unknown station");
    }
    it->second = distance_m;
  }
  const double loss = config_.path_loss.loss_at(distance_m);
  if (auto* ch = net_.channel(ap_, station)) ch->set_average_loss(loss);
  if (auto* ch = net_.channel(station, ap_)) {
    ch->set_average_loss(loss * config_.uplink_loss_factor);
  }
}

double WirelessLan::distance(net::NodeId station) const {
  std::lock_guard lk(mu_);
  auto it = distance_m_.find(station);
  if (it == distance_m_.end()) {
    throw std::invalid_argument("WirelessLan::distance: unknown station");
  }
  return it->second;
}

double WirelessLan::downlink_loss(net::NodeId station) const {
  return config_.path_loss.loss_at(distance(station));
}

net::ChannelStats WirelessLan::downlink_stats(net::NodeId station) {
  auto* ch = net_.channel(ap_, station);
  if (ch == nullptr) {
    throw std::invalid_argument("WirelessLan::downlink_stats: unknown station");
  }
  return ch->stats();
}

}  // namespace rapidware::wireless
