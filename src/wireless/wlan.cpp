#include "wireless/wlan.h"

#include <stdexcept>
#include <vector>

namespace rapidware::wireless {

namespace {
constexpr std::size_t kEventTraceCapacity = 64;
}

WirelessLan::WirelessLan(net::SimNetwork& net, net::NodeId access_point,
                         WlanConfig config)
    : net_(net), ap_(access_point), config_(config) {}

WirelessLan::~WirelessLan() {
  try {
    unbind_metrics();
  } catch (...) {
    // Best-effort teardown only.
  }
}

void WirelessLan::add_station(net::NodeId station, double distance_m) {
  {
    rw::MutexLock lk(mu_);
    if (!distance_m_.try_emplace(station, distance_m).second) {
      throw std::invalid_argument("WirelessLan::add_station: already added");
    }
  }
  const double loss = config_.path_loss.loss_at(distance_m);

  net::ChannelConfig down;
  down.loss = net::GilbertElliottLoss::with_average(loss, config_.mean_burst_len,
                                                    config_.loss_in_bad);
  down.latency_us = config_.base_latency_us;
  down.jitter_us = config_.jitter_us;
  down.bandwidth_bps = config_.bandwidth_bps;
  down.max_queue_delay_us = config_.max_queue_delay_us;
  net_.set_channel(ap_, station, std::move(down));

  net::ChannelConfig up;
  up.loss = net::GilbertElliottLoss::with_average(
      loss * config_.uplink_loss_factor, config_.mean_burst_len,
      config_.loss_in_bad);
  up.latency_us = config_.base_latency_us;
  up.jitter_us = config_.jitter_us;
  up.bandwidth_bps = config_.bandwidth_bps;
  up.max_queue_delay_us = config_.max_queue_delay_us;
  net_.set_channel(station, ap_, std::move(up));

  std::optional<obs::Scope> scope;
  std::shared_ptr<obs::TraceRing> events;
  {
    rw::MutexLock lk(mu_);
    scope = scope_;
    events = m_events_;
  }
  if (scope) attach_station(station, *scope);
  if (events) {
    events->record("add_station " + net_.node_name(station) + " @" +
                   obs::format_value(distance_m) + "m");
  }
}

void WirelessLan::set_distance(net::NodeId station, double distance_m) {
  {
    rw::MutexLock lk(mu_);
    auto it = distance_m_.find(station);
    if (it == distance_m_.end()) {
      throw std::invalid_argument("WirelessLan::set_distance: unknown station");
    }
    it->second = distance_m;
  }
  const double loss = config_.path_loss.loss_at(distance_m);
  if (auto* ch = net_.channel(ap_, station)) ch->set_average_loss(loss);
  if (auto* ch = net_.channel(station, ap_)) {
    ch->set_average_loss(loss * config_.uplink_loss_factor);
  }
  std::shared_ptr<obs::TraceRing> events;
  {
    rw::MutexLock lk(mu_);
    events = m_events_;
  }
  if (events) {
    events->record("set_distance " + net_.node_name(station) + " -> " +
                   obs::format_value(distance_m) + "m");
  }
}

double WirelessLan::distance(net::NodeId station) const {
  rw::MutexLock lk(mu_);
  auto it = distance_m_.find(station);
  if (it == distance_m_.end()) {
    throw std::invalid_argument("WirelessLan::distance: unknown station");
  }
  return it->second;
}

double WirelessLan::downlink_loss(net::NodeId station) const {
  return config_.path_loss.loss_at(distance(station));
}

net::ChannelStats WirelessLan::downlink_stats(net::NodeId station) {
  auto* ch = net_.channel(ap_, station);
  if (ch == nullptr) {
    throw std::invalid_argument("WirelessLan::downlink_stats: unknown station");
  }
  return ch->stats();
}

void WirelessLan::bind_metrics(obs::Registry& reg, const std::string& prefix) {
  // Registry calls stay outside mu_: snapshot callbacks acquire mu_ under
  // the registry lock, so registering while holding mu_ would invert that
  // lock order.
  unbind_metrics();
  obs::Scope scope(reg, prefix);
  auto events = scope.trace("events", kEventTraceCapacity);
  std::vector<net::NodeId> stations;
  {
    rw::MutexLock lk(mu_);
    scope_ = scope;
    m_events_ = events;
    for (const auto& [id, dist] : distance_m_) stations.push_back(id);
  }
  for (const net::NodeId station : stations) attach_station(station, scope);
}

void WirelessLan::unbind_metrics() {
  std::optional<obs::Scope> old;
  {
    rw::MutexLock lk(mu_);
    old.swap(scope_);
    m_events_.reset();
  }
  if (old) old->drop();
}

void WirelessLan::attach_station(net::NodeId station, const obs::Scope& scope) {
  // Stations are never removed, so `this`-capturing callbacks stay valid
  // until unbind_metrics() drops them (the destructor guarantees it).
  const obs::Scope s = scope.child(net_.node_name(station));
  s.callback("distance_m", [this, station] { return distance(station); });
  s.callback("model_loss", [this, station] { return downlink_loss(station); });
  s.callback("delivered", [this, station] {
    auto* ch = net_.channel(ap_, station);
    return ch ? static_cast<double>(ch->stats().delivered()) : 0.0;
  });
  s.callback("dropped_loss", [this, station] {
    auto* ch = net_.channel(ap_, station);
    return ch ? static_cast<double>(ch->stats().dropped_loss) : 0.0;
  });
  s.callback("dropped_queue", [this, station] {
    auto* ch = net_.channel(ap_, station);
    return ch ? static_cast<double>(ch->stats().dropped_queue) : 0.0;
  });
}

}  // namespace rapidware::wireless
