#include "media/video.h"

#include <stdexcept>

namespace rapidware::media {

VideoStreamSource::VideoStreamSource(VideoFormat format, std::uint64_t seed)
    : format_(std::move(format)), rng_(seed) {
  if (format_.gop_pattern.empty() || format_.fps <= 0) {
    throw std::invalid_argument("VideoStreamSource: bad format");
  }
  for (char c : format_.gop_pattern) {
    if (c != 'I' && c != 'P' && c != 'B') {
      throw std::invalid_argument("VideoStreamSource: GOP pattern uses I/P/B");
    }
  }
}

MediaPacket VideoStreamSource::next_frame() {
  const char kind = format_.gop_pattern[gop_pos_];
  gop_pos_ = (gop_pos_ + 1) % format_.gop_pattern.size();

  std::size_t nominal = 0;
  fec::FrameClass cls = fec::FrameClass::kOther;
  switch (kind) {
    case 'I':
      nominal = format_.i_frame_bytes;
      cls = fec::FrameClass::kKey;
      break;
    case 'P':
      nominal = format_.p_frame_bytes;
      cls = fec::FrameClass::kPredicted;
      break;
    case 'B':
      nominal = format_.b_frame_bytes;
      cls = fec::FrameClass::kBidirectional;
      break;
    default:
      break;
  }
  const double jitter =
      1.0 + format_.size_jitter * (rng_.next_double() * 2.0 - 1.0);
  const auto size = static_cast<std::size_t>(
      std::max(16.0, static_cast<double>(nominal) * jitter));

  MediaPacket p;
  p.seq = next_seq_++;
  p.timestamp_us = static_cast<std::int64_t>(p.seq) * frame_duration_us();
  p.frame_class = cls;
  p.payload.resize(size);
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng_.next_u64());
  return p;
}

}  // namespace rapidware::media
