// Audio transcoding primitives for the proxy's transcoder filters: the
// paper's proxies "transcode the stream to a lower bandwidth format" before
// the wireless hop (Section 3).
#pragma once

#include <cstdint>

#include "media/audio.h"
#include "util/bytes.h"

namespace rapidware::media {

/// Mixes interleaved multichannel PCM down to mono (per-sample average).
/// Works for 8-bit unsigned and 16-bit signed formats.
util::Bytes to_mono(util::ByteSpan pcm, const AudioFormat& format);

/// Halves the sample rate by averaging adjacent sample frames (a crude
/// low-pass + decimate). Channel count is preserved.
util::Bytes downsample_half(util::ByteSpan pcm, const AudioFormat& format);

/// ITU-T G.711 mu-law companding: 16-bit signed linear <-> 8-bit mu-law.
std::uint8_t mulaw_encode_sample(std::int16_t linear);
std::int16_t mulaw_decode_sample(std::uint8_t mulaw);

/// Encodes 16-bit signed little-endian PCM to mu-law bytes (2:1 smaller).
util::Bytes mulaw_encode(util::ByteSpan pcm16);

/// Decodes mu-law bytes back to 16-bit signed little-endian PCM.
util::Bytes mulaw_decode(util::ByteSpan mulaw);

}  // namespace rapidware::media
