#include "media/audio.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rapidware::media {

AudioSource::AudioSource(AudioFormat format, std::uint64_t seed)
    : format_(format), rng_(seed) {
  if (format_.bits_per_sample != 8 && format_.bits_per_sample != 16) {
    throw std::invalid_argument("AudioSource: 8 or 16 bits per sample");
  }
  if (format_.channels == 0 || format_.sample_rate == 0) {
    throw std::invalid_argument("AudioSource: bad format");
  }
}

util::Bytes AudioSource::read_frames(std::size_t frames) {
  util::Bytes out;
  out.reserve(frames * format_.bytes_per_frame());
  const double dt = 1.0 / format_.sample_rate;
  for (std::size_t f = 0; f < frames; ++f) {
    // Voice-ish: ~180 Hz fundamental with vibrato, a harmonic, and noise,
    // gated by speech-like pauses (every fourth third-of-a-second silent).
    const double t = static_cast<double>(frame_index_++) * dt;
    const bool voiced = (frame_index_ * 3 / format_.sample_rate) % 4 != 3;
    const double vibrato = 1.0 + 0.02 * std::sin(2 * std::numbers::pi * 5.0 * t);
    phase1_ += 2 * std::numbers::pi * 180.0 * vibrato * dt;
    phase2_ += 2 * std::numbers::pi * 540.0 * dt;
    const double base =
        0.55 * std::sin(phase1_) + 0.25 * std::sin(phase2_);
    if (!voiced) {
      // Exact digital silence: mid-scale for unsigned 8-bit, zero for 16.
      for (std::uint16_t c = 0; c < format_.channels; ++c) {
        if (format_.bits_per_sample == 8) {
          out.push_back(127);
        } else {
          out.push_back(0);
          out.push_back(0);
        }
      }
      continue;
    }
    for (std::uint16_t c = 0; c < format_.channels; ++c) {
      // Slight inter-channel decorrelation plus dither noise.
      const double s = base * (c == 0 ? 1.0 : 0.9) +
                       0.05 * (rng_.next_double() * 2.0 - 1.0);
      if (format_.bits_per_sample == 8) {
        const double clamped = std::clamp(s, -1.0, 1.0);
        out.push_back(static_cast<std::uint8_t>(
            std::lround((clamped + 1.0) * 127.5)));
      } else {
        const double clamped = std::clamp(s, -1.0, 1.0);
        const auto v = static_cast<std::int16_t>(std::lround(clamped * 32767));
        out.push_back(static_cast<std::uint8_t>(v & 0xff));
        out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      }
    }
  }
  return out;
}

std::int64_t AudioSource::media_time_us() const {
  return static_cast<std::int64_t>(frame_index_ * 1'000'000ULL /
                                   format_.sample_rate);
}

AudioPacketizer::AudioPacketizer(AudioSource& source, std::size_t packet_ms)
    : source_(source),
      packet_ms_(packet_ms),
      frames_per_packet_(source.format().sample_rate * packet_ms / 1000) {
  if (frames_per_packet_ == 0) {
    throw std::invalid_argument("AudioPacketizer: packet too short");
  }
}

MediaPacket AudioPacketizer::next_packet() {
  MediaPacket p;
  p.seq = next_seq_++;
  p.timestamp_us = source_.media_time_us();
  p.frame_class = fec::FrameClass::kAudio;
  p.payload = source_.read_frames(frames_per_packet_);
  return p;
}

std::int64_t AudioPacketizer::packet_duration_us() const {
  return static_cast<std::int64_t>(packet_ms_) * 1000;
}

}  // namespace rapidware::media
