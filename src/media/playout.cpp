#include "media/playout.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rapidware::media {

PlayoutBuffer::PlayoutBuffer(util::Micros packet_duration_us,
                             util::Micros playout_delay_us)
    : packet_duration_us_(packet_duration_us),
      playout_delay_us_(playout_delay_us) {
  if (packet_duration_us_ <= 0) {
    throw std::invalid_argument("PlayoutBuffer: packet duration must be > 0");
  }
  if (playout_delay_us_ < 0) {
    throw std::invalid_argument("PlayoutBuffer: negative playout delay");
  }
}

void PlayoutBuffer::on_available(std::uint32_t seq, util::Micros at) {
  if (!anchored_) {
    // Anchor playout to the stream start implied by the first arrival:
    // that packet plays `playout_delay` after it arrived.
    anchored_ = true;
    t0_ = at - static_cast<util::Micros>(seq) * packet_duration_us_;
  }
  auto [it, inserted] = available_at_.try_emplace(seq, at);
  if (!inserted) it->second = std::min(it->second, at);
}

util::Micros PlayoutBuffer::deadline(std::uint32_t seq) const {
  return t0_ + playout_delay_us_ +
         static_cast<util::Micros>(seq) * packet_duration_us_;
}

PlayoutBuffer::Report PlayoutBuffer::report(std::uint32_t through) const {
  Report out;
  std::vector<util::Micros> lateness;  // of available packets
  for (std::uint32_t seq = 0; seq <= through; ++seq) {
    auto it = available_at_.find(seq);
    if (it == available_at_.end()) {
      ++out.missing;
      continue;
    }
    const util::Micros slack = deadline(seq) - it->second;
    lateness.push_back(-slack);
    if (slack >= 0) {
      ++out.on_time;
    } else {
      ++out.late;
    }
  }
  const std::uint64_t total = out.on_time + out.late + out.missing;
  out.on_time_rate =
      total ? static_cast<double>(out.on_time) / static_cast<double>(total)
            : 0.0;
  if (!lateness.empty()) {
    std::sort(lateness.begin(), lateness.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(lateness.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    out.p99_extra_delay_us = std::max<util::Micros>(0, lateness[idx]);
  }
  return out;
}

}  // namespace rapidware::media
