// Receiver-side playout buffer for isochronous media.
//
// Audio is played on a fixed schedule: packet seq must be in hand by
//     deadline(seq) = t0 + playout_delay + seq * packet_duration
// where t0 anchors to the first arrival. A packet that misses its deadline
// is a dropout regardless of eventual delivery — which is why FEC group
// size matters beyond bandwidth: a lost packet is only recovered when its
// group completes, k-1 packets later. The paper keeps groups small "so as
// to minimize jitter"; this buffer turns that argument into a measurable
// deadline-miss rate (see bench_playout_jitter).
#pragma once

#include <cstdint>
#include <map>

#include "util/clock.h"
#include "util/stats.h"

namespace rapidware::media {

class PlayoutBuffer {
 public:
  /// `packet_duration_us`: media time per packet (20 ms audio);
  /// `playout_delay_us`: buffering between first arrival and first playout.
  PlayoutBuffer(util::Micros packet_duration_us,
                util::Micros playout_delay_us);

  /// Records that packet `seq` became available at `at` (arrival or FEC
  /// recovery time). Duplicates keep the earliest availability.
  void on_available(std::uint32_t seq, util::Micros at);

  /// Deadline for a sequence number (anchored to the first arrival).
  util::Micros deadline(std::uint32_t seq) const;

  /// Playout accounting over sequence numbers [0, through]: a packet is ON
  /// TIME if it was available at or before its deadline.
  struct Report {
    std::uint64_t on_time = 0;
    std::uint64_t late = 0;     // available after the deadline
    std::uint64_t missing = 0;  // never available
    double on_time_rate = 0.0;
    /// How much later the playout delay would have needed to be for 99 %
    /// of available packets to make their deadline.
    util::Micros p99_extra_delay_us = 0;
  };
  Report report(std::uint32_t through) const;

  bool anchored() const noexcept { return anchored_; }

 private:
  util::Micros packet_duration_us_;
  util::Micros playout_delay_us_;
  bool anchored_ = false;
  util::Micros t0_ = 0;
  std::map<std::uint32_t, util::Micros> available_at_;
};

}  // namespace rapidware::media
