// Synthetic PCM audio in the paper's recording format: 8000 samples per
// second, two 8-bit channels (Section 5). The generator synthesizes a
// deterministic voice-like signal (fundamental + harmonics + noise) so the
// FEC pipeline carries realistic, non-constant payloads.
#pragma once

#include <cstdint>

#include "media/media_packet.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace rapidware::media {

struct AudioFormat {
  std::uint32_t sample_rate = 8000;
  std::uint16_t channels = 2;
  std::uint16_t bits_per_sample = 8;  // unsigned 8-bit PCM, or signed 16-bit

  std::size_t bytes_per_frame() const {
    return static_cast<std::size_t>(channels) * (bits_per_sample / 8);
  }
  std::size_t bytes_per_second() const {
    return sample_rate * bytes_per_frame();
  }

  bool operator==(const AudioFormat&) const = default;
};

/// The paper's capture format: 8 kHz, stereo, 8-bit.
inline AudioFormat paper_audio_format() { return {}; }

/// Deterministic PCM generator.
class AudioSource {
 public:
  explicit AudioSource(AudioFormat format = paper_audio_format(),
                       std::uint64_t seed = 7);

  const AudioFormat& format() const noexcept { return format_; }

  /// Produces `frames` sample frames of PCM (interleaved channels).
  util::Bytes read_frames(std::size_t frames);

  /// Total media time generated so far, in microseconds.
  std::int64_t media_time_us() const;

 private:
  AudioFormat format_;
  util::Rng rng_;
  std::uint64_t frame_index_ = 0;
  double phase1_ = 0.0, phase2_ = 0.0;
};

/// Chops an AudioSource into MediaPackets of `packet_ms` milliseconds — the
/// unit the FEC proxy groups and the receiver counts (Figure 7's x-axis is
/// this sequence number).
class AudioPacketizer {
 public:
  AudioPacketizer(AudioSource& source, std::size_t packet_ms = 20);

  MediaPacket next_packet();

  std::size_t frames_per_packet() const noexcept { return frames_per_packet_; }
  std::size_t payload_bytes() const {
    return frames_per_packet_ * source_.format().bytes_per_frame();
  }
  /// Media duration of one packet, in microseconds.
  std::int64_t packet_duration_us() const;

 private:
  AudioSource& source_;
  std::size_t packet_ms_;
  std::size_t frames_per_packet_;
  std::uint32_t next_seq_ = 0;
};

}  // namespace rapidware::media
