#include "media/media_packet.h"

namespace rapidware::media {

util::Bytes MediaPacket::serialize() const {
  util::Writer w(kHeaderSize + payload.size());
  w.u32(seq);
  w.i64(timestamp_us);
  w.u8(static_cast<std::uint8_t>(frame_class));
  w.raw(payload);
  return w.take();
}

MediaPacket MediaPacket::parse(util::ByteSpan wire) {
  util::Reader r(wire);
  MediaPacket p;
  p.seq = r.u32();
  p.timestamp_us = r.i64();
  const std::uint8_t cls = r.u8();
  if (cls > static_cast<std::uint8_t>(fec::FrameClass::kOther)) {
    throw util::SerialError("MediaPacket: unknown frame class");
  }
  p.frame_class = static_cast<fec::FrameClass>(cls);
  p.payload = r.raw(r.remaining());
  return p;
}

}  // namespace rapidware::media
