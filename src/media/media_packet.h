// Media packet format flowing through proxies: an RTP-like header (sequence
// number, media timestamp, frame class) plus an opaque payload. The
// sequence number is what Figure 7 plots receipt rates against; the frame
// class is what the UEP FEC filter keys protection on.
#pragma once

#include <cstdint>

#include "fec/uep.h"
#include "util/bytes.h"
#include "util/serial.h"

namespace rapidware::media {

struct MediaPacket {
  std::uint32_t seq = 0;
  std::int64_t timestamp_us = 0;  // media time of the first sample/frame
  fec::FrameClass frame_class = fec::FrameClass::kAudio;
  util::Bytes payload;

  static constexpr std::size_t kHeaderSize = 4 + 8 + 1;

  util::Bytes serialize() const;
  static MediaPacket parse(util::ByteSpan wire);

  bool operator==(const MediaPacket&) const = default;
};

}  // namespace rapidware::media
