// Minimal RIFF/WAVE PCM encoding — the paper records audio "in Windows
// PCM-based waveform audio file format (.WAV)". Enough of the format to
// round-trip the capture format and feed file-based examples.
#pragma once

#include "media/audio.h"
#include "util/bytes.h"

namespace rapidware::media {

struct WavFile {
  AudioFormat format;
  util::Bytes pcm;

  bool operator==(const WavFile&) const = default;
};

/// Serializes PCM to a canonical 44-byte-header WAV file.
util::Bytes wav_encode(const WavFile& wav);

/// Parses a PCM WAV file; throws util::SerialError on malformed input or
/// non-PCM encodings.
WavFile wav_decode(util::ByteSpan bytes);

}  // namespace rapidware::media
