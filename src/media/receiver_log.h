// Receiver-side accounting: turns a stream of delivered MediaPackets into
// exactly the quantities the paper's Figure 7 plots — per-bin and overall
// delivery percentages over packet sequence numbers — plus jitter stats.
#pragma once

#include <cstdint>
#include <vector>

#include "media/media_packet.h"
#include "util/clock.h"
#include "util/stats.h"

namespace rapidware::media {

class ReceiverLog {
 public:
  /// `bin_size`: sequence numbers per report bin. Figure 7 bins its ~5400
  /// packet trace into 432-packet windows.
  explicit ReceiverLog(std::size_t bin_size = 432);

  /// Records a delivered packet. `deliver_at` is the modeled arrival time.
  void on_packet(const MediaPacket& packet, util::Micros deliver_at);

  /// Number of distinct sequence numbers delivered.
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t duplicates() const noexcept { return duplicates_; }
  std::uint64_t out_of_order() const noexcept { return out_of_order_; }

  /// Highest sequence number seen + 1 (== packets the sender must have
  /// emitted, assuming it started at 0).
  std::uint64_t expected() const noexcept {
    return seen_.empty() ? 0 : seen_.size();
  }

  /// Overall delivery fraction: delivered / expected.
  double delivery_rate() const;

  struct Bin {
    std::uint32_t first_seq;
    std::size_t expected;
    std::size_t delivered;
    double rate;
  };

  /// Per-bin delivery rates over the whole sequence range (Figure 7's
  /// series). The final partial bin is included.
  std::vector<Bin> bins() const;

  /// RFC 3550-style smoothed interarrival jitter, microseconds.
  double smoothed_jitter_us() const noexcept { return jitter_us_; }

  /// Raw |interarrival deviation| statistics.
  const util::RunningStats& jitter_stats() const noexcept {
    return jitter_stats_;
  }

 private:
  std::size_t bin_size_;
  std::vector<bool> seen_;  // index = seq
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t out_of_order_ = 0;
  bool has_last_ = false;
  std::uint32_t last_seq_ = 0;
  util::Micros last_arrival_ = 0;
  std::int64_t last_media_ts_ = 0;
  double jitter_us_ = 0.0;
  util::RunningStats jitter_stats_;
};

}  // namespace rapidware::media
