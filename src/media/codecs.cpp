#include "media/codecs.h"

#include <stdexcept>

namespace rapidware::media {
namespace {

std::int32_t read_sample(util::ByteSpan pcm, std::size_t index,
                         const AudioFormat& f) {
  if (f.bits_per_sample == 8) return pcm[index];
  const std::size_t o = index * 2;
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(pcm[o]) |
                                   static_cast<std::uint16_t>(pcm[o + 1]) << 8);
}

void write_sample(util::Bytes& out, std::int32_t v, const AudioFormat& f) {
  if (f.bits_per_sample == 8) {
    out.push_back(static_cast<std::uint8_t>(v));
  } else {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  }
}

void check_alignment(util::ByteSpan pcm, const AudioFormat& f) {
  if (f.bytes_per_frame() == 0 || pcm.size() % f.bytes_per_frame() != 0) {
    throw std::invalid_argument("codec: PCM not aligned to sample frames");
  }
}

}  // namespace

util::Bytes to_mono(util::ByteSpan pcm, const AudioFormat& format) {
  check_alignment(pcm, format);
  const std::size_t frames = pcm.size() / format.bytes_per_frame();
  util::Bytes out;
  out.reserve(frames * (format.bits_per_sample / 8));
  for (std::size_t fr = 0; fr < frames; ++fr) {
    std::int64_t acc = 0;
    for (std::uint16_t c = 0; c < format.channels; ++c) {
      acc += read_sample(pcm, fr * format.channels + c, format);
    }
    write_sample(out, static_cast<std::int32_t>(acc / format.channels), format);
  }
  return out;
}

util::Bytes downsample_half(util::ByteSpan pcm, const AudioFormat& format) {
  check_alignment(pcm, format);
  const std::size_t frames = pcm.size() / format.bytes_per_frame();
  util::Bytes out;
  out.reserve(pcm.size() / 2);
  for (std::size_t fr = 0; fr + 1 < frames; fr += 2) {
    for (std::uint16_t c = 0; c < format.channels; ++c) {
      const std::int32_t a = read_sample(pcm, fr * format.channels + c, format);
      const std::int32_t b =
          read_sample(pcm, (fr + 1) * format.channels + c, format);
      write_sample(out, (a + b) / 2, format);
    }
  }
  return out;
}

std::uint8_t mulaw_encode_sample(std::int16_t linear) {
  constexpr std::int16_t kBias = 0x84;
  constexpr std::int16_t kClip = 32635;
  const std::uint8_t sign = linear < 0 ? 0x80 : 0;
  std::int32_t magnitude = linear < 0 ? -static_cast<std::int32_t>(linear)
                                      : linear;
  if (magnitude > kClip) magnitude = kClip;
  magnitude += kBias;
  // Find the segment (position of the highest set bit above bit 5).
  int segment = 7;
  for (std::int32_t mask = 0x4000; segment > 0 && !(magnitude & mask);
       mask >>= 1) {
    --segment;
  }
  const auto mantissa =
      static_cast<std::uint8_t>((magnitude >> (segment + 3)) & 0x0f);
  return static_cast<std::uint8_t>(
      ~(sign | static_cast<std::uint8_t>(segment << 4) | mantissa));
}

std::int16_t mulaw_decode_sample(std::uint8_t mulaw) {
  constexpr std::int16_t kBias = 0x84;
  mulaw = static_cast<std::uint8_t>(~mulaw);
  const int segment = (mulaw >> 4) & 0x07;
  const int mantissa = mulaw & 0x0f;
  std::int32_t magnitude = ((mantissa << 3) + kBias) << segment;
  magnitude -= kBias;
  return static_cast<std::int16_t>((mulaw & 0x80) ? -magnitude : magnitude);
}

util::Bytes mulaw_encode(util::ByteSpan pcm16) {
  if (pcm16.size() % 2 != 0) {
    throw std::invalid_argument("mulaw_encode: odd PCM16 byte count");
  }
  util::Bytes out;
  out.reserve(pcm16.size() / 2);
  for (std::size_t i = 0; i < pcm16.size(); i += 2) {
    const auto s = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(pcm16[i]) |
        static_cast<std::uint16_t>(pcm16[i + 1]) << 8);
    out.push_back(mulaw_encode_sample(s));
  }
  return out;
}

util::Bytes mulaw_decode(util::ByteSpan mulaw) {
  util::Bytes out;
  out.reserve(mulaw.size() * 2);
  for (const std::uint8_t b : mulaw) {
    const std::int16_t s = mulaw_decode_sample(b);
    out.push_back(static_cast<std::uint8_t>(s & 0xff));
    out.push_back(static_cast<std::uint8_t>((s >> 8) & 0xff));
  }
  return out;
}

}  // namespace rapidware::media
