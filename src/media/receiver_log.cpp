#include "media/receiver_log.h"

#include <cmath>
#include <stdexcept>

namespace rapidware::media {

ReceiverLog::ReceiverLog(std::size_t bin_size) : bin_size_(bin_size) {
  if (bin_size_ == 0) throw std::invalid_argument("ReceiverLog: bin_size 0");
}

void ReceiverLog::on_packet(const MediaPacket& packet,
                            util::Micros deliver_at) {
  if (packet.seq >= seen_.size()) seen_.resize(packet.seq + 1, false);
  if (seen_[packet.seq]) {
    ++duplicates_;
    return;
  }
  seen_[packet.seq] = true;
  ++delivered_;

  if (has_last_) {
    if (packet.seq < last_seq_) ++out_of_order_;
    // RFC 3550 interarrival jitter: deviation between arrival spacing and
    // media-timestamp spacing, smoothed with gain 1/16.
    const double d =
        static_cast<double>(deliver_at - last_arrival_) -
        static_cast<double>(packet.timestamp_us - last_media_ts_);
    jitter_stats_.add(std::abs(d));
    jitter_us_ += (std::abs(d) - jitter_us_) / 16.0;
  }
  has_last_ = true;
  last_seq_ = packet.seq;
  last_arrival_ = deliver_at;
  last_media_ts_ = packet.timestamp_us;
}

double ReceiverLog::delivery_rate() const {
  const std::uint64_t total = expected();
  return total == 0 ? 0.0
                    : static_cast<double>(delivered_) /
                          static_cast<double>(total);
}

std::vector<ReceiverLog::Bin> ReceiverLog::bins() const {
  std::vector<Bin> out;
  for (std::size_t start = 0; start < seen_.size(); start += bin_size_) {
    const std::size_t end = std::min(start + bin_size_, seen_.size());
    std::size_t got = 0;
    for (std::size_t i = start; i < end; ++i) got += seen_[i];
    Bin bin;
    bin.first_seq = static_cast<std::uint32_t>(start);
    bin.expected = end - start;
    bin.delivered = got;
    bin.rate = static_cast<double>(got) / static_cast<double>(end - start);
    out.push_back(bin);
  }
  return out;
}

}  // namespace rapidware::media
