#include "media/wav.h"

#include "util/serial.h"

namespace rapidware::media {
namespace {

constexpr std::uint32_t fourcc(const char (&s)[5]) {
  return static_cast<std::uint32_t>(s[0]) |
         static_cast<std::uint32_t>(s[1]) << 8 |
         static_cast<std::uint32_t>(s[2]) << 16 |
         static_cast<std::uint32_t>(s[3]) << 24;
}

constexpr std::uint32_t kRiff = fourcc("RIFF");
constexpr std::uint32_t kWave = fourcc("WAVE");
constexpr std::uint32_t kFmt = fourcc("fmt ");
constexpr std::uint32_t kData = fourcc("data");
constexpr std::uint16_t kPcm = 1;

}  // namespace

util::Bytes wav_encode(const WavFile& wav) {
  const auto& f = wav.format;
  util::Writer w(44 + wav.pcm.size());
  w.u32(kRiff);
  w.u32(static_cast<std::uint32_t>(36 + wav.pcm.size()));
  w.u32(kWave);
  w.u32(kFmt);
  w.u32(16);  // PCM fmt chunk size
  w.u16(kPcm);
  w.u16(f.channels);
  w.u32(f.sample_rate);
  w.u32(static_cast<std::uint32_t>(f.bytes_per_second()));
  w.u16(static_cast<std::uint16_t>(f.bytes_per_frame()));  // block align
  w.u16(f.bits_per_sample);
  w.u32(kData);
  w.u32(static_cast<std::uint32_t>(wav.pcm.size()));
  w.raw(wav.pcm);
  return w.take();
}

WavFile wav_decode(util::ByteSpan bytes) {
  util::Reader r(bytes);
  if (r.u32() != kRiff) throw util::SerialError("wav: missing RIFF");
  r.u32();  // riff size (trusted from chunk walk below)
  if (r.u32() != kWave) throw util::SerialError("wav: missing WAVE");

  WavFile out;
  bool have_fmt = false, have_data = false;
  while (r.remaining() >= 8) {
    const std::uint32_t id = r.u32();
    const std::uint32_t size = r.u32();
    if (size > r.remaining()) throw util::SerialError("wav: truncated chunk");
    const util::Bytes chunk = r.raw(size);
    if (size % 2 == 1 && r.remaining() > 0) r.u8();  // RIFF chunk padding
    if (id == kFmt) {
      if (size < 16) throw util::SerialError("wav: short fmt chunk");
      util::Reader fr(chunk);
      if (fr.u16() != kPcm) throw util::SerialError("wav: not PCM");
      out.format.channels = fr.u16();
      out.format.sample_rate = fr.u32();
      fr.u32();  // byte rate (derived)
      fr.u16();  // block align (derived)
      out.format.bits_per_sample = fr.u16();
      have_fmt = true;
    } else if (id == kData) {
      out.pcm = chunk;
      have_data = true;
    }
    // Unknown chunks are skipped.
  }
  if (!have_fmt) throw util::SerialError("wav: missing fmt chunk");
  if (!have_data) throw util::SerialError("wav: missing data chunk");
  return out;
}

}  // namespace rapidware::media
