// Synthetic GOP-structured video source (I/P/B frames), the stream type the
// paper's UEP discussion targets ("placing more redundancy in I frames than
// in B frames", Section 3 / [24]).
#pragma once

#include <cstdint>
#include <string>

#include "media/media_packet.h"
#include "util/rng.h"

namespace rapidware::media {

struct VideoFormat {
  double fps = 25.0;
  std::string gop_pattern = "IBBPBBPBB";  // repeats
  std::size_t i_frame_bytes = 6000;
  std::size_t p_frame_bytes = 2000;
  std::size_t b_frame_bytes = 700;
  double size_jitter = 0.25;  // +- fraction of nominal size
};

class VideoStreamSource {
 public:
  explicit VideoStreamSource(VideoFormat format = {}, std::uint64_t seed = 11);

  const VideoFormat& format() const noexcept { return format_; }

  /// Produces the next frame as a MediaPacket whose frame_class reflects
  /// the GOP position and whose payload is a synthetic frame body.
  MediaPacket next_frame();

  std::int64_t frame_duration_us() const {
    return static_cast<std::int64_t>(1e6 / format_.fps);
  }

 private:
  VideoFormat format_;
  util::Rng rng_;
  std::uint32_t next_seq_ = 0;
  std::size_t gop_pos_ = 0;
};

}  // namespace rapidware::media
