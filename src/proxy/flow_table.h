// FlowTable: the per-flow chain map behind a classifying proxy.
//
// One proxy used to run ONE statically-managed chain for all traffic. The
// flow table turns that into "one chain per flow, from shared specs": the
// first packet of a flow resolves its FlowKey through the FlowClassifier,
// instantiates a FilterChain from the resolved (interned) ChainSpec, and
// starts it; flow expiry drains and tears the chain down. Flows holding the
// same spec share the ChainSpec object (flyweight) but own their chains —
// chains hold live per-flow state (FEC groups, compression dictionaries).
//
// Worker model (docs/data_plane.md): constructed over a core::WorkerPool,
// the table shards its flow map one shard per worker. A flow's key hashes
// to a shard, and the flow's whole chain is hosted on that shard's worker
// (chain affinity), so the classic thread-per-filter proxy becomes
// chains*filters logical flows multiplexed onto N event loops. Each worker
// also runs a periodic idle sweep on its own shard: a flow that sees no
// push()/acquire() activity for the idle timeout is evicted — its chain is
// shut down asynchronously (FilterChain::begin_shutdown) and reaped once
// every member's final drive has run, without the sweep ever blocking the
// worker. Without a pool the table degenerates to one shard, no sweeps,
// and thread-per-filter chains: the exact pre-worker behaviour.
//
// Live rule updates: after the control server applies RULE_ADD / RULE_DEL
// it calls reresolve(), which re-runs every active flow's key against the
// new table. A flow whose resolved spec is pointer-identical keeps its
// running chain untouched; a changed flow is reconfigured IN PLACE on the
// live stream — old stages removed back-to-front (each flushes via the
// pause/soft-EOF protocol), new stages inserted front-to-back — under the
// same pause/reconnect byte-exactness contract every chain operation obeys
// (no packet is lost, duplicated, or reordered across the swap; asserted by
// tests/flow_classifier_test.cpp under randomized stress schedules).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "core/filter_registry.h"
#include "core/flow_classifier.h"
#include "core/worker_pool.h"
#include "obs/metrics.h"
#include "sim/virtual_clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::proxy {

class FlowTable {
 public:
  /// Endpoint pair a new flow chain is built between. `source` is the push
  /// handle when the head is queue-fed (push() uses it); custom factories
  /// may leave it null and drive the head themselves.
  struct Endpoints {
    std::shared_ptr<core::Filter> head;
    std::shared_ptr<core::Filter> tail;
    std::shared_ptr<core::QueuePacketSource> source;
  };
  using EndpointFactory = std::function<Endpoints(const core::FlowKey&)>;

  /// Factory building each flow a QueuePacketSource-fed head and a writer
  /// tail delivering into the shared `sink` (a proxy's egress).
  static EndpointFactory queue_endpoints(
      std::shared_ptr<core::PacketSink> sink);

  /// Idle sweep default: a flow untouched for this long is evicted.
  static constexpr std::uint64_t kDefaultIdleTimeoutMs = 30'000;

  /// With a `pool`, flows shard across its workers (one shard per worker),
  /// each chain is hosted whole on its shard's worker, and a per-worker
  /// timer evicts flows idle longer than `idle_timeout_ms`. The pool must
  /// outlive the table. Without a pool: single shard, thread-per-filter
  /// chains, no eviction.
  FlowTable(core::FlowClassifier& classifier, core::FilterRegistry& registry,
            EndpointFactory endpoints, core::WorkerPool* pool = nullptr,
            std::uint64_t idle_timeout_ms = kDefaultIdleTimeoutMs);
  ~FlowTable();

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// The flow's chain, instantiated from the classifier-resolved spec and
  /// started on first use. Counts as flow activity for the idle sweep.
  std::shared_ptr<core::FilterChain> acquire(const core::FlowKey& key);

  /// The flow's chain if it exists; null otherwise (never instantiates).
  std::shared_ptr<core::FilterChain> find(const core::FlowKey& key) const;

  /// First-packet path: acquire(key), then push the packet into the flow's
  /// queue source. Throws when the flow's endpoints are not queue-fed.
  void push(const core::FlowKey& key, util::Bytes packet);

  /// The interned spec the flow currently runs; null for unknown flows.
  core::ChainSpecRef spec_of(const core::FlowKey& key) const;

  /// Ends the flow: finishes its source (if queue-fed), drains the chain so
  /// every stage flushes, and forgets it. False if the flow is unknown.
  bool expire(const core::FlowKey& key);

  /// Re-resolves every active flow against the current rule table and
  /// reconfigures the chains whose spec changed (see header comment).
  /// Returns the number of reconfigured flows.
  std::size_t reresolve();

  std::size_t size() const;
  std::vector<core::FlowKey> keys() const;

  /// Lifetime counters (also published by bind_metrics).
  std::uint64_t created() const;
  std::uint64_t expired() const;
  std::uint64_t reconfigured() const;
  /// Flows removed by the idle sweep (not counted in expired()).
  std::uint64_t flows_evicted() const;

  /// The worker pool flows are sharded over; null in single-shard mode.
  core::WorkerPool* pool() const noexcept { return pool_; }

  /// Hard-stops and forgets every flow (fast teardown; no flush guarantee).
  void shutdown_all();

  /// Publishes "flows" gauge and created/expired/reconfigured/evicted
  /// counters under `scope`.
  void bind_metrics(obs::Scope scope);

 private:
  struct Flow {
    std::shared_ptr<core::FilterChain> chain;
    std::shared_ptr<core::QueuePacketSource> source;
    core::ChainSpecRef spec;
    // Idle-sweep bookkeeping: push()/acquire() bump `activity`; the sweep
    // compares it against what it saw last round. Two consecutive quiet
    // sweeps (= one idle timeout, sweeps run every timeout/2) evict.
    std::uint64_t activity = 0;
    std::uint64_t seen_activity = 0;
    int idle_sweeps = 0;
  };

  /// One per worker. Operations on different shards never contend; a
  /// shard's flows all live on the same worker as its sweep timer.
  struct Shard {
    mutable rw::Mutex mu{"proxy/flow_shard", rw::lockrank::kFlowShard};
    std::map<core::FlowKey, Flow> flows RW_GUARDED_BY(mu);
    // Evicted flows whose chains are still running their final drives;
    // reaped by the next sweep once FilterChain::finished().
    std::vector<Flow> draining RW_GUARDED_BY(mu);
    // Control-plane only (created in the constructor, stopped in the
    // destructor before any shard state is torn down).
    std::unique_ptr<sim::PeriodicTask> sweeper;
  };

  std::size_t shard_of(const core::FlowKey& key) const;
  Flow make_flow_locked(Shard& shard, std::size_t shard_idx,
                        const core::FlowKey& key) RW_REQUIRES(shard.mu);
  void reconfigure_locked(Flow& flow, const core::ChainSpecRef& spec);  // rw-lint: allow(RW003) caller holds the flow's shard lock, passed implicitly via the Flow&
  /// The per-worker timer body: evict idle flows, reap finished drains.
  /// Runs on shard `idx`'s worker; never blocks (try_lock, skip on miss).
  void sweep_shard(std::size_t idx);
  void publish_flow_count();

  core::FlowClassifier& classifier_;
  core::FilterRegistry& registry_;
  const EndpointFactory endpoints_;
  core::WorkerPool* const pool_;
  const std::uint64_t idle_timeout_ms_;

  std::vector<std::unique_ptr<Shard>> shards_;  // rw-lint: allow(RW003) immutable after the constructor; each shard locks itself

  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> reconfigured_{0};
  std::atomic<std::uint64_t> evicted_{0};

  // Metric handles only; never held together with a shard lock (counter
  // updates re-acquire it after the shard op completes).
  mutable rw::Mutex mu_{"proxy/flow_table", rw::lockrank::kFlowTable};
  std::shared_ptr<obs::Gauge> m_flows_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_created_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_expired_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_reconfigured_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_evicted_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::proxy
