// FlowTable: the per-flow chain map behind a classifying proxy.
//
// One proxy used to run ONE statically-managed chain for all traffic. The
// flow table turns that into "one chain per flow, from shared specs": the
// first packet of a flow resolves its FlowKey through the FlowClassifier,
// instantiates a FilterChain from the resolved (interned) ChainSpec, and
// starts it; flow expiry drains and tears the chain down. Flows holding the
// same spec share the ChainSpec object (flyweight) but own their chains —
// chains hold live per-flow state (FEC groups, compression dictionaries).
//
// Live rule updates: after the control server applies RULE_ADD / RULE_DEL
// it calls reresolve(), which re-runs every active flow's key against the
// new table. A flow whose resolved spec is pointer-identical keeps its
// running chain untouched; a changed flow is reconfigured IN PLACE on the
// live stream — old stages removed back-to-front (each flushes via the
// pause/soft-EOF protocol), new stages inserted front-to-back — under the
// same pause/reconnect byte-exactness contract every chain operation obeys
// (no packet is lost, duplicated, or reordered across the swap; asserted by
// tests/flow_classifier_test.cpp under randomized stress schedules).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/endpoint.h"
#include "core/filter_chain.h"
#include "core/filter_registry.h"
#include "core/flow_classifier.h"
#include "obs/metrics.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::proxy {

class FlowTable {
 public:
  /// Endpoint pair a new flow chain is built between. `source` is the push
  /// handle when the head is queue-fed (push() uses it); custom factories
  /// may leave it null and drive the head themselves.
  struct Endpoints {
    std::shared_ptr<core::Filter> head;
    std::shared_ptr<core::Filter> tail;
    std::shared_ptr<core::QueuePacketSource> source;
  };
  using EndpointFactory = std::function<Endpoints(const core::FlowKey&)>;

  /// Factory building each flow a QueuePacketSource-fed head and a writer
  /// tail delivering into the shared `sink` (a proxy's egress).
  static EndpointFactory queue_endpoints(
      std::shared_ptr<core::PacketSink> sink);

  FlowTable(core::FlowClassifier& classifier, core::FilterRegistry& registry,
            EndpointFactory endpoints);
  ~FlowTable();

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// The flow's chain, instantiated from the classifier-resolved spec and
  /// started on first use.
  std::shared_ptr<core::FilterChain> acquire(const core::FlowKey& key);

  /// The flow's chain if it exists; null otherwise (never instantiates).
  std::shared_ptr<core::FilterChain> find(const core::FlowKey& key) const;

  /// First-packet path: acquire(key), then push the packet into the flow's
  /// queue source. Throws when the flow's endpoints are not queue-fed.
  void push(const core::FlowKey& key, util::Bytes packet);

  /// The interned spec the flow currently runs; null for unknown flows.
  core::ChainSpecRef spec_of(const core::FlowKey& key) const;

  /// Ends the flow: finishes its source (if queue-fed), drains the chain so
  /// every stage flushes, and forgets it. False if the flow is unknown.
  bool expire(const core::FlowKey& key);

  /// Re-resolves every active flow against the current rule table and
  /// reconfigures the chains whose spec changed (see header comment).
  /// Returns the number of reconfigured flows.
  std::size_t reresolve();

  std::size_t size() const;
  std::vector<core::FlowKey> keys() const;

  /// Lifetime counters (also published by bind_metrics).
  std::uint64_t created() const;
  std::uint64_t expired() const;
  std::uint64_t reconfigured() const;

  /// Hard-stops and forgets every flow (fast teardown; no flush guarantee).
  void shutdown_all();

  /// Publishes "flows" gauge and created/expired/reconfigured counters
  /// under `scope`.
  void bind_metrics(obs::Scope scope);

 private:
  struct Flow {
    std::shared_ptr<core::FilterChain> chain;
    std::shared_ptr<core::QueuePacketSource> source;
    core::ChainSpecRef spec;
  };

  Flow make_flow_locked(const core::FlowKey& key) RW_REQUIRES(mu_);
  void reconfigure_locked(Flow& flow, const core::ChainSpecRef& spec)
      RW_REQUIRES(mu_);

  core::FlowClassifier& classifier_;
  core::FilterRegistry& registry_;
  const EndpointFactory endpoints_;

  mutable rw::Mutex mu_{"proxy/flow_table", rw::lockrank::kFlowTable};
  std::map<core::FlowKey, Flow> flows_ RW_GUARDED_BY(mu_);
  std::uint64_t created_ RW_GUARDED_BY(mu_) = 0;
  std::uint64_t expired_ RW_GUARDED_BY(mu_) = 0;
  std::uint64_t reconfigured_ RW_GUARDED_BY(mu_) = 0;
  std::shared_ptr<obs::Gauge> m_flows_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_created_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_expired_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_reconfigured_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::proxy
