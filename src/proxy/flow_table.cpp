#include "proxy/flow_table.h"

#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/logging.h"

namespace rapidware::proxy {

FlowTable::EndpointFactory FlowTable::queue_endpoints(
    std::shared_ptr<core::PacketSink> sink) {
  if (!sink) {
    throw std::invalid_argument("FlowTable::queue_endpoints: null sink");
  }
  return [sink = std::move(sink)](const core::FlowKey& key) {
    Endpoints eps;
    eps.source = std::make_shared<core::QueuePacketSource>();
    eps.head = std::make_shared<core::PacketReaderEndpoint>(
        "flow-rx(" + std::to_string(key.station) + ")", eps.source);
    eps.tail = std::make_shared<core::PacketWriterEndpoint>(
        "flow-tx(" + std::to_string(key.station) + ")", sink);
    return eps;
  };
}

FlowTable::FlowTable(core::FlowClassifier& classifier,
                     core::FilterRegistry& registry, EndpointFactory endpoints,
                     core::WorkerPool* pool, std::uint64_t idle_timeout_ms)
    : classifier_(classifier),
      registry_(registry),
      endpoints_(std::move(endpoints)),
      pool_(pool),
      idle_timeout_ms_(idle_timeout_ms) {
  if (!endpoints_) {
    throw std::invalid_argument("FlowTable: null endpoint factory");
  }
  const std::size_t n = pool_ != nullptr ? pool_->size() : 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (pool_ != nullptr && idle_timeout_ms_ > 0) {
    // Sweep at half the timeout on each shard's own worker clock: two
    // consecutive quiet sweeps span at least one full timeout.
    const util::Micros period =
        static_cast<util::Micros>(idle_timeout_ms_ * 1000 / 2);
    for (std::size_t i = 0; i < n; ++i) {
      shards_[i]->sweeper = std::make_unique<sim::PeriodicTask>(
          pool_->worker(i).clock(), period > 0 ? period : 1,
          [this, i](util::Micros) { sweep_shard(i); });
      pool_->worker(i).wake();  // parked loops re-read the timer horizon
    }
  }
}

FlowTable::~FlowTable() {
  // Teardown order matters: stop the sweep timers, then barrier every
  // worker so no in-flight tick still references this table, and only then
  // tear the flows down.
  for (auto& shard : shards_) {
    if (shard->sweeper) shard->sweeper->stop();
  }
  if (pool_ != nullptr) {
    for (std::size_t i = 0; i < shards_.size(); ++i) pool_->worker(i).sync();
  }
  shutdown_all();
}

std::size_t FlowTable::shard_of(const core::FlowKey& key) const {
  if (shards_.size() == 1) return 0;
  std::size_t h = std::hash<std::uint32_t>{}(key.station);
  h = h * 31 + std::hash<std::string>{}(key.stream_type);
  h = h * 31 + static_cast<std::size_t>(key.regime);
  return h % shards_.size();
}

FlowTable::Flow FlowTable::make_flow_locked(Shard& shard,
                                            std::size_t shard_idx,
                                            const core::FlowKey& key) {
  shard.mu.assert_held();
  Flow flow;
  flow.spec = classifier_.resolve(key);
  Endpoints eps = endpoints_(key);
  if (!eps.head || !eps.tail) {
    throw std::invalid_argument("FlowTable: endpoint factory returned null");
  }
  flow.source = std::move(eps.source);
  flow.chain = std::make_shared<core::FilterChain>(std::move(eps.head),
                                                   std::move(eps.tail));
  for (auto& filter : core::instantiate_chain(*flow.spec, registry_)) {
    flow.chain->append(std::move(filter));
  }
  // Chain affinity: the whole chain lives on this shard's worker, so its
  // members multiplex with every other chain of the shard instead of each
  // holding an OS thread.
  if (pool_ != nullptr) flow.chain->host_on(pool_->worker(shard_idx));
  flow.chain->start();
  flow.activity = 1;  // creation counts as activity
  return flow;
}

std::shared_ptr<core::FilterChain> FlowTable::acquire(
    const core::FlowKey& key) {
  const std::size_t idx = shard_of(key);
  Shard& shard = *shards_[idx];
  std::shared_ptr<core::FilterChain> chain;
  bool fresh = false;
  {
    rw::MutexLock lk(shard.mu);
    auto it = shard.flows.find(key);
    if (it == shard.flows.end()) {
      it = shard.flows.emplace(key, make_flow_locked(shard, idx, key)).first;
      fresh = true;
    } else {
      ++it->second.activity;
    }
    chain = it->second.chain;
  }
  if (fresh) {
    created_.fetch_add(1, std::memory_order_relaxed);
    rw::MutexLock lk(mu_);
    if (m_created_) m_created_->add();
  }
  if (fresh) publish_flow_count();
  return chain;
}

std::shared_ptr<core::FilterChain> FlowTable::find(
    const core::FlowKey& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  rw::MutexLock lk(shard.mu);
  auto it = shard.flows.find(key);
  return it == shard.flows.end() ? nullptr : it->second.chain;
}

void FlowTable::push(const core::FlowKey& key, util::Bytes packet) {
  const std::size_t idx = shard_of(key);
  Shard& shard = *shards_[idx];
  std::shared_ptr<core::QueuePacketSource> source;
  bool fresh = false;
  {
    rw::MutexLock lk(shard.mu);
    auto it = shard.flows.find(key);
    if (it == shard.flows.end()) {
      it = shard.flows.emplace(key, make_flow_locked(shard, idx, key)).first;
      fresh = true;
    } else {
      ++it->second.activity;
    }
    source = it->second.source;
  }
  if (fresh) {
    created_.fetch_add(1, std::memory_order_relaxed);
    rw::MutexLock lk(mu_);
    if (m_created_) m_created_->add();
  }
  if (fresh) publish_flow_count();
  if (!source) {
    throw std::logic_error("FlowTable::push: flow endpoints are not queue-fed");
  }
  // Push outside the shard lock: the queue is unbounded and never blocks,
  // but keeping the data path off the lock means a slow reconfigure
  // (reresolve holds it across chain splices) cannot stall this shard's
  // other feeders longer than the lookup.
  source->push(std::move(packet));
}

core::ChainSpecRef FlowTable::spec_of(const core::FlowKey& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  rw::MutexLock lk(shard.mu);
  auto it = shard.flows.find(key);
  return it == shard.flows.end() ? nullptr : it->second.spec;
}

bool FlowTable::expire(const core::FlowKey& key) {
  Shard& shard = *shards_[shard_of(key)];
  Flow flow;
  {
    rw::MutexLock lk(shard.mu);
    auto it = shard.flows.find(key);
    if (it == shard.flows.end()) return false;
    flow = std::move(it->second);
    shard.flows.erase(it);
  }
  expired_.fetch_add(1, std::memory_order_relaxed);
  {
    rw::MutexLock lk(mu_);
    if (m_expired_) m_expired_->add();
  }
  publish_flow_count();
  // Drain outside the lock: teardown waits for in-flight packets to flush.
  if (flow.source) {
    flow.source->finish();
    flow.chain->drain_shutdown();
  } else {
    flow.chain->shutdown();
  }
  return true;
}

void FlowTable::reconfigure_locked(Flow& flow, const core::ChainSpecRef& spec) {
  // Old stages out back-to-front (each flushes via pause/soft-EOF), new
  // stages in front-to-back — every step is one byte-exact splice, so the
  // stream never loses, duplicates, or reorders a packet across the swap.
  for (std::size_t n = flow.chain->size(); n > 0; --n) {
    flow.chain->remove(n - 1);
  }
  for (auto& filter : core::instantiate_chain(*spec, registry_)) {
    flow.chain->append(std::move(filter));
  }
  flow.spec = spec;
}

std::size_t FlowTable::reresolve() {
  std::size_t changed = 0;
  // One shard at a time (never two shard locks at once): a slow splice on
  // one worker's flows leaves every other shard's data path untouched.
  for (auto& shard : shards_) {
    rw::MutexLock lk(shard->mu);
    for (auto& [key, flow] : shard->flows) {
      core::ChainSpecRef spec = classifier_.resolve(key);
      if (spec == flow.spec) continue;  // flyweight: pointer == is same spec
      reconfigure_locked(flow, spec);
      ++changed;
    }
  }
  if (changed > 0) {
    reconfigured_.fetch_add(changed, std::memory_order_relaxed);
    rw::MutexLock lk(mu_);
    if (m_reconfigured_) m_reconfigured_->add(changed);
  }
  return changed;
}

void FlowTable::sweep_shard(std::size_t idx) {
  Shard& shard = *shards_[idx];
  // Never block the worker: a control op holding the shard (reresolve
  // mid-splice, an expire) just means this round is skipped.
  if (!shard.mu.try_lock()) return;
  std::size_t n_evicted = 0;
  try {
    for (auto it = shard.flows.begin(); it != shard.flows.end();) {
      Flow& flow = it->second;
      if (flow.activity != flow.seen_activity) {
        flow.seen_activity = flow.activity;
        flow.idle_sweeps = 0;
        ++it;
        continue;
      }
      if (++flow.idle_sweeps < 2) {
        ++it;
        continue;
      }
      // Idle for a full timeout: shut the chain down asynchronously and
      // park it for reaping. begin_shutdown never waits — the final drives
      // run on this very worker, behind this timer callback.
      if (flow.source) flow.source->finish();
      flow.chain->begin_shutdown();
      shard.draining.push_back(std::move(flow));
      it = shard.flows.erase(it);
      ++n_evicted;
    }
    // Reap drains whose every member has run its final drive. Destruction
    // is cheap here: shutdown already happened, the done-gates are set.
    std::erase_if(shard.draining, [](const Flow& flow) {
      return flow.chain->finished();
    });
  } catch (const std::exception& e) {
    // A timer callback must not throw into the worker loop.
    RW_ERROR("flow_table") << "idle sweep failed: " << e.what();
  }
  shard.mu.unlock();
  if (n_evicted > 0) {
    evicted_.fetch_add(n_evicted, std::memory_order_relaxed);
    {
      rw::MutexLock lk(mu_);
      if (m_evicted_) m_evicted_->add(n_evicted);
    }
    publish_flow_count();
  }
}

std::size_t FlowTable::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    rw::MutexLock lk(shard->mu);
    total += shard->flows.size();
  }
  return total;
}

std::vector<core::FlowKey> FlowTable::keys() const {
  std::vector<core::FlowKey> out;
  for (const auto& shard : shards_) {
    rw::MutexLock lk(shard->mu);
    for (const auto& [key, flow] : shard->flows) out.push_back(key);
  }
  return out;
}

std::uint64_t FlowTable::created() const {
  return created_.load(std::memory_order_relaxed);
}

std::uint64_t FlowTable::expired() const {
  return expired_.load(std::memory_order_relaxed);
}

std::uint64_t FlowTable::reconfigured() const {
  return reconfigured_.load(std::memory_order_relaxed);
}

std::uint64_t FlowTable::flows_evicted() const {
  return evicted_.load(std::memory_order_relaxed);
}

void FlowTable::shutdown_all() {
  std::vector<Flow> doomed;
  std::size_t dropped = 0;
  for (auto& shard : shards_) {
    rw::MutexLock lk(shard->mu);
    dropped += shard->flows.size();
    for (auto& [key, flow] : shard->flows) doomed.push_back(std::move(flow));
    shard->flows.clear();
    for (auto& flow : shard->draining) doomed.push_back(std::move(flow));
    shard->draining.clear();
  }
  expired_.fetch_add(dropped, std::memory_order_relaxed);
  {
    rw::MutexLock lk(mu_);
    if (m_flows_) m_flows_->set(0);
  }
  // shutdown() blocks until each member stopped; for already-draining
  // chains it is a no-op and the Flow destructor's done-gate wait covers
  // the final drives still in flight on the workers.
  for (auto& flow : doomed) flow.chain->shutdown();
}

void FlowTable::publish_flow_count() {
  std::shared_ptr<obs::Gauge> gauge;
  {
    rw::MutexLock lk(mu_);
    gauge = m_flows_;
  }
  if (gauge) gauge->set(static_cast<std::int64_t>(size()));
}

void FlowTable::bind_metrics(obs::Scope scope) {
  rw::MutexLock lk(mu_);
  m_flows_ = scope.gauge("flows");
  m_created_ = scope.counter("created");
  m_expired_ = scope.counter("expired");
  m_reconfigured_ = scope.counter("reconfigured");
  m_evicted_ = scope.counter("evicted");
  m_created_->add(created_.load(std::memory_order_relaxed));
  m_expired_->add(expired_.load(std::memory_order_relaxed));
  m_reconfigured_->add(reconfigured_.load(std::memory_order_relaxed));
  m_evicted_->add(evicted_.load(std::memory_order_relaxed));
  // Rank note: mu_ (kFlowTable) is below the shard locks, so summing the
  // shards while holding it is in order.
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    rw::MutexLock slk(shard->mu);
    total += shard->flows.size();
  }
  m_flows_->set(static_cast<std::int64_t>(total));
}

}  // namespace rapidware::proxy
