#include "proxy/flow_table.h"

#include <stdexcept>
#include <utility>

namespace rapidware::proxy {

FlowTable::EndpointFactory FlowTable::queue_endpoints(
    std::shared_ptr<core::PacketSink> sink) {
  if (!sink) {
    throw std::invalid_argument("FlowTable::queue_endpoints: null sink");
  }
  return [sink = std::move(sink)](const core::FlowKey& key) {
    Endpoints eps;
    eps.source = std::make_shared<core::QueuePacketSource>();
    eps.head = std::make_shared<core::PacketReaderEndpoint>(
        "flow-rx(" + std::to_string(key.station) + ")", eps.source);
    eps.tail = std::make_shared<core::PacketWriterEndpoint>(
        "flow-tx(" + std::to_string(key.station) + ")", sink);
    return eps;
  };
}

FlowTable::FlowTable(core::FlowClassifier& classifier,
                     core::FilterRegistry& registry, EndpointFactory endpoints)
    : classifier_(classifier),
      registry_(registry),
      endpoints_(std::move(endpoints)) {
  if (!endpoints_) {
    throw std::invalid_argument("FlowTable: null endpoint factory");
  }
}

FlowTable::~FlowTable() { shutdown_all(); }

FlowTable::Flow FlowTable::make_flow_locked(const core::FlowKey& key) {
  Flow flow;
  flow.spec = classifier_.resolve(key);
  Endpoints eps = endpoints_(key);
  if (!eps.head || !eps.tail) {
    throw std::invalid_argument("FlowTable: endpoint factory returned null");
  }
  flow.source = std::move(eps.source);
  flow.chain = std::make_shared<core::FilterChain>(std::move(eps.head),
                                                   std::move(eps.tail));
  for (auto& filter : core::instantiate_chain(*flow.spec, registry_)) {
    flow.chain->append(std::move(filter));
  }
  flow.chain->start();
  return flow;
}

std::shared_ptr<core::FilterChain> FlowTable::acquire(
    const core::FlowKey& key) {
  rw::MutexLock lk(mu_);
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    it = flows_.emplace(key, make_flow_locked(key)).first;
    ++created_;
    if (m_created_) m_created_->add();
    if (m_flows_) m_flows_->set(static_cast<std::int64_t>(flows_.size()));
  }
  return it->second.chain;
}

std::shared_ptr<core::FilterChain> FlowTable::find(
    const core::FlowKey& key) const {
  rw::MutexLock lk(mu_);
  auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : it->second.chain;
}

void FlowTable::push(const core::FlowKey& key, util::Bytes packet) {
  std::shared_ptr<core::QueuePacketSource> source;
  {
    rw::MutexLock lk(mu_);
    auto it = flows_.find(key);
    if (it == flows_.end()) {
      it = flows_.emplace(key, make_flow_locked(key)).first;
      ++created_;
      if (m_created_) m_created_->add();
      if (m_flows_) m_flows_->set(static_cast<std::int64_t>(flows_.size()));
    }
    source = it->second.source;
  }
  if (!source) {
    throw std::logic_error("FlowTable::push: flow endpoints are not queue-fed");
  }
  // Push outside the table lock: the queue is unbounded and never blocks,
  // but keeping the data path off mu_ means a slow reconfigure (reresolve
  // holds mu_ across chain splices) cannot stall unrelated flows' feeders.
  source->push(std::move(packet));
}

core::ChainSpecRef FlowTable::spec_of(const core::FlowKey& key) const {
  rw::MutexLock lk(mu_);
  auto it = flows_.find(key);
  return it == flows_.end() ? nullptr : it->second.spec;
}

bool FlowTable::expire(const core::FlowKey& key) {
  Flow flow;
  {
    rw::MutexLock lk(mu_);
    auto it = flows_.find(key);
    if (it == flows_.end()) return false;
    flow = std::move(it->second);
    flows_.erase(it);
    ++expired_;
    if (m_expired_) m_expired_->add();
    if (m_flows_) m_flows_->set(static_cast<std::int64_t>(flows_.size()));
  }
  // Drain outside the lock: teardown waits for in-flight packets to flush.
  if (flow.source) {
    flow.source->finish();
    flow.chain->drain_shutdown();
  } else {
    flow.chain->shutdown();
  }
  return true;
}

void FlowTable::reconfigure_locked(Flow& flow, const core::ChainSpecRef& spec) {
  // Old stages out back-to-front (each flushes via pause/soft-EOF), new
  // stages in front-to-back — every step is one byte-exact splice, so the
  // stream never loses, duplicates, or reorders a packet across the swap.
  for (std::size_t n = flow.chain->size(); n > 0; --n) {
    flow.chain->remove(n - 1);
  }
  for (auto& filter : core::instantiate_chain(*spec, registry_)) {
    flow.chain->append(std::move(filter));
  }
  flow.spec = spec;
}

std::size_t FlowTable::reresolve() {
  rw::MutexLock lk(mu_);
  std::size_t changed = 0;
  for (auto& [key, flow] : flows_) {
    core::ChainSpecRef spec = classifier_.resolve(key);
    if (spec == flow.spec) continue;  // flyweight: pointer == means same spec
    reconfigure_locked(flow, spec);
    ++changed;
    ++reconfigured_;
    if (m_reconfigured_) m_reconfigured_->add();
  }
  return changed;
}

std::size_t FlowTable::size() const {
  rw::MutexLock lk(mu_);
  return flows_.size();
}

std::vector<core::FlowKey> FlowTable::keys() const {
  rw::MutexLock lk(mu_);
  std::vector<core::FlowKey> out;
  out.reserve(flows_.size());
  for (const auto& [key, flow] : flows_) out.push_back(key);
  return out;
}

std::uint64_t FlowTable::created() const {
  rw::MutexLock lk(mu_);
  return created_;
}

std::uint64_t FlowTable::expired() const {
  rw::MutexLock lk(mu_);
  return expired_;
}

std::uint64_t FlowTable::reconfigured() const {
  rw::MutexLock lk(mu_);
  return reconfigured_;
}

void FlowTable::shutdown_all() {
  std::map<core::FlowKey, Flow> doomed;
  {
    rw::MutexLock lk(mu_);
    doomed.swap(flows_);
    expired_ += doomed.size();
    if (m_flows_) m_flows_->set(0);
  }
  for (auto& [key, flow] : doomed) flow.chain->shutdown();
}

void FlowTable::bind_metrics(obs::Scope scope) {
  rw::MutexLock lk(mu_);
  m_flows_ = scope.gauge("flows");
  m_flows_->set(static_cast<std::int64_t>(flows_.size()));
  m_created_ = scope.counter("created");
  m_expired_ = scope.counter("expired");
  m_reconfigured_ = scope.counter("reconfigured");
}

}  // namespace rapidware::proxy
