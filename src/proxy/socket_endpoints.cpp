#include "proxy/socket_endpoints.h"

namespace rapidware::proxy {

SocketPacketSource::SocketPacketSource(std::shared_ptr<net::SimSocket> socket)
    : socket_(std::move(socket)) {}

std::optional<util::Bytes> SocketPacketSource::next_packet() {
  // Poll with a short timeout so interrupt() takes effect promptly even
  // when the stream is idle; socket close also unblocks immediately.
  while (!interrupted_.load(std::memory_order_acquire)) {
    auto datagram = socket_->recv(50);
    if (datagram) return std::move(datagram->payload);
    if (socket_->is_closed()) break;  // closed elsewhere, not just idle
  }
  return std::nullopt;
}

void SocketPacketSource::interrupt() {
  interrupted_.store(true, std::memory_order_release);
  socket_->close();
}

SocketPacketSink::SocketPacketSink(std::shared_ptr<net::SimSocket> socket,
                                   net::Address dst)
    : socket_(std::move(socket)), dst_(dst) {}

void SocketPacketSink::deliver(util::ByteSpan packet) {
  net::Address dst;
  {
    rw::MutexLock lk(mu_);
    dst = dst_;
  }
  socket_->send_to(dst, packet);
}

void SocketPacketSink::set_destination(net::Address dst) {
  rw::MutexLock lk(mu_);
  dst_ = dst;
}

net::Address SocketPacketSink::destination() const {
  rw::MutexLock lk(mu_);
  return dst_;
}

SocketEndpoints make_socket_endpoints(std::shared_ptr<net::SimSocket> in,
                                      std::shared_ptr<net::SimSocket> out,
                                      net::Address out_dst) {
  auto sink = std::make_shared<SocketPacketSink>(std::move(out), out_dst);
  auto head = std::make_shared<core::PacketReaderEndpoint>(
      "socket-in", std::make_shared<SocketPacketSource>(std::move(in)));
  auto tail = std::make_shared<core::PacketWriterEndpoint>("socket-out", sink);
  return {std::move(head), std::move(tail), std::move(sink)};
}

}  // namespace rapidware::proxy
