// Proxy assembly: one data stream (ingress socket -> filter chain -> egress
// destination) plus a control service answering ControlManager requests
// over the network — the full RAPIDware proxy of Figure 4, including the
// remote-administration path the paper's Swing ControlManager used.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/control.h"
#include "core/filter_chain.h"
#include "core/flow_classifier.h"
#include "net/sim_network.h"
#include "obs/metrics.h"
#include "proxy/flow_table.h"
#include "proxy/socket_endpoints.h"

namespace rapidware::proxy {

struct ProxyConfig {
  std::string name = "proxy";
  /// Port the proxy's data ingress binds on its node.
  std::uint16_t ingress_port = 4000;
  /// Multicast group the ingress joins (nullopt: plain unicast ingress).
  std::optional<net::Address> ingress_group;
  /// Where processed packets are sent (unicast address or multicast group).
  net::Address egress_dst;
  /// Port of the control service on the proxy's node.
  std::uint16_t control_port = 4999;
};

/// Construction publishes metrics under "<name>/..." in obs::registry()
/// (chain and per-filter metrics under "<name>/chain/...", socket packet
/// gauges under "<name>/ingress|egress/...", control-plane counters under
/// "<name>/control/..."), all served by the control protocol's STATS verb;
/// shutdown() drops them. Proxy names must therefore be unique per process.
class Proxy {
 public:
  Proxy(net::SimNetwork& net, net::NodeId node, ProxyConfig config,
        core::FilterRegistry* registry = &core::global_registry());
  ~Proxy();

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Starts the data chain (as a null proxy) and the control service.
  void start();

  /// Stops the control service, drains and stops the chain.
  void shutdown();

  core::FilterChain& chain() { return *chain_; }
  std::shared_ptr<core::FilterChain> chain_ptr() { return chain_; }

  // --- Per-flow chains (docs/flow_classification.md) ---------------------
  // The classifier's rule table maps FlowKeys to interned chain specs; the
  // flow table instantiates one FilterChain per active flow, on first
  // packet, feeding the shared egress. RULE_ADD / RULE_DEL over the control
  // protocol (v3) mutate the table and re-resolve every live flow.

  /// The rule table the v3 control verbs operate on. Rules added here take
  /// effect on the next flow_push() for a new key; use the control path to
  /// also re-resolve existing flows.
  core::FlowClassifier& classifier() { return classifier_; }

  /// The per-flow chain map (metrics under "<name>/flows/...").
  FlowTable& flows() { return *flows_; }

  /// Classified ingress: routes the packet through `key`'s chain,
  /// instantiating it from the resolved spec on first use. Output shares
  /// the proxy's egress socket and destination.
  void flow_push(const core::FlowKey& key, util::Bytes packet);

  /// Drains and tears down one flow's chain (flow expiry). False if the
  /// flow was never seen.
  bool expire_flow(const core::FlowKey& key);

  /// Redirects the data egress to a new destination — device handoff: the
  /// stream follows the user from laptop to palmtop without restarting the
  /// chain (pair with a transcode insertion for the weaker device).
  void retarget_egress(net::Address dst);
  net::Address egress_destination() const;

  net::NodeId node() const noexcept { return node_; }
  net::Address control_address() const {
    return {node_, config_.control_port};
  }
  const std::string& name() const noexcept { return config_.name; }

 private:
  void control_loop();
  void bind_metrics();

  net::SimNetwork& net_;
  net::NodeId node_;
  ProxyConfig config_;

  std::shared_ptr<net::SimSocket> ingress_;
  std::shared_ptr<net::SimSocket> egress_;
  std::shared_ptr<net::SimSocket> control_socket_;
  std::shared_ptr<SocketPacketSink> egress_sink_;
  std::shared_ptr<core::FilterChain> chain_;
  core::FlowClassifier classifier_;
  std::unique_ptr<FlowTable> flows_;
  std::unique_ptr<core::ControlServer> control_server_;
  std::thread control_thread_;
  bool started_ = false;

  std::shared_ptr<obs::Counter> m_control_requests_;
  std::shared_ptr<obs::Counter> m_control_errors_;
  std::shared_ptr<obs::Counter> m_retargets_;
  std::shared_ptr<obs::Histogram> m_control_handle_us_;
};

/// ControlManager transport that performs datagram request/response against
/// a proxy's control service. Each client instance owns one ephemeral
/// socket on `client_node`.
core::ControlManager::Transport network_control_transport(
    net::SimNetwork& net, net::NodeId client_node, net::Address control_addr,
    int timeout_ms = 2000);

}  // namespace rapidware::proxy
