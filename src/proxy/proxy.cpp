#include "proxy/proxy.h"

#include <stdexcept>

#include "proxy/socket_endpoints.h"
#include "util/logging.h"

namespace rapidware::proxy {

Proxy::Proxy(net::SimNetwork& net, net::NodeId node, ProxyConfig config,
             core::FilterRegistry* registry)
    : net_(net), node_(node), config_(std::move(config)) {
  ingress_ = net_.open(node_, config_.ingress_port);
  if (config_.ingress_group) ingress_->join(*config_.ingress_group);
  egress_ = net_.open(node_);
  control_socket_ = net_.open(node_, config_.control_port);

  auto endpoints = make_socket_endpoints(ingress_, egress_, config_.egress_dst);
  egress_sink_ = endpoints.sink;
  chain_ = std::make_shared<core::FilterChain>(std::move(endpoints.head),
                                               std::move(endpoints.tail));
  control_server_ = std::make_unique<core::ControlServer>(chain_, registry);
}

Proxy::~Proxy() {
  try {
    shutdown();
  } catch (...) {
    // Best-effort teardown.
  }
}

void Proxy::start() {
  if (started_) throw std::runtime_error("Proxy::start: already started");
  started_ = true;
  chain_->start();
  control_thread_ = std::thread([this] { control_loop(); });
}

void Proxy::shutdown() {
  if (!started_) return;
  started_ = false;
  control_socket_->close();
  if (control_thread_.joinable()) control_thread_.join();
  chain_->shutdown();
}

void Proxy::retarget_egress(net::Address dst) {
  egress_sink_->set_destination(dst);
}

net::Address Proxy::egress_destination() const {
  return egress_sink_->destination();
}

void Proxy::control_loop() {
  for (;;) {
    auto request = control_socket_->recv(-1);
    if (!request) break;  // socket closed: shutting down
    const util::Bytes response = control_server_->handle(request->payload);
    try {
      control_socket_->send_to(request->src, response);
    } catch (const std::exception& e) {
      RW_WARN(config_.name) << "control reply failed: " << e.what();
      break;
    }
  }
}

core::ControlManager::Transport network_control_transport(
    net::SimNetwork& net, net::NodeId client_node, net::Address control_addr,
    int timeout_ms) {
  auto socket = net.open(client_node);
  return [socket = std::move(socket), control_addr,
          timeout_ms](util::ByteSpan request) -> util::Bytes {
    socket->send_to(control_addr, request);
    auto response = socket->recv(timeout_ms);
    if (!response) {
      throw core::ControlError("control request timed out");
    }
    return std::move(response->payload);
  };
}

}  // namespace rapidware::proxy
