#include "proxy/proxy.h"

#include <chrono>
#include <stdexcept>

#include "proxy/socket_endpoints.h"
#include "util/logging.h"

namespace rapidware::proxy {

Proxy::Proxy(net::SimNetwork& net, net::NodeId node, ProxyConfig config,
             core::FilterRegistry* registry)
    : net_(net), node_(node), config_(std::move(config)) {
  ingress_ = net_.open(node_, config_.ingress_port);
  if (config_.ingress_group) ingress_->join(*config_.ingress_group);
  egress_ = net_.open(node_);
  control_socket_ = net_.open(node_, config_.control_port);

  auto endpoints = make_socket_endpoints(ingress_, egress_, config_.egress_dst);
  egress_sink_ = endpoints.sink;
  chain_ = std::make_shared<core::FilterChain>(std::move(endpoints.head),
                                               std::move(endpoints.tail));
  // Per-flow chains share the egress sink with the main chain, so classified
  // and unclassified traffic leave through the same socket + destination.
  flows_ = std::make_unique<FlowTable>(classifier_, *registry,
                                       FlowTable::queue_endpoints(egress_sink_));
  control_server_ = std::make_unique<core::ControlServer>(chain_, registry);
  control_server_->set_classifier(&classifier_);
  control_server_->on_rules_changed([this] { flows_->reresolve(); });
  bind_metrics();
}

void Proxy::bind_metrics() {
  chain_->bind_metrics(obs::registry(), config_.name + "/chain");
  obs::Scope scope(obs::registry(), config_.name);
  classifier_.bind_metrics(scope.child("classifier"));
  flows_->bind_metrics(scope.child("flows"));
  m_control_requests_ = scope.counter("control/requests");
  m_control_errors_ = scope.counter("control/errors");
  m_retargets_ = scope.counter("retargets");
  m_control_handle_us_ = scope.histogram(
      "control/handle_us", obs::Histogram::latency_us_bounds());
  // SimSocket accessors are thread-safe, and shutdown() drops these before
  // the shared_ptr members can be released.
  auto* ingress = ingress_.get();
  auto* egress = egress_.get();
  scope.callback("ingress/packets", [ingress] {
    return static_cast<double>(ingress->packets_received());
  });
  scope.callback("egress/packets", [egress] {
    return static_cast<double>(egress->packets_sent());
  });
}

Proxy::~Proxy() {
  try {
    shutdown();
  } catch (...) {
    // Best-effort teardown.
  }
  // A proxy that was never started still registered metrics referencing its
  // sockets; drop them before the members go away (drop() is idempotent).
  obs::registry().drop(config_.name);
}

void Proxy::start() {
  if (started_) throw std::runtime_error("Proxy::start: already started");
  started_ = true;
  chain_->start();
  control_thread_ = std::thread([this] { control_loop(); });
}

void Proxy::shutdown() {
  if (!started_) return;
  started_ = false;
  control_socket_->close();
  if (control_thread_.joinable()) control_thread_.join();
  flows_->shutdown_all();
  chain_->shutdown();
  chain_->unbind_metrics();
  obs::registry().drop(config_.name);
}

void Proxy::flow_push(const core::FlowKey& key, util::Bytes packet) {
  flows_->push(key, std::move(packet));
}

bool Proxy::expire_flow(const core::FlowKey& key) {
  return flows_->expire(key);
}

void Proxy::retarget_egress(net::Address dst) {
  egress_sink_->set_destination(dst);
  if (m_retargets_) m_retargets_->add();
}

net::Address Proxy::egress_destination() const {
  return egress_sink_->destination();
}

void Proxy::control_loop() {
  for (;;) {
    auto request = control_socket_->recv(-1);
    if (!request) break;  // socket closed: shutting down
    const auto t0 = std::chrono::steady_clock::now();
    const util::Bytes response = control_server_->handle(request->payload);
    m_control_requests_->add();
    m_control_handle_us_->observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    // Response status byte: 1 = ok, 0 = error (core/control.h wire format).
    if (!response.empty() && response[0] == 0) {
      m_control_errors_->add();
    }
    try {
      control_socket_->send_to(request->src, response);
    } catch (const std::exception& e) {
      RW_WARN(config_.name) << "control reply failed: " << e.what();
      break;
    }
  }
}

core::ControlManager::Transport network_control_transport(
    net::SimNetwork& net, net::NodeId client_node, net::Address control_addr,
    int timeout_ms) {
  auto socket = net.open(client_node);
  return [socket = std::move(socket), control_addr,
          timeout_ms](util::ByteSpan request) -> util::Bytes {
    socket->send_to(control_addr, request);
    auto response = socket->recv(timeout_ms);
    if (!response) {
      throw core::ControlError("control request timed out");
    }
    return std::move(response->payload);
  };
}

}  // namespace rapidware::proxy
