// Network-backed endpoints — the paper's EndPointSocketReader and
// EndPointSocketWriter: adapters between SimNetwork datagram sockets and
// the chain's packet endpoints.
#pragma once

#include <atomic>
#include <memory>

#include "core/endpoint.h"
#include "net/sim_network.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::proxy {

/// PacketSource over a bound socket; each datagram payload is one packet.
class SocketPacketSource final : public core::PacketSource {
 public:
  explicit SocketPacketSource(std::shared_ptr<net::SimSocket> socket);

  std::optional<util::Bytes> next_packet() override;
  void interrupt() override;

  net::SimSocket& socket() { return *socket_; }

 private:
  std::shared_ptr<net::SimSocket> socket_;
  std::atomic<bool> interrupted_{false};
};

/// PacketSink that sends every packet to a destination (unicast or
/// multicast), as the proxy's WirelessSender/WiredSender objects do. The
/// destination is retargetable at run time — the hook for device handoff
/// ("the application is handed off from one computing device to another",
/// paper Section 2).
class SocketPacketSink final : public core::PacketSink {
 public:
  SocketPacketSink(std::shared_ptr<net::SimSocket> socket, net::Address dst);

  void deliver(util::ByteSpan packet) override;

  /// Atomically redirects subsequent packets to a new destination.
  void set_destination(net::Address dst);
  net::Address destination() const;

  net::SimSocket& socket() { return *socket_; }

 private:
  const std::shared_ptr<net::SimSocket> socket_;
  mutable rw::Mutex mu_{"proxy/socket_sink", rw::lockrank::kSocketSink};
  net::Address dst_ RW_GUARDED_BY(mu_);
};

/// Builds the endpoint pair for a proxy leg: reads datagrams arriving on
/// `in`, forwards processed packets to `out_dst` via `out`. The returned
/// sink allows retargeting the egress (device handoff).
struct SocketEndpoints {
  std::shared_ptr<core::Filter> head;
  std::shared_ptr<core::Filter> tail;
  std::shared_ptr<SocketPacketSink> sink;
};
SocketEndpoints make_socket_endpoints(std::shared_ptr<net::SimSocket> in,
                                      std::shared_ptr<net::SimSocket> out,
                                      net::Address out_dst);

}  // namespace rapidware::proxy
