// FleetSim: the 10,000-station closed-loop sweep on virtual time.
//
// Scale is the point. The SimNetwork/WirelessLan stack simulates a handful
// of stations with real threads, real sockets, and mutex-guarded loss
// models — perfect for integration tests, hopeless for 10^4 stations times
// hours of audio. FleetSim keeps the *models* (the calibrated WaveLAN path
// loss curve, Gilbert-Elliott burst loss with the WlanConfig burst shape,
// the office-to-conference mobility trace, the raplets::FecPolicy decision
// core) but strips the machinery: per-station loss state is inlined and
// lock-free, all packets of a control tick are batched, and the whole fleet
// advances on one sim::VirtualClock event per tick. 10,000 stations x one
// virtual hour x 50 pkt/s is ~1.8e9 channel draws and finishes in seconds.
//
// Determinism contract: one seed fans out (util::Rng::split) into one
// stream per station in construction order; the tick event processes
// stations in index order on the single driving thread; mobility and
// path-loss math are pure. Two runs with the same FleetConfig therefore
// produce byte-identical STATS dumps (stats_text()) and action traces —
// asserted by the sim_determinism_a/_b ctest cases and the CI
// sim-determinism job.
//
// Closed loop: each station owns a raplets::FecPolicy fed once per tick
// with that tick's observed channel loss. Decisions take effect at FEC
// group boundaries, exactly like a live fec-encode insert/retune/remove
// through the FilterChain path (which AdaptiveFecController drives and
// tests/fec_controller_test.cpp proves byte-exact).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/flow_classifier.h"
#include "obs/metrics.h"
#include "raplets/fec_policy.h"
#include "sim/virtual_clock.h"
#include "util/rng.h"
#include "wireless/mobility.h"
#include "wireless/path_loss.h"

namespace rapidware::sim {

struct FleetConfig {
  std::size_t stations = 10'000;
  std::uint64_t seed = 0x5eedf1eeULL;

  /// Audio workload: the paper's 20 ms packetization.
  double packet_rate_hz = 50.0;
  /// Control cadence: mobility/channel retune + one FecPolicy update per
  /// station per tick. Must divide packets evenly (rate * tick in whole
  /// packets).
  util::Micros tick_us = 1'000'000;

  /// Static stations sit here — the paper's 25 m measurement point
  /// (~1.46% raw loss).
  double base_distance_m = 25.0;
  /// Fraction of stations that walk office -> conference room.
  double mobile_fraction = 0.0;
  double near_m = 5.0;
  double far_m = 35.0;
  /// Mobile stations cycle: dwell at near_m, walk out over walk_s, dwell at
  /// far_m, walk back — so channels recover as well as degrade.
  double dwell_s = 300.0;
  double walk_s = 60.0;
  /// Mobile station i starts its walk with a deterministic per-station
  /// phase in [0, stagger_s), so departures spread over the run.
  double stagger_s = 1800.0;

  /// Burst shape, matching wireless::WlanConfig defaults.
  double mean_burst_len = 1.2;
  double loss_in_bad = 0.5;

  /// The closed loop. Disable to measure the uncontrolled baseline.
  bool controller_enabled = true;
  raplets::FecPolicyConfig policy;

  /// Per-flow classification (docs/flow_classification.md): each station is
  /// one flow keyed {station, "audio", loss regime}; every tick the regime
  /// is derived from the station's smoothed loss (raw tick loss when the
  /// controller is off) and, on a regime change, the flow re-resolves
  /// against the classifier's rule table — the fleet-scale version of a
  /// proxy re-keying a flow. Strictly opt-in: the default keeps stats
  /// byte-identical to a pre-classifier fleet (the pinned determinism
  /// hash). The classifier runs unbound (no metrics scope), so resolution
  /// never reads a wall clock and stats stay a pure function of the seed.
  bool classify_flows = false;

  wireless::PathLossModel path_loss;  // default-initialized = wavelan_model
  std::size_t trace_capacity = 128;

  FleetConfig();
};

class FleetSim {
 public:
  /// Attaches to `clock` (not owned) and arms the per-tick event; the first
  /// tick fires one tick_us after the current virtual time. Other events
  /// co-scheduled on the same clock interleave deterministically.
  FleetSim(VirtualClock& clock, FleetConfig config);

  /// Convenience: clock.run_for(dt). All ticks inside fire in order.
  void run_for(util::Micros dt) { clock_->run_for(dt); }

  const FleetConfig& config() const noexcept { return config_; }
  util::Micros now() const { return clock_->now(); }

  // Aggregates (data = payload packets; air = everything incl. parity).
  std::uint64_t data_sent() const;
  std::uint64_t data_delivered() const;
  double received_rate() const;  // data_delivered / data_sent
  double raw_loss_rate() const;  // air_dropped / air_sent
  double fec_overhead() const;   // air_sent / data_sent
  std::uint64_t inserts() const noexcept { return inserts_; }
  std::uint64_t retunes() const noexcept { return retunes_; }
  std::uint64_t removes() const noexcept { return removes_; }
  std::size_t active_fec_stations() const;
  std::uint64_t ticks() const noexcept { return ticks_; }

  // --- Flow classification (config.classify_flows) -----------------------

  /// The rule table stations resolve against. Seeded with a three-regime
  /// default (clean -> passthrough, degraded -> fec-light, severe ->
  /// fec-heavy); callers may edit it before running. Meaningless unless
  /// classify_flows is set.
  core::FlowClassifier& classifier() noexcept { return classifier_; }

  /// Station `i`'s current regime / resolved chain spec (spec is null until
  /// the station's first classification).
  core::LossRegime station_regime(std::size_t i) const;
  core::ChainSpecRef station_spec(std::size_t i) const;

  /// Lifetime count of flow re-keyings (regime changes, incl. the initial
  /// classification of every station).
  std::uint64_t reclassifications() const noexcept {
    return reclassifications_;
  }

  /// Stations currently in `regime`.
  std::size_t stations_in_regime(core::LossRegime regime) const;

  /// The full per-station STATS snapshot (obs::Entry list, name-sorted by
  /// construction): fleet/config/*, fleet/station/NNNNN/*, fleet/summary/*,
  /// and the bounded controller action trace. Deterministic per seed.
  obs::Snapshot stats_snapshot() const;

  /// obs::render(stats_snapshot()) — the byte-comparable STATS dump.
  std::string stats_text() const;

  /// Oldest retained controller actions ("t=<us> station=N insert
  /// fec(6,4) loss=..."), capped at config.trace_capacity.
  const std::vector<std::string>& action_trace() const noexcept {
    return trace_;
  }

 private:
  struct Station {
    util::Rng rng;
    raplets::FecPolicy policy;
    double distance_m = 0.0;
    // Inline Gilbert-Elliott state (single-threaded: no lock).
    double p_gb = 0.0;
    double p_bg = 1.0;
    bool bad = false;
    // Mobility: < 0 marks a static station; otherwise the virtual time at
    // which this station's copy of the shared walk trace starts.
    util::Micros walk_start = -1;
    // FEC framing: adopted at group boundaries from the policy's desires.
    std::uint32_t cur_n = 0;  // 0 = FEC off
    std::uint32_t cur_k = 0;
    std::uint32_t group_pos = 0;
    std::uint32_t group_drops = 0;
    std::uint32_t group_data_drops = 0;
    // Flow classification (only maintained when config.classify_flows).
    core::LossRegime regime = core::LossRegime::kClean;
    bool classified = false;
    core::ChainSpecRef spec;
    // Lifetime counters.
    std::uint64_t data_sent = 0;
    std::uint64_t data_delivered = 0;
    std::uint64_t air_sent = 0;
    std::uint64_t air_dropped = 0;
    // Per-tick window, reset after each policy update.
    std::uint32_t tick_sent = 0;
    std::uint32_t tick_dropped = 0;

    Station(util::Rng r, const raplets::FecPolicyConfig& p)
        : rng(r), policy(p) {}
  };

  void tick(util::Micros now);
  void classify_station(std::size_t i, double loss_basis);
  double walk_distance(util::Micros elapsed) const;
  void retune_channel(Station& s) const;
  void station_packets(Station& s, int count);
  void flush_partial_group(const Station& s, std::uint64_t& extra_sent,
                           std::uint64_t& extra_delivered) const;

  VirtualClock* clock_;
  const FleetConfig config_;
  int packets_per_tick_ = 0;
  wireless::WaypointWalk walk_;
  // Fleet-private spec table: sim determinism must not depend on what other
  // code interned in the process-global table.
  core::FilterSpecTable spec_table_;
  core::FlowClassifier classifier_{&spec_table_};
  std::uint64_t reclassifications_ = 0;
  std::vector<Station> stations_;
  std::vector<std::string> trace_;
  std::uint64_t trace_dropped_ = 0;  // actions beyond trace_capacity
  std::uint64_t inserts_ = 0;
  std::uint64_t retunes_ = 0;
  std::uint64_t removes_ = 0;
  std::uint64_t ticks_ = 0;
  PeriodicTask task_;  // last member: armed after everything else is ready
};

}  // namespace rapidware::sim
