#include "sim/fleet.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace rapidware::sim {

namespace {

std::string pad5(std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%05llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

FleetConfig::FleetConfig() : path_loss(wireless::wavelan_model()) {
  // Fleet default: a slower EWMA than the live-chain controller. At
  // 50 pkt/s a tick's loss sample has 2% granularity, so ~1.5% channels
  // produce frequent zero-loss ticks; alpha 0.3 then decays below the
  // remove threshold on a ~6-tick clean run (p ≈ 1% per tick) and the
  // fleet flaps FEC off exactly where the paper keeps it on. Alpha 0.1
  // needs ~19 consecutive clean ticks (p ≈ 1e-6): stations at the 25 m
  // measurement point hold FEC steadily, matching Figure 7.
  policy.alpha = 0.1;
}

FleetSim::FleetSim(VirtualClock& clock, FleetConfig config)
    : clock_(&clock),
      config_(std::move(config)),
      walk_(wireless::WaypointWalk::office_to_conference(
          config_.near_m, config_.far_m, config_.dwell_s, config_.walk_s)),
      task_(clock, config_.tick_us,
            [this](util::Micros now) { tick(now); }) {
  if (config_.stations == 0) {
    throw std::invalid_argument("FleetSim: need at least one station");
  }
  if (config_.tick_us <= 0 || config_.packet_rate_hz <= 0.0) {
    throw std::invalid_argument("FleetSim: positive tick and packet rate");
  }
  if (config_.mobile_fraction < 0.0 || config_.mobile_fraction > 1.0) {
    throw std::invalid_argument("FleetSim: mobile_fraction in [0, 1]");
  }
  if (config_.loss_in_bad <= 0.0 || config_.loss_in_bad > 1.0) {
    throw std::invalid_argument("FleetSim: loss_in_bad in (0, 1]");
  }
  packets_per_tick_ = static_cast<int>(
      config_.packet_rate_hz * util::micros_to_seconds(config_.tick_us) + 0.5);
  if (packets_per_tick_ < 1) {
    throw std::invalid_argument("FleetSim: tick shorter than one packet");
  }

  if (config_.classify_flows) {
    // Default three-regime table; the worked example of
    // docs/flow_classification.md at fleet scale. Callers may retune it via
    // classifier() before running.
    core::FlowRule clean;
    clean.name = "clean-passthrough";
    clean.priority = 10;
    clean.regime = core::LossRegime::kClean;
    clean.chain.name = "passthrough";
    classifier_.add_rule(std::move(clean));

    core::FlowRule degraded;
    degraded.name = "degraded-fec";
    degraded.priority = 20;
    degraded.regime = core::LossRegime::kDegraded;
    degraded.chain.name = "fec-light";
    degraded.chain.stages = {{"fec-encode", {{"n", "6"}, {"k", "4"}}}};
    classifier_.add_rule(std::move(degraded));

    core::FlowRule severe;
    severe.name = "severe-fec";
    severe.priority = 30;
    severe.regime = core::LossRegime::kSevere;
    severe.chain.name = "fec-heavy";
    severe.chain.stages = {{"fec-encode", {{"n", "8"}, {"k", "4"}}},
                           {"interleave", {{"rows", "4"}, {"depth", "4"}}}};
    classifier_.add_rule(std::move(severe));
  }

  // One root seed fans out into per-station streams in index order — the
  // whole fleet's randomness is a pure function of config_.seed.
  util::Rng root(config_.seed);
  const std::size_t mobile_count = static_cast<std::size_t>(
      config_.mobile_fraction * static_cast<double>(config_.stations) + 0.5);
  const util::Micros stagger_us = std::max<util::Micros>(
      util::seconds_to_micros(config_.stagger_s), 1);
  stations_.reserve(config_.stations);
  for (std::size_t i = 0; i < config_.stations; ++i) {
    stations_.emplace_back(root.split(), config_.policy);
    Station& s = stations_.back();
    if (i < mobile_count) {
      s.walk_start = static_cast<util::Micros>(
          s.rng.next_below(static_cast<std::uint64_t>(stagger_us)));
      s.distance_m = walk_distance(-s.walk_start);
    } else {
      s.distance_m = config_.base_distance_m;
    }
    s.p_bg = 1.0 / std::max(1.0, config_.mean_burst_len);
    retune_channel(s);
  }
}

double FleetSim::walk_distance(util::Micros elapsed) const {
  // The shared WaypointWalk trace is one-way (office -> conference); the
  // fleet cycles it: dwell near, walk out, dwell far, walk back, repeat —
  // so every mobile station's channel both degrades AND recovers, driving
  // the controller's remove path as well as its insert path.
  if (elapsed < 0) return walk_.distance_at(elapsed);  // not yet departed
  const util::Micros dwell = util::seconds_to_micros(config_.dwell_s);
  const util::Micros walk = util::seconds_to_micros(config_.walk_s);
  const util::Micros cycle = 2 * (dwell + walk);
  util::Micros e = elapsed % cycle;
  if (e < dwell + walk) return walk_.distance_at(e);  // near dwell + out
  e -= dwell + walk;
  if (e < dwell) return config_.far_m;  // conference-room dwell
  return walk_.distance_at(dwell + walk - (e - dwell));  // mirrored return
}

void FleetSim::retune_channel(Station& s) const {
  // Same math as net::GilbertElliottLoss::with_average, inlined: the burst
  // shape (p_bg, loss_in_bad) is fixed, the entry rate tracks the path-loss
  // model at the station's current distance.
  const double target = std::clamp(config_.path_loss.loss_at(s.distance_m),
                                   0.0, config_.loss_in_bad * 0.999);
  const double pi_b = target / config_.loss_in_bad;
  s.p_gb = pi_b >= 1.0 ? 1.0 : std::min(1.0, pi_b * s.p_bg / (1.0 - pi_b));
}

void FleetSim::station_packets(Station& s, int count) {
  const double loss_in_bad = config_.loss_in_bad;
  for (int p = 0; p < count; ++p) {
    if (s.group_pos == 0) {
      // Group boundary: adopt the policy's current desire, exactly like a
      // live fec-encode insert/retune/remove between groups.
      const bool want = s.policy.active();
      s.cur_n = want ? static_cast<std::uint32_t>(s.policy.n()) : 0;
      s.cur_k = want ? static_cast<std::uint32_t>(s.policy.k()) : 0;
    }
    // Gilbert-Elliott step (transition, then state-dependent drop), same
    // order as net::GilbertElliottLoss::drop.
    if (s.bad) {
      if (s.rng.next_double() < s.p_bg) s.bad = false;
    } else if (s.rng.next_double() < s.p_gb) {
      s.bad = true;
    }
    const bool dropped = s.bad && s.rng.next_double() < loss_in_bad;
    ++s.air_sent;
    ++s.tick_sent;
    if (dropped) {
      ++s.air_dropped;
      ++s.tick_dropped;
    }
    if (s.cur_n == 0) {
      ++s.data_sent;
      if (!dropped) ++s.data_delivered;
      continue;
    }
    // Systematic FEC(n,k): the first k packets of a group are data, the
    // rest parity. Any k received packets recover all k data packets.
    const bool is_data = s.group_pos < s.cur_k;
    ++s.group_pos;
    if (dropped) {
      ++s.group_drops;
      if (is_data) ++s.group_data_drops;
    }
    if (s.group_pos == s.cur_n) {
      s.data_sent += s.cur_k;
      s.data_delivered += s.group_drops <= s.cur_n - s.cur_k
                              ? s.cur_k
                              : s.cur_k - s.group_data_drops;
      s.group_pos = 0;
      s.group_drops = 0;
      s.group_data_drops = 0;
    }
  }
}

void FleetSim::tick(util::Micros now) {
  ++ticks_;
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    Station& s = stations_[i];
    if (s.walk_start >= 0) {
      const double d = walk_distance(now - s.walk_start);
      if (d != s.distance_m) {
        s.distance_m = d;
        retune_channel(s);
      }
    }
    station_packets(s, packets_per_tick_);
    const double sample =
        s.tick_sent == 0 ? 0.0
                         : static_cast<double>(s.tick_dropped) /
                               static_cast<double>(s.tick_sent);
    s.tick_sent = 0;
    s.tick_dropped = 0;
    if (!config_.controller_enabled) {
      // No smoothed estimate without the policy loop; classify (if asked)
      // on the raw tick sample.
      if (config_.classify_flows) classify_station(i, sample);
      continue;
    }
    const raplets::FecPolicy::Decision d = s.policy.update(now, sample);
    if (config_.classify_flows) classify_station(i, s.policy.smoothed());
    if (d.action == raplets::FecPolicy::Action::kNone) continue;
    const char* verb = nullptr;
    switch (d.action) {
      case raplets::FecPolicy::Action::kInsert:
        ++inserts_;
        verb = "insert";
        break;
      case raplets::FecPolicy::Action::kRetune:
        ++retunes_;
        verb = "retune";
        break;
      case raplets::FecPolicy::Action::kRemove:
        ++removes_;
        verb = "remove";
        break;
      case raplets::FecPolicy::Action::kNone:
        break;
    }
    if (trace_.size() < config_.trace_capacity) {
      std::ostringstream os;
      os << "t=" << now << " station=" << i << ' ' << verb;
      if (d.action != raplets::FecPolicy::Action::kRemove) {
        os << " fec(" << d.n << ',' << d.k << ')';
      }
      os << " loss=" << obs::format_value(d.smoothed);
      trace_.push_back(os.str());
    } else {
      ++trace_dropped_;
    }
  }
}

void FleetSim::classify_station(std::size_t i, double loss_basis) {
  Station& s = stations_[i];
  const core::LossRegime regime = core::regime_for_loss(loss_basis);
  if (s.classified && regime == s.regime) return;
  // Regime change re-keys the flow: resolve the new key exactly once, like
  // a proxy's flow table seeing the first packet of the re-keyed flow.
  s.regime = regime;
  s.classified = true;
  s.spec = classifier_.resolve(
      {static_cast<std::uint32_t>(i), "audio", regime});
  ++reclassifications_;
}

core::LossRegime FleetSim::station_regime(std::size_t i) const {
  return stations_.at(i).regime;
}

core::ChainSpecRef FleetSim::station_spec(std::size_t i) const {
  return stations_.at(i).spec;
}

std::size_t FleetSim::stations_in_regime(core::LossRegime regime) const {
  std::size_t n = 0;
  for (const Station& s : stations_) {
    n += (s.classified && s.regime == regime) ? 1 : 0;
  }
  return n;
}

void FleetSim::flush_partial_group(const Station& s, std::uint64_t& extra_sent,
                                   std::uint64_t& extra_delivered) const {
  // Mid-group data packets can no longer be repaired (their parity never
  // made it onto the air), so they count as plain transmissions.
  if (s.cur_n == 0 || s.group_pos == 0) return;
  const std::uint32_t data = std::min(s.group_pos, s.cur_k);
  extra_sent += data;
  extra_delivered += data - s.group_data_drops;
}

std::uint64_t FleetSim::data_sent() const {
  std::uint64_t total = 0, extra = 0, unused = 0;
  for (const Station& s : stations_) {
    total += s.data_sent;
    flush_partial_group(s, extra, unused);
  }
  return total + extra;
}

std::uint64_t FleetSim::data_delivered() const {
  std::uint64_t total = 0, unused = 0, extra = 0;
  for (const Station& s : stations_) {
    total += s.data_delivered;
    flush_partial_group(s, unused, extra);
  }
  return total + extra;
}

double FleetSim::received_rate() const {
  const std::uint64_t sent = data_sent();
  if (sent == 0) return 1.0;
  return static_cast<double>(data_delivered()) / static_cast<double>(sent);
}

double FleetSim::raw_loss_rate() const {
  std::uint64_t sent = 0, dropped = 0;
  for (const Station& s : stations_) {
    sent += s.air_sent;
    dropped += s.air_dropped;
  }
  if (sent == 0) return 0.0;
  return static_cast<double>(dropped) / static_cast<double>(sent);
}

double FleetSim::fec_overhead() const {
  const std::uint64_t data = data_sent();
  if (data == 0) return 1.0;
  std::uint64_t air = 0;
  for (const Station& s : stations_) air += s.air_sent;
  return static_cast<double>(air) / static_cast<double>(data);
}

std::size_t FleetSim::active_fec_stations() const {
  std::size_t n = 0;
  for (const Station& s : stations_) n += s.policy.active() ? 1 : 0;
  return n;
}

obs::Snapshot FleetSim::stats_snapshot() const {
  obs::Snapshot out;
  out.reserve(stations_.size() * 9 + trace_.size() + 24);
  const auto u64 = [](std::uint64_t v) { return std::to_string(v); };

  // Entries are emitted pre-sorted (classifier < config < controller <
  // station < summary; stations and trace indexes zero-padded), matching
  // Registry::snapshot()'s name ordering. Classifier entries (and the
  // per-station "regime" line) appear only when classification is on, so
  // a default-config fleet renders byte-identically to a pre-classifier
  // one — the pinned determinism hash depends on it.
  if (config_.classify_flows) {
    out.push_back({"fleet/classifier/fallback_hits",
                   u64(classifier_.fallback_hits())});
    out.push_back({"fleet/classifier/reclassifications",
                   u64(reclassifications_)});
    out.push_back({"fleet/classifier/regime/clean",
                   u64(stations_in_regime(core::LossRegime::kClean))});
    out.push_back({"fleet/classifier/regime/degraded",
                   u64(stations_in_regime(core::LossRegime::kDegraded))});
    out.push_back({"fleet/classifier/regime/severe",
                   u64(stations_in_regime(core::LossRegime::kSevere))});
    std::vector<std::string> rule_names;
    for (const core::FlowRule& rule : classifier_.rules()) {
      rule_names.push_back(rule.name);
    }
    std::sort(rule_names.begin(), rule_names.end());
    for (const std::string& name : rule_names) {
      out.push_back({"fleet/classifier/rule/" + name + "/hits",
                     u64(classifier_.hits(name))});
    }
    out.push_back({"fleet/classifier/specs", u64(spec_table_.size())});
  }
  out.push_back({"fleet/config/controller",
                 u64(config_.controller_enabled ? 1 : 0)});
  out.push_back({"fleet/config/packets_per_tick",
                 std::to_string(packets_per_tick_)});
  out.push_back({"fleet/config/seed", u64(config_.seed)});
  out.push_back({"fleet/config/stations", u64(config_.stations)});
  out.push_back({"fleet/config/tick_us", u64(static_cast<std::uint64_t>(
                                             config_.tick_us))});

  for (std::size_t i = 0; i < trace_.size(); ++i) {
    out.push_back({"fleet/controller/trace." + pad5(i), trace_[i]});
  }

  for (std::size_t i = 0; i < stations_.size(); ++i) {
    const Station& s = stations_[i];
    std::uint64_t extra_sent = 0, extra_delivered = 0;
    flush_partial_group(s, extra_sent, extra_delivered);
    const std::string p = "fleet/station/" + pad5(i) + "/";
    out.push_back({p + "air_dropped", u64(s.air_dropped)});
    out.push_back({p + "air_sent", u64(s.air_sent)});
    out.push_back({p + "bad", s.bad ? "1" : "0"});
    out.push_back({p + "data_delivered",
                   u64(s.data_delivered + extra_delivered)});
    out.push_back({p + "data_sent", u64(s.data_sent + extra_sent)});
    out.push_back({p + "distance_m", obs::format_value(s.distance_m)});
    out.push_back({p + "fec_k", u64(s.cur_k)});
    out.push_back({p + "fec_n", u64(s.cur_n)});
    if (config_.classify_flows) {
      // "regime" sorts between "fec_n" and "smoothed_loss".
      out.push_back({p + "regime", core::to_string(s.regime)});
    }
    out.push_back({p + "smoothed_loss",
                   obs::format_value(s.policy.smoothed())});
  }

  out.push_back({"fleet/summary/active_fec_stations",
                 u64(active_fec_stations())});
  out.push_back({"fleet/summary/data_delivered", u64(data_delivered())});
  out.push_back({"fleet/summary/data_sent", u64(data_sent())});
  out.push_back({"fleet/summary/fec_overhead",
                 obs::format_value(fec_overhead())});
  out.push_back({"fleet/summary/inserts", u64(inserts_)});
  out.push_back({"fleet/summary/raw_loss_rate",
                 obs::format_value(raw_loss_rate())});
  out.push_back({"fleet/summary/received_rate",
                 obs::format_value(received_rate())});
  out.push_back({"fleet/summary/removes", u64(removes_)});
  out.push_back({"fleet/summary/retunes", u64(retunes_)});
  out.push_back({"fleet/summary/ticks", u64(ticks_)});
  out.push_back({"fleet/summary/trace_dropped", u64(trace_dropped_)});
  return out;
}

std::string FleetSim::stats_text() const {
  return obs::render(stats_snapshot());
}

}  // namespace rapidware::sim
