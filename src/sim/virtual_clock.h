// Discrete-event virtual time: the engine that turns the simulation layer
// into deterministic-simulation-testing infrastructure.
//
// util::SimClock (src/util/clock.h) is a bare counter — whoever advances it
// decides what "happened" in between, which is fine for open-loop tests but
// useless for closed-loop ones: a controller that must poll STATS every
// virtual second needs something to *run it* at the right instants.
// VirtualClock adds the missing half: an ordered event queue. Callbacks are
// scheduled at absolute virtual times and executed, in order, by whichever
// thread drives run_until()/run_for(); the clock never advances past an
// unexecuted due event.
//
// Determinism contract (docs/simulation.md):
//   * Events fire in (time, seq) order, where seq is a monotonic counter
//     assigned at schedule time. Two events scheduled for the same instant
//     therefore fire in the order they were scheduled — ties never depend
//     on heap layout, hashing, or thread timing.
//   * With a single driving thread (the normal arrangement: everything
//     downstream of run_until() happens on the caller), the same schedule
//     of callbacks produces the same interleaving every run. That is what
//     lets a 10,000-station sweep assert byte-identical STATS dumps.
//   * Scheduling is thread-safe (a worker may post an event while the
//     driver runs), but cross-thread schedules race the driver by nature;
//     deterministic tests schedule only from the driving thread (usually
//     from inside callbacks).
//
// No wall-clock calls, ever: rw_lint RW007 bans steady_clock::now() and
// sleep_for in src/sim/ precisely so virtual hours stay wall-clock-free.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>

#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::sim {

class VirtualClock final : public util::Clock {
 public:
  using Callback = std::function<void()>;

  /// Handle for cancellation. The (at, seq) pair is the event's identity in
  /// the queue; seq alone is globally unique.
  struct EventId {
    util::Micros at = 0;
    std::uint64_t seq = 0;
  };

  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// Current virtual time. Starts at 0.
  util::Micros now() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now(): the
  /// past is immutable, so a stale timestamp fires at the current instant).
  EventId schedule_at(util::Micros at, Callback fn);

  /// Schedules `fn` `dt` microseconds from now (dt < 0 clamps to now).
  EventId schedule_after(util::Micros dt, Callback fn);

  /// Cancels a pending event. Returns false when the event already fired,
  /// was cancelled before, or is executing right now (cancellation never
  /// interrupts a running callback).
  bool cancel(const EventId& id);

  /// Runs every event due at or before `t` (in (time, seq) order), then
  /// advances now() to `t`. Callbacks run on the calling thread with no
  /// internal lock held, so they may schedule and cancel freely. Events a
  /// callback schedules within [now, t] are executed in the same call.
  /// Returns the number of callbacks executed.
  std::size_t run_until(util::Micros t);

  /// run_until(now() + dt); dt must be >= 0.
  std::size_t run_for(util::Micros dt);

  /// Runs the single earliest pending event, advancing now() to its time.
  /// Returns false (and leaves time untouched) when the queue is empty.
  bool step();

  /// Number of events waiting in the queue.
  std::size_t pending() const;

  /// Virtual time of the earliest pending event, or util::Micros max when
  /// the queue is empty.
  util::Micros next_event_at() const;

 private:
  using Key = std::pair<util::Micros, std::uint64_t>;  // (time, seq)

  /// Pops the earliest event due at or before `t` and advances now() to its
  /// time; returns nullptr when none is due.
  Callback pop_due(util::Micros t);

  mutable rw::Mutex mu_{"sim/clock", rw::lockrank::kSimClock};
  std::map<Key, Callback> events_ RW_GUARDED_BY(mu_);
  std::uint64_t next_seq_ RW_GUARDED_BY(mu_) = 0;
  std::atomic<util::Micros> now_{0};
};

/// Self-rescheduling periodic event: calls fn(now) every `period` starting
/// at `first_at` (default: one period from now). stop() is safe from inside
/// the callback. The task stops automatically when destroyed.
class PeriodicTask {
 public:
  using Fn = std::function<void(util::Micros now)>;

  PeriodicTask(VirtualClock& clock, util::Micros period, Fn fn);
  PeriodicTask(VirtualClock& clock, util::Micros period, Fn fn,
               util::Micros first_at);
  ~PeriodicTask() { stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool stopped() const;

 private:
  struct State;
  static void fire(const std::shared_ptr<State>& st);
  static void arm(const std::shared_ptr<State>& st, util::Micros first);
  std::shared_ptr<State> state_;
};

}  // namespace rapidware::sim
