#include "util/lock_rank.h"
#include "sim/virtual_clock.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rapidware::sim {

VirtualClock::EventId VirtualClock::schedule_at(util::Micros at, Callback fn) {
  if (!fn) throw std::invalid_argument("VirtualClock: null callback");
  rw::MutexLock lk(mu_);
  const util::Micros t = std::max(at, now_.load(std::memory_order_relaxed));
  const std::uint64_t seq = next_seq_++;
  events_.emplace(Key{t, seq}, std::move(fn));
  return EventId{t, seq};
}

VirtualClock::EventId VirtualClock::schedule_after(util::Micros dt,
                                                   Callback fn) {
  const util::Micros base = now();
  // Saturate instead of wrapping on absurd offsets.
  const util::Micros at =
      dt > std::numeric_limits<util::Micros>::max() - base ?
          std::numeric_limits<util::Micros>::max()
          : base + std::max<util::Micros>(dt, 0);
  return schedule_at(at, std::move(fn));
}

bool VirtualClock::cancel(const EventId& id) {
  rw::MutexLock lk(mu_);
  return events_.erase(Key{id.at, id.seq}) > 0;
}

VirtualClock::Callback VirtualClock::pop_due(util::Micros t) {
  rw::MutexLock lk(mu_);
  auto it = events_.begin();
  if (it == events_.end() || it->first.first > t) return nullptr;
  Callback fn = std::move(it->second);
  // Advance time to the event before running it, so the callback's now()
  // (and anything it schedules "after 0") lands at the event's instant.
  now_.store(it->first.first, std::memory_order_release);
  events_.erase(it);
  return fn;
}

std::size_t VirtualClock::run_until(util::Micros t) {
  std::size_t ran = 0;
  while (Callback fn = pop_due(t)) {
    fn();  // outside the lock: callbacks may schedule/cancel
    ++ran;
  }
  // The queue holds nothing due <= t; the interval is fully simulated.
  util::Micros cur = now_.load(std::memory_order_relaxed);
  while (cur < t &&
         !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel)) {
  }
  return ran;
}

std::size_t VirtualClock::run_for(util::Micros dt) {
  if (dt < 0) throw std::invalid_argument("VirtualClock::run_for: dt < 0");
  return run_until(now() + dt);
}

bool VirtualClock::step() {
  Callback fn = pop_due(std::numeric_limits<util::Micros>::max());
  if (!fn) return false;
  fn();
  return true;
}

std::size_t VirtualClock::pending() const {
  rw::MutexLock lk(mu_);
  return events_.size();
}

util::Micros VirtualClock::next_event_at() const {
  rw::MutexLock lk(mu_);
  if (events_.empty()) return std::numeric_limits<util::Micros>::max();
  return events_.begin()->first.first;
}

// ---------------------------------------------------------------------------
// PeriodicTask

struct PeriodicTask::State {
  VirtualClock* clock;
  util::Micros period;
  Fn fn;
  mutable rw::Mutex mu{"sim/periodic_task", rw::lockrank::kPeriodicTask};
  bool stopped RW_GUARDED_BY(mu) = false;
  VirtualClock::EventId current RW_GUARDED_BY(mu);
};

void PeriodicTask::fire(const std::shared_ptr<PeriodicTask::State>& st) {
  {
    rw::MutexLock lk(st->mu);
    if (st->stopped) return;
  }
  const util::Micros at = st->clock->now();
  st->fn(at);
  // Reschedule unless the callback stopped the task.
  rw::MutexLock lk(st->mu);
  if (st->stopped) return;
  st->current = st->clock->schedule_at(
      at + st->period, [st] { fire(st); });
}

void PeriodicTask::arm(const std::shared_ptr<PeriodicTask::State>& st,
                       util::Micros first) {
  rw::MutexLock lk(st->mu);
  st->current = st->clock->schedule_at(first, [st] { fire(st); });
}

PeriodicTask::PeriodicTask(VirtualClock& clock, util::Micros period, Fn fn)
    : PeriodicTask(clock, period, std::move(fn), clock.now() + period) {}

PeriodicTask::PeriodicTask(VirtualClock& clock, util::Micros period, Fn fn,
                           util::Micros first_at)
    : state_(std::make_shared<State>()) {
  if (period <= 0) {
    throw std::invalid_argument("PeriodicTask: period must be > 0");
  }
  if (!fn) throw std::invalid_argument("PeriodicTask: null callback");
  state_->clock = &clock;
  state_->period = period;
  state_->fn = std::move(fn);
  arm(state_, first_at);
}

void PeriodicTask::stop() {
  if (!state_) return;
  VirtualClock::EventId id;
  {
    rw::MutexLock lk(state_->mu);
    if (state_->stopped) return;
    state_->stopped = true;
    id = state_->current;
  }
  state_->clock->cancel(id);
}

bool PeriodicTask::stopped() const {
  rw::MutexLock lk(state_->mu);
  return state_->stopped;
}

}  // namespace rapidware::sim
