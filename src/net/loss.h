// Packet-loss models for simulated channels.
//
// The evaluation needs both memoryless loss (calibration, sweeps) and the
// bursty loss characteristic of wireless LANs, which the literature models
// with the Gilbert-Elliott two-state chain. All models are thread-safe:
// the wireless layer retunes loss rates while traffic flows (user mobility).
#pragma once

#include <memory>
#include <vector>

#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace rapidware::net {

class LossModel {
 public:
  virtual ~LossModel() = default;

  /// Returns true if the packet should be dropped.
  virtual bool drop(util::Rng& rng) = 0;

  /// Long-run average loss probability (for reporting).
  virtual double average_loss() const = 0;

  /// Retunes the model to a new average loss probability, preserving its
  /// burst structure. Default: unsupported models ignore the call.
  virtual void set_average_loss(double p) { (void)p; }
};

/// No loss at all.
class PerfectChannel final : public LossModel {
 public:
  bool drop(util::Rng&) override { return false; }
  double average_loss() const override { return 0.0; }
};

/// Independent (memoryless) loss with probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);

  bool drop(util::Rng& rng) override;
  double average_loss() const override;
  void set_average_loss(double p) override;

 private:
  mutable rw::Mutex mu_{"net/loss_bernoulli", rw::lockrank::kLossModel};
  double p_ RW_GUARDED_BY(mu_);
};

/// Gilbert-Elliott burst loss: a good state (lossless) and a bad state that
/// drops packets with probability `loss_in_bad`. Transition probabilities
/// control burst length; the stationary bad-state share times loss_in_bad
/// gives the average loss.
class GilbertElliottLoss final : public LossModel {
 public:
  /// Direct parameterization.
  GilbertElliottLoss(double p_good_to_bad, double p_bad_to_good,
                     double loss_in_bad);

  /// Convenience: target average loss with a given mean burst length
  /// (packets spent in the bad state per visit) and bad-state drop rate.
  static std::unique_ptr<GilbertElliottLoss> with_average(
      double average_loss, double mean_burst_len = 4.0,
      double loss_in_bad = 0.75);

  bool drop(util::Rng& rng) override;
  double average_loss() const override;
  void set_average_loss(double p) override;

  bool in_bad_state() const;

 private:
  mutable rw::Mutex mu_{"net/loss_gilbert", rw::lockrank::kLossModel};
  double p_gb_ RW_GUARDED_BY(mu_);
  double p_bg_ RW_GUARDED_BY(mu_);
  double loss_in_bad_ RW_GUARDED_BY(mu_);
  bool bad_ RW_GUARDED_BY(mu_) = false;
};

/// Replays a recorded loss trace (true = drop), looping at the end. Lets
/// benches reproduce an exact loss pattern.
class TraceLoss final : public LossModel {
 public:
  explicit TraceLoss(std::vector<bool> trace);

  bool drop(util::Rng&) override;
  double average_loss() const override;

 private:
  mutable rw::Mutex mu_{"net/loss_trace", rw::lockrank::kLossModel};
  const std::vector<bool> trace_;  // immutable after construction
  std::size_t pos_ RW_GUARDED_BY(mu_) = 0;
};

}  // namespace rapidware::net
