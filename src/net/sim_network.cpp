#include "net/sim_network.h"

#include <chrono>
#include <stdexcept>

namespace rapidware::net {

std::string Address::to_string() const {
  if (is_multicast()) {
    return "mc" + std::to_string(node - kMulticastBase) + ":" +
           std::to_string(port);
  }
  return "n" + std::to_string(node) + ":" + std::to_string(port);
}

// ---------------------------------------------------------------------------
// SimSocket

SimSocket::SimSocket(SimNetwork* net, Address local)
    : net_(net), local_(local) {}

SimSocket::~SimSocket() { close(); }

void SimSocket::send_to(const Address& dst, util::ByteSpan payload) {
  {
    rw::MutexLock lk(mu_);
    if (closed_) throw std::runtime_error("SimSocket::send_to: socket closed");
    ++sent_;
  }
  net_->route(*this, dst, payload);
}

std::optional<Datagram> SimSocket::recv(int timeout_ms) {
  rw::MutexLock lk(mu_);
  const auto ready = [this] {
    mu_.assert_held();
    return closed_ || !queue_.empty();
  };
  if (timeout_ms < 0) {
    cv_.wait(mu_, ready);
  } else if (!cv_.wait_for(mu_, std::chrono::milliseconds(timeout_ms),
                           ready)) {
    return std::nullopt;
  }
  if (queue_.empty()) return std::nullopt;  // closed
  Datagram d = std::move(queue_.front());
  queue_.pop_front();
  ++received_;
  return d;
}

void SimSocket::join(const Address& group) { net_->join_group(group, this); }

void SimSocket::leave(const Address& group) { net_->leave_group(group, this); }

void SimSocket::close() {
  {
    rw::MutexLock lk(mu_);
    if (closed_) return;
    closed_ = true;
  }
  net_->unbind(this);
  cv_.notify_all();
}

bool SimSocket::is_closed() const {
  rw::MutexLock lk(mu_);
  return closed_;
}

std::uint64_t SimSocket::packets_sent() const {
  rw::MutexLock lk(mu_);
  return sent_;
}

std::uint64_t SimSocket::packets_received() const {
  rw::MutexLock lk(mu_);
  return received_;
}

void SimSocket::enqueue(Datagram d) {
  {
    rw::MutexLock lk(mu_);
    if (closed_) return;
    queue_.push_back(std::move(d));
  }
  cv_.notify_one();
}

// ---------------------------------------------------------------------------
// SimNetwork

SimNetwork::SimNetwork(std::shared_ptr<util::Clock> clock, std::uint64_t seed)
    : clock_(clock ? std::move(clock) : std::make_shared<util::WallClock>()),
      rng_(seed) {}

NodeId SimNetwork::add_node(std::string name) {
  rw::MutexLock lk(mu_);
  nodes_.push_back(std::move(name));
  return static_cast<NodeId>(nodes_.size() - 1);
}

std::string SimNetwork::node_name(NodeId id) const {
  // Copy, don't reference: returning `nodes_.at(id)` by const reference
  // handed callers a pointer into a vector that a concurrent add_node() can
  // reallocate the instant this mutex is released.
  rw::MutexLock lk(mu_);
  return nodes_.at(id);
}

std::shared_ptr<SimSocket> SimNetwork::open(NodeId node, std::uint16_t port) {
  rw::MutexLock lk(mu_);
  if (node >= nodes_.size()) {
    throw std::invalid_argument("SimNetwork::open: unknown node");
  }
  if (port == 0) {
    while (bound_.count(Address{node, next_ephemeral_}) != 0) ++next_ephemeral_;
    port = next_ephemeral_++;
  } else if (bound_.count(Address{node, port}) != 0) {
    throw std::invalid_argument("SimNetwork::open: port in use");
  }
  const Address local{node, port};
  auto socket = std::shared_ptr<SimSocket>(new SimSocket(this, local));
  socket->self_ = socket;
  bound_[local] = socket;
  return socket;
}

void SimNetwork::set_channel(NodeId from, NodeId to, ChannelConfig config) {
  rw::MutexLock lk(mu_);
  channels_[{from, to}] =
      std::make_unique<Channel>(std::move(config), rng_.split());
}

Channel* SimNetwork::channel(NodeId from, NodeId to) {
  rw::MutexLock lk(mu_);
  auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : it->second.get();
}

std::uint64_t SimNetwork::datagrams_routed() const {
  rw::MutexLock lk(mu_);
  return routed_;
}

void SimNetwork::route(const SimSocket& from, const Address& dst,
                       util::ByteSpan payload) {
  Datagram d;
  d.src = from.local();
  d.dst = dst;
  d.payload.assign(payload.begin(), payload.end());
  d.sent_at = clock_->now();

  // Snapshot receivers under the lock (pinned via shared_ptr); run channel
  // models and enqueue outside it so slow receivers never serialize the
  // whole fabric and a concurrently destroyed socket is simply skipped.
  std::vector<std::pair<std::shared_ptr<SimSocket>, Channel*>> targets;
  {
    rw::MutexLock lk(mu_);
    ++routed_;
    if (dst.is_multicast()) {
      if (auto it = groups_.find(dst); it != groups_.end()) {
        for (auto& [raw, weak] : it->second) {
          if (raw == &from) continue;  // no loopback to the sender
          auto s = weak.lock();
          if (!s) continue;
          auto ch = channels_.find({d.src.node, s->local().node});
          targets.emplace_back(
              std::move(s), ch == channels_.end() ? nullptr : ch->second.get());
        }
      }
    } else if (auto it = bound_.find(dst); it != bound_.end()) {
      if (auto s = it->second.lock()) {
        auto ch = channels_.find({d.src.node, dst.node});
        targets.emplace_back(
            std::move(s), ch == channels_.end() ? nullptr : ch->second.get());
      }
    }
  }

  for (auto& [socket, channel] : targets) {
    Datagram copy = d;
    copy.deliver_at = d.sent_at;
    if (channel != nullptr) {
      const auto at = channel->transit(payload.size(), d.sent_at);
      if (!at) continue;  // dropped
      copy.deliver_at = *at;
    }
    socket->enqueue(std::move(copy));
  }
}

void SimNetwork::join_group(const Address& group, SimSocket* socket) {
  if (!group.is_multicast()) {
    throw std::invalid_argument("SimSocket::join: not a multicast address");
  }
  rw::MutexLock lk(mu_);
  groups_[group][socket] = socket->self_;
}

void SimNetwork::leave_group(const Address& group, SimSocket* socket) {
  rw::MutexLock lk(mu_);
  if (auto it = groups_.find(group); it != groups_.end()) {
    it->second.erase(socket);
    if (it->second.empty()) groups_.erase(it);
  }
}

void SimNetwork::unbind(SimSocket* socket) {
  rw::MutexLock lk(mu_);
  bound_.erase(socket->local());
  for (auto it = groups_.begin(); it != groups_.end();) {
    it->second.erase(socket);
    it = it->second.empty() ? groups_.erase(it) : std::next(it);
  }
}

}  // namespace rapidware::net
