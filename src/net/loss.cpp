#include "net/loss.h"

#include <algorithm>
#include <stdexcept>

namespace rapidware::net {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("BernoulliLoss: p must be in [0, 1]");
  }
}

bool BernoulliLoss::drop(util::Rng& rng) {
  rw::MutexLock lk(mu_);
  return rng.chance(p_);
}

double BernoulliLoss::average_loss() const {
  rw::MutexLock lk(mu_);
  return p_;
}

void BernoulliLoss::set_average_loss(double p) {
  rw::MutexLock lk(mu_);
  p_ = std::clamp(p, 0.0, 1.0);
}

GilbertElliottLoss::GilbertElliottLoss(double p_good_to_bad,
                                       double p_bad_to_good,
                                       double loss_in_bad)
    : p_gb_(p_good_to_bad), p_bg_(p_bad_to_good), loss_in_bad_(loss_in_bad) {
  for (double p : {p_gb_, p_bg_, loss_in_bad_}) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("GilbertElliottLoss: probabilities in [0,1]");
    }
  }
}

std::unique_ptr<GilbertElliottLoss> GilbertElliottLoss::with_average(
    double average_loss, double mean_burst_len, double loss_in_bad) {
  if (average_loss < 0.0 || average_loss >= loss_in_bad) {
    // Cannot reach an average at or above the bad-state drop rate.
    average_loss = std::clamp(average_loss, 0.0, loss_in_bad * 0.999);
  }
  const double p_bg = 1.0 / std::max(1.0, mean_burst_len);
  // Stationary bad share pi_b = p_gb / (p_gb + p_bg); average = pi_b * h.
  const double pi_b = average_loss / loss_in_bad;
  const double p_gb =
      pi_b >= 1.0 ? 1.0 : std::min(1.0, pi_b * p_bg / (1.0 - pi_b));
  return std::make_unique<GilbertElliottLoss>(p_gb, p_bg, loss_in_bad);
}

bool GilbertElliottLoss::drop(util::Rng& rng) {
  rw::MutexLock lk(mu_);
  if (bad_) {
    if (rng.chance(p_bg_)) bad_ = false;
  } else if (rng.chance(p_gb_)) {
    bad_ = true;
  }
  return bad_ && rng.chance(loss_in_bad_);
}

double GilbertElliottLoss::average_loss() const {
  rw::MutexLock lk(mu_);
  const double denom = p_gb_ + p_bg_;
  if (denom == 0.0) return 0.0;
  return p_gb_ / denom * loss_in_bad_;
}

void GilbertElliottLoss::set_average_loss(double p) {
  rw::MutexLock lk(mu_);
  p = std::clamp(p, 0.0, loss_in_bad_ * 0.999);
  const double pi_b = p / loss_in_bad_;
  p_gb_ = pi_b >= 1.0 ? 1.0 : std::min(1.0, pi_b * p_bg_ / (1.0 - pi_b));
}

bool GilbertElliottLoss::in_bad_state() const {
  rw::MutexLock lk(mu_);
  return bad_;
}

TraceLoss::TraceLoss(std::vector<bool> trace) : trace_(std::move(trace)) {
  if (trace_.empty()) throw std::invalid_argument("TraceLoss: empty trace");
}

bool TraceLoss::drop(util::Rng&) {
  rw::MutexLock lk(mu_);
  const bool d = trace_[pos_];
  pos_ = (pos_ + 1) % trace_.size();
  return d;
}

double TraceLoss::average_loss() const {
  rw::MutexLock lk(mu_);
  std::size_t drops = 0;
  for (bool d : trace_) drops += d;
  return static_cast<double>(drops) / static_cast<double>(trace_.size());
}

}  // namespace rapidware::net
