#include "net/link.h"

#include <algorithm>

namespace rapidware::net {

Channel::Channel(ChannelConfig config, util::Rng rng)
    : config_(std::move(config)), rng_(rng) {}

std::optional<util::Micros> Channel::transit(std::size_t bytes,
                                             util::Micros now) {
  rw::MutexLock lk(mu_);
  ++stats_.attempted;
  if (config_.loss && config_.loss->drop(rng_)) {
    ++stats_.dropped_loss;
    return std::nullopt;
  }

  util::Micros deliver_at = now + config_.latency_us;
  if (config_.jitter_us > 0) {
    deliver_at += static_cast<util::Micros>(
        rng_.next_below(static_cast<std::uint64_t>(config_.jitter_us) + 1));
  }
  if (config_.bandwidth_bps > 0) {
    const auto serialization_us = static_cast<util::Micros>(
        static_cast<double>(bytes) * 8.0 * 1e6 /
        static_cast<double>(config_.bandwidth_bps));
    const util::Micros start = std::max(now, link_free_at_);
    if (start - now > config_.max_queue_delay_us) {
      ++stats_.dropped_queue;
      return std::nullopt;
    }
    link_free_at_ = start + serialization_us;
    deliver_at += (start - now) + serialization_us;
  }
  return deliver_at;
}

ChannelStats Channel::stats() const {
  rw::MutexLock lk(mu_);
  return stats_;
}

double Channel::average_loss() const {
  rw::MutexLock lk(mu_);
  return config_.loss ? config_.loss->average_loss() : 0.0;
}

void Channel::set_average_loss(double p) {
  rw::MutexLock lk(mu_);
  if (config_.loss) config_.loss->set_average_loss(p);
}

}  // namespace rapidware::net
