// Addressing for the in-process datagram fabric: a node id plus a port,
// with a reserved id range acting as multicast group addresses (the
// simulator's analogue of 224.0.0.0/4).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rapidware::net {

using NodeId = std::uint32_t;

/// Node ids at or above this value denote multicast groups.
inline constexpr NodeId kMulticastBase = 0xE0000000;

struct Address {
  NodeId node = 0;
  std::uint16_t port = 0;

  bool is_multicast() const noexcept { return node >= kMulticastBase; }

  bool operator==(const Address&) const = default;
  auto operator<=>(const Address&) const = default;

  std::string to_string() const;
};

/// Convenience constructor for group addresses.
constexpr Address multicast_group(std::uint32_t group_index,
                                  std::uint16_t port) {
  return Address{kMulticastBase + group_index, port};
}

}  // namespace rapidware::net

template <>
struct std::hash<rapidware::net::Address> {
  std::size_t operator()(const rapidware::net::Address& a) const noexcept {
    return (static_cast<std::size_t>(a.node) << 16) ^ a.port;
  }
};
