// In-process datagram network: UDP-flavoured sockets, IP-style multicast
// groups, and per-directed-link channel models.
//
// This substrate replaces the paper's testbed LANs. Delivery is synchronous
// (the sender's thread runs the channel model and enqueues at receivers),
// which keeps tests and benchmarks deterministic; latency/bandwidth appear
// as *modeled* timestamps on each datagram (`deliver_at`), which receivers
// use for jitter and throughput accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/address.h"
#include "net/link.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::net {

struct Datagram {
  Address src;
  Address dst;
  util::Bytes payload;
  util::Micros sent_at = 0;     // modeled send time
  util::Micros deliver_at = 0;  // modeled arrival time (>= sent_at)
};

class SimNetwork;

/// A bound datagram socket. Thread-safe; receive blocks with an optional
/// timeout. Obtain via SimNetwork::open().
class SimSocket {
 public:
  ~SimSocket();

  SimSocket(const SimSocket&) = delete;
  SimSocket& operator=(const SimSocket&) = delete;

  const Address& local() const noexcept { return local_; }

  /// Sends one datagram (unicast or multicast destination).
  void send_to(const Address& dst, util::ByteSpan payload);

  /// Blocks for the next datagram; `timeout_ms` < 0 waits forever. Returns
  /// nullopt on timeout or once the socket is closed and drained.
  std::optional<Datagram> recv(int timeout_ms = -1);

  /// Joins/leaves a multicast group.
  void join(const Address& group);
  void leave(const Address& group);

  /// Unblocks receivers and detaches from the network. Idempotent.
  void close();

  bool is_closed() const;

  std::uint64_t packets_sent() const;
  std::uint64_t packets_received() const;

 private:
  friend class SimNetwork;
  SimSocket(SimNetwork* net, Address local);

  void enqueue(Datagram d);

  SimNetwork* const net_;
  const Address local_;
  // Written exactly once in SimNetwork::open() before the socket is handed
  // out, read-only afterwards.
  std::weak_ptr<SimSocket> self_;  // rw-lint: allow(RW003) write-once pre-publication

  mutable rw::Mutex mu_{"net/socket", rw::lockrank::kSocket};
  rw::CondVar cv_;
  std::deque<Datagram> queue_ RW_GUARDED_BY(mu_);
  bool closed_ RW_GUARDED_BY(mu_) = false;
  std::uint64_t sent_ RW_GUARDED_BY(mu_) = 0;
  std::uint64_t received_ RW_GUARDED_BY(mu_) = 0;
};

class SimNetwork {
 public:
  /// The clock drives modeled timestamps; pass a SimClock for virtual-time
  /// experiments or nothing for wall time.
  explicit SimNetwork(std::shared_ptr<util::Clock> clock = nullptr,
                      std::uint64_t seed = 1);

  /// Registers a node; returns its id.
  NodeId add_node(std::string name);

  /// Returns a copy: the names vector can reallocate under a concurrent
  /// add_node(), so a reference into it would dangle the moment the mutex
  /// is released.
  std::string node_name(NodeId id) const;

  /// Binds a socket on `node`. Port 0 picks an unused ephemeral port.
  /// Throws std::invalid_argument for unknown nodes or ports in use.
  std::shared_ptr<SimSocket> open(NodeId node, std::uint16_t port = 0);

  /// Installs a channel model on the directed link from -> to. Without one,
  /// delivery is instant and lossless.
  void set_channel(NodeId from, NodeId to, ChannelConfig config);

  /// The channel on from -> to, or nullptr.
  Channel* channel(NodeId from, NodeId to);

  util::Micros now() const { return clock_->now(); }
  util::Clock& clock() { return *clock_; }

  std::uint64_t datagrams_routed() const;

 private:
  friend class SimSocket;
  void route(const SimSocket& from, const Address& dst,
             util::ByteSpan payload);
  void deliver(const Datagram& d, NodeId dst_node, SimSocket* socket);
  void join_group(const Address& group, SimSocket* socket);
  void leave_group(const Address& group, SimSocket* socket);
  void unbind(SimSocket* socket);

  const std::shared_ptr<util::Clock> clock_;

  mutable rw::Mutex mu_{"net/sim_network", rw::lockrank::kSimNetwork};
  util::Rng rng_ RW_GUARDED_BY(mu_);
  std::vector<std::string> nodes_ RW_GUARDED_BY(mu_);
  // weak_ptr registries: routing pins sockets alive for the duration of a
  // delivery, so a socket destroyed mid-route is skipped, never dangling.
  std::map<Address, std::weak_ptr<SimSocket>> bound_ RW_GUARDED_BY(mu_);
  std::map<Address, std::map<SimSocket*, std::weak_ptr<SimSocket>>> groups_
      RW_GUARDED_BY(mu_);
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Channel>> channels_
      RW_GUARDED_BY(mu_);
  std::uint16_t next_ephemeral_ RW_GUARDED_BY(mu_) = 50'000;
  std::uint64_t routed_ RW_GUARDED_BY(mu_) = 0;
};

}  // namespace rapidware::net
