// Directed channel model: loss + latency + jitter + serialization over a
// finite-bandwidth link. Used by SimNetwork for each (source, destination)
// node pair; the wireless layer installs per-station channels here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/loss.h"
#include "util/clock.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace rapidware::net {

struct ChannelConfig {
  /// Loss model; null means lossless.
  std::shared_ptr<LossModel> loss;
  /// Fixed propagation delay.
  std::int64_t latency_us = 0;
  /// Uniform random extra delay in [0, jitter_us].
  std::int64_t jitter_us = 0;
  /// Link rate; 0 means infinite (no serialization delay, no queueing).
  std::int64_t bandwidth_bps = 0;
  /// Maximum queueing delay before tail drop (only with finite bandwidth).
  std::int64_t max_queue_delay_us = 200'000;
};

struct ChannelStats {
  std::uint64_t attempted = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_queue = 0;

  std::uint64_t delivered() const noexcept {
    return attempted - dropped_loss - dropped_queue;
  }
};

class Channel {
 public:
  Channel(ChannelConfig config, util::Rng rng);

  /// Models one packet transiting the channel at (virtual or wall) time
  /// `now`. Returns the modeled delivery time, or nullopt if dropped.
  std::optional<util::Micros> transit(std::size_t bytes, util::Micros now);

  ChannelStats stats() const;

  /// Current average loss probability of the underlying model.
  double average_loss() const;

  /// Retunes the loss model (mobility support).
  void set_average_loss(double p);

 private:
  mutable rw::Mutex mu_{"net/link", rw::lockrank::kLink};
  // config_ itself never changes shape after construction, but its loss
  // model is retuned through set_average_loss(), so the whole struct stays
  // under mu_.
  ChannelConfig config_ RW_GUARDED_BY(mu_);
  util::Rng rng_ RW_GUARDED_BY(mu_);
  util::Micros link_free_at_ RW_GUARDED_BY(mu_) = 0;
  ChannelStats stats_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::net
