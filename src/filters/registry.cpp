#include "filters/registry.h"

#include <mutex>

#include "filters/cache_filter.h"
#include "filters/compress_filter.h"
#include "filters/crypto_filter.h"
#include "filters/fec_filters.h"
#include "filters/interleave_filter.h"
#include "filters/pipeline_filter.h"
#include "filters/stats_filter.h"
#include "filters/throttle_filter.h"
#include "filters/transcode_filter.h"

namespace rapidware::filters {
namespace {

using core::ParamMap;

std::size_t get_size(const ParamMap& params, const std::string& key,
                     std::size_t fallback) {
  if (auto it = params.find(key); it != params.end()) {
    return static_cast<std::size_t>(std::stoul(it->second));
  }
  return fallback;
}

std::string get_string(const ParamMap& params, const std::string& key,
                       const std::string& fallback) {
  if (auto it = params.find(key); it != params.end()) return it->second;
  return fallback;
}

}  // namespace

void register_builtin_filters(core::FilterRegistry& registry) {
  registry.register_factory("null", [](const ParamMap&) {
    return std::make_shared<core::NullFilter>();
  });
  register_pipeline_factory(registry);
  registry.register_factory("fec-encode", [](const ParamMap& p) {
    return std::make_shared<FecEncodeFilter>(get_size(p, "n", 6),
                                             get_size(p, "k", 4));
  });
  registry.register_factory("fec-decode", [](const ParamMap& p) {
    return std::make_shared<FecDecodeFilter>(get_size(p, "window", 2));
  });
  registry.register_factory("uep-fec-encode", [](const ParamMap&) {
    return std::make_shared<UepFecEncodeFilter>();
  });
  registry.register_factory("audio-transcode", [](const ParamMap& p) {
    media::AudioFormat format;
    format.sample_rate =
        static_cast<std::uint32_t>(get_size(p, "rate", format.sample_rate));
    format.channels =
        static_cast<std::uint16_t>(get_size(p, "channels", format.channels));
    format.bits_per_sample = static_cast<std::uint16_t>(
        get_size(p, "bits", format.bits_per_sample));
    const std::string mode = get_string(p, "mode", "mono");
    TranscodeMode m = TranscodeMode::kMono;
    if (mode == "half") m = TranscodeMode::kHalfRate;
    if (mode == "mono+half") m = TranscodeMode::kMonoHalf;
    return std::make_shared<AudioTranscodeFilter>(format, m);
  });
  registry.register_factory("compress", [](const ParamMap&) {
    return std::make_shared<CompressFilter>();
  });
  registry.register_factory("decompress", [](const ParamMap&) {
    return std::make_shared<DecompressFilter>();
  });
  registry.register_factory("encrypt", [](const ParamMap& p) {
    return std::make_shared<EncryptFilter>(
        derive_key(get_string(p, "passphrase", "rapidware")));
  });
  registry.register_factory("decrypt", [](const ParamMap& p) {
    return std::make_shared<DecryptFilter>(
        derive_key(get_string(p, "passphrase", "rapidware")));
  });
  registry.register_factory("throttle", [](const ParamMap& p) {
    return std::make_shared<ThrottleFilter>(
        static_cast<double>(get_size(p, "bytes_per_sec", 16'000)));
  });
  registry.register_factory("stats", [](const ParamMap& p) {
    return std::make_shared<StatsFilter>(get_string(p, "name", "stats"));
  });
  registry.register_factory("interleave", [](const ParamMap& p) {
    return std::make_shared<InterleaveFilter>(get_size(p, "rows", 6),
                                              get_size(p, "depth", 4));
  });
  registry.register_factory("deinterleave", [](const ParamMap& p) {
    return std::make_shared<DeinterleaveFilter>(get_size(p, "rows", 6),
                                                get_size(p, "depth", 4));
  });
  registry.register_factory("cache-pack", [](const ParamMap& p) {
    return std::make_shared<CachePackFilter>(
        get_size(p, "capacity_bytes", 4 * 1024 * 1024));
  });
  registry.register_factory("cache-expand", [](const ParamMap& p) {
    return std::make_shared<CacheExpandFilter>(
        get_size(p, "capacity_bytes", 4 * 1024 * 1024));
  });
}

void register_builtin_filters() {
  static std::once_flag once;
  std::call_once(once, [] { register_builtin_filters(core::global_registry()); });
}

}  // namespace rapidware::filters
