#include "filters/fec_filters.h"

#include "core/composability.h"
#include "media/media_packet.h"
#include "util/buffer_pool.h"
#include "util/stats.h"

namespace rapidware::filters {

FecEncodeFilter::FecEncodeFilter(std::size_t n, std::size_t k)
    : PacketFilter("fec-encode"),
      n_(n),
      k_(k),
      encoder_(std::make_unique<fec::GroupEncoder>(n, k)) {}

std::string FecEncodeFilter::describe() const {
  return "fec-enc(" + std::to_string(n_.load()) + "," +
         std::to_string(k_.load()) + ")";
}

std::string FecEncodeFilter::output_type(const std::string& input) const {
  return core::wrap_type("fec", input);
}

core::ParamMap FecEncodeFilter::params() const {
  return {{"n", std::to_string(n_.load())}, {"k", std::to_string(k_.load())}};
}

bool FecEncodeFilter::set_param(const std::string& key,
                                const std::string& value) {
  std::size_t v = 0;
  try {
    v = std::stoul(value);
  } catch (const std::exception&) {
    return false;
  }
  if (key == "n") {
    if (v == 0 || v >= 256 || v < k_.load()) return false;
    n_.store(v);
    return true;
  }
  if (key == "k") {
    if (v == 0 || v > n_.load()) return false;
    k_.store(v);
    return true;
  }
  return false;
}

void FecEncodeFilter::maybe_apply_params() {
  // Parameter changes land between groups, never mid-group.
  if (encoder_->held_count() != 0) return;
  if (encoder_->n() == n_.load() && encoder_->k() == k_.load()) return;
  // Preserve the group-id sequence across encoder swaps.
  group_id_base_ += static_cast<std::uint32_t>(encoder_->groups_emitted());
  auto fresh = std::make_unique<fec::GroupEncoder>(n_.load(), k_.load());
  fresh->set_next_group_id(group_id_base_);
  encoder_ = std::move(fresh);
}

void FecEncodeFilter::on_packet(util::Bytes packet) {
  maybe_apply_params();
  const std::uint64_t before = encoder_->groups_emitted();
  // Count the finished group before its packets hit the wire: a STATS read
  // triggered by the parity's arrival must not see the counter lagging.
  auto wire = encoder_->add(packet);
  m_groups_encoded_->add(encoder_->groups_emitted() - before);
  util::BufferPool::local().release(std::move(packet));
  for (auto& w : wire) emit(std::move(w));
}

void FecEncodeFilter::on_flush() {
  const std::uint64_t before = encoder_->groups_emitted();
  auto wire = encoder_->flush();
  m_groups_encoded_->add(encoder_->groups_emitted() - before);
  for (auto& w : wire) emit(std::move(w));
}

void FecEncodeFilter::register_metrics(obs::Scope scope) {
  PacketFilter::register_metrics(scope);
  scope.registry().attach(scope.full("groups_encoded"), m_groups_encoded_);
}

FecDecodeFilter::FecDecodeFilter(std::size_t window)
    : PacketFilter("fec-decode"), decoder_(window) {}

std::string FecDecodeFilter::describe() const { return "fec-dec"; }

std::string FecDecodeFilter::output_type(const std::string& input) const {
  if (const auto inner = core::unwrap_type("fec", input)) return *inner;
  return input;  // pass-through for never-encoded streams
}

core::ParamMap FecDecodeFilter::params() const {
  // Read the atomic mirror, not the live decoder: params() runs on the
  // control thread (list_chain) while the filter thread decodes.
  const auto& s = shared_stats_;
  return {
      {"packets_seen", std::to_string(s.packets_seen.load())},
      {"data_received", std::to_string(s.data_received.load())},
      {"data_recovered", std::to_string(s.data_recovered.load())},
      {"data_lost", std::to_string(s.data_lost.load())},
      {"groups_complete", std::to_string(s.groups_complete.load())},
      {"groups_incomplete", std::to_string(s.groups_incomplete.load())},
  };
}

void FecDecodeFilter::on_packet(util::Bytes packet) {
  if (!fec::looks_like_fec_packet(packet)) {
    // Raw (never-encoded) packet: release pending FEC state first so order
    // is preserved across an encoder removal upstream, then pass through.
    for (auto&& payload : decoder_.flush()) emit(std::move(payload));
    emit(std::move(packet));
    sync_stats();
    return;
  }
  auto out = decoder_.add(packet);
  util::BufferPool::local().release(std::move(packet));
  for (auto& payload : out) emit(std::move(payload));
  sync_stats();
}

void FecDecodeFilter::on_flush() {
  for (auto&& payload : decoder_.flush()) emit(std::move(payload));
  sync_stats();
}

void FecDecodeFilter::sync_stats() {
  const auto& s = decoder_.stats();
  shared_stats_.packets_seen.store(s.packets_seen,
                                   std::memory_order_relaxed);
  shared_stats_.data_received.store(s.data_received,
                                    std::memory_order_relaxed);
  shared_stats_.data_recovered.store(s.data_recovered,
                                     std::memory_order_relaxed);
  shared_stats_.data_lost.store(s.data_lost, std::memory_order_relaxed);
  shared_stats_.groups_complete.store(s.groups_complete,
                                      std::memory_order_relaxed);
  shared_stats_.groups_incomplete.store(s.groups_incomplete,
                                        std::memory_order_relaxed);
  m_groups_decoded_->set(static_cast<std::int64_t>(s.groups_complete));
  m_groups_incomplete_->set(static_cast<std::int64_t>(s.groups_incomplete));
  m_data_recovered_->set(static_cast<std::int64_t>(s.data_recovered));
  m_data_lost_->set(static_cast<std::int64_t>(s.data_lost));
}

void FecDecodeFilter::register_metrics(obs::Scope scope) {
  PacketFilter::register_metrics(scope);
  scope.registry().attach(scope.full("groups_decoded"), m_groups_decoded_);
  scope.registry().attach(scope.full("groups_incomplete"),
                          m_groups_incomplete_);
  scope.registry().attach(scope.full("data_recovered"), m_data_recovered_);
  scope.registry().attach(scope.full("data_lost"), m_data_lost_);
}

UepFecEncodeFilter::UepFecEncodeFilter(fec::UepPolicy policy)
    : PacketFilter("uep-fec-encode"), policy_(std::move(policy)) {}

std::string UepFecEncodeFilter::describe() const { return "uep-fec-enc"; }

std::string UepFecEncodeFilter::output_type(const std::string& input) const {
  return core::wrap_type("fec", input);
}

fec::GroupEncoder& UepFecEncodeFilter::encoder_for(fec::FrameClass cls) {
  auto it = encoders_.find(cls);
  if (it == encoders_.end()) {
    const fec::CodeParams code = policy_.lookup(cls);
    it = encoders_
             .emplace(cls, std::make_unique<fec::GroupEncoder>(code.n, code.k))
             .first;
  }
  return *it->second;
}

void UepFecEncodeFilter::emit_wire(std::vector<util::Bytes> wire,
                                   std::size_t k) {
  for (auto& w : wire) emit(std::move(w));
  if (wire.size() > k) parity_out_ += wire.size() - k;
  if (!wire.empty()) {
    m_groups_encoded_->add();
    m_parity_packets_->set(static_cast<std::int64_t>(parity_out_));
  }
}

void UepFecEncodeFilter::register_metrics(obs::Scope scope) {
  PacketFilter::register_metrics(scope);
  scope.registry().attach(scope.full("groups_encoded"), m_groups_encoded_);
  scope.registry().attach(scope.full("parity_packets"), m_parity_packets_);
}

void UepFecEncodeFilter::on_packet(util::Bytes packet) {
  fec::FrameClass cls = fec::FrameClass::kOther;
  try {
    cls = media::MediaPacket::parse(packet).frame_class;
  } catch (const util::SerialError&) {
    // Not a media packet; protect at the default class level.
  }
  fec::GroupEncoder& encoder = encoder_for(cls);
  // Group ids are issued at completion time across all classes, keeping the
  // merged stream's ids monotonic for the decoder.
  encoder.set_next_group_id(next_group_id_);
  const std::uint64_t before = encoder.groups_emitted();
  auto wire = encoder.add(packet);
  if (encoder.groups_emitted() > before) ++next_group_id_;
  util::BufferPool::local().release(std::move(packet));
  emit_wire(std::move(wire), encoder.k());
}

void UepFecEncodeFilter::on_flush() {
  for (auto& [cls, encoder] : encoders_) {
    const std::size_t held = encoder->held_count();
    if (held == 0) continue;
    encoder->set_next_group_id(next_group_id_++);
    emit_wire(encoder->flush(), held);
  }
}

}  // namespace rapidware::filters
