// Token-bucket rate limiter filter: caps the byte rate a chain forwards
// toward a slow link (bandwidth conservation for handheld clients).
#pragma once

#include <atomic>

#include "core/filter.h"
#include "util/clock.h"

namespace rapidware::filters {

class ThrottleFilter final : public core::PacketFilter {
 public:
  /// `bytes_per_sec` > 0; `burst_bytes` is the bucket depth (defaults to
  /// half a second of credit). The clock is injectable for tests.
  explicit ThrottleFilter(double bytes_per_sec, double burst_bytes = 0,
                          util::Clock* clock = nullptr);

  std::string describe() const override;
  core::ParamMap params() const override;
  bool set_param(const std::string& key, const std::string& value) override;

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  std::atomic<double> rate_;
  double burst_;
  util::Clock* clock_;
  util::WallClock wall_;
  double tokens_ = 0;
  util::Micros last_refill_ = 0;
  bool primed_ = false;
};

}  // namespace rapidware::filters
