#include "filters/compress_filter.h"

#include <cstdio>

#include "core/composability.h"
#include <stdexcept>

namespace rapidware::filters {
namespace {

constexpr std::uint8_t kStored = 0;
constexpr std::uint8_t kDeltaRle = 1;

// RLE body: pairs of (count, value) for runs >= 3 encoded as
// (0xFF marker, count u8, value) and literals copied with an escape for the
// marker itself. Simpler scheme: sequences of (count, value) pairs only —
// robust and branch-light; compresses when runs dominate.
util::Bytes rle_encode_body(util::ByteSpan in) {
  util::Bytes out;
  out.reserve(in.size());
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t v = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == v && run < 255) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(v);
    i += run;
  }
  return out;
}

util::Bytes rle_decode_body(util::ByteSpan in) {
  if (in.size() % 2 != 0) {
    throw std::invalid_argument("rle: truncated body");
  }
  util::Bytes out;
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const std::uint8_t run = in[i];
    if (run == 0) throw std::invalid_argument("rle: zero-length run");
    out.insert(out.end(), run, in[i + 1]);
  }
  return out;
}

}  // namespace

util::Bytes rle_compress(util::ByteSpan in) {
  // Delta precoding turns slowly varying samples into near-zero runs.
  util::Bytes delta(in.size());
  std::uint8_t prev = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    delta[i] = static_cast<std::uint8_t>(in[i] - prev);
    prev = in[i];
  }
  util::Bytes body = rle_encode_body(delta);
  util::Bytes out;
  if (body.size() < in.size()) {
    out.reserve(body.size() + 1);
    out.push_back(kDeltaRle);
    out.insert(out.end(), body.begin(), body.end());
  } else {
    out.reserve(in.size() + 1);
    out.push_back(kStored);
    out.insert(out.end(), in.begin(), in.end());
  }
  return out;
}

util::Bytes rle_decompress(util::ByteSpan in) {
  if (in.empty()) throw std::invalid_argument("rle: empty packet");
  const std::uint8_t mode = in[0];
  const util::ByteSpan body = in.subspan(1);
  if (mode == kStored) return util::Bytes(body.begin(), body.end());
  if (mode != kDeltaRle) throw std::invalid_argument("rle: unknown mode");
  util::Bytes delta = rle_decode_body(body);
  std::uint8_t prev = 0;
  for (auto& b : delta) {
    b = static_cast<std::uint8_t>(b + prev);
    prev = b;
  }
  return delta;
}

CompressFilter::CompressFilter() : PacketFilter("compress") {}

std::string CompressFilter::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "compress(%.2f)", ratio());
  return buf;
}

core::ParamMap CompressFilter::params() const {
  return {{"bytes_in", std::to_string(bytes_in_)},
          {"bytes_out", std::to_string(bytes_out_)}};
}

std::string CompressFilter::output_type(const std::string& input) const {
  return core::wrap_type("rle", input);
}

double CompressFilter::ratio() const {
  return bytes_in_ == 0 ? 1.0
                        : static_cast<double>(bytes_out_) /
                              static_cast<double>(bytes_in_);
}

void CompressFilter::on_packet(util::Bytes packet) {
  bytes_in_ += packet.size();
  const util::Bytes compressed = rle_compress(packet);  // rw-lint: allow(RW006) output size unknown until encoded; transform needs a fresh buffer
  bytes_out_ += compressed.size();
  emit(compressed);
}

DecompressFilter::DecompressFilter() : PacketFilter("decompress") {}

std::string DecompressFilter::describe() const { return "decompress"; }

std::string DecompressFilter::input_requirement() const { return "rle(*)"; }

std::string DecompressFilter::output_type(const std::string& input) const {
  if (const auto inner = core::unwrap_type("rle", input)) return *inner;
  return input;
}

void DecompressFilter::on_packet(util::Bytes packet) {
  emit(rle_decompress(packet));
}

}  // namespace rapidware::filters
