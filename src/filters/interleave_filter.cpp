#include "filters/interleave_filter.h"

namespace rapidware::filters {

InterleaveFilter::InterleaveFilter(std::size_t rows, std::size_t depth)
    : PacketFilter("interleave"),
      rows_(rows),
      depth_(depth),
      interleaver_(rows, depth) {}

std::string InterleaveFilter::describe() const {
  return "interleave(" + std::to_string(rows_) + "x" + std::to_string(depth_) +
         ")";
}

core::ParamMap InterleaveFilter::params() const {
  return {{"rows", std::to_string(rows_)}, {"depth", std::to_string(depth_)}};
}

void InterleaveFilter::on_packet(util::Bytes packet) {
  for (const auto& out : interleaver_.add(packet)) emit(out);
}

void InterleaveFilter::on_flush() {
  for (const auto& out : interleaver_.flush()) emit(out);
}

DeinterleaveFilter::DeinterleaveFilter(std::size_t rows, std::size_t depth)
    : PacketFilter("deinterleave"),
      rows_(rows),
      depth_(depth),
      deinterleaver_(rows, depth) {}

std::string DeinterleaveFilter::describe() const {
  return "deinterleave(" + std::to_string(rows_) + "x" +
         std::to_string(depth_) + ")";
}

core::ParamMap DeinterleaveFilter::params() const {
  return {{"rows", std::to_string(rows_)}, {"depth", std::to_string(depth_)}};
}

void DeinterleaveFilter::on_packet(util::Bytes packet) {
  for (const auto& out : deinterleaver_.add(packet)) emit(out);
}

void DeinterleaveFilter::on_flush() {
  for (const auto& out : deinterleaver_.flush()) emit(out);
}

}  // namespace rapidware::filters
