// Composite filter: a named pipeline of child filters that inserts and
// removes as ONE unit. This is how a third party uploads a multi-stage
// transformation (e.g. "compress, then encrypt") into a running proxy — the
// chained-worker composition the paper contrasts with TranSend's TACC
// model (Section 6), packaged as a mobile component.
//
// Internally the composite runs a nested FilterChain whose endpoints adapt
// the composite's own detachable streams: the nested head reads the
// composite's DIS (a ByteSource), the nested tail writes its DOS (a
// ByteSink). Soft EOF on the composite's DIS drains the whole nested chain
// — every child flushes in order — before the composite detaches, so the
// chain-removal contract holds transitively.
#pragma once

#include <memory>
#include <vector>

#include "core/filter.h"
#include "core/filter_chain.h"
#include "core/filter_registry.h"

namespace rapidware::filters {

class PipelineFilter final : public core::Filter {
 public:
  /// Children must be idle; they are started/stopped with the composite.
  PipelineFilter(std::string name,
                 std::vector<std::shared_ptr<core::Filter>> children);

  std::string describe() const override;
  core::ParamMap params() const override;

  /// Composability: the pipeline requires what its first child requires and
  /// transforms types by folding the children.
  std::string input_requirement() const override;
  std::string output_type(const std::string& input) const override;

  std::size_t child_count() const noexcept { return children_.size(); }

 protected:
  void run() override;

 private:
  std::vector<std::shared_ptr<core::Filter>> children_;
};

/// Registers the "pipeline" factory with a registry. The parameter "of" is
/// a comma-separated list of registered filter names, each instantiated
/// with defaults, e.g. {"pipeline", {{"of", "compress,encrypt"}}}. Combine
/// with upload aliases to parameterize members.
void register_pipeline_factory(core::FilterRegistry& registry);

}  // namespace rapidware::filters
