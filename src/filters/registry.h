// Registers every built-in filter kind with a FilterRegistry so proxies can
// instantiate them from FilterSpecs arriving over the control channel.
#pragma once

#include "core/filter_registry.h"

namespace rapidware::filters {

/// Registered names and their parameters:
///   null            —
///   fec-encode      n (default 6), k (default 4)
///   fec-decode      window (default 2)
///   uep-fec-encode  — (standard UEP policy)
///   audio-transcode mode ("mono" | "half" | "mono+half"), rate, channels,
///                   bits (input format; defaults: paper format)
///   compress / decompress —
///   encrypt / decrypt     passphrase (default "rapidware")
///   throttle        bytes_per_sec (default 16000)
///   stats           name
///   interleave / deinterleave  rows (default 6), depth (default 4)
///   cache-pack / cache-expand  capacity_bytes (default 4 MiB)
void register_builtin_filters(core::FilterRegistry& registry);

/// Registers into the process-wide registry (idempotent).
void register_builtin_filters();

}  // namespace rapidware::filters
