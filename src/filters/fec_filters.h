// FEC proxy filters — the paper's flagship example (Section 5): an encoder
// filter inserted before the wireless hop and a decoder filter at (or for)
// the receiver. Both are PacketFilters, so insertion happens on packet
// boundaries, and both flush buffered group state when removed from a chain
// (the detach protocol), so no audio is lost when the proxy reconfigures.
#pragma once

#include <atomic>
#include <map>
#include <memory>

#include "core/filter.h"
#include "fec/fec_group.h"
#include "fec/uep.h"

namespace rapidware::filters {

/// Collects k payload packets, emits n FEC-framed packets per group.
/// Parameters "n"/"k" may be retuned at run time; the change applies at the
/// next group boundary.
class FecEncodeFilter final : public core::PacketFilter {
 public:
  FecEncodeFilter(std::size_t n, std::size_t k);

  std::string describe() const override;
  core::ParamMap params() const override;
  bool set_param(const std::string& key, const std::string& value) override;

  std::size_t n() const noexcept { return n_.load(); }
  std::size_t k() const noexcept { return k_.load(); }

  std::string output_type(const std::string& input) const override;

  /// Adds "groups_encoded" to the base packet/byte metrics.
  void register_metrics(obs::Scope scope) override;

  std::uint64_t groups_encoded() const noexcept {
    return m_groups_encoded_->value();
  }

 protected:
  void on_packet(util::Bytes packet) override;
  void on_flush() override;

 private:
  void maybe_apply_params();

  std::atomic<std::size_t> n_, k_;
  std::unique_ptr<fec::GroupEncoder> encoder_;
  std::uint32_t group_id_base_ = 0;
  // Owned metric, attached (not re-created) at register_metrics time so the
  // filter thread can bump it without synchronizing with binding.
  std::shared_ptr<obs::Counter> m_groups_encoded_ =
      std::make_shared<obs::Counter>();
};

/// Rebuilds the original payload stream from FEC-framed packets, recovering
/// erased packets whenever any k of a group's n packets arrive. Packets
/// without FEC framing pass through untouched, so the decoder can sit in a
/// receiver chain permanently while the encoder comes and goes on demand.
class FecDecodeFilter final : public core::PacketFilter {
 public:
  explicit FecDecodeFilter(std::size_t window = 2);

  std::string describe() const override;
  core::ParamMap params() const override;

  // Accepts anything (raw packets pass through); strips one FEC layer.
  std::string output_type(const std::string& input) const override;

  /// Filter-thread view of the decoder counters. Only safe once the
  /// stream is quiesced (filter stopped or drained); concurrent readers
  /// must use params() or the registered gauges instead.
  const fec::DecoderStats& stats() const { return decoder_.stats(); }

  /// Adds groups_decoded / groups_incomplete / data_recovered / data_lost.
  void register_metrics(obs::Scope scope) override;

 protected:
  void on_packet(util::Bytes packet) override;
  void on_flush() override;

 private:
  void sync_stats();

  fec::GroupDecoder decoder_;
  // Atomic mirror of decoder_.stats(), refreshed by sync_stats() on the
  // filter thread, so params() (control thread, e.g. a controller's
  // list_chain while traffic flows) never touches the live decoder.
  struct AtomicStats {
    std::atomic<std::uint64_t> packets_seen{0};
    std::atomic<std::uint64_t> data_received{0};
    std::atomic<std::uint64_t> data_recovered{0};
    std::atomic<std::uint64_t> data_lost{0};
    std::atomic<std::uint64_t> groups_complete{0};
    std::atomic<std::uint64_t> groups_incomplete{0};
  };
  AtomicStats shared_stats_;
  // Owned gauges mirroring decoder_.stats(); updated on the filter thread
  // (DecoderStats itself is not safe to read concurrently), attached to the
  // registry at register_metrics time.
  std::shared_ptr<obs::Gauge> m_groups_decoded_ = std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Gauge> m_groups_incomplete_ =
      std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Gauge> m_data_recovered_ = std::make_shared<obs::Gauge>();
  std::shared_ptr<obs::Gauge> m_data_lost_ = std::make_shared<obs::Gauge>();
};

/// Unequal error protection for video: frames are grouped *per frame
/// class*, each class encoded with the (n, k) its policy entry dictates —
/// more parity for I frames than B frames (Section 3 / [24]). All class
/// encoders share one group-id sequence (ids issued in group-completion
/// order), so a single downstream FecDecodeFilter handles the merged
/// stream. Frames may be released in completion order rather than strict
/// capture order across classes; video receivers reorder by media sequence
/// number, as they already must for B frames.
class UepFecEncodeFilter final : public core::PacketFilter {
 public:
  explicit UepFecEncodeFilter(fec::UepPolicy policy = fec::UepPolicy::standard());

  std::string describe() const override;
  std::string output_type(const std::string& input) const override;

  std::uint64_t parity_packets_emitted() const noexcept { return parity_out_; }

  /// Adds "groups_encoded" and "parity_packets".
  void register_metrics(obs::Scope scope) override;

 protected:
  void on_packet(util::Bytes packet) override;
  void on_flush() override;

 private:
  fec::GroupEncoder& encoder_for(fec::FrameClass cls);
  void emit_wire(std::vector<util::Bytes> wire, std::size_t k);

  fec::UepPolicy policy_;
  std::map<fec::FrameClass, std::unique_ptr<fec::GroupEncoder>> encoders_;
  std::uint32_t next_group_id_ = 0;
  std::uint64_t parity_out_ = 0;
  std::shared_ptr<obs::Counter> m_groups_encoded_ =
      std::make_shared<obs::Counter>();
  std::shared_ptr<obs::Gauge> m_parity_packets_ = std::make_shared<obs::Gauge>();
};

}  // namespace rapidware::filters
