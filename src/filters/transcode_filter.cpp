#include "filters/transcode_filter.h"

#include "media/codecs.h"
#include "media/media_packet.h"

namespace rapidware::filters {

AudioTranscodeFilter::AudioTranscodeFilter(media::AudioFormat input_format,
                                           TranscodeMode mode)
    : PacketFilter("audio-transcode"),
      input_format_(input_format),
      mode_(static_cast<int>(mode)) {}

std::string AudioTranscodeFilter::describe() const {
  switch (static_cast<TranscodeMode>(mode_.load())) {
    case TranscodeMode::kMono: return "transcode(mono)";
    case TranscodeMode::kHalfRate: return "transcode(half-rate)";
    case TranscodeMode::kMonoHalf: return "transcode(mono+half)";
  }
  return "transcode(?)";
}

core::ParamMap AudioTranscodeFilter::params() const {
  return {{"mode", std::to_string(mode_.load())},
          {"reduction", std::to_string(reduction_factor())}};
}

bool AudioTranscodeFilter::set_param(const std::string& key,
                                     const std::string& value) {
  if (key != "mode") return false;
  if (value == "mono") {
    mode_.store(static_cast<int>(TranscodeMode::kMono));
  } else if (value == "half") {
    mode_.store(static_cast<int>(TranscodeMode::kHalfRate));
  } else if (value == "mono+half") {
    mode_.store(static_cast<int>(TranscodeMode::kMonoHalf));
  } else {
    return false;
  }
  return true;
}

double AudioTranscodeFilter::reduction_factor() const {
  const auto mode = static_cast<TranscodeMode>(mode_.load());
  double f = 1.0;
  if (mode == TranscodeMode::kMono || mode == TranscodeMode::kMonoHalf) {
    f *= input_format_.channels;
  }
  if (mode == TranscodeMode::kHalfRate || mode == TranscodeMode::kMonoHalf) {
    f *= 2.0;
  }
  return f;
}

void AudioTranscodeFilter::on_packet(util::Bytes packet) {
  media::MediaPacket media = media::MediaPacket::parse(packet);
  bytes_in_ += media.payload.size();

  const auto mode = static_cast<TranscodeMode>(mode_.load());
  media::AudioFormat fmt = input_format_;
  if (mode == TranscodeMode::kMono || mode == TranscodeMode::kMonoHalf) {
    media.payload = media::to_mono(media.payload, fmt);
    fmt.channels = 1;
  }
  if (mode == TranscodeMode::kHalfRate || mode == TranscodeMode::kMonoHalf) {
    media.payload = media::downsample_half(media.payload, fmt);
    fmt.sample_rate /= 2;
  }

  bytes_out_ += media.payload.size();
  emit(media.serialize());
}

}  // namespace rapidware::filters
