// Pass-through measurement tap: counts packets/bytes and exposes a rate,
// usable anywhere in a chain without altering the stream. Observer raplets
// read taps like this one to detect condition changes.
#pragma once

#include <atomic>

#include "core/filter.h"
#include "util/clock.h"

namespace rapidware::filters {

class StatsFilter final : public core::PacketFilter {
 public:
  explicit StatsFilter(std::string name = "stats",
                       util::Clock* clock = nullptr);

  std::string describe() const override;
  core::ParamMap params() const override;

  std::uint64_t packets() const noexcept { return packets_.load(); }
  std::uint64_t bytes() const noexcept { return bytes_.load(); }

  /// Average throughput since the first packet, bytes/second.
  double throughput_bps() const;

  /// Adds "tap_bytes" and "throughput_bps" to the base metrics.
  void register_metrics(obs::Scope scope) override {
    PacketFilter::register_metrics(scope);
    scope.callback("tap_bytes",
                   [this] { return static_cast<double>(bytes()); });
    scope.callback("throughput_bps", [this] { return throughput_bps(); });
  }

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  util::Clock* clock_;
  util::WallClock wall_;
  std::atomic<std::uint64_t> packets_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<util::Micros> first_at_{-1};
  std::atomic<util::Micros> last_at_{-1};
};

}  // namespace rapidware::filters
