#include "filters/stats_filter.h"

#include <cstdio>

namespace rapidware::filters {

StatsFilter::StatsFilter(std::string name, util::Clock* clock)
    : PacketFilter(std::move(name)),
      clock_(clock != nullptr ? clock : &wall_) {}

std::string StatsFilter::describe() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s(pkts=%llu, bytes=%llu)", name().c_str(),
                static_cast<unsigned long long>(packets_.load()),
                static_cast<unsigned long long>(bytes_.load()));
  return buf;
}

core::ParamMap StatsFilter::params() const {
  return {{"packets", std::to_string(packets_.load())},
          {"bytes", std::to_string(bytes_.load())},
          {"throughput_bps", std::to_string(throughput_bps())}};
}

double StatsFilter::throughput_bps() const {
  const util::Micros first = first_at_.load();
  const util::Micros last = last_at_.load();
  if (first < 0 || last <= first) return 0.0;
  return static_cast<double>(bytes_.load()) * 1e6 /
         static_cast<double>(last - first);
}

void StatsFilter::on_packet(util::Bytes packet) {
  const util::Micros now = clock_->now();
  util::Micros expected = -1;
  first_at_.compare_exchange_strong(expected, now);
  last_at_.store(now);
  packets_.fetch_add(1);
  bytes_.fetch_add(packet.size());
  emit(std::move(packet));
}

}  // namespace rapidware::filters
