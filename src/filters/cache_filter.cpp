#include "filters/cache_filter.h"

#include "core/composability.h"
#include "util/serial.h"

namespace rapidware::filters {
namespace {
constexpr std::uint8_t kFull = 0;
constexpr std::uint8_t kRef = 1;
}  // namespace

std::uint64_t content_hash(util::ByteSpan data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

ContentStore::ContentStore(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

void ContentStore::put(std::uint64_t hash, util::ByteSpan body) {
  if (body.size() > capacity_) return;
  if (auto it = map_.find(hash); it != map_.end()) {
    lru_.erase(it->second.lru_pos);
    lru_.push_front(hash);
    it->second.lru_pos = lru_.begin();
    return;
  }
  while (used_ + body.size() > capacity_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim);
    used_ -= it->second.body.size();
    map_.erase(it);
  }
  lru_.push_front(hash);
  map_[hash] = Entry{util::Bytes(body.begin(), body.end()), lru_.begin()};
  used_ += body.size();
}

const util::Bytes* ContentStore::get(std::uint64_t hash) {
  auto it = map_.find(hash);
  if (it == map_.end()) return nullptr;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(hash);
  it->second.lru_pos = lru_.begin();
  return &it->second.body;
}

CachePackFilter::CachePackFilter(std::size_t capacity_bytes)
    : PacketFilter("cache-pack"), store_(capacity_bytes) {}

std::string CachePackFilter::describe() const {
  return "cache-pack(hits=" + std::to_string(hits_) + ")";
}

core::ParamMap CachePackFilter::params() const {
  return {{"hits", std::to_string(hits_)},
          {"misses", std::to_string(misses_)},
          {"entries", std::to_string(store_.entries())}};
}

std::string CachePackFilter::output_type(const std::string& input) const {
  return core::wrap_type("cached", input);
}

void CachePackFilter::on_packet(util::Bytes packet) {
  const std::uint64_t hash = content_hash(packet);
  if (store_.get(hash) != nullptr) {
    ++hits_;
    util::Writer w(9);
    w.u8(kRef);
    w.u64(hash);
    emit(w.bytes());
    return;
  }
  ++misses_;
  store_.put(hash, packet);
  util::Writer w(packet.size() + 1);
  w.u8(kFull);
  w.raw(packet);
  emit(w.bytes());
}

CacheExpandFilter::CacheExpandFilter(std::size_t capacity_bytes)
    : PacketFilter("cache-expand"), store_(capacity_bytes) {}

std::string CacheExpandFilter::describe() const { return "cache-expand"; }

std::string CacheExpandFilter::input_requirement() const { return "cached(*)"; }

std::string CacheExpandFilter::output_type(const std::string& input) const {
  if (const auto inner = core::unwrap_type("cached", input)) return *inner;
  return input;
}

void CacheExpandFilter::on_packet(util::Bytes packet) {
  util::Reader r(packet);
  const std::uint8_t mode = r.u8();
  if (mode == kFull) {
    util::Bytes body = r.raw(r.remaining());  // rw-lint: allow(RW006) store_ retains the body past the packet; a pooled buffer could not be recycled
    store_.put(content_hash(body), body);
    emit(body);
    return;
  }
  if (mode != kRef) throw util::SerialError("cache: unknown packet mode");
  const std::uint64_t hash = r.u64();
  if (const util::Bytes* body = store_.get(hash)) {
    emit(*body);
  } else {
    ++unresolved_;  // drop: the reference cannot be resolved
  }
}

}  // namespace rapidware::filters
