// Content cache filter pair — the Pavilion proxies performed "data caching
// for memory-limited handheld devices" (Section 2). In a collaborative
// session the same resource body crosses the proxy many times (every
// receiver fetches the leader's URL); the upstream CachePackFilter replaces
// repeated payloads with a short content reference, and the downstream
// CacheExpandFilter (on or near the client) reconstitutes them.
//
// Wire format: mode byte 0 = full body (and both sides remember it under
// its hash), 1 = reference (u64 content hash).
#pragma once

#include <cstdint>
#include <list>
#include <map>

#include "core/filter.h"
#include "util/bytes.h"

namespace rapidware::filters {

/// FNV-1a 64-bit, the content key for the cache pair.
std::uint64_t content_hash(util::ByteSpan data);

/// LRU byte-bounded content store shared by the two filter types.
class ContentStore {
 public:
  explicit ContentStore(std::size_t capacity_bytes);

  /// Inserts (or refreshes) a body; evicts least-recently-used entries to
  /// stay under capacity. Bodies larger than the capacity are not stored.
  void put(std::uint64_t hash, util::ByteSpan body);

  /// Looks up a body and refreshes its recency.
  const util::Bytes* get(std::uint64_t hash);

  std::size_t size_bytes() const noexcept { return used_; }
  std::size_t entries() const noexcept { return map_.size(); }

 private:
  struct Entry {
    util::Bytes body;
    std::list<std::uint64_t>::iterator lru_pos;
  };
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  // front = most recent
};

class CachePackFilter final : public core::PacketFilter {
 public:
  explicit CachePackFilter(std::size_t capacity_bytes = 4 * 1024 * 1024);

  std::string describe() const override;
  core::ParamMap params() const override;

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  std::string output_type(const std::string& input) const override;

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  ContentStore store_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class CacheExpandFilter final : public core::PacketFilter {
 public:
  explicit CacheExpandFilter(std::size_t capacity_bytes = 4 * 1024 * 1024);

  std::string describe() const override;
  std::string input_requirement() const override;
  std::string output_type(const std::string& input) const override;

  /// References that could not be resolved (cache evicted sooner than the
  /// packer's — indicates mismatched capacities).
  std::uint64_t unresolved() const noexcept { return unresolved_; }

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  ContentStore store_;
  std::uint64_t unresolved_ = 0;
};

}  // namespace rapidware::filters
