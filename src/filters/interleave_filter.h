// Packet interleaving filters: spread wireless loss bursts across FEC
// groups (insert InterleaveFilter after the FEC encoder and
// DeinterleaveFilter before the decoder).
#pragma once

#include "core/filter.h"
#include "fec/interleaver.h"

namespace rapidware::filters {

class InterleaveFilter final : public core::PacketFilter {
 public:
  InterleaveFilter(std::size_t rows, std::size_t depth);

  std::string describe() const override;
  core::ParamMap params() const override;

 protected:
  void on_packet(util::Bytes packet) override;
  void on_flush() override;

 private:
  std::size_t rows_, depth_;
  fec::BlockInterleaver interleaver_;
};

class DeinterleaveFilter final : public core::PacketFilter {
 public:
  DeinterleaveFilter(std::size_t rows, std::size_t depth);

  std::string describe() const override;
  core::ParamMap params() const override;

 protected:
  void on_packet(util::Bytes packet) override;
  void on_flush() override;

 private:
  std::size_t rows_, depth_;
  fec::BlockDeinterleaver deinterleaver_;
};

}  // namespace rapidware::filters
