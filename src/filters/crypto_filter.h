// Stream encryption filter pair — the "security services" RAPIDware lists
// among its adaptive middleware components (Section 1). The cipher is
// ChaCha20 (RFC 8439 block function); each packet is encrypted under a
// per-packet counter derived from a 64-bit packet index carried on the
// wire, so packets remain independently decryptable after loss.
//
// Note: this provides confidentiality for the demo pipeline; there is no
// authentication tag, so it is not an AEAD — do not reuse outside the
// simulator.
#pragma once

#include <array>

#include "core/filter.h"
#include "util/bytes.h"

namespace rapidware::filters {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Raw ChaCha20 XOR-keystream transform (encrypt == decrypt).
void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, util::MutableByteSpan data);

/// Derives a key from a passphrase (iterated ChaCha-based mixing; fine for
/// a simulator, not a KDF for real credentials).
ChaChaKey derive_key(std::string_view passphrase);

class EncryptFilter final : public core::PacketFilter {
 public:
  explicit EncryptFilter(ChaChaKey key);

  std::string describe() const override;
  std::string output_type(const std::string& input) const override;

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  ChaChaKey key_;
  std::uint64_t next_index_ = 0;
};

class DecryptFilter final : public core::PacketFilter {
 public:
  explicit DecryptFilter(ChaChaKey key);

  std::string describe() const override;
  std::string input_requirement() const override;
  std::string output_type(const std::string& input) const override;

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  ChaChaKey key_;
};

}  // namespace rapidware::filters
