// Lossless per-packet compression filter pair (bandwidth conservation for
// slow links, one of the proxy duties listed in Section 2).
//
// The codec is delta precoding + run-length encoding: PCM audio and
// synthetic frame bodies become long runs after differencing, while
// incompressible packets fall back to a stored mode (1 byte overhead), so
// the filter never expands data beyond that byte.
#pragma once

#include "core/filter.h"
#include "util/bytes.h"

namespace rapidware::filters {

/// Raw codec, exposed for tests and benches.
/// Wire format: mode byte (0 = stored, 1 = delta+RLE) + body.
util::Bytes rle_compress(util::ByteSpan in);
util::Bytes rle_decompress(util::ByteSpan in);

class CompressFilter final : public core::PacketFilter {
 public:
  CompressFilter();

  std::string describe() const override;
  core::ParamMap params() const override;

  double ratio() const;  // bytes_out / bytes_in

  std::string output_type(const std::string& input) const override;

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

class DecompressFilter final : public core::PacketFilter {
 public:
  DecompressFilter();

  std::string describe() const override;
  std::string input_requirement() const override;
  std::string output_type(const std::string& input) const override;

 protected:
  void on_packet(util::Bytes packet) override;
};

}  // namespace rapidware::filters
