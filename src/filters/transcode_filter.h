// Audio transcoder filter: reduces stream bandwidth for constrained
// wireless clients (the paper's proxies "transcode the stream to a lower
// bandwidth format", Section 3). Operates on MediaPackets and rewrites
// their PCM payload: stereo -> mono and/or half sample rate.
#pragma once

#include <atomic>

#include "core/filter.h"
#include "media/audio.h"

namespace rapidware::filters {

enum class TranscodeMode : int {
  kMono = 1,       // drop to one channel        (2x reduction for stereo)
  kHalfRate = 2,   // halve the sample rate      (2x reduction)
  kMonoHalf = 3,   // both                       (4x reduction)
};

class AudioTranscodeFilter final : public core::PacketFilter {
 public:
  AudioTranscodeFilter(media::AudioFormat input_format,
                       TranscodeMode mode = TranscodeMode::kMono);

  std::string describe() const override;
  core::ParamMap params() const override;
  bool set_param(const std::string& key, const std::string& value) override;

  /// Bandwidth reduction factor of the current mode.
  double reduction_factor() const;

  std::string input_requirement() const override { return "media"; }

  std::uint64_t bytes_in() const noexcept { return bytes_in_; }
  std::uint64_t bytes_out() const noexcept { return bytes_out_; }

 protected:
  void on_packet(util::Bytes packet) override;

 private:
  media::AudioFormat input_format_;
  std::atomic<int> mode_;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace rapidware::filters
