#include "filters/crypto_filter.h"

#include <bit>
#include <cstring>

#include "core/composability.h"
#include "util/serial.h"

namespace rapidware::filters {
namespace {

std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void store32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void chacha20_block(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) store32(out + 4 * i, x[i] + state[i]);
}

}  // namespace

void chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                  std::uint32_t initial_counter, util::MutableByteSpan data) {
  std::uint32_t state[16] = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,  // "expand 32-byte k"
      load32(key.data()),      load32(key.data() + 4),
      load32(key.data() + 8),  load32(key.data() + 12),
      load32(key.data() + 16), load32(key.data() + 20),
      load32(key.data() + 24), load32(key.data() + 28),
      initial_counter,
      load32(nonce.data()),    load32(nonce.data() + 4),
      load32(nonce.data() + 8),
  };
  std::uint8_t keystream[64];
  std::size_t offset = 0;
  while (offset < data.size()) {
    chacha20_block(state, keystream);
    ++state[12];
    const std::size_t n = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) data[offset + i] ^= keystream[i];
    offset += n;
  }
}

ChaChaKey derive_key(std::string_view passphrase) {
  ChaChaKey key{};
  // Absorb the passphrase into the key by repeated ChaCha mixing with the
  // partially filled key (sponge-like; adequate for simulator use).
  ChaChaNonce nonce{};
  for (std::size_t i = 0; i < passphrase.size(); ++i) {
    key[i % key.size()] ^= static_cast<std::uint8_t>(passphrase[i]);
  }
  for (int round = 0; round < 8; ++round) {
    chacha20_xor(key, nonce, static_cast<std::uint32_t>(round),
                 util::MutableByteSpan(key.data(), key.size()));
  }
  return key;
}

EncryptFilter::EncryptFilter(ChaChaKey key)
    : PacketFilter("encrypt"), key_(key) {}

std::string EncryptFilter::describe() const { return "encrypt(chacha20)"; }

std::string EncryptFilter::output_type(const std::string& input) const {
  return core::wrap_type("chacha20", input);
}

void EncryptFilter::on_packet(util::Bytes packet) {
  // Wire: u64 packet index || ciphertext. The index forms the nonce.
  const std::uint64_t index = next_index_++;
  ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  chacha20_xor(key_, nonce, 0, packet);
  util::Writer w(packet.size() + 8);
  w.u64(index);
  w.raw(packet);
  emit(w.bytes());
}

DecryptFilter::DecryptFilter(ChaChaKey key)
    : PacketFilter("decrypt"), key_(key) {}

std::string DecryptFilter::describe() const { return "decrypt(chacha20)"; }

std::string DecryptFilter::input_requirement() const { return "chacha20(*)"; }

std::string DecryptFilter::output_type(const std::string& input) const {
  if (const auto inner = core::unwrap_type("chacha20", input)) return *inner;
  return input;
}

void DecryptFilter::on_packet(util::Bytes packet) {
  util::Reader r(packet);
  const std::uint64_t index = r.u64();
  util::Bytes body = r.raw(r.remaining());  // rw-lint: allow(RW006) ciphertext body must be detached from the index header before in-place decrypt
  ChaChaNonce nonce{};
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(index >> (8 * i));
  }
  chacha20_xor(key_, nonce, 0, body);
  emit(body);
}

}  // namespace rapidware::filters
