#include "filters/pipeline_filter.h"

#include <sstream>
#include <stdexcept>

#include "core/endpoint.h"

namespace rapidware::filters {

PipelineFilter::PipelineFilter(
    std::string name, std::vector<std::shared_ptr<core::Filter>> children)
    : Filter(std::move(name)), children_(std::move(children)) {
  for (const auto& child : children_) {
    if (!child) {
      throw std::invalid_argument("PipelineFilter: null child");
    }
    if (child->running()) {
      throw std::invalid_argument("PipelineFilter: child already running");
    }
  }
}

std::string PipelineFilter::describe() const {
  std::ostringstream os;
  os << name() << "[";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    os << (i ? " -> " : "") << children_[i]->describe();
  }
  os << "]";
  return os.str();
}

core::ParamMap PipelineFilter::params() const {
  core::ParamMap out;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    for (const auto& [k, v] : children_[i]->params()) {
      out[std::to_string(i) + "." + children_[i]->name() + "." + k] = v;
    }
  }
  return out;
}

std::string PipelineFilter::input_requirement() const {
  return children_.empty() ? "any" : children_.front()->input_requirement();
}

std::string PipelineFilter::output_type(const std::string& input) const {
  std::string type = input;
  for (const auto& child : children_) type = child->output_type(type);
  return type;
}

void PipelineFilter::run() {
  // Nested chain over this composite's own streams. Endpoints are created
  // per run so the composite is restartable like any other filter; the
  // child filter objects themselves are restartable and reused.
  struct DisSource final : util::ByteSource {
    explicit DisSource(core::DetachableInputStream& dis) : dis(dis) {}
    std::size_t read_some(util::MutableByteSpan out) override {
      return dis.read_some(out);
    }
    core::DetachableInputStream& dis;
  };
  struct DosSink final : util::ByteSink {
    explicit DosSink(core::DetachableOutputStream& dos) : dos(dos) {}
    void write(util::ByteSpan in) override { dos.write(in); }
    void flush() override { dos.flush(); }
    core::DetachableOutputStream& dos;
  };

  core::FilterChain nested(
      std::make_shared<core::ByteReaderEndpoint>(
          name() + ".in", std::make_shared<DisSource>(dis())),
      std::make_shared<core::ByteWriterEndpoint>(
          name() + ".out", std::make_shared<DosSink>(dos())));
  for (std::size_t i = 0; i < children_.size(); ++i) {
    nested.insert(children_[i], i);  // pre-start: wired atomically below
  }
  nested.start();
  // drain_shutdown() joins the nested head, which exits when THIS
  // composite's DIS reports EOF (hard or detach); the cascade then flushes
  // every child in order into this composite's DOS and DETACHES each child
  // — the composite's flush-on-detach obligation, and what keeps the
  // children (and therefore the composite) reusable after removal.
  nested.drain_shutdown();
}

void register_pipeline_factory(core::FilterRegistry& registry) {
  registry.register_factory(
      "pipeline", [&registry](const core::ParamMap& params) {
        std::vector<std::shared_ptr<core::Filter>> children;
        std::string names;
        if (auto it = params.find("of"); it != params.end()) names = it->second;
        std::string piece;
        std::istringstream in(names);
        while (std::getline(in, piece, ',')) {
          if (!piece.empty()) children.push_back(registry.create({piece, {}}));
        }
        std::string name = "pipeline";
        if (auto it = params.find("name"); it != params.end()) name = it->second;
        return std::make_shared<PipelineFilter>(std::move(name),
                                                std::move(children));
      });
}

}  // namespace rapidware::filters
