#include "filters/throttle_filter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

namespace rapidware::filters {

ThrottleFilter::ThrottleFilter(double bytes_per_sec, double burst_bytes,
                               util::Clock* clock)
    : PacketFilter("throttle"),
      rate_(bytes_per_sec),
      burst_(burst_bytes > 0 ? burst_bytes : bytes_per_sec / 2),
      clock_(clock != nullptr ? clock : &wall_) {
  if (bytes_per_sec <= 0) {
    throw std::invalid_argument("ThrottleFilter: rate must be positive");
  }
}

std::string ThrottleFilter::describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "throttle(%.0fB/s)", rate_.load());
  return buf;
}

core::ParamMap ThrottleFilter::params() const {
  return {{"bytes_per_sec", std::to_string(rate_.load())}};
}

bool ThrottleFilter::set_param(const std::string& key,
                               const std::string& value) {
  if (key != "bytes_per_sec") return false;
  try {
    const double v = std::stod(value);
    if (v <= 0) return false;
    rate_.store(v);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void ThrottleFilter::on_packet(util::Bytes packet) {
  const double rate = rate_.load();
  if (!primed_) {
    tokens_ = burst_;
    last_refill_ = clock_->now();
    primed_ = true;
  }
  const auto cost = static_cast<double>(packet.size());
  for (;;) {
    const util::Micros now = clock_->now();
    tokens_ = std::min(
        burst_, tokens_ + rate * static_cast<double>(now - last_refill_) / 1e6);
    last_refill_ = now;
    if (tokens_ >= cost) break;
    const double deficit = cost - tokens_;
    const auto wait_us = static_cast<std::int64_t>(deficit / rate * 1e6) + 1;
    std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
  }
  tokens_ -= cost;
  emit(std::move(packet));
}

}  // namespace rapidware::filters
