// FilterChain — the paper's ControlThread (Section 4).
//
// Manages the ordered vector of filters spliced between two endpoints on a
// single data stream, and implements the paper's add()/delete()/reorder
// operations on a *running* stream via the pause/reconnect protocol:
//
//   insert(F, pos):  Left.DOS.pause()            — drain the splice point
//                    Left.DOS.reconnect(F.DIS)   — attach new filter input
//                    Right.DIS.reconnect(F.DOS)  — attach new filter output
//                    F.start()
//
//   remove(pos):     Left.DOS.pause()            — drain F's input
//                    F.detach_request(); F.join()— F flushes pending state
//                    F.DOS.pause()               — drain F's output
//                    Left.DOS.reconnect(Right.DIS)
//
// All control operations are serialized by one mutex; data keeps flowing
// through the untouched part of the chain while an operation runs.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/filter.h"
#include "obs/metrics.h"
#include "util/buffer_pool.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

class FilterChain {
 public:
  /// The chain owns its endpoints: head produces data into the chain, tail
  /// consumes it at the far end.
  FilterChain(std::shared_ptr<Filter> head, std::shared_ptr<Filter> tail);
  ~FilterChain();

  FilterChain(const FilterChain&) = delete;
  FilterChain& operator=(const FilterChain&) = delete;

  /// Hosts every member on `loop` instead of per-filter threads: start()
  /// and later insert()s call Filter::start_on(loop), so the whole chain
  /// runs on one worker (chain affinity — members never race, and a
  /// worker's chains share its thread). Event-incapable members keep their
  /// thread via the start_on() shim. Must be called before start(); the
  /// loop must outlive the chain.
  void host_on(EventLoop& loop);

  /// The hosting loop, or nullptr in thread-per-filter mode.
  EventLoop* host() const;

  /// The buffer pool this chain's packets recycle through: the hosting
  /// worker's arena once event-hosted, util::default_pool() otherwise.
  /// What the chain's `pool/` metric rows read; tests assert steady-state
  /// hit rates against it regardless of dispatch mode.
  util::BufferPool& recycle_pool() const {
    util::BufferPool* p = metrics_pool_.load(std::memory_order_acquire);
    return p != nullptr ? *p : util::default_pool();
  }

  /// Connects head directly to tail (the "null proxy") and starts both
  /// endpoints. Without an explicit host_on(), the RW_DISPATCH environment
  /// variable picks the mode: "event" hosts the chain on the process-wide
  /// default_worker_pool(); anything else (or unset) keeps the classic
  /// thread-per-filter dispatch.
  void start();

  /// Inserts a filter at `pos` (0 = immediately after the head endpoint;
  /// size() = immediately before the tail). The filter must not be running.
  /// Before start() this just configures the chain; afterwards it splices
  /// the filter into the live stream via the pause/reconnect protocol.
  void insert(std::shared_ptr<Filter> filter, std::size_t pos);

  /// Convenience: insert at the end (before the tail endpoint).
  void append(std::shared_ptr<Filter> filter) { insert(std::move(filter), size()); }

  /// Removes and returns the filter at `pos` after letting it flush. The
  /// returned filter is idle and can be re-inserted (possibly elsewhere).
  std::shared_ptr<Filter> remove(std::size_t pos);

  /// Moves the filter at `from` to position `to` (positions in the vector
  /// after removal semantics, as the paper's reorder).
  void reorder(std::size_t from, std::size_t to);

  /// Forwards a parameter change to the filter at `pos`.
  bool set_param(std::size_t pos, const std::string& key,
                 const std::string& value);

  std::size_t size() const;
  std::vector<std::string> names() const;
  std::shared_ptr<Filter> at(std::size_t pos) const;

  /// Atomic snapshot of the configured filters, in chain order. Stats and
  /// introspection paths must iterate this instead of size() + at(i): that
  /// pair re-acquires the mutex per call, so a concurrent remove() between
  /// the two turns a valid index into an out_of_range error.
  std::vector<std::shared_ptr<Filter>> list() const;

  Filter& head() { return *head_; }
  Filter& tail() { return *tail_; }

  bool started() const;

  // --- Composability typing (core/composability.h) -----------------------
  // Declare the type of the stream the head endpoint produces, and the
  // chain can type-check its configuration; with enforcement on, any
  // insert/remove/reorder that would wedge a filter against a stream it
  // cannot parse is rejected (StreamError) before touching the stream.

  /// Sets the ingress stream type (default "any": checks are vacuous).
  void set_stream_type(std::string type);

  /// Rejects type-breaking mutations when enabled (default off).
  void set_type_enforcement(bool enforce);

  /// The stream type entering each filter plus the final egress type;
  /// size() + 1 entries.
  std::vector<std::string> type_trace() const;

  /// First type error in the current configuration, or nullopt.
  std::optional<std::string> type_error() const;

  /// Stops the head endpoint, propagates EOF through every filter (each
  /// flushes in order), and joins all threads. Idempotent. Filters'
  /// output streams are hard-closed: fast, final teardown.
  void shutdown();

  /// Graceful variant: waits for the head to finish on its own (the source
  /// must already be ending), then drains and DETACHES each stage via the
  /// pause/soft-EOF protocol. Afterwards every filter is idle with both
  /// streams disconnected — reusable in another chain. This is how a
  /// composite filter (PipelineFilter) tears down its nested chain.
  void drain_shutdown();

  /// Non-blocking shutdown initiation for event-hosted chains: interrupts
  /// the head and hard-closes every member's output so EOF/BrokenPipe
  /// ripples through the workers, then returns WITHOUT waiting. Poll
  /// finished() to learn when every member's final drive has run — a
  /// worker must never block on another chain's teardown (the idle-flow
  /// eviction sweep runs this from a worker timer). Idempotent. After
  /// begin_shutdown() no further control operations may touch the chain.
  void begin_shutdown();

  /// True once a shutdown was initiated and every member has stopped
  /// running. Cheap; safe to poll from a worker timer for chains that are
  /// past begin_shutdown() (no control op blocks on worker progress once
  /// the chain is shut down).
  bool finished() const;

  // --- Observability (src/obs) -------------------------------------------

  /// Publishes chain metrics under "<name>/..." in `reg` and per-member
  /// metrics under "<name>/<filter-name>/..." (head, tail, and every
  /// configured filter; duplicate filter names get a "#2", "#3", ... suffix
  /// in registration order). Filters inserted later are registered as they
  /// arrive; removed filters have their metrics dropped. Chain-level
  /// entries: inserts/removes/reorders/set_params counters, a `filters`
  /// gauge, a `reconfig_us` splice-latency histogram, and an `events` trace
  /// ring of reconfigurations. Rebinding replaces any previous binding.
  void bind_metrics(obs::Registry& reg, const std::string& name);

  /// Drops everything bind_metrics registered (idempotent). Runs
  /// automatically on destruction; call earlier if the registry must stop
  /// referencing the chain's filters sooner.
  void unbind_metrics();

 private:
  /// Validates a hypothetical filter vector; returns the first error.
  std::optional<std::string> check_types_locked(
      const std::vector<std::shared_ptr<Filter>>& filters) const
      RW_REQUIRES(mu_);
  Filter& left_of_locked(std::size_t pos) RW_REQUIRES(mu_);
  Filter& right_of_locked(std::size_t pos) RW_REQUIRES(mu_);
  void check_pos_locked(std::size_t pos, bool inclusive) const
      RW_REQUIRES(mu_);
  /// Starts `f` in the chain's dispatch mode (hosted or thread).
  void start_filter_locked(Filter& f) RW_REQUIRES(mu_);

  // Metrics plumbing; all require mu_. Lock order: mu_ before the registry
  // mutex, and registered callbacks never take mu_ (src/obs/metrics.h).
  void attach_filter_locked(Filter& filter) RW_REQUIRES(mu_);
  void detach_filter_locked(const Filter& filter) RW_REQUIRES(mu_);
  void record_locked(const std::string& text) RW_REQUIRES(mu_);

  mutable rw::Mutex mu_{"core/filter_chain", rw::lockrank::kFilterChain};
  const std::shared_ptr<Filter> head_;  // immutable after construction
  const std::shared_ptr<Filter> tail_;  // immutable after construction
  EventLoop* host_ RW_GUARDED_BY(mu_) = nullptr;
  // The pool the chain's `pool/` gauges report on: the host worker's
  // arena once hosted, util::default_pool() otherwise. An atomic (not
  // mu_-guarded) because registry callbacks must never take mu_; nullptr
  // means "not hosted, read the process pool".
  std::atomic<util::BufferPool*> metrics_pool_{nullptr};
  std::vector<std::shared_ptr<Filter>> filters_ RW_GUARDED_BY(mu_);
  bool started_ RW_GUARDED_BY(mu_) = false;
  bool shut_down_ RW_GUARDED_BY(mu_) = false;
  std::string stream_type_ RW_GUARDED_BY(mu_) = "any";
  bool enforce_types_ RW_GUARDED_BY(mu_) = false;

  // Observability state (guarded by mu_). The `filters` gauge is set during
  // control ops rather than pulled through a callback so no registry
  // callback ever needs mu_.
  std::optional<obs::Scope> scope_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_inserts_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_removes_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_reorders_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Counter> m_set_params_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Gauge> m_filters_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::Histogram> m_reconfig_us_ RW_GUARDED_BY(mu_);
  std::shared_ptr<obs::TraceRing> m_events_ RW_GUARDED_BY(mu_);
  std::map<const Filter*, std::string> bound_ RW_GUARDED_BY(mu_);
};

}  // namespace rapidware::core
