// N core::EventLoop workers on N OS threads (docs/data_plane.md, "Worker
// model"). Chains are pinned whole to one worker (least-loaded placement
// via next(), or sharded placement in proxy::FlowTable), so the pool is
// the modern worker model over the paper's thread-per-filter proxy:
// chains*filters logical flows multiplexed onto min(cores, N) threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/event_loop.h"
#include "obs/metrics.h"

namespace rapidware::core {

class WorkerPool {
 public:
  /// workers == 0 picks RW_WORKERS from the environment, else the hardware
  /// core count (at least 1).
  explicit WorkerPool(std::size_t workers = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const noexcept { return loops_.size(); }

  EventLoop& worker(std::size_t i) { return *loops_[i]; }

  /// Least-loaded placement for the next hosted chain: scans every
  /// worker's EventLoop::load() (queue depth + busy-fraction EWMA, all
  /// relaxed atomics — no lock, no shared counter mutation) and returns
  /// the lightest, lowest index winning ties. The chain then pins to that
  /// worker for its lifetime (chain affinity), so placement is a
  /// once-per-chain decision and a slightly stale load reading only costs
  /// one suboptimal placement, never correctness. Throws std::logic_error
  /// after stop() — a stopped loop never drives again, so handing it out
  /// would hang the caller's chain.
  EventLoop& next();

  /// Stop-safe variant of next(): nullptr once stop() has begun, so a
  /// hosting decision racing teardown (e.g. FilterChain::start under
  /// RW_DISPATCH=event during static destruction) can fall back to
  /// thread dispatch instead of pinning work on a dead loop.
  EventLoop* try_next();

  /// Publishes per-worker load metrics under `prefix`:
  /// worker/<i>/tasks_run, worker/<i>/queue_depth, worker/<i>/busy (all
  /// callback gauges over the loops' relaxed atomics — snapshots never
  /// touch a pool or loop mutex). Dropped by stop(). Call at most once.
  void bind_metrics(obs::Registry& reg, const std::string& prefix);

  /// Stops every loop and joins the worker threads. Idempotent. Chains
  /// hosted on the pool must be shut down FIRST: a stopped loop never
  /// drives again, so a filter still waiting on readiness would leave its
  /// join()/destructor waiting forever.
  void stop();

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopped_{false};
  std::optional<obs::Scope> scope_;  // rw-lint: allow(RW003) set before threads observe it, dropped in stop()
};

/// Process-wide pool used when RW_DISPATCH=event selects event dispatch
/// without an explicit pool (FilterChain::start). Constructed on first
/// use (publishing its worker/<i>/ load gauges on obs::registry() under
/// "workers"), stopped at static destruction.
WorkerPool& default_worker_pool();

}  // namespace rapidware::core
