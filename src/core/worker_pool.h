// N core::EventLoop workers on N OS threads (docs/data_plane.md, "Worker
// model"). Chains are pinned whole to one worker (round-robin via next(),
// or sharded placement in proxy::FlowTable), so the pool is the modern
// worker model over the paper's thread-per-filter proxy: chains*filters
// logical flows multiplexed onto min(cores, N) threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/event_loop.h"

namespace rapidware::core {

class WorkerPool {
 public:
  /// workers == 0 picks RW_WORKERS from the environment, else the hardware
  /// core count (at least 1).
  explicit WorkerPool(std::size_t workers = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::size_t size() const noexcept { return loops_.size(); }

  EventLoop& worker(std::size_t i) { return *loops_[i]; }

  /// Round-robin placement for the next hosted chain.
  EventLoop& next();

  /// Stops every loop and joins the worker threads. Idempotent. Chains
  /// hosted on the pool must be shut down FIRST: a stopped loop never
  /// drives again, so a filter still waiting on readiness would leave its
  /// join()/destructor waiting forever.
  void stop();

 private:
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> rr_{0};
  std::atomic<bool> stopped_{false};
};

/// Process-wide pool used when RW_DISPATCH=event selects event dispatch
/// without an explicit pool (FilterChain::start). Constructed on first
/// use, stopped at static destruction.
WorkerPool& default_worker_pool();

}  // namespace rapidware::core
