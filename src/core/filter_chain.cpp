#include "core/filter_chain.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include <cstdlib>
#include <cstring>

#include "core/composability.h"
#include "core/worker_pool.h"
#include "util/buffer_pool.h"
#include "util/logging.h"

namespace rapidware::core {

namespace {

/// RW_DISPATCH=event flips un-hosted chains onto the default worker pool
/// (the CI matrix runs the whole tier-1 suite this way); anything else
/// keeps thread-per-filter.
bool dispatch_default_event() {
  const char* mode = std::getenv("RW_DISPATCH");
  return mode != nullptr && std::strcmp(mode, "event") == 0;
}

/// Reconfiguration events retained by the chain's trace ring: enough to
/// reconstruct a whole adaptation episode, small enough to dump over STATS.
constexpr std::size_t kEventTraceCapacity = 64;

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// After a failed splice, reattach `left` directly to `right`; if the right
/// side is itself dead (reader closed), close left's DOS instead so the
/// upstream writer observes BrokenPipe rather than blocking forever on a
/// stream nobody will ever reconnect.
void restore_or_abandon_splice(Filter& left, Filter& right) {
  try {
    left.dos().reconnect(right.dis());
  } catch (const StreamError&) {
    left.dos().close();
  }
}

}  // namespace

FilterChain::FilterChain(std::shared_ptr<Filter> head,
                         std::shared_ptr<Filter> tail)
    : head_(std::move(head)), tail_(std::move(tail)) {
  if (!head_ || !tail_) throw std::invalid_argument("FilterChain: null endpoint");
}

FilterChain::~FilterChain() {
  try {
    shutdown();
  } catch (...) {
    // Best-effort teardown only.
  }
  try {
    unbind_metrics();
  } catch (...) {
    // Best-effort teardown only.
  }
}

void FilterChain::host_on(EventLoop& loop) {
  rw::MutexLock lk(mu_);
  if (started_) throw StreamError("FilterChain::host_on: already started");
  host_ = &loop;
  metrics_pool_.store(&loop.pool(), std::memory_order_release);
}

EventLoop* FilterChain::host() const {
  rw::MutexLock lk(mu_);
  return host_;
}

void FilterChain::start_filter_locked(Filter& f) {
  if (host_ != nullptr) {
    f.start_on(*host_);
  } else {
    f.start();
  }
}

void FilterChain::start() {
  rw::MutexLock lk(mu_);
  if (started_) throw StreamError("FilterChain::start: already started");
  if (host_ == nullptr && dispatch_default_event()) {
    // try_next, not next: a chain started while the default pool is
    // stopping (static destruction, a test's teardown) falls back to
    // thread dispatch instead of pinning its filters on a loop that will
    // never drive them.
    host_ = default_worker_pool().try_next();
    if (host_ != nullptr) {
      metrics_pool_.store(&host_->pool(), std::memory_order_release);
    }
  }
  // Wire head -> [pre-inserted filters] -> tail, then start consumers
  // before producers so no write ever lacks a reader.
  Filter* prev = head_.get();
  for (const auto& f : filters_) {
    prev->dos().connect(f->dis());
    prev = f.get();
  }
  prev->dos().connect(tail_->dis());
  start_filter_locked(*tail_);
  for (auto it = filters_.rbegin(); it != filters_.rend(); ++it) {
    start_filter_locked(**it);
  }
  start_filter_locked(*head_);
  started_ = true;
  record_locked("start");
}

void FilterChain::check_pos_locked(std::size_t pos, bool inclusive) const {
  const std::size_t limit = filters_.size() + (inclusive ? 1 : 0);
  if (pos >= limit) throw std::out_of_range("FilterChain: bad position");
}

Filter& FilterChain::left_of_locked(std::size_t pos) {
  return pos == 0 ? *head_ : *filters_[pos - 1];
}

Filter& FilterChain::right_of_locked(std::size_t pos) {
  return pos == filters_.size() ? *tail_ : *filters_[pos];
}

void FilterChain::insert(std::shared_ptr<Filter> filter, std::size_t pos) {
  if (!filter) throw std::invalid_argument("FilterChain::insert: null filter");
  rw::MutexLock lk(mu_);
  if (shut_down_) throw StreamError("FilterChain::insert: chain shut down");
  check_pos_locked(pos, /*inclusive=*/true);
  if (filter->running()) {
    throw StreamError("FilterChain::insert: filter already running");
  }
  if (enforce_types_) {
    auto hypothetical = filters_;
    hypothetical.insert(hypothetical.begin() + static_cast<std::ptrdiff_t>(pos),
                        filter);
    if (const auto error = check_types_locked(hypothetical)) {
      throw StreamError("FilterChain::insert rejected: " + *error);
    }
  }

  Filter* raw = filter.get();
  if (!started_) {
    // Pre-start configuration: just record; start() wires everything.
    filters_.insert(filters_.begin() + static_cast<std::ptrdiff_t>(pos),
                    std::move(filter));
    attach_filter_locked(*raw);
    if (m_inserts_) m_inserts_->add();
    if (m_filters_) m_filters_->set(static_cast<std::int64_t>(filters_.size()));
    record_locked("insert " + raw->name() + " @" + std::to_string(pos));
    return;
  }

  Filter& left = left_of_locked(pos);
  Filter& right = right_of_locked(pos);

  // The paper's add(): pause the left DOS (the right DIS is automatically
  // paused with it), then splice the new filter's streams in. Output side
  // first: if either reconnect fails (a dead or misused peer), the splice
  // is restored — or abandoned with a hard close — so no stage is left
  // wedged against a half-spliced stream.
  const auto t0 = std::chrono::steady_clock::now();
  left.dos().pause();
  try {
    filter->dos().reconnect(right.dis());
  } catch (...) {
    restore_or_abandon_splice(left, right);
    throw;
  }
  try {
    left.dos().reconnect(filter->dis());
  } catch (...) {
    filter->dos().pause();
    restore_or_abandon_splice(left, right);
    throw;
  }
  start_filter_locked(*filter);

  filters_.insert(filters_.begin() + static_cast<std::ptrdiff_t>(pos),
                  std::move(filter));
  attach_filter_locked(*raw);
  if (m_inserts_) m_inserts_->add();
  if (m_filters_) m_filters_->set(static_cast<std::int64_t>(filters_.size()));
  if (m_reconfig_us_) {
    m_reconfig_us_->observe(static_cast<double>(elapsed_us(t0)));
  }
  record_locked("insert " + raw->name() + " @" + std::to_string(pos));
}

std::shared_ptr<Filter> FilterChain::remove(std::size_t pos) {
  rw::MutexLock lk(mu_);
  if (shut_down_) throw StreamError("FilterChain::remove: chain shut down");
  check_pos_locked(pos, /*inclusive=*/false);
  if (enforce_types_) {
    auto hypothetical = filters_;
    hypothetical.erase(hypothetical.begin() + static_cast<std::ptrdiff_t>(pos));
    if (const auto error = check_types_locked(hypothetical)) {
      throw StreamError("FilterChain::remove rejected: " + *error);
    }
  }

  std::shared_ptr<Filter> filter = filters_[pos];
  if (!started_) {
    filters_.erase(filters_.begin() + static_cast<std::ptrdiff_t>(pos));
    detach_filter_locked(*filter);
    if (m_removes_) m_removes_->add();
    if (m_filters_) m_filters_->set(static_cast<std::int64_t>(filters_.size()));
    record_locked("remove " + filter->name() + " @" + std::to_string(pos));
    return filter;
  }
  Filter& left = left_of_locked(pos);
  Filter& right = right_of_locked(pos + 1);

  // Drain the filter's input, let it flush buffered state downstream,
  // drain its output, then close the gap.
  const auto t0 = std::chrono::steady_clock::now();
  left.dos().pause();
  filter->detach_request();
  filter->join();
  filter->dos().pause();
  try {
    left.dos().reconnect(right.dis());
  } catch (const StreamError&) {
    // Right side died while we were splicing it back in; abandon the
    // stream so upstream unblocks with BrokenPipe instead of wedging.
    left.dos().close();
    throw;
  }

  filters_.erase(filters_.begin() + static_cast<std::ptrdiff_t>(pos));
  detach_filter_locked(*filter);
  if (m_removes_) m_removes_->add();
  if (m_filters_) m_filters_->set(static_cast<std::int64_t>(filters_.size()));
  if (m_reconfig_us_) {
    m_reconfig_us_->observe(static_cast<double>(elapsed_us(t0)));
  }
  record_locked("remove " + filter->name() + " @" + std::to_string(pos));
  return filter;
}

void FilterChain::reorder(std::size_t from, std::size_t to) {
  // remove() + insert(), as the paper's ControlThread does; `to` addresses
  // the vector after the removal. With type enforcement, only the FINAL
  // arrangement must type-check (the transient state between the two steps
  // never carries data for the moved filter), so checks are applied here
  // and bypassed in the constituent steps.
  bool enforce = false;
  {
    rw::MutexLock lk(mu_);
    check_pos_locked(from, /*inclusive=*/false);
    enforce = enforce_types_;
    if (enforce) {
      auto hypothetical = filters_;
      auto moved = hypothetical[from];
      hypothetical.erase(hypothetical.begin() +
                         static_cast<std::ptrdiff_t>(from));
      const std::size_t target = std::min(to, hypothetical.size());
      hypothetical.insert(
          hypothetical.begin() + static_cast<std::ptrdiff_t>(target),
          std::move(moved));
      if (const auto error = check_types_locked(hypothetical)) {
        throw StreamError("FilterChain::reorder rejected: " + *error);
      }
      enforce_types_ = false;  // control ops are caller-serialized
    }
  }
  try {
    std::shared_ptr<Filter> filter = remove(from);
    {
      rw::MutexLock lk(mu_);
      to = std::min(to, filters_.size());
    }
    insert(std::move(filter), to);
  } catch (...) {
    rw::MutexLock lk(mu_);
    enforce_types_ = enforce;
    throw;
  }
  rw::MutexLock lk(mu_);
  enforce_types_ = enforce;
  if (m_reorders_) m_reorders_->add();
  record_locked("reorder " + std::to_string(from) + " -> " +
                std::to_string(to));
}

bool FilterChain::set_param(std::size_t pos, const std::string& key,
                            const std::string& value) {
  std::shared_ptr<Filter> filter;
  {
    rw::MutexLock lk(mu_);
    check_pos_locked(pos, /*inclusive=*/false);
    filter = filters_[pos];
    if (m_set_params_) m_set_params_->add();
    record_locked("set " + filter->name() + " " + key + "=" + value);
  }
  return filter->set_param(key, value);
}

std::size_t FilterChain::size() const {
  rw::MutexLock lk(mu_);
  return filters_.size();
}

std::vector<std::string> FilterChain::names() const {
  rw::MutexLock lk(mu_);
  std::vector<std::string> out;
  out.reserve(filters_.size());
  for (const auto& f : filters_) out.push_back(f->name());
  return out;
}

std::shared_ptr<Filter> FilterChain::at(std::size_t pos) const {
  rw::MutexLock lk(mu_);
  check_pos_locked(pos, /*inclusive=*/false);
  return filters_[pos];
}

std::vector<std::shared_ptr<Filter>> FilterChain::list() const {
  rw::MutexLock lk(mu_);
  return filters_;
}

bool FilterChain::started() const {
  rw::MutexLock lk(mu_);
  return started_ && !shut_down_;
}

void FilterChain::set_stream_type(std::string type) {
  rw::MutexLock lk(mu_);
  stream_type_ = std::move(type);
}

void FilterChain::set_type_enforcement(bool enforce) {
  rw::MutexLock lk(mu_);
  enforce_types_ = enforce;
}

std::optional<std::string> FilterChain::check_types_locked(
    const std::vector<std::shared_ptr<Filter>>& filters) const {
  std::string type = stream_type_;
  for (const auto& f : filters) {
    if (auto error = check_step(f->name(), f->input_requirement(), type)) {
      return error;
    }
    type = f->output_type(type);
  }
  return std::nullopt;
}

std::vector<std::string> FilterChain::type_trace() const {
  rw::MutexLock lk(mu_);
  std::vector<std::string> trace;
  trace.reserve(filters_.size() + 1);
  std::string type = stream_type_;
  trace.push_back(type);
  for (const auto& f : filters_) {
    type = f->output_type(type);
    trace.push_back(type);
  }
  return trace;
}

std::optional<std::string> FilterChain::type_error() const {
  rw::MutexLock lk(mu_);
  return check_types_locked(filters_);
}

void FilterChain::drain_shutdown() {
  rw::MutexLock lk(mu_);
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  record_locked("drain_shutdown");

  // The removal protocol, applied to every stage left to right: drain the
  // upstream pipe, soft-EOF the stage so it flushes, detach its output.
  head_->join();  // exits when its source ends (caller's responsibility)
  Filter* left = head_.get();
  for (auto& f : filters_) {
    left->dos().pause();
    f->detach_request();
    f->join();
    left = f.get();
  }
  left->dos().pause();
  tail_->detach_request();
  tail_->join();
}

void FilterChain::shutdown() {
  rw::MutexLock lk(mu_);
  if (!started_) return;
  if (shut_down_) {
    // A begin_shutdown() already rippled EOF through the chain, but its
    // final drives may still be retiring on their workers. A synchronous
    // shutdown (the destructor in particular) must wait for every member:
    // destroying one filter's streams while its upstream neighbor is
    // mid-write into them is a use-after-free. Each join returns
    // immediately once that member's run has finished.
    head_->join();
    for (auto& f : filters_) f->join();
    tail_->join();
    return;
  }
  shut_down_ = true;
  record_locked("shutdown");

  // Stop the producer, then let hard EOF ripple down the chain: each filter
  // drains, flushes its tail, and exits before we close its output.
  head_->interrupt();
  head_->join();
  head_->dos().close();
  for (auto& f : filters_) {
    f->join();
    f->dos().close();
  }
  tail_->join();
}

void FilterChain::begin_shutdown() {
  rw::MutexLock lk(mu_);
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  record_locked("begin_shutdown");

  // Same EOF ripple as shutdown(), minus every join: interrupt the
  // producer and hard-close all outputs, then let the workers run each
  // member's final drive at their own pace. Nothing here blocks — this is
  // called from worker timers (idle-flow eviction), where waiting on
  // another filter's progress would stall the very loop that must make it.
  head_->interrupt();
  head_->dos().close();
  for (auto& f : filters_) f->dos().close();
}

bool FilterChain::finished() const {
  rw::MutexLock lk(mu_);
  if (!started_ || !shut_down_) return false;
  if (head_->running() || tail_->running()) return false;
  for (const auto& f : filters_) {
    if (f->running()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Observability

void FilterChain::bind_metrics(obs::Registry& reg, const std::string& name) {
  rw::MutexLock lk(mu_);
  if (scope_) {
    scope_->drop();
    bound_.clear();
  }
  scope_.emplace(reg, name);
  m_inserts_ = scope_->counter("inserts");
  m_removes_ = scope_->counter("removes");
  m_reorders_ = scope_->counter("reorders");
  m_set_params_ = scope_->counter("set_params");
  m_filters_ = scope_->gauge("filters");
  m_filters_->set(static_cast<std::int64_t>(filters_.size()));
  m_reconfig_us_ =
      scope_->histogram("reconfig_us", obs::Histogram::latency_us_bounds());
  m_events_ = scope_->trace("events", kEventTraceCapacity);
  // Data-plane buffer pool health, surfaced per chain: the host worker's
  // arena once the chain is event-hosted, the process-wide pool otherwise.
  // Steady-state hit rate near 1.0 means the packet path is
  // allocation-free (docs/data_plane.md). `this` captures are safe: the
  // chain drops this scope (blocking out in-flight snapshots) before
  // destruction.
  {
    const auto pool = [this]() -> util::BufferPool& { return recycle_pool(); };
    obs::Scope pool_scope = scope_->child("pool");
    pool_scope.callback("hits", [pool] {
      return static_cast<double>(pool().stats().hits);
    });
    pool_scope.callback("misses", [pool] {
      return static_cast<double>(pool().stats().misses);
    });
    pool_scope.callback("hit_rate", [pool] { return pool().hit_rate(); });
    pool_scope.callback("free_buffers", [pool] {
      return static_cast<double>(pool().free_buffers());
    });
    pool_scope.callback("cross_free", [pool] {
      return static_cast<double>(pool().stats().cross_free);
    });
    pool_scope.callback("rebalance", [pool] {
      return static_cast<double>(pool().stats().rebalanced);
    });
  }
  attach_filter_locked(*head_);
  for (const auto& f : filters_) attach_filter_locked(*f);
  attach_filter_locked(*tail_);
}

void FilterChain::unbind_metrics() {
  rw::MutexLock lk(mu_);
  if (!scope_) return;
  scope_->drop();
  scope_.reset();
  bound_.clear();
  m_inserts_.reset();
  m_removes_.reset();
  m_reorders_.reset();
  m_set_params_.reset();
  m_filters_.reset();
  m_reconfig_us_.reset();
  m_events_.reset();
}

void FilterChain::attach_filter_locked(Filter& filter) {
  if (!scope_) return;
  if (bound_.count(&filter) != 0) return;  // head==tail, double insert, ...
  const auto taken = [&](const std::string& candidate) {
    for (const auto& [f, leaf] : bound_) {
      if (leaf == candidate) return true;
    }
    return false;
  };
  std::string leaf = filter.name();
  for (int suffix = 2; taken(leaf); ++suffix) {
    leaf = filter.name() + "#" + std::to_string(suffix);
  }
  bound_[&filter] = leaf;
  filter.register_metrics(scope_->child(leaf));
}

void FilterChain::detach_filter_locked(const Filter& filter) {
  if (!scope_) return;
  auto it = bound_.find(&filter);
  if (it == bound_.end()) return;
  scope_->registry().drop(scope_->full(it->second));
  bound_.erase(it);
}

void FilterChain::record_locked(const std::string& text) {
  if (m_events_) m_events_->record(text);
}

}  // namespace rapidware::core
