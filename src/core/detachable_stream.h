// Detachable I/O streams — the paper's core mechanism (Section 4).
//
// A DetachableOutputStream (DOS) / DetachableInputStream (DIS) pair behaves
// like a piped byte stream, with the buffer held at the input side. Unlike
// ordinary piped streams, the pair can be:
//
//   * paused      — new writes block, in-flight writes complete in full,
//                   the reader drains the buffer, then both halves are
//                   marked disconnected;
//   * reconnected — either half may be attached to a *different* peer,
//                   waking any reader/writer that blocked while paused;
//   * restarted   — data flows again with no byte lost, duplicated, or
//                   reordered.
//
// This is the "glue" that lets the filter chain insert, delete, and reorder
// proxy filters on a running data stream. As in the paper, pause() and
// reconnect() invoked on a DIS are reference calls forwarded to the peer DOS.
//
// Concurrency contract: one reader thread per DIS, one writer thread per
// DOS; any thread may invoke control operations (pause/reconnect/close),
// but concurrent control operations on the same stream must be serialized
// by the caller (FilterChain does this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/bytes.h"
#include "util/io.h"

namespace rapidware::core {

/// Base class for stream failures (the analogue of Java's IOException).
class StreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writing to a closed/abandoned stream.
class BrokenPipe : public StreamError {
 public:
  using StreamError::StreamError;
};

class DetachableOutputStream;
class DetachableInputStream;

namespace detail {

/// Shared state of one pipe; owned by the DIS (the paper buffers at the
/// input side), referenced by whichever DOS is currently connected.
struct InputState {
  explicit InputState(std::size_t capacity) : ring(capacity) {}

  std::mutex mu;
  std::condition_variable readable;  // data arrived / state changed
  std::condition_variable writable;  // space freed / reader closed
  std::condition_variable drained;   // ring became empty
  util::ByteRing ring;

  DetachableOutputStream* source = nullptr;  // guarded by mu
  bool connected = false;
  bool swflag = false;        // pause in progress or paused
  bool write_closed = false;  // hard EOF: source closed for good
  bool soft_eof = false;      // detach EOF: report EOF once drained; cleared
                              // by the next reconnect (filter removal)
  bool reader_closed = false;

  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

}  // namespace detail

/// Input half. Owns the pipe buffer.
class DetachableInputStream final : public util::ByteSource {
 public:
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  explicit DetachableInputStream(std::size_t capacity = kDefaultCapacity);
  ~DetachableInputStream() override;

  DetachableInputStream(const DetachableInputStream&) = delete;
  DetachableInputStream& operator=(const DetachableInputStream&) = delete;

  /// Blocks until data is available, the stream reports EOF (returns 0), or
  /// the pipe is paused-and-later-reconnected (in which case it keeps
  /// waiting transparently — this is what makes filter insertion invisible
  /// to downstream readers).
  std::size_t read_some(util::MutableByteSpan out) override;

  /// Bytes currently buffered.
  std::size_t available() const;

  bool connected() const;

  /// Forwards to the connected DOS (reference call, as in the paper).
  void pause();

  /// Forwards to dos.reconnect(*this).
  void reconnect(DetachableOutputStream& dos);

  /// Reader abandons the stream; connected/future writers get BrokenPipe.
  void close();

  /// Control-plane detach: once the buffer drains, read_some() returns 0
  /// exactly as on EOF, letting the owning filter flush and exit its loop
  /// without closing its output. Cleared by the next reconnect.
  void mark_soft_eof();

  std::uint64_t bytes_received() const;
  std::uint64_t bytes_delivered() const;

 private:
  friend class DetachableOutputStream;
  std::shared_ptr<detail::InputState> st_;
};

/// Output half.
class DetachableOutputStream final : public util::ByteSink {
 public:
  DetachableOutputStream() = default;
  ~DetachableOutputStream() override;

  DetachableOutputStream(const DetachableOutputStream&) = delete;
  DetachableOutputStream& operator=(const DetachableOutputStream&) = delete;

  /// Writes all of `in`. If the stream is paused or disconnected, blocks
  /// until a reconnect supplies a new sink. A write that has begun always
  /// lands contiguously in a single sink: pause() waits for it, so framed
  /// messages are never torn across a splice.
  void write(util::ByteSpan in) override;

  /// Wakes the reader so buffered bytes are noticed promptly.
  void flush() override;

  /// Establishes the initial connection (alias for reconnect, kept for
  /// symmetry with the paper's connect()/reconnect() pair).
  void connect(DetachableInputStream& dis) { reconnect(dis); }

  /// Pauses the pipe: blocks new writes, completes in-flight writes, waits
  /// for the reader to drain the buffer, then marks both halves
  /// disconnected. Idempotent when already paused. Requires an active
  /// reader (or an already-empty buffer) to drain.
  void pause();

  /// Attaches this DOS to `dis`. Both halves must be disconnected.
  void reconnect(DetachableInputStream& dis);

  /// Hard EOF: the current sink's reader sees end-of-stream after draining;
  /// subsequent writes throw BrokenPipe. An in-flight write blocked on a
  /// full ring is woken and also throws (its already-buffered prefix is
  /// still delivered to the reader before EOF).
  void close();

  bool connected() const;

  /// Total bytes this DOS has delivered into any sink (across reconnects).
  std::uint64_t bytes_sent() const noexcept;

  /// Completed pause() calls that actually detached the pipe.
  std::uint64_t pauses() const;

  /// Cumulative microseconds writers spent blocked in write() waiting for a
  /// connect/unpause — the per-splice disruption the paper's Figure 7
  /// measures, accumulated as a running total.
  std::uint64_t blocked_micros() const;

 private:
  friend class DetachableInputStream;

  mutable std::mutex mu_;
  std::condition_variable state_cv_;    // writers wait for connect/unpause
  std::condition_variable writers_cv_;  // pause waits for in-flight writes
  std::shared_ptr<detail::InputState> sink_;
  bool swflag_ = false;
  bool connected_ = false;
  bool closed_ = false;
  int active_writers_ = 0;

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::uint64_t pauses_ = 0;      // guarded by mu_
  std::uint64_t blocked_us_ = 0;  // guarded by mu_
};

/// Convenience: connect a fresh pair.
void connect(DetachableOutputStream& dos, DetachableInputStream& dis);

}  // namespace rapidware::core
