// Detachable I/O streams — the paper's core mechanism (Section 4).
//
// A DetachableOutputStream (DOS) / DetachableInputStream (DIS) pair behaves
// like a piped byte stream, with the buffer held at the input side. Unlike
// ordinary piped streams, the pair can be:
//
//   * paused      — new writes block, in-flight writes complete in full,
//                   the reader drains the buffer, then both halves are
//                   marked disconnected;
//   * reconnected — either half may be attached to a *different* peer,
//                   waking any reader/writer that blocked while paused;
//   * restarted   — data flows again with no byte lost, duplicated, or
//                   reordered.
//
// This is the "glue" that lets the filter chain insert, delete, and reorder
// proxy filters on a running data stream. As in the paper, pause() and
// reconnect() invoked on a DIS are reference calls forwarded to the peer DOS.
//
// Concurrency contract: one reader thread per DIS, one writer thread per
// DOS; any thread may invoke control operations (pause/reconnect/close),
// but concurrent control operations on the same stream must be serialized
// by the caller (FilterChain does this).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/bytes.h"
#include "util/io.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rapidware::core {

/// Base class for stream failures (the analogue of Java's IOException).
class StreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Writing to a closed/abandoned stream.
class BrokenPipe : public StreamError {
 public:
  using StreamError::StreamError;
};

class DetachableOutputStream;
class DetachableInputStream;

/// Readiness-notification target for event-driven stream consumers and
/// producers (docs/data_plane.md, "Worker model"). A stream fires a
/// callback at most once per arming: the watcher arms itself by returning
/// would-block from a poll (poll_read_borrow / try_write_*), and the next
/// state change that could clear the block — data arrival, space freed,
/// reconnect, EOF, close — disarms and fires. Callbacks run UNDER the
/// stream lock that noticed the change, so implementations must only post
/// to their worker's queue; they must never call back into a stream.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// The watched input may now have data or a final EOF to report.
  virtual void on_readable() = 0;

  /// The watched output may now accept a write it previously refused.
  virtual void on_writable() = 0;
};

namespace detail {

/// Shared state of one pipe; owned by the DIS (the paper buffers at the
/// input side), referenced by whichever DOS is currently connected.
/// Lock order: DetachableOutputStream::mu_ is always taken BEFORE this mu
/// when both are held (pause/reconnect/close hold them nested).
struct InputState {
  explicit InputState(std::size_t capacity) : ring(capacity) {}

  /// Marks the pipe disconnected from its source. The shared tail of
  /// DOS::pause() and DOS::close(). The writable watcher travels with the
  /// DOS, so it is uninstalled here; the readable watcher belongs to the
  /// DIS side and survives (the DIS owns this state for its lifetime).
  void detach_source() RW_REQUIRES(mu) {
    connected = false;
    source = nullptr;
    write_sched = nullptr;
    write_armed = false;
  }

  /// Fires the armed readable watcher, if any. One shot: re-armed only by
  /// the next would-block poll. Runs the callback under mu (contract in
  /// core::Scheduler).
  void fire_readable() RW_REQUIRES(mu) {
    if (read_sched != nullptr && read_armed) {
      read_armed = false;
      read_sched->on_readable();
    }
  }

  /// Same for the armed writable watcher of the connected event-mode DOS.
  void fire_writable() RW_REQUIRES(mu) {
    if (write_sched != nullptr && write_armed) {
      write_armed = false;
      write_sched->on_writable();
    }
  }

  /// Wakes every waiter class: readers, blocked writers, and a pauser
  /// waiting for the ring to drain. The shared tail of the close paths.
  void wake_all() RW_REQUIRES(mu) {
    readable.notify_all();
    writable.notify_all();
    drained.notify_all();
    fire_readable();
    fire_writable();
  }

  /// Data-path notify with wakeup suppression: the one-reader contract
  /// means at most one thread can be parked on `readable`, and the waiting
  /// count (maintained around every wait) tells us whether it is parked
  /// right now. When it is not, the notify — and its futex syscall — is
  /// skipped entirely. Control paths (pause/reconnect/close) do NOT use
  /// this; they notify_all unconditionally.
  void notify_data_readable() RW_REQUIRES(mu) {
    if (readers_waiting > 0) {
      readable.notify_one();
      ++wakeups;
    } else {
      ++wakeups_suppressed;
    }
    fire_readable();
  }

  /// Same suppression for the single writer parked on `writable`.
  void notify_data_writable() RW_REQUIRES(mu) {
    if (writers_waiting > 0) {
      writable.notify_one();
      ++wakeups;
    } else {
      ++wakeups_suppressed;
    }
    fire_writable();
  }

  /// A pauser waiting in drained is rare; when none is registered the
  /// reader's became-empty notification is skipped (previously this fired
  /// on every transition to empty — once per packet on a latency-bound
  /// pipe). notify_all: concurrent pause() and close() may both wait.
  void notify_drained() RW_REQUIRES(mu) {
    if (drain_waiting > 0) {
      drained.notify_all();
      ++wakeups;
    } else {
      ++wakeups_suppressed;
    }
  }

  rw::Mutex mu{"core/stream_input", rw::lockrank::kStreamInput};
  rw::CondVar readable;  // data arrived / state changed
  rw::CondVar writable;  // space freed / reader closed
  rw::CondVar drained;   // ring became empty
  util::ByteRing ring RW_GUARDED_BY(mu);

  DetachableOutputStream* source RW_GUARDED_BY(mu) = nullptr;
  bool connected RW_GUARDED_BY(mu) = false;
  bool swflag RW_GUARDED_BY(mu) = false;        // pause in progress or paused
  bool write_closed RW_GUARDED_BY(mu) = false;  // hard EOF: source closed
  bool soft_eof RW_GUARDED_BY(mu) = false;      // detach EOF: report EOF once
                                                // drained; cleared by the next
                                                // reconnect (filter removal)
  bool reader_closed RW_GUARDED_BY(mu) = false;

  // Readiness watchers (event-driven mode). The readable watcher is
  // installed by the DIS owner and stays for the filter's hosted lifetime;
  // the writable watcher follows the connected DOS across reconnects. The
  // armed flags implement the one-shot contract: set by a would-block poll
  // under mu, cleared by the fire under the same mu — the serialization
  // that makes lost wakeups impossible.
  Scheduler* read_sched RW_GUARDED_BY(mu) = nullptr;
  bool read_armed RW_GUARDED_BY(mu) = false;
  Scheduler* write_sched RW_GUARDED_BY(mu) = nullptr;
  bool write_armed RW_GUARDED_BY(mu) = false;

  // Parked-thread registry for the suppression helpers above. Maintained
  // (++/-- under mu) around every predicate wait on the matching CV.
  int readers_waiting RW_GUARDED_BY(mu) = 0;
  int writers_waiting RW_GUARDED_BY(mu) = 0;
  int drain_waiting RW_GUARDED_BY(mu) = 0;

  std::uint64_t bytes_in RW_GUARDED_BY(mu) = 0;
  std::uint64_t bytes_out RW_GUARDED_BY(mu) = 0;
  std::uint64_t wakeups RW_GUARDED_BY(mu) = 0;  // data-path notifies issued
  std::uint64_t wakeups_suppressed RW_GUARDED_BY(mu) = 0;  // ...skipped
};

}  // namespace detail

/// Input half. Owns the pipe buffer.
class DetachableInputStream final : public util::ByteSource {
 public:
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  explicit DetachableInputStream(std::size_t capacity = kDefaultCapacity);
  ~DetachableInputStream() override;

  DetachableInputStream(const DetachableInputStream&) = delete;
  DetachableInputStream& operator=(const DetachableInputStream&) = delete;

  /// Blocks until data is available, the stream reports EOF (returns 0), or
  /// the pipe is paused-and-later-reconnected (in which case it keeps
  /// waiting transparently — this is what makes filter insertion invisible
  /// to downstream readers).
  std::size_t read_some(util::MutableByteSpan out) override;

  /// Zero-copy batched read: blocks like read_some(), then offers the whole
  /// buffered contents as the ring's (up to) two contiguous spans, under a
  /// single lock acquisition. Only the bytes the visitor reports consumed
  /// are removed; the rest stay buffered for the next read. The visitor
  /// runs with the stream lock held — it must not call back into this
  /// stream or its peer, and must consume at least one byte.
  std::size_t read_borrow(std::size_t max, util::SpanVisitor visit) override;

  /// Non-blocking read for the event-driven drive mode: like read_borrow()
  /// when data is buffered; otherwise returns 0 immediately, reporting
  /// end-of-stream via `*end` and arming the readable watcher when the
  /// stream is merely empty (so the owning worker is re-driven on arrival).
  std::size_t poll_read_borrow(std::size_t max, util::SpanVisitor visit,
                               bool* end) override;

  /// Installs (or, with nullptr, removes) the readiness watcher fired when
  /// an armed poll_read_borrow() would now make progress. The watcher
  /// persists across reconnects — the buffer state belongs to this DIS.
  void set_read_scheduler(Scheduler* sched);

  /// Bytes currently buffered.
  std::size_t available() const;

  bool connected() const;

  /// Forwards to the connected DOS (reference call, as in the paper).
  void pause();

  /// Forwards to dos.reconnect(*this).
  void reconnect(DetachableOutputStream& dos);

  /// Reader abandons the stream; connected/future writers get BrokenPipe.
  void close();

  /// Control-plane detach: once the buffer drains, read_some() returns 0
  /// exactly as on EOF, letting the owning filter flush and exit its loop
  /// without closing its output. Cleared by the next reconnect.
  void mark_soft_eof();

  std::uint64_t bytes_received() const;
  std::uint64_t bytes_delivered() const;

  /// Data-path CV notifies actually issued on this pipe (both directions).
  std::uint64_t wakeups() const;

  /// Data-path notifies skipped because no thread was parked. The ratio
  /// suppressed/(issued+suppressed) is exported per filter as
  /// rw_filter_wakeups_suppressed (docs/observability.md).
  std::uint64_t wakeups_suppressed() const;

 private:
  friend class DetachableOutputStream;
  std::shared_ptr<detail::InputState> st_;
};

/// Output half.
class DetachableOutputStream final : public util::ByteSink {
 public:
  DetachableOutputStream() = default;
  ~DetachableOutputStream() override;

  DetachableOutputStream(const DetachableOutputStream&) = delete;
  DetachableOutputStream& operator=(const DetachableOutputStream&) = delete;

  /// Writes all of `in`. If the stream is paused or disconnected, blocks
  /// until a reconnect supplies a new sink. A write that has begun always
  /// lands contiguously in a single sink: pause() waits for it, so framed
  /// messages are never torn across a splice.
  void write(util::ByteSpan in) override;

  /// Single-transaction vectored write: every segment lands back to back in
  /// the same sink under ONE in-flight-write window and (space permitting)
  /// one lock acquisition — pause() cannot splice between segments, so a
  /// frame header and its payload written as two segments are as atomic as
  /// a pre-assembled copy, without the assembly.
  void write_vec(std::span<const util::ByteSpan> segments) override;

  /// Wakes the reader so buffered bytes are noticed promptly.
  void flush() override;

  /// Non-blocking all-or-nothing vectored write (event-driven drive mode):
  /// every segment lands back to back under one lock transaction, or
  /// nothing lands and the writable watcher is armed (paused/disconnected
  /// arms at this DOS; a full ring arms at the sink). Because mu_ is held
  /// across the whole transaction, a concurrent pause() can never splice
  /// between segments — the no-torn-frames contract without the in-flight
  /// writer window. Throws BrokenPipe like write(); throws StreamError if
  /// the segments can never fit (total exceeds the sink ring's capacity).
  bool try_write_vec(std::span<const util::ByteSpan> segments) override;

  /// Non-blocking partial write: accepts what fits now, returns the count,
  /// and arms the writable watcher on any shortfall. Byte chunks may split
  /// across a reconnect (order is still preserved); framed data must use
  /// try_write_vec.
  std::size_t try_write_some(util::ByteSpan in) override;

  /// Installs (or removes) the watcher fired when an armed try_write_*
  /// would now make progress. Travels with this DOS across reconnects.
  void set_write_scheduler(Scheduler* sched);

  /// Establishes the initial connection (alias for reconnect, kept for
  /// symmetry with the paper's connect()/reconnect() pair).
  void connect(DetachableInputStream& dis) { reconnect(dis); }

  /// Pauses the pipe: blocks new writes, completes in-flight writes, waits
  /// for the reader to drain the buffer, then marks both halves
  /// disconnected. Idempotent when already paused. Requires an active
  /// reader (or an already-empty buffer) to drain.
  void pause();

  /// Attaches this DOS to `dis`. Both halves must be disconnected.
  void reconnect(DetachableInputStream& dis);

  /// Hard EOF: the current sink's reader sees end-of-stream after draining;
  /// subsequent writes throw BrokenPipe. An in-flight write blocked on a
  /// full ring is woken and also throws (its already-buffered prefix is
  /// still delivered to the reader before EOF).
  void close();

  bool connected() const;

  /// Total bytes this DOS has delivered into any sink (across reconnects).
  std::uint64_t bytes_sent() const noexcept;

  /// Completed pause() calls that actually detached the pipe.
  std::uint64_t pauses() const;

  /// Cumulative microseconds writers spent blocked in write() waiting for a
  /// connect/unpause — the per-splice disruption the paper's Figure 7
  /// measures, accumulated as a running total.
  std::uint64_t blocked_micros() const;

 private:
  friend class DetachableInputStream;

  /// Retires one in-flight write and wakes a pending pause(); the shared
  /// tail of every write() exit path (normal and exceptional).
  void writer_done() RW_EXCLUDES(mu_);

  /// Common body of write() and write_vec(): one ready-wait, one in-flight
  /// window, all segments delivered contiguously to a single sink.
  void write_segments(std::span<const util::ByteSpan> segments)
      RW_EXCLUDES(mu_);

  /// Fires the armed DOS-level writable watcher (paused/disconnected arm
  /// site); the sink-level arm site lives in InputState.
  void fire_write_ready_locked() RW_REQUIRES(mu_) {
    if (write_sched_ != nullptr && write_armed_) {
      write_armed_ = false;
      write_sched_->on_writable();
    }
  }

  // Lock order: mu_ BEFORE the sink's InputState::mu (always).
  mutable rw::Mutex mu_{"core/stream_output", rw::lockrank::kStreamOutput};
  rw::CondVar state_cv_;    // writers wait for connect/unpause
  rw::CondVar writers_cv_;  // pause waits for in-flight writes
  std::shared_ptr<detail::InputState> sink_ RW_GUARDED_BY(mu_);
  bool swflag_ RW_GUARDED_BY(mu_) = false;
  bool connected_ RW_GUARDED_BY(mu_) = false;
  bool closed_ RW_GUARDED_BY(mu_) = false;
  int active_writers_ RW_GUARDED_BY(mu_) = 0;
  int pause_waiters_ RW_GUARDED_BY(mu_) = 0;  // pauses parked in writers_cv_

  // Event-mode writable watcher. Armed here when a try_write_* found the
  // stream paused or disconnected (no sink to arm); reconnect() and
  // close() fire it. While connected the same watcher is mirrored into the
  // sink's InputState so a full-ring arm is fired by the draining reader.
  Scheduler* write_sched_ RW_GUARDED_BY(mu_) = nullptr;
  bool write_armed_ RW_GUARDED_BY(mu_) = false;

  std::atomic<std::uint64_t> bytes_sent_{0};
  std::uint64_t pauses_ RW_GUARDED_BY(mu_) = 0;
  std::uint64_t blocked_us_ RW_GUARDED_BY(mu_) = 0;
};

/// Convenience: connect a fresh pair.
void connect(DetachableOutputStream& dos, DetachableInputStream& dis);

}  // namespace rapidware::core
