#include "core/flow_classifier.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "util/serial.h"

namespace rapidware::core {

const char* to_string(LossRegime regime) {
  switch (regime) {
    case LossRegime::kClean: return "clean";
    case LossRegime::kDegraded: return "degraded";
    case LossRegime::kSevere: return "severe";
  }
  return "?";
}

LossRegime regime_for_loss(double smoothed_loss, double degraded,
                           double severe) {
  if (smoothed_loss >= severe) return LossRegime::kSevere;
  if (smoothed_loss >= degraded) return LossRegime::kDegraded;
  return LossRegime::kClean;
}

std::string FlowKey::render() const {
  std::ostringstream os;
  os << "station=" << station << " type=" << stream_type
     << " regime=" << to_string(regime);
  return os.str();
}

bool FlowRule::matches(const FlowKey& key) const {
  if (station_lo && key.station < *station_lo) return false;
  if (station_hi && key.station > *station_hi) return false;
  if (stream_type && key.stream_type != *stream_type) return false;
  if (regime && key.regime != *regime) return false;
  return true;
}

util::Bytes FlowRule::serialize() const {
  util::Writer w;
  w.str(name);
  w.u32(priority);
  // Presence bitmap, then the set fields in declaration order.
  std::uint8_t flags = 0;
  if (station_lo) flags |= 1u;
  if (station_hi) flags |= 2u;
  if (stream_type) flags |= 4u;
  if (regime) flags |= 8u;
  w.u8(flags);
  if (station_lo) w.u32(*station_lo);
  if (station_hi) w.u32(*station_hi);
  if (stream_type) w.str(*stream_type);
  if (regime) w.u8(static_cast<std::uint8_t>(*regime));
  w.blob(chain.serialize());
  return w.take();
}

FlowRule FlowRule::deserialize(util::ByteSpan in) {
  util::Reader r(in);
  FlowRule rule;
  rule.name = r.str();
  rule.priority = r.u32();
  const std::uint8_t flags = r.u8();
  if (flags & 1u) rule.station_lo = r.u32();
  if (flags & 2u) rule.station_hi = r.u32();
  if (flags & 4u) rule.stream_type = r.str();
  if (flags & 8u) {
    const std::uint8_t regime = r.u8();
    if (regime > static_cast<std::uint8_t>(LossRegime::kSevere)) {
      throw util::SerialError("FlowRule: bad loss regime " +
                              std::to_string(regime));
    }
    rule.regime = static_cast<LossRegime>(regime);
  }
  rule.chain = ChainSpec::deserialize(r.blob());
  return rule;
}

std::string FlowRule::render() const {
  std::ostringstream os;
  os << name << " prio=" << priority << " station=";
  if (!station_lo && !station_hi) {
    os << '*';
  } else {
    if (station_lo) os << *station_lo;
    if (!station_hi || !station_lo || *station_lo != *station_hi) {
      os << "..";
      if (station_hi) os << *station_hi;
    }
  }
  os << " type=" << (stream_type ? *stream_type : "*");
  os << " regime=" << (regime ? to_string(*regime) : "*");
  os << " -> " << (chain.name.empty() ? chain.render() : chain.name);
  return os.str();
}

FlowClassifier::FlowClassifier(FilterSpecTable* table) : table_(table) {
  if (table_ == nullptr) {
    throw std::invalid_argument("FlowClassifier: null spec table");
  }
  ChainSpec passthrough;
  passthrough.name = "passthrough";
  fallback_ = table_->intern(std::move(passthrough));
}

void FlowClassifier::add_rule(FlowRule rule) {
  if (rule.name.empty()) {
    throw std::invalid_argument("FlowClassifier: rule needs a name");
  }
  ChainSpecRef spec = table_->intern(rule.chain);
  rw::MutexLock lk(mu_);
  Entry entry{std::move(rule), std::move(spec), next_order_, nullptr};
  for (Entry& existing : entries_) {
    if (existing.rule.name == entry.rule.name) {
      entry.order = existing.order;  // keep original tie-break position
      existing = std::move(entry);
      bind_entry_metrics_locked(existing);
      sort_entries_locked();
      ++version_;
      return;
    }
  }
  ++next_order_;
  bind_entry_metrics_locked(entry);
  entries_.push_back(std::move(entry));
  sort_entries_locked();
  ++version_;
}

bool FlowClassifier::remove_rule(const std::string& name) {
  rw::MutexLock lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->rule.name == name) {
      entries_.erase(it);
      ++version_;
      if (m_rules_) m_rules_->set(static_cast<std::int64_t>(entries_.size()));
      return true;
    }
  }
  return false;
}

std::vector<FlowRule> FlowClassifier::rules() const {
  rw::MutexLock lk(mu_);
  std::vector<FlowRule> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.rule);
  return out;
}

std::size_t FlowClassifier::size() const {
  rw::MutexLock lk(mu_);
  return entries_.size();
}

std::uint64_t FlowClassifier::version() const {
  rw::MutexLock lk(mu_);
  return version_;
}

ChainSpecRef FlowClassifier::resolve(const FlowKey& key) const {
  rw::MutexLock lk(mu_);
  // Clock reads only while a histogram is bound: an unbound classifier's
  // behaviour (and thus the sim's pinned STATS hash) is time-independent.
  const bool timed = m_resolve_us_ != nullptr;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  ChainSpecRef out;
  for (const Entry& entry : entries_) {
    if (entry.rule.matches(key)) {
      ++hit_counts_[entry.rule.name];
      if (entry.m_hits) entry.m_hits->add();
      out = entry.spec;
      break;
    }
  }
  if (!out) {
    ++fallback_hits_;
    if (m_fallback_hits_) m_fallback_hits_->add();
    out = fallback_;
  }
  if (timed) {
    m_resolve_us_->observe(
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count()) /
        1000.0);
  }
  return out;
}

ChainSpecRef FlowClassifier::fallback() const {
  rw::MutexLock lk(mu_);
  return fallback_;
}

void FlowClassifier::set_fallback(ChainSpec spec) {
  ChainSpecRef ref = table_->intern(std::move(spec));
  rw::MutexLock lk(mu_);
  fallback_ = std::move(ref);
  ++version_;
}

std::uint64_t FlowClassifier::hits(const std::string& rule_name) const {
  rw::MutexLock lk(mu_);
  auto it = hit_counts_.find(rule_name);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::uint64_t FlowClassifier::fallback_hits() const {
  rw::MutexLock lk(mu_);
  return fallback_hits_;
}

void FlowClassifier::bind_metrics(obs::Scope scope) {
  rw::MutexLock lk(mu_);
  scope_ = scope;
  m_rules_ = scope.gauge("rules");
  m_rules_->set(static_cast<std::int64_t>(entries_.size()));
  m_resolve_us_ = scope.histogram(
      "resolve_us", {0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0});
  m_fallback_hits_ = scope.counter("fallback_hits");
  for (Entry& entry : entries_) bind_entry_metrics_locked(entry);
}

void FlowClassifier::sort_entries_locked() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.rule.priority != b.rule.priority) {
                       return a.rule.priority < b.rule.priority;
                     }
                     return a.order < b.order;
                   });
  if (m_rules_) m_rules_->set(static_cast<std::int64_t>(entries_.size()));
}

void FlowClassifier::bind_entry_metrics_locked(Entry& entry) {
  if (!scope_) return;
  entry.m_hits = scope_->child("rule").child(entry.rule.name).counter("hits");
}

}  // namespace rapidware::core
